/// serving_rankd: one shard of the rank-sharded serving frontend as a
/// standalone process. serve::RankShardedEngine spawns N of these in
/// socket-transport mode (RankShardedEngineConfig::socket); each loads
/// the model bundle from disk, connects back to the router's listener,
/// handshakes (wire version + shard index + model shape, see
/// src/serve/shard_wire.hpp), and then runs the exact same
/// gather->predict->reply loop the in-process ranks run
/// (serve::run_shard_worker) — the transport substitution DESIGN.md §1
/// promises, with zero drift between the two deployments.
///
/// Usage:
///   serving_rankd --connect=ADDR --shard=I --bundle=DIR
///                 [--max-batch=N] [--gather=N] [--batch-deadline-us=N]
///                 [--threads=N] [--cache=N] [--memo=N] [--die-after=N]
///                 [--weight=W] [--generation=G] [--metrics-out=PATH]
///
/// --metrics-out=PATH writes this worker's obs::Registry snapshot (JSON:
/// counters, gauges, latency histograms — see src/obs/metrics.hpp) to
/// PATH when the worker exits cleanly *or* via the --die-after hook, so
/// a postmortem can read the worker-side numbers even after a simulated
/// crash. PATH usually embeds the shard index (one file per worker).
///
/// --weight and --generation are echoed back in the hello verbatim: they
/// let the elastic engine pin exactly which spawn it is handshaking (a
/// respawned worker carries the slot's bumped generation; a straggler
/// from a superseded spawn is refused at the handshake).
///
/// --max-batch configures the engine (mirroring the in-process shards'
/// EngineConfig); --gather bounds the worker loop's opportunistic batch
/// (the router's drain_max_batch resolution) and defaults to --max-batch.
///
/// ADDR is a parallel::SocketListener address ("unix:<path>" or
/// "tcp:<ip>:<port>"). --die-after=N is a test hook: exit abruptly (no
/// shutdown ack, socket just closes) after scoring N requests, so the
/// suites can rehearse the router's worker-death shedding path.
///
/// Exit codes: 0 clean shutdown (kShutdown acked), 1 usage/handshake/
/// runtime error — including the router's link vanishing mid-serve, which
/// the worker cannot distinguish from any other dead peer — and 42 when
/// the --die-after hook tripped.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "obs/metrics.hpp"

#include "parallel/socket_transport.hpp"
#include "serve/model_bundle.hpp"
#include "serve/shard_worker.hpp"
#include "util/error.hpp"

namespace {

struct Args {
  std::string connect;
  std::string bundle_dir;
  std::size_t shard = 0;
  bool shard_set = false;
  qkmps::serve::EngineConfig engine;
  std::size_t gather = 0;  ///< 0 = engine.max_batch
  std::size_t die_after = 0;
  double weight = 1.0;
  std::uint64_t generation = 0;
  std::string metrics_out;
};

bool parse_flag(const char* arg, const char* name, std::string& out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  out = arg + n + 1;
  return true;
}

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (parse_flag(argv[i], "--connect", value)) {
      args.connect = value;
    } else if (parse_flag(argv[i], "--bundle", value)) {
      args.bundle_dir = value;
    } else if (parse_flag(argv[i], "--shard", value)) {
      args.shard = static_cast<std::size_t>(std::stoull(value));
      args.shard_set = true;
    } else if (parse_flag(argv[i], "--max-batch", value)) {
      args.engine.max_batch = static_cast<std::size_t>(std::stoull(value));
    } else if (parse_flag(argv[i], "--gather", value)) {
      args.gather = static_cast<std::size_t>(std::stoull(value));
    } else if (parse_flag(argv[i], "--batch-deadline-us", value)) {
      args.engine.batch_deadline = std::chrono::microseconds(std::stoll(value));
    } else if (parse_flag(argv[i], "--threads", value)) {
      args.engine.num_threads = static_cast<std::size_t>(std::stoull(value));
    } else if (parse_flag(argv[i], "--cache", value)) {
      args.engine.cache_capacity = static_cast<std::size_t>(std::stoull(value));
    } else if (parse_flag(argv[i], "--memo", value)) {
      args.engine.memo_capacity = static_cast<std::size_t>(std::stoull(value));
    } else if (parse_flag(argv[i], "--die-after", value)) {
      args.die_after = static_cast<std::size_t>(std::stoull(value));
    } else if (parse_flag(argv[i], "--weight", value)) {
      args.weight = std::stod(value);
    } else if (parse_flag(argv[i], "--generation", value)) {
      args.generation = static_cast<std::uint64_t>(std::stoull(value));
    } else if (parse_flag(argv[i], "--metrics-out", value)) {
      args.metrics_out = value;
    } else {
      throw qkmps::Error(std::string("unknown argument: ") + argv[i]);
    }
  }
  if (args.connect.empty() || args.bundle_dir.empty() || !args.shard_set)
    throw qkmps::Error(
        "usage: serving_rankd --connect=ADDR --shard=I --bundle=DIR "
        "[--max-batch=N] [--batch-deadline-us=N] [--threads=N] [--cache=N] "
        "[--memo=N] [--die-after=N] [--weight=W] [--generation=G] "
        "[--metrics-out=PATH]");
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qkmps;
  try {
    const Args args = parse_args(argc, argv);

    const auto bundle = std::make_shared<const serve::ModelBundle>(
        serve::load_bundle(args.bundle_dir));
    serve::InferenceEngine engine(bundle, args.engine);

    std::unique_ptr<parallel::SocketTransport> link =
        parallel::SocketTransport::connect(args.connect,
                                           std::chrono::milliseconds(10'000));
    serve::ShardHello hello;
    hello.shard_index = args.shard;
    hello.num_features = bundle->num_features();
    hello.weight = args.weight;
    hello.generation = args.generation;
    serve::shard_handshake_client(*link, hello,
                                  std::chrono::microseconds(10'000'000));

    serve::ShardWorkerOptions options;
    options.batch_limit =
        args.gather > 0 ? args.gather : args.engine.max_batch;
    options.die_after_requests = args.die_after;
    const bool clean = run_shard_worker(*link, engine, options);

    // Worker-side registry snapshot for postmortems — written on the
    // --die-after path too (that "crash" is abrupt only on the socket).
    if (!args.metrics_out.empty()) {
      std::ofstream out(args.metrics_out,
                        std::ios::binary | std::ios::trunc);
      if (out) out << obs::Registry::global().render_json();
      if (!out)
        std::fprintf(stderr, "serving_rankd: could not write %s\n",
                     args.metrics_out.c_str());
    }

    // Clean = acked kShutdown; otherwise the --die-after test hook
    // tripped (simulated crash: exit without a word; the closing socket
    // is the signal the router acts on).
    return clean ? 0 : 42;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serving_rankd: %s\n", e.what());
    return 1;
  }
}
