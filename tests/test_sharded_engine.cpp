#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <set>
#include <vector>

#include "data/elliptic_synthetic.hpp"
#include "kernel/gram.hpp"
#include "serve/sharded_engine.hpp"
#include "serve/workload.hpp"
#include "serve_test_fixture.hpp"
#include "test_helpers.hpp"

namespace qkmps::serve {
namespace {

using Serving = qkmps::testing::TrainedServing;
using workload::Scenario;
using workload::ScenarioConfig;

// Shared with the stress suite via serve_test_fixture.hpp: one request
// pool, one sequential parity oracle.
using qkmps::testing::sequential_reference;
using qkmps::testing::serving_request_pool;

kernel::RealMatrix request_pool() { return serving_request_pool(200); }

std::vector<double> reference_values(const Serving& s,
                                     const kernel::RealMatrix& points) {
  return sequential_reference(s, points);
}

TEST(ShardedEngine, MetamorphicParityAcrossScenariosAndShardCounts) {
  const Serving s = qkmps::testing::train_small_serving(21);
  const auto pool = request_pool();
  for (const ScenarioConfig& cfg : workload::standard_scenarios(40, 8, 5)) {
    const Scenario scenario = workload::make_scenario(cfg, pool);
    const std::vector<double> ref = reference_values(s, scenario.unique_points);
    for (std::size_t shards : {1u, 2u, 4u}) {
      ShardedEngineConfig scfg;
      scfg.num_shards = shards;
      scfg.admission_capacity = 256;  // nothing rejected: pure parity sweep
      scfg.engine.max_batch = 8;
      scfg.engine.batch_deadline = std::chrono::microseconds(200);
      ShardedEngine engine(s.bundle, scfg);

      std::vector<std::future<RoutedPrediction>> futures;
      for (idx r = 0; r < scenario.size(); ++r)
        futures.push_back(engine.submit(scenario.request(r)));
      for (idx r = 0; r < scenario.size(); ++r) {
        const RoutedPrediction p =
            futures[static_cast<std::size_t>(r)].get();
        ASSERT_EQ(p.status, ServeStatus::kServed)
            << cfg.name << " shards=" << shards << " request " << r;
        const idx u = scenario.order[static_cast<std::size_t>(r)];
        // Bitwise, not approximate: sharding and admission are scheduling
        // decisions only.
        EXPECT_EQ(p.prediction.decision_value,
                  ref[static_cast<std::size_t>(u)])
            << cfg.name << " shards=" << shards << " request " << r;
      }
      const ShardedStats st = engine.stats();
      EXPECT_EQ(st.submitted, static_cast<std::uint64_t>(scenario.size()));
      EXPECT_EQ(st.admitted, st.submitted);
      EXPECT_EQ(st.rejected, 0u);
      EXPECT_EQ(st.shed, 0u);
      EXPECT_EQ(st.completed, st.admitted);
      EXPECT_EQ(st.shards.size(), shards);
    }
  }
}

TEST(ShardedEngine, ParityHoldsUnderEveryAdmissionPolicyUnderPressure) {
  const Serving s = qkmps::testing::train_small_serving(22);
  const auto pool = request_pool();
  ScenarioConfig cfg;
  cfg.name = "pressure";
  cfg.seed = 17;
  cfg.num_requests = 120;
  cfg.num_unique = 12;
  cfg.keys = workload::KeyPattern::kZipf;
  const Scenario scenario = workload::make_scenario(cfg, pool);
  const std::vector<double> ref = reference_values(s, scenario.unique_points);

  for (AdmissionPolicy policy :
       {AdmissionPolicy::kRejectNew, AdmissionPolicy::kBlockWithDeadline,
        AdmissionPolicy::kShedOldest}) {
    ShardedEngineConfig scfg;
    scfg.num_shards = 2;
    scfg.admission_capacity = 4;  // deliberately tight: policies must fire
    scfg.policy = policy;
    scfg.block_deadline = std::chrono::microseconds(500);
    scfg.engine.max_batch = 4;
    ShardedEngine engine(s.bundle, scfg);

    std::vector<std::future<RoutedPrediction>> futures;
    for (idx r = 0; r < scenario.size(); ++r)
      futures.push_back(engine.submit(scenario.request(r)));

    std::uint64_t served = 0, rejected = 0, shed = 0;
    for (idx r = 0; r < scenario.size(); ++r) {
      const RoutedPrediction p = futures[static_cast<std::size_t>(r)].get();
      switch (p.status) {
        case ServeStatus::kServed: {
          ++served;
          const idx u = scenario.order[static_cast<std::size_t>(r)];
          EXPECT_EQ(p.prediction.decision_value,
                    ref[static_cast<std::size_t>(u)])
              << "policy " << static_cast<int>(policy) << " request " << r;
          break;
        }
        case ServeStatus::kRejected:
          ++rejected;
          break;
        case ServeStatus::kShed:
          ++shed;
          break;
      }
    }
    // Every future resolved with exactly one status; counters agree.
    const ShardedStats st = engine.stats();
    EXPECT_EQ(served + rejected + shed,
              static_cast<std::uint64_t>(scenario.size()));
    EXPECT_EQ(st.submitted, static_cast<std::uint64_t>(scenario.size()));
    EXPECT_EQ(st.submitted, st.admitted + st.rejected);
    EXPECT_EQ(st.rejected, rejected);
    EXPECT_EQ(st.shed, shed);
    if (policy == AdmissionPolicy::kShedOldest) EXPECT_EQ(rejected, 0u);
  }
}

TEST(ShardedEngine, RoutingIsAPureFunctionOfFeatureBits) {
  const Serving s = qkmps::testing::train_small_serving(23);
  ShardedEngineConfig scfg;
  scfg.num_shards = 4;
  ShardedEngine engine(s.bundle, scfg);

  const auto pool = request_pool();
  std::set<int> shards_used;
  for (idx i = 0; i < 32; ++i) {
    const std::vector<double> f(pool.row(i), pool.row(i) + pool.cols());
    const int shard = engine.shard_for(f);
    EXPECT_EQ(shard, engine.shard_for(f));  // stable
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, 4);
    shards_used.insert(shard);
  }
  // FNV over 32 distinct points spreads across a 4-way ring.
  EXPECT_GE(shards_used.size(), 2u);

  // Duplicates in a live stream land on the same shard (cache locality).
  const std::vector<double> f(pool.row(0), pool.row(0) + pool.cols());
  auto a = engine.submit(f).get();
  auto b = engine.submit(f).get();
  EXPECT_EQ(a.shard, b.shard);
  EXPECT_EQ(a.prediction.decision_value, b.prediction.decision_value);
}

/// Admission-policy semantics are tested deterministically: draining is
/// paused, so queue occupancy is exact, not a race against the drainer.
TEST(ShardedEngine, RejectNewRefusesExactlyWhenFull) {
  const Serving s = qkmps::testing::train_small_serving(24);
  const auto pool = request_pool();
  ShardedEngineConfig scfg;
  scfg.num_shards = 1;
  scfg.admission_capacity = 2;
  scfg.policy = AdmissionPolicy::kRejectNew;
  ShardedEngine engine(s.bundle, scfg);
  engine.pause_draining();

  auto row = [&](idx i) {
    return std::vector<double>(pool.row(i), pool.row(i) + pool.cols());
  };
  auto f0 = engine.submit(row(0));
  auto f1 = engine.submit(row(1));
  auto f2 = engine.submit(row(2));  // queue full: refused immediately
  ASSERT_EQ(f2.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(f2.get().status, ServeStatus::kRejected);

  engine.resume_draining();
  EXPECT_EQ(f0.get().status, ServeStatus::kServed);
  EXPECT_EQ(f1.get().status, ServeStatus::kServed);
  const ShardedStats st = engine.stats();
  EXPECT_EQ(st.rejected, 1u);
  EXPECT_EQ(st.shards[0].max_queue_depth, 2u);
}

TEST(ShardedEngine, ShedOldestEvictsTheOldestPendingRequest) {
  const Serving s = qkmps::testing::train_small_serving(25);
  const auto pool = request_pool();
  ShardedEngineConfig scfg;
  scfg.num_shards = 1;
  scfg.admission_capacity = 2;
  scfg.policy = AdmissionPolicy::kShedOldest;
  ShardedEngine engine(s.bundle, scfg);
  engine.pause_draining();

  auto row = [&](idx i) {
    return std::vector<double>(pool.row(i), pool.row(i) + pool.cols());
  };
  auto oldest = engine.submit(row(0));
  auto middle = engine.submit(row(1));
  auto newest = engine.submit(row(2));  // evicts row(0), admits row(2)
  ASSERT_EQ(oldest.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(oldest.get().status, ServeStatus::kShed);

  engine.resume_draining();
  EXPECT_EQ(middle.get().status, ServeStatus::kServed);
  EXPECT_EQ(newest.get().status, ServeStatus::kServed);
  const ShardedStats st = engine.stats();
  EXPECT_EQ(st.shed, 1u);
  EXPECT_EQ(st.rejected, 0u);
  EXPECT_EQ(st.completed, 2u);
}

TEST(ShardedEngine, BlockWithDeadlineTimesOutIntoRejection) {
  const Serving s = qkmps::testing::train_small_serving(26);
  const auto pool = request_pool();
  ShardedEngineConfig scfg;
  scfg.num_shards = 1;
  scfg.admission_capacity = 1;
  scfg.policy = AdmissionPolicy::kBlockWithDeadline;
  scfg.block_deadline = std::chrono::microseconds(20'000);
  ShardedEngine engine(s.bundle, scfg);
  engine.pause_draining();

  auto row = [&](idx i) {
    return std::vector<double>(pool.row(i), pool.row(i) + pool.cols());
  };
  auto admitted = engine.submit(row(0));
  const auto t0 = std::chrono::steady_clock::now();
  auto blocked = engine.submit(row(1));  // full: blocks, then times out
  const double waited = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
  ASSERT_EQ(blocked.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(blocked.get().status, ServeStatus::kRejected);
  EXPECT_GE(waited, 0.015);  // actually blocked for ~the deadline

  engine.resume_draining();
  EXPECT_EQ(admitted.get().status, ServeStatus::kServed);
}

TEST(ShardedEngine, BlockedSubmitterAdmitsOnceTheDrainerFreesSpace) {
  const Serving s = qkmps::testing::train_small_serving(27);
  const auto pool = request_pool();
  ShardedEngineConfig scfg;
  scfg.num_shards = 1;
  scfg.admission_capacity = 1;
  scfg.policy = AdmissionPolicy::kBlockWithDeadline;
  scfg.block_deadline = std::chrono::seconds(10);  // far beyond drain time
  ShardedEngine engine(s.bundle, scfg);

  auto row = [&](idx i) {
    return std::vector<double>(pool.row(i), pool.row(i) + pool.cols());
  };
  std::vector<std::future<RoutedPrediction>> futures;
  for (idx i = 0; i < 8; ++i) futures.push_back(engine.submit(row(i)));
  for (auto& f : futures) EXPECT_EQ(f.get().status, ServeStatus::kServed);
  EXPECT_EQ(engine.stats().rejected, 0u);
}

TEST(ShardedEngine, DestructionDrainsQueuedWorkEvenWhilePaused) {
  const Serving s = qkmps::testing::train_small_serving(28);
  const auto pool = request_pool();
  const std::vector<double> ref = reference_values(
      s, [&] {
        kernel::RealMatrix pts(16, pool.cols());
        for (idx i = 0; i < 16; ++i)
          for (idx j = 0; j < pool.cols(); ++j) pts(i, j) = pool(i, j);
        return pts;
      }());

  std::vector<std::future<RoutedPrediction>> futures;
  {
    ShardedEngineConfig scfg;
    scfg.num_shards = 2;
    scfg.admission_capacity = 32;
    ShardedEngine engine(s.bundle, scfg);
    engine.pause_draining();  // guarantee work is still queued at dtor time
    for (idx i = 0; i < 16; ++i)
      futures.push_back(engine.submit(
          std::vector<double>(pool.row(i), pool.row(i) + pool.cols())));
  }  // destructor must drain all 16 without deadlocking
  for (idx i = 0; i < 16; ++i) {
    const RoutedPrediction p = futures[static_cast<std::size_t>(i)].get();
    ASSERT_EQ(p.status, ServeStatus::kServed);
    EXPECT_EQ(p.prediction.decision_value, ref[static_cast<std::size_t>(i)]);
  }
}

TEST(ShardedEngine, MalformedRequestsThrowInsteadOfConsumingAdmission) {
  const Serving s = qkmps::testing::train_small_serving(29);
  ShardedEngine engine(s.bundle, {.num_shards = 2});
  EXPECT_THROW(engine.submit({0.1, 0.2}), Error);
  std::vector<double> bad(6, std::numeric_limits<double>::quiet_NaN());
  EXPECT_THROW(engine.submit(bad), Error);
  EXPECT_EQ(engine.stats().submitted, 0u);
}

TEST(ShardedEngine, PerShardStatsExposeEngineAndQueueCounters) {
  const Serving s = qkmps::testing::train_small_serving(30);
  const auto pool = request_pool();
  ShardedEngineConfig scfg;
  scfg.num_shards = 2;
  scfg.engine.memo_capacity = 0;
  ShardedEngine engine(s.bundle, scfg);

  // Two rounds, joined between them so the re-queries must come from the
  // shard StateCaches rather than in-batch dedup.
  for (idx rep = 0; rep < 2; ++rep) {
    std::vector<std::future<RoutedPrediction>> futures;
    for (idx i = 0; i < 12; ++i)
      futures.push_back(engine.submit(
          std::vector<double>(pool.row(i), pool.row(i) + pool.cols())));
    for (auto& f : futures) EXPECT_EQ(f.get().status, ServeStatus::kServed);
  }

  const ShardedStats st = engine.stats();
  ASSERT_EQ(st.shards.size(), 2u);
  std::uint64_t engine_requests = 0, cache_hits = 0, simulated = 0;
  for (const ShardStats& shard : st.shards) {
    engine_requests += shard.engine.requests;
    cache_hits += shard.engine.cache.hits;
    simulated += shard.engine.circuits_simulated;
    EXPECT_EQ(shard.submitted, shard.admitted + shard.rejected);
  }
  EXPECT_EQ(engine_requests, 24u);
  EXPECT_EQ(simulated, 12u);      // 12 unique points across both shards
  EXPECT_GE(cache_hits, 12u);     // the re-query round hit shard caches
  EXPECT_EQ(st.completed, 24u);
  EXPECT_GT(st.p99_drain_ms, 0.0);
}

}  // namespace
}  // namespace qkmps::serve
