#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <future>
#include <limits>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "util/error.hpp"

#include "serve/rank_sharded_engine.hpp"
#include "serve/workload.hpp"
#include "serve_test_fixture.hpp"

namespace qkmps::serve {
namespace {

using Serving = qkmps::testing::TrainedServing;
using workload::Scenario;
using workload::ScenarioConfig;

using qkmps::testing::sequential_reference;
using qkmps::testing::serving_request_pool;

kernel::RealMatrix request_pool() { return serving_request_pool(200); }

/// The tentpole metamorphic relation: the rank-distributed frontend must
/// serve every standard workload scenario bitwise-identically to the
/// sequential simulate_states + decision_values pipeline, at every rank
/// count — transport, routing, batching, and rank scheduling are not
/// allowed to be numeric decisions.
TEST(RankShardedEngine, MetamorphicParityAcrossScenariosAndRankCounts) {
  const Serving s = qkmps::testing::train_small_serving(41);
  const auto pool = request_pool();
  for (const ScenarioConfig& cfg : workload::standard_scenarios(40, 8, 5)) {
    const Scenario scenario = workload::make_scenario(cfg, pool);
    const std::vector<double> ref =
        sequential_reference(s, scenario.unique_points);
    for (std::size_t shards : {2u, 3u, 5u}) {
      RankShardedEngineConfig rcfg;
      rcfg.num_shards = shards;
      rcfg.engine.max_batch = 8;
      RankShardedEngine engine(s.bundle, rcfg);

      std::vector<std::future<RoutedPrediction>> futures;
      for (idx r = 0; r < scenario.size(); ++r)
        futures.push_back(engine.submit(scenario.request(r)));
      for (idx r = 0; r < scenario.size(); ++r) {
        const RoutedPrediction p =
            futures[static_cast<std::size_t>(r)].get();
        ASSERT_EQ(p.status, ServeStatus::kServed)
            << cfg.name << " ranks=" << shards << " request " << r;
        EXPECT_GE(p.shard, 0);
        EXPECT_LT(p.shard, static_cast<int>(shards));
        const idx u = scenario.order[static_cast<std::size_t>(r)];
        EXPECT_EQ(p.prediction.decision_value,
                  ref[static_cast<std::size_t>(u)])
            << cfg.name << " ranks=" << shards << " request " << r;
      }

      const RankShardedStats st = engine.stats();
      EXPECT_EQ(st.submitted, static_cast<std::uint64_t>(scenario.size()));
      EXPECT_EQ(st.admitted, st.submitted);
      EXPECT_EQ(st.rejected, 0u);
      EXPECT_EQ(st.completed, st.admitted);
      ASSERT_EQ(st.shards.size(), shards);
      std::uint64_t routed = 0, served = 0;
      for (const RankShardStats& shard : st.shards) {
        EXPECT_EQ(shard.routed, shard.served);
        routed += shard.routed;
        served += shard.served;
      }
      EXPECT_EQ(routed, st.completed);
      EXPECT_EQ(served, st.completed);
    }
  }
}

TEST(RankShardedEngine, RoutingIsStableAndMatchesShardField) {
  const Serving s = qkmps::testing::train_small_serving(42);
  const auto pool = request_pool();
  RankShardedEngineConfig rcfg;
  rcfg.num_shards = 3;
  RankShardedEngine engine(s.bundle, rcfg);
  for (idx i = 0; i < 12; ++i) {
    const std::vector<double> f(pool.row(i), pool.row(i) + pool.cols());
    const int expected = engine.shard_for(f);
    EXPECT_EQ(expected, engine.shard_for(f));  // pure function
    const RoutedPrediction p = engine.submit(f).get();
    ASSERT_EQ(p.status, ServeStatus::kServed);
    EXPECT_EQ(p.shard, expected);  // the router rank agrees with shard_for
  }
}

TEST(RankShardedEngine, DestructionServesAllInFlightRequests) {
  const Serving s = qkmps::testing::train_small_serving(43);
  const auto pool = request_pool();
  const std::vector<double> ref = sequential_reference(s, [&] {
    kernel::RealMatrix pts(16, pool.cols());
    for (idx i = 0; i < 16; ++i)
      for (idx j = 0; j < pool.cols(); ++j) pts(i, j) = pool(i, j);
    return pts;
  }());

  std::vector<std::future<RoutedPrediction>> futures;
  {
    RankShardedEngineConfig rcfg;
    rcfg.num_shards = 2;
    RankShardedEngine engine(s.bundle, rcfg);
    for (idx i = 0; i < 16; ++i)
      futures.push_back(engine.submit(
          std::vector<double>(pool.row(i), pool.row(i) + pool.cols())));
  }  // destructor: drain ingress + in-flight, shut ranks down, join
  for (idx i = 0; i < 16; ++i) {
    const RoutedPrediction p = futures[static_cast<std::size_t>(i)].get();
    ASSERT_EQ(p.status, ServeStatus::kServed);
    EXPECT_EQ(p.prediction.decision_value, ref[static_cast<std::size_t>(i)]);
  }
}

TEST(RankShardedEngine, MalformedRequestsThrowBeforeAdmission) {
  const Serving s = qkmps::testing::train_small_serving(44);
  RankShardedEngineConfig rcfg;
  rcfg.num_shards = 2;
  RankShardedEngine engine(s.bundle, rcfg);
  EXPECT_THROW(engine.submit({0.1, 0.2}), Error);
  std::vector<double> bad(6, std::numeric_limits<double>::quiet_NaN());
  EXPECT_THROW(engine.submit(bad), Error);
  EXPECT_EQ(engine.stats().submitted, 0u);
}

TEST(RankShardedEngine, TightIngressKeepsAdmissionInvariants) {
  const Serving s = qkmps::testing::train_small_serving(45);
  const auto pool = request_pool();
  RankShardedEngineConfig rcfg;
  rcfg.num_shards = 2;
  rcfg.ingress_capacity = 1;  // any submit that outruns the router rejects
  RankShardedEngine engine(s.bundle, rcfg);

  ScenarioConfig cfg;
  cfg.name = "flood";
  cfg.seed = 9;
  cfg.num_requests = 100;
  cfg.num_unique = 10;
  const Scenario scenario = workload::make_scenario(cfg, pool);
  const std::vector<double> ref =
      sequential_reference(s, scenario.unique_points);

  std::vector<std::future<RoutedPrediction>> futures;
  for (idx r = 0; r < scenario.size(); ++r)
    futures.push_back(engine.submit(scenario.request(r)));

  std::uint64_t served = 0, rejected = 0;
  for (idx r = 0; r < scenario.size(); ++r) {
    const RoutedPrediction p = futures[static_cast<std::size_t>(r)].get();
    if (p.status == ServeStatus::kServed) {
      ++served;
      const idx u = scenario.order[static_cast<std::size_t>(r)];
      EXPECT_EQ(p.prediction.decision_value,
                ref[static_cast<std::size_t>(u)]);
    } else {
      ASSERT_EQ(p.status, ServeStatus::kRejected);
      EXPECT_EQ(p.shard, -1);  // refused before routing
      ++rejected;
    }
  }
  const RankShardedStats st = engine.stats();
  EXPECT_EQ(served + rejected, static_cast<std::uint64_t>(scenario.size()));
  EXPECT_EQ(st.submitted, static_cast<std::uint64_t>(scenario.size()));
  EXPECT_EQ(st.submitted, st.admitted + st.rejected);
  EXPECT_EQ(st.rejected, rejected);
  EXPECT_EQ(st.completed, served);
}

/// The tentpole elasticity claim, end to end: grow N -> N+1 under the
/// consistent-hash router and the per-shard StateCaches stay warm — the
/// replayed Zipf stream re-simulates only the ~1/(N+1) of keys that
/// remigrated, and the post-resize hit rate stays within 20% of the
/// pre-resize one. The modulo router on the identical stream cold-starts
/// several times more keys.
TEST(RankShardedEngine, ConsistentHashResizeRetainsCaches) {
  const Serving s = qkmps::testing::train_small_serving(46);
  const auto pool = request_pool();

  ScenarioConfig cfg;
  cfg.name = "zipf-hot";
  cfg.seed = 33;
  cfg.num_requests = 120;
  cfg.num_unique = 16;
  cfg.keys = workload::KeyPattern::kZipf;
  const Scenario scenario = workload::make_scenario(cfg, pool);
  const std::vector<double> ref =
      sequential_reference(s, scenario.unique_points);

  struct RoundCounters {
    std::uint64_t hits = 0;
    std::uint64_t lookups = 0;
    std::uint64_t circuits = 0;
    double hit_rate() const {
      return lookups == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(lookups);
    }
  };

  auto totals = [](const RankShardedStats& st) {
    RoundCounters c;
    for (const RankShardStats& shard : st.shards) {
      c.hits += shard.engine.cache.hits;
      c.lookups += shard.engine.cache.hits + shard.engine.cache.misses;
      c.circuits += shard.engine.circuits_simulated;
    }
    return c;
  };

  // One request at a time: every repeat of a key must come from a shard
  // StateCache (not in-batch dedup), so hit counts are exact and
  // deterministic, not a race against batch composition.
  auto run_round = [&](RankShardedEngine& engine) {
    for (idx r = 0; r < scenario.size(); ++r) {
      const RoutedPrediction p = engine.submit(scenario.request(r)).get();
      EXPECT_EQ(p.status, ServeStatus::kServed);
      const idx u = scenario.order[static_cast<std::size_t>(r)];
      EXPECT_EQ(p.prediction.decision_value,
                ref[static_cast<std::size_t>(u)]);
    }
  };

  auto measure = [&](RouterKind kind, RoundCounters& round1,
                     RoundCounters& round2) {
    RankShardedEngineConfig rcfg;
    rcfg.num_shards = 3;
    rcfg.router = RouterConfig{kind, 128};
    // The memo would short-circuit repeats before they reach the
    // StateCache; disable it so cache retention is what gets measured.
    rcfg.engine.memo_capacity = 0;
    RankShardedEngine engine(s.bundle, rcfg);

    run_round(engine);  // cold round: populates the 3 shard caches
    const RoundCounters after1 = totals(engine.stats());
    round1 = after1;

    engine.add_shard();
    EXPECT_EQ(engine.num_shards(), 4u);
    EXPECT_EQ(engine.stats().resizes, 1u);

    run_round(engine);  // replay: only remigrated keys should re-simulate
    const RoundCounters after2 = totals(engine.stats());
    round2.hits = after2.hits - after1.hits;
    round2.lookups = after2.lookups - after1.lookups;
    round2.circuits = after2.circuits - after1.circuits;
  };

  RoundCounters ring1, ring2, mod1, mod2;
  measure(RouterKind::kConsistentHash, ring1, ring2);
  measure(RouterKind::kFeatureHashModulo, mod1, mod2);

  // Distinct keys the stream actually touches = cold-round simulations.
  const std::uint64_t distinct = ring1.circuits;
  EXPECT_GT(distinct, 4u);
  EXPECT_EQ(mod1.circuits, distinct);  // identical stream, identical work

  // Consistent hash: the replay re-simulates only remigrated keys —
  // about distinct/(N+1), bounded here by half the working set.
  EXPECT_LE(ring2.circuits, distinct / 2);
  // Acceptance criterion: post-resize hit rate within 20% of pre-resize.
  EXPECT_GE(ring2.hit_rate(), 0.8 * ring1.hit_rate());
  // And retention must beat the modulo cold-start on the same stream.
  EXPECT_LT(ring2.circuits, mod2.circuits);
}

TEST(RankShardedEngine, ServesAcrossAResizeAndKeepsParity) {
  const Serving s = qkmps::testing::train_small_serving(47);
  const auto pool = request_pool();
  const idx n = 24;
  const std::vector<double> ref = sequential_reference(s, [&] {
    kernel::RealMatrix pts(n, pool.cols());
    for (idx i = 0; i < n; ++i)
      for (idx j = 0; j < pool.cols(); ++j) pts(i, j) = pool(i, j);
    return pts;
  }());

  RankShardedEngineConfig rcfg;
  rcfg.num_shards = 2;
  RankShardedEngine engine(s.bundle, rcfg);

  auto check = [&](idx from, idx to) {
    std::vector<std::future<RoutedPrediction>> futures;
    for (idx i = from; i < to; ++i)
      futures.push_back(engine.submit(
          std::vector<double>(pool.row(i), pool.row(i) + pool.cols())));
    for (idx i = from; i < to; ++i) {
      const RoutedPrediction p =
          futures[static_cast<std::size_t>(i - from)].get();
      ASSERT_EQ(p.status, ServeStatus::kServed);
      EXPECT_EQ(p.prediction.decision_value,
                ref[static_cast<std::size_t>(i)]);
    }
  };

  check(0, n / 2);
  engine.add_shard();
  check(n / 2, n);
  const RankShardedStats st = engine.stats();
  EXPECT_EQ(st.completed, static_cast<std::uint64_t>(n));
  EXPECT_EQ(st.shards.size(), 3u);
  EXPECT_EQ(st.resizes, 1u);
}

/// remove_shard on the in-process transport: the removed slot's keys
/// hand off to the survivors, the id is never reused, parity holds
/// across the shrink, and the removed shard's engine (and caches) are
/// released.
TEST(RankShardedEngine, RemoveShardInProcessHandsOffAndKeepsParity) {
  const Serving s = qkmps::testing::train_small_serving(48);
  const auto pool = request_pool();
  const idx n = 24;
  const std::vector<double> ref = sequential_reference(s, [&] {
    kernel::RealMatrix pts(n, pool.cols());
    for (idx i = 0; i < n; ++i)
      for (idx j = 0; j < pool.cols(); ++j) pts(i, j) = pool(i, j);
    return pts;
  }());

  RankShardedEngineConfig rcfg;
  rcfg.num_shards = 3;
  RankShardedEngine engine(s.bundle, rcfg);

  auto check = [&](idx from, idx to) {
    for (idx i = from; i < to; ++i) {
      const RoutedPrediction p =
          engine
              .submit(std::vector<double>(pool.row(i),
                                          pool.row(i) + pool.cols()))
              .get();
      ASSERT_EQ(p.status, ServeStatus::kServed);
      EXPECT_EQ(p.prediction.decision_value, ref[static_cast<std::size_t>(i)]);
    }
  };

  check(0, n / 2);
  engine.remove_shard(1);
  EXPECT_EQ(engine.num_shards(), 3u);  // the retired id still counts
  check(n / 2, n);

  const RankShardedStats st = engine.stats();
  EXPECT_EQ(st.resizes, 1u);
  ASSERT_EQ(st.shards.size(), 3u);
  EXPECT_TRUE(st.shards[1].removed);
  EXPECT_EQ(st.shed, 0u);
  for (idx i = 0; i < n; ++i)
    EXPECT_NE(engine.shard_for(std::vector<double>(
                  pool.row(i), pool.row(i) + pool.cols())),
              1);
  EXPECT_THROW(engine.remove_shard(1), Error);  // already removed
  EXPECT_THROW(engine.remove_shard(7), Error);  // out of range
}

/// Heterogeneous fleets: shard_weights skews the consistent-hash ring so
/// a double-weight shard pulls roughly double the keys.
TEST(RankShardedEngine, ShardWeightsSkewRoutingProportionally) {
  const Serving s = qkmps::testing::train_small_serving(49);
  const auto pool = request_pool();
  RankShardedEngineConfig rcfg;
  rcfg.num_shards = 2;
  rcfg.router = RouterConfig{RouterKind::kConsistentHash, 256};
  rcfg.shard_weights = {2.0, 1.0};
  RankShardedEngine engine(s.bundle, rcfg);

  std::size_t heavy = 0;
  for (idx i = 0; i < pool.rows(); ++i)
    if (engine.shard_for(std::vector<double>(pool.row(i),
                                             pool.row(i) + pool.cols())) == 0)
      ++heavy;
  // Expected share 2/3; demand clearly more than half on 200 keys.
  EXPECT_GT(heavy, static_cast<std::size_t>(pool.rows()) / 2);

  const RankShardedStats st = engine.stats();
  ASSERT_EQ(st.shards.size(), 2u);
  EXPECT_EQ(st.shards[0].weight, 2.0);
  EXPECT_EQ(st.shards[1].weight, 1.0);
}

// ---------------------------------------------------------------------
// Socket transport: the same engine, shards as serving_rankd processes.
// QKMPS_RANKD_PATH is injected by tests/CMakeLists.txt as the built
// worker binary's absolute path, so these tests always run against the
// worker from the same build.

#ifdef QKMPS_RANKD_PATH

RankShardedEngineConfig socket_config(const std::string& bundle_dir,
                                      std::size_t shards) {
  RankShardedEngineConfig rcfg;
  rcfg.num_shards = shards;
  rcfg.engine.max_batch = 8;
  rcfg.transport = TransportKind::kSocket;
  rcfg.socket.worker_path = QKMPS_RANKD_PATH;
  rcfg.socket.bundle_dir = bundle_dir;
  return rcfg;
}

class RankShardedSocketTest : public ::testing::Test {
 protected:
  std::string bundle_dir_ = ::testing::TempDir() + "/qkmps_rankd_bundle_" +
                            std::to_string(::getpid());
  void TearDown() override {
    std::filesystem::remove_all(bundle_dir_);
    std::filesystem::remove_all(bundle_dir_ + ".tmp");
  }
};

/// The acceptance relation of the transport swap: served predictions over
/// real worker processes are bitwise-identical to the sequential pipeline
/// (and therefore to the in-process transport, which the suites above pin
/// against the same oracle).
TEST_F(RankShardedSocketTest, SocketParityMatchesSequentialPipeline) {
  const Serving s = qkmps::testing::train_small_serving(51);
  const auto pool = request_pool();
  ScenarioConfig cfg;
  cfg.name = "socket-uniform";
  cfg.seed = 9;
  cfg.num_requests = 48;
  cfg.num_unique = 12;
  const Scenario scenario = workload::make_scenario(cfg, pool);
  const std::vector<double> ref =
      sequential_reference(s, scenario.unique_points);

  RankShardedEngine engine(s.bundle, socket_config(bundle_dir_, 2));
  std::vector<std::future<RoutedPrediction>> futures;
  for (idx r = 0; r < scenario.size(); ++r)
    futures.push_back(engine.submit(scenario.request(r)));
  for (idx r = 0; r < scenario.size(); ++r) {
    const RoutedPrediction p = futures[static_cast<std::size_t>(r)].get();
    ASSERT_EQ(p.status, ServeStatus::kServed) << "request " << r;
    const idx u = scenario.order[static_cast<std::size_t>(r)];
    EXPECT_EQ(p.prediction.decision_value, ref[static_cast<std::size_t>(u)])
        << "request " << r;
  }

  // Remote engine stats travel the kStats flow; the workers really did
  // the scoring (circuits simulated remotely, never locally).
  const RankShardedStats st = engine.stats();
  EXPECT_EQ(st.completed, static_cast<std::uint64_t>(scenario.size()));
  EXPECT_EQ(st.shed, 0u);
  ASSERT_EQ(st.shards.size(), 2u);
  std::uint64_t circuits = 0, engine_requests = 0;
  for (const RankShardStats& shard : st.shards) {
    EXPECT_TRUE(shard.alive);
    EXPECT_EQ(shard.routed, shard.served);
    circuits += shard.engine.circuits_simulated;
    engine_requests += shard.engine.requests;
  }
  EXPECT_GT(circuits, 0u);
  EXPECT_EQ(engine_requests, st.completed);
}

/// The tentpole tracing claim over real processes: every served request
/// comes back with a stitched cross-process trace — a nonzero
/// router-assigned id, the router-side spans, and at least one
/// worker-origin span that traveled back inside the ShardReply (wire v3)
/// and was re-based under the router's wire span. A mixed cached/uncached
/// stream pins that memo/cache hits are traced exactly like cold
/// requests (a hit batch records memo/cache spans even when the
/// simulator never runs).
TEST_F(RankShardedSocketTest, ServedRequestsCarryStitchedWorkerSpans) {
  const Serving s = qkmps::testing::train_small_serving(63);
  const auto pool = request_pool();
  ScenarioConfig cfg;
  cfg.name = "socket-traced";
  cfg.seed = 17;
  cfg.num_requests = 40;
  cfg.num_unique = 8;  // 5x repetition: most requests are memo/cache hits
  const Scenario scenario = workload::make_scenario(cfg, pool);

  RankShardedEngine engine(s.bundle, socket_config(bundle_dir_, 2));
  std::vector<std::future<RoutedPrediction>> futures;
  for (idx r = 0; r < scenario.size(); ++r)
    futures.push_back(engine.submit(scenario.request(r)));

  std::set<std::uint64_t> ids;
  for (idx r = 0; r < scenario.size(); ++r) {
    const RoutedPrediction p = futures[static_cast<std::size_t>(r)].get();
    ASSERT_EQ(p.status, ServeStatus::kServed) << "request " << r;
    ASSERT_NE(p.trace.trace_id, 0u) << "request " << r << " untraced";
    EXPECT_TRUE(ids.insert(p.trace.trace_id).second)
        << "trace id reused across requests";
    EXPECT_GT(p.trace.total_seconds, 0.0);

    // Router-side spans are always present...
    std::uint64_t wire_start = 0, wire_end = 0;
    bool saw_wire = false;
    for (const obs::Span& span : p.trace.spans)
      if (span.origin == obs::SpanOrigin::kRouter && span.name == "wire") {
        wire_start = span.start_ns;
        wire_end = span.start_ns + span.duration_ns;
        saw_wire = true;
      }
    ASSERT_TRUE(saw_wire) << "request " << r << " has no wire span";

    // ...and every reply shipped worker-side spans back, re-based into
    // the wire window (stitching coherent without clock agreement).
    std::size_t worker_spans = 0;
    for (const obs::Span& span : p.trace.spans)
      if (span.origin == obs::SpanOrigin::kWorker) {
        ++worker_spans;
        EXPECT_GE(span.start_ns, wire_start)
            << "worker span '" << span.name << "' outside the wire window";
        EXPECT_LE(span.start_ns + span.duration_ns, wire_end)
            << "worker span '" << span.name << "' outside the wire window";
      }
    EXPECT_GT(worker_spans, 0u)
        << "request " << r << " lost its worker spans on the wire";
  }

  // The flight recorder ringed every completed trace plus the two spawn
  // handshakes.
  const obs::FlightRecorder& flight = engine.flight_recorder();
  EXPECT_GE(flight.traces_recorded(),
            static_cast<std::uint64_t>(scenario.size()));
  std::size_t spawns = 0;
  for (const obs::LifecycleEvent& e : flight.events())
    if (e.kind == obs::EventKind::kSpawn) ++spawns;
  EXPECT_EQ(spawns, 2u);
}

/// Worker death is an expected distributed-systems outcome, not an
/// engine failure: in-flight and later requests routed to the dead shard
/// resolve kShed with an explanatory error, the other shard keeps
/// serving, stats report !alive, and destruction stays clean.
TEST_F(RankShardedSocketTest, DeadWorkerShedsWithStatusAndOthersKeepServing) {
  const Serving s = qkmps::testing::train_small_serving(53);
  const auto pool = request_pool();

  RankShardedEngineConfig rcfg = socket_config(bundle_dir_, 2);
  rcfg.engine.memo_capacity = 0;  // every request really scores
  // This test pins the *shedding* semantics in isolation, so the
  // self-heal stays off — respawn behaviour has its own suites below.
  rcfg.socket.respawn = false;
  // Shard 0's worker crashes after its first scored request; shard 1
  // (spawned second, --die-after applies to all, but shard 1 sees fewer
  // requests below) — direct every request at one shard by reusing one
  // feature vector, so the death is deterministic.
  rcfg.socket.worker_extra_args = {"--die-after=1"};
  RankShardedEngine engine(s.bundle, rcfg);

  const std::vector<double> point(pool.row(0), pool.row(0) + pool.cols());
  const int target = engine.shard_for(point);

  // First request: served by the (about to die) worker.
  const RoutedPrediction first = engine.submit(point).get();
  ASSERT_EQ(first.status, ServeStatus::kServed);
  EXPECT_EQ(first.shard, target);

  // Follow-ups to the same shard: the worker is gone (or goes mid-run);
  // every future still resolves — as kShed with a reason, never a hang.
  std::vector<std::future<RoutedPrediction>> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(engine.submit(point));
  std::size_t shed = 0;
  for (auto& fut : futures) {
    const RoutedPrediction p = fut.get();
    ASSERT_TRUE(p.status == ServeStatus::kShed ||
                p.status == ServeStatus::kServed);
    if (p.status == ServeStatus::kShed) {
      ++shed;
      EXPECT_EQ(p.shard, target);
      EXPECT_FALSE(p.error.empty());
    }
  }
  EXPECT_GT(shed, 0u);

  // A request routed to the surviving shard still serves. Find one.
  const std::vector<double> ref_row = [&] {
    for (idx i = 1; i < pool.rows(); ++i) {
      std::vector<double> candidate(pool.row(i), pool.row(i) + pool.cols());
      if (engine.shard_for(candidate) != target) return candidate;
    }
    return std::vector<double>();
  }();
  if (!ref_row.empty()) {
    const RoutedPrediction alive_p = engine.submit(ref_row).get();
    EXPECT_EQ(alive_p.status, ServeStatus::kServed);
  }

  const RankShardedStats st = engine.stats();
  ASSERT_EQ(st.shards.size(), 2u);
  EXPECT_FALSE(st.shards[static_cast<std::size_t>(target)].alive);
  EXPECT_EQ(st.shed, shed);
  EXPECT_EQ(st.admitted, st.completed + st.shed);
}

/// add_shard over live worker processes: the new serving_rankd spawns,
/// handshakes in, and starts serving its slice of the ring while the
/// survivors — whose caches live in their own processes — are never
/// restarted (same pid before and after the growth).
TEST_F(RankShardedSocketTest, AddShardOverSocketGrowsLiveFleet) {
  const Serving s = qkmps::testing::train_small_serving(55);
  const auto pool = request_pool();
  RankShardedEngine engine(s.bundle, socket_config(bundle_dir_, 1));

  const std::vector<double> point(pool.row(0), pool.row(0) + pool.cols());
  ASSERT_EQ(engine.submit(point).get().status, ServeStatus::kServed);
  const long pid_before = engine.worker_pid(0);
  ASSERT_GT(pid_before, 0);

  engine.add_shard();
  EXPECT_EQ(engine.num_shards(), 2u);
  EXPECT_EQ(engine.stats().resizes, 1u);
  EXPECT_EQ(engine.worker_pid(0), pid_before);  // survivor untouched
  EXPECT_GT(engine.worker_pid(1), 0);
  EXPECT_NE(engine.worker_pid(1), pid_before);

  // The grown fleet serves, and both shards are reachable via routing.
  std::vector<std::future<RoutedPrediction>> futures;
  for (idx i = 0; i < 32 && i < pool.rows(); ++i)
    futures.push_back(engine.submit(
        std::vector<double>(pool.row(i), pool.row(i) + pool.cols())));
  bool hit_new_shard = false;
  for (auto& fut : futures) {
    const RoutedPrediction p = fut.get();
    ASSERT_EQ(p.status, ServeStatus::kServed);
    if (p.shard == 1) hit_new_shard = true;
  }
  EXPECT_TRUE(hit_new_shard);
  const RankShardedStats st = engine.stats();
  ASSERT_EQ(st.shards.size(), 2u);
  EXPECT_TRUE(st.shards[1].alive);
  EXPECT_GT(st.shards[1].served, 0u);
}

/// remove_shard over socket: the leaver's ring keys hand off to the
/// survivors, its in-flight work completes, its process is reaped, and
/// the id is never reused.
TEST_F(RankShardedSocketTest, RemoveShardOverSocketHandsOffKeys) {
  const Serving s = qkmps::testing::train_small_serving(56);
  const auto pool = request_pool();
  RankShardedEngine engine(s.bundle, socket_config(bundle_dir_, 3));

  std::vector<std::future<RoutedPrediction>> warm;
  for (idx i = 0; i < 24; ++i)
    warm.push_back(engine.submit(
        std::vector<double>(pool.row(i), pool.row(i) + pool.cols())));
  for (auto& fut : warm) ASSERT_EQ(fut.get().status, ServeStatus::kServed);

  const long leaver_pid = engine.worker_pid(1);
  ASSERT_GT(leaver_pid, 0);
  engine.remove_shard(1);

  EXPECT_EQ(engine.num_shards(), 3u);  // ids are never reused
  EXPECT_EQ(engine.worker_pid(1), -1);
  const RankShardedStats st = engine.stats();
  ASSERT_EQ(st.shards.size(), 3u);
  EXPECT_TRUE(st.shards[1].removed);
  EXPECT_EQ(st.shed, 0u);  // removal drains; it never sheds

  // The leaver's process was really reaped, not left a zombie: a zombie
  // child would still be waitpid-able, so ECHILD here proves the reap.
  int status = 0;
  errno = 0;
  EXPECT_EQ(::waitpid(static_cast<pid_t>(leaver_pid), &status, WNOHANG), -1);
  EXPECT_EQ(errno, ECHILD);

  // Everything still serves, and nothing routes to the removed slot.
  for (idx i = 0; i < 24; ++i) {
    const std::vector<double> f(pool.row(i), pool.row(i) + pool.cols());
    EXPECT_NE(engine.shard_for(f), 1);
    const RoutedPrediction p = engine.submit(f).get();
    ASSERT_EQ(p.status, ServeStatus::kServed);
    EXPECT_NE(p.shard, 1);
  }
  EXPECT_THROW(engine.remove_shard(1), Error);  // already removed
}

/// The fd-hygiene bugfix, observed from outside: a spawned worker's fd
/// table contains exactly one socket — its own connection back to the
/// router. Before CLOEXEC, every worker inherited the router's listener
/// (and workers spawned later inherited earlier workers' accepted
/// links), which kept dead peers' sockets alive and delayed EOF-based
/// death detection by the lifetime of unrelated processes.
TEST_F(RankShardedSocketTest, SpawnedWorkerHoldsNoInheritedSockets) {
  const Serving s = qkmps::testing::train_small_serving(58);
  RankShardedEngine engine(s.bundle, socket_config(bundle_dir_, 2));

  for (std::size_t shard : {0u, 1u}) {
    const long pid = engine.worker_pid(shard);
    ASSERT_GT(pid, 0);
    std::size_t sockets = 0, fds = 0;
    const std::string fd_dir = "/proc/" + std::to_string(pid) + "/fd";
    for (const auto& entry : std::filesystem::directory_iterator(fd_dir)) {
      ++fds;
      std::error_code ec;
      const std::string target =
          std::filesystem::read_symlink(entry.path(), ec).string();
      if (!ec && target.rfind("socket:", 0) == 0) ++sockets;
    }
    // stdin/stdout/stderr + the one link (+ the dirfd of this very
    // iteration, which the kernel shows transiently).
    EXPECT_EQ(sockets, 1u) << "shard " << shard
                           << " inherited a socket it does not own";
    EXPECT_LE(fds, 6u) << "shard " << shard << " fd table is leaking";
  }
}

/// The self-heal path end to end: SIGKILL a worker mid-fleet and the
/// router respawns the slot (next generation, same ring weight). Every
/// future submitted before, during, and after the outage resolves —
/// kServed or kShed, never a hang, never a lost future — and service to
/// the slot eventually recovers.
TEST_F(RankShardedSocketTest, Kill9WorkerRespawnsWithZeroLostFutures) {
  const Serving s = qkmps::testing::train_small_serving(59);
  const auto pool = request_pool();
  RankShardedEngineConfig rcfg = socket_config(bundle_dir_, 2);
  rcfg.socket.respawn_backoff = std::chrono::milliseconds(50);
  RankShardedEngine engine(s.bundle, rcfg);

  const std::vector<double> point(pool.row(0), pool.row(0) + pool.cols());
  const int target = engine.shard_for(point);
  ASSERT_EQ(engine.submit(point).get().status, ServeStatus::kServed);

  const long victim = engine.worker_pid(static_cast<std::size_t>(target));
  ASSERT_GT(victim, 0);
  ASSERT_EQ(::kill(static_cast<pid_t>(victim), SIGKILL), 0);

  // Hammer the dead slot until it serves again. Every future must
  // resolve; the shed ones are the honest outage window.
  std::vector<std::future<RoutedPrediction>> futures;
  bool recovered = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!recovered && std::chrono::steady_clock::now() < deadline) {
    futures.push_back(engine.submit(point));
    if (futures.size() % 8 == 0) {
      for (auto& fut : futures) {
        const RoutedPrediction p = fut.get();  // must never hang
        ASSERT_TRUE(p.status == ServeStatus::kServed ||
                    p.status == ServeStatus::kShed);
        if (p.status == ServeStatus::kServed) recovered = true;
      }
      futures.clear();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  for (auto& fut : futures) {
    const RoutedPrediction p = fut.get();
    ASSERT_TRUE(p.status == ServeStatus::kServed ||
                p.status == ServeStatus::kShed);
    if (p.status == ServeStatus::kServed) recovered = true;
  }
  EXPECT_TRUE(recovered) << "slot never came back after SIGKILL";

  const RankShardedStats st = engine.stats();
  const RankShardStats& slot = st.shards[static_cast<std::size_t>(target)];
  EXPECT_TRUE(slot.alive);
  EXPECT_GE(slot.respawns, 1u);
  EXPECT_GE(slot.generation, 1u);
  EXPECT_EQ(st.admitted, st.completed + st.shed);  // zero lost futures
  const long respawned = engine.worker_pid(static_cast<std::size_t>(target));
  EXPECT_GT(respawned, 0);
  EXPECT_NE(respawned, victim);
}

/// Exhausting the respawn budget demotes the slot permanently: deleting
/// the bundle makes every replacement die on startup, so after
/// max_respawn_attempts backoffs the router stops trying and the slot
/// sheds forever — visibly, via stats().demoted.
TEST_F(RankShardedSocketTest, RespawnBudgetExhaustionDemotesPermanently) {
  const Serving s = qkmps::testing::train_small_serving(61);
  const auto pool = request_pool();
  RankShardedEngineConfig rcfg = socket_config(bundle_dir_, 2);
  rcfg.socket.respawn_backoff = std::chrono::milliseconds(10);
  rcfg.socket.respawn_backoff_max = std::chrono::milliseconds(40);
  rcfg.socket.max_respawn_attempts = 2;
  rcfg.socket.connect_timeout = std::chrono::milliseconds(1500);
  RankShardedEngine engine(s.bundle, rcfg);

  const std::vector<double> point(pool.row(0), pool.row(0) + pool.cols());
  const int target = engine.shard_for(point);
  ASSERT_EQ(engine.submit(point).get().status, ServeStatus::kServed);

  // Every respawned worker will fail to load the bundle and exit before
  // connecting; each attempt burns the accept timeout.
  std::filesystem::remove_all(bundle_dir_);
  const long victim = engine.worker_pid(static_cast<std::size_t>(target));
  ASSERT_GT(victim, 0);
  ASSERT_EQ(::kill(static_cast<pid_t>(victim), SIGKILL), 0);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  bool demoted = false;
  while (!demoted && std::chrono::steady_clock::now() < deadline) {
    demoted = engine.stats()
                  .shards[static_cast<std::size_t>(target)]
                  .demoted;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ASSERT_TRUE(demoted) << "slot was never demoted";

  const RankShardStats slot =
      engine.stats().shards[static_cast<std::size_t>(target)];
  EXPECT_FALSE(slot.alive);
  EXPECT_EQ(slot.respawns, 0u);  // no attempt ever succeeded
  EXPECT_EQ(engine.worker_pid(static_cast<std::size_t>(target)), -1);
  // A demoted slot sheds with status — it never hangs a future.
  const RoutedPrediction p = engine.submit(point).get();
  EXPECT_EQ(p.status, ServeStatus::kShed);
}

TEST_F(RankShardedSocketTest, MissingWorkerBinaryFailsConstructionLoudly) {
  const Serving s = qkmps::testing::train_small_serving(57);
  RankShardedEngineConfig rcfg = socket_config(bundle_dir_, 1);
  rcfg.socket.worker_path = "/nonexistent/serving_rankd";
  rcfg.socket.connect_timeout = std::chrono::milliseconds(2000);
  EXPECT_THROW(RankShardedEngine(s.bundle, rcfg), Error);
}

#endif  // QKMPS_RANKD_PATH

}  // namespace
}  // namespace qkmps::serve
