#pragma once

#include <gtest/gtest.h>

#include "linalg/gemm.hpp"
#include "linalg/matrix.hpp"
#include "linalg/svd.hpp"
#include "util/rng.hpp"

namespace qkmps::testing {

/// Random complex matrix with iid standard-normal entries.
inline linalg::Matrix random_matrix(idx rows, idx cols, Rng& rng) {
  linalg::Matrix m(rows, cols);
  for (idx i = 0; i < rows; ++i)
    for (idx j = 0; j < cols; ++j) m(i, j) = rng.normal_cplx();
  return m;
}

/// U * diag(s) * Vh reassembly.
inline linalg::Matrix reconstruct(const linalg::SvdResult& f) {
  linalg::Matrix us = f.u;
  for (idx i = 0; i < us.rows(); ++i)
    for (idx j = 0; j < us.cols(); ++j)
      us(i, j) *= f.s[static_cast<std::size_t>(j)];
  return linalg::gemm_reference(us, f.vh);
}

/// Random feature vector in the open interval (0, 2) — the ansatz domain.
inline std::vector<double> random_features(idx m, Rng& rng) {
  std::vector<double> x(static_cast<std::size_t>(m));
  for (auto& v : x) v = rng.uniform(0.05, 1.95);
  return x;
}

}  // namespace qkmps::testing
