#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/gate.hpp"
#include "linalg/gemm.hpp"
#include "linalg/matrix.hpp"
#include "linalg/svd.hpp"
#include "util/rng.hpp"

namespace qkmps::testing {

/// Random complex matrix with iid standard-normal entries.
inline linalg::Matrix random_matrix(idx rows, idx cols, Rng& rng) {
  linalg::Matrix m(rows, cols);
  for (idx i = 0; i < rows; ++i)
    for (idx j = 0; j < cols; ++j) m(i, j) = rng.normal_cplx();
  return m;
}

/// U * diag(s) * Vh reassembly.
inline linalg::Matrix reconstruct(const linalg::SvdResult& f) {
  linalg::Matrix us = f.u;
  for (idx i = 0; i < us.rows(); ++i)
    for (idx j = 0; j < us.cols(); ++j)
      us(i, j) *= f.s[static_cast<std::size_t>(j)];
  return linalg::gemm_reference(us, f.vh);
}

/// Random feature vector in the open interval (0, 2) — the ansatz domain.
inline std::vector<double> random_features(idx m, Rng& rng) {
  std::vector<double> x(static_cast<std::size_t>(m));
  for (auto& v : x) v = rng.uniform(0.05, 1.95);
  return x;
}

/// Random circuit over the full gate vocabulary. Two-qubit gates act on
/// adjacent sites when `nearest_neighbour_only` is set, and on arbitrary
/// (distinct) pairs otherwise — the latter exercises the routing pass when
/// fed to the MPS simulator.
inline circuit::Circuit random_circuit(idx m, idx num_gates, Rng& rng,
                                       bool nearest_neighbour_only = false) {
  circuit::Circuit c(m);
  for (idx g = 0; g < num_gates; ++g) {
    const auto kind = rng.uniform_int(7);
    const idx q0 = static_cast<idx>(rng.uniform_int(static_cast<std::uint64_t>(m)));
    const double angle = rng.uniform(-kPi, kPi);
    switch (kind) {
      case 0: c.h(q0); break;
      case 1: c.x(q0); break;
      case 2: c.z(q0); break;
      case 3: c.rz(q0, angle); break;
      case 4: c.rx(q0, angle); break;
      default: {
        if (m < 2) { c.h(q0); break; }
        idx a = q0, b;
        if (nearest_neighbour_only) {
          a = static_cast<idx>(rng.uniform_int(static_cast<std::uint64_t>(m - 1)));
          b = a + 1;
        } else {
          do {
            b = static_cast<idx>(rng.uniform_int(static_cast<std::uint64_t>(m)));
          } while (b == a);
        }
        if (kind == 5) c.rxx(a, b, angle);
        else c.swap(a, b);
        break;
      }
    }
  }
  return c;
}

/// <a|b> = sum_i conj(a_i) b_i over dense amplitude vectors.
inline cplx dense_inner_product(const std::vector<cplx>& a,
                                const std::vector<cplx>& b) {
  cplx acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += std::conj(a[i]) * b[i];
  return acc;
}

/// Max elementwise |a_i - b_i| between dense amplitude vectors.
inline double max_amplitude_diff(const std::vector<cplx>& a,
                                 const std::vector<cplx>& b) {
  double diff = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    diff = std::max(diff, std::abs(a[i] - b[i]));
  return diff;
}

/// 1 - |<a|b>|^2: the infidelity of state b against reference a.
inline double dense_infidelity(const std::vector<cplx>& a,
                               const std::vector<cplx>& b) {
  return 1.0 - std::norm(dense_inner_product(a, b));
}

/// <P_q> from a dense amplitude vector, qubit 0 = most significant bit
/// (matching Statevector and Mps::to_statevector). `pauli` is 'X', 'Y',
/// or 'Z'.
inline double dense_pauli_expectation(const std::vector<cplx>& amps, idx m,
                                      idx q, char pauli) {
  const std::size_t mask = std::size_t{1} << (m - 1 - q);
  cplx acc = 0.0;
  for (std::size_t i = 0; i < amps.size(); ++i) {
    const bool one = (i & mask) != 0;
    switch (pauli) {
      case 'Z':
        acc += std::conj(amps[i]) * amps[i] * (one ? -1.0 : 1.0);
        break;
      case 'X':
        acc += std::conj(amps[i]) * amps[i ^ mask];
        break;
      case 'Y':
        acc += std::conj(amps[i]) * amps[i ^ mask] * cplx(0.0, one ? 1.0 : -1.0);
        break;
      default:
        ADD_FAILURE() << "unknown Pauli " << pauli;
    }
  }
  return acc.real();
}

/// <Z_q Z_{q+1}> from a dense amplitude vector.
inline double dense_zz_correlation(const std::vector<cplx>& amps, idx m, idx q) {
  const std::size_t mask0 = std::size_t{1} << (m - 1 - q);
  const std::size_t mask1 = std::size_t{1} << (m - 2 - q);
  double acc = 0.0;
  for (std::size_t i = 0; i < amps.size(); ++i) {
    const double sign =
        (((i & mask0) != 0) != ((i & mask1) != 0)) ? -1.0 : 1.0;
    acc += std::norm(amps[i]) * sign;
  }
  return acc;
}

}  // namespace qkmps::testing
