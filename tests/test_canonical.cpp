#include <gtest/gtest.h>

#include <cmath>

#include "circuit/ansatz.hpp"
#include "mps/canonical.hpp"
#include "mps/inner_product.hpp"
#include "mps/simulator.hpp"
#include "test_helpers.hpp"

namespace qkmps::mps {
namespace {

/// Builds a genuinely entangled MPS by simulating an ansatz circuit.
Mps entangled_state(idx m, std::uint64_t seed) {
  Rng rng(seed);
  const circuit::AnsatzParams p{.num_features = m, .layers = 2, .distance = 2,
                                .gamma = 0.9};
  const circuit::Circuit c =
      circuit::feature_map_circuit(p, qkmps::testing::random_features(m, rng));
  MpsSimulator sim;
  return sim.simulate(c).state;
}

TEST(Canonical, MoveCenterPreservesState) {
  Mps psi = entangled_state(6, 1);
  const auto before = psi.to_statevector();
  for (idx target : {0, 5, 2, 3, 0}) {
    move_center(psi, target, linalg::ExecPolicy::Reference);
    EXPECT_EQ(psi.center(), target);
    const auto after = psi.to_statevector();
    double diff = 0.0;
    for (std::size_t i = 0; i < before.size(); ++i)
      diff = std::max(diff, std::abs(before[i] - after[i]));
    EXPECT_LT(diff, 1e-12) << "target=" << target;
  }
}

TEST(Canonical, LeftSitesAreLeftOrthonormal) {
  Mps psi = entangled_state(7, 2);
  move_center(psi, 5, linalg::ExecPolicy::Reference);
  for (idx i = 0; i < 5; ++i)
    EXPECT_LT(left_orthonormality_defect(psi, i), 1e-12) << "site " << i;
}

TEST(Canonical, RightSitesAreRightOrthonormal) {
  Mps psi = entangled_state(7, 3);
  move_center(psi, 2, linalg::ExecPolicy::Reference);
  for (idx i = 3; i < 7; ++i)
    EXPECT_LT(right_orthonormality_defect(psi, i), 1e-12) << "site " << i;
}

TEST(Canonical, CenterCarriesTheNorm) {
  Mps psi = entangled_state(5, 4);
  move_center(psi, 3, linalg::ExecPolicy::Reference);
  // With full mixed-canonical form, the Frobenius norm of the center site
  // equals the state norm (1 for a normalized state).
  double s = 0.0;
  for (const auto& v : psi.site(3).a) s += std::norm(v);
  EXPECT_NEAR(std::sqrt(s), psi.norm(), 1e-11);
}

TEST(Canonical, InnerProductInvariantUnderCanonicalization) {
  Mps a = entangled_state(6, 5);
  Mps b = entangled_state(6, 6);
  const cplx before = inner_product(a, b);
  move_center(a, 0, linalg::ExecPolicy::Reference);
  move_center(b, 5, linalg::ExecPolicy::Reference);
  const cplx after = inner_product(a, b);
  EXPECT_NEAR(std::abs(before - after), 0.0, 1e-12);
}

TEST(Canonical, ShiftRightThenLeftIsIdentity) {
  Mps psi = entangled_state(4, 7);
  move_center(psi, 1, linalg::ExecPolicy::Reference);
  const auto before = psi.to_statevector();
  shift_center_right(psi, linalg::ExecPolicy::Reference);
  shift_center_left(psi, linalg::ExecPolicy::Reference);
  EXPECT_EQ(psi.center(), 1);
  const auto after = psi.to_statevector();
  double diff = 0.0;
  for (std::size_t i = 0; i < before.size(); ++i)
    diff = std::max(diff, std::abs(before[i] - after[i]));
  EXPECT_LT(diff, 1e-12);
}

TEST(Canonical, MoveCenterRejectsOutOfRange) {
  Mps psi(3);
  EXPECT_THROW(move_center(psi, 3, linalg::ExecPolicy::Reference), Error);
  EXPECT_THROW(move_center(psi, -1, linalg::ExecPolicy::Reference), Error);
}

TEST(Canonical, PoliciesAgree) {
  Mps a = entangled_state(6, 8);
  Mps b = a;
  move_center(a, 0, linalg::ExecPolicy::Reference);
  move_center(b, 0, linalg::ExecPolicy::Accelerated);
  const auto va = a.to_statevector();
  const auto vb = b.to_statevector();
  double diff = 0.0;
  for (std::size_t i = 0; i < va.size(); ++i)
    diff = std::max(diff, std::abs(va[i] - vb[i]));
  EXPECT_LT(diff, 1e-12);
}

}  // namespace
}  // namespace qkmps::mps
