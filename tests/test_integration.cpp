#include <gtest/gtest.h>

#include <cmath>

#include "circuit/statevector.hpp"
#include "data/elliptic_synthetic.hpp"
#include "data/preprocess.hpp"
#include "data/splits.hpp"
#include "kernel/distributed_gram.hpp"
#include "kernel/gaussian.hpp"
#include "kernel/gram.hpp"
#include "svm/model_selection.hpp"
#include "test_helpers.hpp"

namespace qkmps {
namespace {

/// Full pipeline at toy scale: synthetic pool -> balanced subsample ->
/// scaling -> quantum kernel -> SVM -> metrics. This is the end-to-end path
/// every bench target exercises at paper scale.
struct Pipeline {
  kernel::RealMatrix k_train;
  kernel::RealMatrix k_test;
  std::vector<int> y_train;
  std::vector<int> y_test;
  kernel::GramStats stats;
};

Pipeline run_pipeline(idx per_class, idx features, idx d, double gamma,
                      std::uint64_t seed) {
  data::EllipticSyntheticParams gen;
  gen.num_points = 3000;
  gen.num_features = features;
  const data::Dataset pool = data::generate_elliptic_synthetic(gen);
  Rng rng(seed);
  const data::Dataset sample = data::balanced_subsample(pool, per_class, rng);
  const data::TrainTestSplit split = data::train_test_split(sample, 0.2, rng);

  const data::FeatureScaler scaler = data::FeatureScaler::fit(split.train.x);
  const auto xtr = scaler.transform(split.train.x);
  const auto xte = scaler.transform(split.test.x);

  kernel::QuantumKernelConfig cfg;
  cfg.ansatz = {.num_features = features, .layers = 2, .distance = d, .gamma = gamma};

  Pipeline p;
  const auto train_states = kernel::simulate_states(cfg, xtr, &p.stats);
  const auto test_states = kernel::simulate_states(cfg, xte, &p.stats);
  p.k_train = kernel::gram_from_states(train_states, cfg.sim.policy, &p.stats);
  p.k_test = kernel::cross_from_states(test_states, train_states, cfg.sim.policy,
                                       &p.stats);
  p.y_train = split.train.y;
  p.y_test = split.test.y;
  return p;
}

TEST(Integration, QuantumKernelPipelineBeatsChance) {
  const Pipeline p = run_pipeline(40, 10, 1, 0.35, 1);
  const auto pts = svm::sweep_regularization(p.k_train, p.y_train, p.k_test,
                                             p.y_test, svm::default_c_grid());
  const double auc = svm::best_by_test_auc(pts).test.auc;
  EXPECT_GT(auc, 0.6) << "quantum kernel must carry signal";
}

TEST(Integration, MoreFeaturesHelp) {
  // The C2.1 trend at toy scale: averaged over seeds, 12 features beat 3.
  double auc_small = 0.0, auc_large = 0.0;
  for (std::uint64_t s = 0; s < 3; ++s) {
    const Pipeline a = run_pipeline(30, 3, 1, 0.35, 10 + s);
    const Pipeline b = run_pipeline(30, 12, 1, 0.35, 10 + s);
    auc_small += svm::best_by_test_auc(
                     svm::sweep_regularization(a.k_train, a.y_train, a.k_test,
                                               a.y_test, svm::default_c_grid()))
                     .test.auc;
    auc_large += svm::best_by_test_auc(
                     svm::sweep_regularization(b.k_train, b.y_train, b.k_test,
                                               b.y_test, svm::default_c_grid()))
                     .test.auc;
  }
  EXPECT_GT(auc_large, auc_small);
}

TEST(Integration, QuantumKernelMatchesStatevectorGroundTruth) {
  // The whole MPS stack vs dense simulation on the real pipeline data.
  const idx features = 8;
  data::EllipticSyntheticParams gen;
  gen.num_points = 500;
  gen.num_features = features;
  const data::Dataset pool = data::generate_elliptic_synthetic(gen);
  Rng rng(3);
  const data::Dataset sample = data::balanced_subsample(pool, 4, rng);
  const data::FeatureScaler scaler = data::FeatureScaler::fit(sample.x);
  const auto x = scaler.transform(sample.x);

  kernel::QuantumKernelConfig cfg;
  cfg.ansatz = {.num_features = features, .layers = 2, .distance = 3, .gamma = 0.9};
  const kernel::RealMatrix k = kernel::gram_matrix(cfg, x);

  for (idx i = 0; i < x.rows(); ++i) {
    std::vector<double> xi(x.row(i), x.row(i) + features);
    const auto svi = circuit::simulate_statevector(
        circuit::feature_map_circuit(cfg.ansatz, xi));
    for (idx j = i + 1; j < x.rows(); ++j) {
      std::vector<double> xj(x.row(j), x.row(j) + features);
      const auto svj = circuit::simulate_statevector(
          circuit::feature_map_circuit(cfg.ansatz, xj));
      EXPECT_NEAR(k(i, j), std::norm(svi.inner_product(svj)), 1e-7);
    }
  }
}

TEST(Integration, DistributedAndSequentialKernelsAgreeOnPipelineData) {
  data::EllipticSyntheticParams gen;
  gen.num_points = 400;
  gen.num_features = 6;
  const data::Dataset pool = data::generate_elliptic_synthetic(gen);
  Rng rng(4);
  const data::Dataset sample = data::balanced_subsample(pool, 8, rng);
  const data::FeatureScaler scaler = data::FeatureScaler::fit(sample.x);
  const auto x = scaler.transform(sample.x);

  kernel::QuantumKernelConfig cfg;
  cfg.ansatz = {.num_features = 6, .layers = 2, .distance = 2, .gamma = 0.5};
  const kernel::RealMatrix seq = kernel::gram_matrix(cfg, x);
  for (int ranks : {2, 3}) {
    const kernel::RealMatrix rr = kernel::distributed_gram_matrix(
        cfg, x, ranks, kernel::DistributionStrategy::RoundRobin);
    EXPECT_LT(kernel::max_abs_diff(seq, rr), 1e-12);
  }
}

TEST(Integration, DepthConcentrationShrinksOffDiagonalKernel) {
  // Table III's mechanism: deeper ansatz -> overlaps concentrate toward 0,
  // destroying the kernel's information content.
  data::EllipticSyntheticParams gen;
  gen.num_points = 300;
  gen.num_features = 8;
  const data::Dataset pool = data::generate_elliptic_synthetic(gen);
  Rng rng(5);
  const data::Dataset sample = data::balanced_subsample(pool, 6, rng);
  const data::FeatureScaler scaler = data::FeatureScaler::fit(sample.x);
  const auto x = scaler.transform(sample.x);

  auto mean_off_diag = [&](idx layers) {
    kernel::QuantumKernelConfig cfg;
    cfg.ansatz = {.num_features = 8, .layers = layers, .distance = 1, .gamma = 1.0};
    const kernel::RealMatrix k = kernel::gram_matrix(cfg, x);
    double sum = 0.0;
    idx count = 0;
    for (idx i = 0; i < k.rows(); ++i)
      for (idx j = i + 1; j < k.cols(); ++j) {
        sum += k(i, j);
        ++count;
      }
    return sum / static_cast<double>(count);
  };
  const double shallow = mean_off_diag(2);
  const double deep = mean_off_diag(12);
  EXPECT_LT(deep, shallow);
}

TEST(Integration, GramStatsAccountForWholePipeline) {
  const Pipeline p = run_pipeline(10, 6, 1, 0.5, 6);
  const idx n_train = static_cast<idx>(p.y_train.size());
  const idx n_test = static_cast<idx>(p.y_test.size());
  EXPECT_EQ(p.stats.circuits_simulated, n_train + n_test);
  EXPECT_EQ(p.stats.inner_products,
            n_train * (n_train - 1) / 2 + n_test * n_train);
}

}  // namespace
}  // namespace qkmps
