#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "circuit/ansatz.hpp"
#include "mps/inner_product.hpp"
#include "mps/serialization.hpp"
#include "mps/simulator.hpp"
#include "test_helpers.hpp"

namespace qkmps::mps {
namespace {

Mps ansatz_state(idx m, std::uint64_t seed) {
  Rng rng(seed);
  const circuit::AnsatzParams p{.num_features = m, .layers = 2, .distance = 2,
                                .gamma = 0.8};
  MpsSimulator sim;
  return sim
      .simulate(circuit::feature_map_circuit(
          p, qkmps::testing::random_features(m, rng)))
      .state;
}

class SerializationTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/qkmps_serialization_test.bin";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(SerializationTest, MpsRoundTripThroughStream) {
  const Mps psi = ansatz_state(6, 1);
  std::stringstream ss;
  save_mps(psi, ss);
  const Mps back = load_mps(ss);
  EXPECT_EQ(back.num_sites(), psi.num_sites());
  EXPECT_EQ(back.center(), psi.center());
  EXPECT_EQ(back.bonds(), psi.bonds());
  // Bitwise-equal amplitudes => unit overlap and equal statevectors.
  const auto va = psi.to_statevector();
  const auto vb = back.to_statevector();
  for (std::size_t i = 0; i < va.size(); ++i) EXPECT_EQ(va[i], vb[i]);
}

TEST_F(SerializationTest, MpsRoundTripThroughFile) {
  const Mps psi = ansatz_state(5, 2);
  save_mps(psi, path_);
  const Mps back = load_mps(path_);
  EXPECT_NEAR(std::abs(inner_product(psi, back)), 1.0, 1e-12);
}

TEST_F(SerializationTest, LoadedStateIsUsable) {
  // The paper's workflow: persist training states, reload for inference.
  const Mps a = ansatz_state(5, 3);
  const Mps b = ansatz_state(5, 4);
  const double expect = overlap_squared(a, b);
  save_mps(a, path_);
  const Mps a2 = load_mps(path_);
  EXPECT_NEAR(overlap_squared(a2, b), expect, 1e-14);
}

TEST_F(SerializationTest, RejectsGarbageMagic) {
  std::ofstream os(path_, std::ios::binary);
  os << "definitely not an MPS file";
  os.close();
  EXPECT_THROW(load_mps(path_), Error);
}

TEST_F(SerializationTest, RejectsTruncatedPayload) {
  const Mps psi = ansatz_state(6, 5);
  std::stringstream ss;
  save_mps(psi, ss);
  const std::string full = ss.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(load_mps(cut), Error);
}

TEST_F(SerializationTest, KernelRoundTrip) {
  Rng rng(6);
  kernel::RealMatrix k(7, 5);
  for (idx i = 0; i < 7; ++i)
    for (idx j = 0; j < 5; ++j) k(i, j) = rng.normal();
  save_kernel(k, path_);
  const kernel::RealMatrix back = load_kernel(path_);
  EXPECT_EQ(back.rows(), 7);
  EXPECT_EQ(back.cols(), 5);
  EXPECT_EQ(kernel::max_abs_diff(k, back), 0.0);
}

TEST_F(SerializationTest, KernelRejectsMpsFile) {
  save_mps(ansatz_state(4, 7), path_);
  EXPECT_THROW(load_kernel(path_), Error);
}

TEST_F(SerializationTest, MissingFileThrows) {
  EXPECT_THROW(load_mps(path_ + ".missing"), Error);
  EXPECT_THROW(load_kernel(path_ + ".missing"), Error);
}

}  // namespace
}  // namespace qkmps::mps
