#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "serve/feature_key.hpp"
#include "serve/state_cache.hpp"
#include "test_helpers.hpp"

namespace qkmps::serve {
namespace {

/// Tiny distinguishable states: |0..0> on `sites` qubits with the first
/// amplitude tagged is overkill — distinct site counts are enough to tell
/// entries apart in assertions.
mps::Mps tagged_state(idx sites) { return mps::Mps(sites); }

std::vector<double> key_of(double a, double b) { return {a, b}; }

TEST(FeatureKey, HashIsDeterministicAndSpreads) {
  const auto k1 = key_of(0.25, 1.5);
  EXPECT_EQ(feature_hash(k1), feature_hash(k1));
  EXPECT_NE(feature_hash(key_of(0.25, 1.5)), feature_hash(key_of(1.5, 0.25)));
  EXPECT_NE(feature_hash(key_of(0.25, 1.5)), feature_hash(key_of(0.25, 1.5001)));
}

TEST(FeatureKey, BitwiseEqualityIsExact) {
  EXPECT_TRUE(feature_bits_equal(key_of(0.1, 0.2), key_of(0.1, 0.2)));
  EXPECT_FALSE(feature_bits_equal(key_of(0.1, 0.2), key_of(0.1, 0.3)));
  EXPECT_FALSE(feature_bits_equal({0.1}, {0.1, 0.2}));
  // -0.0 and +0.0 compare equal as doubles but differ bitwise: the cache
  // treats them as distinct keys (a redundant miss, never a wrong hit).
  EXPECT_FALSE(feature_bits_equal({-0.0}, {0.0}));
}

TEST(StateCache, MissThenHit) {
  StateCache cache(4);
  EXPECT_EQ(cache.find(key_of(1, 2)), nullptr);
  cache.insert(key_of(1, 2), tagged_state(3));
  const auto hit = cache.find(key_of(1, 2));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->num_sites(), 3);

  const CacheStats s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.evictions, 0u);
}

TEST(StateCache, EvictsLeastRecentlyUsed) {
  StateCache cache(2);
  cache.insert(key_of(1, 0), tagged_state(2));
  cache.insert(key_of(2, 0), tagged_state(3));
  cache.insert(key_of(3, 0), tagged_state(4));  // evicts (1,0)
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.find(key_of(1, 0)), nullptr);
  EXPECT_NE(cache.find(key_of(2, 0)), nullptr);
  EXPECT_NE(cache.find(key_of(3, 0)), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(StateCache, FindRefreshesRecency) {
  StateCache cache(2);
  cache.insert(key_of(1, 0), tagged_state(2));
  cache.insert(key_of(2, 0), tagged_state(3));
  ASSERT_NE(cache.find(key_of(1, 0)), nullptr);  // (2,0) now oldest
  cache.insert(key_of(3, 0), tagged_state(4));
  EXPECT_NE(cache.find(key_of(1, 0)), nullptr);
  EXPECT_EQ(cache.find(key_of(2, 0)), nullptr);
}

TEST(StateCache, DuplicateInsertKeepsExistingEntry) {
  StateCache cache(4);
  const auto first = cache.insert(key_of(5, 5), tagged_state(2));
  const auto second = cache.insert(key_of(5, 5), tagged_state(7));
  EXPECT_EQ(first.get(), second.get());  // original survives
  EXPECT_EQ(second->num_sites(), 2);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(StateCache, ZeroCapacityDisablesCaching) {
  StateCache cache(0);
  const auto passthrough = cache.insert(key_of(1, 1), tagged_state(2));
  ASSERT_NE(passthrough, nullptr);  // caller can still use the state
  EXPECT_EQ(passthrough->num_sites(), 2);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.find(key_of(1, 1)), nullptr);
}

TEST(StateCache, EvictedStateSurvivesViaSharedOwnership) {
  StateCache cache(1);
  const auto held = cache.insert(key_of(1, 1), tagged_state(5));
  cache.insert(key_of(2, 2), tagged_state(2));  // evicts (1,1)
  EXPECT_EQ(cache.find(key_of(1, 1)), nullptr);
  // The in-flight reference is unaffected by eviction.
  EXPECT_EQ(held->num_sites(), 5);
  EXPECT_NEAR(held->norm(), 1.0, 1e-12);
}

TEST(StateCache, ClearEmptiesWithoutTouchingCounters) {
  StateCache cache(4);
  cache.insert(key_of(1, 1), tagged_state(2));
  cache.find(key_of(1, 1));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.find(key_of(1, 1)), nullptr);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(StateCache, ConcurrentMixedAccessStaysConsistent) {
  // 8 threads hammer a 16-entry cache with 64 distinct keys: constant
  // hits, misses, and evictions racing each other. The assertions are
  // about invariants (bounded size, coherent counters, usable states),
  // not about which thread wins.
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kKeys = 64;
  constexpr std::size_t kOpsPerThread = 400;
  StateCache cache(16);
  std::atomic<std::uint64_t> observed_hits{0};
  std::atomic<std::uint64_t> bad_states{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(100 + t);
      for (std::size_t op = 0; op < kOpsPerThread; ++op) {
        const auto k = static_cast<double>(rng.uniform_int(kKeys));
        const std::vector<double> key{k, k + 0.5};
        auto state = cache.find(key);
        if (state == nullptr)
          state = cache.insert(key, tagged_state(2 + (static_cast<idx>(k) % 3)));
        else
          observed_hits.fetch_add(1);
        if (state->num_sites() != 2 + (static_cast<idx>(k) % 3))
          bad_states.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(bad_states.load(), 0u);
  EXPECT_LE(cache.size(), 16u);
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, observed_hits.load());
  EXPECT_EQ(s.hits + s.misses, kThreads * kOpsPerThread);
  EXPECT_GE(s.insertions, 16u);  // at least enough to fill the cache
  EXPECT_EQ(s.insertions, s.evictions + cache.size());
}

}  // namespace
}  // namespace qkmps::serve
