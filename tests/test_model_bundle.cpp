#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>

#include "kernel/gram.hpp"
#include "mps/serialization.hpp"
#include "serve/model_bundle.hpp"
#include "serve_test_fixture.hpp"
#include "svm/svm.hpp"
#include "test_helpers.hpp"

namespace qkmps::serve {
namespace {

using qkmps::testing::TrainedServing;
using qkmps::testing::train_small_serving;

class ModelBundleTest : public ::testing::Test {
 protected:
  std::string dir_ = ::testing::TempDir() + "/qkmps_bundle_test";
  void TearDown() override {
    std::filesystem::remove_all(dir_);
    std::filesystem::remove_all(dir_ + ".tmp");
  }
};

TEST_F(ModelBundleTest, MakeBundleKeepsOnlySupportVectors) {
  const TrainedServing t = train_small_serving(1);
  const ModelBundle& bundle = t.bundle;
  ASSERT_GT(bundle.num_support_vectors(), 0);
  EXPECT_EQ(bundle.num_support_vectors(), t.full_model.support_vector_count());
  EXPECT_EQ(bundle.sv_states.size(), bundle.model.alpha.size());
  EXPECT_EQ(bundle.sv_indices.size(), bundle.model.alpha.size());
  for (double a : bundle.model.alpha) EXPECT_GT(a, 0.0);
  // The kept states are the training states at the SV indices, unchanged.
  for (std::size_t s = 0; s < bundle.sv_states.size(); ++s) {
    const auto& orig =
        t.train_states[static_cast<std::size_t>(bundle.sv_indices[s])];
    EXPECT_EQ(bundle.sv_states[s].to_statevector(), orig.to_statevector());
  }
}

TEST_F(ModelBundleTest, SaveLoadRoundTripIsBitwise) {
  const TrainedServing t = train_small_serving(2);
  const ModelBundle& bundle = t.bundle;
  save_bundle(bundle, dir_);
  const ModelBundle back = load_bundle(dir_);

  EXPECT_EQ(back.config.ansatz.num_features, bundle.config.ansatz.num_features);
  EXPECT_EQ(back.config.ansatz.layers, bundle.config.ansatz.layers);
  EXPECT_EQ(back.config.ansatz.distance, bundle.config.ansatz.distance);
  EXPECT_EQ(back.config.ansatz.gamma, bundle.config.ansatz.gamma);
  EXPECT_EQ(back.config.sim.policy, bundle.config.sim.policy);
  EXPECT_EQ(back.config.sim.truncation.max_discarded_weight,
            bundle.config.sim.truncation.max_discarded_weight);
  EXPECT_EQ(back.config.sim.truncation.max_bond,
            bundle.config.sim.truncation.max_bond);

  EXPECT_EQ(back.scaler.mean(), bundle.scaler.mean());
  EXPECT_EQ(back.scaler.stddev(), bundle.scaler.stddev());
  EXPECT_EQ(back.scaler.min_z(), bundle.scaler.min_z());
  EXPECT_EQ(back.scaler.max_z(), bundle.scaler.max_z());
  EXPECT_EQ(back.scaler.lo(), bundle.scaler.lo());
  EXPECT_EQ(back.scaler.hi(), bundle.scaler.hi());

  EXPECT_EQ(back.model.alpha, bundle.model.alpha);
  EXPECT_EQ(back.model.y, bundle.model.y);
  EXPECT_EQ(back.model.bias, bundle.model.bias);
  EXPECT_EQ(back.model.iterations, bundle.model.iterations);
  EXPECT_EQ(back.model.converged, bundle.model.converged);
  EXPECT_EQ(back.sv_indices, bundle.sv_indices);

  ASSERT_EQ(back.sv_states.size(), bundle.sv_states.size());
  for (std::size_t s = 0; s < back.sv_states.size(); ++s)
    EXPECT_EQ(back.sv_states[s].to_statevector(),
              bundle.sv_states[s].to_statevector());
}

TEST_F(ModelBundleTest, LoadedBundleScoresIdentically) {
  const TrainedServing t = train_small_serving(3);
  const ModelBundle& bundle = t.bundle;
  save_bundle(bundle, dir_);
  const ModelBundle back = load_bundle(dir_);

  const auto x_test = back.scaler.transform(t.x_test_raw);
  const auto test_states = kernel::simulate_states(back.config, x_test);
  const auto k_orig = kernel::cross_from_states(test_states, bundle.sv_states,
                                                bundle.config.sim.policy);
  const auto k_back = kernel::cross_from_states(test_states, back.sv_states,
                                                back.config.sim.policy);
  const auto f_orig = bundle.model.decision_values(k_orig);
  const auto f_back = back.model.decision_values(k_back);
  ASSERT_EQ(f_orig.size(), f_back.size());
  for (std::size_t i = 0; i < f_orig.size(); ++i)
    EXPECT_EQ(f_orig[i], f_back[i]);
}

TEST_F(ModelBundleTest, ReplacesExistingBundleAtomically) {
  const TrainedServing t = train_small_serving(8);
  save_bundle(t.bundle, dir_);
  save_bundle(t.bundle, dir_);  // re-save over the first bundle succeeds
  const ModelBundle back = load_bundle(dir_);
  EXPECT_EQ(back.sv_indices, t.bundle.sv_indices);
  EXPECT_FALSE(std::filesystem::exists(dir_ + ".tmp"));  // staging swapped in
}

TEST_F(ModelBundleTest, RefusesToReplaceNonBundleDirectory) {
  std::filesystem::create_directories(dir_);
  std::ofstream(dir_ + "/precious.txt") << "user data";
  const TrainedServing t = train_small_serving(9);
  EXPECT_THROW(save_bundle(t.bundle, dir_), Error);
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/precious.txt"));
}

TEST_F(ModelBundleTest, RejectsMissingDirectory) {
  EXPECT_THROW(load_bundle(dir_ + "_nonexistent"), Error);
}

TEST_F(ModelBundleTest, RejectsGarbageManifest) {
  std::filesystem::create_directories(dir_);
  std::ofstream os(dir_ + "/bundle.qkb", std::ios::binary);
  os << "this is not a bundle manifest at all";
  os.close();
  EXPECT_THROW(load_bundle(dir_), Error);
}

TEST_F(ModelBundleTest, RejectsUnsupportedVersion) {
  std::filesystem::create_directories(dir_);
  std::ofstream os(dir_ + "/bundle.qkb", std::ios::binary);
  const std::uint32_t magic = 0x51'4B'42'4C;  // correct "QKBL"
  const std::uint32_t version = 999;
  os.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  os.write(reinterpret_cast<const char*>(&version), sizeof(version));
  os.close();
  EXPECT_THROW(load_bundle(dir_), Error);
}

TEST_F(ModelBundleTest, RejectsTruncatedManifest) {
  const TrainedServing t = train_small_serving(4);
  save_bundle(t.bundle, dir_);
  const auto path = dir_ + "/bundle.qkb";
  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size / 2);
  EXPECT_THROW(load_bundle(dir_), Error);
}

TEST_F(ModelBundleTest, RejectsCorruptVectorLength) {
  const TrainedServing t = train_small_serving(7);
  save_bundle(t.bundle, dir_);
  // The scaler's mean vector length (int64) sits right after the 76-byte
  // fixed header (magic, version, 3x int64 ansatz, f64 gamma, i32 policy,
  // f64 weight, i64 max_bond, f64 lo, f64 hi). Blow it up to ~2^40: load
  // must fail with qkmps::Error (bounded read), not bad_alloc.
  const auto path = dir_ + "/bundle.qkb";
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  const std::streamoff length_offset = 4 + 4 + 3 * 8 + 8 + 4 + 8 + 8 + 8 + 8;
  f.seekp(length_offset);
  const std::int64_t huge = std::int64_t{1} << 40;
  f.write(reinterpret_cast<const char*>(&huge), sizeof(huge));
  f.close();
  EXPECT_THROW(load_bundle(dir_), Error);
}

TEST_F(ModelBundleTest, RejectsMissingStateFile) {
  const TrainedServing t = train_small_serving(5);
  const ModelBundle& bundle = t.bundle;
  save_bundle(bundle, dir_);
  ASSERT_GT(bundle.num_support_vectors(), 0);
  std::filesystem::remove(dir_ + "/sv_0.mps");
  EXPECT_THROW(load_bundle(dir_), Error);
}

TEST_F(ModelBundleTest, RejectsStateWithWrongQubitCount) {
  const TrainedServing t = train_small_serving(6);
  save_bundle(t.bundle, dir_);
  // Overwrite the first SV state with a valid MPS of the wrong width.
  mps::save_mps(mps::Mps(3), dir_ + "/sv_0.mps");
  EXPECT_THROW(load_bundle(dir_), Error);
}

}  // namespace
}  // namespace qkmps::serve
