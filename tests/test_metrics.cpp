#include <gtest/gtest.h>

#include "svm/metrics.hpp"
#include "util/error.hpp"

namespace qkmps::svm {
namespace {

TEST(Metrics, AccuracyOfPerfectPrediction) {
  EXPECT_DOUBLE_EQ(accuracy({1, -1, 1}, {1, -1, 1}), 1.0);
}

TEST(Metrics, AccuracyCountsMistakes) {
  EXPECT_DOUBLE_EQ(accuracy({1, -1, 1, -1}, {1, 1, 1, 1}), 0.5);
}

TEST(Metrics, PrecisionKnownConfusion) {
  // pred + on {1, -1, 1}: TP=2, FP=1 -> precision 2/3.
  EXPECT_DOUBLE_EQ(precision({1, -1, 1, -1}, {1, 1, 1, -1}), 2.0 / 3.0);
}

TEST(Metrics, PrecisionZeroWhenNoPositivePredictions) {
  EXPECT_DOUBLE_EQ(precision({1, 1}, {-1, -1}), 0.0);
}

TEST(Metrics, RecallKnownConfusion) {
  // truth has 3 positives, 2 caught -> recall 2/3.
  EXPECT_DOUBLE_EQ(recall({1, 1, 1, -1}, {1, 1, -1, -1}), 2.0 / 3.0);
}

TEST(Metrics, RecallOneWhenAllPositivesFound) {
  EXPECT_DOUBLE_EQ(recall({1, -1}, {1, 1}), 1.0);
}

TEST(Metrics, AucPerfectRanking) {
  EXPECT_DOUBLE_EQ(roc_auc({-1, -1, 1, 1}, {0.1, 0.2, 0.8, 0.9}), 1.0);
}

TEST(Metrics, AucInvertedRankingIsZero) {
  EXPECT_DOUBLE_EQ(roc_auc({1, 1, -1, -1}, {0.1, 0.2, 0.8, 0.9}), 0.0);
}

TEST(Metrics, AucRandomScoresIsHalfInExpectation) {
  // All scores equal: AUC must be exactly 0.5 via midranks.
  EXPECT_DOUBLE_EQ(roc_auc({1, -1, 1, -1}, {0.5, 0.5, 0.5, 0.5}), 0.5);
}

TEST(Metrics, AucKnownMixedCase) {
  // scores: pos {0.9, 0.4}, neg {0.6, 0.1}. Pairs won: (0.9>0.6), (0.9>0.1),
  // (0.4<0.6) loses, (0.4>0.1) wins -> 3/4.
  EXPECT_DOUBLE_EQ(roc_auc({1, 1, -1, -1}, {0.9, 0.4, 0.6, 0.1}), 0.75);
}

TEST(Metrics, AucHandlesTiesAsHalfWins) {
  // One tie between a positive and a negative counts 1/2.
  EXPECT_DOUBLE_EQ(roc_auc({1, -1}, {0.5, 0.5}), 0.5);
}

TEST(Metrics, AucInvariantToMonotoneTransform) {
  const std::vector<int> y{1, -1, 1, -1, 1};
  const std::vector<double> s{2.0, -1.0, 0.5, 0.2, 3.0};
  std::vector<double> s2;
  for (double v : s) s2.push_back(v * 10.0 + 3.0);
  EXPECT_DOUBLE_EQ(roc_auc(y, s), roc_auc(y, s2));
}

TEST(Metrics, AucRequiresBothClasses) {
  EXPECT_THROW(roc_auc({1, 1}, {0.1, 0.2}), Error);
}

TEST(Metrics, RocCurveEndpoints) {
  const auto pts = roc_curve({1, -1, 1, -1}, {0.9, 0.4, 0.6, 0.1});
  EXPECT_EQ(pts.front(), (std::pair<double, double>{0.0, 0.0}));
  EXPECT_EQ(pts.back(), (std::pair<double, double>{1.0, 1.0}));
}

TEST(Metrics, RocCurveMonotone) {
  const auto pts = roc_curve({1, -1, 1, -1, 1, -1}, {0.9, 0.8, 0.7, 0.6, 0.5, 0.4});
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].first, pts[i - 1].first);
    EXPECT_GE(pts[i].second, pts[i - 1].second);
  }
}

TEST(Metrics, EvaluateBundlesAllFour) {
  const std::vector<int> y{1, 1, -1, -1};
  const std::vector<double> scores{0.7, -0.2, -0.5, 0.1};
  const Metrics m = evaluate(y, scores);
  EXPECT_DOUBLE_EQ(m.accuracy, 0.5);
  EXPECT_DOUBLE_EQ(m.precision, 0.5);
  EXPECT_DOUBLE_EQ(m.recall, 0.5);
  EXPECT_DOUBLE_EQ(m.auc, 0.75);
}

TEST(Metrics, MismatchedSizesThrow) {
  EXPECT_THROW(accuracy({1}, {1, -1}), Error);
  EXPECT_THROW(roc_auc({1, -1}, {0.5}), Error);
}

}  // namespace
}  // namespace qkmps::svm
