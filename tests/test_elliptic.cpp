#include <gtest/gtest.h>

#include <cmath>

#include "data/elliptic_synthetic.hpp"
#include "data/preprocess.hpp"
#include "data/splits.hpp"
#include "kernel/gaussian.hpp"
#include "svm/model_selection.hpp"
#include "test_helpers.hpp"

namespace qkmps::data {
namespace {

EllipticSyntheticParams small_params(idx n = 2000, idx m = 40) {
  EllipticSyntheticParams p;
  p.num_points = n;
  p.num_features = m;
  return p;
}

TEST(EllipticSynthetic, ShapeMatchesParams) {
  const Dataset d = generate_elliptic_synthetic(small_params(500, 20));
  EXPECT_EQ(d.size(), 500);
  EXPECT_EQ(d.num_features(), 20);
}

TEST(EllipticSynthetic, ClassImbalanceMatchesElliptic) {
  const Dataset d = generate_elliptic_synthetic(small_params(5000, 10));
  const double frac = static_cast<double>(d.positives()) / 5000.0;
  // Paper pool: 4545/46564 ~ 9.76% illicit.
  EXPECT_NEAR(frac, 4545.0 / 46564.0, 0.02);
}

TEST(EllipticSynthetic, DeterministicForFixedSeed) {
  const Dataset a = generate_elliptic_synthetic(small_params(200, 8));
  const Dataset b = generate_elliptic_synthetic(small_params(200, 8));
  EXPECT_EQ(a.y, b.y);
  EXPECT_DOUBLE_EQ(a.x(7, 3), b.x(7, 3));
}

TEST(EllipticSynthetic, SeedChangesData) {
  EllipticSyntheticParams p = small_params(200, 8);
  const Dataset a = generate_elliptic_synthetic(p);
  p.seed += 1;
  const Dataset b = generate_elliptic_synthetic(p);
  EXPECT_NE(a.x(0, 0), b.x(0, 0));
}

TEST(EllipticSynthetic, EarlyFeaturesCarryMoreSignal) {
  // Property behind the Figs. 9-10 trend: |corr(feature_j, label)| decays
  // in j on average. Compare mean |corr| of the first vs last quartile.
  const Dataset d = generate_elliptic_synthetic(small_params(4000, 40));
  const idx n = d.size(), m = d.num_features();
  std::vector<double> corr(static_cast<std::size_t>(m), 0.0);
  for (idx j = 0; j < m; ++j) {
    double mx = 0.0, my = 0.0;
    for (idx i = 0; i < n; ++i) {
      mx += d.x(i, j);
      my += d.y[static_cast<std::size_t>(i)];
    }
    mx /= static_cast<double>(n);
    my /= static_cast<double>(n);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (idx i = 0; i < n; ++i) {
      const double dx = d.x(i, j) - mx;
      const double dy = static_cast<double>(d.y[static_cast<std::size_t>(i)]) - my;
      sxy += dx * dy;
      sxx += dx * dx;
      syy += dy * dy;
    }
    corr[static_cast<std::size_t>(j)] = std::abs(sxy / std::sqrt(sxx * syy));
  }
  double head = 0.0, tail = 0.0;
  for (idx j = 0; j < 10; ++j) head += corr[static_cast<std::size_t>(j)];
  for (idx j = 30; j < 40; ++j) tail += corr[static_cast<std::size_t>(j)];
  EXPECT_GT(head, tail);
}

TEST(EllipticSynthetic, SignalIsLearnable) {
  // End-to-end sanity: a Gaussian-kernel SVM on a balanced subsample must
  // beat chance clearly (the generator must not be pure noise).
  const Dataset pool = generate_elliptic_synthetic(small_params(4000, 30));
  Rng rng(99);
  const Dataset sample = balanced_subsample(pool, 100, rng);
  const TrainTestSplit split = train_test_split(sample, 0.2, rng);

  const FeatureScaler scaler = FeatureScaler::fit(split.train.x);
  const auto xtr = scaler.transform(split.train.x);
  const auto xte = scaler.transform(split.test.x);
  const double alpha = kernel::gaussian_alpha(xtr);
  const auto pts = svm::sweep_regularization(
      kernel::gaussian_gram(xtr, alpha), split.train.y,
      kernel::gaussian_cross(xte, xtr, alpha), split.test.y,
      svm::default_c_grid());
  EXPECT_GT(svm::best_by_test_auc(pts).test.auc, 0.7);
}

TEST(EllipticSynthetic, RejectsDegenerateParams) {
  EllipticSyntheticParams p;
  p.num_points = 1;
  EXPECT_THROW(generate_elliptic_synthetic(p), Error);
  p = EllipticSyntheticParams{};
  p.positive_fraction = 0.0;
  EXPECT_THROW(generate_elliptic_synthetic(p), Error);
}

}  // namespace
}  // namespace qkmps::data
