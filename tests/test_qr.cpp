#include <gtest/gtest.h>

#include <tuple>

#include "linalg/gemm.hpp"
#include "linalg/norms.hpp"
#include "linalg/qr.hpp"
#include "test_helpers.hpp"

namespace qkmps::linalg {
namespace {

class QrShapes : public ::testing::TestWithParam<std::pair<idx, idx>> {};

TEST_P(QrShapes, ReconstructsInput) {
  const auto [m, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 131 + n));
  const Matrix a = testing::random_matrix(m, n, rng);
  const QrResult f = qr_thin(a);
  EXPECT_LT(max_abs_diff(gemm_reference(f.q, f.r), a), 1e-12);
}

TEST_P(QrShapes, QHasOrthonormalColumns) {
  const auto [m, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 733 + n));
  const QrResult f = qr_thin(testing::random_matrix(m, n, rng));
  EXPECT_LT(orthonormality_defect(f.q), 1e-13);
}

TEST_P(QrShapes, RIsUpperTriangular) {
  const auto [m, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 389 + n));
  const QrResult f = qr_thin(testing::random_matrix(m, n, rng));
  for (idx i = 0; i < f.r.rows(); ++i)
    for (idx j = 0; j < std::min(i, f.r.cols()); ++j)
      EXPECT_EQ(f.r(i, j), cplx(0.0));
}

TEST_P(QrShapes, LqReconstructsInput) {
  const auto [m, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 97 + n * 11));
  const Matrix a = testing::random_matrix(m, n, rng);
  const LqResult f = lq_thin(a);
  EXPECT_LT(max_abs_diff(gemm_reference(f.l, f.q), a), 1e-12);
}

TEST_P(QrShapes, LqQHasOrthonormalRows) {
  const auto [m, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 41 + n * 3));
  const LqResult f = lq_thin(testing::random_matrix(m, n, rng));
  EXPECT_LT(orthonormality_defect(f.q.adjoint()), 1e-13);
}

INSTANTIATE_TEST_SUITE_P(ShapeSweep, QrShapes,
                         ::testing::Values(std::make_pair(1, 1),
                                           std::make_pair(5, 5),
                                           std::make_pair(8, 3),
                                           std::make_pair(3, 8),
                                           std::make_pair(40, 40),
                                           std::make_pair(64, 17),
                                           std::make_pair(17, 64),
                                           std::make_pair(100, 60)));

TEST(Qr, ThinShapes) {
  Rng rng(9);
  const QrResult f = qr_thin(testing::random_matrix(10, 4, rng));
  EXPECT_EQ(f.q.rows(), 10);
  EXPECT_EQ(f.q.cols(), 4);
  EXPECT_EQ(f.r.rows(), 4);
  EXPECT_EQ(f.r.cols(), 4);
}

TEST(Qr, RankDeficientStillReconstructs) {
  Rng rng(10);
  Matrix a(8, 4);
  const Matrix col = testing::random_matrix(8, 1, rng);
  for (idx i = 0; i < 8; ++i)
    for (idx j = 0; j < 4; ++j) a(i, j) = col(i, 0) * static_cast<double>(j + 1);
  const QrResult f = qr_thin(a);
  EXPECT_LT(max_abs_diff(gemm_reference(f.q, f.r), a), 1e-12);
  EXPECT_LT(orthonormality_defect(f.q), 1e-12);
}

TEST(Qr, DiagonalOfRAbsorbsNorm) {
  // QR of a single column: |R(0,0)| must equal the column norm.
  Rng rng(11);
  const Matrix a = testing::random_matrix(20, 1, rng);
  const QrResult f = qr_thin(a);
  EXPECT_NEAR(std::abs(f.r(0, 0)), frobenius_norm(a), 1e-12);
}

}  // namespace
}  // namespace qkmps::linalg
