#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "circuit/ansatz.hpp"
#include "mps/gate_application.hpp"
#include "mps/sampling.hpp"
#include "mps/simulator.hpp"
#include "test_helpers.hpp"

namespace qkmps::mps {
namespace {

Mps ansatz_state(idx m, std::uint64_t seed) {
  Rng rng(seed);
  const circuit::AnsatzParams p{.num_features = m, .layers = 1, .distance = 2,
                                .gamma = 0.7};
  MpsSimulator sim;
  return sim
      .simulate(circuit::feature_map_circuit(
          p, qkmps::testing::random_features(m, rng)))
      .state;
}

TEST(Sampling, DeterministicStateGivesDeterministicSamples) {
  Mps psi(4);  // |0000>
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    const auto bits = sample_bitstring(psi, rng);
    for (int b : bits) EXPECT_EQ(b, 0);
  }
}

TEST(Sampling, FlippedStateSamplesOnes) {
  Mps psi(3);
  for (idx q = 0; q < 3; ++q)
    apply_single_qubit_gate(psi, circuit::make_x(q).matrix(), q);
  Rng rng(2);
  const auto bits = sample_bitstring(psi, rng);
  for (int b : bits) EXPECT_EQ(b, 1);
}

TEST(Sampling, PlusStateFrequenciesAreUniform) {
  Mps psi = Mps::plus_state(3);
  Rng rng(3);
  std::map<int, int> counts;
  const int shots = 8000;
  for (const auto& bits : sample_bitstrings(psi, shots, rng)) {
    int key = 0;
    for (int b : bits) key = key * 2 + b;
    ++counts[key];
  }
  for (int k = 0; k < 8; ++k) {
    const double freq = static_cast<double>(counts[k]) / shots;
    EXPECT_NEAR(freq, 1.0 / 8.0, 0.02) << "outcome " << k;
  }
}

TEST(Sampling, FrequenciesMatchBornRule) {
  const Mps psi = ansatz_state(4, 4);
  Rng rng(5);
  const int shots = 20000;
  std::map<int, int> counts;
  for (const auto& bits : sample_bitstrings(psi, shots, rng)) {
    int key = 0;
    for (int b : bits) key = key * 2 + b;
    ++counts[key];
  }
  // Compare empirical frequencies against exact probabilities.
  for (int k = 0; k < 16; ++k) {
    std::vector<int> bits(4);
    for (int q = 0; q < 4; ++q) bits[static_cast<std::size_t>(q)] = (k >> (3 - q)) & 1;
    const double p = bitstring_probability(psi, bits);
    const double freq = static_cast<double>(counts[k]) / shots;
    EXPECT_NEAR(freq, p, 4.0 * std::sqrt(p * (1 - p) / shots) + 0.005);
  }
}

TEST(Sampling, ProbabilitiesSumToOne) {
  const Mps psi = ansatz_state(5, 6);
  double total = 0.0;
  for (int k = 0; k < 32; ++k) {
    std::vector<int> bits(5);
    for (int q = 0; q < 5; ++q) bits[static_cast<std::size_t>(q)] = (k >> (4 - q)) & 1;
    total += bitstring_probability(psi, bits);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Sampling, ProbabilityMatchesStatevector) {
  const Mps psi = ansatz_state(5, 7);
  const auto amps = psi.to_statevector();
  for (int k : {0, 7, 13, 31}) {
    std::vector<int> bits(5);
    for (int q = 0; q < 5; ++q) bits[static_cast<std::size_t>(q)] = (k >> (4 - q)) & 1;
    EXPECT_NEAR(bitstring_probability(psi, bits),
                std::norm(amps[static_cast<std::size_t>(k)]), 1e-10);
  }
}

TEST(Sampling, SeededStreamsReproduce) {
  const Mps psi = ansatz_state(4, 8);
  Rng r1(42), r2(42);
  EXPECT_EQ(sample_bitstrings(psi, 50, r1), sample_bitstrings(psi, 50, r2));
}

TEST(Sampling, RejectsWrongLengthBitstring) {
  const Mps psi(3);
  EXPECT_THROW(bitstring_probability(psi, {0, 1}), Error);
}

}  // namespace
}  // namespace qkmps::mps
