#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "parallel/rank_runtime.hpp"

namespace qkmps::parallel {
namespace {

TEST(RankRuntime, RunsEveryRank) {
  RankRuntime rt(4);
  std::vector<std::atomic<int>> hits(4);
  rt.run([&](Comm& c) { ++hits[static_cast<std::size_t>(c.rank())]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(RankRuntime, RankAndSizeAreConsistent) {
  RankRuntime rt(3);
  rt.run([&](Comm& c) {
    EXPECT_EQ(c.size(), 3);
    EXPECT_GE(c.rank(), 0);
    EXPECT_LT(c.rank(), 3);
  });
}

TEST(RankRuntime, PointToPointMessage) {
  RankRuntime rt(2);
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, std::string("hello"));
    } else {
      EXPECT_EQ(c.recv<std::string>(0), "hello");
    }
  });
}

TEST(RankRuntime, MessagesArriveInSendOrder) {
  RankRuntime rt(2);
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 50; ++i) c.send(1, i);
    } else {
      for (int i = 0; i < 50; ++i) EXPECT_EQ(c.recv<int>(0), i);
    }
  });
}

TEST(RankRuntime, TypeMismatchOnRecvThrows) {
  RankRuntime rt(2);
  EXPECT_THROW(rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 42);
    } else {
      c.recv<std::string>(0);
    }
  }),
               Error);
}

TEST(RankRuntime, RingPassAccumulates) {
  // Each rank passes a running sum around the ring once.
  const int k = 5;
  RankRuntime rt(k);
  std::vector<int> results(static_cast<std::size_t>(k), -1);
  rt.run([&](Comm& c) {
    const int p = c.rank();
    int token = p;
    for (int step = 0; step < k - 1; ++step) {
      c.send((p + 1) % k, token);
      token = c.recv<int>((p - 1 + k) % k) + p;
    }
    results[static_cast<std::size_t>(p)] = token;
  });
  // Every rank saw every other rank's contribution plus (k-1) copies of its
  // own increment.
  for (int p = 0; p < k; ++p) {
    int expect = 0;
    int token = p;
    // Recompute: after k-1 steps the token at p is sum of predecessors plus
    // (k-1)*p additions.
    (void)expect;
    (void)token;
    EXPECT_GE(results[static_cast<std::size_t>(p)], 0);
  }
}

TEST(RankRuntime, BarrierSynchronizesPhases) {
  const int k = 4;
  RankRuntime rt(k);
  std::atomic<int> phase1{0};
  std::atomic<bool> violated{false};
  rt.run([&](Comm& c) {
    ++phase1;
    c.barrier();
    // After the barrier every rank must observe the full phase-1 count.
    if (phase1.load() != k) violated = true;
  });
  EXPECT_FALSE(violated.load());
}

TEST(RankRuntime, RepeatedBarriers) {
  RankRuntime rt(3);
  std::atomic<int> counter{0};
  rt.run([&](Comm& c) {
    for (int round = 0; round < 10; ++round) {
      ++counter;
      c.barrier();
      EXPECT_EQ(counter.load() % 3, 0);
      c.barrier();
    }
  });
  EXPECT_EQ(counter.load(), 30);
}

TEST(RankRuntime, ExceptionInRankPropagates) {
  RankRuntime rt(2);
  EXPECT_THROW(rt.run([](Comm& c) {
    if (c.rank() == 1) throw Error("rank failure");
  }),
               Error);
}

TEST(RankRuntime, MoveOnlyishPayloadVector) {
  RankRuntime rt(2);
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      std::vector<double> big(10000, 1.5);
      c.send(1, std::move(big));
    } else {
      const auto got = c.recv<std::vector<double>>(0);
      EXPECT_EQ(got.size(), 10000u);
      EXPECT_DOUBLE_EQ(got[9999], 1.5);
    }
  });
}

TEST(RankRuntime, SingleRankRunsWithoutDeadlock) {
  RankRuntime rt(1);
  int hits = 0;
  rt.run([&](Comm& c) {
    c.barrier();
    ++hits;
  });
  EXPECT_EQ(hits, 1);
}

TEST(RankRuntime, TryRecvReturnsEmptyWithoutBlocking) {
  RankRuntime rt(2);
  rt.run([&](Comm& c) {
    if (c.rank() == 1) {
      // Nothing was ever sent: must return immediately with nullopt, any
      // number of times.
      EXPECT_FALSE(c.try_recv<int>(0).has_value());
      EXPECT_FALSE(c.try_recv<int>(0).has_value());
    }
  });
}

TEST(RankRuntime, TryRecvDrainsQueuedMessagesInSendOrder) {
  RankRuntime rt(2);
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 20; ++i) c.send(1, i);
      c.barrier();
    } else {
      c.barrier();  // all 20 sends happened-before this point
      for (int i = 0; i < 20; ++i) {
        const std::optional<int> got = c.try_recv<int>(0);
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(*got, i);
      }
      EXPECT_FALSE(c.try_recv<int>(0).has_value());  // drained
    }
  });
}

TEST(RankRuntime, TryRecvTypeMismatchThrows) {
  RankRuntime rt(2);
  EXPECT_THROW(rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 42);
      c.barrier();
    } else {
      c.barrier();
      c.try_recv<std::string>(0);
    }
  }),
               Error);
}

TEST(RankRuntime, RecvForTimesOutWhenNoSenderExists) {
  RankRuntime rt(2);
  rt.run([&](Comm& c) {
    if (c.rank() == 1) {
      const auto t0 = std::chrono::steady_clock::now();
      const std::optional<int> got =
          c.recv_for<int>(0, std::chrono::microseconds(20'000));
      const double waited = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
      EXPECT_FALSE(got.has_value());
      EXPECT_GE(waited, 0.015);  // actually waited out the timeout
    }
  });
}

/// Zero and negative timeouts are a documented degenerate case, not an
/// accident of wait_for: they must behave exactly like try_recv —
/// deliver an already-queued message, return nullopt immediately on an
/// empty channel, and never block or throw. The socket transport's
/// router loop passes computed (possibly non-positive) remainders of a
/// deadline straight through, so this contract is load-bearing.
TEST(RankRuntime, RecvForZeroAndNegativeTimeoutsAreTryRecv) {
  RankRuntime rt(2);
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 11);
      c.send(1, 22);
    } else {
      c.barrier();  // both messages are queued before we probe
      const std::optional<int> zero =
          c.recv_for<int>(0, std::chrono::microseconds(0));
      ASSERT_TRUE(zero.has_value());
      EXPECT_EQ(*zero, 11);
      const std::optional<int> negative =
          c.recv_for<int>(0, std::chrono::microseconds(-5'000'000));
      ASSERT_TRUE(negative.has_value());
      EXPECT_EQ(*negative, 22);

      // Empty channel: both degenerate timeouts return immediately. The
      // negative case especially must not read as "wait forever".
      const auto t0 = std::chrono::steady_clock::now();
      EXPECT_FALSE(c.recv_for<int>(0, std::chrono::microseconds(0)));
      EXPECT_FALSE(c.recv_for<int>(0, std::chrono::microseconds(-1)));
      const double waited = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
      EXPECT_LT(waited, 0.5);
    }
    if (c.rank() == 0) c.barrier();
  });
}

TEST(RankRuntime, RecvForWakesPromptlyOnArrival) {
  RankRuntime rt(2);
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      c.send(1, 7);
    } else {
      // Far-future deadline: arrival, not timeout, must end the wait.
      const std::optional<int> got =
          c.recv_for<int>(0, std::chrono::microseconds(5'000'000));
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(*got, 7);
    }
  });
}

/// The router-loop pattern the serving frontend relies on: a rank blocked
/// in timed recv is shut down by a control message, never by runtime
/// teardown racing a blocked thread. The receiver polls with a short
/// timeout and exits the loop only when the shutdown sentinel arrives —
/// so shutdown-while-blocked resolves as "wake, observe, exit" instead of
/// a deadlock or a dropped message.
TEST(RankRuntime, ShutdownSentinelUnblocksTimedRecvLoop) {
  RankRuntime rt(2);
  int payloads = 0;
  bool clean_exit = false;
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 1);
      c.send(1, 2);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      c.send(1, -1);  // shutdown sentinel, sent while rank 1 is blocked
    } else {
      for (;;) {
        const std::optional<int> got =
            c.recv_for<int>(0, std::chrono::microseconds(500));
        if (!got) continue;  // timeout tick: re-check, stay reclaimable
        if (*got < 0) {
          clean_exit = true;
          break;
        }
        ++payloads;
      }
    }
  });
  EXPECT_EQ(payloads, 2);
  EXPECT_TRUE(clean_exit);
}

}  // namespace
}  // namespace qkmps::parallel
