#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>

#include "linalg/policy.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace qkmps {
namespace {

class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~EnvGuard() { ::unsetenv(name_); }

 private:
  const char* name_;
};

TEST(Cli, EnvIntFallsBackWhenUnset) {
  ::unsetenv("QKMPS_TEST_UNSET");
  EXPECT_EQ(env_int("QKMPS_TEST_UNSET", 7), 7);
}

TEST(Cli, EnvIntParsesValue) {
  EnvGuard g("QKMPS_TEST_INT", "42");
  EXPECT_EQ(env_int("QKMPS_TEST_INT", 0), 42);
}

TEST(Cli, EnvIntRejectsGarbage) {
  EnvGuard g("QKMPS_TEST_INT", "12abc");
  EXPECT_EQ(env_int("QKMPS_TEST_INT", 5), 5);
}

TEST(Cli, EnvIntNegative) {
  EnvGuard g("QKMPS_TEST_INT", "-3");
  EXPECT_EQ(env_int("QKMPS_TEST_INT", 0), -3);
}

TEST(Cli, EnvDoubleParsesValue) {
  EnvGuard g("QKMPS_TEST_DBL", "2.5");
  EXPECT_DOUBLE_EQ(env_double("QKMPS_TEST_DBL", 0.0), 2.5);
}

TEST(Cli, EnvDoubleRejectsGarbage) {
  EnvGuard g("QKMPS_TEST_DBL", "x");
  EXPECT_DOUBLE_EQ(env_double("QKMPS_TEST_DBL", 1.5), 1.5);
}

TEST(Cli, FullScaleFlag) {
  {
    EnvGuard g("QKMPS_FULL", "1");
    EXPECT_TRUE(full_scale_requested());
  }
  {
    EnvGuard g("QKMPS_FULL", "0");
    EXPECT_FALSE(full_scale_requested());
  }
}

TEST(Timer, MeasuresElapsedWallTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = t.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 2.0);
}

TEST(Timer, ResetRestartsClock) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  t.reset();
  EXPECT_LT(t.seconds(), 0.015);
}

TEST(ThreadCpuTimer, DoesNotAdvanceWhileSleeping) {
  ThreadCpuTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // Sleeping burns no CPU; allow generous scheduling noise.
  EXPECT_LT(t.seconds(), 0.02);
}

TEST(ThreadCpuTimer, AdvancesUnderCompute) {
  ThreadCpuTimer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 20'000'000; ++i) sink = sink + static_cast<double>(i) * 1e-9;
  EXPECT_GT(t.seconds(), 0.001);
}

TEST(PhaseTimer, AccumulatesNamedPhases) {
  PhaseTimer pt;
  pt.add("sim", 1.0);
  pt.add("sim", 0.5);
  pt.add("ip", 2.0);
  EXPECT_DOUBLE_EQ(pt.total("sim"), 1.5);
  EXPECT_DOUBLE_EQ(pt.total("ip"), 2.0);
  EXPECT_DOUBLE_EQ(pt.total("missing"), 0.0);
}

TEST(PhaseTimer, MergeSums) {
  PhaseTimer a, b;
  a.add("sim", 1.0);
  b.add("sim", 2.0);
  b.add("comm", 3.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.total("sim"), 3.0);
  EXPECT_DOUBLE_EQ(a.total("comm"), 3.0);
}

TEST(ScopedPhase, RecordsOnDestruction) {
  PhaseTimer pt;
  {
    ScopedPhase sp(pt, "scope");
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GT(pt.total("scope"), 0.005);
}

TEST(Error, ChecksThrowWithContext) {
  try {
    QKMPS_CHECK_MSG(1 == 2, "custom detail " << 42);
    FAIL() << "must throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom detail 42"), std::string::npos);
  }
}

TEST(Policy, NamesAreStable) {
  EXPECT_EQ(linalg::to_string(linalg::ExecPolicy::Reference), "reference");
  EXPECT_EQ(linalg::to_string(linalg::ExecPolicy::Accelerated), "accelerated");
}

}  // namespace
}  // namespace qkmps
