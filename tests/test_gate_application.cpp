#include <gtest/gtest.h>

#include <cmath>

#include "circuit/statevector.hpp"
#include "mps/gate_application.hpp"
#include "mps/mps.hpp"
#include "test_helpers.hpp"

namespace qkmps::mps {
namespace {

double compare_to_statevector(const Mps& psi, const circuit::Statevector& sv) {
  const auto v = psi.to_statevector();
  double diff = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i)
    diff = std::max(diff, std::abs(v[i] - sv.amplitudes()[i]));
  return diff;
}

TEST(GateApplication, SingleQubitGateMatchesStatevector) {
  Mps psi = Mps::plus_state(4);
  circuit::Statevector sv(4);
  for (idx q = 0; q < 4; ++q) sv.apply(circuit::make_h(q));

  const circuit::Gate g = circuit::make_rz(2, 0.8);
  apply_single_qubit_gate(psi, g.matrix(), 2);
  sv.apply(g);
  EXPECT_LT(compare_to_statevector(psi, sv), 1e-14);
}

TEST(GateApplication, SingleQubitGatePreservesBonds) {
  Mps psi = Mps::plus_state(4);
  apply_single_qubit_gate(psi, circuit::make_h(1).matrix(), 1);
  EXPECT_EQ(psi.max_bond(), 1);
}

TEST(GateApplication, AdjacentRxxMatchesStatevector) {
  Mps psi = Mps::plus_state(4);
  circuit::Statevector sv(4);
  for (idx q = 0; q < 4; ++q) sv.apply(circuit::make_h(q));

  const circuit::Gate g = circuit::make_rxx(1, 2, 0.9);
  TruncationConfig trunc;
  apply_gate(psi, g, trunc, linalg::ExecPolicy::Reference);
  sv.apply(g);
  EXPECT_LT(compare_to_statevector(psi, sv), 1e-13);
}

TEST(GateApplication, ReversedOperandOrderMatches) {
  // RXX is symmetric, so use an asymmetric composite: SWAP then RXX with
  // different single-qubit dressing — here test the permutation fix by
  // applying a gate with q0 > q1 and comparing against the statevector.
  Mps psi = Mps::plus_state(3);
  circuit::Statevector sv(3);
  for (idx q = 0; q < 3; ++q) sv.apply(circuit::make_h(q));
  psi = Mps::plus_state(3);

  // Make the state asymmetric first.
  const circuit::Gate rz = circuit::make_rz(2, 1.3);
  apply_single_qubit_gate(psi, rz.matrix(), 2);
  sv.apply(rz);

  const circuit::Gate g = circuit::make_rxx(2, 1, 0.7);  // q0 > q1
  TruncationConfig trunc;
  apply_gate(psi, g, trunc, linalg::ExecPolicy::Reference);
  sv.apply(g);
  EXPECT_LT(compare_to_statevector(psi, sv), 1e-13);
}

TEST(GateApplication, SwapGateViaMps) {
  Mps psi(3);
  // Prepare |100>.
  apply_single_qubit_gate(psi, circuit::make_x(0).matrix(), 0);
  TruncationConfig trunc;
  apply_gate(psi, circuit::make_swap(0, 1), trunc, linalg::ExecPolicy::Reference);
  const auto v = psi.to_statevector();
  EXPECT_NEAR(std::abs(v[2] - cplx(1.0)), 0.0, 1e-13);  // |010>
}

TEST(GateApplication, NonAdjacentGateThrows) {
  Mps psi = Mps::plus_state(4);
  TruncationConfig trunc;
  EXPECT_THROW(
      apply_gate(psi, circuit::make_rxx(0, 2, 0.5), trunc,
                 linalg::ExecPolicy::Reference),
      Error);
}

TEST(GateApplication, BondGrowsByAtMostFactorTwo) {
  Mps psi = Mps::plus_state(6);
  TruncationConfig trunc;
  idx prev_bond = psi.max_bond();
  Rng rng(3);
  for (int i = 0; i < 8; ++i) {
    const idx q = static_cast<idx>(rng.uniform_int(5));
    apply_gate(psi, circuit::make_rxx(q, q + 1, rng.uniform(0.1, 2.0)), trunc,
               linalg::ExecPolicy::Reference);
    EXPECT_LE(psi.max_bond(), 2 * prev_bond);
    prev_bond = psi.max_bond();
  }
}

TEST(GateApplication, RxxZeroSingularValuesAreDropped) {
  // Footnote 5: RXX has operator Schmidt rank 2, so on |00> it creates a
  // state of Schmidt rank exactly 2 (cos|00> - i sin|11>); the two zero
  // singular values must be truncated away rather than kept as bond 4.
  Mps psi(2);
  TruncationConfig trunc;
  apply_gate(psi, circuit::make_rxx(0, 1, 0.7), trunc,
             linalg::ExecPolicy::Reference);
  EXPECT_EQ(psi.bond(0), 2);
}

TEST(GateApplication, RxxOnXxEigenstateKeepsBondOne) {
  // |++> is an XX eigenstate: RXX only adds a global phase, so exact-zero
  // truncation must keep the product structure (bond 1).
  Mps psi = Mps::plus_state(2);
  TruncationConfig trunc;
  apply_gate(psi, circuit::make_rxx(0, 1, 0.7), trunc,
             linalg::ExecPolicy::Reference);
  EXPECT_EQ(psi.bond(0), 1);
}

TEST(GateApplication, MaxBondCapIsEnforced) {
  TruncationConfig trunc;
  trunc.max_bond = 2;
  Mps psi = Mps::plus_state(6);
  TruncationStats stats;
  Rng rng(4);
  for (int pass = 0; pass < 3; ++pass)
    for (idx q = 0; q < 5; ++q)
      apply_gate(psi, circuit::make_rxx(q, q + 1, rng.uniform(0.3, 1.8)), trunc,
                 linalg::ExecPolicy::Reference, &stats);
  EXPECT_LE(psi.max_bond(), 2);
  EXPECT_GT(stats.total_discarded_weight, 0.0);  // cap forces real truncation
}

TEST(GateApplication, TruncationStatsAccumulate) {
  Mps psi = Mps::plus_state(5);
  TruncationConfig trunc;
  TruncationStats stats;
  Rng rng(5);
  for (idx q = 0; q < 4; ++q)
    apply_gate(psi, circuit::make_rxx(q, q + 1, rng.uniform(0.3, 1.8)), trunc,
               linalg::ExecPolicy::Reference, &stats);
  EXPECT_EQ(stats.truncation_count, 4);
  EXPECT_GE(stats.max_bond_seen, psi.max_bond());
  EXPECT_GE(stats.fidelity_lower_bound(), 1.0 - 1e-12);
}

TEST(GateApplication, LongGateSequenceMatchesStatevector) {
  Rng rng(6);
  Mps psi = Mps::plus_state(6);
  circuit::Statevector sv(6);
  for (idx q = 0; q < 6; ++q) sv.apply(circuit::make_h(q));
  TruncationConfig trunc;
  for (int i = 0; i < 30; ++i) {
    const idx q = static_cast<idx>(rng.uniform_int(5));
    const circuit::Gate g2 = circuit::make_rxx(q, q + 1, rng.uniform(-2.0, 2.0));
    apply_gate(psi, g2, trunc, linalg::ExecPolicy::Reference);
    sv.apply(g2);
    const circuit::Gate g1 = circuit::make_rz(static_cast<idx>(rng.uniform_int(6)),
                                              rng.uniform(-2.0, 2.0));
    apply_gate(psi, g1, trunc, linalg::ExecPolicy::Reference);
    sv.apply(g1);
  }
  EXPECT_LT(compare_to_statevector(psi, sv), 1e-7);
  EXPECT_NEAR(psi.norm(), 1.0, 1e-10);
}

}  // namespace
}  // namespace qkmps::mps
