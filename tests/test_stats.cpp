#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace qkmps {
namespace {

TEST(Stats, MeanOfKnownValues) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(Stats, MeanOfEmptyIsZero) { EXPECT_DOUBLE_EQ(mean({}), 0.0); }

TEST(Stats, VarianceOfConstantIsZero) {
  EXPECT_DOUBLE_EQ(variance({5.0, 5.0, 5.0}), 0.0);
}

TEST(Stats, VarianceKnownValue) {
  // Population variance of {1, 3}: mean 2, var 1.
  EXPECT_DOUBLE_EQ(variance({1.0, 3.0}), 1.0);
}

TEST(Stats, MedianOddCount) {
  EXPECT_DOUBLE_EQ(quantile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(Stats, MedianEvenCountInterpolates) {
  EXPECT_DOUBLE_EQ(quantile({1.0, 2.0, 3.0, 4.0}, 0.5), 2.5);
}

TEST(Stats, QuartilesType7) {
  // numpy.percentile([1..5], 25) == 2.0; 75 -> 4.0.
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.75), 4.0);
}

TEST(Stats, QuantileExtremes) {
  std::vector<double> v{7.0, -1.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), -1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 7.0);
}

TEST(Stats, SingleSampleIsEveryQuantile) {
  // n=1 means the type-7 position q*(n-1) is 0 for every q — no
  // interpolation partner exists, so all quantiles are the sample.
  for (const double q : {0.0, 0.25, 0.5, 0.99, 1.0})
    EXPECT_DOUBLE_EQ(quantile({42.0}, q), 42.0);
}

TEST(Stats, LatticePointsReturnOrderStatisticsExactly) {
  // q = k/(n-1) lands exactly on an order statistic: no interpolation,
  // no floating-point smear. This convention (type-7, numpy default) is
  // shared with obs::Histogram::Snapshot::quantile — the histogram ranks
  // its bins with the same q*(n-1) position, so engine percentiles and
  // histogram percentiles differ only by bucket resolution
  // (tests/test_obs.cpp cross-checks the two on one sample set).
  std::vector<double> v{10.0, 20.0, 30.0, 40.0, 50.0};
  for (int k = 0; k < 5; ++k)
    EXPECT_DOUBLE_EQ(quantile(v, k / 4.0), v[static_cast<std::size_t>(k)]);
}

TEST(Stats, QuantileRejectsEmpty) {
  EXPECT_THROW(quantile({}, 0.5), Error);
}

TEST(Stats, QuantileRejectsOutOfRangeQ) {
  EXPECT_THROW(quantile({1.0}, 1.5), Error);
}

TEST(Stats, SummaryFields) {
  const Summary s = summarize({4.0, 1.0, 3.0, 2.0, 5.0});
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.q1, 2.0);
  EXPECT_DOUBLE_EQ(s.q3, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_EQ(s.count, 5u);
}

TEST(Stats, SummaryOfEmptyIsZeroed) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.median, 0.0);
}

TEST(Stats, SummaryQuartilesBracketMedian) {
  std::vector<double> v;
  for (int i = 0; i < 101; ++i) v.push_back(static_cast<double>(i * i % 37));
  const Summary s = summarize(v);
  EXPECT_LE(s.min, s.q1);
  EXPECT_LE(s.q1, s.median);
  EXPECT_LE(s.median, s.q3);
  EXPECT_LE(s.q3, s.max);
}

}  // namespace
}  // namespace qkmps
