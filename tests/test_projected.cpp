#include <gtest/gtest.h>

#include <cmath>

#include "kernel/projected.hpp"
#include "svm/model_selection.hpp"
#include "test_helpers.hpp"

namespace qkmps::kernel {
namespace {

RealMatrix random_scaled_data(idx n, idx m, std::uint64_t seed) {
  Rng rng(seed);
  RealMatrix x(n, m);
  for (idx i = 0; i < n; ++i)
    for (idx j = 0; j < m; ++j) x(i, j) = rng.uniform(0.05, 1.95);
  return x;
}

ProjectedKernelConfig config(idx m, double gamma_p = 1.0) {
  ProjectedKernelConfig cfg;
  cfg.ansatz = {.num_features = m, .layers = 2, .distance = 1, .gamma = 0.5};
  cfg.gamma_p = gamma_p;
  return cfg;
}

TEST(ProjectedKernel, FeatureMatrixShape) {
  const RealMatrix x = random_scaled_data(5, 6, 1);
  const RealMatrix f = projected_features(config(6), x);
  EXPECT_EQ(f.rows(), 5);
  EXPECT_EQ(f.cols(), 18);  // 3 Paulis per qubit
}

TEST(ProjectedKernel, FeaturesAreBoundedExpectations) {
  const RealMatrix x = random_scaled_data(4, 5, 2);
  const RealMatrix f = projected_features(config(5), x);
  for (idx i = 0; i < f.rows(); ++i)
    for (idx j = 0; j < f.cols(); ++j) {
      EXPECT_GE(f(i, j), -1.0 - 1e-10);
      EXPECT_LE(f(i, j), 1.0 + 1e-10);
    }
}

TEST(ProjectedKernel, GramDiagonalIsOne) {
  const RealMatrix x = random_scaled_data(6, 4, 3);
  const RealMatrix k = projected_gram(config(4), x);
  for (idx i = 0; i < 6; ++i) EXPECT_NEAR(k(i, i), 1.0, 1e-12);
}

TEST(ProjectedKernel, GramSymmetricBounded) {
  const RealMatrix x = random_scaled_data(7, 4, 4);
  const RealMatrix k = projected_gram(config(4), x);
  EXPECT_EQ(symmetry_defect(k), 0.0);
  for (idx i = 0; i < 7; ++i)
    for (idx j = 0; j < 7; ++j) {
      EXPECT_GT(k(i, j), 0.0);  // RBF kernels are strictly positive
      EXPECT_LE(k(i, j), 1.0);
    }
}

TEST(ProjectedKernel, IdenticalPointsGiveUnitEntry) {
  RealMatrix x = random_scaled_data(3, 4, 5);
  for (idx j = 0; j < 4; ++j) x(2, j) = x(0, j);
  const RealMatrix k = projected_gram(config(4), x);
  EXPECT_NEAR(k(0, 2), 1.0, 1e-9);
}

TEST(ProjectedKernel, BandwidthControlsDecay) {
  const RealMatrix x = random_scaled_data(4, 4, 6);
  const RealMatrix narrow = projected_gram(config(4, 5.0), x);
  const RealMatrix wide = projected_gram(config(4, 0.2), x);
  for (idx i = 0; i < 4; ++i)
    for (idx j = i + 1; j < 4; ++j) EXPECT_LE(narrow(i, j), wide(i, j) + 1e-12);
}

TEST(ProjectedKernel, CrossMatchesGramBlocks) {
  const RealMatrix x = random_scaled_data(6, 4, 7);
  RealMatrix a(2, 4), b(4, 4);
  for (idx j = 0; j < 4; ++j) {
    a(0, j) = x(0, j);
    a(1, j) = x(1, j);
    for (idx i = 0; i < 4; ++i) b(i, j) = x(2 + i, j);
  }
  const RealMatrix full = projected_gram(config(4), x);
  const RealMatrix cross = projected_cross(config(4), a, b);
  for (idx i = 0; i < 2; ++i)
    for (idx j = 0; j < 4; ++j) EXPECT_NEAR(cross(i, j), full(i, 2 + j), 1e-10);
}

TEST(ProjectedKernel, PsdViaQuadraticForms) {
  const RealMatrix x = random_scaled_data(8, 4, 8);
  const RealMatrix k = projected_gram(config(4), x);
  Rng rng(9);
  for (int t = 0; t < 10; ++t) {
    std::vector<double> v(8);
    for (auto& e : v) e = rng.normal();
    double quad = 0.0;
    for (idx i = 0; i < 8; ++i)
      for (idx j = 0; j < 8; ++j)
        quad += v[static_cast<std::size_t>(i)] * k(i, j) * v[static_cast<std::size_t>(j)];
    EXPECT_GE(quad, -1e-9);
  }
}

TEST(ProjectedKernel, StatsCountCircuitsOnly) {
  // The projected kernel's selling point: N simulations, zero pairwise
  // tensor contractions.
  const RealMatrix x = random_scaled_data(6, 4, 10);
  GramStats stats;
  projected_gram(config(4), x, &stats);
  EXPECT_EQ(stats.circuits_simulated, 6);
}

}  // namespace
}  // namespace qkmps::kernel
