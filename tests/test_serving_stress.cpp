/// Concurrency torture for the sharded serving frontend: many producers
/// slamming the admission queues while shards drain, plus shutdown under
/// load. Carries the `stress` CTest label (and `serve`), and is excluded
/// from the `smoke` subset — it trades a few seconds of wall clock for
/// interleavings the deterministic suites cannot reach.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "data/elliptic_synthetic.hpp"
#include "kernel/gram.hpp"
#include "serve/sharded_engine.hpp"
#include "serve/workload.hpp"
#include "serve_test_fixture.hpp"
#include "test_helpers.hpp"

namespace qkmps::serve {
namespace {

using Serving = qkmps::testing::TrainedServing;

// Shared with the deterministic suite via serve_test_fixture.hpp.
kernel::RealMatrix request_pool() {
  return qkmps::testing::serving_request_pool(128);
}

std::vector<double> reference_values(const Serving& s,
                                     const kernel::RealMatrix& points) {
  return qkmps::testing::sequential_reference(s, points);
}

/// Many producers, tight queues, shed-oldest: every single future must
/// resolve, statuses must partition the traffic, and every *served*
/// prediction must still be bitwise-identical to the sequential pipeline
/// — parity under contention, not just in quiet single-threaded runs.
TEST(ServingStress, ManyProducersNoFutureIsDroppedAndParityHolds) {
  const Serving s = qkmps::testing::train_small_serving(41);
  const auto pool = request_pool();
  const idx n_points = 16;
  kernel::RealMatrix points(n_points, pool.cols());
  for (idx i = 0; i < n_points; ++i)
    for (idx j = 0; j < pool.cols(); ++j) points(i, j) = pool(i, j);
  const std::vector<double> ref = reference_values(s, points);

  ShardedEngineConfig scfg;
  scfg.num_shards = 2;
  scfg.admission_capacity = 8;  // tight: shedding will fire under load
  scfg.policy = AdmissionPolicy::kShedOldest;
  scfg.engine.max_batch = 8;
  ShardedEngine engine(s.bundle, scfg);

  constexpr int kProducers = 8;
  constexpr idx kPerProducer = 40;
  std::vector<std::vector<std::pair<idx, std::future<RoutedPrediction>>>>
      per_producer(kProducers);
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 1);
      auto& mine = per_producer[static_cast<std::size_t>(t)];
      mine.reserve(static_cast<std::size_t>(kPerProducer));
      for (idx r = 0; r < kPerProducer; ++r) {
        const idx u = static_cast<idx>(
            rng.uniform_int(static_cast<std::uint64_t>(n_points)));
        mine.emplace_back(u, engine.submit(std::vector<double>(
                                 points.row(u), points.row(u) + points.cols())));
      }
    });
  }
  for (auto& t : producers) t.join();

  std::uint64_t served = 0, shed = 0, rejected = 0;
  for (auto& mine : per_producer) {
    for (auto& [u, fut] : mine) {
      ASSERT_EQ(fut.wait_for(std::chrono::seconds(30)),
                std::future_status::ready)
          << "future dropped under contention";
      const RoutedPrediction p = fut.get();
      switch (p.status) {
        case ServeStatus::kServed:
          ++served;
          EXPECT_EQ(p.prediction.decision_value,
                    ref[static_cast<std::size_t>(u)]);
          break;
        case ServeStatus::kShed:
          ++shed;
          break;
        case ServeStatus::kRejected:
          ++rejected;
          break;
      }
    }
  }
  const std::uint64_t total =
      static_cast<std::uint64_t>(kProducers) * kPerProducer;
  EXPECT_EQ(served + shed + rejected, total);
  EXPECT_EQ(rejected, 0u);  // shed-oldest never refuses the new request
  EXPECT_GT(served, 0u);

  const ShardedStats st = engine.stats();
  EXPECT_EQ(st.submitted, total);
  EXPECT_EQ(st.submitted, st.admitted + st.rejected);
  EXPECT_EQ(st.shed, shed);
  EXPECT_EQ(st.completed, served);
  EXPECT_EQ(st.queue_depth, 0u);
}

/// Producers racing a blocking admission queue: with a generous deadline
/// every request must eventually be admitted and served — blocked
/// submitters must be woken by drainer progress, not left to time out.
TEST(ServingStress, BlockingAdmissionUnderContentionServesEverything) {
  const Serving s = qkmps::testing::train_small_serving(42);
  const auto pool = request_pool();

  ShardedEngineConfig scfg;
  scfg.num_shards = 2;
  scfg.admission_capacity = 4;
  scfg.policy = AdmissionPolicy::kBlockWithDeadline;
  scfg.block_deadline = std::chrono::seconds(30);
  scfg.engine.max_batch = 4;
  ShardedEngine engine(s.bundle, scfg);

  constexpr int kProducers = 4;
  constexpr idx kPerProducer = 25;
  std::vector<std::vector<std::future<RoutedPrediction>>> futures(kProducers);
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      Rng rng(static_cast<std::uint64_t>(100 + t));
      for (idx r = 0; r < kPerProducer; ++r) {
        const idx u = static_cast<idx>(
            rng.uniform_int(static_cast<std::uint64_t>(pool.rows())));
        futures[static_cast<std::size_t>(t)].push_back(
            engine.submit(std::vector<double>(
                pool.row(u), pool.row(u) + pool.cols())));
      }
    });
  }
  for (auto& t : producers) t.join();
  for (auto& mine : futures)
    for (auto& fut : mine)
      EXPECT_EQ(fut.get().status, ServeStatus::kServed);
  EXPECT_EQ(engine.stats().rejected, 0u);
}

/// Shutdown races the drain, not just an idle engine: producers flood the
/// queues, are cut off mid-stream, and the engine is destroyed while its
/// queues are still loaded and its drainers mid-batch. Every obtained
/// future must resolve — served or shed, never a broken promise, never a
/// deadlocked join. Three rounds vary how much work is in flight.
TEST(ServingStress, ShutdownUnderLoadNeverDeadlocksOrDropsFutures) {
  const Serving s = qkmps::testing::train_small_serving(43);
  const auto pool = request_pool();

  for (int round = 0; round < 3; ++round) {
    constexpr int kProducers = 4;
    std::vector<std::vector<std::future<RoutedPrediction>>> futures(
        kProducers);
    std::uint64_t resolved_served = 0, resolved_shed = 0;
    {
      ShardedEngineConfig scfg;
      scfg.num_shards = 2;
      scfg.admission_capacity = 16;
      scfg.policy = AdmissionPolicy::kShedOldest;
      ShardedEngine engine(s.bundle, scfg);

      std::atomic<bool> cut_off{false};
      std::vector<std::thread> producers;
      for (int t = 0; t < kProducers; ++t) {
        producers.emplace_back([&, t] {
          Rng rng(static_cast<std::uint64_t>(round * 10 + t));
          // First few submissions ignore the cut-off so every round has
          // real work in flight at destruction time (round 0 cuts off
          // immediately).
          for (idx r = 0; r < 60 && (r < 5 || !cut_off.load()); ++r) {
            const idx u = static_cast<idx>(
                rng.uniform_int(static_cast<std::uint64_t>(pool.rows())));
            futures[static_cast<std::size_t>(t)].push_back(
                engine.submit(std::vector<double>(
                    pool.row(u), pool.row(u) + pool.cols())));
          }
        });
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2 * round));
      cut_off.store(true);
      for (auto& t : producers) t.join();
      // Engine destroyed here: queues very likely non-empty, drainers
      // mid-batch. The destructor must finish every admitted request.
    }
    for (auto& mine : futures) {
      for (auto& fut : mine) {
        ASSERT_EQ(fut.wait_for(std::chrono::seconds(30)),
                  std::future_status::ready)
            << "future dropped across shutdown";
        const RoutedPrediction p = fut.get();
        if (p.status == ServeStatus::kServed)
          ++resolved_served;
        else if (p.status == ServeStatus::kShed)
          ++resolved_shed;
      }
    }
    EXPECT_GT(resolved_served, 0u);
    (void)resolved_shed;  // may be zero on an unlucky schedule; that's fine
  }
}

}  // namespace
}  // namespace qkmps::serve
