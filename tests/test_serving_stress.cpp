/// Concurrency torture for the sharded serving frontend: many producers
/// slamming the admission queues while shards drain, plus shutdown under
/// load. Carries the `stress` CTest label (and `serve`), and is excluded
/// from the `smoke` subset — it trades a few seconds of wall clock for
/// interleavings the deterministic suites cannot reach.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "data/elliptic_synthetic.hpp"
#include "kernel/gram.hpp"
#include "obs/metrics.hpp"
#include "serve/feature_key.hpp"
#include "serve/lru_map.hpp"
#include "serve/rank_sharded_engine.hpp"
#include "serve/sharded_engine.hpp"
#include "serve/workload.hpp"
#include "serve_test_fixture.hpp"
#include "test_helpers.hpp"
#include "util/atomics.hpp"

namespace qkmps::serve {
namespace {

using Serving = qkmps::testing::TrainedServing;

// Shared with the deterministic suite via serve_test_fixture.hpp.
kernel::RealMatrix request_pool() {
  return qkmps::testing::serving_request_pool(128);
}

std::vector<double> reference_values(const Serving& s,
                                     const kernel::RealMatrix& points) {
  return qkmps::testing::sequential_reference(s, points);
}

/// Many producers, tight queues, shed-oldest: every single future must
/// resolve, statuses must partition the traffic, and every *served*
/// prediction must still be bitwise-identical to the sequential pipeline
/// — parity under contention, not just in quiet single-threaded runs.
TEST(ServingStress, ManyProducersNoFutureIsDroppedAndParityHolds) {
  const Serving s = qkmps::testing::train_small_serving(41);
  const auto pool = request_pool();
  const idx n_points = 16;
  kernel::RealMatrix points(n_points, pool.cols());
  for (idx i = 0; i < n_points; ++i)
    for (idx j = 0; j < pool.cols(); ++j) points(i, j) = pool(i, j);
  const std::vector<double> ref = reference_values(s, points);

  ShardedEngineConfig scfg;
  scfg.num_shards = 2;
  scfg.admission_capacity = 8;  // tight: shedding will fire under load
  scfg.policy = AdmissionPolicy::kShedOldest;
  scfg.engine.max_batch = 8;
  ShardedEngine engine(s.bundle, scfg);

  constexpr int kProducers = 8;
  constexpr idx kPerProducer = 40;
  std::vector<std::vector<std::pair<idx, std::future<RoutedPrediction>>>>
      per_producer(kProducers);
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 1);
      auto& mine = per_producer[static_cast<std::size_t>(t)];
      mine.reserve(static_cast<std::size_t>(kPerProducer));
      for (idx r = 0; r < kPerProducer; ++r) {
        const idx u = static_cast<idx>(
            rng.uniform_int(static_cast<std::uint64_t>(n_points)));
        mine.emplace_back(u, engine.submit(std::vector<double>(
                                 points.row(u), points.row(u) + points.cols())));
      }
    });
  }
  for (auto& t : producers) t.join();

  std::uint64_t served = 0, shed = 0, rejected = 0;
  for (auto& mine : per_producer) {
    for (auto& [u, fut] : mine) {
      ASSERT_EQ(fut.wait_for(std::chrono::seconds(30)),
                std::future_status::ready)
          << "future dropped under contention";
      const RoutedPrediction p = fut.get();
      switch (p.status) {
        case ServeStatus::kServed:
          ++served;
          EXPECT_EQ(p.prediction.decision_value,
                    ref[static_cast<std::size_t>(u)]);
          break;
        case ServeStatus::kShed:
          ++shed;
          break;
        case ServeStatus::kRejected:
          ++rejected;
          break;
      }
    }
  }
  const std::uint64_t total =
      static_cast<std::uint64_t>(kProducers) * kPerProducer;
  EXPECT_EQ(served + shed + rejected, total);
  EXPECT_EQ(rejected, 0u);  // shed-oldest never refuses the new request
  EXPECT_GT(served, 0u);

  const ShardedStats st = engine.stats();
  EXPECT_EQ(st.submitted, total);
  EXPECT_EQ(st.submitted, st.admitted + st.rejected);
  EXPECT_EQ(st.shed, shed);
  EXPECT_EQ(st.completed, served);
  EXPECT_EQ(st.queue_depth, 0u);
}

/// Producers racing a blocking admission queue: with a generous deadline
/// every request must eventually be admitted and served — blocked
/// submitters must be woken by drainer progress, not left to time out.
TEST(ServingStress, BlockingAdmissionUnderContentionServesEverything) {
  const Serving s = qkmps::testing::train_small_serving(42);
  const auto pool = request_pool();

  ShardedEngineConfig scfg;
  scfg.num_shards = 2;
  scfg.admission_capacity = 4;
  scfg.policy = AdmissionPolicy::kBlockWithDeadline;
  scfg.block_deadline = std::chrono::seconds(30);
  scfg.engine.max_batch = 4;
  ShardedEngine engine(s.bundle, scfg);

  constexpr int kProducers = 4;
  constexpr idx kPerProducer = 25;
  std::vector<std::vector<std::future<RoutedPrediction>>> futures(kProducers);
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      Rng rng(static_cast<std::uint64_t>(100 + t));
      for (idx r = 0; r < kPerProducer; ++r) {
        const idx u = static_cast<idx>(
            rng.uniform_int(static_cast<std::uint64_t>(pool.rows())));
        futures[static_cast<std::size_t>(t)].push_back(
            engine.submit(std::vector<double>(
                pool.row(u), pool.row(u) + pool.cols())));
      }
    });
  }
  for (auto& t : producers) t.join();
  for (auto& mine : futures)
    for (auto& fut : mine)
      EXPECT_EQ(fut.get().status, ServeStatus::kServed);
  EXPECT_EQ(engine.stats().rejected, 0u);
}

/// Shutdown races the drain, not just an idle engine: producers flood the
/// queues, are cut off mid-stream, and the engine is destroyed while its
/// queues are still loaded and its drainers mid-batch. Every obtained
/// future must resolve — served or shed, never a broken promise, never a
/// deadlocked join. Three rounds vary how much work is in flight.
TEST(ServingStress, ShutdownUnderLoadNeverDeadlocksOrDropsFutures) {
  const Serving s = qkmps::testing::train_small_serving(43);
  const auto pool = request_pool();

  for (int round = 0; round < 3; ++round) {
    constexpr int kProducers = 4;
    std::vector<std::vector<std::future<RoutedPrediction>>> futures(
        kProducers);
    std::uint64_t resolved_served = 0, resolved_shed = 0;
    {
      ShardedEngineConfig scfg;
      scfg.num_shards = 2;
      scfg.admission_capacity = 16;
      scfg.policy = AdmissionPolicy::kShedOldest;
      ShardedEngine engine(s.bundle, scfg);

      std::atomic<bool> cut_off{false};
      std::vector<std::thread> producers;
      for (int t = 0; t < kProducers; ++t) {
        producers.emplace_back([&, t] {
          Rng rng(static_cast<std::uint64_t>(round * 10 + t));
          // First few submissions ignore the cut-off so every round has
          // real work in flight at destruction time (round 0 cuts off
          // immediately).
          for (idx r = 0; r < 60 && (r < 5 || !cut_off.load()); ++r) {
            const idx u = static_cast<idx>(
                rng.uniform_int(static_cast<std::uint64_t>(pool.rows())));
            futures[static_cast<std::size_t>(t)].push_back(
                engine.submit(std::vector<double>(
                    pool.row(u), pool.row(u) + pool.cols())));
          }
        });
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2 * round));
      cut_off.store(true);
      for (auto& t : producers) t.join();
      // Engine destroyed here: queues very likely non-empty, drainers
      // mid-batch. The destructor must finish every admitted request.
    }
    for (auto& mine : futures) {
      for (auto& fut : mine) {
        ASSERT_EQ(fut.wait_for(std::chrono::seconds(30)),
                  std::future_status::ready)
            << "future dropped across shutdown";
        const RoutedPrediction p = fut.get();
        if (p.status == ServeStatus::kServed)
          ++resolved_served;
        else if (p.status == ServeStatus::kShed)
          ++resolved_shed;
      }
    }
    EXPECT_GT(resolved_served, 0u);
    (void)resolved_shed;  // may be zero on an unlucky schedule; that's fine
  }
}

// ---------------------------------------------------------------------
// TSan-targeted scenarios (DESIGN.md §11). These run in the normal
// stress suite too, but their assertions are deliberately loose — their
// real job is to drive every cross-thread edge of the serving API at
// once under -DQKMPS_SANITIZE=thread, where the *sanitizer* is the
// oracle: any unsuppressed report fails the CI job.

/// Drives the three public surfaces of RankShardedEngine from separate
/// threads simultaneously: producers in submit(), a poller in stats(),
/// and the caller thread resizing the topology. Every obtained future
/// must resolve and the counters must stay coherent — while TSan watches
/// the lifecycle_mu_/topology_mu_/mu_ discipline do its job.
template <typename MakeEngine>
void resize_races_submit_and_stats(const Serving& s,
                                   const kernel::RealMatrix& pool,
                                   MakeEngine make_engine) {
  RankShardedEngine engine = make_engine();

  std::atomic<bool> stop_polling{false};
  constexpr int kProducers = 2;
  constexpr idx kPerProducer = 15;
  std::vector<std::vector<std::future<RoutedPrediction>>> futures(kProducers);
  std::vector<std::thread> workers;
  for (int t = 0; t < kProducers; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(static_cast<std::uint64_t>(200 + t));
      for (idx r = 0; r < kPerProducer; ++r) {
        const idx u = static_cast<idx>(
            rng.uniform_int(static_cast<std::uint64_t>(pool.rows())));
        futures[static_cast<std::size_t>(t)].push_back(
            engine.submit(std::vector<double>(pool.row(u),
                                              pool.row(u) + pool.cols())));
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  workers.emplace_back([&] {
    while (!stop_polling.load()) {
      const RankShardedStats st = engine.stats();
      // Monotone counters can only be read mid-flight as inequalities.
      EXPECT_LE(st.admitted + st.rejected, st.submitted + 1);
      for (std::size_t i = 0; i < st.shards.size(); ++i)
        (void)engine.worker_pid(i);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  // Three grow/shrink rounds against live traffic. Slot ids are never
  // reused, so round r removes original shard r while two stay live:
  // {0,1} -> {1,2} -> {2,3} -> {3,4}.
  for (std::size_t round = 0; round < 3; ++round) {
    engine.add_shard(1.0);
    engine.remove_shard(round);
  }

  for (int t = 0; t < kProducers; ++t) workers[static_cast<std::size_t>(t)].join();
  stop_polling.store(true);
  workers.back().join();

  std::uint64_t resolved = 0;
  for (auto& mine : futures) {
    for (auto& fut : mine) {
      ASSERT_EQ(fut.wait_for(std::chrono::seconds(60)),
                std::future_status::ready)
          << "future dropped across a resize";
      const RoutedPrediction p = fut.get();
      EXPECT_TRUE(p.status == ServeStatus::kServed ||
                  p.status == ServeStatus::kShed ||
                  p.status == ServeStatus::kRejected);
      ++resolved;
    }
  }
  EXPECT_EQ(resolved, static_cast<std::uint64_t>(kProducers) * kPerProducer);

  const RankShardedStats st = engine.stats();
  EXPECT_EQ(st.submitted, resolved);
  EXPECT_EQ(st.submitted, st.admitted + st.rejected);
  EXPECT_EQ(st.resizes, 6u);
}

TEST(ServingStress, RankShardedResizeRacesSubmitAndStatsInProcess) {
  const Serving s = qkmps::testing::train_small_serving(44);
  const auto pool = request_pool();
  resize_races_submit_and_stats(s, pool, [&] {
    RankShardedEngineConfig rcfg;
    rcfg.num_shards = 2;
    rcfg.engine.max_batch = 8;
    return RankShardedEngine(s.bundle, rcfg);
  });
}

#ifdef QKMPS_RANKD_PATH
/// Socket-mode twin: the resize requests travel through the router
/// thread's execute_add/execute_remove, so this is the scenario that
/// races the router's topology_mu_ pointer-grab reads against external
/// stats()/worker_pid() readers and the resize caller.
TEST(ServingStress, RankShardedResizeRacesSubmitAndStatsSocket) {
  const Serving s = qkmps::testing::train_small_serving(45);
  const auto pool = request_pool();
  const std::string bundle_dir = ::testing::TempDir() +
                                 "/qkmps_stress_bundle_" +
                                 std::to_string(::getpid());
  resize_races_submit_and_stats(s, pool, [&] {
    RankShardedEngineConfig rcfg;
    rcfg.num_shards = 2;
    rcfg.engine.max_batch = 8;
    rcfg.transport = TransportKind::kSocket;
    rcfg.socket.worker_path = QKMPS_RANKD_PATH;
    rcfg.socket.bundle_dir = bundle_dir;
    return RankShardedEngine(s.bundle, rcfg);
  });
  std::filesystem::remove_all(bundle_dir);
  std::filesystem::remove_all(bundle_dir + ".tmp");
}
#endif  // QKMPS_RANKD_PATH

/// Pins the relaxed-atomic registry snapshot path: writers hammer the
/// instruments while a reader renders. The counters are per-instrument
/// atomics, so the final values are exact even though a mid-flight
/// render sees a torn-across-instruments (but per-instrument valid)
/// view — which is the documented contract.
TEST(ServingStress, RegistrySnapshotRacesObservers) {
  obs::Registry registry;
  obs::Counter& hits = registry.counter("stress.hits");
  obs::Gauge& depth = registry.gauge("stress.depth");
  obs::Histogram& lat = registry.histogram("stress.latency");

  constexpr int kWriters = 3;
  constexpr std::uint64_t kPerWriter = 2000;
  std::atomic<bool> stop_reading{false};
  std::thread reader([&] {
    while (!stop_reading.load()) {
      const std::string text = registry.render_text();
      EXPECT_NE(text.find("stress.hits"), std::string::npos);
      (void)registry.render_json();
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        hits.add(1);
        depth.set(static_cast<double>(i));
        lat.observe(1e-4 * static_cast<double>((i % 100) + 1));
        // Late names race the registry map against the render walk.
        registry.counter("stress.late." + std::to_string(t)).add(1);
      }
    });
  }
  for (auto& w : writers) w.join();
  stop_reading.store(true);
  reader.join();

  EXPECT_EQ(hits.value(), kWriters * kPerWriter);
  const std::string final_text = registry.render_text();
  EXPECT_NE(final_text.find("stress.late.0"), std::string::npos);
}

/// Pins the LruMap contract that stats() is a lock-free snapshot safe
/// against concurrent lookup traffic, and that the counters add up once
/// the traffic stops.
TEST(ServingStress, LruMapStatsSnapshotRacesLookups) {
  LruMap<int> map(8);
  constexpr int kMutators = 2;
  constexpr std::uint64_t kOpsPerMutator = 3000;

  std::vector<std::vector<double>> keys;
  std::vector<std::uint64_t> hashes;
  for (int k = 0; k < 32; ++k) {
    keys.push_back({static_cast<double>(k), 0.5 * k});
    hashes.push_back(feature_hash(keys.back()));
  }

  std::atomic<bool> stop_polling{false};
  std::thread poller([&] {
    while (!stop_polling.load()) {
      const LruStats st = map.stats();
      EXPECT_GE(st.insertions, st.evictions);
      EXPECT_LE(map.size(), map.capacity());
    }
  });
  std::vector<std::thread> mutators;
  std::vector<std::uint64_t> finds(kMutators, 0);
  for (int t = 0; t < kMutators; ++t) {
    mutators.emplace_back([&, t] {
      Rng rng(static_cast<std::uint64_t>(300 + t));
      for (std::uint64_t i = 0; i < kOpsPerMutator; ++i) {
        const auto k = static_cast<std::size_t>(
            rng.uniform_int(static_cast<std::uint64_t>(keys.size())));
        if (!map.find(keys[k], hashes[k]).has_value())
          map.insert(keys[k], hashes[k], static_cast<int>(k));
        ++finds[static_cast<std::size_t>(t)];
      }
    });
  }
  for (auto& m : mutators) m.join();
  stop_polling.store(true);
  poller.join();

  const LruStats st = map.stats();
  std::uint64_t total_finds = 0;
  for (const std::uint64_t f : finds) total_finds += f;
  EXPECT_EQ(st.hits + st.misses, total_finds);
  EXPECT_EQ(st.insertions - st.evictions, map.size());
}

/// fetch_max under contention: the high-water mark must converge to the
/// true maximum (no lost update despite the relaxed CAS loop), and it
/// must never move backwards as observed by a concurrent reader.
TEST(ServingStress, FetchMaxConvergesUnderContention) {
  std::atomic<std::uint64_t> high_water{0};
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 5000;

  std::atomic<bool> stop_watching{false};
  std::thread watcher([&] {
    std::uint64_t last = 0;
    while (!stop_watching.load()) {
      const std::uint64_t now = high_water.load(std::memory_order_relaxed);
      EXPECT_GE(now, last) << "high-water mark moved backwards";
      last = now;
    }
  });
  std::vector<std::thread> bumpers;
  for (int t = 0; t < kThreads; ++t) {
    bumpers.emplace_back([&, t] {
      // Interleaved ranges: every thread repeatedly loses the CAS race
      // to later values from its peers.
      for (std::uint64_t i = 0; i < kPerThread; ++i)
        fetch_max(high_water, i * kThreads + static_cast<std::uint64_t>(t));
    });
  }
  for (auto& b : bumpers) b.join();
  stop_watching.store(true);
  watcher.join();

  EXPECT_EQ(high_water.load(),
            (kPerThread - 1) * kThreads + (kThreads - 1));
}

}  // namespace
}  // namespace qkmps::serve
