#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "data/csv.hpp"
#include "test_helpers.hpp"

namespace qkmps::data {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/qkmps_csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, RoundTripPreservesData) {
  Rng rng(1);
  Dataset d;
  d.x = kernel::RealMatrix(7, 4);
  d.y.resize(7);
  for (idx i = 0; i < 7; ++i) {
    d.y[static_cast<std::size_t>(i)] = (i % 3 == 0) ? 1 : -1;
    for (idx j = 0; j < 4; ++j) d.x(i, j) = rng.normal();
  }
  save_csv(d, path_);
  const Dataset back = load_csv(path_);
  EXPECT_EQ(back.size(), 7);
  EXPECT_EQ(back.num_features(), 4);
  EXPECT_EQ(back.y, d.y);
  for (idx i = 0; i < 7; ++i)
    for (idx j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(back.x(i, j), d.x(i, j));
}

TEST_F(CsvTest, HeaderNamesFeatures) {
  Dataset d;
  d.x = kernel::RealMatrix(1, 2);
  d.y = {1};
  save_csv(d, path_);
  std::ifstream is(path_);
  std::string header;
  std::getline(is, header);
  EXPECT_EQ(header, "label,f0,f1");
}

TEST_F(CsvTest, LoadRejectsMissingFile) {
  EXPECT_THROW(load_csv(path_ + ".does_not_exist"), Error);
}

TEST_F(CsvTest, LoadRejectsRaggedRows) {
  std::ofstream os(path_);
  os << "label,f0,f1\n1,0.5\n";
  os.close();
  EXPECT_THROW(load_csv(path_), Error);
}

TEST_F(CsvTest, LoadRejectsEmptyBody) {
  std::ofstream os(path_);
  os << "label,f0\n";
  os.close();
  EXPECT_THROW(load_csv(path_), Error);
}

TEST_F(CsvTest, SkipsBlankLines) {
  std::ofstream os(path_);
  os << "label,f0\n1,0.25\n\n-1,0.75\n";
  os.close();
  const Dataset d = load_csv(path_);
  EXPECT_EQ(d.size(), 2);
  EXPECT_DOUBLE_EQ(d.x(1, 0), 0.75);
}

}  // namespace
}  // namespace qkmps::data
