#include <gtest/gtest.h>

#include "linalg/gemm.hpp"
#include "tensor/contract.hpp"
#include "test_helpers.hpp"

namespace qkmps::tensor {
namespace {

Tensor random_tensor(std::vector<idx> shape, Rng& rng) {
  Tensor t(std::move(shape));
  for (idx k = 0; k < t.size(); ++k) t[k] = rng.normal_cplx();
  return t;
}

TEST(Contract, MatrixMultiplySpecialCase) {
  Rng rng(1);
  const Tensor a = random_tensor({4, 3}, rng);
  const Tensor b = random_tensor({3, 5}, rng);
  const Tensor c = contract(a, {1}, b, {0});
  const linalg::Matrix expect =
      linalg::gemm_reference(a.as_matrix(1), b.as_matrix(1));
  EXPECT_EQ(c.shape(), (std::vector<idx>{4, 5}));
  for (idx i = 0; i < 4; ++i)
    for (idx j = 0; j < 5; ++j)
      EXPECT_NEAR(std::abs(c(i, j) - expect(i, j)), 0.0, 1e-13);
}

TEST(Contract, SingleBondEq6) {
  // The paper's Eq. 6: C_abxyz = sum_s A_abs B_sxyz.
  Rng rng(2);
  const Tensor a = random_tensor({2, 3, 4}, rng);
  const Tensor b = random_tensor({4, 2, 3, 2}, rng);
  const Tensor c = contract(a, {2}, b, {0});
  EXPECT_EQ(c.shape(), (std::vector<idx>{2, 3, 2, 3, 2}));
  for (idx p = 0; p < 2; ++p)
    for (idx q = 0; q < 3; ++q)
      for (idx x = 0; x < 2; ++x)
        for (idx y = 0; y < 3; ++y)
          for (idx z = 0; z < 2; ++z) {
            cplx expect = 0.0;
            for (idx s = 0; s < 4; ++s) expect += a(p, q, s) * b(s, x, y, z);
            EXPECT_NEAR(std::abs(c(p, q, x, y, z) - expect), 0.0, 1e-13);
          }
}

TEST(Contract, MultipleBonds) {
  Rng rng(3);
  const Tensor a = random_tensor({3, 4, 2}, rng);
  const Tensor b = random_tensor({2, 5, 4}, rng);
  // Contract a's axes {1, 2} with b's axes {2, 0}.
  const Tensor c = contract(a, {1, 2}, b, {2, 0});
  EXPECT_EQ(c.shape(), (std::vector<idx>{3, 5}));
  for (idx i = 0; i < 3; ++i)
    for (idx j = 0; j < 5; ++j) {
      cplx expect = 0.0;
      for (idx p = 0; p < 4; ++p)
        for (idx q = 0; q < 2; ++q) expect += a(i, p, q) * b(q, j, p);
      EXPECT_NEAR(std::abs(c(i, j) - expect), 0.0, 1e-13);
    }
}

TEST(Contract, FullContractionYieldsScalar) {
  Rng rng(4);
  const Tensor a = random_tensor({2, 3}, rng);
  const Tensor b = random_tensor({2, 3}, rng);
  const Tensor c = contract(a, {0, 1}, b, {0, 1});
  EXPECT_EQ(c.size(), 1);
  cplx expect = 0.0;
  for (idx i = 0; i < 2; ++i)
    for (idx j = 0; j < 3; ++j) expect += a(i, j) * b(i, j);
  EXPECT_NEAR(std::abs(c[0] - expect), 0.0, 1e-13);
}

TEST(Contract, MismatchedBondThrows) {
  Tensor a({2, 3}), b({4, 2});
  EXPECT_THROW(contract(a, {1}, b, {0}), Error);
}

TEST(Contract, PoliciesAgree) {
  Rng rng(5);
  const Tensor a = random_tensor({6, 7, 3}, rng);
  const Tensor b = random_tensor({3, 7, 4}, rng);
  const Tensor c1 = contract(a, {1, 2}, b, {1, 0}, linalg::ExecPolicy::Reference);
  const Tensor c2 = contract(a, {1, 2}, b, {1, 0}, linalg::ExecPolicy::Accelerated);
  EXPECT_LT(max_abs_diff(c1, c2), 1e-12);
}

}  // namespace
}  // namespace qkmps::tensor
