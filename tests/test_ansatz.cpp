#include <gtest/gtest.h>

#include <cmath>

#include "circuit/ansatz.hpp"
#include "circuit/statevector.hpp"
#include "test_helpers.hpp"

namespace qkmps::circuit {
namespace {

TEST(Ansatz, QubitCountEqualsFeatureCount) {
  Rng rng(1);
  const AnsatzParams p{.num_features = 7, .layers = 1, .distance = 1, .gamma = 0.5};
  const Circuit c = feature_map_circuit(p, qkmps::testing::random_features(7, rng));
  EXPECT_EQ(c.num_qubits(), 7);
}

TEST(Ansatz, RejectsMismatchedFeatureVector) {
  const AnsatzParams p{.num_features = 4, .layers = 1, .distance = 1, .gamma = 0.5};
  EXPECT_THROW(feature_map_circuit(p, {0.5, 0.5}), Error);
}

TEST(Ansatz, GateBudget) {
  // m Hadamards + r * (m RZ + |E| RXX).
  Rng rng(2);
  const idx m = 9, r = 3, d = 2;
  const AnsatzParams p{.num_features = m, .layers = r, .distance = d, .gamma = 0.5};
  const Circuit c = feature_map_circuit(p, qkmps::testing::random_features(m, rng));
  const idx edges = (m - 1) + (m - 2);
  EXPECT_EQ(c.size(), m + r * (m + edges));
  EXPECT_EQ(c.two_qubit_gate_count(), r * edges);
}

TEST(Ansatz, StartsWithHadamardLayer) {
  Rng rng(3);
  const AnsatzParams p{.num_features = 5, .layers = 2, .distance = 1, .gamma = 0.5};
  const Circuit c = feature_map_circuit(p, qkmps::testing::random_features(5, rng));
  for (idx q = 0; q < 5; ++q) EXPECT_EQ(c.gates()[static_cast<std::size_t>(q)].kind, GateKind::H);
}

TEST(Ansatz, RzAnglesEncodeFeatures) {
  // e^{-i gamma x Z} = RZ(2 gamma x): the first RZ after the H layer must
  // carry angle 2 * gamma * x_0 (Eq. 4).
  const double gamma = 0.37;
  const std::vector<double> x{0.9, 1.1, 0.3};
  const AnsatzParams p{.num_features = 3, .layers = 1, .distance = 1, .gamma = gamma};
  const Circuit c = feature_map_circuit(p, x);
  const Gate& rz0 = c.gates()[3];
  ASSERT_EQ(rz0.kind, GateKind::RZ);
  EXPECT_EQ(rz0.q0, 0);
  // The builder may associate the product differently; only agreement to
  // one ulp of the angle magnitude is contractual.
  EXPECT_NEAR(rz0.angle, 2.0 * gamma * 0.9, 1e-15);
}

TEST(Ansatz, RxxAnglesEncodeCoefficients) {
  // Eq. 5: coefficient gamma^2 (pi/2) (1-x_i)(1-x_j); gate angle doubles it.
  const double gamma = 0.5;
  const std::vector<double> x{0.2, 0.8};
  const AnsatzParams p{.num_features = 2, .layers = 1, .distance = 1, .gamma = gamma};
  const Circuit c = feature_map_circuit(p, x);
  const Gate& rxx = c.gates().back();
  ASSERT_EQ(rxx.kind, GateKind::RXX);
  const double expect = 2.0 * gamma * gamma * (kPi / 2.0) * (1.0 - 0.2) * (1.0 - 0.8);
  EXPECT_NEAR(rxx.angle, expect, 1e-15);
}

TEST(Ansatz, FeatureAtOneDisablesInteraction) {
  // (1 - x_i) = 0 kills the RXX coefficient — the mechanism behind the
  // paper's observation that gamma pushing angles to 0/pi weakens
  // entanglement.
  const std::vector<double> x{1.0, 0.5};
  const AnsatzParams p{.num_features = 2, .layers = 1, .distance = 1, .gamma = 1.0};
  const Circuit c = feature_map_circuit(p, x);
  EXPECT_DOUBLE_EQ(c.gates().back().angle, 0.0);
}

TEST(Ansatz, LayerRepetitionRepeatsStructure) {
  Rng rng(4);
  const auto x = qkmps::testing::random_features(4, rng);
  const AnsatzParams p1{.num_features = 4, .layers = 1, .distance = 1, .gamma = 0.5};
  const AnsatzParams p2{.num_features = 4, .layers = 2, .distance = 1, .gamma = 0.5};
  const Circuit c1 = feature_map_circuit(p1, x);
  const Circuit c2 = feature_map_circuit(p2, x);
  EXPECT_EQ(c2.size() - 4, 2 * (c1.size() - 4));  // minus the H layer
}

TEST(Ansatz, DifferentDataGiveDifferentStates) {
  const AnsatzParams p{.num_features = 4, .layers = 2, .distance = 2, .gamma = 0.8};
  const Circuit ca = feature_map_circuit(p, {0.3, 1.2, 0.7, 1.8});
  const Circuit cb = feature_map_circuit(p, {1.7, 0.2, 1.1, 0.4});
  const auto sa = simulate_statevector(ca);
  const auto sb = simulate_statevector(cb);
  const double overlap = std::abs(sa.inner_product(sb));
  EXPECT_LT(overlap, 0.999);
}

TEST(Ansatz, StateIsNormalized) {
  Rng rng(5);
  const AnsatzParams p{.num_features = 6, .layers = 2, .distance = 3, .gamma = 1.0};
  const Circuit c = feature_map_circuit(p, qkmps::testing::random_features(6, rng));
  EXPECT_NEAR(simulate_statevector(c).norm(), 1.0, 1e-12);
}

TEST(Ansatz, GammaZeroGivesUniformSuperposition) {
  // gamma = 0 zeroes every rotation angle: U(x) = identity, state = |+>^m.
  const AnsatzParams p{.num_features = 3, .layers = 2, .distance = 2, .gamma = 0.0};
  const Circuit c = feature_map_circuit(p, {0.5, 1.0, 1.5});
  const auto sv = simulate_statevector(c);
  const double amp = 1.0 / std::sqrt(8.0);
  for (const auto& a : sv.amplitudes()) EXPECT_NEAR(std::abs(a - cplx(amp)), 0.0, 1e-12);
}

TEST(Ansatz, GeneralGraphOverload) {
  // A star graph (not a chain) must be accepted and produce RXX on its edges.
  const InteractionGraph star(4, {{0, 1}, {0, 2}, {0, 3}});
  const Circuit c = feature_map_circuit(star, 1, 0.5, {0.5, 0.6, 0.7, 0.8});
  EXPECT_EQ(c.two_qubit_gate_count(), 3);
}

}  // namespace
}  // namespace qkmps::circuit
