// parallel/socket_transport.hpp: the frame codec and the socket-backed
// Transport. The codec carries every byte of the rank-sharded serving
// protocol across process boundaries, so the contract under torture is
// absolute: every malformed frame — truncated header, truncated payload,
// wrong magic, future version, oversized or hostile length, flipped
// payload bits — surfaces as qkmps::Error; never a crash, a hang, or a
// silently wrong payload. A byte-level fuzz loop sweeps single-byte
// corruptions over a valid frame to pin "error or identical bytes, no
// third outcome".

#include "parallel/socket_transport.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/binary_io.hpp"
#include "util/error.hpp"

namespace qkmps::parallel {
namespace {

std::vector<std::uint8_t> bytes_of(std::initializer_list<int> xs) {
  std::vector<std::uint8_t> v;
  for (int x : xs) v.push_back(static_cast<std::uint8_t>(x));
  return v;
}

std::string encode_to_string(const std::vector<std::uint8_t>& payload) {
  std::ostringstream os;
  write_frame(os, payload);
  return os.str();
}

// ---------------------------------------------------------------------
// Codec round trips.

TEST(FrameCodec, RoundTripsPayloadsIncludingEmpty) {
  std::stringstream ss;
  const auto a = bytes_of({1, 2, 3, 255, 0, 128});
  write_frame(ss, a);
  write_frame(ss, std::vector<std::uint8_t>{});
  const auto back_a = read_frame(ss);
  ASSERT_TRUE(back_a.has_value());
  EXPECT_EQ(*back_a, a);
  const auto back_b = read_frame(ss);
  ASSERT_TRUE(back_b.has_value());
  EXPECT_TRUE(back_b->empty());
  // Clean end-of-stream at a frame boundary: nullopt, not an error.
  EXPECT_FALSE(read_frame(ss).has_value());
}

TEST(FrameCodec, HeaderLayoutIsStable) {
  // The 20-byte header layout is wire contract (DESIGN.md §1); a reshuffle
  // would silently break cross-version deployments, so pin the offsets.
  const std::string frame = encode_to_string(bytes_of({0xAB}));
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + 1);
  const auto* raw = reinterpret_cast<const std::uint8_t*>(frame.data());
  const FrameHeader h = decode_frame_header(raw);
  EXPECT_EQ(h.magic, kFrameMagic);
  EXPECT_EQ(h.version, kFrameVersion);
  EXPECT_EQ(h.reserved, 0);
  EXPECT_EQ(h.length, 1u);
  EXPECT_EQ(h.checksum, frame_checksum(raw + kFrameHeaderBytes, 1));
  // Little-endian magic spells "QKFR" on the wire.
  EXPECT_EQ(frame.substr(0, 4), "QKFR");
}

// ---------------------------------------------------------------------
// Malformed frames: the torture checklist from the issue.

TEST(FrameCodec, TruncatedHeaderThrows) {
  const std::string frame = encode_to_string(bytes_of({1, 2, 3}));
  for (std::size_t keep : {1u, 7u, 19u}) {
    std::istringstream is(frame.substr(0, keep));
    EXPECT_THROW(read_frame(is), Error) << "header cut at " << keep;
  }
}

TEST(FrameCodec, TruncatedPayloadThrows) {
  const std::string frame = encode_to_string(bytes_of({1, 2, 3, 4, 5}));
  for (std::size_t drop : {1u, 4u}) {
    std::istringstream is(frame.substr(0, frame.size() - drop));
    EXPECT_THROW(read_frame(is), Error) << "payload short by " << drop;
  }
}

TEST(FrameCodec, WrongMagicThrows) {
  std::string frame = encode_to_string(bytes_of({9}));
  frame[0] = 'X';
  std::istringstream is(frame);
  EXPECT_THROW(read_frame(is), Error);
}

TEST(FrameCodec, FutureVersionThrows) {
  std::string frame = encode_to_string(bytes_of({9}));
  frame[4] = static_cast<char>(kFrameVersion + 1);  // u16 LE low byte
  std::istringstream is(frame);
  EXPECT_THROW(read_frame(is), Error);
}

TEST(FrameCodec, OversizedLengthFailsBeforeAllocating) {
  // Hand-build a header claiming a 2^56-byte payload. The codec must
  // reject on the length bound before constructing any buffer.
  std::ostringstream os;
  io::write_pod(os, kFrameMagic);
  io::write_pod(os, kFrameVersion);
  io::write_pod(os, std::uint16_t{0});
  io::write_pod(os, std::uint64_t{1} << 56);
  io::write_pod(os, std::uint32_t{0});
  std::istringstream is(os.str());
  EXPECT_THROW(read_frame(is), Error);
}

TEST(FrameCodec, LengthJustOverTheBoundThrowsAtTheBound) {
  const auto payload = bytes_of({1, 2, 3, 4});
  std::stringstream ss;
  write_frame(ss, payload);
  EXPECT_THROW(read_frame(ss, /*max_payload=*/3), Error);
}

TEST(FrameCodec, CorruptedPayloadFailsTheChecksum) {
  std::string frame = encode_to_string(bytes_of({10, 20, 30, 40}));
  frame[kFrameHeaderBytes + 2] ^= 0x01;
  std::istringstream is(frame);
  EXPECT_THROW(read_frame(is), Error);
}

TEST(FrameCodec, SingleByteFuzzNeverYieldsAWrongPayload) {
  // Flip every byte of a valid frame through several corruptions: the
  // outcome must be either qkmps::Error or the original payload bits
  // (a corrupted-then-restored byte). No crash, no hang, no silently
  // different payload — the "malformed frames fail loudly" contract.
  const auto payload =
      bytes_of({0, 1, 2, 3, 250, 251, 252, 253, 254, 255, 42, 7});
  const std::string frame = encode_to_string(payload);
  int errors = 0;
  for (std::size_t pos = 0; pos < frame.size(); ++pos) {
    for (const std::uint8_t flip : {0x01, 0x80, 0xFF}) {
      std::string corrupted = frame;
      corrupted[pos] = static_cast<char>(corrupted[pos] ^ flip);
      std::istringstream is(corrupted);
      try {
        const auto got = read_frame(is);
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(*got, payload)
            << "byte " << pos << " xor " << int(flip)
            << " decoded to a different payload without an error";
      } catch (const Error&) {
        ++errors;  // the expected outcome for almost every corruption
      }
    }
  }
  EXPECT_GT(errors, 0);
}

TEST(FrameCodec, TruncationFuzzAlwaysThrowsOrCleanEof) {
  const auto payload = bytes_of({1, 2, 3, 4, 5, 6, 7, 8});
  const std::string frame = encode_to_string(payload);
  for (std::size_t keep = 0; keep < frame.size(); ++keep) {
    std::istringstream is(frame.substr(0, keep));
    if (keep == 0) {
      EXPECT_FALSE(read_frame(is).has_value());  // clean boundary
    } else {
      EXPECT_THROW(read_frame(is), Error) << "kept " << keep << " bytes";
    }
  }
}

// ---------------------------------------------------------------------
// The socket itself (Unix-domain loopback).

std::string test_socket_address(const char* tag) {
  return std::string("unix:/tmp/qkmps_socktest_") + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

TEST(SocketTransport, RoundTripsFramesBothWays) {
  SocketListener listener =
      SocketListener::listen(test_socket_address("roundtrip"));
  auto client_fut = std::async(std::launch::async, [&] {
    return SocketTransport::connect(listener.address(),
                                    std::chrono::milliseconds(2000));
  });
  auto server = listener.accept_for(std::chrono::milliseconds(2000));
  ASSERT_NE(server, nullptr);
  auto client = client_fut.get();

  const auto ping = bytes_of({1, 2, 3});
  const auto pong = bytes_of({4, 5, 6, 7});
  client->send(ping);
  const auto got_ping = server->recv_for(std::chrono::microseconds(2'000'000));
  ASSERT_TRUE(got_ping.has_value());
  EXPECT_EQ(*got_ping, ping);
  server->send(pong);
  const auto got_pong = client->recv_for(std::chrono::microseconds(2'000'000));
  ASSERT_TRUE(got_pong.has_value());
  EXPECT_EQ(*got_pong, pong);
}

TEST(SocketTransport, PreservesMessageBoundariesAndOrder) {
  SocketListener listener =
      SocketListener::listen(test_socket_address("order"));
  auto client_fut = std::async(std::launch::async, [&] {
    return SocketTransport::connect(listener.address(),
                                    std::chrono::milliseconds(2000));
  });
  auto server = listener.accept_for(std::chrono::milliseconds(2000));
  ASSERT_NE(server, nullptr);
  auto client = client_fut.get();

  for (int i = 0; i < 50; ++i)
    client->send(bytes_of({i, i + 1, i + 2}));
  for (int i = 0; i < 50; ++i) {
    const auto got = server->recv_for(std::chrono::microseconds(2'000'000));
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, bytes_of({i, i + 1, i + 2})) << "message " << i;
  }
  EXPECT_FALSE(server->try_recv().has_value());
}

TEST(SocketTransport, RecvForZeroAndNegativeTimeoutAreTryRecv) {
  SocketListener listener =
      SocketListener::listen(test_socket_address("timeout"));
  auto client_fut = std::async(std::launch::async, [&] {
    return SocketTransport::connect(listener.address(),
                                    std::chrono::milliseconds(2000));
  });
  auto server = listener.accept_for(std::chrono::milliseconds(2000));
  ASSERT_NE(server, nullptr);
  auto client = client_fut.get();

  // Empty link: both degenerate timeouts return immediately.
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(server->recv_for(std::chrono::microseconds(0)).has_value());
  EXPECT_FALSE(
      server->recv_for(std::chrono::microseconds(-1'000'000)).has_value());
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(waited, 0.5);

  // Queued message: zero timeout still delivers it (try_recv semantics).
  client->send(bytes_of({9}));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const auto got = server->recv_for(std::chrono::microseconds(0));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, bytes_of({9}));
}

TEST(SocketTransport, PeerCloseSurfacesAsErrorAfterBufferedFrames) {
  SocketListener listener =
      SocketListener::listen(test_socket_address("close"));
  auto client_fut = std::async(std::launch::async, [&] {
    return SocketTransport::connect(listener.address(),
                                    std::chrono::milliseconds(2000));
  });
  auto server = listener.accept_for(std::chrono::milliseconds(2000));
  ASSERT_NE(server, nullptr);
  {
    auto client = client_fut.get();
    client->send(bytes_of({1}));
    client->send(bytes_of({2}));
  }  // client destroyed: socket closes after two queued frames

  // Frames sent before the close are delivered intact and in order...
  const auto a = server->recv_for(std::chrono::microseconds(2'000'000));
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, bytes_of({1}));
  const auto b = server->recv_for(std::chrono::microseconds(2'000'000));
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*b, bytes_of({2}));
  // ...then the dead peer surfaces as a loud error, not a hang/nullopt.
  EXPECT_THROW(server->recv_for(std::chrono::microseconds(1'000'000)), Error);
}

TEST(SocketTransport, ConnectTimesOutAgainstNobody) {
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(SocketTransport::connect(
                   test_socket_address("nobody-listening"),
                   std::chrono::milliseconds(200)),
               Error);
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(waited, 5.0);
}

TEST(SocketTransport, TcpLoopbackEphemeralPortWorksToo) {
  SocketListener listener = SocketListener::listen("tcp:127.0.0.1:0");
  // The resolved address must carry the real ephemeral port.
  EXPECT_NE(listener.address(), "tcp:127.0.0.1:0");
  auto client_fut = std::async(std::launch::async, [&] {
    return SocketTransport::connect(listener.address(),
                                    std::chrono::milliseconds(2000));
  });
  auto server = listener.accept_for(std::chrono::milliseconds(2000));
  ASSERT_NE(server, nullptr);
  auto client = client_fut.get();
  client->send(bytes_of({1, 2, 3, 4}));
  const auto got = server->recv_for(std::chrono::microseconds(2'000'000));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, bytes_of({1, 2, 3, 4}));
}

TEST(SocketTransport, CorruptedFrameOnTheWireFailsTheChecksumInPopFrame) {
  // Exercise the *live receive path* (pop_frame), not just the stream
  // codec: a correctly-headered frame whose payload bits were flipped in
  // flight must fail the checksum when it arrives through a real socket.
  SocketListener listener =
      SocketListener::listen(test_socket_address("corrupt"));
  const std::string path =
      listener.address().substr(std::string("unix:").size());
  std::string frame = encode_to_string(bytes_of({10, 20, 30, 40}));
  frame[kFrameHeaderBytes + 1] ^= 0x40;  // payload corruption, header intact
  auto rogue_fut = std::async(std::launch::async, [&path, &frame] {
    // Rogue peer simulating a hostile client; the fd lives for
    // microseconds inside this test and nothing execs. lint: allow(cloexec)
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    ASSERT_EQ(
        ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr),
        0);
    ASSERT_EQ(::send(fd, frame.data(), frame.size(), 0),
              static_cast<ssize_t>(frame.size()));
    ::close(fd);
  });
  auto server = listener.accept_for(std::chrono::milliseconds(2000));
  ASSERT_NE(server, nullptr);
  rogue_fut.get();
  EXPECT_THROW(server->recv_for(std::chrono::microseconds(2'000'000)), Error);
}

TEST(SocketTransport, GarbageBytesOnTheWireThrowNotCrash) {
  // A peer that does not speak the protocol at all: raw bytes with no
  // QKFR magic, written straight to the fd (SocketTransport::send always
  // frames correctly, so the hostile writer has to go around it).
  SocketListener listener =
      SocketListener::listen(test_socket_address("garbage"));
  const std::string path =
      listener.address().substr(std::string("unix:").size());
  auto rogue_fut = std::async(std::launch::async, [&path] {
    // Rogue peer simulating a hostile client; the fd lives for
    // microseconds inside this test and nothing execs. lint: allow(cloexec)
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    ASSERT_EQ(
        ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr),
        0);
    const char garbage[] = "NOTAFRAMEATALL, just bytes on the wire.";
    ASSERT_GT(::send(fd, garbage, sizeof garbage, 0), 0);
    ::close(fd);
  });
  auto server = listener.accept_for(std::chrono::milliseconds(2000));
  ASSERT_NE(server, nullptr);
  rogue_fut.get();
  EXPECT_THROW(server->recv_for(std::chrono::microseconds(2'000'000)), Error);
}

}  // namespace
}  // namespace qkmps::parallel
