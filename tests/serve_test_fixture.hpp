#pragma once

#include <cstdint>
#include <vector>

#include "data/elliptic_synthetic.hpp"
#include "data/splits.hpp"
#include "kernel/gram.hpp"
#include "serve/model_bundle.hpp"
#include "svm/svm.hpp"
#include "util/rng.hpp"

namespace qkmps::testing {

/// Small end-to-end training run shared by the serving-subsystem suites:
/// 6 qubits, ~22 training points — enough for a nontrivial SV subset,
/// cheap enough for the smoke label. Carries both the full training
/// artifacts (for parity checks against the uncompacted pipeline) and the
/// assembled bundle.
struct TrainedServing {
  kernel::QuantumKernelConfig cfg;
  data::FeatureScaler scaler;
  svm::SvcModel full_model;
  std::vector<mps::Mps> train_states;
  kernel::RealMatrix x_test_raw;  ///< unscaled held-out features
  serve::ModelBundle bundle;
};

inline TrainedServing train_small_serving(std::uint64_t seed) {
  data::EllipticSyntheticParams gen;
  gen.num_points = 400;
  gen.num_features = 6;
  const data::Dataset pool = data::generate_elliptic_synthetic(gen);
  Rng rng(seed);
  const data::Dataset sample = data::balanced_subsample(pool, 14, rng);
  const data::TrainTestSplit split = data::train_test_split(sample, 0.2, rng);

  TrainedServing t;
  t.cfg.ansatz = {.num_features = 6, .layers = 2, .distance = 1, .gamma = 0.5};
  t.scaler = data::FeatureScaler::fit(split.train.x);
  const auto x_train = t.scaler.transform(split.train.x);
  t.train_states = kernel::simulate_states(t.cfg, x_train);
  const auto k_train = kernel::gram_from_states(t.train_states, t.cfg.sim.policy);
  t.full_model = svm::train_svc(k_train, split.train.y, {.c = 1.0});
  t.x_test_raw = split.test.x;
  t.bundle = serve::make_bundle(t.cfg, t.scaler, t.full_model, t.train_states);
  return t;
}

}  // namespace qkmps::testing
