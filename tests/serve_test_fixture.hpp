#pragma once

#include <cstdint>
#include <vector>

#include "data/elliptic_synthetic.hpp"
#include "data/splits.hpp"
#include "kernel/gram.hpp"
#include "serve/model_bundle.hpp"
#include "svm/svm.hpp"
#include "util/rng.hpp"

namespace qkmps::testing {

/// Small end-to-end training run shared by the serving-subsystem suites:
/// 6 qubits, ~22 training points — enough for a nontrivial SV subset,
/// cheap enough for the smoke label. Carries both the full training
/// artifacts (for parity checks against the uncompacted pipeline) and the
/// assembled bundle.
struct TrainedServing {
  kernel::QuantumKernelConfig cfg;
  data::FeatureScaler scaler;
  svm::SvcModel full_model;
  std::vector<mps::Mps> train_states;
  kernel::RealMatrix x_test_raw;  ///< unscaled held-out features
  serve::ModelBundle bundle;
};

/// Raw request pool for the serving workload scenarios — same synthetic
/// distribution the fixture trains on, with far more rows than the
/// fixture's held-out split so scenarios can ask for a nontrivial unique
/// set.
inline kernel::RealMatrix serving_request_pool(idx rows = 200) {
  data::EllipticSyntheticParams gen;
  gen.num_points = rows;
  gen.num_features = 6;
  return data::generate_elliptic_synthetic(gen).x;
}

/// The sequential reference pipeline on the full training artifacts:
/// scale -> simulate_states -> cross kernel -> full-model decision
/// values, one per row of `points`. The serving-layer parity suites
/// (engine, sharded frontend, stress) all compare against this oracle —
/// bitwise, whatever the batching, sharding, admission, or arrival order.
inline std::vector<double> sequential_reference(
    const TrainedServing& s, const kernel::RealMatrix& points) {
  const auto scaled = s.bundle.scaler.transform(points);
  const auto states = kernel::simulate_states(s.bundle.config, scaled);
  const auto k = kernel::cross_from_states(states, s.train_states,
                                           s.bundle.config.sim.policy);
  return s.full_model.decision_values(k);
}

inline TrainedServing train_small_serving(std::uint64_t seed) {
  data::EllipticSyntheticParams gen;
  gen.num_points = 400;
  gen.num_features = 6;
  const data::Dataset pool = data::generate_elliptic_synthetic(gen);
  Rng rng(seed);
  const data::Dataset sample = data::balanced_subsample(pool, 14, rng);
  const data::TrainTestSplit split = data::train_test_split(sample, 0.2, rng);

  TrainedServing t;
  t.cfg.ansatz = {.num_features = 6, .layers = 2, .distance = 1, .gamma = 0.5};
  t.scaler = data::FeatureScaler::fit(split.train.x);
  const auto x_train = t.scaler.transform(split.train.x);
  t.train_states = kernel::simulate_states(t.cfg, x_train);
  const auto k_train = kernel::gram_from_states(t.train_states, t.cfg.sim.policy);
  t.full_model = svm::train_svc(k_train, split.train.y, {.c = 1.0});
  t.x_test_raw = split.test.x;
  t.bundle = serve::make_bundle(t.cfg, t.scaler, t.full_model, t.train_states);
  return t;
}

}  // namespace qkmps::testing
