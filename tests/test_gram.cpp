#include <gtest/gtest.h>

#include <cmath>

#include "circuit/statevector.hpp"
#include "kernel/gram.hpp"
#include "test_helpers.hpp"

namespace qkmps::kernel {
namespace {

RealMatrix random_scaled_data(idx n, idx m, std::uint64_t seed) {
  Rng rng(seed);
  RealMatrix x(n, m);
  for (idx i = 0; i < n; ++i)
    for (idx j = 0; j < m; ++j) x(i, j) = rng.uniform(0.05, 1.95);
  return x;
}

QuantumKernelConfig small_config(idx m, idx d = 1, double gamma = 0.6) {
  QuantumKernelConfig cfg;
  cfg.ansatz = {.num_features = m, .layers = 2, .distance = d, .gamma = gamma};
  return cfg;
}

TEST(Gram, DiagonalIsOne) {
  const RealMatrix x = random_scaled_data(5, 4, 1);
  const RealMatrix k = gram_matrix(small_config(4), x);
  // Not bit-exact by contract: diagonal entries come from normalized-state
  // self-overlaps, so allow accumulated roundoff at the 1e-12 scale.
  for (idx i = 0; i < 5; ++i) EXPECT_NEAR(k(i, i), 1.0, 1e-12);
}

TEST(Gram, SymmetricByConstruction) {
  const RealMatrix x = random_scaled_data(6, 5, 2);
  const RealMatrix k = gram_matrix(small_config(5, 2), x);
  EXPECT_EQ(symmetry_defect(k), 0.0);
}

TEST(Gram, EntriesInUnitInterval) {
  const RealMatrix x = random_scaled_data(7, 4, 3);
  const RealMatrix k = gram_matrix(small_config(4, 2, 1.0), x);
  for (idx i = 0; i < k.rows(); ++i)
    for (idx j = 0; j < k.cols(); ++j) {
      EXPECT_GE(k(i, j), 0.0);
      EXPECT_LE(k(i, j), 1.0 + 1e-10);
    }
}

TEST(Gram, MatchesStatevectorKernel) {
  // Ground truth: compute |<psi_i|psi_j>|^2 with the dense simulator.
  const idx n = 5, m = 6;
  const RealMatrix x = random_scaled_data(n, m, 4);
  const QuantumKernelConfig cfg = small_config(m, 2, 0.8);

  const RealMatrix k = gram_matrix(cfg, x);

  std::vector<circuit::Statevector> svs;
  for (idx i = 0; i < n; ++i) {
    std::vector<double> row(x.row(i), x.row(i) + m);
    svs.push_back(circuit::simulate_statevector(
        circuit::feature_map_circuit(cfg.ansatz, row)));
  }
  for (idx i = 0; i < n; ++i)
    for (idx j = 0; j < n; ++j) {
      const double expect = std::norm(svs[static_cast<std::size_t>(i)].inner_product(
          svs[static_cast<std::size_t>(j)]));
      EXPECT_NEAR(k(i, j), expect, 1e-8) << i << "," << j;
    }
}

TEST(Gram, PositiveSemidefiniteQuadraticForms) {
  // Fidelity kernels are PSD; spot-check v^T K v >= 0 on random vectors.
  const RealMatrix x = random_scaled_data(8, 4, 5);
  const RealMatrix k = gram_matrix(small_config(4, 1, 1.0), x);
  Rng rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> v(8);
    for (auto& e : v) e = rng.normal();
    double quad = 0.0;
    for (idx i = 0; i < 8; ++i)
      for (idx j = 0; j < 8; ++j)
        quad += v[static_cast<std::size_t>(i)] * k(i, j) * v[static_cast<std::size_t>(j)];
    EXPECT_GE(quad, -1e-9);
  }
}

TEST(Gram, StatsCountsArePredictable) {
  const idx n = 6;
  const RealMatrix x = random_scaled_data(n, 4, 7);
  GramStats stats;
  gram_matrix(small_config(4), x, &stats);
  EXPECT_EQ(stats.circuits_simulated, n);
  EXPECT_EQ(stats.inner_products, n * (n - 1) / 2);  // symmetric halving
  // Phases are measured in thread-CPU time; a handful of tiny-chi circuit
  // simulations or overlaps can round to zero at clock granularity, so only
  // non-negativity is promised here (magnitudes are covered by the benches).
  EXPECT_GE(stats.phases.total("simulation"), 0.0);
  EXPECT_GE(stats.phases.total("inner_product"), 0.0);
  EXPECT_GE(stats.avg_max_bond, 1.0);
  EXPECT_GT(stats.avg_mps_bytes, 0u);
}

TEST(CrossKernel, ShapeAndRange) {
  const RealMatrix xtest = random_scaled_data(3, 4, 8);
  const RealMatrix xtrain = random_scaled_data(5, 4, 9);
  const RealMatrix k = cross_kernel(small_config(4), xtest, xtrain);
  EXPECT_EQ(k.rows(), 3);
  EXPECT_EQ(k.cols(), 5);
  for (idx i = 0; i < 3; ++i)
    for (idx j = 0; j < 5; ++j) {
      EXPECT_GE(k(i, j), 0.0);
      EXPECT_LE(k(i, j), 1.0 + 1e-10);
    }
}

TEST(CrossKernel, IdenticalPointGivesUnitEntry) {
  const RealMatrix xtrain = random_scaled_data(4, 5, 10);
  RealMatrix xtest(1, 5);
  for (idx j = 0; j < 5; ++j) xtest(0, j) = xtrain(2, j);
  const RealMatrix k = cross_kernel(small_config(5), xtest, xtrain);
  EXPECT_NEAR(k(0, 2), 1.0, 1e-9);
}

TEST(CrossKernel, CountsBothSimulationSets) {
  const RealMatrix xtest = random_scaled_data(2, 4, 11);
  const RealMatrix xtrain = random_scaled_data(3, 4, 12);
  GramStats stats;
  cross_kernel(small_config(4), xtest, xtrain, &stats);
  EXPECT_EQ(stats.circuits_simulated, 5);
  EXPECT_EQ(stats.inner_products, 6);
}

TEST(Gram, RejectsFeatureMismatch) {
  const RealMatrix x = random_scaled_data(3, 4, 13);
  EXPECT_THROW(gram_matrix(small_config(5), x), Error);
}

}  // namespace
}  // namespace qkmps::kernel
