// util/binary_io.hpp: the primitives every on-disk artifact and every
// wire frame are built from. The hardening contract under test: short
// writes throw at the write site (not confusingly at read time), corrupt
// length prefixes can never over-allocate — with or without a seekable
// stream — and the seekable-path length probe leaves no sticky stream
// state behind.

#include "util/binary_io.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <streambuf>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace qkmps {
namespace {

// ---------------------------------------------------------------------
// Round trips.

TEST(BinaryIo, PodRoundTripPreservesBits) {
  std::stringstream ss;
  io::write_pod(ss, std::uint64_t{0xDEADBEEFCAFEF00Dull});
  io::write_pod(ss, -1.5);
  io::write_pod(ss, std::int32_t{-7});
  EXPECT_EQ(io::read_pod<std::uint64_t>(ss), 0xDEADBEEFCAFEF00Dull);
  EXPECT_EQ(io::read_pod<double>(ss), -1.5);
  EXPECT_EQ(io::read_pod<std::int32_t>(ss), -7);
}

TEST(BinaryIo, VectorRoundTripIncludingEmpty) {
  std::stringstream ss;
  const std::vector<double> v{1.0, -0.0, 3.25};
  io::write_vector(ss, v);
  io::write_vector(ss, std::vector<double>{});
  const auto back = io::read_vector<double>(ss);
  ASSERT_EQ(back.size(), v.size());
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_EQ(back[i], v[i]);
  EXPECT_TRUE(io::read_vector<double>(ss).empty());
}

// ---------------------------------------------------------------------
// Short reads.

TEST(BinaryIo, TruncatedPodThrows) {
  std::stringstream ss;
  ss.write("ab", 2);
  EXPECT_THROW(io::read_pod<std::uint64_t>(ss), Error);
}

TEST(BinaryIo, TruncatedVectorPayloadThrows) {
  std::stringstream ss;
  io::write_pod(ss, std::int64_t{4});
  io::write_pod(ss, 1.0);  // one element where four were promised
  EXPECT_THROW(io::read_vector<double>(ss), Error);
}

TEST(BinaryIo, NegativeVectorLengthThrows) {
  std::stringstream ss;
  io::write_pod(ss, std::int64_t{-3});
  EXPECT_THROW(io::read_vector<double>(ss), Error);
}

TEST(BinaryIo, HugeLengthPrefixFailsBeforeAllocatingOnSeekableStream) {
  std::stringstream ss;
  io::write_pod(ss, std::int64_t{1} << 60);
  io::write_pod(ss, 1.0);
  // The seekable-stream guard compares the claim against the bytes that
  // actually remain; a 2^60-element claim must die as Error, not
  // bad_alloc.
  EXPECT_THROW(io::read_vector<double>(ss), Error);
}

TEST(BinaryIo, SeekProbeLeavesStreamUsableForLaterReads) {
  std::stringstream ss;
  io::write_vector(ss, std::vector<std::int32_t>{1, 2, 3});
  io::write_pod(ss, std::uint64_t{42});
  const auto v = io::read_vector<std::int32_t>(ss);
  ASSERT_EQ(v.size(), 3u);
  // The length-probe seek round-trip must not leave eof/fail state that
  // would make this follow-up read fail spuriously.
  EXPECT_TRUE(ss.good());
  EXPECT_EQ(io::read_pod<std::uint64_t>(ss), 42u);
}

// ---------------------------------------------------------------------
// Non-seekable streams and the byte-budget overload.

/// A read-only streambuf with no seek support: tellg() == -1, exactly
/// the shape of a socket or pipe stream.
class NonSeekableBuf : public std::streambuf {
 public:
  explicit NonSeekableBuf(std::string bytes) : bytes_(std::move(bytes)) {
    setg(bytes_.data(), bytes_.data(), bytes_.data() + bytes_.size());
  }

 protected:
  // No seekoff/seekpos overrides: pubseekoff fails, so tellg() == -1.

 private:
  std::string bytes_;
};

std::string vector_bytes(std::int64_t claimed_len,
                         const std::vector<double>& payload) {
  std::ostringstream os;
  io::write_pod(os, claimed_len);
  for (double d : payload) io::write_pod(os, d);
  return os.str();
}

TEST(BinaryIo, NonSeekableStreamHonestPayloadRoundTrips) {
  NonSeekableBuf buf(vector_bytes(2, {1.5, 2.5}));
  std::istream is(&buf);
  ASSERT_EQ(is.tellg(), std::istream::pos_type(-1));
  const auto v = io::read_vector<double>(is, 1024);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 1.5);
  EXPECT_EQ(v[1], 2.5);
}

TEST(BinaryIo, ByteBudgetRejectsHostileLengthWithoutAllocating) {
  // A hostile length prefix on a non-seekable stream: the unbudgeted
  // overload has no way to bound it, which is exactly why the codec path
  // must pass a budget. 2^61 * 8 bytes would be a fatal allocation.
  NonSeekableBuf buf(vector_bytes(std::int64_t{1} << 61, {1.0}));
  std::istream is(&buf);
  EXPECT_THROW(io::read_vector<double>(is, 1 << 20), Error);
}

TEST(BinaryIo, ByteBudgetBoundaryIsInclusive) {
  {
    NonSeekableBuf buf(vector_bytes(2, {1.0, 2.0}));
    std::istream is(&buf);
    EXPECT_EQ(io::read_vector<double>(is, 2 * sizeof(double)).size(), 2u);
  }
  {
    NonSeekableBuf buf(vector_bytes(2, {1.0, 2.0}));
    std::istream is(&buf);
    EXPECT_THROW(io::read_vector<double>(is, 2 * sizeof(double) - 1), Error);
  }
}

// ---------------------------------------------------------------------
// Short writes.

/// An output streambuf that accepts `capacity` bytes and then rejects
/// everything — a full disk / closed pipe stand-in.
class FailingAfterBuf : public std::streambuf {
 public:
  explicit FailingAfterBuf(std::size_t capacity) : capacity_(capacity) {}
  std::size_t written() const { return written_; }

 protected:
  int overflow(int ch) override {
    if (written_ >= capacity_) return traits_type::eof();
    ++written_;
    return ch;
  }
  std::streamsize xsputn(const char*, std::streamsize n) override {
    const std::streamsize room =
        static_cast<std::streamsize>(capacity_ - written_);
    const std::streamsize take = n < room ? n : room;
    written_ += static_cast<std::size_t>(take);
    return take;  // short count past capacity -> badbit on the stream
  }

 private:
  std::size_t capacity_;
  std::size_t written_ = 0;
};

TEST(BinaryIo, ShortPodWriteThrowsAtTheWriteSite) {
  FailingAfterBuf buf(3);  // room for less than one uint64
  std::ostream os(&buf);
  EXPECT_THROW(io::write_pod(os, std::uint64_t{7}), Error);
}

TEST(BinaryIo, ShortVectorPayloadWriteThrowsAtTheWriteSite) {
  // Room for the length prefix plus one element; the second element hits
  // the wall. Pre-hardening this returned silently and the truncation
  // surfaced only at read time.
  FailingAfterBuf buf(sizeof(std::int64_t) + sizeof(double));
  std::ostream os(&buf);
  EXPECT_THROW(io::write_vector(os, std::vector<double>{1.0, 2.0}), Error);
}

TEST(BinaryIo, WriteToAlreadyFailedStreamThrows) {
  std::ostringstream os;
  os.setstate(std::ios::badbit);
  EXPECT_THROW(io::write_pod(os, 1), Error);
}

}  // namespace
}  // namespace qkmps
