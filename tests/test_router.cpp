#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "serve/feature_key.hpp"
#include "serve/router.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace qkmps::serve {
namespace {

std::vector<std::uint64_t> random_keys(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint64_t> keys(n);
  for (auto& k : keys) k = rng.next();
  return keys;
}

TEST(ModuloRouter, MatchesFeatureHashModulo) {
  ModuloRouter router(4);
  const std::vector<double> f{0.25, -1.5, 3.0};
  // The modulo router must reproduce the original ShardedEngine routing
  // bit-for-bit: hash % N.
  EXPECT_EQ(router.shard_for(f),
            static_cast<int>(feature_hash(f) % 4));
  for (std::uint64_t k : random_keys(256, 3)) {
    EXPECT_EQ(router.shard_for_hash(k), static_cast<int>(k % 4));
  }
}

TEST(ConsistentHashRouter, AssignsEveryKeyInRange) {
  ConsistentHashRouter router(5, 32);
  for (std::uint64_t k : random_keys(2000, 11)) {
    const int s = router.shard_for_hash(k);
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 5);
  }
}

TEST(ConsistentHashRouter, AssignmentIsDeterministicAcrossInstances) {
  ConsistentHashRouter a(7, 64);
  ConsistentHashRouter b(7, 64);
  for (std::uint64_t k : random_keys(1000, 12))
    EXPECT_EQ(a.shard_for_hash(k), b.shard_for_hash(k));
}

TEST(ConsistentHashRouter, GrowingEqualsConstructingLarger) {
  // ConsistentHashRouter(n) + add_shard() must agree with
  // ConsistentHashRouter(n + 1) on every key — the property that lets a
  // resized engine and a freshly deployed one route identically.
  ConsistentHashRouter grown(4, 64);
  grown.add_shard();
  ConsistentHashRouter fresh(5, 64);
  for (std::uint64_t k : random_keys(2000, 13))
    EXPECT_EQ(grown.shard_for_hash(k), fresh.shard_for_hash(k));
}

TEST(ConsistentHashRouter, LoadSpreadIsRoughlyBalanced) {
  const std::size_t shards = 4;
  ConsistentHashRouter router(shards, 128);
  const std::size_t kKeys = 8000;
  std::vector<std::size_t> owned(shards, 0);
  for (std::uint64_t k : random_keys(kKeys, 14))
    ++owned[static_cast<std::size_t>(router.shard_for_hash(k))];
  // With 128 virtual nodes the relative imbalance is ~1/sqrt(128) ≈ 9%;
  // a [0.5x, 2x] band around the fair share is far outside that noise.
  const double fair = static_cast<double>(kKeys) / shards;
  for (std::size_t s = 0; s < shards; ++s) {
    EXPECT_GT(static_cast<double>(owned[s]), 0.5 * fair) << "shard " << s;
    EXPECT_LT(static_cast<double>(owned[s]), 2.0 * fair) << "shard " << s;
  }
}

/// The tentpole remap property: growing N -> N+1 moves at most ~K/N keys
/// (expected K/(N+1)), and every key that moves, moves TO the new shard —
/// consistent hashing only ever steals keys for the newcomer, it never
/// shuffles keys between surviving shards. That exactness is what keeps
/// N-1 of the StateCaches warm across a resize.
TEST(ConsistentHashRouter, AddingAShardMovesAtMostOneNthOfKeys) {
  const std::size_t n = 4;
  const std::size_t kKeys = 4000;
  const std::vector<std::uint64_t> keys = random_keys(kKeys, 15);

  ConsistentHashRouter before(n, 128);
  std::vector<int> old_assignment(kKeys);
  for (std::size_t i = 0; i < kKeys; ++i)
    old_assignment[i] = before.shard_for_hash(keys[i]);

  ConsistentHashRouter after(n, 128);
  after.add_shard();

  std::size_t moved = 0;
  for (std::size_t i = 0; i < kKeys; ++i) {
    const int now = after.shard_for_hash(keys[i]);
    if (now != old_assignment[i]) {
      ++moved;
      // Exact, no slack: a moved key may only have moved to the new shard.
      EXPECT_EQ(now, static_cast<int>(n)) << "key " << i
          << " moved between surviving shards";
    }
  }
  // ISSUE bound: moved <= K/N + slack. Expected value is K/(N+1) = 800;
  // K/N + 10% slack = 1400 leaves ~5 sigma of ring-imbalance headroom.
  EXPECT_LE(moved, kKeys / n + kKeys / 10);
  // And the growth is not a no-op: the new shard did take ownership.
  EXPECT_GT(moved, 0u);
}

TEST(ModuloRouter, AddingAShardRemapsAlmostEverything) {
  // The contrast that motivates the ring: hash % N reassigns ~N/(N+1) of
  // all keys on growth, cold-starting nearly every cache.
  const std::size_t n = 4;
  const std::size_t kKeys = 4000;
  const std::vector<std::uint64_t> keys = random_keys(kKeys, 16);
  ModuloRouter before(n);
  ModuloRouter after(n);
  after.add_shard();
  std::size_t moved = 0;
  for (std::uint64_t k : keys)
    if (after.shard_for_hash(k) != before.shard_for_hash(k)) ++moved;
  EXPECT_GT(moved, kKeys / 2);
}

TEST(Router, FactoryBuildsTheConfiguredKind) {
  const auto modulo = make_router(
      RouterConfig{RouterKind::kFeatureHashModulo, 64}, 3);
  EXPECT_EQ(modulo->kind(), RouterKind::kFeatureHashModulo);
  EXPECT_EQ(modulo->num_shards(), 3u);

  const auto ring = make_router(
      RouterConfig{RouterKind::kConsistentHash, 16}, 3);
  EXPECT_EQ(ring->kind(), RouterKind::kConsistentHash);
  EXPECT_EQ(ring->num_shards(), 3u);
  EXPECT_EQ(static_cast<const ConsistentHashRouter&>(*ring).virtual_nodes(),
            16u);
}

TEST(Router, SingleShardRoutersSendEverythingToShardZero) {
  ConsistentHashRouter ring(1, 8);
  ModuloRouter modulo(1);
  for (std::uint64_t k : random_keys(200, 17)) {
    EXPECT_EQ(ring.shard_for_hash(k), 0);
    EXPECT_EQ(modulo.shard_for_hash(k), 0);
  }
}

/// Weighted virtual nodes: a shard of weight w owns ~w * virtual_nodes
/// ring points, so its key share is proportional to w — the property
/// that lets a 2x-threads worker pull 2x the load.
TEST(ConsistentHashRouter, WeightedSpreadIsProportionalToWeights) {
  const std::vector<double> weights{2.0, 1.0, 1.0};
  ConsistentHashRouter router(weights, 256);
  EXPECT_EQ(router.points_of(0), 512u);
  EXPECT_EQ(router.points_of(1), 256u);

  const std::size_t kKeys = 12000;
  std::vector<std::size_t> owned(weights.size(), 0);
  for (std::uint64_t k : random_keys(kKeys, 18))
    ++owned[static_cast<std::size_t>(router.shard_for_hash(k))];

  const double total_weight = 4.0;
  for (std::size_t s = 0; s < weights.size(); ++s) {
    const double fair =
        static_cast<double>(kKeys) * weights[s] / total_weight;
    // 256+ points per shard keeps relative imbalance well under 25%.
    EXPECT_GT(static_cast<double>(owned[s]), 0.75 * fair) << "shard " << s;
    EXPECT_LT(static_cast<double>(owned[s]), 1.25 * fair) << "shard " << s;
  }
}

TEST(ConsistentHashRouter, FractionalWeightStillGetsAtLeastOnePoint) {
  ConsistentHashRouter router(std::vector<double>{1.0, 0.001}, 8);
  EXPECT_EQ(router.points_of(1), 1u);  // max(1, round(0.001 * 8))
}

/// Removal is the exact mirror of growth: every key the leaver owned
/// hands off to a surviving shard, and no key owned by a survivor moves
/// at all — survivors' caches stay untouched by the shrink.
TEST(ConsistentHashRouter, RemovingAShardOnlyMovesTheLeaversKeys) {
  const std::size_t n = 4;
  const std::size_t kKeys = 4000;
  const std::vector<std::uint64_t> keys = random_keys(kKeys, 19);

  ConsistentHashRouter before(n, 128);
  ConsistentHashRouter after(n, 128);
  const int leaver = 1;
  after.remove_shard(leaver);
  EXPECT_EQ(after.points_of(leaver), 0u);
  EXPECT_EQ(after.num_shards(), n);  // the retired id still counts

  std::size_t handed_off = 0;
  for (std::uint64_t k : keys) {
    const int was = before.shard_for_hash(k);
    const int now = after.shard_for_hash(k);
    EXPECT_NE(now, leaver);
    if (was == leaver) {
      ++handed_off;
    } else {
      EXPECT_EQ(now, was) << "a survivor's key moved during removal";
    }
  }
  EXPECT_GT(handed_off, 0u);
}

TEST(ConsistentHashRouter, RemoveShardValidatesItsTarget) {
  ConsistentHashRouter router(3, 32);
  EXPECT_THROW(router.remove_shard(-1), Error);
  EXPECT_THROW(router.remove_shard(3), Error);
  router.remove_shard(1);
  EXPECT_THROW(router.remove_shard(1), Error);  // already removed
  router.remove_shard(0);
  EXPECT_THROW(router.remove_shard(2), Error);  // would empty the ring
}

TEST(ModuloRouter, WeightsAndMidTopologyRemovalAreRejected) {
  ModuloRouter router(3);
  EXPECT_THROW(router.add_shard(2.0), Error);
  EXPECT_THROW(router.remove_shard(0), Error);  // only the top id shrinks
  router.remove_shard(2);
  EXPECT_EQ(router.num_shards(), 2u);
  for (std::uint64_t k : random_keys(100, 20))
    EXPECT_EQ(router.shard_for_hash(k), static_cast<int>(k % 2));
  router.remove_shard(1);
  EXPECT_THROW(router.remove_shard(0), Error);  // cannot remove the last
}

TEST(Router, WeightedFactoryRejectsWeightsTheKindCannotExpress) {
  EXPECT_THROW(make_router(RouterConfig{RouterKind::kFeatureHashModulo, 64},
                           std::vector<double>{1.0, 2.0}),
               Error);
  const auto ring = make_router(RouterConfig{RouterKind::kConsistentHash, 64},
                                std::vector<double>{1.0, 2.0});
  EXPECT_EQ(ring->num_shards(), 2u);
  EXPECT_EQ(static_cast<const ConsistentHashRouter&>(*ring).points_of(1),
            128u);
}

}  // namespace
}  // namespace qkmps::serve
