#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "serve/feature_key.hpp"
#include "serve/router.hpp"
#include "util/rng.hpp"

namespace qkmps::serve {
namespace {

std::vector<std::uint64_t> random_keys(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint64_t> keys(n);
  for (auto& k : keys) k = rng.next();
  return keys;
}

TEST(ModuloRouter, MatchesFeatureHashModulo) {
  ModuloRouter router(4);
  const std::vector<double> f{0.25, -1.5, 3.0};
  // The modulo router must reproduce the original ShardedEngine routing
  // bit-for-bit: hash % N.
  EXPECT_EQ(router.shard_for(f),
            static_cast<int>(feature_hash(f) % 4));
  for (std::uint64_t k : random_keys(256, 3)) {
    EXPECT_EQ(router.shard_for_hash(k), static_cast<int>(k % 4));
  }
}

TEST(ConsistentHashRouter, AssignsEveryKeyInRange) {
  ConsistentHashRouter router(5, 32);
  for (std::uint64_t k : random_keys(2000, 11)) {
    const int s = router.shard_for_hash(k);
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 5);
  }
}

TEST(ConsistentHashRouter, AssignmentIsDeterministicAcrossInstances) {
  ConsistentHashRouter a(7, 64);
  ConsistentHashRouter b(7, 64);
  for (std::uint64_t k : random_keys(1000, 12))
    EXPECT_EQ(a.shard_for_hash(k), b.shard_for_hash(k));
}

TEST(ConsistentHashRouter, GrowingEqualsConstructingLarger) {
  // ConsistentHashRouter(n) + add_shard() must agree with
  // ConsistentHashRouter(n + 1) on every key — the property that lets a
  // resized engine and a freshly deployed one route identically.
  ConsistentHashRouter grown(4, 64);
  grown.add_shard();
  ConsistentHashRouter fresh(5, 64);
  for (std::uint64_t k : random_keys(2000, 13))
    EXPECT_EQ(grown.shard_for_hash(k), fresh.shard_for_hash(k));
}

TEST(ConsistentHashRouter, LoadSpreadIsRoughlyBalanced) {
  const std::size_t shards = 4;
  ConsistentHashRouter router(shards, 128);
  const std::size_t kKeys = 8000;
  std::vector<std::size_t> owned(shards, 0);
  for (std::uint64_t k : random_keys(kKeys, 14))
    ++owned[static_cast<std::size_t>(router.shard_for_hash(k))];
  // With 128 virtual nodes the relative imbalance is ~1/sqrt(128) ≈ 9%;
  // a [0.5x, 2x] band around the fair share is far outside that noise.
  const double fair = static_cast<double>(kKeys) / shards;
  for (std::size_t s = 0; s < shards; ++s) {
    EXPECT_GT(static_cast<double>(owned[s]), 0.5 * fair) << "shard " << s;
    EXPECT_LT(static_cast<double>(owned[s]), 2.0 * fair) << "shard " << s;
  }
}

/// The tentpole remap property: growing N -> N+1 moves at most ~K/N keys
/// (expected K/(N+1)), and every key that moves, moves TO the new shard —
/// consistent hashing only ever steals keys for the newcomer, it never
/// shuffles keys between surviving shards. That exactness is what keeps
/// N-1 of the StateCaches warm across a resize.
TEST(ConsistentHashRouter, AddingAShardMovesAtMostOneNthOfKeys) {
  const std::size_t n = 4;
  const std::size_t kKeys = 4000;
  const std::vector<std::uint64_t> keys = random_keys(kKeys, 15);

  ConsistentHashRouter before(n, 128);
  std::vector<int> old_assignment(kKeys);
  for (std::size_t i = 0; i < kKeys; ++i)
    old_assignment[i] = before.shard_for_hash(keys[i]);

  ConsistentHashRouter after(n, 128);
  after.add_shard();

  std::size_t moved = 0;
  for (std::size_t i = 0; i < kKeys; ++i) {
    const int now = after.shard_for_hash(keys[i]);
    if (now != old_assignment[i]) {
      ++moved;
      // Exact, no slack: a moved key may only have moved to the new shard.
      EXPECT_EQ(now, static_cast<int>(n)) << "key " << i
          << " moved between surviving shards";
    }
  }
  // ISSUE bound: moved <= K/N + slack. Expected value is K/(N+1) = 800;
  // K/N + 10% slack = 1400 leaves ~5 sigma of ring-imbalance headroom.
  EXPECT_LE(moved, kKeys / n + kKeys / 10);
  // And the growth is not a no-op: the new shard did take ownership.
  EXPECT_GT(moved, 0u);
}

TEST(ModuloRouter, AddingAShardRemapsAlmostEverything) {
  // The contrast that motivates the ring: hash % N reassigns ~N/(N+1) of
  // all keys on growth, cold-starting nearly every cache.
  const std::size_t n = 4;
  const std::size_t kKeys = 4000;
  const std::vector<std::uint64_t> keys = random_keys(kKeys, 16);
  ModuloRouter before(n);
  ModuloRouter after(n);
  after.add_shard();
  std::size_t moved = 0;
  for (std::uint64_t k : keys)
    if (after.shard_for_hash(k) != before.shard_for_hash(k)) ++moved;
  EXPECT_GT(moved, kKeys / 2);
}

TEST(Router, FactoryBuildsTheConfiguredKind) {
  const auto modulo = make_router(
      RouterConfig{RouterKind::kFeatureHashModulo, 64}, 3);
  EXPECT_EQ(modulo->kind(), RouterKind::kFeatureHashModulo);
  EXPECT_EQ(modulo->num_shards(), 3u);

  const auto ring = make_router(
      RouterConfig{RouterKind::kConsistentHash, 16}, 3);
  EXPECT_EQ(ring->kind(), RouterKind::kConsistentHash);
  EXPECT_EQ(ring->num_shards(), 3u);
  EXPECT_EQ(static_cast<const ConsistentHashRouter&>(*ring).virtual_nodes(),
            16u);
}

TEST(Router, SingleShardRoutersSendEverythingToShardZero) {
  ConsistentHashRouter ring(1, 8);
  ModuloRouter modulo(1);
  for (std::uint64_t k : random_keys(200, 17)) {
    EXPECT_EQ(ring.shard_for_hash(k), 0);
    EXPECT_EQ(modulo.shard_for_hash(k), 0);
  }
}

}  // namespace
}  // namespace qkmps::serve
