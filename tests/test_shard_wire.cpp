// serve/shard_wire.hpp: the byte serialization of the shard protocol.
// Round trips must be lossless (bitwise on doubles — the determinism
// contract rides on this), and decoders must treat payloads as untrusted
// wire input: unknown kinds, truncation, hostile vector lengths, and
// trailing garbage all throw qkmps::Error.

#include "serve/shard_wire.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/error.hpp"

namespace qkmps::serve {
namespace {

TEST(ShardWire, EnvelopeRoundTripIsLossless) {
  ShardEnvelope envelope;
  envelope.kind = ShardEnvelope::Kind::kRequest;
  envelope.id = 0xFEEDFACE12345678ull;
  envelope.features = {1.5, -0.0, std::numeric_limits<double>::denorm_min(),
                       -3.25e-300, 2.0};
  envelope.trace_id = 0xABCDEF0123456789ull;  // wire v3 tail
  const ShardEnvelope back = decode_envelope(encode_envelope(envelope));
  EXPECT_EQ(back.kind, envelope.kind);
  EXPECT_EQ(back.id, envelope.id);
  EXPECT_EQ(back.trace_id, envelope.trace_id);
  ASSERT_EQ(back.features.size(), envelope.features.size());
  for (std::size_t i = 0; i < envelope.features.size(); ++i) {
    // Bitwise, not ==: -0.0 must survive as -0.0 (the cache keys by
    // feature bits, so the wire may not canonicalize).
    EXPECT_EQ(std::signbit(back.features[i]),
              std::signbit(envelope.features[i]));
    EXPECT_EQ(back.features[i], envelope.features[i]);
  }
}

TEST(ShardWire, ControlEnvelopesRoundTrip) {
  for (const auto kind :
       {ShardEnvelope::Kind::kDrain, ShardEnvelope::Kind::kShutdown,
        ShardEnvelope::Kind::kStats}) {
    const ShardEnvelope back =
        decode_envelope(encode_envelope(ShardEnvelope{kind, 7, {}}));
    EXPECT_EQ(back.kind, kind);
    EXPECT_EQ(back.id, 7u);
    EXPECT_TRUE(back.features.empty());
  }
}

TEST(ShardWire, ReplyRoundTripIsLossless) {
  ShardReply reply;
  reply.kind = ShardReply::Kind::kPrediction;
  reply.id = 42;
  reply.prediction.label = -1;
  reply.prediction.decision_value = -0.12345678901234567;
  reply.prediction.cache_hit = true;
  reply.prediction.memo_hit = false;
  reply.prediction.latency_seconds = 3.5e-4;
  reply.error = "none really";
  reply.stats.requests = 9;
  reply.stats.circuits_simulated = 5;
  reply.stats.cache.hits = 4;
  reply.stats.memo.insertions = 2;
  reply.trace_id = 0x1122334455667788ull;  // wire v3 tail
  reply.spans = {
      {"gather_wait", 0, 1500, obs::SpanOrigin::kWorker},
      {"simulate", 1500, 2'000'000, obs::SpanOrigin::kWorker},
      {"", 2'001'500, 0, obs::SpanOrigin::kRouter},  // empty name survives
  };
  const ShardReply back = decode_reply(encode_reply(reply));
  EXPECT_EQ(back.kind, reply.kind);
  EXPECT_EQ(back.id, reply.id);
  EXPECT_EQ(back.trace_id, reply.trace_id);
  ASSERT_EQ(back.spans.size(), reply.spans.size());
  for (std::size_t i = 0; i < reply.spans.size(); ++i) {
    EXPECT_EQ(back.spans[i].name, reply.spans[i].name);
    EXPECT_EQ(back.spans[i].start_ns, reply.spans[i].start_ns);
    EXPECT_EQ(back.spans[i].duration_ns, reply.spans[i].duration_ns);
    EXPECT_EQ(back.spans[i].origin, reply.spans[i].origin);
  }
  EXPECT_EQ(back.prediction.label, reply.prediction.label);
  EXPECT_EQ(back.prediction.decision_value, reply.prediction.decision_value);
  EXPECT_EQ(back.prediction.cache_hit, reply.prediction.cache_hit);
  EXPECT_EQ(back.prediction.memo_hit, reply.prediction.memo_hit);
  EXPECT_EQ(back.prediction.latency_seconds, reply.prediction.latency_seconds);
  EXPECT_EQ(back.error, reply.error);
  EXPECT_EQ(back.stats.requests, reply.stats.requests);
  EXPECT_EQ(back.stats.circuits_simulated, reply.stats.circuits_simulated);
  EXPECT_EQ(back.stats.cache.hits, reply.stats.cache.hits);
  EXPECT_EQ(back.stats.memo.insertions, reply.stats.memo.insertions);
}

TEST(ShardWire, HandshakeRoundTrips) {
  ShardHello hello;
  hello.shard_index = 3;
  hello.num_features = 17;
  // v2 fields: the elastic engine pins these at respawn/add time, so
  // the round trip must be bitwise (the weight rides argv as a %.17g
  // decimal and must come back identical through the wire too).
  hello.weight = 0.30000000000000004;  // not representable shorter
  hello.generation = 0xDEADBEEFCAFEF00Dull;
  const ShardHello hback = decode_hello(encode_hello(hello));
  EXPECT_EQ(hback.wire_version, kShardWireVersion);
  EXPECT_EQ(hback.shard_index, 3u);
  EXPECT_EQ(hback.num_features, 17);
  EXPECT_EQ(hback.weight, hello.weight);
  EXPECT_EQ(hback.generation, hello.generation);

  ShardWelcome welcome;
  welcome.accepted = false;
  welcome.error = "wire version skew";
  const ShardWelcome wback = decode_welcome(encode_welcome(welcome));
  EXPECT_FALSE(wback.accepted);
  EXPECT_EQ(wback.error, "wire version skew");
}

TEST(ShardWire, HelloDefaultsMatchAnUnpinnedFleet) {
  const ShardHello back = decode_hello(encode_hello(ShardHello{}));
  EXPECT_EQ(back.weight, 1.0);
  EXPECT_EQ(back.generation, 0u);
}

TEST(ShardWire, TruncatedHelloThrows) {
  // The v2 fields widened the hello; every truncation point — including
  // a v1-length payload missing just weight/generation — must throw,
  // never silently default.
  const std::vector<std::uint8_t> hello = encode_hello(ShardHello{});
  for (std::size_t keep = 0; keep < hello.size(); ++keep) {
    const std::vector<std::uint8_t> cut(
        hello.begin(), hello.begin() + static_cast<long>(keep));
    EXPECT_THROW(decode_hello(cut), Error) << "hello cut at " << keep;
  }
}

// ---------------------------------------------------------------------
// Untrusted-input behaviour.

TEST(ShardWire, UnknownKindBytesThrow) {
  std::vector<std::uint8_t> env = encode_envelope(
      ShardEnvelope{ShardEnvelope::Kind::kRequest, 1, {1.0}});
  env[0] = 200;
  EXPECT_THROW(decode_envelope(env), Error);

  std::vector<std::uint8_t> rep = encode_reply(ShardReply{});
  rep[0] = 99;
  EXPECT_THROW(decode_reply(rep), Error);
}

TEST(ShardWire, TruncatedPayloadsThrowEverywhere) {
  // One cut per payload is special: exactly at the v2 boundary the bytes
  // ARE a complete v2 message, and the v3 decoder accepts it (back
  // compatibility, pinned by V3DecodersAcceptV2Payloads below). The v3
  // tails are 8 bytes (envelope trace_id) and 16 bytes (reply trace_id +
  // span count); every other truncation still throws.
  const std::vector<std::uint8_t> env = encode_envelope(
      ShardEnvelope{ShardEnvelope::Kind::kRequest, 1, {1.0, 2.0, 3.0}});
  const std::size_t env_v2_size = env.size() - 8;
  for (std::size_t keep = 0; keep < env.size(); ++keep) {
    const std::vector<std::uint8_t> cut(env.begin(),
                                        env.begin() + static_cast<long>(keep));
    if (keep == env_v2_size) {
      EXPECT_NO_THROW(decode_envelope(cut)) << "v2-shaped envelope";
      continue;
    }
    EXPECT_THROW(decode_envelope(cut), Error) << "envelope cut at " << keep;
  }
  const std::vector<std::uint8_t> rep = encode_reply(ShardReply{});
  const std::size_t rep_v2_size = rep.size() - 16;
  for (std::size_t keep = 0; keep < rep.size(); ++keep) {
    const std::vector<std::uint8_t> cut(rep.begin(),
                                        rep.begin() + static_cast<long>(keep));
    if (keep == rep_v2_size) {
      EXPECT_NO_THROW(decode_reply(cut)) << "v2-shaped reply";
      continue;
    }
    EXPECT_THROW(decode_reply(cut), Error) << "reply cut at " << keep;
  }
}

TEST(ShardWire, V3DecodersAcceptV2Payloads) {
  // A v2 peer's bytes are exactly our encoding minus the appended trace
  // tail. The v3 decoder must accept them, defaulting trace_id = 0
  // (untraced) and no spans — with every v2 field intact.
  ShardEnvelope envelope;
  envelope.kind = ShardEnvelope::Kind::kRequest;
  envelope.id = 31337;
  envelope.features = {0.25, -8.0};
  envelope.trace_id = 0x5555555555555555ull;
  std::vector<std::uint8_t> env = encode_envelope(envelope);
  env.resize(env.size() - 8);  // strip the v3 tail -> a v2 envelope
  const ShardEnvelope eback = decode_envelope(env);
  EXPECT_EQ(eback.kind, envelope.kind);
  EXPECT_EQ(eback.id, envelope.id);
  EXPECT_EQ(eback.features, envelope.features);
  EXPECT_EQ(eback.trace_id, 0u);

  ShardReply reply;
  reply.kind = ShardReply::Kind::kPrediction;
  reply.id = 31337;
  reply.prediction.label = 1;
  reply.prediction.decision_value = 0.75;
  reply.trace_id = 0x5555555555555555ull;
  reply.spans = {{"simulate", 0, 99, obs::SpanOrigin::kWorker}};
  std::vector<std::uint8_t> rep = encode_reply(reply);
  // The encoded span adds name-length prefix (8) + 8 name bytes + origin
  // (1) + start (8) + duration (8); the fixed tail is trace_id (8) +
  // count (8). Strip all of it to recover the v2 shape.
  rep.resize(rep.size() - (16 + 8 + 8 + 1 + 8 + 8));
  const ShardReply rback = decode_reply(rep);
  EXPECT_EQ(rback.kind, reply.kind);
  EXPECT_EQ(rback.id, reply.id);
  EXPECT_EQ(rback.prediction.label, reply.prediction.label);
  EXPECT_EQ(rback.prediction.decision_value, reply.prediction.decision_value);
  EXPECT_EQ(rback.trace_id, 0u);
  EXPECT_TRUE(rback.spans.empty());
}

TEST(ShardWire, HostileSpanCountCannotOverAllocate) {
  // A reply whose span-count word claims 2^56 spans must be rejected by
  // the byte budget before any allocation — the span guard mirrors the
  // feature-length guard below.
  ShardReply reply;
  reply.trace_id = 1;
  reply.spans = {{"x", 0, 0, obs::SpanOrigin::kWorker}};
  std::vector<std::uint8_t> rep = encode_reply(reply);
  // The count is the 8 bytes right after the 8-byte trace_id, which sit
  // right after the v2 body; the single span's encoding follows it.
  const std::size_t span_bytes = 8 + 1 + 1 + 8 + 8;  // len+name+origin+2*u64
  const std::size_t count_at = rep.size() - span_bytes - 8;
  const std::uint64_t huge = 1ull << 56;
  for (int b = 0; b < 8; ++b)
    rep[count_at + static_cast<std::size_t>(b)] =
        static_cast<std::uint8_t>((huge >> (8 * b)) & 0xFF);
  EXPECT_THROW(decode_reply(rep), Error);
}

TEST(ShardWire, HostileFeatureLengthCannotOverAllocate) {
  // Craft an envelope whose feature-vector length prefix claims 2^59
  // elements. The decoder's byte budget (the payload size) must reject
  // it before any allocation.
  std::vector<std::uint8_t> env = encode_envelope(
      ShardEnvelope{ShardEnvelope::Kind::kRequest, 1, {1.0}});
  // Layout: u8 kind | u64 id | i64 count | payload. Overwrite count.
  const std::uint64_t huge = 1ull << 59;
  for (int b = 0; b < 8; ++b)
    env[9 + static_cast<std::size_t>(b)] =
        static_cast<std::uint8_t>((huge >> (8 * b)) & 0xFF);
  EXPECT_THROW(decode_envelope(env), Error);
}

TEST(ShardWire, TrailingGarbageThrows) {
  std::vector<std::uint8_t> env = encode_envelope(
      ShardEnvelope{ShardEnvelope::Kind::kDrain, 0, {}});
  env.push_back(0xAB);
  EXPECT_THROW(decode_envelope(env), Error);

  std::vector<std::uint8_t> rep = encode_reply(ShardReply{});
  rep.push_back(0x01);
  EXPECT_THROW(decode_reply(rep), Error);
}

TEST(ShardWire, HandshakeMagicConfusionThrows) {
  // A hello decoded as a welcome (and vice versa) must fail on magic,
  // not misparse: the two payloads are deliberately not shape-compatible.
  EXPECT_THROW(decode_welcome(encode_hello(ShardHello{})), Error);
  EXPECT_THROW(decode_hello(encode_welcome(ShardWelcome{})), Error);
  EXPECT_THROW(decode_hello(encode_envelope(
                   ShardEnvelope{ShardEnvelope::Kind::kDrain, 0, {}})),
               Error);
}

TEST(ShardWire, ByteFuzzNeverCrashes) {
  // Single-byte corruption sweep over a request envelope: every outcome
  // is either a clean decode (some bytes are don't-care equivalent,
  // e.g. flips inside a double) or qkmps::Error. Never a crash or an
  // over-allocation.
  const std::vector<std::uint8_t> env = encode_envelope(
      ShardEnvelope{ShardEnvelope::Kind::kRequest, 77, {1.0, -2.0}});
  for (std::size_t pos = 0; pos < env.size(); ++pos) {
    for (const std::uint8_t flip : {0x01, 0x10, 0xFF}) {
      std::vector<std::uint8_t> corrupted = env;
      corrupted[pos] ^= flip;
      try {
        const ShardEnvelope decoded = decode_envelope(corrupted);
        // A surviving decode must at least be internally consistent.
        EXPECT_LE(decoded.features.size(), corrupted.size());
      } catch (const Error&) {
        // loud failure: the desired outcome for structural corruption
      }
    }
  }
}

}  // namespace
}  // namespace qkmps::serve
