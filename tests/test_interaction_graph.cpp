#include <gtest/gtest.h>

#include "circuit/interaction_graph.hpp"

#include "util/error.hpp"

namespace qkmps::circuit {
namespace {

TEST(InteractionGraph, ChainDistanceOneEdgeCount) {
  const auto g = InteractionGraph::linear_chain(10, 1);
  EXPECT_EQ(g.edges().size(), 9u);
  EXPECT_EQ(g.max_distance(), 1);
}

TEST(InteractionGraph, ChainDistanceDEdgeCount) {
  // sum_{k=1..d} (m - k) edges.
  const idx m = 12, d = 4;
  const auto g = InteractionGraph::linear_chain(m, d);
  idx expect = 0;
  for (idx k = 1; k <= d; ++k) expect += m - k;
  EXPECT_EQ(static_cast<idx>(g.edges().size()), expect);
  EXPECT_EQ(g.max_distance(), d);
}

TEST(InteractionGraph, DistanceZeroHasNoEdges) {
  const auto g = InteractionGraph::linear_chain(5, 0);
  EXPECT_TRUE(g.edges().empty());
  EXPECT_EQ(g.max_distance(), 0);
}

TEST(InteractionGraph, DistanceSaturatesAtChainLength) {
  // d >= m-1 gives the complete graph on the chain.
  const auto g = InteractionGraph::linear_chain(5, 10);
  EXPECT_EQ(g.edges().size(), 10u);  // C(5,2)
}

TEST(InteractionGraph, EdgesAreNormalizedLowHigh) {
  const InteractionGraph g(4, {{3, 1}, {2, 0}});
  for (const auto& [a, b] : g.edges()) EXPECT_LT(a, b);
}

TEST(InteractionGraph, EdgesOrderedByDistanceBlocks) {
  // Chain emission order: all distance-1 edges, then distance-2, etc.
  const auto g = InteractionGraph::linear_chain(6, 3);
  idx prev_dist = 1;
  for (const auto& [a, b] : g.edges()) {
    const idx dist = b - a;
    EXPECT_GE(dist, prev_dist);
    prev_dist = dist;
  }
}

TEST(InteractionGraph, RejectsSelfLoops) {
  EXPECT_THROW(InteractionGraph(3, {{1, 1}}), Error);
}

TEST(InteractionGraph, RejectsOutOfRange) {
  EXPECT_THROW(InteractionGraph(3, {{0, 3}}), Error);
}

}  // namespace
}  // namespace qkmps::circuit
