#include <gtest/gtest.h>

#include <cmath>

#include "kernel/gram.hpp"
#include "kernel/shot_kernel.hpp"
#include "test_helpers.hpp"

namespace qkmps::kernel {
namespace {

RealMatrix random_scaled_data(idx n, idx m, std::uint64_t seed) {
  Rng rng(seed);
  RealMatrix x(n, m);
  for (idx i = 0; i < n; ++i)
    for (idx j = 0; j < m; ++j) x(i, j) = rng.uniform(0.05, 1.95);
  return x;
}

ShotKernelConfig config(idx m, idx shots) {
  ShotKernelConfig cfg;
  cfg.base.ansatz = {.num_features = m, .layers = 2, .distance = 1, .gamma = 0.5};
  cfg.shots = shots;
  return cfg;
}

TEST(ShotEstimate, ExactZeroAndOne) {
  Rng rng(1);
  EXPECT_DOUBLE_EQ(shot_estimate(0.0, 100, rng), 0.0);
  EXPECT_DOUBLE_EQ(shot_estimate(1.0, 100, rng), 1.0);
}

TEST(ShotEstimate, UnbiasedWithinTolerance) {
  Rng rng(2);
  const double p = 0.37;
  double mean = 0.0;
  const int reps = 200;
  for (int r = 0; r < reps; ++r) mean += shot_estimate(p, 256, rng);
  mean /= reps;
  EXPECT_NEAR(mean, p, 0.01);
}

TEST(ShotEstimate, VarianceScalesInverselyWithShots) {
  Rng rng(3);
  const double p = 0.5;
  auto variance_at = [&](idx shots) {
    double s = 0.0, s2 = 0.0;
    const int reps = 300;
    for (int r = 0; r < reps; ++r) {
      const double e = shot_estimate(p, shots, rng);
      s += e;
      s2 += e * e;
    }
    const double mean = s / reps;
    return s2 / reps - mean * mean;
  };
  const double v64 = variance_at(64);
  const double v1024 = variance_at(1024);
  EXPECT_GT(v64, 4.0 * v1024);  // expect ~16x; allow slack
}

TEST(ShotEstimate, RejectsInvalidInputs) {
  Rng rng(4);
  EXPECT_THROW(shot_estimate(0.5, 0, rng), Error);
  EXPECT_THROW(shot_estimate(1.5, 10, rng), Error);
}

TEST(ShotGram, ConvergesToExactKernel) {
  const RealMatrix x = random_scaled_data(5, 4, 5);
  const RealMatrix exact = gram_matrix(config(4, 1).base, x);
  const RealMatrix estimated = shot_gram(config(4, 65536), x);
  EXPECT_LT(max_abs_diff(estimated, exact), 0.02);
}

TEST(ShotGram, DiagonalStaysExact) {
  const RealMatrix x = random_scaled_data(4, 4, 6);
  const RealMatrix k = shot_gram(config(4, 8), x);
  for (idx i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(k(i, i), 1.0);
}

TEST(ShotGram, SymmetricByConstruction) {
  const RealMatrix x = random_scaled_data(6, 4, 7);
  const RealMatrix k = shot_gram(config(4, 32), x);
  EXPECT_EQ(symmetry_defect(k), 0.0);
}

TEST(ShotGram, EntriesAreShotFractions) {
  const idx shots = 16;
  const RealMatrix x = random_scaled_data(5, 4, 8);
  const RealMatrix k = shot_gram(config(4, shots), x);
  for (idx i = 0; i < 5; ++i)
    for (idx j = i + 1; j < 5; ++j) {
      const double scaled = k(i, j) * static_cast<double>(shots);
      EXPECT_NEAR(scaled, std::round(scaled), 1e-9);
    }
}

TEST(ShotGram, SeedsAreReproducible) {
  const RealMatrix x = random_scaled_data(5, 4, 9);
  const RealMatrix a = shot_gram(config(4, 64), x);
  const RealMatrix b = shot_gram(config(4, 64), x);
  EXPECT_EQ(max_abs_diff(a, b), 0.0);
}

TEST(ShotCross, ShapeAndConvergence) {
  const RealMatrix xt = random_scaled_data(3, 4, 10);
  const RealMatrix xr = random_scaled_data(4, 4, 11);
  const RealMatrix exact = cross_kernel(config(4, 1).base, xt, xr);
  const RealMatrix est = shot_cross(config(4, 65536), xt, xr);
  EXPECT_EQ(est.rows(), 3);
  EXPECT_EQ(est.cols(), 4);
  EXPECT_LT(max_abs_diff(est, exact), 0.02);
}

}  // namespace
}  // namespace qkmps::kernel
