// Negative-compilation probe: writes a GUARDED_BY field without holding
// its mutex. Under clang with -Werror=thread-safety this file MUST fail
// to compile — that failure is the passing outcome of the harness in
// CMakeLists.txt. Under compilers where the annotation macros are no-ops
// (gcc) it compiles, and the harness asserts that instead, proving the
// macros degrade cleanly.
#include "util/sync.hpp"

namespace {

class Counter {
 public:
  void bump_unguarded() {
    ++value_;  // no lock held: the analysis must reject this
  }

 private:
  qkmps::util::Mutex mu_;
  int value_ QKMPS_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.bump_unguarded();
  return 0;
}
