// Positive control for the thread-safety negative-compilation test: the
// same guarded field as unguarded_access.cpp, accessed correctly under
// its lock. Must compile under every compiler — if this file fails, the
// harness is broken (bad include path, bad flags), not the analysis.
#include "util/sync.hpp"

namespace {

class Counter {
 public:
  void bump() {
    qkmps::util::MutexLock lock(mu_);
    ++value_;
  }

 private:
  qkmps::util::Mutex mu_;
  int value_ QKMPS_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.bump();
  return 0;
}
