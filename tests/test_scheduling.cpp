#include <gtest/gtest.h>

#include <set>

#include "circuit/interaction_graph.hpp"
#include "circuit/scheduling.hpp"

namespace qkmps::circuit {
namespace {

TEST(Scheduling, CoversEveryEdgeExactlyOnce) {
  const auto g = InteractionGraph::linear_chain(10, 3);
  const auto layers = schedule_commuting_layers(g.edges(), 10);
  std::multiset<std::pair<idx, idx>> scheduled;
  for (const auto& layer : layers)
    for (const auto& e : layer) scheduled.insert(e);
  std::multiset<std::pair<idx, idx>> expected(g.edges().begin(), g.edges().end());
  EXPECT_EQ(scheduled, expected);
}

TEST(Scheduling, LayersAreEndpointDisjoint) {
  const auto g = InteractionGraph::linear_chain(14, 4);
  const auto layers = schedule_commuting_layers(g.edges(), 14);
  for (const auto& layer : layers) {
    std::set<idx> used;
    for (const auto& [a, b] : layer) {
      EXPECT_TRUE(used.insert(a).second);
      EXPECT_TRUE(used.insert(b).second);
    }
  }
}

TEST(Scheduling, ChainAtDistanceDNeedsAtMost2dLayers) {
  // Footnote 3 of the paper: the exp(-i H_XX) subcircuit fits in 2d layers.
  for (idx d = 1; d <= 5; ++d) {
    const auto g = InteractionGraph::linear_chain(24, d);
    const auto layers = schedule_commuting_layers(g.edges(), 24);
    EXPECT_LE(static_cast<idx>(layers.size()), 2 * d) << "d=" << d;
  }
}

TEST(Scheduling, DistanceOneChainPacksInTwoLayers) {
  const auto g = InteractionGraph::linear_chain(9, 1);
  const auto layers = schedule_commuting_layers(g.edges(), 9);
  EXPECT_EQ(layers.size(), 2u);
}

TEST(Scheduling, EmptyEdgeSetYieldsNoLayers) {
  const auto layers = schedule_commuting_layers({}, 4);
  EXPECT_TRUE(layers.empty());
}

TEST(Scheduling, SingleEdge) {
  const auto layers = schedule_commuting_layers({{0, 3}}, 4);
  ASSERT_EQ(layers.size(), 1u);
  EXPECT_EQ(layers[0].size(), 1u);
}

}  // namespace
}  // namespace qkmps::circuit
