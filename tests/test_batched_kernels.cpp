/// Parity and thread-budget suite for the batched small-matrix kernel
/// layer (linalg/batched.hpp). The layer's contract is that backends and
/// batching are scheduling choices only: a batched pass must produce
/// results BITWISE identical to calling the per-matrix kernels one at a
/// time, for every backend, and the two ExecPolicy kernel flavours must
/// agree to the repo-wide 1e-10 parity tolerance. The sweep runs as a
/// metamorphic relation over the shape buckets the gate sweep produces
/// (tiny, square, tall, wide, rank-deficient, zero, single-row/column):
/// batch composition and order must never leak into any result.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <random>
#include <utility>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "linalg/batched.hpp"
#include "linalg/gemm.hpp"
#include "linalg/norms.hpp"
#include "linalg/policy.hpp"
#include "linalg/svd.hpp"
#include "mps/simulator.hpp"
#include "test_helpers.hpp"

namespace qkmps {
namespace {

using linalg::ExecPolicy;
using linalg::KernelArena;
using linalg::KernelBackend;
using linalg::KernelBatchConfig;
using linalg::Matrix;
using linalg::SvdResult;

bool bitwise_equal(const Matrix& x, const Matrix& y) {
  if (x.rows() != y.rows() || x.cols() != y.cols()) return false;
  const std::size_t n = static_cast<std::size_t>(x.rows() * x.cols());
  return std::memcmp(x.data(), y.data(), n * sizeof(cplx)) == 0;
}

bool bitwise_equal(const SvdResult& x, const SvdResult& y) {
  return x.s.size() == y.s.size() &&
         std::memcmp(x.s.data(), y.s.data(), x.s.size() * sizeof(double)) ==
             0 &&
         bitwise_equal(x.u, y.u) && bitwise_equal(x.vh, y.vh);
}

bool bitwise_equal(const mps::Mps& x, const mps::Mps& y) {
  if (x.num_sites() != y.num_sites() || x.center() != y.center())
    return false;
  for (idx i = 0; i < x.num_sites(); ++i) {
    const auto& sx = x.site(i);
    const auto& sy = y.site(i);
    if (sx.left != sy.left || sx.right != sy.right ||
        sx.a.size() != sy.a.size())
      return false;
    if (std::memcmp(sx.a.data(), sy.a.data(), sx.a.size() * sizeof(cplx)) !=
        0)
      return false;
  }
  return true;
}

/// One labelled matrix per metamorphic shape bucket, repeated `reps`
/// times with fresh random content, then shuffled so no bucket forms a
/// contiguous run in submission order (the pass re-buckets internally).
struct ShapeCase {
  const char* bucket;
  Matrix a;
};

std::vector<ShapeCase> svd_shape_sweep(Rng& rng, int reps) {
  std::vector<ShapeCase> cases;
  for (int r = 0; r < reps; ++r) {
    cases.push_back({"tiny", testing::random_matrix(2, 2, rng)});
    cases.push_back({"square", testing::random_matrix(8, 8, rng)});
    cases.push_back({"tall", testing::random_matrix(16, 4, rng)});
    cases.push_back({"wide", testing::random_matrix(4, 16, rng)});
    cases.push_back(
        {"rank-deficient",
         linalg::gemm_reference(testing::random_matrix(8, 2, rng),
                                testing::random_matrix(2, 8, rng))});
    cases.push_back({"zero", Matrix(6, 5)});
    cases.push_back({"one-col", testing::random_matrix(7, 1, rng)});
    cases.push_back({"one-row", testing::random_matrix(1, 7, rng)});
  }
  std::mt19937 order(12345);
  std::shuffle(cases.begin(), cases.end(), order);
  return cases;
}

/// Conformable (A, B) pairs over the same buckets for the gemm sweep. The
/// last pair crosses kParallelGemmThreshold so the accelerated flavour
/// actually forks a team inside the one-at-a-time reference run.
std::vector<std::pair<Matrix, Matrix>> gemm_shape_sweep(Rng& rng, int reps) {
  std::vector<std::pair<Matrix, Matrix>> cases;
  for (int r = 0; r < reps; ++r) {
    cases.emplace_back(testing::random_matrix(2, 3, rng),
                       testing::random_matrix(3, 2, rng));
    cases.emplace_back(testing::random_matrix(8, 8, rng),
                       testing::random_matrix(8, 8, rng));
    cases.emplace_back(testing::random_matrix(16, 4, rng),
                       testing::random_matrix(4, 6, rng));
    cases.emplace_back(testing::random_matrix(4, 16, rng),
                       testing::random_matrix(16, 3, rng));
    cases.emplace_back(Matrix(6, 5), Matrix(5, 4));
    cases.emplace_back(testing::random_matrix(7, 1, rng),
                       testing::random_matrix(1, 4, rng));
    cases.emplace_back(testing::random_matrix(1, 7, rng),
                       testing::random_matrix(7, 2, rng));
  }
  cases.emplace_back(testing::random_matrix(70, 70, rng),
                     testing::random_matrix(70, 70, rng));
  std::mt19937 order(54321);
  std::shuffle(cases.begin(), cases.end(), order);
  return cases;
}

class BatchedKernels
    : public ::testing::TestWithParam<std::pair<KernelBackend, ExecPolicy>> {
};

TEST_P(BatchedKernels, SvdBitwiseMatchesOneAtATime) {
  const auto [backend, policy] = GetParam();
  Rng rng(31);
  const std::vector<ShapeCase> cases = svd_shape_sweep(rng, 3);

  std::vector<SvdResult> expected;
  for (const ShapeCase& c : cases) expected.push_back(svd(c.a, policy));

  KernelBatchConfig cfg;
  cfg.backend = backend;
  cfg.policy = policy;
  cfg.thread_budget = 4;
  std::vector<SvdResult> got(cases.size());
  std::vector<linalg::SvdTask> tasks;
  for (std::size_t i = 0; i < cases.size(); ++i)
    tasks.push_back({&cases[i].a, &got[i]});
  linalg::batched_svd(tasks, cfg);

  for (std::size_t i = 0; i < cases.size(); ++i)
    EXPECT_TRUE(bitwise_equal(got[i], expected[i]))
        << "bucket=" << cases[i].bucket << " backend=" << to_string(backend)
        << " policy=" << to_string(policy);
}

TEST_P(BatchedKernels, GemmBitwiseMatchesOneAtATime) {
  const auto [backend, policy] = GetParam();
  Rng rng(32);
  const auto cases = gemm_shape_sweep(rng, 3);

  std::vector<Matrix> expected;
  for (const auto& [a, b] : cases)
    expected.push_back(linalg::gemm(a, b, policy));

  KernelBatchConfig cfg;
  cfg.backend = backend;
  cfg.policy = policy;
  cfg.thread_budget = 4;
  std::vector<Matrix> got(cases.size());
  std::vector<linalg::GemmTask> tasks;
  for (std::size_t i = 0; i < cases.size(); ++i)
    tasks.push_back({&cases[i].first, &cases[i].second, &got[i]});
  linalg::batched_gemm(tasks, cfg);

  for (std::size_t i = 0; i < cases.size(); ++i)
    EXPECT_TRUE(bitwise_equal(got[i], expected[i])) << "case " << i;
}

TEST_P(BatchedKernels, BatchCompositionIsPureScheduling) {
  // Metamorphic relation: the same matrix through a singleton batch, a
  // mixed batch, and a differently-ordered mixed batch must come out
  // bitwise identical every time.
  const auto [backend, policy] = GetParam();
  Rng rng(33);
  std::vector<ShapeCase> cases = svd_shape_sweep(rng, 2);

  KernelBatchConfig cfg;
  cfg.backend = backend;
  cfg.policy = policy;
  cfg.thread_budget = 4;

  std::vector<SvdResult> singleton(cases.size());
  for (std::size_t i = 0; i < cases.size(); ++i) {
    std::vector<linalg::SvdTask> one{{&cases[i].a, &singleton[i]}};
    linalg::batched_svd(one, cfg);
  }

  std::vector<SvdResult> mixed(cases.size());
  std::vector<linalg::SvdTask> tasks;
  for (std::size_t i = 0; i < cases.size(); ++i)
    tasks.push_back({&cases[i].a, &mixed[i]});
  linalg::batched_svd(tasks, cfg);

  std::vector<SvdResult> reversed(cases.size());
  std::vector<linalg::SvdTask> rev;
  for (std::size_t i = cases.size(); i-- > 0;)
    rev.push_back({&cases[i].a, &reversed[i]});
  linalg::batched_svd(rev, cfg);

  for (std::size_t i = 0; i < cases.size(); ++i) {
    EXPECT_TRUE(bitwise_equal(mixed[i], singleton[i]))
        << "bucket=" << cases[i].bucket;
    EXPECT_TRUE(bitwise_equal(mixed[i], reversed[i]))
        << "bucket=" << cases[i].bucket;
  }
}

TEST_P(BatchedKernels, ArenaReuseDoesNotChangeResults) {
  // A long-lived arena (the batched gate-sweep driver's usage pattern)
  // must be invisible: pass after pass through the same warm workspaces
  // stays bitwise stable.
  const auto [backend, policy] = GetParam();
  Rng rng(34);
  const std::vector<ShapeCase> cases = svd_shape_sweep(rng, 2);

  KernelBatchConfig cfg;
  cfg.backend = backend;
  cfg.policy = policy;
  cfg.thread_budget = 4;
  KernelArena arena;

  std::vector<SvdResult> first(cases.size());
  std::vector<linalg::SvdTask> tasks;
  for (std::size_t i = 0; i < cases.size(); ++i)
    tasks.push_back({&cases[i].a, &first[i]});
  linalg::batched_svd(tasks, cfg, &arena);

  for (int rep = 0; rep < 3; ++rep) {
    std::vector<SvdResult> again(cases.size());
    std::vector<linalg::SvdTask> t2;
    for (std::size_t i = 0; i < cases.size(); ++i)
      t2.push_back({&cases[i].a, &again[i]});
    linalg::batched_svd(t2, cfg, &arena);
    for (std::size_t i = 0; i < cases.size(); ++i)
      EXPECT_TRUE(bitwise_equal(again[i], first[i])) << "rep=" << rep;
  }
}

INSTANTIATE_TEST_SUITE_P(
    BackendPolicyGrid, BatchedKernels,
    ::testing::Values(
        std::make_pair(KernelBackend::kSerial, ExecPolicy::Reference),
        std::make_pair(KernelBackend::kSerial, ExecPolicy::Accelerated),
        std::make_pair(KernelBackend::kOpenMPBatched, ExecPolicy::Reference),
        std::make_pair(KernelBackend::kOpenMPBatched,
                       ExecPolicy::Accelerated)));

TEST(BatchedKernels, CrossPolicyAgreementWithinParityTolerance) {
  // The two kernel flavours are different arithmetic (blocked vs naive
  // loop order), so cross-policy agreement is the 1e-10 parity contract,
  // not bitwise.
  Rng rng(35);
  const std::vector<ShapeCase> cases = svd_shape_sweep(rng, 2);
  KernelBatchConfig ref, acc;
  ref.policy = ExecPolicy::Reference;
  acc.policy = ExecPolicy::Accelerated;

  std::vector<SvdResult> r(cases.size()), a(cases.size());
  std::vector<linalg::SvdTask> tr, ta;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    tr.push_back({&cases[i].a, &r[i]});
    ta.push_back({&cases[i].a, &a[i]});
  }
  linalg::batched_svd(tr, ref);
  linalg::batched_svd(ta, acc);
  for (std::size_t i = 0; i < cases.size(); ++i) {
    ASSERT_EQ(r[i].s.size(), a[i].s.size());
    for (std::size_t k = 0; k < r[i].s.size(); ++k)
      EXPECT_NEAR(r[i].s[k], a[i].s[k], 1e-10 * (r[i].s[0] + 1.0))
          << "bucket=" << cases[i].bucket;
    EXPECT_LT(max_abs_diff(testing::reconstruct(r[i]),
                           testing::reconstruct(a[i])),
              1e-10 * (r[i].s[0] + 1.0))
        << "bucket=" << cases[i].bucket;
  }
}

TEST(BatchedKernels, SimulateBatchBitwiseMatchesSimulate) {
  // The lockstep batched driver against one-circuit-at-a-time simulate():
  // states, truncation stats, and gate counts must be bitwise identical —
  // the end-to-end version of the scheduling-only contract, for both
  // kernel policies and both batch backends.
  Rng rng(36);
  std::vector<circuit::Circuit> circuits;
  for (int i = 0; i < 5; ++i)
    circuits.push_back(testing::random_circuit(6, 24, rng));

  for (const ExecPolicy policy :
       {ExecPolicy::Reference, ExecPolicy::Accelerated}) {
    mps::SimulatorConfig scfg;
    scfg.policy = policy;
    scfg.track_memory = true;
    const mps::MpsSimulator sim(scfg);

    std::vector<mps::SimulationResult> solo;
    for (const auto& c : circuits) solo.push_back(sim.simulate(c));

    for (const KernelBackend backend :
         {KernelBackend::kSerial, KernelBackend::kOpenMPBatched}) {
      KernelBatchConfig kc;
      kc.backend = backend;
      kc.thread_budget = 2;
      const auto batch = sim.simulate_batch(circuits, kc);
      ASSERT_EQ(batch.size(), circuits.size());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        EXPECT_TRUE(bitwise_equal(batch[i].state, solo[i].state))
            << "circuit " << i << " backend=" << to_string(backend);
        EXPECT_EQ(batch[i].gates_applied, solo[i].gates_applied);
        EXPECT_EQ(batch[i].truncation.total_discarded_weight,
                  solo[i].truncation.total_discarded_weight);
        EXPECT_EQ(batch[i].truncation.truncation_count,
                  solo[i].truncation.truncation_count);
        EXPECT_EQ(batch[i].truncation.max_bond_seen,
                  solo[i].truncation.max_bond_seen);
      }
    }
  }
}

TEST(BatchedKernels, BackendNames) {
  EXPECT_EQ(to_string(KernelBackend::kSerial), "serial");
  EXPECT_EQ(to_string(KernelBackend::kOpenMPBatched), "omp-batched");
}

#ifdef _OPENMP

TEST(ThreadBudget, KernelThreadScopeClampsTeamWidth) {
  // The oversubscription regression gate. An accelerated gemm above the
  // parallel threshold forks a full team; the omp-for barrier keeps every
  // member inside the probed region until all arrive, so the observed
  // peak equals the team width deterministically. A scope of 1 must pin
  // the same call to a single thread — and must not change the bits.
  omp_set_dynamic(0);
  const int saved = omp_get_max_threads();
  omp_set_num_threads(4);
  Rng rng(41);
  const Matrix a = testing::random_matrix(70, 70, rng);
  const Matrix b = testing::random_matrix(70, 70, rng);

  linalg::kernel_probe_reset();
  const Matrix wide_team = linalg::gemm(a, b, ExecPolicy::Accelerated);
  EXPECT_EQ(linalg::kernel_probe_peak(), 4);

  {
    linalg::KernelThreadScope scope(1);
    EXPECT_EQ(linalg::KernelThreadScope::current(), 1);
    linalg::kernel_probe_reset();
    const Matrix pinned = linalg::gemm(a, b, ExecPolicy::Accelerated);
    EXPECT_EQ(linalg::kernel_probe_peak(), 1);
    EXPECT_TRUE(bitwise_equal(pinned, wide_team));
  }
  EXPECT_EQ(linalg::KernelThreadScope::current(), 0);
  omp_set_num_threads(saved);
}

TEST(ThreadBudget, ScopesNestAndRestore) {
  linalg::KernelThreadScope outer(3);
  EXPECT_EQ(linalg::KernelThreadScope::current(), 3);
  {
    linalg::KernelThreadScope inner(1);
    EXPECT_EQ(linalg::KernelThreadScope::current(), 1);
  }
  EXPECT_EQ(linalg::KernelThreadScope::current(), 3);
}

TEST(ThreadBudget, BatchedPassHonorsThreadBudget) {
  // The pass team is min(thread_budget, omp max threads); the per-worker
  // probe guards plus the omp-for barrier make the peak exact.
  omp_set_dynamic(0);
  const int saved = omp_get_max_threads();
  omp_set_num_threads(4);
  Rng rng(42);
  const std::vector<ShapeCase> cases = svd_shape_sweep(rng, 2);
  std::vector<SvdResult> out(cases.size());
  std::vector<linalg::SvdTask> tasks;
  for (std::size_t i = 0; i < cases.size(); ++i)
    tasks.push_back({&cases[i].a, &out[i]});

  KernelBatchConfig cfg;
  cfg.backend = KernelBackend::kOpenMPBatched;

  cfg.thread_budget = 3;
  linalg::kernel_probe_reset();
  linalg::batched_svd(tasks, cfg);
  EXPECT_EQ(linalg::kernel_probe_peak(), 3);

  cfg.thread_budget = 8;  // clamped by the OpenMP max
  linalg::kernel_probe_reset();
  linalg::batched_svd(tasks, cfg);
  EXPECT_EQ(linalg::kernel_probe_peak(), 4);

  cfg.thread_budget = 0;  // <= 0 means 1
  linalg::kernel_probe_reset();
  linalg::batched_svd(tasks, cfg);
  EXPECT_EQ(linalg::kernel_probe_peak(), 1);

  omp_set_num_threads(saved);
}

#endif  // _OPENMP

}  // namespace
}  // namespace qkmps
