#include <gtest/gtest.h>

#include <tuple>

#include "linalg/gemm.hpp"
#include "linalg/norms.hpp"
#include "test_helpers.hpp"

namespace qkmps::linalg {
namespace {

Matrix naive_mul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (idx i = 0; i < a.rows(); ++i)
    for (idx j = 0; j < b.cols(); ++j) {
      cplx acc = 0.0;
      for (idx k = 0; k < a.cols(); ++k) acc += a(i, k) * b(k, j);
      c(i, j) = acc;
    }
  return c;
}

TEST(Gemm, IdentityIsNeutral) {
  Rng rng(1);
  const Matrix a = testing::random_matrix(6, 6, rng);
  const Matrix r = gemm(a, Matrix::identity(6), ExecPolicy::Reference);
  EXPECT_LT(max_abs_diff(r, a), 1e-14);
}

TEST(Gemm, DimensionMismatchThrows) {
  Matrix a(2, 3), b(4, 2);
  EXPECT_THROW(gemm(a, b, ExecPolicy::Reference), Error);
}

TEST(Gemm, ConjTransposeOperands) {
  Rng rng(2);
  const Matrix a = testing::random_matrix(5, 3, rng);
  const Matrix b = testing::random_matrix(5, 4, rng);
  // A^H B via op flag must match the explicit adjoint.
  const Matrix r1 = gemm(a, b, ExecPolicy::Reference, Op::ConjT, Op::None);
  const Matrix r2 = naive_mul(a.adjoint(), b);
  EXPECT_LT(max_abs_diff(r1, r2), 1e-13);
}

TEST(Gemm, BothOpsConjTranspose) {
  Rng rng(3);
  const Matrix a = testing::random_matrix(4, 6, rng);
  const Matrix b = testing::random_matrix(5, 4, rng);
  const Matrix r1 = gemm(a, b, ExecPolicy::Accelerated, Op::ConjT, Op::ConjT);
  const Matrix r2 = naive_mul(a.adjoint(), b.adjoint());
  EXPECT_LT(max_abs_diff(r1, r2), 1e-13);
}

TEST(Gemv, MatchesGemm) {
  Rng rng(4);
  const Matrix a = testing::random_matrix(7, 5, rng);
  const Matrix x = testing::random_matrix(5, 1, rng);
  EXPECT_LT(max_abs_diff(gemv(a, x), naive_mul(a, x)), 1e-13);
}

/// Parameterized agreement sweep: all kernels must agree with the naive
/// triple loop over a representative grid of shapes, including the
/// parallel-dispatch threshold region.
class GemmShapes : public ::testing::TestWithParam<std::tuple<idx, idx, idx>> {};

TEST_P(GemmShapes, AllKernelsAgree) {
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 1000003 + k * 1009 + n));
  const Matrix a = testing::random_matrix(m, k, rng);
  const Matrix b = testing::random_matrix(k, n, rng);
  const Matrix expect = naive_mul(a, b);

  const double scale = frobenius_norm(expect) + 1.0;
  EXPECT_LT(max_abs_diff(gemm_reference(a, b), expect) / scale, 1e-13);
  EXPECT_LT(max_abs_diff(gemm_blocked(a, b, false), expect) / scale, 1e-13);
  EXPECT_LT(max_abs_diff(gemm_blocked(a, b, true), expect) / scale, 1e-13);
  EXPECT_LT(max_abs_diff(gemm(a, b, ExecPolicy::Reference), expect) / scale, 1e-13);
  EXPECT_LT(max_abs_diff(gemm(a, b, ExecPolicy::Accelerated), expect) / scale, 1e-13);
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, GemmShapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 8, 1),
                      std::make_tuple(2, 3, 5), std::make_tuple(16, 16, 16),
                      std::make_tuple(48, 48, 48), std::make_tuple(49, 31, 57),
                      std::make_tuple(96, 17, 128), std::make_tuple(130, 130, 130),
                      std::make_tuple(7, 200, 3)));

}  // namespace
}  // namespace qkmps::linalg
