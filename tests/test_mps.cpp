#include <gtest/gtest.h>

#include <cmath>

#include "mps/mps.hpp"
#include "test_helpers.hpp"

namespace qkmps::mps {
namespace {

TEST(Mps, ZeroStateAmplitudes) {
  const Mps psi(3);
  const auto v = psi.to_statevector();
  EXPECT_EQ(v[0], cplx(1.0));
  for (std::size_t i = 1; i < 8; ++i) EXPECT_EQ(v[i], cplx(0.0));
}

TEST(Mps, PlusStateIsUniform) {
  const Mps psi = Mps::plus_state(4);
  const auto v = psi.to_statevector();
  const double amp = 1.0 / 4.0;  // (1/sqrt 2)^4
  for (const auto& a : v) EXPECT_NEAR(std::abs(a - cplx(amp)), 0.0, 1e-15);
}

TEST(Mps, ProductStateFromAmplitudes) {
  const double h = 1.0 / std::sqrt(2.0);
  const Mps psi = Mps::product_state({{cplx(h), cplx(0.0, h)}, {cplx(1.0), cplx(0.0)}});
  const auto v = psi.to_statevector();
  EXPECT_NEAR(std::abs(v[0] - cplx(h)), 0.0, 1e-15);          // |00>
  EXPECT_NEAR(std::abs(v[2] - cplx(0.0, h)), 0.0, 1e-15);     // |10>
  EXPECT_NEAR(std::abs(v[1]), 0.0, 1e-15);
}

TEST(Mps, ProductStateBondsAreOne) {
  const Mps psi = Mps::plus_state(6);
  EXPECT_EQ(psi.max_bond(), 1);
  for (idx b : psi.bonds()) EXPECT_EQ(b, 1);
}

TEST(Mps, NormOfPreparedStates) {
  EXPECT_NEAR(Mps(5).norm(), 1.0, 1e-14);
  EXPECT_NEAR(Mps::plus_state(5).norm(), 1.0, 1e-14);
}

TEST(Mps, MemoryBytesOfProductState) {
  // m sites x (1 x 2 x 1) complex doubles.
  const Mps psi = Mps::plus_state(10);
  EXPECT_EQ(psi.memory_bytes(), 10u * 2u * sizeof(cplx));
}

TEST(Mps, NormalizeScalesCenterSite) {
  Mps psi = Mps::plus_state(3);
  // Double the center site: norm becomes 2.
  for (auto& v : psi.site(psi.center()).a) v *= 2.0;
  EXPECT_NEAR(psi.norm(), 2.0, 1e-13);
  psi.normalize();
  EXPECT_NEAR(psi.norm(), 1.0, 1e-13);
}

TEST(SiteTensor, MatricizationRoundTrip) {
  Rng rng(1);
  SiteTensor t(3, 4);
  for (auto& v : t.a) v = rng.normal_cplx();
  const SiteTensor back_l = SiteTensor::from_left_matrix(t.as_left_matrix(), 3);
  const SiteTensor back_r = SiteTensor::from_right_matrix(t.as_right_matrix(), 4);
  for (std::size_t i = 0; i < t.a.size(); ++i) {
    EXPECT_EQ(back_l.a[i], t.a[i]);
    EXPECT_EQ(back_r.a[i], t.a[i]);
  }
}

TEST(SiteTensor, IndexingIsRowMajor) {
  SiteTensor t(2, 3);
  t.at(1, 0, 2) = cplx(7.0);
  EXPECT_EQ(t.a[(1 * 2 + 0) * 3 + 2], cplx(7.0));
}

TEST(Mps, ToStatevectorGuardsLargeSystems) {
  const Mps psi(23 > 22 ? 23 : 23);
  EXPECT_THROW(psi.to_statevector(), Error);
}

}  // namespace
}  // namespace qkmps::mps
