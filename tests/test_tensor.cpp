#include <gtest/gtest.h>

#include "tensor/permute.hpp"
#include "tensor/tensor.hpp"
#include "test_helpers.hpp"

namespace qkmps::tensor {
namespace {

Tensor random_tensor(std::vector<idx> shape, Rng& rng) {
  Tensor t(std::move(shape));
  for (idx k = 0; k < t.size(); ++k) t[k] = rng.normal_cplx();
  return t;
}

TEST(Tensor, ShapeAndSize) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.rank(), 3);
  EXPECT_EQ(t.size(), 24);
  EXPECT_EQ(t.extent(1), 3);
}

TEST(Tensor, RowMajorFlatten) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.flatten({0, 0, 0}), 0);
  EXPECT_EQ(t.flatten({0, 0, 1}), 1);
  EXPECT_EQ(t.flatten({0, 1, 0}), 4);
  EXPECT_EQ(t.flatten({1, 0, 0}), 12);
  EXPECT_EQ(t.flatten({1, 2, 3}), 23);
}

TEST(Tensor, FlattenRejectsOutOfRange) {
  Tensor t({2, 2});
  EXPECT_THROW(t.flatten({2, 0}), Error);
}

TEST(Tensor, MultiIndexAccess) {
  Tensor t({2, 2});
  t(1, 0) = cplx(3.0, 1.0);
  EXPECT_EQ(t[2], cplx(3.0, 1.0));
}

TEST(Tensor, ReshapePreservesFlatOrder) {
  Rng rng(1);
  const Tensor t = random_tensor({2, 6}, rng);
  const Tensor r = t.reshaped({3, 4});
  for (idx k = 0; k < t.size(); ++k) EXPECT_EQ(t[k], r[k]);
}

TEST(Tensor, ReshapeRejectsWrongSize) {
  Tensor t({2, 3});
  EXPECT_THROW(t.reshaped({4, 2}), Error);
}

TEST(Tensor, AsMatrixGroupsLeadingAxes) {
  Rng rng(2);
  const Tensor t = random_tensor({2, 3, 5}, rng);
  const linalg::Matrix m = t.as_matrix(2);
  EXPECT_EQ(m.rows(), 6);
  EXPECT_EQ(m.cols(), 5);
  EXPECT_EQ(m(1 * 3 + 2, 4), t(1, 2, 4));
}

TEST(Tensor, FromMatrixRoundTrip) {
  Rng rng(3);
  const Tensor t = random_tensor({4, 3, 2}, rng);
  const Tensor back = Tensor::from_matrix(t.as_matrix(1), {4, 3, 2});
  EXPECT_EQ(max_abs_diff(t, back), 0.0);
}

TEST(Tensor, ConjNegatesImaginary) {
  Tensor t({1, 1});
  t[0] = cplx(1.0, 2.0);
  EXPECT_EQ(t.conj()[0], cplx(1.0, -2.0));
}

TEST(Permute, IdentityPermutation) {
  Rng rng(4);
  const Tensor t = random_tensor({3, 4, 2}, rng);
  EXPECT_EQ(max_abs_diff(permuted(t, {0, 1, 2}), t), 0.0);
}

TEST(Permute, TransposeMatrixCase) {
  Rng rng(5);
  const Tensor t = random_tensor({3, 5}, rng);
  const Tensor p = permuted(t, {1, 0});
  EXPECT_EQ(p.extent(0), 5);
  for (idx i = 0; i < 3; ++i)
    for (idx j = 0; j < 5; ++j) EXPECT_EQ(p(j, i), t(i, j));
}

TEST(Permute, ThreeAxisRotation) {
  Rng rng(6);
  const Tensor t = random_tensor({2, 3, 4}, rng);
  const Tensor p = permuted(t, {2, 0, 1});
  EXPECT_EQ(p.shape(), (std::vector<idx>{4, 2, 3}));
  for (idx a = 0; a < 2; ++a)
    for (idx b = 0; b < 3; ++b)
      for (idx c = 0; c < 4; ++c) EXPECT_EQ(p(c, a, b), t(a, b, c));
}

TEST(Permute, InversePermutationRestores) {
  Rng rng(7);
  const Tensor t = random_tensor({2, 3, 4, 5}, rng);
  const Tensor p = permuted(t, {3, 1, 0, 2});
  // inverse of {3,1,0,2} is {2,1,3,0}
  const Tensor back = permuted(p, {2, 1, 3, 0});
  EXPECT_EQ(max_abs_diff(back, t), 0.0);
}

TEST(Permute, RejectsInvalidPermutation) {
  Tensor t({2, 2});
  EXPECT_THROW(permuted(t, {0, 0}), Error);
  EXPECT_THROW(permuted(t, {0}), Error);
}

}  // namespace
}  // namespace qkmps::tensor
