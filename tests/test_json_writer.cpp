#include <gtest/gtest.h>

#include <sstream>

#include "util/json_writer.hpp"

namespace qkmps {
namespace {

TEST(JsonWriter, EmptyObject) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.end_object();
  EXPECT_EQ(os.str(), "{\n}");
}

TEST(JsonWriter, ScalarFields) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.field("name", "fig5");
  w.field("qubits", 100);
  w.field("gamma", 1.0);
  w.field("gpu", true);
  w.end_object();
  const std::string s = os.str();
  EXPECT_NE(s.find("\"name\": \"fig5\""), std::string::npos);
  EXPECT_NE(s.find("\"qubits\": 100"), std::string::npos);
  EXPECT_NE(s.find("\"gpu\": true"), std::string::npos);
}

TEST(JsonWriter, EscapesSpecialCharacters) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.field("s", "a\"b\\c\nd");
  w.end_object();
  EXPECT_NE(os.str().find("a\\\"b\\\\c\\nd"), std::string::npos);
}

TEST(JsonWriter, NumericArray) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.field("xs", std::vector<double>{1.0, 2.5});
  w.end_object();
  const std::string s = os.str();
  EXPECT_NE(s.find("\"xs\": ["), std::string::npos);
  EXPECT_NE(s.find("2.5"), std::string::npos);
}

TEST(JsonWriter, NestedObjectsAndArrays) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.begin_array("runs");
  w.begin_array_object();
  w.field("d", 6);
  w.end_object();
  w.begin_array_object();
  w.field("d", 12);
  w.end_object();
  w.end_array();
  w.end_object();
  const std::string s = os.str();
  EXPECT_NE(s.find("\"runs\": ["), std::string::npos);
  EXPECT_NE(s.find("\"d\": 12"), std::string::npos);
}

TEST(JsonWriter, NonFiniteBecomesNull) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.field("bad", std::numeric_limits<double>::infinity());
  w.end_object();
  EXPECT_NE(os.str().find("\"bad\": null"), std::string::npos);
}

}  // namespace
}  // namespace qkmps
