#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "data/elliptic_synthetic.hpp"
#include "serve/workload.hpp"

namespace qkmps::serve::workload {
namespace {

kernel::RealMatrix small_pool(idx rows = 64, idx cols = 5) {
  data::EllipticSyntheticParams gen;
  gen.num_points = rows;
  gen.num_features = cols;
  return data::generate_elliptic_synthetic(gen).x;
}

std::vector<idx> counts(const Scenario& s) {
  std::vector<idx> c(static_cast<std::size_t>(s.config.num_unique), 0);
  for (idx row : s.order) ++c[static_cast<std::size_t>(row)];
  return c;
}

TEST(Workload, SameSeedReplaysByteForByte) {
  const auto pool = small_pool();
  for (const ScenarioConfig& cfg : standard_scenarios(200, 24, 11)) {
    const Scenario a = make_scenario(cfg, pool);
    const Scenario b = make_scenario(cfg, pool);
    ASSERT_EQ(a.order, b.order) << cfg.name;
    ASSERT_EQ(a.arrival_us, b.arrival_us) << cfg.name;
    for (idx i = 0; i < a.unique_points.rows(); ++i)
      for (idx j = 0; j < a.unique_points.cols(); ++j)
        ASSERT_EQ(a.unique_points(i, j), b.unique_points(i, j)) << cfg.name;
    EXPECT_EQ(scenario_digest(a), scenario_digest(b)) << cfg.name;
  }
}

TEST(Workload, DifferentSeedsDiverge) {
  const auto pool = small_pool();
  ScenarioConfig cfg;
  cfg.num_requests = 100;
  cfg.num_unique = 16;
  cfg.seed = 1;
  const Scenario a = make_scenario(cfg, pool);
  cfg.seed = 2;
  const Scenario b = make_scenario(cfg, pool);
  EXPECT_NE(scenario_digest(a), scenario_digest(b));
}

TEST(Workload, DigestIsSensitiveToOrder) {
  const auto pool = small_pool();
  ScenarioConfig cfg;
  cfg.num_requests = 50;
  cfg.num_unique = 8;
  Scenario s = make_scenario(cfg, pool);
  const std::uint64_t before = scenario_digest(s);
  std::swap(s.order.front(), s.order.back());
  if (s.order.front() != s.order.back())
    EXPECT_NE(scenario_digest(s), before);
}

TEST(Workload, UniquePointsAreDistinctPoolRows) {
  const auto pool = small_pool(32, 4);
  ScenarioConfig cfg;
  cfg.num_unique = 16;
  cfg.num_requests = 64;
  const Scenario s = make_scenario(cfg, pool);
  ASSERT_EQ(s.unique_points.rows(), 16);
  std::set<std::vector<double>> seen;
  for (idx i = 0; i < s.unique_points.rows(); ++i)
    seen.insert(std::vector<double>(s.unique_points.row(i),
                                    s.unique_points.row(i) + 4));
  EXPECT_EQ(seen.size(), 16u);  // sampled without replacement
  for (idx row : s.order) {
    EXPECT_GE(row, 0);
    EXPECT_LT(row, 16);
  }
}

TEST(Workload, ZipfConcentratesOnHotKeys) {
  const auto pool = small_pool();
  ScenarioConfig cfg;
  cfg.num_requests = 2000;
  cfg.num_unique = 32;
  cfg.keys = KeyPattern::kZipf;
  cfg.zipf_exponent = 1.2;
  const Scenario s = make_scenario(cfg, pool);
  auto c = counts(s);
  const idx hottest = *std::max_element(c.begin(), c.end());
  // Uniform expectation is ~62 per key; a Zipf(1.2) head is several times
  // hotter. Rank 0 must be the (deterministic) mode of the stream.
  EXPECT_GT(hottest, 3 * (cfg.num_requests / cfg.num_unique));
  EXPECT_EQ(c[0], hottest);
}

TEST(Workload, DuplicateHeavyProducesRuns) {
  const auto pool = small_pool();
  ScenarioConfig cfg;
  cfg.num_requests = 1000;
  cfg.num_unique = 32;
  cfg.keys = KeyPattern::kDuplicateHeavy;
  cfg.repeat_fraction = 0.6;
  const Scenario s = make_scenario(cfg, pool);
  idx repeats = 0;
  for (idx r = 1; r < s.size(); ++r)
    if (s.order[static_cast<std::size_t>(r)] ==
        s.order[static_cast<std::size_t>(r - 1)])
      ++repeats;
  // ~60% of arrivals repeat the previous key (plus accidental uniform
  // repeats); well above anything a uniform stream produces.
  EXPECT_GT(repeats, s.size() / 2);
}

TEST(Workload, BurstArrivalsGroupAndAreMonotone) {
  const auto pool = small_pool();
  ScenarioConfig cfg;
  cfg.num_requests = 64;
  cfg.num_unique = 8;
  cfg.arrival = ArrivalPattern::kBurst;
  cfg.burst_size = 16;
  cfg.burst_gap_us = 500;
  const Scenario s = make_scenario(cfg, pool);
  for (idx r = 1; r < s.size(); ++r)
    EXPECT_LE(s.arrival_us[static_cast<std::size_t>(r - 1)],
              s.arrival_us[static_cast<std::size_t>(r)]);
  // All 16 requests of a burst share one arrival offset.
  EXPECT_EQ(s.arrival_us[0], s.arrival_us[15]);
  EXPECT_EQ(s.arrival_us[16], 500.0);
  EXPECT_EQ(s.arrival_us[63], 3 * 500.0);
}

TEST(Workload, RampShrinksInterArrivalGaps) {
  const auto pool = small_pool();
  ScenarioConfig cfg;
  cfg.num_requests = 100;
  cfg.num_unique = 8;
  cfg.arrival = ArrivalPattern::kRamp;
  cfg.mean_gap_us = 100;
  cfg.ramp_factor = 4.0;
  const Scenario s = make_scenario(cfg, pool);
  const double first_gap = s.arrival_us[1] - s.arrival_us[0];
  const double last_gap = s.arrival_us[99] - s.arrival_us[98];
  EXPECT_NEAR(first_gap, 100.0, 2.0);
  EXPECT_LT(last_gap, first_gap / 2.0);  // ramped up well past 2x the rate
  for (idx r = 2; r < s.size(); ++r) {
    const double prev = s.arrival_us[static_cast<std::size_t>(r - 1)] -
                        s.arrival_us[static_cast<std::size_t>(r - 2)];
    const double cur = s.arrival_us[static_cast<std::size_t>(r)] -
                       s.arrival_us[static_cast<std::size_t>(r - 1)];
    EXPECT_LE(cur, prev + 1e-9);
  }
}

TEST(Workload, StandardScenariosAreDistinct) {
  const auto pool = small_pool();
  const auto suite = standard_scenarios(128, 16, 3);
  ASSERT_EQ(suite.size(), 5u);
  std::set<std::string> names;
  std::set<std::uint64_t> digests;
  for (const ScenarioConfig& cfg : suite) {
    names.insert(cfg.name);
    digests.insert(scenario_digest(make_scenario(cfg, pool)));
  }
  EXPECT_EQ(names.size(), suite.size());
  EXPECT_EQ(digests.size(), suite.size());
}

TEST(WorkloadStream, ReplaysEveryStandardScenarioByteForByte) {
  // The pull-based Stream must be indistinguishable from the eager
  // generator: same order, same arrival offsets, same unique points,
  // same digest — for every standard scenario shape.
  const auto pool = small_pool();
  for (const ScenarioConfig& cfg : standard_scenarios(200, 24, 11)) {
    const Scenario eager = make_scenario(cfg, pool);
    Stream stream(cfg, pool);
    ASSERT_EQ(stream.size(), eager.size()) << cfg.name;
    for (idx i = 0; i < eager.unique_points.rows(); ++i)
      for (idx j = 0; j < eager.unique_points.cols(); ++j)
        ASSERT_EQ(stream.unique_points()(i, j), eager.unique_points(i, j))
            << cfg.name;
    Stream::Item item;
    for (idx r = 0; r < eager.size(); ++r) {
      ASSERT_TRUE(stream.next(item)) << cfg.name << " ended early at " << r;
      ASSERT_EQ(item.request, r) << cfg.name;
      ASSERT_EQ(item.unique, eager.order[static_cast<std::size_t>(r)])
          << cfg.name << " order diverged at request " << r;
      ASSERT_EQ(item.arrival_us,
                eager.arrival_us[static_cast<std::size_t>(r)])
          << cfg.name << " arrival diverged at request " << r;
    }
    EXPECT_FALSE(stream.next(item)) << cfg.name;
    EXPECT_TRUE(stream.exhausted()) << cfg.name;
    EXPECT_EQ(stream.digest(), scenario_digest(eager)) << cfg.name;
  }
}

TEST(WorkloadStream, DigestRequiresExhaustion) {
  const auto pool = small_pool();
  ScenarioConfig cfg;
  cfg.num_requests = 32;
  cfg.num_unique = 8;
  Stream stream(cfg, pool);
  EXPECT_THROW(stream.digest(), Error);  // nothing consumed yet
  Stream::Item item;
  while (stream.next(item)) {
  }
  EXPECT_NO_THROW(stream.digest());
}

TEST(WorkloadStream, RequestRowsMatchEagerScenario) {
  const auto pool = small_pool(32, 4);
  ScenarioConfig cfg;
  cfg.num_requests = 48;
  cfg.num_unique = 12;
  cfg.keys = KeyPattern::kZipf;
  const Scenario eager = make_scenario(cfg, pool);
  Stream stream(cfg, pool);
  Stream::Item item;
  while (stream.next(item))
    EXPECT_EQ(stream.request(item.unique), eager.request(item.request));
}

TEST(WorkloadStream, EagerGeneratorIsAThinWrapper) {
  // make_scenario now drains a Stream; a fresh Stream and a fresh eager
  // scenario must stay interchangeable run to run (the digest pins it).
  const auto pool = small_pool();
  ScenarioConfig cfg;
  cfg.num_requests = 500;
  cfg.num_unique = 16;
  cfg.keys = KeyPattern::kDuplicateHeavy;
  cfg.arrival = ArrivalPattern::kRamp;
  const std::uint64_t eager_digest = scenario_digest(make_scenario(cfg, pool));
  Stream stream(cfg, pool);
  Stream::Item item;
  while (stream.next(item)) {
  }
  EXPECT_EQ(stream.digest(), eager_digest);
}

TEST(Workload, RejectsImpossibleConfigs) {
  const auto pool = small_pool(8, 3);
  ScenarioConfig cfg;
  cfg.num_unique = 16;  // more uniques than pool rows
  EXPECT_THROW(make_scenario(cfg, pool), Error);
  cfg.num_unique = 4;
  cfg.num_requests = 0;
  EXPECT_THROW(make_scenario(cfg, pool), Error);
}

}  // namespace
}  // namespace qkmps::serve::workload
