#include <gtest/gtest.h>

#include "kernel/distributed_gram.hpp"
#include "test_helpers.hpp"

namespace qkmps::kernel {
namespace {

RealMatrix random_scaled_data(idx n, idx m, std::uint64_t seed) {
  Rng rng(seed);
  RealMatrix x(n, m);
  for (idx i = 0; i < n; ++i)
    for (idx j = 0; j < m; ++j) x(i, j) = rng.uniform(0.05, 1.95);
  return x;
}

QuantumKernelConfig cfg4() {
  QuantumKernelConfig cfg;
  cfg.ansatz = {.num_features = 4, .layers = 2, .distance = 1, .gamma = 0.7};
  return cfg;
}

class RankCount : public ::testing::TestWithParam<int> {};

TEST_P(RankCount, RoundRobinMatchesSequential) {
  const int ranks = GetParam();
  const RealMatrix x = random_scaled_data(13, 4, 100 + static_cast<std::uint64_t>(ranks));
  const RealMatrix expect = gram_matrix(cfg4(), x);
  const RealMatrix got = distributed_gram_matrix(
      cfg4(), x, ranks, DistributionStrategy::RoundRobin);
  EXPECT_LT(max_abs_diff(got, expect), 1e-12) << "ranks=" << ranks;
}

TEST_P(RankCount, NoMessagingMatchesSequential) {
  const int ranks = GetParam();
  const RealMatrix x = random_scaled_data(11, 4, 200 + static_cast<std::uint64_t>(ranks));
  const RealMatrix expect = gram_matrix(cfg4(), x);
  const RealMatrix got = distributed_gram_matrix(
      cfg4(), x, ranks, DistributionStrategy::NoMessaging);
  EXPECT_LT(max_abs_diff(got, expect), 1e-12) << "ranks=" << ranks;
}

TEST_P(RankCount, CrossKernelMatchesSequential) {
  const int ranks = GetParam();
  const RealMatrix xtest = random_scaled_data(7, 4, 300 + static_cast<std::uint64_t>(ranks));
  const RealMatrix xtrain = random_scaled_data(9, 4, 400 + static_cast<std::uint64_t>(ranks));
  const RealMatrix expect = cross_kernel(cfg4(), xtest, xtrain);
  const RealMatrix got = distributed_cross_kernel(cfg4(), xtest, xtrain, ranks);
  EXPECT_LT(max_abs_diff(got, expect), 1e-12) << "ranks=" << ranks;
}

INSTANTIATE_TEST_SUITE_P(Ranks, RankCount, ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(DistributedGram, RoundRobinSimulatesEachCircuitOnce) {
  // The round-robin signature property (Fig. 4b): total circuit
  // simulations equal the number of data points, regardless of rank count.
  const RealMatrix x = random_scaled_data(12, 4, 500);
  GramStats stats;
  distributed_gram_matrix(cfg4(), x, 4, DistributionStrategy::RoundRobin, &stats);
  EXPECT_EQ(stats.circuits_simulated, 12);
  EXPECT_GT(stats.phases.total("communication"), 0.0);
}

TEST(DistributedGram, NoMessagingDuplicatesSimulations) {
  // The no-messaging signature (Fig. 4a): off-diagonal tiles re-simulate
  // their row and column states, so the total exceeds the point count.
  const RealMatrix x = random_scaled_data(12, 4, 600);
  GramStats stats;
  distributed_gram_matrix(cfg4(), x, 4, DistributionStrategy::NoMessaging, &stats);
  EXPECT_GT(stats.circuits_simulated, 12);
  EXPECT_DOUBLE_EQ(stats.phases.total("communication"), 0.0);
}

TEST(DistributedGram, InnerProductCountMatchesSymmetricHalving) {
  const idx n = 10;
  const RealMatrix x = random_scaled_data(n, 4, 700);
  GramStats stats;
  distributed_gram_matrix(cfg4(), x, 3, DistributionStrategy::RoundRobin, &stats);
  EXPECT_EQ(stats.inner_products, n * (n - 1) / 2);
}

TEST(DistributedGram, MoreRanksThanPoints) {
  const RealMatrix x = random_scaled_data(3, 4, 800);
  const RealMatrix expect = gram_matrix(cfg4(), x);
  const RealMatrix got =
      distributed_gram_matrix(cfg4(), x, 6, DistributionStrategy::RoundRobin);
  EXPECT_LT(max_abs_diff(got, expect), 1e-12);
}

TEST(DistributedGram, ResultIsSymmetric) {
  const RealMatrix x = random_scaled_data(9, 4, 900);
  for (auto strategy : {DistributionStrategy::RoundRobin,
                        DistributionStrategy::NoMessaging}) {
    const RealMatrix k = distributed_gram_matrix(cfg4(), x, 3, strategy);
    EXPECT_EQ(symmetry_defect(k), 0.0);
  }
}

}  // namespace
}  // namespace qkmps::kernel
