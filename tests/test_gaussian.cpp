#include <gtest/gtest.h>

#include <cmath>

#include "kernel/gaussian.hpp"
#include "test_helpers.hpp"

namespace qkmps::kernel {
namespace {

TEST(Gaussian, DiagonalIsOne) {
  RealMatrix x(4, 3);
  Rng rng(1);
  for (idx i = 0; i < 4; ++i)
    for (idx j = 0; j < 3; ++j) x(i, j) = rng.normal();
  const RealMatrix k = gaussian_gram(x, 0.5);
  for (idx i = 0; i < 4; ++i) EXPECT_NEAR(k(i, i), 1.0, 1e-12);
}

TEST(Gaussian, KnownTwoPointValue) {
  RealMatrix x(2, 2);
  x(0, 0) = 0.0;
  x(0, 1) = 0.0;
  x(1, 0) = 1.0;
  x(1, 1) = 1.0;
  const RealMatrix k = gaussian_gram(x, 0.25);
  EXPECT_NEAR(k(0, 1), std::exp(-0.25 * 2.0), 1e-15);
}

TEST(Gaussian, SymmetricAndBounded) {
  Rng rng(2);
  RealMatrix x(8, 5);
  for (idx i = 0; i < 8; ++i)
    for (idx j = 0; j < 5; ++j) x(i, j) = rng.normal();
  const RealMatrix k = gaussian_gram(x, 1.3);
  EXPECT_EQ(symmetry_defect(k), 0.0);
  for (idx i = 0; i < 8; ++i)
    for (idx j = 0; j < 8; ++j) {
      EXPECT_GT(k(i, j), 0.0);
      EXPECT_LE(k(i, j), 1.0);
    }
}

TEST(Gaussian, AlphaMatchesSklearnScaleConvention) {
  // For data with overall variance v and m features, alpha = 1/(m v).
  RealMatrix x(2, 2);
  x(0, 0) = 0.0;
  x(0, 1) = 0.0;
  x(1, 0) = 2.0;
  x(1, 1) = 2.0;
  // Flattened values {0,0,2,2}: mean 1, var 1 -> alpha = 1/(2*1) = 0.5.
  EXPECT_NEAR(gaussian_alpha(x), 0.5, 1e-14);
}

TEST(Gaussian, AlphaRejectsConstantData) {
  RealMatrix x(3, 2);
  for (idx i = 0; i < 3; ++i)
    for (idx j = 0; j < 2; ++j) x(i, j) = 7.0;
  EXPECT_THROW(gaussian_alpha(x), Error);
}

TEST(Gaussian, CrossKernelMatchesGramBlocks) {
  Rng rng(3);
  RealMatrix x(6, 4);
  for (idx i = 0; i < 6; ++i)
    for (idx j = 0; j < 4; ++j) x(i, j) = rng.normal();
  const double alpha = 0.8;
  const RealMatrix full = gaussian_gram(x, alpha);

  RealMatrix a(2, 4), b(4, 4);
  for (idx j = 0; j < 4; ++j) {
    a(0, j) = x(0, j);
    a(1, j) = x(1, j);
    for (idx i = 0; i < 4; ++i) b(i, j) = x(2 + i, j);
  }
  const RealMatrix cross = gaussian_cross(a, b, alpha);
  for (idx i = 0; i < 2; ++i)
    for (idx j = 0; j < 4; ++j)
      EXPECT_NEAR(cross(i, j), full(i, 2 + j), 1e-14);
}

TEST(Gaussian, LargerDistanceSmallerKernel) {
  RealMatrix x(3, 1);
  x(0, 0) = 0.0;
  x(1, 0) = 1.0;
  x(2, 0) = 3.0;
  const RealMatrix k = gaussian_gram(x, 1.0);
  EXPECT_GT(k(0, 1), k(0, 2));
}

}  // namespace
}  // namespace qkmps::kernel
