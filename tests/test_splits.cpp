#include <gtest/gtest.h>

#include <set>

#include "data/elliptic_synthetic.hpp"
#include "data/splits.hpp"
#include "test_helpers.hpp"

namespace qkmps::data {
namespace {

Dataset pool() {
  EllipticSyntheticParams p;
  p.num_points = 3000;
  p.num_features = 12;
  return generate_elliptic_synthetic(p);
}

TEST(BalancedSubsample, ExactClassCounts) {
  const Dataset d = pool();
  Rng rng(1);
  const Dataset s = balanced_subsample(d, 60, rng);
  EXPECT_EQ(s.size(), 120);
  EXPECT_EQ(s.positives(), 60);
  EXPECT_EQ(s.negatives(), 60);
}

TEST(BalancedSubsample, SeedsAreReproducible) {
  const Dataset d = pool();
  Rng r1(7), r2(7);
  const Dataset a = balanced_subsample(d, 20, r1);
  const Dataset b = balanced_subsample(d, 20, r2);
  EXPECT_EQ(a.y, b.y);
  EXPECT_DOUBLE_EQ(a.x(5, 3), b.x(5, 3));
}

TEST(BalancedSubsample, DifferentSeedsDiffer) {
  const Dataset d = pool();
  Rng r1(7), r2(8);
  const Dataset a = balanced_subsample(d, 20, r1);
  const Dataset b = balanced_subsample(d, 20, r2);
  bool identical = true;
  for (idx i = 0; i < a.size() && identical; ++i)
    if (a.x(i, 0) != b.x(i, 0)) identical = false;
  EXPECT_FALSE(identical);
}

TEST(BalancedSubsample, DrawsWithoutReplacement) {
  const Dataset d = pool();
  Rng rng(9);
  const Dataset s = balanced_subsample(d, 50, rng);
  // No two rows identical (generator produces continuous features, so
  // duplicates would indicate replacement).
  std::set<double> first_feature;
  for (idx i = 0; i < s.size(); ++i) first_feature.insert(s.x(i, 0));
  EXPECT_EQ(first_feature.size(), static_cast<std::size_t>(s.size()));
}

TEST(BalancedSubsample, ThrowsWhenPoolTooSmall) {
  const Dataset d = pool();
  Rng rng(10);
  EXPECT_THROW(balanced_subsample(d, 100000, rng), Error);
}

TEST(TrainTestSplit, ProportionsAreRespected) {
  const Dataset d = pool();
  Rng rng(11);
  const Dataset s = balanced_subsample(d, 100, rng);
  const TrainTestSplit split = train_test_split(s, 0.2, rng);
  EXPECT_EQ(split.train.size() + split.test.size(), 200);
  EXPECT_NEAR(static_cast<double>(split.test.size()) / 200.0, 0.2, 0.02);
}

TEST(TrainTestSplit, PreservesClassBalanceOnBothSides) {
  const Dataset d = pool();
  Rng rng(12);
  const Dataset s = balanced_subsample(d, 100, rng);
  const TrainTestSplit split = train_test_split(s, 0.2, rng);
  EXPECT_EQ(split.test.positives(), split.test.negatives());
  EXPECT_EQ(split.train.positives(), split.train.negatives());
}

TEST(TrainTestSplit, SidesAreDisjoint) {
  const Dataset d = pool();
  Rng rng(13);
  const Dataset s = balanced_subsample(d, 50, rng);
  const TrainTestSplit split = train_test_split(s, 0.25, rng);
  std::set<double> train_keys;
  for (idx i = 0; i < split.train.size(); ++i) train_keys.insert(split.train.x(i, 0));
  for (idx i = 0; i < split.test.size(); ++i)
    EXPECT_EQ(train_keys.count(split.test.x(i, 0)), 0u);
}

TEST(TrainTestSplit, RejectsDegenerateFractions) {
  const Dataset d = pool();
  Rng rng(14);
  const Dataset s = balanced_subsample(d, 10, rng);
  EXPECT_THROW(train_test_split(s, 0.0, rng), Error);
  EXPECT_THROW(train_test_split(s, 1.0, rng), Error);
}

}  // namespace
}  // namespace qkmps::data
