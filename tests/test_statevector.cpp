#include <gtest/gtest.h>

#include <cmath>

#include "circuit/statevector.hpp"
#include "test_helpers.hpp"

namespace qkmps::circuit {
namespace {

TEST(Statevector, InitialStateIsZeroKet) {
  Statevector sv(3);
  EXPECT_EQ(sv.amplitudes()[0], cplx(1.0));
  for (std::size_t i = 1; i < 8; ++i) EXPECT_EQ(sv.amplitudes()[i], cplx(0.0));
}

TEST(Statevector, HadamardOnFirstQubit) {
  // Qubit 0 is the most significant bit: H on qubit 0 of |00> gives
  // (|00> + |10>)/sqrt(2), i.e. indices 0 and 2.
  Statevector sv(2);
  sv.apply(make_h(0));
  const double h = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::abs(sv.amplitudes()[0] - cplx(h)), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(sv.amplitudes()[2] - cplx(h)), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(sv.amplitudes()[1]), 0.0, 1e-15);
}

TEST(Statevector, XFlipsLeastSignificantQubit) {
  Statevector sv(2);
  sv.apply(make_x(1));
  EXPECT_EQ(sv.amplitudes()[1], cplx(1.0));
}

TEST(Statevector, SwapExchangesQubits) {
  Statevector sv(2);
  sv.apply(make_x(1));   // |01>
  sv.apply(make_swap(0, 1));
  EXPECT_NEAR(std::abs(sv.amplitudes()[2] - cplx(1.0)), 0.0, 1e-15);  // |10>
}

TEST(Statevector, RxxEntanglesPlusStateCorrectly) {
  // RXX(theta) on |00>: cos(theta/2)|00> - i sin(theta/2)|11>.
  const double theta = 0.8;
  Statevector sv(2);
  sv.apply(make_rxx(0, 1, theta));
  EXPECT_NEAR(std::abs(sv.amplitudes()[0] - cplx(std::cos(theta / 2))), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(sv.amplitudes()[3] - cplx(0.0, -std::sin(theta / 2))), 0.0,
              1e-14);
}

TEST(Statevector, NormPreservedByRandomCircuit) {
  Rng rng(1);
  Circuit c(5);
  for (idx q = 0; q < 5; ++q) c.h(q);
  for (int i = 0; i < 20; ++i) {
    const idx q = static_cast<idx>(rng.uniform_int(4));
    c.rxx(q, q + 1, rng.uniform(-2.0, 2.0));
    c.rz(q, rng.uniform(-2.0, 2.0));
  }
  EXPECT_NEAR(simulate_statevector(c).norm(), 1.0, 1e-12);
}

TEST(Statevector, InnerProductOfOrthogonalStates) {
  Statevector a(2), b(2);
  b.apply(make_x(0));
  EXPECT_NEAR(std::abs(a.inner_product(b)), 0.0, 1e-15);
}

TEST(Statevector, InnerProductConjugateSymmetry) {
  Rng rng(2);
  Circuit ca(3), cb(3);
  for (idx q = 0; q < 3; ++q) {
    ca.h(q);
    cb.h(q);
  }
  ca.rxx(0, 1, 0.7);
  cb.rxx(1, 2, -0.4);
  cb.rz(0, 1.1);
  const auto sa = simulate_statevector(ca);
  const auto sb = simulate_statevector(cb);
  const cplx ab = sa.inner_product(sb);
  const cplx ba = sb.inner_product(sa);
  EXPECT_NEAR(std::abs(ab - std::conj(ba)), 0.0, 1e-14);
}

TEST(Statevector, GateOnArbitraryQubitPair) {
  // Non-adjacent two-qubit gates are supported natively here (unlike MPS):
  // verify RXX(0, 2) against the SWAP-conjugated adjacent version.
  Circuit direct(3);
  direct.h(0);
  direct.h(2);
  direct.rxx(0, 2, 0.9);

  Circuit swapped(3);
  swapped.h(0);
  swapped.h(2);
  swapped.swap(1, 2);
  swapped.rxx(0, 1, 0.9);
  swapped.swap(1, 2);

  const auto sa = simulate_statevector(direct);
  const auto sb = simulate_statevector(swapped);
  double diff = 0.0;
  for (std::size_t i = 0; i < 8; ++i)
    diff = std::max(diff, std::abs(sa.amplitudes()[i] - sb.amplitudes()[i]));
  EXPECT_LT(diff, 1e-14);
}

TEST(Statevector, RejectsTooManyQubits) { EXPECT_THROW(Statevector(30), Error); }

TEST(Statevector, RejectsMismatchedCircuit) {
  Statevector sv(2);
  Circuit c(3);
  EXPECT_THROW(sv.apply(c), Error);
}

}  // namespace
}  // namespace qkmps::circuit
