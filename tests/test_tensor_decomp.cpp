#include <gtest/gtest.h>

#include "tensor/contract.hpp"
#include "tensor/decompositions.hpp"
#include "test_helpers.hpp"

namespace qkmps::tensor {
namespace {

Tensor random_tensor(std::vector<idx> shape, Rng& rng) {
  Tensor t(std::move(shape));
  for (idx k = 0; k < t.size(); ++k) t[k] = rng.normal_cplx();
  return t;
}

Tensor reassemble_svd(const TensorSvd& f) {
  // Scale u's last axis by s, then contract with vh's first axis.
  Tensor us = f.u;
  const idx rank = static_cast<idx>(f.s.size());
  const idx lead = us.size() / rank;
  for (idx i = 0; i < lead; ++i)
    for (idx r = 0; r < rank; ++r)
      us[i * rank + r] *= f.s[static_cast<std::size_t>(r)];
  return contract(us, {us.rank() - 1}, f.vh, {0});
}

TEST(SvdSplit, FullRankReconstructs) {
  Rng rng(1);
  const Tensor t = random_tensor({3, 2, 2, 4}, rng);
  const TensorSvd f = svd_split(t, 2);
  EXPECT_EQ(f.u.shape(), (std::vector<idx>{3, 2, 6}));
  EXPECT_EQ(f.vh.shape(), (std::vector<idx>{6, 2, 4}));
  EXPECT_LT(max_abs_diff(reassemble_svd(f), t), 1e-11);
  EXPECT_EQ(f.discarded_weight, 0.0);
}

TEST(SvdSplit, TruncationReportsDiscardedWeight) {
  Rng rng(2);
  const Tensor t = random_tensor({4, 4}, rng);
  const TensorSvd f = svd_split(t, 1, /*max_discarded_weight=*/1e300);
  // Everything but one singular value is discarded under a huge budget.
  EXPECT_EQ(f.s.size(), 1u);
  EXPECT_GT(f.discarded_weight, 0.0);
}

TEST(SvdSplit, MaxRankCap) {
  Rng rng(3);
  const Tensor t = random_tensor({4, 6}, rng);
  const TensorSvd f = svd_split(t, 1, -1.0, 2);
  EXPECT_EQ(f.s.size(), 2u);
  EXPECT_EQ(f.u.shape().back(), 2);
}

TEST(SvdSplit, TinyBudgetIsLossless) {
  Rng rng(4);
  const Tensor t = random_tensor({2, 3, 4}, rng);
  const TensorSvd f = svd_split(t, 1, kDefaultTruncationError);
  EXPECT_LT(max_abs_diff(reassemble_svd(f), t), 1e-10);
  EXPECT_LE(f.discarded_weight, kDefaultTruncationError);
}

TEST(QrSplit, Reconstructs) {
  Rng rng(5);
  const Tensor t = random_tensor({3, 2, 5}, rng);
  const TensorQr f = qr_split(t, 2);
  const Tensor rec = contract(f.q, {2}, f.r, {0});
  EXPECT_LT(max_abs_diff(rec, t), 1e-12);
}

TEST(QrSplit, QFactorIsIsometry) {
  Rng rng(6);
  const Tensor t = random_tensor({4, 2, 3}, rng);
  const TensorQr f = qr_split(t, 2);
  // Contract q with its conjugate over the left axes: should be identity.
  const Tensor gram = contract(f.q.conj(), {0, 1}, f.q, {0, 1});
  for (idx i = 0; i < gram.extent(0); ++i)
    for (idx j = 0; j < gram.extent(1); ++j)
      EXPECT_NEAR(std::abs(gram(i, j) - (i == j ? cplx(1.0) : cplx(0.0))), 0.0,
                  1e-12);
}

TEST(SvdSplit, InvalidBipartitionThrows) {
  Tensor t({2, 2});
  EXPECT_THROW(svd_split(t, 0), Error);
  EXPECT_THROW(svd_split(t, 2), Error);
}

}  // namespace
}  // namespace qkmps::tensor
