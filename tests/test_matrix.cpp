#include <gtest/gtest.h>

#include "linalg/matrix.hpp"
#include "linalg/norms.hpp"
#include "test_helpers.hpp"

namespace qkmps::linalg {
namespace {

TEST(Matrix, ZeroInitialized) {
  Matrix m(3, 4);
  for (idx i = 0; i < 3; ++i)
    for (idx j = 0; j < 4; ++j) EXPECT_EQ(m(i, j), cplx(0.0));
}

TEST(Matrix, IdentityHasUnitDiagonal) {
  const Matrix m = Matrix::identity(4);
  for (idx i = 0; i < 4; ++i)
    for (idx j = 0; j < 4; ++j)
      EXPECT_EQ(m(i, j), (i == j) ? cplx(1.0) : cplx(0.0));
}

TEST(Matrix, AdjointConjugatesAndTransposes) {
  Matrix m(2, 3);
  m(0, 1) = cplx(1.0, 2.0);
  const Matrix a = m.adjoint();
  EXPECT_EQ(a.rows(), 3);
  EXPECT_EQ(a.cols(), 2);
  EXPECT_EQ(a(1, 0), cplx(1.0, -2.0));
}

TEST(Matrix, AdjointIsInvolution) {
  Rng rng(5);
  const Matrix m = testing::random_matrix(4, 7, rng);
  EXPECT_EQ(max_abs_diff(m.adjoint().adjoint(), m), 0.0);
}

TEST(Matrix, TransposeDoesNotConjugate) {
  Matrix m(1, 1);
  m(0, 0) = cplx(1.0, 2.0);
  EXPECT_EQ(m.transpose()(0, 0), cplx(1.0, 2.0));
  EXPECT_EQ(m.conj()(0, 0), cplx(1.0, -2.0));
}

TEST(Matrix, ArithmeticOperators) {
  Rng rng(6);
  const Matrix a = testing::random_matrix(3, 3, rng);
  const Matrix b = testing::random_matrix(3, 3, rng);
  const Matrix sum = a + b;
  const Matrix back = sum - b;
  EXPECT_LT(max_abs_diff(back, a), 1e-14);
}

TEST(Matrix, ScalarMultiplication) {
  Matrix m(1, 2);
  m(0, 0) = 2.0;
  m(0, 1) = cplx(0.0, 1.0);
  const Matrix r = m * cplx(0.0, 2.0);
  EXPECT_EQ(r(0, 0), cplx(0.0, 4.0));
  EXPECT_EQ(r(0, 1), cplx(-2.0, 0.0));
}

TEST(Matrix, MismatchedAdditionThrows) {
  Matrix a(2, 2), b(2, 3);
  EXPECT_THROW(a += b, Error);
}

TEST(Norms, FrobeniusOfIdentity) {
  EXPECT_DOUBLE_EQ(frobenius_norm(Matrix::identity(9)), 3.0);
}

TEST(Norms, MaxAbsFindsLargestMagnitude) {
  Matrix m(2, 2);
  m(1, 0) = cplx(3.0, 4.0);
  EXPECT_DOUBLE_EQ(max_abs(m), 5.0);
}

TEST(Norms, OrthonormalityDefectOfIdentityIsZero) {
  EXPECT_DOUBLE_EQ(orthonormality_defect(Matrix::identity(5)), 0.0);
}

TEST(Norms, OrthonormalityDefectDetectsScaling) {
  Matrix m = Matrix::identity(3);
  m(0, 0) = 2.0;
  EXPECT_NEAR(orthonormality_defect(m), 3.0, 1e-15);
}

}  // namespace
}  // namespace qkmps::linalg
