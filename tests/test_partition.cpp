#include <gtest/gtest.h>

#include "parallel/partition.hpp"
#include "util/error.hpp"

namespace qkmps::parallel {
namespace {

TEST(SplitEvenly, CoversWholeRangeContiguously) {
  const auto parts = split_evenly(17, 5);
  ASSERT_EQ(parts.size(), 5u);
  EXPECT_EQ(parts.front().begin, 0);
  EXPECT_EQ(parts.back().end, 17);
  for (std::size_t i = 1; i < parts.size(); ++i)
    EXPECT_EQ(parts[i].begin, parts[i - 1].end);
}

TEST(SplitEvenly, SizesDifferByAtMostOne) {
  const auto parts = split_evenly(23, 7);
  idx mn = 1000, mx = 0;
  for (const auto& r : parts) {
    mn = std::min(mn, r.size());
    mx = std::max(mx, r.size());
  }
  EXPECT_LE(mx - mn, 1);
}

TEST(SplitEvenly, ExactDivision) {
  const auto parts = split_evenly(12, 4);
  for (const auto& r : parts) EXPECT_EQ(r.size(), 3);
}

TEST(SplitEvenly, MorePartsThanElements) {
  const auto parts = split_evenly(2, 5);
  idx total = 0;
  for (const auto& r : parts) total += r.size();
  EXPECT_EQ(total, 2);
}

TEST(SplitEvenly, ZeroElements) {
  const auto parts = split_evenly(0, 3);
  for (const auto& r : parts) EXPECT_EQ(r.size(), 0);
}

TEST(SplitEvenly, RejectsZeroParts) { EXPECT_THROW(split_evenly(5, 0), Error); }

TEST(SplitSizes, MatchesSplitEvenlyAndDropsNothing) {
  const auto sizes = split_sizes(7, 4);  // e.g. hardware threads -> shards
  ASSERT_EQ(sizes.size(), 4u);
  EXPECT_EQ(sizes[0], 2);
  EXPECT_EQ(sizes[1], 2);
  EXPECT_EQ(sizes[2], 2);
  EXPECT_EQ(sizes[3], 1);  // a plain 7/4 would hand every shard 1
  idx total = 0;
  for (idx s : sizes) total += s;
  EXPECT_EQ(total, 7);
}

TEST(MakeTiles, GridCoversMatrix) {
  const auto tiles = make_tiles(10, 8, 3, 2);
  ASSERT_EQ(tiles.size(), 6u);
  idx area = 0;
  for (const auto& t : tiles) area += t.rows.size() * t.cols.size();
  EXPECT_EQ(area, 80);
}

TEST(MakeTiles, TileCoordinatesAreGridPositions) {
  const auto tiles = make_tiles(4, 4, 2, 2);
  EXPECT_EQ(tiles[3].index_row, 1);
  EXPECT_EQ(tiles[3].index_col, 1);
}

TEST(SquareTileGrid, ProducesRequestedTileCount) {
  for (idx parts : {1, 2, 4, 6, 9, 12, 16}) {
    const auto [r, c] = square_tile_grid(parts);
    EXPECT_EQ(r * c, parts) << parts;
  }
}

TEST(SquareTileGrid, PrefersNearSquare) {
  const auto [r, c] = square_tile_grid(16);
  EXPECT_EQ(r, 4);
  EXPECT_EQ(c, 4);
}

}  // namespace
}  // namespace qkmps::parallel
