#include <gtest/gtest.h>

#include <cmath>

#include "circuit/ansatz.hpp"
#include "circuit/routing.hpp"
#include "circuit/statevector.hpp"
#include "mps/simulator.hpp"
#include "test_helpers.hpp"

namespace qkmps::mps {
namespace {

double state_diff(const Mps& psi, const circuit::Statevector& sv) {
  const auto v = psi.to_statevector();
  double diff = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i)
    diff = std::max(diff, std::abs(v[i] - sv.amplitudes()[i]));
  return diff;
}

class SimulatorVsStatevector
    : public ::testing::TestWithParam<std::tuple<idx, idx, double>> {};

TEST_P(SimulatorVsStatevector, AnsatzCircuitsAgree) {
  const auto [m, d, gamma] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 19 + d * 7 + static_cast<idx>(gamma * 10)));
  const circuit::AnsatzParams p{.num_features = m, .layers = 2, .distance = d,
                                .gamma = gamma};
  const circuit::Circuit c =
      circuit::feature_map_circuit(p, qkmps::testing::random_features(m, rng));

  MpsSimulator sim;
  const SimulationResult r = sim.simulate(c);
  const circuit::Statevector sv = circuit::simulate_statevector(c);
  EXPECT_LT(state_diff(r.state, sv), 1e-7);
  EXPECT_NEAR(r.state.norm(), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    ParamSweep, SimulatorVsStatevector,
    ::testing::Values(std::make_tuple(4, 1, 0.1), std::make_tuple(6, 1, 1.0),
                      std::make_tuple(6, 2, 0.5), std::make_tuple(8, 3, 1.0),
                      std::make_tuple(8, 4, 0.5), std::make_tuple(10, 2, 0.9),
                      std::make_tuple(5, 4, 1.0)));

TEST(Simulator, RoutesNonAdjacentCircuitsTransparently) {
  circuit::Circuit c(5);
  for (idx q = 0; q < 5; ++q) c.h(q);
  c.rxx(0, 4, 0.8);
  EXPECT_FALSE(c.is_nearest_neighbour());
  MpsSimulator sim;
  const SimulationResult r = sim.simulate(c);
  const circuit::Statevector sv = circuit::simulate_statevector(c);
  EXPECT_LT(state_diff(r.state, sv), 1e-9);
  // Gate count reflects the routed circuit (SWAP overhead included).
  EXPECT_EQ(r.gates_applied, c.size() + circuit::routing_swap_count(c));
}

TEST(Simulator, TruncationErrorBoundHolds) {
  // Eq. 8 accumulated: |<ideal|trunc>|^2 >= 1 - sum of discarded weights.
  Rng rng(11);
  const circuit::AnsatzParams p{.num_features = 8, .layers = 2, .distance = 3,
                                .gamma = 1.0};
  const circuit::Circuit c =
      circuit::feature_map_circuit(p, qkmps::testing::random_features(8, rng));
  MpsSimulator sim;
  const SimulationResult r = sim.simulate(c);
  const circuit::Statevector ideal = circuit::simulate_statevector(c);

  const auto approx = r.state.to_statevector();
  cplx overlap = 0.0;
  for (std::size_t i = 0; i < approx.size(); ++i)
    overlap += std::conj(ideal.amplitudes()[i]) * approx[i];
  EXPECT_GE(std::norm(overlap), r.truncation.fidelity_lower_bound() - 1e-12);
}

TEST(Simulator, DefaultTruncationIsMachinePrecision) {
  Rng rng(12);
  const circuit::AnsatzParams p{.num_features = 10, .layers = 2, .distance = 2,
                                .gamma = 1.0};
  const circuit::Circuit c =
      circuit::feature_map_circuit(p, qkmps::testing::random_features(10, rng));
  MpsSimulator sim;
  const SimulationResult r = sim.simulate(c);
  // Each truncation discards <= 1e-16; the accumulated weight stays tiny.
  EXPECT_LT(r.truncation.total_discarded_weight,
            1e-16 * static_cast<double>(r.truncation.truncation_count + 1));
}

TEST(Simulator, MemoryTrackingRecordsEveryGate) {
  Rng rng(13);
  const circuit::AnsatzParams p{.num_features = 6, .layers = 1, .distance = 2,
                                .gamma = 0.7};
  const circuit::Circuit c =
      circuit::feature_map_circuit(p, qkmps::testing::random_features(6, rng));
  SimulatorConfig cfg;
  cfg.track_memory = true;
  MpsSimulator sim(cfg);
  const SimulationResult r = sim.simulate(c);
  EXPECT_EQ(static_cast<idx>(r.memory.samples().size()), r.gates_applied);
  EXPECT_GE(r.memory.peak_bytes(), r.state.memory_bytes());
  EXPECT_EQ(r.memory.peak_bond(), r.truncation.max_bond_seen);
}

TEST(Simulator, MemoryTrackingOffByDefault) {
  circuit::Circuit c(3);
  c.h(0);
  MpsSimulator sim;
  EXPECT_TRUE(sim.simulate(c).memory.samples().empty());
}

TEST(Simulator, PoliciesProduceSameBondDimensions) {
  // Table I's consistency property: both backends implement the same
  // algorithm, so their bond dimensions agree.
  Rng rng(14);
  const circuit::AnsatzParams p{.num_features = 9, .layers = 2, .distance = 3,
                                .gamma = 1.0};
  const auto x = qkmps::testing::random_features(9, rng);
  const circuit::Circuit c = circuit::feature_map_circuit(p, x);

  SimulatorConfig ref_cfg, acc_cfg;
  acc_cfg.policy = linalg::ExecPolicy::Accelerated;
  const SimulationResult ref = MpsSimulator(ref_cfg).simulate(c);
  const SimulationResult acc = MpsSimulator(acc_cfg).simulate(c);
  EXPECT_EQ(ref.state.bonds(), acc.state.bonds());
}

TEST(Simulator, GammaAffectsEntanglement) {
  // Fig. 7's mechanism: intermediate gamma creates more entanglement than
  // gamma near zero.
  Rng rng(15);
  const auto x = qkmps::testing::random_features(10, rng);
  auto chi_for = [&](double gamma) {
    const circuit::AnsatzParams p{.num_features = 10, .layers = 2, .distance = 3,
                                  .gamma = gamma};
    MpsSimulator sim;
    return sim.simulate(circuit::feature_map_circuit(p, x)).state.max_bond();
  };
  EXPECT_LT(chi_for(0.01), chi_for(0.5));
}

TEST(Simulator, InitialStateOverload) {
  // Simulating the XX block on a caller-provided |+>^m must equal the full
  // ansatz run (whose first layer is the Hadamards).
  Rng rng(16);
  const auto x = qkmps::testing::random_features(5, rng);
  const circuit::AnsatzParams p{.num_features = 5, .layers = 1, .distance = 1,
                                .gamma = 0.6};
  const circuit::Circuit full = circuit::feature_map_circuit(p, x);

  circuit::Circuit tail(5);
  for (idx g = 5; g < full.size(); ++g) tail.append(full.gates()[static_cast<std::size_t>(g)]);

  MpsSimulator sim;
  const Mps via_plus = sim.simulate(tail, Mps::plus_state(5)).state;
  const Mps via_full = sim.simulate(full).state;
  const auto va = via_plus.to_statevector();
  const auto vb = via_full.to_statevector();
  double diff = 0.0;
  for (std::size_t i = 0; i < va.size(); ++i)
    diff = std::max(diff, std::abs(va[i] - vb[i]));
  EXPECT_LT(diff, 1e-12);
}

}  // namespace
}  // namespace qkmps::mps
