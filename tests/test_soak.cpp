#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/sharded_engine.hpp"
#include "serve_test_fixture.hpp"
#include "soak/arrival.hpp"
#include "soak/coverage.hpp"
#include "soak/harness.hpp"
#include "soak/slo.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace qkmps::soak {
namespace {

// One trained model shared by every engine-driving test in this suite
// (training dominates suite runtime; the engines themselves are cheap).
const testing::TrainedServing& shared_model() {
  static const testing::TrainedServing* model =
      // lint: allow(naked-new) — leaked singleton shared across tests
      new testing::TrainedServing(testing::train_small_serving(7));
  return *model;
}

struct SoakInputs {
  kernel::RealMatrix pool;
  std::vector<double> reference;
};

const SoakInputs& shared_inputs() {
  static const SoakInputs* inputs = [] {
    // lint: allow(naked-new) — leaked singleton shared across tests
    auto* in = new SoakInputs();
    in->pool = testing::serving_request_pool(48);
    in->reference = testing::sequential_reference(shared_model(), in->pool);
    return in;
  }();
  return *inputs;
}

// ---------------------------------------------------------------------------
// Arrival shapes

TEST(SoakArrival, SustainedRateIsConstantAndArrivalsMonotone) {
  ArrivalProcess p({sustained(1000.0)});
  EXPECT_DOUBLE_EQ(p.rate_at(0.0), 1000.0);
  EXPECT_DOUBLE_EQ(p.rate_at(123.4), 1000.0);
  double prev = -1.0;
  for (int i = 0; i < 100; ++i) {
    const double at = p.next_arrival_us();
    EXPECT_GT(at, prev);
    prev = at;
  }
  // 1000 rps => 1ms gaps: the 100th arrival lands at 99ms.
  EXPECT_NEAR(prev, 99'000.0, 1e-6);
}

TEST(SoakArrival, DiurnalOscillatesBetweenTroughAndPeak) {
  const double period = 40.0;
  ArrivalProcess p({diurnal(2000.0, period, 0.25)});
  double lo = 1e300, hi = 0.0;
  for (double t = 0.0; t < period; t += period / 400.0) {
    const double r = p.rate_at(t);
    lo = std::min(lo, r);
    hi = std::max(hi, r);
  }
  EXPECT_NEAR(hi, 2000.0, 1.0);         // touches the peak...
  EXPECT_NEAR(lo, 0.25 * 2000.0, 1.0);  // ...and the trough
}

TEST(SoakArrival, FlashCrowdFiresMidIntervalAtTheMultiplier) {
  ArrivalProcess p({flash_crowd(100.0, 10.0, 1.0, 8.0)});
  EXPECT_DOUBLE_EQ(p.rate_at(0.0), 100.0);    // process start: no crowd
  EXPECT_DOUBLE_EQ(p.rate_at(5.5), 800.0);    // mid-interval crowd
  EXPECT_DOUBLE_EQ(p.rate_at(6.5), 100.0);    // crowd over
  EXPECT_DOUBLE_EQ(p.rate_at(15.5), 800.0);   // periodic
}

TEST(SoakArrival, ShapesCompose) {
  ArrivalProcess p({sustained(100.0), sustained(50.0)});
  EXPECT_DOUBLE_EQ(p.rate_at(1.0), 150.0);
}

TEST(SoakArrival, RejectsInvalidShapes) {
  EXPECT_THROW(ArrivalProcess(std::vector<ShapeConfig>{}), Error);
  EXPECT_THROW(ArrivalProcess({sustained(0.0)}), Error);
  // A crowd longer than half its interval would overlap the next one.
  EXPECT_THROW(ArrivalProcess({flash_crowd(100.0, 10.0, 6.0, 2.0)}), Error);
}

// ---------------------------------------------------------------------------
// SLO accountant

TEST(SoakSlo, QuantilesAgreeWithTypeSevenWithinOneGrowthFactor)
{
  // The accountant's per-class histogram shares the type-7 quantile
  // convention with util/stats; a reported quantile may differ from the
  // exact order statistic by at most one log bucket (factor 2^(1/3)).
  SloAccountant slo;
  Rng rng(99);
  std::vector<double> samples;
  for (int i = 0; i < 20'000; ++i) {
    // Log-uniform latencies spanning 100us..100ms: every bucket matters.
    const double v = 1e-4 * std::pow(1000.0, rng.uniform());
    samples.push_back(v);
    slo.record(Priority::kStandard, serve::ServeStatus::kServed, v,
               static_cast<double>(i) * 1e-4);
  }
  const SloSnapshot snap = slo.snapshot(2.0);
  const ClassLedger& c =
      snap.classes[static_cast<std::size_t>(Priority::kStandard)];
  const double g = obs::Histogram::growth();
  const std::pair<double, double> checks[] = {
      {0.50, c.p50_s}, {0.99, c.p99_s}, {0.999, c.p999_s}};
  for (const auto& [q, reported] : checks) {
    const double exact = quantile(samples, q);
    EXPECT_LE(reported, exact * g) << "q=" << q;
    EXPECT_GE(reported, exact / g) << "q=" << q;
  }
}

TEST(SoakSlo, LedgerCountsEveryOutcomePerClass) {
  SloTargets targets;
  targets.deadline_s = {0.010, 0.010, 0.010};
  SloAccountant slo(targets);
  // 3 served (one past deadline), 2 rejected, 1 shed, 1 gated.
  slo.record(Priority::kInteractive, serve::ServeStatus::kServed, 0.001, 0.0);
  slo.record(Priority::kInteractive, serve::ServeStatus::kServed, 0.002, 0.1);
  slo.record(Priority::kBatch, serve::ServeStatus::kServed, 0.500, 0.2);
  slo.record(Priority::kStandard, serve::ServeStatus::kRejected, 0.0, 0.3);
  slo.record(Priority::kStandard, serve::ServeStatus::kRejected, 0.0, 0.4);
  slo.record(Priority::kBatch, serve::ServeStatus::kShed, 0.0, 0.5);
  slo.record_gated(Priority::kBatch);

  const SloSnapshot s = slo.snapshot(1.0);
  EXPECT_EQ(s.submitted, 7u);
  EXPECT_EQ(s.served, 3u);
  EXPECT_EQ(s.rejected, 2u);
  EXPECT_EQ(s.shed, 1u);
  EXPECT_EQ(s.gated, 1u);
  EXPECT_EQ(s.deadline_missed, 1u);  // only the 500ms batch serve
  const auto& batch = s.classes[static_cast<std::size_t>(Priority::kBatch)];
  EXPECT_EQ(batch.submitted, 3u);
  EXPECT_EQ(batch.served, 1u);
  EXPECT_EQ(batch.shed, 1u);
  EXPECT_EQ(batch.gated, 1u);
  EXPECT_EQ(batch.deadline_missed, 1u);

  SloAccountant::EngineTotals engine;
  engine.submitted = 6;  // 7 - 1 gated
  engine.completed = 3;
  engine.rejected = 2;
  engine.shed = 1;
  std::string why;
  EXPECT_TRUE(slo.reconciles(engine, &why)) << why;
  engine.completed = 4;  // engine claims one more serve than the ledger saw
  EXPECT_FALSE(slo.reconciles(engine, &why));
  EXPECT_NE(why.find("completed"), std::string::npos);
}

TEST(SoakSlo, WindowedRateMetersTrailingWindowOnly) {
  obs::WindowedRate rate(0.5, 16);
  for (int i = 0; i < 100; ++i)
    rate.record(static_cast<double>(i) * 0.1);  // 10/s for 10 seconds
  EXPECT_EQ(rate.total(), 100u);
  EXPECT_NEAR(rate.rate(9.9, 5.0), 10.0, 1.5);
  // Long after the burst the trailing window is empty.
  EXPECT_DOUBLE_EQ(rate.rate(1000.0, 5.0), 0.0);
}

// ---------------------------------------------------------------------------
// Coverage map + guided mutator

TEST(SoakCoverage, TargetCellCountsArePinned) {
  // In-process: parity keeps warm x resize (4), routing keeps resize (2),
  // retention collapses to one cell, wire keeps v2/v3 (2) => 9.
  RelationCoverageMap inproc(/*with_worker_death=*/false);
  EXPECT_EQ(inproc.target_count(), 9u);
  // With worker death every relation's death axis doubles its cells:
  // parity 8, routing 4, retention 2, wire 2 (death projected away) => 16.
  RelationCoverageMap socket(/*with_worker_death=*/true);
  EXPECT_EQ(socket.target_count(), 16u);
  for (const Cell& cell : inproc.target_cells())
    EXPECT_EQ(cell.state_bits & 4, 0) << "death cell in an in-process map";
}

TEST(SoakCoverage, RecordProjectsThroughTheAxisMask) {
  RelationCoverageMap map(false);
  // Wire version is invisible to parity: both records land in one cell.
  EngineState a;          // cold, v3
  EngineState b;
  b.wire_v2 = true;       // cold, v2
  map.record(Relation::kBitwiseParity, a);
  map.record(Relation::kBitwiseParity, b);
  EXPECT_EQ(map.hits(Relation::kBitwiseParity, a), 2u);
  EXPECT_EQ(map.covered_count(), 1u);
  EXPECT_EQ(map.total_pairs(), 2u);
}

TEST(SoakCoverage, GuidedStrictlyGrowsCoverageAndTerminates) {
  // Guided: every step lands in a previously uncovered cell, so coverage
  // grows by exactly one per step and the loop terminates at full map in
  // exactly target_count() steps.
  RelationCoverageMap map(true);
  GuidedMutator mutator(map, 123, /*guided=*/true);
  std::size_t steps = 0;
  while (!map.complete()) {
    const std::size_t before = map.covered_count();
    const FuzzStep step = mutator.next();
    map.record(step.relation, step.state);
    ASSERT_EQ(map.covered_count(), before + 1) << "step " << steps;
    ASSERT_LT(++steps, 100u) << "guided loop failed to terminate";
  }
  EXPECT_EQ(steps, map.target_count());
}

TEST(SoakCoverage, GuidedBeatsUnguidedOnTheSameSeed) {
  // Same seed, same step budget (what the guided run needed): sampling
  // with replacement must cover no more — and in practice strictly fewer
  // — cells than covering without replacement.
  RelationCoverageMap guided_map(true);
  GuidedMutator guided(guided_map, 31337, /*guided=*/true);
  while (!guided_map.complete()) {
    const FuzzStep step = guided.next();
    guided_map.record(step.relation, step.state);
  }
  RelationCoverageMap unguided_map(true);
  GuidedMutator unguided(unguided_map, 31337, /*guided=*/false);
  for (std::size_t s = 0; s < guided_map.target_count(); ++s) {
    const FuzzStep step = unguided.next();
    unguided_map.record(step.relation, step.state);
  }
  EXPECT_EQ(guided_map.covered_count(), guided_map.target_count());
  EXPECT_LE(unguided_map.covered_count(), guided_map.covered_count());
  // 16 cells, 16 uniform draws with replacement: P(all distinct) ~ 1e-7,
  // so on this pinned seed the inequality is strict.
  EXPECT_LT(unguided_map.covered_count(), guided_map.covered_count());
}

TEST(SoakCoverage, MutatorStepsStayInsideTheTargetSet) {
  RelationCoverageMap map(false);
  std::set<Cell> targets(map.target_cells().begin(), map.target_cells().end());
  GuidedMutator mutator(map, 7, /*guided=*/true);
  for (int i = 0; i < 50; ++i) {
    const FuzzStep step = mutator.next();
    const Cell cell{step.relation,
                    static_cast<std::uint8_t>(step.state.bits() &
                                              axis_mask(step.relation))};
    EXPECT_TRUE(targets.count(cell)) << to_string(cell);
    map.record(step.relation, step.state);
  }
}

// ---------------------------------------------------------------------------
// Harness x engine: exact ledger reconciliation under every admission
// policy, zero lost futures, in-stream parity.

SoakConfig small_soak(std::uint64_t seed) {
  SoakConfig cfg;
  cfg.seed = seed;
  cfg.total_requests = 600;
  cfg.max_in_flight = 64;
  cfg.shapes = {sustained(50'000.0)};  // effectively unpaced
  return cfg;
}

TEST(SoakHarnessEngine, ReconcilesExactlyUnderRejectNew) {
  const auto& model = shared_model();
  const auto& inputs = shared_inputs();
  serve::ShardedEngineConfig scfg;
  scfg.num_shards = 2;
  scfg.engine.num_threads = 1;
  scfg.admission_capacity = 2;  // undersized: rejections guaranteed
  scfg.policy = serve::AdmissionPolicy::kRejectNew;
  serve::ShardedEngine engine(model.bundle, scfg);

  SoakHarness harness(inputs.pool, inputs.reference, small_soak(11));
  const SoakReport r = harness.run(engine);
  EXPECT_EQ(r.lost, 0u);
  EXPECT_EQ(r.parity_violations, 0u);
  EXPECT_EQ(r.routing_violations, 0u);
  EXPECT_TRUE(r.reconciled) << r.reconcile_detail;
  EXPECT_GT(r.slo.rejected, 0u);  // the policy actually fired
  EXPECT_EQ(r.slo.submitted,
            r.slo.gated + r.slo.served + r.slo.rejected + r.slo.shed);
}

TEST(SoakHarnessEngine, ReconcilesExactlyUnderShedOldest) {
  const auto& model = shared_model();
  const auto& inputs = shared_inputs();
  serve::ShardedEngineConfig scfg;
  scfg.num_shards = 2;
  scfg.engine.num_threads = 1;
  scfg.admission_capacity = 2;
  scfg.policy = serve::AdmissionPolicy::kShedOldest;
  serve::ShardedEngine engine(model.bundle, scfg);

  SoakHarness harness(inputs.pool, inputs.reference, small_soak(12));
  const SoakReport r = harness.run(engine);
  EXPECT_EQ(r.lost, 0u);
  EXPECT_EQ(r.parity_violations, 0u);
  EXPECT_TRUE(r.reconciled) << r.reconcile_detail;
  EXPECT_GT(r.slo.shed, 0u);  // eviction actually fired
}

TEST(SoakHarnessEngine, ReconcilesExactlyUnderBlockWithDeadline) {
  const auto& model = shared_model();
  const auto& inputs = shared_inputs();
  serve::ShardedEngineConfig scfg;
  scfg.num_shards = 2;
  scfg.engine.num_threads = 1;
  scfg.admission_capacity = 2;
  scfg.policy = serve::AdmissionPolicy::kBlockWithDeadline;
  scfg.block_deadline = std::chrono::microseconds(200);  // tight: timeouts
  serve::ShardedEngine engine(model.bundle, scfg);

  SoakConfig cfg = small_soak(13);
  cfg.total_requests = 300;  // blocking submits make each request pricier
  SoakHarness harness(inputs.pool, inputs.reference, cfg);
  const SoakReport r = harness.run(engine);
  EXPECT_EQ(r.lost, 0u);
  EXPECT_EQ(r.parity_violations, 0u);
  EXPECT_TRUE(r.reconciled) << r.reconcile_detail;
}

TEST(SoakHarnessEngine, DeadlineMissesCountServedLateExactly) {
  const auto& model = shared_model();
  const auto& inputs = shared_inputs();
  serve::ShardedEngineConfig scfg;
  scfg.num_shards = 2;
  scfg.engine.num_threads = 1;
  serve::ShardedEngine engine(model.bundle, scfg);

  SoakConfig cfg = small_soak(14);
  cfg.total_requests = 200;
  // Impossible deadlines: every served request misses, none are guessed.
  cfg.slo.deadline_s = {0.0, 0.0, 0.0};
  SoakHarness harness(inputs.pool, inputs.reference, cfg);
  const SoakReport r = harness.run(engine);
  EXPECT_EQ(r.lost, 0u);
  EXPECT_TRUE(r.reconciled) << r.reconcile_detail;
  EXPECT_EQ(r.slo.deadline_missed, r.slo.served);
}

TEST(SoakHarnessEngine, PriorityGateShedsLowClassesFirst) {
  const auto& model = shared_model();
  const auto& inputs = shared_inputs();
  serve::ShardedEngineConfig scfg;
  scfg.num_shards = 2;
  scfg.engine.num_threads = 1;
  serve::ShardedEngine engine(model.bundle, scfg);

  SoakConfig cfg = small_soak(15);
  cfg.batch_gate_fraction = 0.25;
  cfg.standard_gate_fraction = 0.60;
  SoakHarness harness(inputs.pool, inputs.reference, cfg);
  const SoakReport r = harness.run(engine);
  EXPECT_TRUE(r.reconciled) << r.reconcile_detail;
  const auto& cls = r.slo.classes;
  // Interactive is never gated; the lower gate must refuse at least as
  // large a fraction of batch as of standard.
  EXPECT_EQ(cls[0].gated, 0u);
  if (cls[1].submitted > 0 && cls[2].submitted > 0 && r.gated > 0) {
    const double std_frac = static_cast<double>(cls[1].gated) /
                            static_cast<double>(cls[1].submitted);
    const double batch_frac = static_cast<double>(cls[2].gated) /
                              static_cast<double>(cls[2].submitted);
    EXPECT_GE(batch_frac + 1e-12, std_frac);
  }
}

TEST(SoakHarnessEngine, CoverageRecordsWarmAndColdParityCells) {
  const auto& model = shared_model();
  const auto& inputs = shared_inputs();
  serve::ShardedEngineConfig scfg;
  scfg.num_shards = 2;
  scfg.engine.num_threads = 1;
  serve::ShardedEngine engine(model.bundle, scfg);

  SoakConfig cfg = small_soak(16);
  cfg.num_unique = 8;  // duplicate-heavy: warm cells guaranteed
  RelationCoverageMap map(false);
  SoakHarness harness(inputs.pool, inputs.reference, cfg);
  const SoakReport r = harness.run(engine, &map);
  EXPECT_TRUE(r.reconciled) << r.reconcile_detail;
  EngineState cold;
  EngineState warm;
  warm.warm_cache = true;
  EXPECT_GT(map.hits(Relation::kBitwiseParity, cold), 0u);
  EXPECT_GT(map.hits(Relation::kBitwiseParity, warm), 0u);
  EXPECT_GT(map.hits(Relation::kRoutingStability, warm), 0u);
}

TEST(SoakHarnessEngine, RejectsMisconfiguredGates) {
  const auto& inputs = shared_inputs();
  SoakConfig cfg = small_soak(17);
  cfg.batch_gate_fraction = 0.9;
  cfg.standard_gate_fraction = 0.5;  // batch must gate first
  EXPECT_THROW(SoakHarness(inputs.pool, inputs.reference, cfg), Error);
}

}  // namespace
}  // namespace qkmps::soak
