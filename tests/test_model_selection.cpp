#include <gtest/gtest.h>

#include "kernel/gaussian.hpp"
#include "svm/model_selection.hpp"
#include "test_helpers.hpp"

namespace qkmps::svm {
namespace {

struct ToyProblem {
  kernel::RealMatrix k_train;
  kernel::RealMatrix k_test;
  std::vector<int> y_train;
  std::vector<int> y_test;
};

ToyProblem make_toy(std::uint64_t seed) {
  Rng rng(seed);
  const idx n_train = 40, n_test = 16, m = 3;
  kernel::RealMatrix xtr(n_train, m), xte(n_test, m);
  std::vector<int> ytr(static_cast<std::size_t>(n_train)),
      yte(static_cast<std::size_t>(n_test));
  auto fill = [&](kernel::RealMatrix& x, std::vector<int>& y) {
    for (idx i = 0; i < x.rows(); ++i) {
      y[static_cast<std::size_t>(i)] = (i % 2 == 0) ? 1 : -1;
      for (idx j = 0; j < m; ++j)
        x(i, j) = rng.normal() + (y[static_cast<std::size_t>(i)] == 1 ? 0.9 : -0.9);
    }
  };
  fill(xtr, ytr);
  fill(xte, yte);
  const double alpha = kernel::gaussian_alpha(xtr);
  return {kernel::gaussian_gram(xtr, alpha), kernel::gaussian_cross(xte, xtr, alpha),
          std::move(ytr), std::move(yte)};
}

TEST(ModelSelection, DefaultGridSpansPaperRange) {
  const auto grid = default_c_grid();
  EXPECT_DOUBLE_EQ(grid.front(), 0.01);
  EXPECT_DOUBLE_EQ(grid.back(), 4.0);
  for (std::size_t i = 1; i < grid.size(); ++i) EXPECT_GT(grid[i], grid[i - 1]);
}

TEST(ModelSelection, SweepReturnsOnePointPerC) {
  const ToyProblem p = make_toy(1);
  const auto pts = sweep_regularization(p.k_train, p.y_train, p.k_test, p.y_test,
                                        default_c_grid());
  EXPECT_EQ(pts.size(), default_c_grid().size());
  for (std::size_t i = 0; i < pts.size(); ++i)
    EXPECT_DOUBLE_EQ(pts[i].c, default_c_grid()[i]);
}

TEST(ModelSelection, MetricsAreValidProbabilities) {
  const ToyProblem p = make_toy(2);
  const auto pts = sweep_regularization(p.k_train, p.y_train, p.k_test, p.y_test,
                                        {0.1, 1.0});
  for (const auto& pt : pts) {
    for (double v : {pt.train.accuracy, pt.train.auc, pt.test.accuracy,
                     pt.test.precision, pt.test.recall, pt.test.auc}) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(ModelSelection, BestByTestAucIsArgmax) {
  const ToyProblem p = make_toy(3);
  const auto pts = sweep_regularization(p.k_train, p.y_train, p.k_test, p.y_test,
                                        default_c_grid());
  const SweepPoint& best = best_by_test_auc(pts);
  for (const auto& pt : pts) EXPECT_GE(best.test.auc, pt.test.auc);
}

TEST(ModelSelection, SeparableToyReachesHighAuc) {
  const ToyProblem p = make_toy(4);
  const auto pts = sweep_regularization(p.k_train, p.y_train, p.k_test, p.y_test,
                                        default_c_grid());
  EXPECT_GT(best_by_test_auc(pts).test.auc, 0.8);
}

TEST(ModelSelection, EmptyGridThrows) {
  const ToyProblem p = make_toy(5);
  EXPECT_THROW(
      sweep_regularization(p.k_train, p.y_train, p.k_test, p.y_test, {}),
      Error);
}

TEST(ModelSelection, BestOfEmptyThrows) {
  EXPECT_THROW(best_by_test_auc({}), Error);
}

}  // namespace
}  // namespace qkmps::svm
