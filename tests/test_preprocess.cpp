#include <gtest/gtest.h>

#include "data/preprocess.hpp"
#include "test_helpers.hpp"

namespace qkmps::data {
namespace {

kernel::RealMatrix random_data(idx n, idx m, std::uint64_t seed) {
  Rng rng(seed);
  kernel::RealMatrix x(n, m);
  for (idx i = 0; i < n; ++i)
    for (idx j = 0; j < m; ++j) x(i, j) = rng.normal(5.0, 3.0);
  return x;
}

TEST(FeatureScaler, TrainDataLandsInOpenInterval) {
  const auto x = random_data(50, 6, 1);
  const FeatureScaler s = FeatureScaler::fit(x);
  const auto t = s.transform(x);
  for (idx i = 0; i < t.rows(); ++i)
    for (idx j = 0; j < t.cols(); ++j) {
      EXPECT_GT(t(i, j), 0.0);
      EXPECT_LT(t(i, j), 2.0);
    }
}

TEST(FeatureScaler, TrainExtremesHitIntervalEdges) {
  const auto x = random_data(50, 3, 2);
  const FeatureScaler s = FeatureScaler::fit(x);
  const auto t = s.transform(x);
  for (idx j = 0; j < 3; ++j) {
    double mn = 2.0, mx = 0.0;
    for (idx i = 0; i < 50; ++i) {
      mn = std::min(mn, t(i, j));
      mx = std::max(mx, t(i, j));
    }
    EXPECT_NEAR(mn, 0.001, 1e-12);
    EXPECT_NEAR(mx, 1.999, 1e-12);
  }
}

TEST(FeatureScaler, TestOutliersAreClamped) {
  const auto x = random_data(30, 2, 3);
  const FeatureScaler s = FeatureScaler::fit(x);
  kernel::RealMatrix wild(1, 2);
  wild(0, 0) = 1e6;
  wild(0, 1) = -1e6;
  const auto t = s.transform(wild);
  EXPECT_GT(t(0, 0), 0.0);
  EXPECT_LT(t(0, 0), 2.0);
  EXPECT_GT(t(0, 1), 0.0);
  EXPECT_LT(t(0, 1), 2.0);
}

TEST(FeatureScaler, CustomInterval) {
  const auto x = random_data(20, 2, 4);
  const FeatureScaler s = FeatureScaler::fit(x, -1.0, 1.0);
  const auto t = s.transform(x);
  for (idx i = 0; i < 20; ++i)
    for (idx j = 0; j < 2; ++j) {
      EXPECT_GT(t(i, j), -1.0);
      EXPECT_LT(t(i, j), 1.0);
    }
}

TEST(FeatureScaler, ConstantFeatureGoesToMidpointish) {
  kernel::RealMatrix x(10, 1);
  for (idx i = 0; i < 10; ++i) x(i, 0) = 42.0;
  const FeatureScaler s = FeatureScaler::fit(x);
  const auto t = s.transform(x);
  for (idx i = 0; i < 10; ++i) {
    EXPECT_GT(t(i, 0), 0.0);
    EXPECT_LT(t(i, 0), 2.0);
  }
}

TEST(FeatureScaler, TransformIsMonotone) {
  const auto x = random_data(40, 1, 5);
  const FeatureScaler s = FeatureScaler::fit(x);
  const auto t = s.transform(x);
  for (idx i = 0; i < 39; ++i)
    for (idx k = i + 1; k < 40; ++k)
      if (x(i, 0) < x(k, 0)) {
        EXPECT_LE(t(i, 0), t(k, 0));
      }
}

TEST(FeatureScaler, RejectsFeatureCountMismatch) {
  const auto x = random_data(10, 3, 6);
  const FeatureScaler s = FeatureScaler::fit(x);
  EXPECT_THROW(s.transform(random_data(5, 4, 7)), Error);
}

TEST(FeatureScaler, RejectsTinyTrainSet) {
  EXPECT_THROW(FeatureScaler::fit(random_data(1, 2, 8)), Error);
}

}  // namespace
}  // namespace qkmps::data
