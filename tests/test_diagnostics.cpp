#include <gtest/gtest.h>

#include <cmath>

#include "kernel/diagnostics.hpp"
#include "kernel/gaussian.hpp"
#include "kernel/gram.hpp"
#include "test_helpers.hpp"

namespace qkmps::kernel {
namespace {

RealMatrix random_scaled_data(idx n, idx m, std::uint64_t seed) {
  Rng rng(seed);
  RealMatrix x(n, m);
  for (idx i = 0; i < n; ++i)
    for (idx j = 0; j < m; ++j) x(i, j) = rng.uniform(0.05, 1.95);
  return x;
}

TEST(Concentration, IdentityKernelIsFullyConcentrated) {
  RealMatrix k(5, 5);
  for (idx i = 0; i < 5; ++i) k(i, i) = 1.0;
  const ConcentrationReport r = concentration(k);
  EXPECT_DOUBLE_EQ(r.mean_off_diagonal, 0.0);
  EXPECT_DOUBLE_EQ(r.var_off_diagonal, 0.0);
}

TEST(Concentration, KnownStatistics) {
  RealMatrix k(3, 3);
  for (idx i = 0; i < 3; ++i) k(i, i) = 1.0;
  k(0, 1) = k(1, 0) = 0.2;
  k(0, 2) = k(2, 0) = 0.4;
  k(1, 2) = k(2, 1) = 0.6;
  const ConcentrationReport r = concentration(k);
  EXPECT_NEAR(r.mean_off_diagonal, 0.4, 1e-15);
  EXPECT_NEAR(r.min_off_diagonal, 0.2, 1e-15);
  EXPECT_NEAR(r.max_off_diagonal, 0.6, 1e-15);
  EXPECT_NEAR(r.var_off_diagonal, (0.04 + 0.0 + 0.04) / 3.0, 1e-15);
}

TEST(Concentration, DeeperAnsatzConcentratesKernel) {
  // The paper's Table III mechanism as a library-level property.
  const RealMatrix x = random_scaled_data(8, 6, 1);
  auto mean_at_depth = [&](idx r) {
    QuantumKernelConfig cfg;
    cfg.ansatz = {.num_features = 6, .layers = r, .distance = 1, .gamma = 1.0};
    return concentration(gram_matrix(cfg, x)).mean_off_diagonal;
  };
  EXPECT_GT(mean_at_depth(1), mean_at_depth(8));
}

TEST(TargetAlignment, PerfectKernelAlignsToOne) {
  // K = y y^T (scaled to unit diagonal) is perfectly aligned.
  const std::vector<int> y{1, -1, 1, -1};
  RealMatrix k(4, 4);
  for (idx i = 0; i < 4; ++i)
    for (idx j = 0; j < 4; ++j)
      k(i, j) = static_cast<double>(y[static_cast<std::size_t>(i)] *
                                    y[static_cast<std::size_t>(j)]);
  EXPECT_NEAR(target_alignment(k, y), 1.0, 1e-12);
}

TEST(TargetAlignment, IdentityKernelHasLowAlignment) {
  const std::vector<int> y{1, -1, 1, -1, 1, -1};
  RealMatrix k(6, 6);
  for (idx i = 0; i < 6; ++i) k(i, i) = 1.0;
  // <I, yy^T> = n; ||I|| = sqrt(n); ||yy^T|| = n -> alignment = 1/sqrt(n).
  EXPECT_NEAR(target_alignment(k, y), 1.0 / std::sqrt(6.0), 1e-12);
}

TEST(TargetAlignment, LabelPermutationChangesAlignment) {
  const RealMatrix x = random_scaled_data(10, 4, 2);
  const RealMatrix k = gaussian_gram(x, 0.8);
  std::vector<int> y(10);
  for (idx i = 0; i < 10; ++i) y[static_cast<std::size_t>(i)] = i < 5 ? 1 : -1;
  std::vector<int> y_alt = y;
  std::swap(y_alt[0], y_alt[9]);
  EXPECT_NE(target_alignment(k, y), target_alignment(k, y_alt));
}

TEST(Spectrum, FidelityKernelIsPsd) {
  const RealMatrix x = random_scaled_data(8, 5, 3);
  QuantumKernelConfig cfg;
  cfg.ansatz = {.num_features = 5, .layers = 2, .distance = 2, .gamma = 0.8};
  const RealMatrix k = gram_matrix(cfg, x);
  EXPECT_GT(min_eigenvalue(k), -1e-9);
}

TEST(Spectrum, EigenvalueSumEqualsTrace) {
  const RealMatrix x = random_scaled_data(7, 4, 4);
  const RealMatrix k = gaussian_gram(x, 1.0);
  const auto w = kernel_spectrum(k);
  double sum = 0.0;
  for (double v : w) sum += v;
  EXPECT_NEAR(sum, 7.0, 1e-9);  // unit diagonal => trace = n
}

TEST(EffectiveDimension, IdentityKernelUsesAllDirections) {
  RealMatrix k(6, 6);
  for (idx i = 0; i < 6; ++i) k(i, i) = 1.0;
  EXPECT_NEAR(effective_dimension(k), 6.0, 1e-10);
}

TEST(EffectiveDimension, RankOneKernelCollapses) {
  RealMatrix k(5, 5);
  for (idx i = 0; i < 5; ++i)
    for (idx j = 0; j < 5; ++j) k(i, j) = 1.0;
  EXPECT_NEAR(effective_dimension(k), 1.0, 1e-9);
}

TEST(EffectiveDimension, BetweenOneAndN) {
  const RealMatrix x = random_scaled_data(9, 4, 5);
  const RealMatrix k = gaussian_gram(x, 0.5);
  const double d = effective_dimension(k);
  EXPECT_GE(d, 1.0);
  EXPECT_LE(d, 9.0 + 1e-9);
}

}  // namespace
}  // namespace qkmps::kernel
