#include <gtest/gtest.h>

#include <cmath>

#include "circuit/ansatz.hpp"
#include "circuit/statevector.hpp"
#include "mps/gate_application.hpp"
#include "mps/observables.hpp"
#include "mps/simulator.hpp"
#include "test_helpers.hpp"

namespace qkmps::mps {
namespace {

/// <P_q> from the dense statevector as the oracle.
double sv_expectation(const circuit::Statevector& sv, idx q,
                      const cplx p[2][2]) {
  const idx m = sv.num_qubits();
  const idx stride = idx{1} << (m - 1 - q);
  const auto& amps = sv.amplitudes();
  cplx acc = 0.0;
  for (idx i = 0; i < static_cast<idx>(amps.size()); ++i) {
    const idx bit = (i & stride) ? 1 : 0;
    for (idx sp = 0; sp < 2; ++sp) {
      if (p[sp][bit] == cplx(0.0)) continue;
      const idx flipped = (sp == bit) ? i : (i ^ stride);
      acc += std::conj(amps[static_cast<std::size_t>(flipped)]) * p[sp][bit] *
             amps[static_cast<std::size_t>(i)];
    }
  }
  return acc.real();
}

Mps ansatz_state(idx m, std::uint64_t seed, circuit::Circuit* out_circ = nullptr) {
  Rng rng(seed);
  const circuit::AnsatzParams p{.num_features = m, .layers = 2, .distance = 2,
                                .gamma = 0.8};
  const circuit::Circuit c =
      circuit::feature_map_circuit(p, qkmps::testing::random_features(m, rng));
  if (out_circ != nullptr) *out_circ = c;
  MpsSimulator sim;
  return sim.simulate(c).state;
}

TEST(Observables, PlusStateExpectations) {
  Mps psi = Mps::plus_state(4);
  for (idx q = 0; q < 4; ++q) {
    EXPECT_NEAR(expectation_x(psi, q), 1.0, 1e-13);
    EXPECT_NEAR(expectation_y(psi, q), 0.0, 1e-13);
    EXPECT_NEAR(expectation_z(psi, q), 0.0, 1e-13);
  }
}

TEST(Observables, ZeroStateExpectations) {
  Mps psi(3);
  for (idx q = 0; q < 3; ++q) {
    EXPECT_NEAR(expectation_x(psi, q), 0.0, 1e-13);
    EXPECT_NEAR(expectation_z(psi, q), 1.0, 1e-13);
  }
}

TEST(Observables, MatchStatevectorOnEntangledState) {
  circuit::Circuit c(1);
  Mps psi = ansatz_state(6, 1, &c);
  const circuit::Statevector sv = circuit::simulate_statevector(c);

  static const cplx px[2][2] = {{0.0, 1.0}, {1.0, 0.0}};
  static const cplx py[2][2] = {{0.0, cplx(0.0, -1.0)}, {cplx(0.0, 1.0), 0.0}};
  static const cplx pz[2][2] = {{1.0, 0.0}, {0.0, -1.0}};
  for (idx q = 0; q < 6; ++q) {
    EXPECT_NEAR(expectation_x(psi, q), sv_expectation(sv, q, px), 1e-8) << q;
    EXPECT_NEAR(expectation_y(psi, q), sv_expectation(sv, q, py), 1e-8) << q;
    EXPECT_NEAR(expectation_z(psi, q), sv_expectation(sv, q, pz), 1e-8) << q;
  }
}

TEST(Observables, FeatureVectorLayout) {
  Mps psi = ansatz_state(5, 2);
  const auto f = pauli_feature_vector(psi);
  ASSERT_EQ(f.size(), 15u);
  Mps copy = psi;
  EXPECT_NEAR(f[0], expectation_x(copy, 0), 1e-10);
  EXPECT_NEAR(f[3 * 2 + 2], expectation_z(copy, 2), 1e-10);
}

TEST(Observables, ExpectationsAreBounded) {
  Mps psi = ansatz_state(7, 3);
  const auto f = pauli_feature_vector(psi);
  for (double v : f) {
    EXPECT_GE(v, -1.0 - 1e-10);
    EXPECT_LE(v, 1.0 + 1e-10);
  }
}

TEST(Observables, BlochVectorNormAtMostOne) {
  // |<X>|^2 + |<Y>|^2 + |<Z>|^2 <= 1, with equality iff the qubit is pure
  // (unentangled with the rest).
  Mps psi = ansatz_state(6, 4);
  const auto f = pauli_feature_vector(psi);
  for (std::size_t q = 0; q < 6; ++q) {
    const double r2 = f[3 * q] * f[3 * q] + f[3 * q + 1] * f[3 * q + 1] +
                      f[3 * q + 2] * f[3 * q + 2];
    EXPECT_LE(r2, 1.0 + 1e-10);
  }
}

TEST(Observables, ProductStateHasUnitBlochVector) {
  Mps psi = Mps::plus_state(4);
  const auto f = pauli_feature_vector(psi);
  for (std::size_t q = 0; q < 4; ++q) {
    const double r2 = f[3 * q] * f[3 * q] + f[3 * q + 1] * f[3 * q + 1] +
                      f[3 * q + 2] * f[3 * q + 2];
    EXPECT_NEAR(r2, 1.0, 1e-12);
  }
}

TEST(Observables, ZzCorrelatorOnBellPair) {
  // (|00> + |11>)/sqrt(2): <Z_0 Z_1> = 1 while <Z_0> = <Z_1> = 0.
  Mps psi(2);
  apply_single_qubit_gate(psi, circuit::make_h(0).matrix(), 0);
  TruncationConfig trunc;
  // CNOT-like entangler via RXX + single-qubit dressing is overkill; build
  // the Bell state directly as a bond-2 MPS.
  SiteTensor a(1, 2), b(2, 1);
  const double h = 1.0 / std::sqrt(2.0);
  a.at(0, 0, 0) = h;
  a.at(0, 1, 1) = h;
  b.at(0, 0, 0) = 1.0;
  b.at(1, 1, 0) = 1.0;
  psi.site(0) = a;
  psi.site(1) = b;
  psi.set_center(0);

  EXPECT_NEAR(correlation_zz(psi, 0), 1.0, 1e-12);
  EXPECT_NEAR(expectation_z(psi, 0), 0.0, 1e-12);
  EXPECT_NEAR(expectation_z(psi, 1), 0.0, 1e-12);
}

TEST(Observables, ZzFactorizesOnProductStates) {
  Mps psi(3);
  apply_single_qubit_gate(psi, circuit::make_rx(1, 0.7).matrix(), 1);
  Mps copy = psi;
  const double z1 = expectation_z(copy, 1);
  const double z2 = expectation_z(copy, 2);
  EXPECT_NEAR(correlation_zz(psi, 1), z1 * z2, 1e-12);
}

}  // namespace
}  // namespace qkmps::mps
