#include <gtest/gtest.h>

#include <cmath>

#include "circuit/ansatz.hpp"
#include "mps/entanglement.hpp"
#include "mps/simulator.hpp"
#include "test_helpers.hpp"

namespace qkmps::mps {
namespace {

Mps bell_pair() {
  Mps psi(2);
  SiteTensor a(1, 2), b(2, 1);
  const double h = 1.0 / std::sqrt(2.0);
  a.at(0, 0, 0) = h;
  a.at(0, 1, 1) = h;
  b.at(0, 0, 0) = 1.0;
  b.at(1, 1, 0) = 1.0;
  psi.site(0) = a;
  psi.site(1) = b;
  psi.set_center(0);
  return psi;
}

Mps ansatz_state(idx m, idx d, double gamma, std::uint64_t seed) {
  Rng rng(seed);
  const circuit::AnsatzParams p{.num_features = m, .layers = 2, .distance = d,
                                .gamma = gamma};
  MpsSimulator sim;
  return sim
      .simulate(circuit::feature_map_circuit(
          p, qkmps::testing::random_features(m, rng)))
      .state;
}

TEST(Entanglement, ProductStateHasZeroEntropy) {
  const Mps psi = Mps::plus_state(5);
  for (double s : entropy_profile(psi)) EXPECT_NEAR(s, 0.0, 1e-12);
}

TEST(Entanglement, BellPairHasLogTwo) {
  EXPECT_NEAR(entanglement_entropy(bell_pair(), 0), std::log(2.0), 1e-12);
}

TEST(Entanglement, SchmidtValuesOfBellPair) {
  const auto s = schmidt_values(bell_pair(), 0);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_NEAR(s[0], 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(s[1], 1.0 / std::sqrt(2.0), 1e-12);
}

TEST(Entanglement, SchmidtWeightsSumToOne) {
  const Mps psi = ansatz_state(7, 2, 0.9, 1);
  for (idx b = 0; b + 1 < 7; ++b) {
    double total = 0.0;
    for (double v : schmidt_values(psi, b)) total += v * v;
    EXPECT_NEAR(total, 1.0, 1e-9) << "bond " << b;
  }
}

TEST(Entanglement, EntropyBoundedByLogChi) {
  const Mps psi = ansatz_state(8, 3, 1.0, 2);
  for (idx b = 0; b + 1 < 8; ++b) {
    const double s = entanglement_entropy(psi, b);
    EXPECT_LE(s, std::log(static_cast<double>(psi.bond(b))) + 1e-9);
    EXPECT_GE(s, -1e-12);
  }
}

TEST(Entanglement, LargerInteractionDistanceMoreEntanglement) {
  // The paper's resource story: increasing d increases entanglement, which
  // is what drives chi (and hence runtime/memory) up.
  auto max_entropy = [](idx d) {
    const Mps psi = ansatz_state(8, d, 1.0, 3);
    double mx = 0.0;
    for (double s : entropy_profile(psi)) mx = std::max(mx, s);
    return mx;
  };
  EXPECT_GT(max_entropy(3), max_entropy(1));
}

TEST(Entanglement, InvariantUnderCanonicalizationPoint) {
  const Mps psi = ansatz_state(6, 2, 0.8, 4);
  // schmidt_values moves the center internally; calling for different bonds
  // on the same state must be self-consistent with a full profile pass.
  const auto profile = entropy_profile(psi);
  EXPECT_NEAR(profile[2], entanglement_entropy(psi, 2), 1e-10);
}

TEST(Entanglement, PoliciesAgree) {
  const Mps psi = ansatz_state(6, 2, 0.8, 5);
  for (idx b = 0; b + 1 < 6; ++b) {
    EXPECT_NEAR(entanglement_entropy(psi, b, linalg::ExecPolicy::Reference),
                entanglement_entropy(psi, b, linalg::ExecPolicy::Accelerated),
                1e-10);
  }
}

TEST(Entanglement, RejectsInvalidBond) {
  const Mps psi(3);
  EXPECT_THROW(schmidt_values(psi, 2), Error);
  EXPECT_THROW(schmidt_values(psi, -1), Error);
}

}  // namespace
}  // namespace qkmps::mps
