#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/rng.hpp"

namespace qkmps {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(11);
  double s = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) s += rng.uniform();
  EXPECT_NEAR(s / n, 0.5, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  const int n = 200000;
  double s = 0.0, s2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    s += x;
    s2 += x * x;
  }
  EXPECT_NEAR(s / n, 0.0, 0.02);
  EXPECT_NEAR(s2 / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParamsShiftsAndScales) {
  Rng rng(17);
  const int n = 100000;
  double s = 0.0, s2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(3.0, 2.0);
    s += x;
    s2 += x * x;
  }
  const double mean = s / n;
  const double var = s2 / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, UniformIntStaysBelowBound) {
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform_int(17), 17u);
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(23);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntZeroReturnsZero) {
  Rng rng(29);
  EXPECT_EQ(rng.uniform_int(0), 0u);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(31);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (parent.next() == child.next()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, NormalCplxHasIndependentParts) {
  Rng rng(37);
  const int n = 50000;
  double cross = 0.0;
  for (int i = 0; i < n; ++i) {
    const cplx z = rng.normal_cplx();
    cross += z.real() * z.imag();
  }
  EXPECT_NEAR(cross / n, 0.0, 0.02);
}

}  // namespace
}  // namespace qkmps
