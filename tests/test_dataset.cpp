#include <gtest/gtest.h>

#include "data/dataset.hpp"
#include "test_helpers.hpp"

namespace qkmps::data {
namespace {

Dataset make_small() {
  Dataset d;
  d.x = kernel::RealMatrix(4, 3);
  for (idx i = 0; i < 4; ++i)
    for (idx j = 0; j < 3; ++j) d.x(i, j) = static_cast<double>(i * 10 + j);
  d.y = {1, -1, 1, -1};
  return d;
}

TEST(Dataset, CountsClasses) {
  const Dataset d = make_small();
  EXPECT_EQ(d.positives(), 2);
  EXPECT_EQ(d.negatives(), 2);
  EXPECT_EQ(d.size(), 4);
  EXPECT_EQ(d.num_features(), 3);
}

TEST(Dataset, SelectReordersRowsAndLabels) {
  const Dataset d = make_small();
  const Dataset s = d.select({2, 0});
  EXPECT_EQ(s.size(), 2);
  EXPECT_DOUBLE_EQ(s.x(0, 1), 21.0);
  EXPECT_DOUBLE_EQ(s.x(1, 1), 1.0);
  EXPECT_EQ(s.y[0], 1);
  EXPECT_EQ(s.y[1], 1);
}

TEST(Dataset, SelectAllowsRepeats) {
  const Dataset d = make_small();
  const Dataset s = d.select({1, 1, 1});
  EXPECT_EQ(s.size(), 3);
  for (idx i = 0; i < 3; ++i) EXPECT_EQ(s.y[static_cast<std::size_t>(i)], -1);
}

TEST(Dataset, SelectRejectsOutOfRange) {
  const Dataset d = make_small();
  EXPECT_THROW(d.select({4}), Error);
}

TEST(Dataset, WithFeaturesKeepsPrefix) {
  const Dataset d = make_small();
  const Dataset s = d.with_features(2);
  EXPECT_EQ(s.num_features(), 2);
  EXPECT_EQ(s.size(), 4);
  EXPECT_DOUBLE_EQ(s.x(3, 1), 31.0);
  EXPECT_EQ(s.y, d.y);
}

TEST(Dataset, WithFeaturesRejectsInvalidCounts) {
  const Dataset d = make_small();
  EXPECT_THROW(d.with_features(0), Error);
  EXPECT_THROW(d.with_features(4), Error);
}

}  // namespace
}  // namespace qkmps::data
