#include <gtest/gtest.h>

#include <cmath>

#include "circuit/ansatz.hpp"
#include "circuit/statevector.hpp"
#include "mps/gate_application.hpp"
#include "mps/inner_product.hpp"
#include "mps/simulator.hpp"
#include "test_helpers.hpp"

namespace qkmps::mps {
namespace {

struct StatePair {
  Mps mps;
  circuit::Statevector sv;
  StatePair(idx m, std::uint64_t seed, idx d = 2)
      : mps(m), sv(m) {
    Rng rng(seed);
    const circuit::AnsatzParams p{.num_features = m, .layers = 2, .distance = d,
                                  .gamma = 0.8};
    const circuit::Circuit c =
        circuit::feature_map_circuit(p, qkmps::testing::random_features(m, rng));
    MpsSimulator sim;
    mps = sim.simulate(c).state;
    sv.apply(c);
  }
};

TEST(InnerProduct, SelfOverlapIsOne) {
  const StatePair a(6, 1);
  const cplx ip = inner_product(a.mps, a.mps);
  EXPECT_NEAR(ip.real(), 1.0, 1e-10);
  EXPECT_NEAR(ip.imag(), 0.0, 1e-10);
}

TEST(InnerProduct, MatchesStatevector) {
  const StatePair a(7, 2), b(7, 3);
  const cplx expect = a.sv.inner_product(b.sv);
  const cplx got = inner_product(a.mps, b.mps);
  EXPECT_NEAR(std::abs(expect - got), 0.0, 1e-8);
}

TEST(InnerProduct, ConjugateSymmetry) {
  const StatePair a(5, 4), b(5, 5);
  const cplx ab = inner_product(a.mps, b.mps);
  const cplx ba = inner_product(b.mps, a.mps);
  EXPECT_NEAR(std::abs(ab - std::conj(ba)), 0.0, 1e-12);
}

TEST(InnerProduct, OverlapSquaredIsAbsSquare) {
  const StatePair a(5, 6), b(5, 7);
  const cplx ip = inner_product(a.mps, b.mps);
  EXPECT_NEAR(overlap_squared(a.mps, b.mps), std::norm(ip), 1e-14);
}

TEST(InnerProduct, OrthogonalProductStates) {
  Mps zero(3);
  Mps one(3);
  // |111>.
  for (idx q = 0; q < 3; ++q)
    apply_single_qubit_gate(one, circuit::make_x(q).matrix(), q);
  EXPECT_NEAR(std::abs(inner_product(zero, one)), 0.0, 1e-15);
}

TEST(InnerProduct, PoliciesAgree) {
  const StatePair a(6, 8), b(6, 9);
  const cplx r = inner_product(a.mps, b.mps, linalg::ExecPolicy::Reference);
  const cplx acc = inner_product(a.mps, b.mps, linalg::ExecPolicy::Accelerated);
  EXPECT_NEAR(std::abs(r - acc), 0.0, 1e-12);
}

TEST(InnerProduct, MismatchedSitesThrow) {
  Mps a(3), b(4);
  EXPECT_THROW(inner_product(a, b), Error);
}

TEST(InnerProduct, KernelEntryInZeroOneRange) {
  // |<a|b>|^2 of normalized states is a valid kernel entry in [0, 1].
  for (std::uint64_t s = 0; s < 6; ++s) {
    const StatePair a(5, 100 + s), b(5, 200 + s);
    const double k = overlap_squared(a.mps, b.mps);
    EXPECT_GE(k, 0.0);
    EXPECT_LE(k, 1.0 + 1e-12);
  }
}

}  // namespace
}  // namespace qkmps::mps
