#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "linalg/bidiag.hpp"
#include "linalg/qr.hpp"
#include "linalg/gemm.hpp"
#include "linalg/jacobi_svd.hpp"
#include "linalg/norms.hpp"
#include "linalg/svd.hpp"
#include "test_helpers.hpp"

namespace qkmps::linalg {
namespace {

class SvdShapes : public ::testing::TestWithParam<std::pair<idx, idx>> {};

TEST_P(SvdShapes, Reconstructs) {
  const auto [m, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 677 + n));
  const Matrix a = testing::random_matrix(m, n, rng);
  const SvdResult f = svd(a);
  EXPECT_LT(max_abs_diff(testing::reconstruct(f), a), 1e-11);
}

TEST_P(SvdShapes, FactorsAreOrthonormal) {
  const auto [m, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 31 + n * 7));
  const SvdResult f = svd(testing::random_matrix(m, n, rng));
  EXPECT_LT(orthonormality_defect(f.u), 1e-12);
  EXPECT_LT(orthonormality_defect(f.vh.adjoint()), 1e-12);
}

TEST_P(SvdShapes, SingularValuesSortedNonNegative) {
  const auto [m, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 3 + n * 101));
  const SvdResult f = svd(testing::random_matrix(m, n, rng));
  EXPECT_EQ(static_cast<idx>(f.s.size()), std::min(m, n));
  for (std::size_t i = 0; i < f.s.size(); ++i) {
    EXPECT_GE(f.s[i], 0.0);
    if (i > 0) {
      EXPECT_LE(f.s[i], f.s[i - 1]);
    }
  }
}

TEST_P(SvdShapes, AgreesWithJacobiOracle) {
  const auto [m, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 503 + n * 13));
  const Matrix a = testing::random_matrix(m, n, rng);
  const SvdResult qr_based = svd(a);
  const SvdResult oracle = jacobi_svd(a);
  for (std::size_t i = 0; i < qr_based.s.size(); ++i)
    EXPECT_NEAR(qr_based.s[i], oracle.s[i], 1e-10 * (oracle.s[0] + 1.0));
}

INSTANTIATE_TEST_SUITE_P(ShapeSweep, SvdShapes,
                         ::testing::Values(std::make_pair(1, 1),
                                           std::make_pair(2, 2),
                                           std::make_pair(6, 6),
                                           std::make_pair(10, 4),
                                           std::make_pair(4, 10),
                                           std::make_pair(33, 33),
                                           std::make_pair(64, 48),
                                           std::make_pair(48, 64),
                                           std::make_pair(100, 100)));

TEST(Svd, KnownDiagonalMatrix) {
  Matrix a(3, 3);
  a(0, 0) = 1.0;
  a(1, 1) = -5.0;  // sign must land in the factors, not in s
  a(2, 2) = 3.0;
  const SvdResult f = svd(a);
  EXPECT_NEAR(f.s[0], 5.0, 1e-13);
  EXPECT_NEAR(f.s[1], 3.0, 1e-13);
  EXPECT_NEAR(f.s[2], 1.0, 1e-13);
}

TEST(Svd, FrobeniusNormEqualsSingularValueNorm) {
  Rng rng(21);
  const Matrix a = testing::random_matrix(12, 9, rng);
  const SvdResult f = svd(a);
  double ssq = 0.0;
  for (double s : f.s) ssq += s * s;
  EXPECT_NEAR(std::sqrt(ssq), frobenius_norm(a), 1e-11);
}

TEST(Svd, RankDeficientTailIsZero) {
  Rng rng(22);
  // Rank-2 matrix from an outer-product sum.
  const Matrix u = testing::random_matrix(10, 2, rng);
  const Matrix v = testing::random_matrix(2, 7, rng);
  const Matrix a = gemm_reference(u, v);
  const SvdResult f = svd(a);
  for (std::size_t i = 2; i < f.s.size(); ++i) EXPECT_LT(f.s[i], 1e-12 * f.s[0]);
}

TEST(Svd, UnitaryInputHasUnitSingularValues) {
  Rng rng(23);
  const QrResult qr = qr_thin(testing::random_matrix(9, 9, rng));
  const SvdResult f = svd(qr.q);
  for (double s : f.s) EXPECT_NEAR(s, 1.0, 1e-12);
}

TEST(Svd, ZeroMatrix) {
  const SvdResult f = svd(Matrix(4, 3));
  for (double s : f.s) EXPECT_EQ(s, 0.0);
}

TEST(Bidiag, RealBidiagonalForm) {
  Rng rng(24);
  const Matrix a = testing::random_matrix(8, 5, rng);
  const Bidiagonalization bd = bidiagonalize(a);
  EXPECT_EQ(bd.d.size(), 5u);
  EXPECT_EQ(bd.e.size(), 4u);
  // Reassemble U B V^H and compare.
  Matrix b(5, 5);
  for (idx i = 0; i < 5; ++i) {
    b(i, i) = bd.d[static_cast<std::size_t>(i)];
    if (i < 4) b(i, i + 1) = bd.e[static_cast<std::size_t>(i)];
  }
  const Matrix rec = gemm_reference(gemm_reference(bd.u, b), bd.v.adjoint());
  EXPECT_LT(max_abs_diff(rec, a), 1e-12);
  EXPECT_LT(orthonormality_defect(bd.u), 1e-13);
  EXPECT_LT(orthonormality_defect(bd.v), 1e-13);
}

TEST(TruncationRank, KeepsEverythingUnderBudget) {
  const std::vector<double> s{1.0, 0.5, 1e-9, 1e-10};
  // Budget bigger than the tail weight: drop the two tiny values.
  EXPECT_EQ(truncation_rank(s, 1e-17), 2);
}

TEST(TruncationRank, ZeroBudgetKeepsNonzeros) {
  const std::vector<double> s{1.0, 0.5, 0.0, 0.0};
  EXPECT_EQ(truncation_rank(s, 0.0), 2);
}

TEST(TruncationRank, AlwaysKeepsAtLeastOne) {
  const std::vector<double> s{1e-30};
  EXPECT_EQ(truncation_rank(s, 1.0), 1);
}

TEST(TruncationRank, MaxRankCaps) {
  const std::vector<double> s{3.0, 2.0, 1.0};
  EXPECT_EQ(truncation_rank(s, 0.0, 2), 2);
}

TEST(TruncationRank, BudgetIsCumulative) {
  // Each tail value has weight 1e-9; budget 2.5e-9 admits only two of them.
  const std::vector<double> s{1.0, 3.1623e-5, 3.1623e-5, 3.1623e-5};
  EXPECT_EQ(truncation_rank(s, 2.5e-9), 2);
}

TEST(TruncateSvd, ShrinksFactorsConsistently) {
  Rng rng(25);
  const Matrix a = testing::random_matrix(8, 6, rng);
  SvdResult f = svd(a);
  truncate_svd(f, 3);
  EXPECT_EQ(f.u.cols(), 3);
  EXPECT_EQ(f.vh.rows(), 3);
  EXPECT_EQ(f.s.size(), 3u);
  EXPECT_LT(orthonormality_defect(f.u), 1e-12);
}

// --- Degenerate-input regressions --------------------------------------
// The gate-sweep hot path feeds the SVD every theta matrix a circuit can
// produce, including exactly-zero blocks, duplicated columns, and
// amplitude scales far outside [sqrt(DBL_MIN), sqrt(DBL_MAX)]. Each test
// here pins a failure mode that used to produce zero factor columns
// (orthonormality defect 1.0) or collapsed singular values, checked
// against BOTH drivers: the Golub-Kahan fast path and the Jacobi oracle.

void expect_valid_factorization(const Matrix& a, const SvdResult& f,
                                const char* what) {
  EXPECT_LT(orthonormality_defect(f.u), 1e-12) << what;
  EXPECT_LT(orthonormality_defect(f.vh.adjoint()), 1e-12) << what;
  const double scale = f.s.empty() ? 1.0 : f.s[0] + 1.0;
  EXPECT_LT(max_abs_diff(testing::reconstruct(f), a), 1e-11 * scale) << what;
  for (std::size_t i = 0; i < f.s.size(); ++i) {
    EXPECT_TRUE(std::isfinite(f.s[i])) << what;
    EXPECT_GE(f.s[i], 0.0) << what;
    if (i > 0) EXPECT_LE(f.s[i], f.s[i - 1]) << what;
  }
}

class SvdDegenerateShapes
    : public ::testing::TestWithParam<std::pair<idx, idx>> {};

TEST_P(SvdDegenerateShapes, ZeroMatrixFactorsStayOrthonormal) {
  // Used to leave U's null-space columns at zero in the Jacobi driver:
  // every singular value is zero, so no Givens rotation ever touched them.
  const auto [m, n] = GetParam();
  const Matrix a(m, n);
  expect_valid_factorization(a, svd(a), "golub-kahan");
  expect_valid_factorization(a, jacobi_svd(a), "jacobi");
}

TEST_P(SvdDegenerateShapes, DenormalRangeEntries) {
  // Entries near 1e-290: squaring them in Gram terms underflows to zero.
  // Both drivers now rescale into the safe window first, so the singular
  // values survive (scale-equivariance instead of collapse to 0.0).
  const auto [m, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 1009 + n * 17));
  Matrix a = testing::random_matrix(m, n, rng);
  Matrix tiny = a;
  for (idx i = 0; i < m; ++i)
    for (idx j = 0; j < n; ++j) tiny(i, j) *= 1e-290;
  for (const bool jacobi : {false, true}) {
    const SvdResult ref = jacobi ? jacobi_svd(a) : svd(a);
    const SvdResult f = jacobi ? jacobi_svd(tiny) : svd(tiny);
    ASSERT_EQ(f.s.size(), ref.s.size());
    EXPECT_GT(f.s[0], 0.0) << "denormal-range spectrum collapsed";
    for (std::size_t i = 0; i < f.s.size(); ++i)
      EXPECT_NEAR(f.s[i], ref.s[i] * 1e-290, 1e-12 * ref.s[0] * 1e-290);
    EXPECT_LT(orthonormality_defect(f.u), 1e-12);
    EXPECT_LT(orthonormality_defect(f.vh.adjoint()), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(DegenerateShapeSweep, SvdDegenerateShapes,
                         ::testing::Values(std::make_pair(4, 3),
                                           std::make_pair(3, 4),
                                           std::make_pair(1, 5),
                                           std::make_pair(5, 1),
                                           std::make_pair(6, 6)));

TEST(SvdDegenerate, DuplicateAndZeroColumns) {
  // Rank 2 out of 4 columns: col1 repeats col0 and col2 is exactly zero.
  // The tail singular values are exact zeros, so U needs two columns the
  // rotations never produced — they must be completed orthonormally.
  Rng rng(91);
  Matrix a(6, 4);
  for (idx i = 0; i < 6; ++i) {
    a(i, 0) = rng.normal_cplx();
    a(i, 1) = a(i, 0);
    a(i, 3) = rng.normal_cplx();
  }
  expect_valid_factorization(a, svd(a), "golub-kahan");
  expect_valid_factorization(a, jacobi_svd(a), "jacobi");
  const SvdResult f = svd(a);
  const SvdResult oracle = jacobi_svd(a);
  for (std::size_t i = 0; i < f.s.size(); ++i)
    EXPECT_NEAR(f.s[i], oracle.s[i], 1e-12 * (oracle.s[0] + 1.0));
  EXPECT_LT(f.s[2], 1e-13 * f.s[0]);
  EXPECT_LT(f.s[3], 1e-13 * f.s[0]);
}

TEST(SvdDegenerate, RepeatedSingularValues) {
  // A scaled unitary has every singular value equal — the classic case
  // where naive deflation loops forever or mixes degenerate subspaces.
  Rng rng(92);
  const QrResult qr = qr_thin(testing::random_matrix(7, 7, rng));
  Matrix a = qr.q;
  for (idx i = 0; i < 7; ++i)
    for (idx j = 0; j < 7; ++j) a(i, j) *= 3.0;
  for (const SvdResult& f : {svd(a), jacobi_svd(a)}) {
    expect_valid_factorization(a, f, "repeated");
    for (double s : f.s) EXPECT_NEAR(s, 3.0, 1e-12);
  }
}

TEST(SvdDegenerate, ExtremeMagnitudeDiagonal) {
  // Magnitudes around 1e+/-200, where squaring any entry overflows or
  // underflows double. One global rescale handles each regime (it cannot
  // widen the representable *spread* — a spectrum spanning 400 decades is
  // beyond any single scale factor — so each matrix stays within a few
  // decades of its own largest entry, like the gate sweep's thetas do).
  for (const double scale : {1e200, 1e-200}) {
    Matrix a(4, 4);
    a(0, 0) = scale;
    a(1, 1) = scale * 1e-5;
    a(2, 2) = scale * 1e-10;
    a(3, 3) = 0.0;
    for (const SvdResult& f : {svd(a), jacobi_svd(a)}) {
      ASSERT_EQ(f.s.size(), 4u);
      EXPECT_TRUE(std::isfinite(f.s[0]));
      EXPECT_NEAR(f.s[0] / scale, 1.0, 1e-12);
      EXPECT_NEAR(f.s[1] / scale, 1e-5, 1e-12);
      EXPECT_NEAR(f.s[2] / scale, 1e-10, 1e-12);
      EXPECT_EQ(f.s[3], 0.0);
      EXPECT_LT(orthonormality_defect(f.u), 1e-12);
      EXPECT_LT(orthonormality_defect(f.vh.adjoint()), 1e-12);
    }
  }
}

TEST(SvdDegenerate, SingleRowAndSingleColumn) {
  Rng rng(93);
  for (const auto& [m, n] :
       {std::make_pair<idx, idx>(1, 7), std::make_pair<idx, idx>(7, 1)}) {
    const Matrix a = testing::random_matrix(m, n, rng);
    expect_valid_factorization(a, svd(a), "golub-kahan 1d");
    expect_valid_factorization(a, jacobi_svd(a), "jacobi 1d");
  }
}

TEST(TruncateSvd, BestRankKApproximationError) {
  // Eckart-Young: the Frobenius error of the rank-k truncation equals the
  // norm of the dropped singular values.
  Rng rng(26);
  const Matrix a = testing::random_matrix(10, 10, rng);
  SvdResult f = svd(a);
  double tail = 0.0;
  for (std::size_t i = 4; i < f.s.size(); ++i) tail += f.s[i] * f.s[i];
  truncate_svd(f, 4);
  const Matrix approx = testing::reconstruct(f);
  Matrix diff = a;
  diff -= approx;
  EXPECT_NEAR(frobenius_norm_sq(diff), tail, 1e-10 * (tail + 1.0));
}

}  // namespace
}  // namespace qkmps::linalg
