#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "linalg/bidiag.hpp"
#include "linalg/qr.hpp"
#include "linalg/gemm.hpp"
#include "linalg/jacobi_svd.hpp"
#include "linalg/norms.hpp"
#include "linalg/svd.hpp"
#include "test_helpers.hpp"

namespace qkmps::linalg {
namespace {

class SvdShapes : public ::testing::TestWithParam<std::pair<idx, idx>> {};

TEST_P(SvdShapes, Reconstructs) {
  const auto [m, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 677 + n));
  const Matrix a = testing::random_matrix(m, n, rng);
  const SvdResult f = svd(a);
  EXPECT_LT(max_abs_diff(testing::reconstruct(f), a), 1e-11);
}

TEST_P(SvdShapes, FactorsAreOrthonormal) {
  const auto [m, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 31 + n * 7));
  const SvdResult f = svd(testing::random_matrix(m, n, rng));
  EXPECT_LT(orthonormality_defect(f.u), 1e-12);
  EXPECT_LT(orthonormality_defect(f.vh.adjoint()), 1e-12);
}

TEST_P(SvdShapes, SingularValuesSortedNonNegative) {
  const auto [m, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 3 + n * 101));
  const SvdResult f = svd(testing::random_matrix(m, n, rng));
  EXPECT_EQ(static_cast<idx>(f.s.size()), std::min(m, n));
  for (std::size_t i = 0; i < f.s.size(); ++i) {
    EXPECT_GE(f.s[i], 0.0);
    if (i > 0) {
      EXPECT_LE(f.s[i], f.s[i - 1]);
    }
  }
}

TEST_P(SvdShapes, AgreesWithJacobiOracle) {
  const auto [m, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 503 + n * 13));
  const Matrix a = testing::random_matrix(m, n, rng);
  const SvdResult qr_based = svd(a);
  const SvdResult oracle = jacobi_svd(a);
  for (std::size_t i = 0; i < qr_based.s.size(); ++i)
    EXPECT_NEAR(qr_based.s[i], oracle.s[i], 1e-10 * (oracle.s[0] + 1.0));
}

INSTANTIATE_TEST_SUITE_P(ShapeSweep, SvdShapes,
                         ::testing::Values(std::make_pair(1, 1),
                                           std::make_pair(2, 2),
                                           std::make_pair(6, 6),
                                           std::make_pair(10, 4),
                                           std::make_pair(4, 10),
                                           std::make_pair(33, 33),
                                           std::make_pair(64, 48),
                                           std::make_pair(48, 64),
                                           std::make_pair(100, 100)));

TEST(Svd, KnownDiagonalMatrix) {
  Matrix a(3, 3);
  a(0, 0) = 1.0;
  a(1, 1) = -5.0;  // sign must land in the factors, not in s
  a(2, 2) = 3.0;
  const SvdResult f = svd(a);
  EXPECT_NEAR(f.s[0], 5.0, 1e-13);
  EXPECT_NEAR(f.s[1], 3.0, 1e-13);
  EXPECT_NEAR(f.s[2], 1.0, 1e-13);
}

TEST(Svd, FrobeniusNormEqualsSingularValueNorm) {
  Rng rng(21);
  const Matrix a = testing::random_matrix(12, 9, rng);
  const SvdResult f = svd(a);
  double ssq = 0.0;
  for (double s : f.s) ssq += s * s;
  EXPECT_NEAR(std::sqrt(ssq), frobenius_norm(a), 1e-11);
}

TEST(Svd, RankDeficientTailIsZero) {
  Rng rng(22);
  // Rank-2 matrix from an outer-product sum.
  const Matrix u = testing::random_matrix(10, 2, rng);
  const Matrix v = testing::random_matrix(2, 7, rng);
  const Matrix a = gemm_reference(u, v);
  const SvdResult f = svd(a);
  for (std::size_t i = 2; i < f.s.size(); ++i) EXPECT_LT(f.s[i], 1e-12 * f.s[0]);
}

TEST(Svd, UnitaryInputHasUnitSingularValues) {
  Rng rng(23);
  const QrResult qr = qr_thin(testing::random_matrix(9, 9, rng));
  const SvdResult f = svd(qr.q);
  for (double s : f.s) EXPECT_NEAR(s, 1.0, 1e-12);
}

TEST(Svd, ZeroMatrix) {
  const SvdResult f = svd(Matrix(4, 3));
  for (double s : f.s) EXPECT_EQ(s, 0.0);
}

TEST(Bidiag, RealBidiagonalForm) {
  Rng rng(24);
  const Matrix a = testing::random_matrix(8, 5, rng);
  const Bidiagonalization bd = bidiagonalize(a);
  EXPECT_EQ(bd.d.size(), 5u);
  EXPECT_EQ(bd.e.size(), 4u);
  // Reassemble U B V^H and compare.
  Matrix b(5, 5);
  for (idx i = 0; i < 5; ++i) {
    b(i, i) = bd.d[static_cast<std::size_t>(i)];
    if (i < 4) b(i, i + 1) = bd.e[static_cast<std::size_t>(i)];
  }
  const Matrix rec = gemm_reference(gemm_reference(bd.u, b), bd.v.adjoint());
  EXPECT_LT(max_abs_diff(rec, a), 1e-12);
  EXPECT_LT(orthonormality_defect(bd.u), 1e-13);
  EXPECT_LT(orthonormality_defect(bd.v), 1e-13);
}

TEST(TruncationRank, KeepsEverythingUnderBudget) {
  const std::vector<double> s{1.0, 0.5, 1e-9, 1e-10};
  // Budget bigger than the tail weight: drop the two tiny values.
  EXPECT_EQ(truncation_rank(s, 1e-17), 2);
}

TEST(TruncationRank, ZeroBudgetKeepsNonzeros) {
  const std::vector<double> s{1.0, 0.5, 0.0, 0.0};
  EXPECT_EQ(truncation_rank(s, 0.0), 2);
}

TEST(TruncationRank, AlwaysKeepsAtLeastOne) {
  const std::vector<double> s{1e-30};
  EXPECT_EQ(truncation_rank(s, 1.0), 1);
}

TEST(TruncationRank, MaxRankCaps) {
  const std::vector<double> s{3.0, 2.0, 1.0};
  EXPECT_EQ(truncation_rank(s, 0.0, 2), 2);
}

TEST(TruncationRank, BudgetIsCumulative) {
  // Each tail value has weight 1e-9; budget 2.5e-9 admits only two of them.
  const std::vector<double> s{1.0, 3.1623e-5, 3.1623e-5, 3.1623e-5};
  EXPECT_EQ(truncation_rank(s, 2.5e-9), 2);
}

TEST(TruncateSvd, ShrinksFactorsConsistently) {
  Rng rng(25);
  const Matrix a = testing::random_matrix(8, 6, rng);
  SvdResult f = svd(a);
  truncate_svd(f, 3);
  EXPECT_EQ(f.u.cols(), 3);
  EXPECT_EQ(f.vh.rows(), 3);
  EXPECT_EQ(f.s.size(), 3u);
  EXPECT_LT(orthonormality_defect(f.u), 1e-12);
}

TEST(TruncateSvd, BestRankKApproximationError) {
  // Eckart-Young: the Frobenius error of the rank-k truncation equals the
  // norm of the dropped singular values.
  Rng rng(26);
  const Matrix a = testing::random_matrix(10, 10, rng);
  SvdResult f = svd(a);
  double tail = 0.0;
  for (std::size_t i = 4; i < f.s.size(); ++i) tail += f.s[i] * f.s[i];
  truncate_svd(f, 4);
  const Matrix approx = testing::reconstruct(f);
  Matrix diff = a;
  diff -= approx;
  EXPECT_NEAR(frobenius_norm_sq(diff), tail, 1e-10 * (tail + 1.0));
}

}  // namespace
}  // namespace qkmps::linalg
