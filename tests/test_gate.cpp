#include <gtest/gtest.h>

#include <cmath>

#include "circuit/gate.hpp"
#include "linalg/gemm.hpp"
#include "linalg/norms.hpp"

namespace qkmps::circuit {
namespace {

double unitarity_defect(const linalg::Matrix& u) {
  const linalg::Matrix g =
      linalg::gemm(u, u, linalg::ExecPolicy::Reference, linalg::Op::ConjT,
                   linalg::Op::None);
  linalg::Matrix eye = linalg::Matrix::identity(u.cols());
  return linalg::max_abs_diff(g, eye);
}

TEST(Gate, AllKindsAreUnitary) {
  const std::vector<Gate> gates = {
      make_h(0),        make_x(0),        make_z(0),
      make_rz(0, 0.73), make_rx(0, -1.2), make_rxx(0, 1, 2.1),
      make_swap(0, 1)};
  for (const Gate& g : gates) {
    EXPECT_LT(unitarity_defect(g.matrix()), 1e-14) << g.name();
  }
}

TEST(Gate, HadamardSquaresToIdentity) {
  const linalg::Matrix h = make_h(0).matrix();
  const linalg::Matrix hh = linalg::gemm_reference(h, h);
  EXPECT_LT(linalg::max_abs_diff(hh, linalg::Matrix::identity(2)), 1e-14);
}

TEST(Gate, RzIsDiagonalWithHalfAngles) {
  const linalg::Matrix m = make_rz(0, 1.0).matrix();
  EXPECT_EQ(m(0, 1), cplx(0.0));
  EXPECT_EQ(m(1, 0), cplx(0.0));
  EXPECT_NEAR(std::arg(m(0, 0)), -0.5, 1e-14);
  EXPECT_NEAR(std::arg(m(1, 1)), 0.5, 1e-14);
}

TEST(Gate, ZeroAngleRotationsAreIdentity) {
  for (const Gate& g : {make_rz(0, 0.0), make_rx(0, 0.0)}) {
    EXPECT_LT(linalg::max_abs_diff(g.matrix(), linalg::Matrix::identity(2)),
              1e-15);
  }
  EXPECT_LT(linalg::max_abs_diff(make_rxx(0, 1, 0.0).matrix(),
                                 linalg::Matrix::identity(4)),
            1e-15);
}

TEST(Gate, RxxAtPiIsMinusIXX) {
  // RXX(pi) = -i XX up to the matrix entries: cos(pi/2)=0, sin(pi/2)=1.
  const linalg::Matrix m = make_rxx(0, 1, kPi).matrix();
  EXPECT_NEAR(std::abs(m(0, 0)), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(m(0, 3) - cplx(0.0, -1.0)), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(m(1, 2) - cplx(0.0, -1.0)), 0.0, 1e-15);
}

TEST(Gate, RxxIsSymmetricUnderQubitExchange) {
  // XX is invariant when the two qubits swap; the matrix must commute with
  // the SWAP permutation.
  const linalg::Matrix m = make_rxx(0, 1, 0.9).matrix();
  const linalg::Matrix s = make_swap(0, 1).matrix();
  const linalg::Matrix sm = linalg::gemm_reference(s, m);
  const linalg::Matrix ms = linalg::gemm_reference(m, s);
  EXPECT_LT(linalg::max_abs_diff(sm, ms), 1e-14);
}

TEST(Gate, RotationsCompose) {
  const linalg::Matrix a = make_rz(0, 0.4).matrix();
  const linalg::Matrix b = make_rz(0, 0.6).matrix();
  const linalg::Matrix ab = linalg::gemm_reference(a, b);
  EXPECT_LT(linalg::max_abs_diff(ab, make_rz(0, 1.0).matrix()), 1e-14);
}

TEST(Gate, RxxGatesCommuteOnSharedQubit) {
  // Structural basis of the depth scheduler: RXX gates share the XX
  // eigenbasis, so 4x4 blocks on the same pair commute.
  const linalg::Matrix a = make_rxx(0, 1, 0.8).matrix();
  const linalg::Matrix b = make_rxx(0, 1, 1.3).matrix();
  EXPECT_LT(linalg::max_abs_diff(linalg::gemm_reference(a, b),
                                 linalg::gemm_reference(b, a)),
            1e-14);
}

TEST(Gate, SwapMatrixPermutesBasis) {
  const linalg::Matrix s = make_swap(0, 1).matrix();
  EXPECT_EQ(s(0, 0), cplx(1.0));
  EXPECT_EQ(s(1, 2), cplx(1.0));
  EXPECT_EQ(s(2, 1), cplx(1.0));
  EXPECT_EQ(s(3, 3), cplx(1.0));
  EXPECT_EQ(s(1, 1), cplx(0.0));
}

TEST(Gate, TwoQubitPredicate) {
  EXPECT_FALSE(make_h(0).is_two_qubit());
  EXPECT_TRUE(make_rxx(0, 3, 0.1).is_two_qubit());
  EXPECT_TRUE(make_swap(2, 1).is_two_qubit());
}

TEST(Gate, ConstructorsRejectDegeneratePairs) {
  EXPECT_THROW(make_rxx(1, 1, 0.5), Error);
  EXPECT_THROW(make_swap(0, 0), Error);
}

}  // namespace
}  // namespace qkmps::circuit
