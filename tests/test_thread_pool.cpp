#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "util/error.hpp"

namespace qkmps::parallel {
namespace {

TEST(ThreadPool, RunsSubmittedTask) {
  ThreadPool pool(2);
  std::atomic<int> hits{0};
  pool.submit([&] { ++hits; }).get();
  EXPECT_EQ(hits.load(), 1);
}

TEST(ThreadPool, RunsManyTasks) {
  ThreadPool pool(4);
  std::atomic<int> hits{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i) futs.push_back(pool.submit([&] { ++hits; }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(hits.load(), 100);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> touched(257);
  pool.parallel_for(257, [&](std::size_t i) { ++touched[i]; });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ParallelForSingleElement) {
  ThreadPool pool(4);
  std::atomic<int> hits{0};
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++hits;
  });
  EXPECT_EQ(hits.load(), 1);
}

TEST(ThreadPool, TaskExceptionSurfacesThroughFuture) {
  ThreadPool pool(1);
  auto fut = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, SizeReportsWorkerCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, RejectsZeroWorkers) { EXPECT_THROW(ThreadPool(0), Error); }

TEST(ThreadPool, ParallelForComputesCorrectSum) {
  ThreadPool pool(2);
  std::vector<double> values(1000);
  pool.parallel_for(values.size(), [&](std::size_t i) {
    values[i] = static_cast<double>(i);
  });
  const double sum = std::accumulate(values.begin(), values.end(), 0.0);
  EXPECT_DOUBLE_EQ(sum, 999.0 * 1000.0 / 2.0);
}

TEST(ThreadPool, ParallelForPropagatesWorkerException) {
  // Exceptions in fn are a designed path (the serving engine forwards
  // them to request futures): parallel_for must join every lane before
  // unwinding, rethrow the first error, and leave the pool usable.
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(200,
                                 [](std::size_t i) {
                                   if (i == 13) throw Error("boom");
                                 }),
               Error);
  std::atomic<int> hits{0};
  pool.parallel_for(50, [&](std::size_t) { ++hits; });
  EXPECT_EQ(hits.load(), 50);
}

TEST(ThreadPool, ParallelForStopsHandingOutIndicesAfterError) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.parallel_for(1'000'000,
                                 [&](std::size_t) {
                                   ++ran;
                                   throw Error("first index fails");
                                 }),
               Error);
  // Each lane aborts on its first failure; the vast majority of the
  // index space is never dispatched.
  EXPECT_LE(ran.load(), 4);
}

}  // namespace
}  // namespace qkmps::parallel
