#include <gtest/gtest.h>

#include <cmath>

#include "circuit/routing.hpp"
#include "circuit/statevector.hpp"
#include "test_helpers.hpp"

namespace qkmps::circuit {
namespace {

double state_diff(const Statevector& a, const Statevector& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.amplitudes().size(); ++i)
    m = std::max(m, std::abs(a.amplitudes()[i] - b.amplitudes()[i]));
  return m;
}

TEST(Routing, AdjacentGatesPassThrough) {
  Circuit c(4);
  c.h(0);
  c.rxx(1, 2, 0.7);
  const Circuit r = route_to_chain(c);
  EXPECT_EQ(r.size(), c.size());
}

TEST(Routing, SwapCountIs2KMinus2) {
  // Sec. II-C: distance-k RXX needs 2(k-1) SWAPs.
  for (idx k = 2; k <= 5; ++k) {
    Circuit c(8);
    c.rxx(0, k, 0.5);
    const Circuit r = route_to_chain(c);
    EXPECT_EQ(r.size(), 1 + 2 * (k - 1)) << "k=" << k;
    EXPECT_EQ(routing_swap_count(c), 2 * (k - 1));
  }
}

TEST(Routing, RoutedCircuitIsNearestNeighbour) {
  Circuit c(7);
  c.rxx(0, 6, 0.3);
  c.rxx(2, 5, 0.9);
  const Circuit r = route_to_chain(c);
  EXPECT_TRUE(r.is_nearest_neighbour());
}

TEST(Routing, PreservesUnitarySingleGate) {
  Rng rng(1);
  for (idx span = 2; span <= 5; ++span) {
    Circuit c(6);
    for (idx q = 0; q < 6; ++q) c.h(q);
    c.rxx(1, 1 + span > 5 ? 5 : 1 + span, 1.234);
    const Circuit r = route_to_chain(c);
    EXPECT_LT(state_diff(simulate_statevector(c), simulate_statevector(r)),
              1e-13);
  }
}

TEST(Routing, PreservesUnitaryComposite) {
  // Interleave single- and two-qubit gates across distances; the routed
  // circuit must compute the identical state.
  Rng rng(2);
  Circuit c(6);
  for (idx q = 0; q < 6; ++q) c.h(q);
  c.rxx(0, 3, 0.21);
  c.rz(2, 1.1);
  c.rxx(5, 1, -0.77);  // reversed operand order
  c.rx(4, 0.4);
  c.rxx(2, 4, 0.35);
  const Circuit r = route_to_chain(c);
  EXPECT_TRUE(r.is_nearest_neighbour());
  EXPECT_LT(state_diff(simulate_statevector(c), simulate_statevector(r)), 1e-13);
}

TEST(Routing, QubitPositionsRestoredBetweenGates) {
  // Two long-range gates sharing a qubit: if SWAPs were not undone, the
  // second gate would act on the wrong logical qubit.
  Circuit c(5);
  c.h(0);
  c.x(4);
  c.rxx(0, 4, 0.9);
  c.rxx(0, 2, 0.4);
  const Circuit r = route_to_chain(c);
  EXPECT_LT(state_diff(simulate_statevector(c), simulate_statevector(r)), 1e-13);
}

TEST(Routing, SwapCountAccumulatesOverGates) {
  Circuit c(10);
  c.rxx(0, 4, 0.1);  // 6 swaps
  c.rxx(1, 3, 0.1);  // 2 swaps
  c.rxx(5, 6, 0.1);  // 0 swaps
  EXPECT_EQ(routing_swap_count(c), 8);
}

}  // namespace
}  // namespace qkmps::circuit
