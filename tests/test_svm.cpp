#include <gtest/gtest.h>

#include <cmath>

#include "kernel/gaussian.hpp"
#include "svm/svm.hpp"
#include "test_helpers.hpp"

namespace qkmps::svm {
namespace {

/// Linear kernel on 2-D points.
kernel::RealMatrix linear_kernel(const std::vector<std::array<double, 2>>& pts) {
  const idx n = static_cast<idx>(pts.size());
  kernel::RealMatrix k(n, n);
  for (idx i = 0; i < n; ++i)
    for (idx j = 0; j < n; ++j)
      k(i, j) = pts[static_cast<std::size_t>(i)][0] * pts[static_cast<std::size_t>(j)][0] +
                pts[static_cast<std::size_t>(i)][1] * pts[static_cast<std::size_t>(j)][1];
  return k;
}

TEST(Svm, SeparatesTrivialProblem) {
  // Two well-separated clusters on the x-axis.
  const std::vector<std::array<double, 2>> pts{
      {2.0, 0.1}, {2.5, -0.2}, {3.0, 0.3}, {-2.0, 0.2}, {-2.5, 0.1}, {-3.0, -0.1}};
  const std::vector<int> y{1, 1, 1, -1, -1, -1};
  const SvcModel m = train_svc(linear_kernel(pts), y, {.c = 1.0, .tol = 1e-4});
  EXPECT_TRUE(m.converged);
  EXPECT_EQ(m.predict(linear_kernel(pts)), y);
}

TEST(Svm, AlphaStaysInBox) {
  Rng rng(1);
  const idx n = 30;
  kernel::RealMatrix x(n, 3);
  std::vector<int> y(static_cast<std::size_t>(n));
  for (idx i = 0; i < n; ++i) {
    y[static_cast<std::size_t>(i)] = (i % 2 == 0) ? 1 : -1;
    for (idx j = 0; j < 3; ++j)
      x(i, j) = rng.normal() + (y[static_cast<std::size_t>(i)] == 1 ? 0.5 : -0.5);
  }
  const kernel::RealMatrix k = kernel::gaussian_gram(x, 0.5);
  const double c = 0.7;
  const SvcModel m = train_svc(k, y, {.c = c, .tol = 1e-3});
  for (double a : m.alpha) {
    EXPECT_GE(a, -1e-12);
    EXPECT_LE(a, c + 1e-12);
  }
}

TEST(Svm, EqualityConstraintHolds) {
  Rng rng(2);
  const idx n = 24;
  kernel::RealMatrix x(n, 2);
  std::vector<int> y(static_cast<std::size_t>(n));
  for (idx i = 0; i < n; ++i) {
    y[static_cast<std::size_t>(i)] = (i < n / 2) ? 1 : -1;
    for (idx j = 0; j < 2; ++j)
      x(i, j) = rng.normal() + (y[static_cast<std::size_t>(i)] == 1 ? 1.0 : -1.0);
  }
  const SvcModel m = train_svc(kernel::gaussian_gram(x, 1.0), y, {.c = 2.0});
  double dot = 0.0;
  for (std::size_t i = 0; i < m.alpha.size(); ++i)
    dot += m.alpha[i] * static_cast<double>(y[i]);
  EXPECT_NEAR(dot, 0.0, 1e-10);
}

TEST(Svm, FreeSupportVectorsSitOnMargin) {
  Rng rng(3);
  const idx n = 40;
  kernel::RealMatrix x(n, 2);
  std::vector<int> y(static_cast<std::size_t>(n));
  for (idx i = 0; i < n; ++i) {
    y[static_cast<std::size_t>(i)] = (i % 2 == 0) ? 1 : -1;
    for (idx j = 0; j < 2; ++j)
      x(i, j) = rng.normal() + (y[static_cast<std::size_t>(i)] == 1 ? 0.8 : -0.8);
  }
  const kernel::RealMatrix k = kernel::gaussian_gram(x, 0.7);
  const double c = 1.5;
  const SvcModel m = train_svc(k, y, {.c = c, .tol = 1e-5});
  const auto f = m.decision_values(k);
  for (idx i = 0; i < n; ++i) {
    const double a = m.alpha[static_cast<std::size_t>(i)];
    if (a > 1e-8 && a < c - 1e-8) {
      EXPECT_NEAR(static_cast<double>(y[static_cast<std::size_t>(i)]) *
                      f[static_cast<std::size_t>(i)],
                  1.0, 5e-3);
    }
  }
}

TEST(Svm, LargerCReducesMarginViolations) {
  Rng rng(4);
  const idx n = 60;
  kernel::RealMatrix x(n, 2);
  std::vector<int> y(static_cast<std::size_t>(n));
  for (idx i = 0; i < n; ++i) {
    y[static_cast<std::size_t>(i)] = (i % 2 == 0) ? 1 : -1;
    for (idx j = 0; j < 2; ++j)
      x(i, j) = rng.normal() + (y[static_cast<std::size_t>(i)] == 1 ? 0.6 : -0.6);
  }
  const kernel::RealMatrix k = kernel::gaussian_gram(x, 1.0);
  const SvcModel weak = train_svc(k, y, {.c = 0.01});
  const SvcModel strong = train_svc(k, y, {.c = 4.0});

  auto train_errors = [&](const SvcModel& m) {
    const auto pred = m.predict(k);
    idx errs = 0;
    for (idx i = 0; i < n; ++i)
      if (pred[static_cast<std::size_t>(i)] != y[static_cast<std::size_t>(i)]) ++errs;
    return errs;
  };
  EXPECT_LE(train_errors(strong), train_errors(weak));
}

TEST(Svm, InseparableDataStillConverges) {
  // Identical points with conflicting labels: fully inseparable.
  kernel::RealMatrix k(4, 4);
  for (idx i = 0; i < 4; ++i)
    for (idx j = 0; j < 4; ++j) k(i, j) = 1.0;
  const SvcModel m = train_svc(k, {1, -1, 1, -1}, {.c = 1.0});
  EXPECT_TRUE(m.converged);
}

TEST(Svm, DecisionValuesLinearInKernelRows) {
  const std::vector<std::array<double, 2>> pts{{1.0, 0.0}, {-1.0, 0.0}};
  const std::vector<int> y{1, -1};
  const SvcModel m = train_svc(linear_kernel(pts), y, {.c = 10.0, .tol = 1e-6});
  // Test point at the origin: decision value must be ~0 by symmetry.
  kernel::RealMatrix ktest(1, 2);
  ktest(0, 0) = 0.0;
  ktest(0, 1) = 0.0;
  EXPECT_NEAR(m.decision_values(ktest)[0], 0.0, 1e-3);
}

TEST(Svm, SupportVectorCount) {
  const std::vector<std::array<double, 2>> pts{
      {2.0, 0.0}, {3.0, 0.0}, {-2.0, 0.0}, {-3.0, 0.0}};
  const std::vector<int> y{1, 1, -1, -1};
  const SvcModel m = train_svc(linear_kernel(pts), y, {.c = 100.0, .tol = 1e-6});
  // Only the two inner points support the margin.
  EXPECT_LE(m.support_vector_count(), 2);
  EXPECT_GE(m.support_vector_count(), 1);
}

TEST(Svm, RejectsBadLabels) {
  kernel::RealMatrix k(2, 2);
  k(0, 0) = k(1, 1) = 1.0;
  EXPECT_THROW(train_svc(k, {1, 0}, {.c = 1.0}), Error);
}

TEST(Svm, RejectsNonSquareKernel) {
  kernel::RealMatrix k(2, 3);
  EXPECT_THROW(train_svc(k, {1, -1}, {.c = 1.0}), Error);
}

TEST(Svm, RejectsNonPositiveC) {
  kernel::RealMatrix k(2, 2);
  EXPECT_THROW(train_svc(k, {1, -1}, {.c = 0.0}), Error);
}

}  // namespace
}  // namespace qkmps::svm
