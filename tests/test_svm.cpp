#include <gtest/gtest.h>

#include <cmath>

#include "kernel/gaussian.hpp"
#include "svm/svm.hpp"
#include "test_helpers.hpp"

namespace qkmps::svm {
namespace {

/// Linear kernel on 2-D points.
kernel::RealMatrix linear_kernel(const std::vector<std::array<double, 2>>& pts) {
  const idx n = static_cast<idx>(pts.size());
  kernel::RealMatrix k(n, n);
  for (idx i = 0; i < n; ++i)
    for (idx j = 0; j < n; ++j)
      k(i, j) = pts[static_cast<std::size_t>(i)][0] * pts[static_cast<std::size_t>(j)][0] +
                pts[static_cast<std::size_t>(i)][1] * pts[static_cast<std::size_t>(j)][1];
  return k;
}

TEST(Svm, SeparatesTrivialProblem) {
  // Two well-separated clusters on the x-axis.
  const std::vector<std::array<double, 2>> pts{
      {2.0, 0.1}, {2.5, -0.2}, {3.0, 0.3}, {-2.0, 0.2}, {-2.5, 0.1}, {-3.0, -0.1}};
  const std::vector<int> y{1, 1, 1, -1, -1, -1};
  const SvcModel m = train_svc(linear_kernel(pts), y, {.c = 1.0, .tol = 1e-4});
  EXPECT_TRUE(m.converged);
  EXPECT_EQ(m.predict(linear_kernel(pts)), y);
}

TEST(Svm, AlphaStaysInBox) {
  Rng rng(1);
  const idx n = 30;
  kernel::RealMatrix x(n, 3);
  std::vector<int> y(static_cast<std::size_t>(n));
  for (idx i = 0; i < n; ++i) {
    y[static_cast<std::size_t>(i)] = (i % 2 == 0) ? 1 : -1;
    for (idx j = 0; j < 3; ++j)
      x(i, j) = rng.normal() + (y[static_cast<std::size_t>(i)] == 1 ? 0.5 : -0.5);
  }
  const kernel::RealMatrix k = kernel::gaussian_gram(x, 0.5);
  const double c = 0.7;
  const SvcModel m = train_svc(k, y, {.c = c, .tol = 1e-3});
  for (double a : m.alpha) {
    EXPECT_GE(a, -1e-12);
    EXPECT_LE(a, c + 1e-12);
  }
}

TEST(Svm, EqualityConstraintHolds) {
  Rng rng(2);
  const idx n = 24;
  kernel::RealMatrix x(n, 2);
  std::vector<int> y(static_cast<std::size_t>(n));
  for (idx i = 0; i < n; ++i) {
    y[static_cast<std::size_t>(i)] = (i < n / 2) ? 1 : -1;
    for (idx j = 0; j < 2; ++j)
      x(i, j) = rng.normal() + (y[static_cast<std::size_t>(i)] == 1 ? 1.0 : -1.0);
  }
  const SvcModel m = train_svc(kernel::gaussian_gram(x, 1.0), y, {.c = 2.0});
  double dot = 0.0;
  for (std::size_t i = 0; i < m.alpha.size(); ++i)
    dot += m.alpha[i] * static_cast<double>(y[i]);
  EXPECT_NEAR(dot, 0.0, 1e-10);
}

TEST(Svm, FreeSupportVectorsSitOnMargin) {
  Rng rng(3);
  const idx n = 40;
  kernel::RealMatrix x(n, 2);
  std::vector<int> y(static_cast<std::size_t>(n));
  for (idx i = 0; i < n; ++i) {
    y[static_cast<std::size_t>(i)] = (i % 2 == 0) ? 1 : -1;
    for (idx j = 0; j < 2; ++j)
      x(i, j) = rng.normal() + (y[static_cast<std::size_t>(i)] == 1 ? 0.8 : -0.8);
  }
  const kernel::RealMatrix k = kernel::gaussian_gram(x, 0.7);
  const double c = 1.5;
  const SvcModel m = train_svc(k, y, {.c = c, .tol = 1e-5});
  const auto f = m.decision_values(k);
  for (idx i = 0; i < n; ++i) {
    const double a = m.alpha[static_cast<std::size_t>(i)];
    if (a > 1e-8 && a < c - 1e-8) {
      EXPECT_NEAR(static_cast<double>(y[static_cast<std::size_t>(i)]) *
                      f[static_cast<std::size_t>(i)],
                  1.0, 5e-3);
    }
  }
}

TEST(Svm, LargerCReducesMarginViolations) {
  Rng rng(4);
  const idx n = 60;
  kernel::RealMatrix x(n, 2);
  std::vector<int> y(static_cast<std::size_t>(n));
  for (idx i = 0; i < n; ++i) {
    y[static_cast<std::size_t>(i)] = (i % 2 == 0) ? 1 : -1;
    for (idx j = 0; j < 2; ++j)
      x(i, j) = rng.normal() + (y[static_cast<std::size_t>(i)] == 1 ? 0.6 : -0.6);
  }
  const kernel::RealMatrix k = kernel::gaussian_gram(x, 1.0);
  const SvcModel weak = train_svc(k, y, {.c = 0.01});
  const SvcModel strong = train_svc(k, y, {.c = 4.0});

  auto train_errors = [&](const SvcModel& m) {
    const auto pred = m.predict(k);
    idx errs = 0;
    for (idx i = 0; i < n; ++i)
      if (pred[static_cast<std::size_t>(i)] != y[static_cast<std::size_t>(i)]) ++errs;
    return errs;
  };
  EXPECT_LE(train_errors(strong), train_errors(weak));
}

TEST(Svm, InseparableDataStillConverges) {
  // Identical points with conflicting labels: fully inseparable.
  kernel::RealMatrix k(4, 4);
  for (idx i = 0; i < 4; ++i)
    for (idx j = 0; j < 4; ++j) k(i, j) = 1.0;
  const SvcModel m = train_svc(k, {1, -1, 1, -1}, {.c = 1.0});
  EXPECT_TRUE(m.converged);
}

TEST(Svm, DecisionValuesLinearInKernelRows) {
  const std::vector<std::array<double, 2>> pts{{1.0, 0.0}, {-1.0, 0.0}};
  const std::vector<int> y{1, -1};
  const SvcModel m = train_svc(linear_kernel(pts), y, {.c = 10.0, .tol = 1e-6});
  // Test point at the origin: decision value must be ~0 by symmetry.
  kernel::RealMatrix ktest(1, 2);
  ktest(0, 0) = 0.0;
  ktest(0, 1) = 0.0;
  EXPECT_NEAR(m.decision_values(ktest)[0], 0.0, 1e-3);
}

TEST(Svm, SupportVectorCount) {
  const std::vector<std::array<double, 2>> pts{
      {2.0, 0.0}, {3.0, 0.0}, {-2.0, 0.0}, {-3.0, 0.0}};
  const std::vector<int> y{1, 1, -1, -1};
  const SvcModel m = train_svc(linear_kernel(pts), y, {.c = 100.0, .tol = 1e-6});
  // Only the two inner points support the margin.
  EXPECT_LE(m.support_vector_count(), 2);
  EXPECT_GE(m.support_vector_count(), 1);
}

TEST(Svm, RejectsBadLabels) {
  kernel::RealMatrix k(2, 2);
  k(0, 0) = k(1, 1) = 1.0;
  EXPECT_THROW(train_svc(k, {1, 0}, {.c = 1.0}), Error);
}

TEST(Svm, RejectsNonSquareKernel) {
  kernel::RealMatrix k(2, 3);
  EXPECT_THROW(train_svc(k, {1, -1}, {.c = 1.0}), Error);
}

TEST(Svm, RejectsNonPositiveC) {
  kernel::RealMatrix k(2, 2);
  EXPECT_THROW(train_svc(k, {1, -1}, {.c = 0.0}), Error);
}

/// A Gaussian-kernel training problem with a healthy mix of zero and
/// nonzero alphas, shared by the compaction tests below.
struct TrainedProblem {
  kernel::RealMatrix k;
  std::vector<int> y;
  SvcModel model;
};

TrainedProblem gaussian_problem(std::uint64_t seed, double c) {
  Rng rng(seed);
  const idx n = 40;
  kernel::RealMatrix x(n, 3);
  std::vector<int> y(static_cast<std::size_t>(n));
  for (idx i = 0; i < n; ++i) {
    y[static_cast<std::size_t>(i)] = (i % 2 == 0) ? 1 : -1;
    for (idx j = 0; j < 3; ++j)
      x(i, j) = rng.normal() + (y[static_cast<std::size_t>(i)] == 1 ? 0.9 : -0.9);
  }
  TrainedProblem p;
  p.k = kernel::gaussian_gram(x, 0.8);
  p.y = y;
  p.model = train_svc(p.k, y, {.c = c, .tol = 1e-5});
  return p;
}

TEST(SvmCompaction, DropsExactlyZeroAlphaEntries) {
  const TrainedProblem p = gaussian_problem(10, 1.0);
  ASSERT_GT(p.model.support_vector_count(), 0);
  ASSERT_LT(p.model.support_vector_count(), static_cast<idx>(p.y.size()));

  const CompactSvc compact = compact_support_vectors(p.model);
  EXPECT_EQ(static_cast<idx>(compact.model.alpha.size()),
            p.model.support_vector_count());
  for (double a : compact.model.alpha) EXPECT_GT(a, 0.0);
  EXPECT_EQ(compact.model.bias, p.model.bias);
  EXPECT_EQ(compact.model.iterations, p.model.iterations);
  EXPECT_EQ(compact.model.converged, p.model.converged);
  // Index map points at the original nonzero entries, in training order.
  for (std::size_t s = 0; s < compact.sv_indices.size(); ++s) {
    const auto orig = static_cast<std::size_t>(compact.sv_indices[s]);
    EXPECT_EQ(compact.model.alpha[s], p.model.alpha[orig]);
    EXPECT_EQ(compact.model.y[s], p.model.y[orig]);
    if (s > 0) {
      EXPECT_GT(compact.sv_indices[s], compact.sv_indices[s - 1]);
    }
  }
}

TEST(SvmCompaction, DecisionValuesBitwiseMatchFullModel) {
  const TrainedProblem p = gaussian_problem(11, 0.7);
  const CompactSvc compact = compact_support_vectors(p.model);
  const idx n = static_cast<idx>(p.y.size());
  const idx n_sv = static_cast<idx>(compact.sv_indices.size());

  // SV-only columns of the same kernel.
  kernel::RealMatrix k_sv(n, n_sv);
  for (idx i = 0; i < n; ++i)
    for (idx s = 0; s < n_sv; ++s)
      k_sv(i, s) = p.k(i, compact.sv_indices[static_cast<std::size_t>(s)]);

  const auto f_full = p.model.decision_values(p.k);
  const auto f_compact = compact.model.decision_values(k_sv);
  ASSERT_EQ(f_full.size(), f_compact.size());
  // Same nonzero terms in the same accumulation order => bitwise equality.
  for (std::size_t i = 0; i < f_full.size(); ++i)
    EXPECT_EQ(f_full[i], f_compact[i]);
  EXPECT_EQ(p.model.predict(p.k), compact.model.predict(k_sv));
}

TEST(SvmCompaction, SingleRowDecisionValueMatchesBatch) {
  const TrainedProblem p = gaussian_problem(12, 1.3);
  const auto f = p.model.decision_values(p.k);
  for (idx i = 0; i < p.k.rows(); ++i) {
    const std::vector<double> row(p.k.row(i), p.k.row(i) + p.k.cols());
    EXPECT_EQ(p.model.decision_value(row), f[static_cast<std::size_t>(i)]);
  }
}

TEST(SvmCompaction, StateGatherOverloadSelectsSvSubset) {
  const TrainedProblem p = gaussian_problem(13, 1.0);
  // Stand-in "states": the original training index, so the gather is
  // directly checkable.
  std::vector<int> states(p.y.size());
  for (std::size_t i = 0; i < states.size(); ++i) states[i] = static_cast<int>(i);
  std::vector<int> sv_states;
  const CompactSvc compact = compact_support_vectors(p.model, states, &sv_states);
  ASSERT_EQ(sv_states.size(), compact.sv_indices.size());
  for (std::size_t s = 0; s < sv_states.size(); ++s)
    EXPECT_EQ(sv_states[s], static_cast<int>(compact.sv_indices[s]));
}

TEST(SvmCompaction, RejectsMisalignedStates) {
  const TrainedProblem p = gaussian_problem(14, 1.0);
  std::vector<int> wrong_size(p.y.size() + 1, 0);
  std::vector<int> out;
  EXPECT_THROW(compact_support_vectors(p.model, wrong_size, &out), Error);
}

}  // namespace
}  // namespace qkmps::svm
