/// Cross-backend verification harness: every observable quantity the MPS
/// backend can produce — amplitudes, inner products, Pauli observables,
/// Gram-matrix entries — is checked against the dense statevector backend
/// on randomized small circuits (<= 10 qubits), at full bond dimension, to
/// 1e-10. This is the safety net every performance PR is judged against:
/// the two backends share no dense kernels beyond linalg, so agreement here
/// pins down the whole simulation stack. Truncated-bond-dimension runs are
/// additionally required to degrade *monotonically* toward the exact
/// answer as the cap is raised.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <string>
#include <vector>

#include "circuit/ansatz.hpp"
#include "circuit/statevector.hpp"
#include "kernel/gram.hpp"
#include "mps/inner_product.hpp"
#include "mps/observables.hpp"
#include "mps/simulator.hpp"
#include "test_helpers.hpp"

namespace qkmps {
namespace {

using qkmps::testing::dense_infidelity;
using qkmps::testing::dense_inner_product;
using qkmps::testing::dense_pauli_expectation;
using qkmps::testing::dense_zz_correlation;
using qkmps::testing::max_amplitude_diff;
using qkmps::testing::random_circuit;
using qkmps::testing::random_features;

/// Agreement tolerance between backends at full bond dimension. The MPS
/// path accumulates only QR/SVD roundoff (~1e-15 per two-qubit gate), so
/// 1e-10 leaves four orders of headroom on the circuit sizes used here.
constexpr double kParityTol = 1e-10;

/// Exact MPS configuration: zero discarded-weight budget and no bond cap,
/// so every nonzero singular value is kept.
mps::SimulatorConfig exact_config(linalg::ExecPolicy policy) {
  mps::SimulatorConfig cfg;
  cfg.policy = policy;
  cfg.truncation.max_discarded_weight = 0.0;
  cfg.truncation.max_bond = 0;
  return cfg;
}

/// Same circuit through both backends; returns (mps dense amps, sv amps).
std::pair<std::vector<cplx>, std::vector<cplx>> simulate_both(
    const circuit::Circuit& c, linalg::ExecPolicy policy) {
  const mps::MpsSimulator sim(exact_config(policy));
  const auto mps_amps = sim.simulate(c).state.to_statevector();
  const auto sv = circuit::simulate_statevector(c);
  return {mps_amps, sv.amplitudes()};
}

class BackendParity : public ::testing::TestWithParam<linalg::ExecPolicy> {};

TEST_P(BackendParity, RandomCircuitAmplitudesMatchStatevector) {
  Rng rng(101);
  for (const idx m : {2, 3, 5, 8, 10}) {
    for (int trial = 0; trial < 3; ++trial) {
      const circuit::Circuit c = random_circuit(m, 5 * m, rng);
      const auto [mps_amps, sv_amps] = simulate_both(c, GetParam());
      EXPECT_LT(max_amplitude_diff(mps_amps, sv_amps), kParityTol)
          << "m=" << m << " trial=" << trial;
    }
  }
}

TEST_P(BackendParity, FeatureMapAmplitudesMatchStatevector) {
  Rng rng(202);
  for (const idx m : {4, 6, 9}) {
    for (const idx d : {1, 2, 3}) {
      const circuit::AnsatzParams p{
          .num_features = m, .layers = 3, .distance = d, .gamma = 1.0};
      const circuit::Circuit c =
          circuit::feature_map_circuit(p, random_features(m, rng));
      const auto [mps_amps, sv_amps] = simulate_both(c, GetParam());
      EXPECT_LT(max_amplitude_diff(mps_amps, sv_amps), kParityTol)
          << "m=" << m << " d=" << d;
    }
  }
}

TEST_P(BackendParity, InnerProductsMatchStatevector) {
  Rng rng(303);
  const mps::MpsSimulator sim(exact_config(GetParam()));
  for (const idx m : {2, 4, 6, 8, 10}) {
    const circuit::Circuit ca = random_circuit(m, 4 * m, rng);
    const circuit::Circuit cb = random_circuit(m, 4 * m, rng);
    const mps::Mps a = sim.simulate(ca).state;
    const mps::Mps b = sim.simulate(cb).state;
    const circuit::Statevector sa = circuit::simulate_statevector(ca);
    const circuit::Statevector sb = circuit::simulate_statevector(cb);

    const cplx zipper = mps::inner_product(a, b, GetParam());
    const cplx dense = sa.inner_product(sb);
    EXPECT_LT(std::abs(zipper - dense), kParityTol) << "m=" << m;
    EXPECT_NEAR(mps::overlap_squared(a, b, GetParam()), std::norm(dense),
                kParityTol)
        << "m=" << m;
  }
}

TEST_P(BackendParity, ObservablesMatchStatevector) {
  Rng rng(404);
  const mps::MpsSimulator sim(exact_config(GetParam()));
  for (const idx m : {2, 5, 8}) {
    const circuit::Circuit c = random_circuit(m, 5 * m, rng);
    mps::Mps psi = sim.simulate(c).state;
    const auto amps = circuit::simulate_statevector(c).amplitudes();

    for (idx q = 0; q < m; ++q) {
      EXPECT_NEAR(mps::expectation_x(psi, q, GetParam()),
                  dense_pauli_expectation(amps, m, q, 'X'), kParityTol)
          << "X q=" << q << " m=" << m;
      EXPECT_NEAR(mps::expectation_y(psi, q, GetParam()),
                  dense_pauli_expectation(amps, m, q, 'Y'), kParityTol)
          << "Y q=" << q << " m=" << m;
      EXPECT_NEAR(mps::expectation_z(psi, q, GetParam()),
                  dense_pauli_expectation(amps, m, q, 'Z'), kParityTol)
          << "Z q=" << q << " m=" << m;
    }
    for (idx q = 0; q + 1 < m; ++q) {
      EXPECT_NEAR(mps::correlation_zz(psi, q, GetParam()),
                  dense_zz_correlation(amps, m, q), kParityTol)
          << "ZZ q=" << q << " m=" << m;
    }
  }
}

TEST_P(BackendParity, GramMatrixEntriesMatchStatevector) {
  const idx n = 4, m = 6;
  Rng rng(505);
  kernel::RealMatrix x(n, m);
  for (idx i = 0; i < n; ++i)
    for (idx j = 0; j < m; ++j) x(i, j) = rng.uniform(0.05, 1.95);

  kernel::QuantumKernelConfig cfg;
  cfg.ansatz = {.num_features = m, .layers = 2, .distance = 2, .gamma = 0.8};
  cfg.sim = exact_config(GetParam());
  const kernel::RealMatrix k = kernel::gram_matrix(cfg, x);

  std::vector<circuit::Statevector> svs;
  for (idx i = 0; i < n; ++i) {
    const std::vector<double> row(x.row(i), x.row(i) + m);
    svs.push_back(circuit::simulate_statevector(
        circuit::feature_map_circuit(cfg.ansatz, row)));
  }
  for (idx i = 0; i < n; ++i)
    for (idx j = 0; j < n; ++j) {
      const double expected = std::norm(svs[static_cast<std::size_t>(i)]
                                            .inner_product(svs[static_cast<std::size_t>(j)]));
      EXPECT_NEAR(k(i, j), expected, kParityTol) << i << "," << j;
    }

  // Rectangular inference kernel against the same ground truth.
  const kernel::RealMatrix kx = kernel::cross_kernel(cfg, x, x);
  for (idx i = 0; i < n; ++i)
    for (idx j = 0; j < n; ++j)
      EXPECT_NEAR(kx(i, j), k(i, j), kParityTol) << i << "," << j;
}

INSTANTIATE_TEST_SUITE_P(
    Policies, BackendParity,
    ::testing::Values(linalg::ExecPolicy::Reference,
                      linalg::ExecPolicy::Accelerated),
    [](const ::testing::TestParamInfo<linalg::ExecPolicy>& info) {
      return linalg::to_string(info.param);
    });

TEST(BackendParityPolicies, PoliciesAgreeOnGramMatrix) {
  // Table I's consistency requirement: both execution policies run the same
  // MPS algorithm, so their Gram matrices must agree to roundoff.
  const idx n = 5, m = 7;
  Rng rng(606);
  kernel::RealMatrix x(n, m);
  for (idx i = 0; i < n; ++i)
    for (idx j = 0; j < m; ++j) x(i, j) = rng.uniform(0.05, 1.95);

  kernel::QuantumKernelConfig cfg;
  cfg.ansatz = {.num_features = m, .layers = 2, .distance = 2, .gamma = 0.9};
  cfg.sim = exact_config(linalg::ExecPolicy::Reference);
  const kernel::RealMatrix k_ref = kernel::gram_matrix(cfg, x);
  cfg.sim = exact_config(linalg::ExecPolicy::Accelerated);
  const kernel::RealMatrix k_acc = kernel::gram_matrix(cfg, x);

  EXPECT_LT(kernel::max_abs_diff(k_ref, k_acc), kParityTol);
}

/// Infidelity of a chi-capped simulation against the exact statevector.
double capped_infidelity(const circuit::Circuit& c, idx max_bond,
                         double* discarded = nullptr) {
  mps::SimulatorConfig cfg;
  cfg.truncation.max_bond = max_bond;
  const mps::MpsSimulator sim(cfg);
  const mps::SimulationResult r = sim.simulate(c);
  if (discarded != nullptr) *discarded = r.truncation.total_discarded_weight;
  std::vector<cplx> approx = r.state.to_statevector();
  return dense_infidelity(circuit::simulate_statevector(c).amplitudes(),
                          approx);
}

TEST(BackendParityTruncated, InfidelityDegradesMonotonicallyInBondCap) {
  // An entangling 8-qubit feature map saturates chi = 16 untruncated; each
  // tighter cap must hurt at least as much as the next looser one.
  Rng rng(707);
  const circuit::AnsatzParams p{
      .num_features = 8, .layers = 3, .distance = 3, .gamma = 1.2};
  const circuit::Circuit c =
      circuit::feature_map_circuit(p, random_features(8, rng));

  const std::vector<idx> caps = {1, 2, 4, 8, 16};
  std::vector<double> infidelity;
  for (const idx chi : caps) infidelity.push_back(capped_infidelity(c, chi));

  for (std::size_t k = 0; k + 1 < caps.size(); ++k) {
    EXPECT_LE(infidelity[k + 1], infidelity[k] + 1e-12)
        << "chi " << caps[k] << " -> " << caps[k + 1];
  }
  // The loosest cap equals the full bond dimension: exact to parity tol.
  EXPECT_LT(infidelity.back(), kParityTol);
  // The tightest cap (product state) must measurably hurt, or this test
  // would pass vacuously on a non-entangling circuit.
  EXPECT_GT(infidelity.front(), 1e-3);
}

TEST(BackendParityTruncated, DiscardedWeightShrinksAsCapGrows) {
  Rng rng(808);
  const circuit::AnsatzParams p{
      .num_features = 8, .layers = 3, .distance = 3, .gamma = 1.2};
  const circuit::Circuit c =
      circuit::feature_map_circuit(p, random_features(8, rng));

  std::vector<double> weights;
  for (const idx chi : {1, 2, 4, 8, 16}) {
    double w = 0.0;
    capped_infidelity(c, chi, &w);
    weights.push_back(w);
  }
  for (std::size_t k = 0; k + 1 < weights.size(); ++k)
    EXPECT_LE(weights[k + 1], weights[k] + 1e-12);
}

TEST(BackendParityTruncated, KernelEntriesDegradeMonotonicallyInBondCap) {
  // Truncation maps to the *kernel* level the same way: the max entrywise
  // Gram error against the exact kernel must not increase with chi.
  const idx n = 3, m = 8;
  Rng rng(909);
  kernel::RealMatrix x(n, m);
  for (idx i = 0; i < n; ++i)
    for (idx j = 0; j < m; ++j) x(i, j) = rng.uniform(0.05, 1.95);

  kernel::QuantumKernelConfig cfg;
  cfg.ansatz = {.num_features = m, .layers = 3, .distance = 3, .gamma = 1.2};
  cfg.sim = exact_config(linalg::ExecPolicy::Reference);
  const kernel::RealMatrix k_exact = kernel::gram_matrix(cfg, x);

  std::vector<double> errors;
  for (const idx chi : {1, 2, 4, 8, 16}) {
    cfg.sim.truncation = {.max_discarded_weight = kDefaultTruncationError,
                          .max_bond = chi};
    errors.push_back(kernel::max_abs_diff(kernel::gram_matrix(cfg, x), k_exact));
  }
  for (std::size_t k = 0; k + 1 < errors.size(); ++k)
    EXPECT_LE(errors[k + 1], errors[k] + 1e-12)
        << "cap index " << k;
  EXPECT_LT(errors.back(), kParityTol);
  EXPECT_GT(errors.front(), 1e-6);
}

}  // namespace
}  // namespace qkmps
