#include <gtest/gtest.h>

#include <cmath>

#include "linalg/symeig.hpp"
#include "test_helpers.hpp"

namespace qkmps::linalg {
namespace {

kernel::RealMatrix random_symmetric(idx n, std::uint64_t seed) {
  Rng rng(seed);
  kernel::RealMatrix a(n, n);
  for (idx i = 0; i < n; ++i)
    for (idx j = i; j < n; ++j) {
      const double v = rng.normal();
      a(i, j) = v;
      a(j, i) = v;
    }
  return a;
}

double reconstruction_error(const kernel::RealMatrix& a, const SymEigResult& f) {
  const idx n = a.rows();
  double err = 0.0;
  for (idx i = 0; i < n; ++i)
    for (idx j = 0; j < n; ++j) {
      double v = 0.0;
      for (idx k = 0; k < n; ++k)
        v += f.eigenvectors(i, k) * f.eigenvalues[static_cast<std::size_t>(k)] *
             f.eigenvectors(j, k);
      err = std::max(err, std::abs(v - a(i, j)));
    }
  return err;
}

class SymEigSizes : public ::testing::TestWithParam<idx> {};

TEST_P(SymEigSizes, Reconstructs) {
  const idx n = GetParam();
  const auto a = random_symmetric(n, static_cast<std::uint64_t>(n));
  const SymEigResult f = symmetric_eigen(a);
  EXPECT_LT(reconstruction_error(a, f), 1e-10);
}

TEST_P(SymEigSizes, EigenvectorsOrthonormal) {
  const idx n = GetParam();
  const auto a = random_symmetric(n, 100 + static_cast<std::uint64_t>(n));
  const SymEigResult f = symmetric_eigen(a);
  for (idx i = 0; i < n; ++i)
    for (idx j = 0; j < n; ++j) {
      double dot = 0.0;
      for (idx k = 0; k < n; ++k) dot += f.eigenvectors(k, i) * f.eigenvectors(k, j);
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-11);
    }
}

TEST_P(SymEigSizes, EigenvaluesDescending) {
  const idx n = GetParam();
  const auto f = symmetric_eigen(random_symmetric(n, 200 + static_cast<std::uint64_t>(n)));
  for (std::size_t i = 1; i < f.eigenvalues.size(); ++i)
    EXPECT_LE(f.eigenvalues[i], f.eigenvalues[i - 1]);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SymEigSizes, ::testing::Values(1, 2, 3, 8, 20, 50));

TEST(SymEig, KnownDiagonal) {
  kernel::RealMatrix a(3, 3);
  a(0, 0) = -1.0;
  a(1, 1) = 4.0;
  a(2, 2) = 2.0;
  const auto w = symmetric_eigenvalues(a);
  EXPECT_NEAR(w[0], 4.0, 1e-13);
  EXPECT_NEAR(w[1], 2.0, 1e-13);
  EXPECT_NEAR(w[2], -1.0, 1e-13);
}

TEST(SymEig, Known2x2) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
  kernel::RealMatrix a(2, 2);
  a(0, 0) = a(1, 1) = 2.0;
  a(0, 1) = a(1, 0) = 1.0;
  const auto w = symmetric_eigenvalues(a);
  EXPECT_NEAR(w[0], 3.0, 1e-13);
  EXPECT_NEAR(w[1], 1.0, 1e-13);
}

TEST(SymEig, TraceIsEigenvalueSum) {
  const auto a = random_symmetric(12, 7);
  double trace = 0.0;
  for (idx i = 0; i < 12; ++i) trace += a(i, i);
  const auto w = symmetric_eigenvalues(a);
  double sum = 0.0;
  for (double v : w) sum += v;
  EXPECT_NEAR(sum, trace, 1e-10);
}

TEST(SymEig, PsdGramMatrixHasNonNegativeSpectrum) {
  // A A^T is PSD by construction.
  Rng rng(9);
  kernel::RealMatrix a(6, 4);
  for (idx i = 0; i < 6; ++i)
    for (idx j = 0; j < 4; ++j) a(i, j) = rng.normal();
  kernel::RealMatrix g(6, 6);
  for (idx i = 0; i < 6; ++i)
    for (idx j = 0; j < 6; ++j) {
      double s = 0.0;
      for (idx k = 0; k < 4; ++k) s += a(i, k) * a(j, k);
      g(i, j) = s;
    }
  const auto w = symmetric_eigenvalues(g);
  for (double v : w) EXPECT_GT(v, -1e-10);
}

TEST(SymEig, RejectsNonSquare) {
  kernel::RealMatrix a(2, 3);
  EXPECT_THROW(symmetric_eigen(a), Error);
}

}  // namespace
}  // namespace qkmps::linalg
