#include <gtest/gtest.h>

#include <future>
#include <limits>
#include <vector>

#include "kernel/gram.hpp"
#include "serve/inference_engine.hpp"
#include "serve_test_fixture.hpp"
#include "svm/svm.hpp"
#include "test_helpers.hpp"

namespace qkmps::serve {
namespace {

using Serving = qkmps::testing::TrainedServing;

/// One small trained bundle plus its raw held-out queries, and the full
/// (uncompacted) training artifacts for the strongest parity check —
/// engine vs. the naive full-training-set pipeline.
Serving make_serving(std::uint64_t seed) {
  return qkmps::testing::train_small_serving(seed);
}

std::vector<double> raw_row(const kernel::RealMatrix& x, idx i) {
  return std::vector<double>(x.row(i), x.row(i) + x.cols());
}

/// The sequential reference pipeline on the *full* training artifacts:
/// scale -> simulate_states -> cross kernel against every training state
/// -> full-model decision values. The engine must reproduce this bitwise
/// even though it batches, caches, and only ever touches the SV subset.
std::vector<double> sequential_decision_values(const Serving& s) {
  const auto x_test = s.bundle.scaler.transform(s.x_test_raw);
  const auto test_states = kernel::simulate_states(s.bundle.config, x_test);
  const auto k_test = kernel::cross_from_states(test_states, s.train_states,
                                                s.bundle.config.sim.policy);
  return s.full_model.decision_values(k_test);
}

TEST(InferenceEngine, MetamorphicParityBatchedVsSequential) {
  const Serving s = make_serving(1);
  const std::vector<double> f_seq = sequential_decision_values(s);
  const std::vector<int> pred_seq = [&] {
    std::vector<int> p(f_seq.size());
    for (std::size_t i = 0; i < f_seq.size(); ++i) p[i] = f_seq[i] >= 0 ? 1 : -1;
    return p;
  }();

  EngineConfig cfg;
  cfg.max_batch = 4;
  cfg.batch_deadline = std::chrono::microseconds(3000);
  cfg.num_threads = 3;
  InferenceEngine engine(s.bundle, cfg);

  std::vector<std::future<Prediction>> futures;
  for (idx i = 0; i < s.x_test_raw.rows(); ++i)
    futures.push_back(engine.submit(raw_row(s.x_test_raw, i)));

  for (std::size_t i = 0; i < futures.size(); ++i) {
    const Prediction p = futures[i].get();
    // Bitwise: same scaling, same simulations, same zipper contractions,
    // same decision-value accumulation order as the sequential pipeline.
    EXPECT_EQ(p.decision_value, f_seq[i]) << "request " << i;
    EXPECT_EQ(p.label, pred_seq[i]) << "request " << i;
    EXPECT_GE(p.latency_seconds, 0.0);
  }

  const EngineStats st = engine.stats();
  EXPECT_EQ(st.requests, futures.size());
  EXPECT_GE(st.batches, 1u);
  EXPECT_LE(st.max_batch_seen, cfg.max_batch);
}

TEST(InferenceEngine, RepeatedQueriesHitCacheAndScoreIdentically) {
  const Serving s = make_serving(2);
  EngineConfig cfg;
  cfg.max_batch = 8;
  cfg.num_threads = 2;
  cfg.memo_capacity = 0;  // isolate the StateCache path from the memo
  InferenceEngine engine(s.bundle, cfg);

  const idx n = s.x_test_raw.rows();
  std::vector<std::future<Prediction>> first, second;
  for (idx i = 0; i < n; ++i)
    first.push_back(engine.submit(raw_row(s.x_test_raw, i)));
  std::vector<Prediction> round1;
  for (auto& f : first) round1.push_back(f.get());

  for (idx i = 0; i < n; ++i)
    second.push_back(engine.submit(raw_row(s.x_test_raw, i)));
  for (idx i = 0; i < n; ++i) {
    const Prediction p = second[static_cast<std::size_t>(i)].get();
    EXPECT_TRUE(p.cache_hit) << "request " << i;
    EXPECT_EQ(p.decision_value,
              round1[static_cast<std::size_t>(i)].decision_value);
    EXPECT_EQ(p.label, round1[static_cast<std::size_t>(i)].label);
  }

  const EngineStats st = engine.stats();
  // Second round re-simulated nothing.
  EXPECT_EQ(st.circuits_simulated, static_cast<std::uint64_t>(n));
  EXPECT_GE(st.cache.hits, static_cast<std::uint64_t>(n));
}

TEST(InferenceEngine, DuplicatesWithinOneBatchSimulateOnce) {
  const Serving s = make_serving(3);
  EngineConfig cfg;
  cfg.num_threads = 2;
  cfg.cache_capacity = 0;  // isolate the in-batch dedup from the cache
  InferenceEngine engine(s.bundle, cfg);

  // Three distinct points, each duplicated.
  kernel::RealMatrix x(6, s.x_test_raw.cols());
  for (idx i = 0; i < 6; ++i)
    for (idx j = 0; j < x.cols(); ++j) x(i, j) = s.x_test_raw(i / 2, j);
  const auto preds = engine.predict_batch(x);
  ASSERT_EQ(preds.size(), 6u);
  for (idx i = 0; i < 6; i += 2) {
    EXPECT_EQ(preds[static_cast<std::size_t>(i)].decision_value,
              preds[static_cast<std::size_t>(i + 1)].decision_value);
  }
  EXPECT_EQ(engine.stats().circuits_simulated, 3u);
}

TEST(InferenceEngine, PredictBatchMatchesSubmit) {
  const Serving s = make_serving(4);
  EngineConfig cfg;
  cfg.num_threads = 2;
  InferenceEngine engine(s.bundle, cfg);

  const auto batch = engine.predict_batch(s.x_test_raw);
  for (idx i = 0; i < s.x_test_raw.rows(); ++i) {
    const Prediction p = engine.submit(raw_row(s.x_test_raw, i)).get();
    EXPECT_EQ(p.decision_value,
              batch[static_cast<std::size_t>(i)].decision_value);
    // predict_batch warmed the serving caches; with the memo enabled the
    // repeat short-circuits before it can touch the StateCache.
    EXPECT_TRUE(p.memo_hit || p.cache_hit);
  }
}

TEST(InferenceEngine, MemoizedRepeatSkipsSimulationAndStateCache) {
  const Serving s = make_serving(9);
  EngineConfig cfg;
  cfg.max_batch = 8;
  cfg.num_threads = 2;
  cfg.memo_capacity = 64;
  InferenceEngine engine(s.bundle, cfg);

  const idx n = s.x_test_raw.rows();
  std::vector<Prediction> round1;
  for (idx i = 0; i < n; ++i)
    round1.push_back(engine.submit(raw_row(s.x_test_raw, i)).get());
  const EngineStats after1 = engine.stats();

  for (idx i = 0; i < n; ++i) {
    const Prediction p = engine.submit(raw_row(s.x_test_raw, i)).get();
    EXPECT_TRUE(p.memo_hit) << "request " << i;
    EXPECT_FALSE(p.cache_hit) << "request " << i;  // memo answered first
    // Replay is bitwise: the memo stores the final decision-value bits.
    EXPECT_EQ(p.decision_value,
              round1[static_cast<std::size_t>(i)].decision_value);
    EXPECT_EQ(p.label, round1[static_cast<std::size_t>(i)].label);
  }

  const EngineStats after2 = engine.stats();
  // Exact repeats simulated nothing and never consulted the StateCache.
  EXPECT_EQ(after2.circuits_simulated, after1.circuits_simulated);
  EXPECT_EQ(after2.cache.hits, after1.cache.hits);
  EXPECT_EQ(after2.cache.misses, after1.cache.misses);
  EXPECT_GE(after2.memo.hits, static_cast<std::uint64_t>(n));
  EXPECT_EQ(after2.memo.insertions, after1.memo.insertions);
}

TEST(InferenceEngine, MemoEvictionStaysCorrectUnderTinyCapacity) {
  const Serving s = make_serving(10);
  EngineConfig cfg;
  cfg.num_threads = 2;
  cfg.memo_capacity = 2;  // smaller than the query working set
  InferenceEngine engine(s.bundle, cfg);

  const auto reference = engine.predict_batch(s.x_test_raw);
  const auto again = engine.predict_batch(s.x_test_raw);
  ASSERT_EQ(again.size(), reference.size());
  for (std::size_t i = 0; i < again.size(); ++i)
    EXPECT_EQ(again[i].decision_value, reference[i].decision_value);
  const EngineStats st = engine.stats();
  EXPECT_GT(st.memo.evictions, 0u);
  EXPECT_LE(st.memo.insertions - st.memo.evictions, 2u);
}

TEST(InferenceEngine, CacheDisabledStillScoresIdentically) {
  const Serving s = make_serving(5);
  const std::vector<double> f_seq = sequential_decision_values(s);

  EngineConfig cfg;
  cfg.num_threads = 2;
  cfg.cache_capacity = 0;
  InferenceEngine engine(s.bundle, cfg);
  const auto preds = engine.predict_batch(s.x_test_raw);
  ASSERT_EQ(preds.size(), f_seq.size());
  for (std::size_t i = 0; i < preds.size(); ++i) {
    EXPECT_EQ(preds[i].decision_value, f_seq[i]);
    EXPECT_FALSE(preds[i].cache_hit);
  }
}

TEST(InferenceEngine, KernelBackendsPredictBitwiseIdentically) {
  // The simulate stage's kernel backend (serial per-lane vs the batched
  // kernel layer) is a scheduling choice: with every cache disabled so
  // each request really simulates, both backends must reproduce the
  // sequential reference bitwise.
  const Serving s = make_serving(11);
  const std::vector<double> f_seq = sequential_decision_values(s);

  for (const linalg::KernelBackend backend :
       {linalg::KernelBackend::kSerial,
        linalg::KernelBackend::kOpenMPBatched}) {
    EngineConfig cfg;
    cfg.num_threads = 3;
    cfg.cache_capacity = 0;
    cfg.memo_capacity = 0;
    cfg.kernel_backend = backend;
    InferenceEngine engine(s.bundle, cfg);
    const auto preds = engine.predict_batch(s.x_test_raw);
    ASSERT_EQ(preds.size(), f_seq.size());
    for (std::size_t i = 0; i < preds.size(); ++i)
      EXPECT_EQ(preds[i].decision_value, f_seq[i])
          << "request " << i << " backend=" << to_string(backend);
  }
}

TEST(InferenceEngine, KernelConcurrencyStaysWithinPoolBudget) {
  // Thread-budget contract: whatever the backend, the dense-kernel
  // concurrency observed during a batch must never exceed the engine's
  // pool width — lanes pin their kernels serial, and the batched pass is
  // budgeted to the pool, so lanes x OMP cannot multiply.
  const Serving s = make_serving(12);
  for (const linalg::KernelBackend backend :
       {linalg::KernelBackend::kSerial,
        linalg::KernelBackend::kOpenMPBatched}) {
    EngineConfig cfg;
    cfg.num_threads = 2;
    cfg.cache_capacity = 0;
    cfg.memo_capacity = 0;
    cfg.kernel_backend = backend;
    InferenceEngine engine(s.bundle, cfg);
    linalg::kernel_probe_reset();
    (void)engine.predict_batch(s.x_test_raw);
    EXPECT_LE(linalg::kernel_probe_peak(), 2)
        << "backend=" << to_string(backend);
  }
}

TEST(InferenceEngine, SubmitRejectsMalformedRequests) {
  const Serving s = make_serving(6);
  InferenceEngine engine(s.bundle, {.num_threads = 2});
  EXPECT_THROW(engine.submit({0.1, 0.2}), Error);  // wrong feature count
  // Non-finite features must fail the caller, not score as a confident
  // label (NaN decision values would all map to -1).
  std::vector<double> bad(6, std::numeric_limits<double>::quiet_NaN());
  EXPECT_THROW(engine.submit(bad), Error);
  bad.assign(6, std::numeric_limits<double>::infinity());
  EXPECT_THROW(engine.submit(bad), Error);
}

TEST(InferenceEngine, RejectsBundleWithoutSupportVectors) {
  const Serving s = make_serving(7);
  ModelBundle empty = s.bundle;
  empty.sv_states.clear();
  empty.model.alpha.clear();
  empty.model.y.clear();
  empty.sv_indices.clear();
  EXPECT_THROW(InferenceEngine(std::move(empty), {.num_threads = 2}), Error);
}

TEST(InferenceEngine, DestructionDrainsPendingRequests) {
  const Serving s = make_serving(8);
  std::vector<std::future<Prediction>> futures;
  {
    EngineConfig cfg;
    cfg.max_batch = 2;
    cfg.num_threads = 2;
    cfg.batch_deadline = std::chrono::microseconds(50);
    InferenceEngine engine(s.bundle, cfg);
    for (idx i = 0; i < s.x_test_raw.rows(); ++i)
      futures.push_back(engine.submit(raw_row(s.x_test_raw, i)));
    // Engine goes out of scope with (likely) work still queued.
  }
  for (auto& f : futures) {
    const Prediction p = f.get();  // every promise was fulfilled
    EXPECT_TRUE(p.label == 1 || p.label == -1);
  }
}

}  // namespace
}  // namespace qkmps::serve
