// src/obs/: the observability subsystem — trace contexts and spans,
// metrics registry (counters/gauges/log-scale histograms), and the
// flight recorder's bounded rings. The serving stack reports through
// these on its hot paths, so the contracts pinned here (bounded quantile
// error, ring wrap order, stable handles, 0-as-untraced) are what the
// bench gates and postmortem dumps stand on.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/json_writer.hpp"
#include "util/stats.hpp"

namespace qkmps::obs {
namespace {

using std::chrono::steady_clock;

// ---------------------------------------------------------------------
// Tracing.

TEST(Trace, IdsAreUniqueAndNeverZero) {
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t id = next_trace_id();
    EXPECT_NE(id, 0u);  // 0 is the wire's "untraced" sentinel
    EXPECT_TRUE(seen.insert(id).second) << "duplicate trace id";
  }
}

TEST(Trace, SpansAreRelativeToTheEpoch) {
  TraceContext ctx = TraceContext::begin();
  const auto t0 = ctx.epoch + std::chrono::microseconds(10);
  const auto t1 = ctx.epoch + std::chrono::microseconds(35);
  ctx.add_span("wait", ctx.epoch, t0);
  ctx.add_span("work", t0, t1, SpanOrigin::kWorker);
  const TraceSummary summary =
      std::move(ctx).finish(ctx.epoch + std::chrono::microseconds(40));
  EXPECT_NE(summary.trace_id, 0u);
  EXPECT_NEAR(summary.total_seconds, 40e-6, 1e-12);
  ASSERT_EQ(summary.spans.size(), 2u);
  EXPECT_EQ(summary.spans[0].name, "wait");
  EXPECT_EQ(summary.spans[0].start_ns, 0u);
  EXPECT_EQ(summary.spans[0].duration_ns, 10'000u);
  EXPECT_EQ(summary.spans[0].origin, SpanOrigin::kRouter);
  EXPECT_EQ(summary.spans[1].start_ns, 10'000u);
  EXPECT_EQ(summary.spans[1].duration_ns, 25'000u);
  EXPECT_EQ(summary.spans[1].origin, SpanOrigin::kWorker);
}

TEST(Trace, BackwardsIntervalsClampToZeroNotWrap) {
  TraceContext ctx = TraceContext::begin();
  // A caller bug (end before start) must clamp, never wrap to ~2^64 ns.
  ctx.add_span("backwards", ctx.epoch + std::chrono::seconds(1), ctx.epoch);
  const TraceSummary summary = std::move(ctx).finish(ctx.epoch);
  ASSERT_EQ(summary.spans.size(), 1u);
  EXPECT_EQ(summary.spans[0].duration_ns, 0u);
  EXPECT_DOUBLE_EQ(summary.total_seconds, 0.0);
}

TEST(Trace, ScopedSpanRecordsAndNullCtxDisarms) {
  TraceContext ctx = TraceContext::begin();
  { ScopedSpan span(&ctx, "scoped"); }
  ASSERT_EQ(ctx.spans.size(), 1u);
  EXPECT_EQ(ctx.spans[0].name, "scoped");
  { ScopedSpan disarmed(nullptr, "nothing"); }  // must not crash
  EXPECT_EQ(ctx.spans.size(), 1u);
  // stop() is idempotent: the destructor after an explicit stop adds
  // nothing.
  ScopedSpan twice(&ctx, "once");
  twice.stop();
  twice.stop();
  EXPECT_EQ(ctx.spans.size(), 2u);
}

TEST(Trace, JsonUsesFullWidthHexIds) {
  // Ids use all 64 bits; doubles carry 53 — so the JSON field must be a
  // 16-char hex string, not a number.
  TraceSummary trace;
  trace.trace_id = 0x00ABCDEF12345678ull;
  trace.total_seconds = 1.5;
  trace.spans = {{"wire", 5, 7, SpanOrigin::kRouter}};
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  write_trace_json(w, trace);
  w.end_object();
  const std::string json = os.str();
  EXPECT_NE(json.find("\"trace_id\": \"00abcdef12345678\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"name\": \"wire\""), std::string::npos);
  EXPECT_NE(json.find("\"origin\": \"router\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Metrics.

TEST(Metrics, CounterAndGaugeBasics) {
  Counter c;
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.set(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

TEST(Metrics, HistogramQuantileWithinOneBucketOfExact) {
  // The advertised error bound: a reported quantile is the geometric
  // midpoint of the right bucket, so it is within a factor of growth()
  // of the exact order statistic. Check it against util/stats quantile
  // on the same samples — the two share the type-7 rank convention.
  Histogram h;
  std::vector<double> samples;
  for (int i = 1; i <= 1000; ++i) {
    const double v = 1e-4 * (1.0 + 0.01 * i);  // 101 µs .. 1.1 ms
    samples.push_back(v);
    h.observe(v);
  }
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_NEAR(s.mean_seconds(), mean(samples), 1e-12);
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const double exact = quantile(samples, q);
    const double binned = s.quantile(q);
    const double factor = binned > exact ? binned / exact : exact / binned;
    EXPECT_LT(factor, Histogram::growth() * Histogram::growth())
        << "q=" << q << " exact=" << exact << " binned=" << binned;
  }
}

TEST(Metrics, HistogramSingleSample) {
  Histogram h;
  h.observe(3.3e-3);
  const Histogram::Snapshot s = h.snapshot();
  // Every quantile of a single sample is that sample (its bucket mid).
  const double p0 = s.quantile(0.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), p0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), p0);
  const double factor = p0 > 3.3e-3 ? p0 / 3.3e-3 : 3.3e-3 / p0;
  EXPECT_LT(factor, Histogram::growth());
}

TEST(Metrics, HistogramUnderOverflowAndEmpty) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.snapshot().quantile(0.5), 0.0);  // empty -> 0
  h.observe(0.0);
  h.observe(-5.0);
  h.observe(std::nan(""));
  h.observe(1e9);  // ~31 years: over the top bucket
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.underflow, 3u);
  EXPECT_EQ(s.overflow, 1u);
  // All-underflow ranks report below the covered range, overflow ranks
  // its top: quantiles stay ordered even with no real buckets occupied.
  EXPECT_LE(s.quantile(0.1), s.quantile(0.9));
}

TEST(Metrics, HistogramBucketEdgesAreExact) {
  // A sample exactly on a bucket's lower edge lands in that bucket, not
  // its neighbour (the log-index nudge in observe()).
  for (const std::size_t i : {std::size_t{0}, std::size_t{10},
                              std::size_t{47}, Histogram::kBuckets - 1}) {
    Histogram h;
    h.observe(Histogram::bucket_lower(i));
    const Histogram::Snapshot s = h.snapshot();
    EXPECT_EQ(s.buckets[i], 1u) << "edge of bucket " << i;
  }
}

TEST(Metrics, RegistryHandlesAreStableAndKindsAreExclusive) {
  Registry reg;
  Counter& c1 = reg.counter("a.b.count");
  Counter& c2 = reg.counter("a.b.count");
  EXPECT_EQ(&c1, &c2);  // same name -> same instrument, forever
  c1.add(7);
  EXPECT_EQ(c2.value(), 7u);
  reg.gauge("a.b.gauge");
  reg.histogram("a.b.hist");
  EXPECT_THROW(reg.gauge("a.b.count"), Error);
  EXPECT_THROW(reg.counter("a.b.hist"), Error);
  EXPECT_THROW(reg.histogram("a.b.gauge"), Error);
}

TEST(Metrics, RegistryRendersTextAndJson) {
  Registry reg;
  reg.counter("requests").add(3);
  reg.gauge("fleet_size").set(4.0);
  reg.histogram("latency_seconds").observe(1e-3);
  const std::string text = reg.render_text();
  EXPECT_NE(text.find("counter requests 3"), std::string::npos) << text;
  EXPECT_NE(text.find("gauge fleet_size 4"), std::string::npos);
  EXPECT_NE(text.find("histogram latency_seconds count=1"), std::string::npos);
  const std::string json = reg.render_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"requests\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"latency_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"p50_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Flight recorder.

TEST(FlightRecorder, EventRingWrapsOldestFirst) {
  FlightRecorder rec(/*trace_capacity=*/4, /*event_capacity=*/4);
  for (int i = 0; i < 10; ++i)
    rec.record_event(EventKind::kShed, i, 0, "e" + std::to_string(i));
  EXPECT_EQ(rec.events_recorded(), 10u);
  const std::vector<LifecycleEvent> events = rec.events();
  ASSERT_EQ(events.size(), 4u);  // ring kept only the newest 4
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 6 + i);  // oldest-first, seq survives wrap
    EXPECT_EQ(events[i].shard, static_cast<int>(6 + i));
    EXPECT_GE(events[i].uptime_seconds, 0.0);
  }
}

TEST(FlightRecorder, TraceRingWrapsIndependently) {
  FlightRecorder rec(/*trace_capacity=*/2, /*event_capacity=*/8);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    TraceSummary t;
    t.trace_id = i;
    rec.record_trace(std::move(t));
  }
  rec.record_event(EventKind::kDemotion, 0, 3, "after the trace flood");
  EXPECT_EQ(rec.traces_recorded(), 5u);
  const std::vector<TraceSummary> traces = rec.traces();
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].trace_id, 4u);
  EXPECT_EQ(traces[1].trace_id, 5u);
  // The point of two rings: a trace flood cannot evict lifecycle events.
  ASSERT_EQ(rec.events().size(), 1u);
  EXPECT_EQ(rec.events()[0].kind, EventKind::kDemotion);
}

TEST(FlightRecorder, DumpJsonCarriesTheIncidentStory) {
  FlightRecorder rec;
  rec.record_event(EventKind::kSpawn, 0, 0, "pid 1234");
  rec.record_event(EventKind::kWorkerDeath, 0, 0, "peer closed");
  rec.record_event(EventKind::kRespawnFailed, 0, 1, "attempt 1 of 3");
  rec.record_event(EventKind::kDemotion, 0, 1, "respawn budget exhausted");
  TraceSummary t;
  t.trace_id = 0xBEEF;
  t.spans = {{"wire", 0, 10, SpanOrigin::kRouter}};
  rec.record_trace(std::move(t));
  const std::string json = rec.dump_json();
  for (const char* needle :
       {"\"events_recorded\": 4", "\"traces_recorded\": 1", "\"spawn\"",
        "\"worker_death\"", "\"respawn_failed\"", "\"demotion\"",
        "\"000000000000beef\""})
    EXPECT_NE(json.find(needle), std::string::npos) << needle << "\n" << json;
}

TEST(FlightRecorder, DumpToFileWritesADocument) {
  FlightRecorder rec;
  rec.record_event(EventKind::kSpawn, 1, 0, "pid 99");
  const std::string path = ::testing::TempDir() + "qkmps_flight_dump.json";
  rec.dump_to_file(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"events\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace qkmps::obs
