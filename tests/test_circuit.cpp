#include <gtest/gtest.h>

#include "circuit/circuit.hpp"

namespace qkmps::circuit {
namespace {

TEST(Circuit, StartsEmpty) {
  Circuit c(3);
  EXPECT_EQ(c.size(), 0);
  EXPECT_EQ(c.num_qubits(), 3);
}

TEST(Circuit, AppendsInOrder) {
  Circuit c(2);
  c.h(0);
  c.rz(1, 0.5);
  c.rxx(0, 1, 0.3);
  ASSERT_EQ(c.size(), 3);
  EXPECT_EQ(c.gates()[0].kind, GateKind::H);
  EXPECT_EQ(c.gates()[2].kind, GateKind::RXX);
}

TEST(Circuit, RejectsOutOfRangeQubits) {
  Circuit c(2);
  EXPECT_THROW(c.h(2), Error);
  EXPECT_THROW(c.rxx(0, 5, 0.1), Error);
}

TEST(Circuit, TwoQubitGateCount) {
  Circuit c(4);
  c.h(0);
  c.rxx(0, 1, 0.1);
  c.swap(2, 3);
  c.rz(1, 0.2);
  EXPECT_EQ(c.two_qubit_gate_count(), 2);
}

TEST(Circuit, DepthOfParallelGatesIsOne) {
  Circuit c(4);
  c.h(0);
  c.h(1);
  c.h(2);
  c.h(3);
  EXPECT_EQ(c.depth(), 1);
}

TEST(Circuit, DepthOfSerialChain) {
  Circuit c(2);
  c.h(0);
  c.rz(0, 0.1);
  c.rx(0, 0.2);
  EXPECT_EQ(c.depth(), 3);
}

TEST(Circuit, DepthAccountsForTwoQubitDependencies) {
  Circuit c(3);
  c.rxx(0, 1, 0.1);  // layer 1
  c.rxx(1, 2, 0.1);  // layer 2 (shares qubit 1)
  c.rz(0, 0.3);      // fits in layer 2
  EXPECT_EQ(c.depth(), 2);
}

TEST(Circuit, NearestNeighbourDetection) {
  Circuit c(5);
  c.rxx(1, 2, 0.1);
  c.rxx(3, 2, 0.1);  // reversed order still adjacent
  EXPECT_TRUE(c.is_nearest_neighbour());
  c.rxx(0, 4, 0.1);
  EXPECT_FALSE(c.is_nearest_neighbour());
}

TEST(Circuit, AppendCircuitConcatenates) {
  Circuit a(2), b(2);
  a.h(0);
  b.h(1);
  b.rxx(0, 1, 0.4);
  a.append(b);
  EXPECT_EQ(a.size(), 3);
}

TEST(Circuit, AppendMismatchedWidthThrows) {
  Circuit a(2), b(3);
  EXPECT_THROW(a.append(b), Error);
}

}  // namespace
}  // namespace qkmps::circuit
