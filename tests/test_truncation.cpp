/// Tests for mps/truncation.hpp — the error-accounting contract (Eq. 8)
/// and the bond-dimension cap, both as pure bookkeeping and as enforced by
/// the gate-application/simulation pipeline.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "circuit/ansatz.hpp"
#include "circuit/statevector.hpp"
#include "linalg/svd.hpp"
#include "mps/simulator.hpp"
#include "mps/truncation.hpp"
#include "test_helpers.hpp"

namespace qkmps::mps {
namespace {

using qkmps::testing::dense_infidelity;
using qkmps::testing::random_features;

TEST(TruncationConfig, DefaultBudgetIsMachinePrecisionAndUncapped) {
  const TruncationConfig cfg;
  EXPECT_EQ(cfg.max_discarded_weight, kDefaultTruncationError);
  EXPECT_EQ(cfg.max_bond, 0);
}

TEST(TruncationStats, RecordAccumulatesWeightCountAndMaxBond) {
  TruncationStats stats;
  stats.record(1e-4, 4);
  stats.record(2e-4, 8);
  stats.record(0.0, 2);  // bond shrank; max must not
  EXPECT_NEAR(stats.total_discarded_weight, 3e-4, 1e-18);
  EXPECT_EQ(stats.truncation_count, 3);
  EXPECT_EQ(stats.max_bond_seen, 8);
}

TEST(TruncationStats, FidelityLowerBoundComplementsWeight) {
  TruncationStats stats;
  stats.record(0.25, 2);
  EXPECT_NEAR(stats.fidelity_lower_bound(), 0.75, 1e-15);
}

TEST(TruncationStats, FidelityLowerBoundClampsAtZero) {
  TruncationStats stats;
  stats.record(1.5, 2);
  EXPECT_EQ(stats.fidelity_lower_bound(), 0.0);
}

TEST(TruncationStats, NoTruncationGivesBitwiseExactUnitFidelity) {
  // The no-truncation case must be EXACTLY 1.0 — the serving layer
  // compares this value against 1.0 to report "virtually noiseless", and
  // any rounding residue would misreport an exact run as lossy.
  TruncationStats stats;
  for (int i = 0; i < 1000; ++i) stats.record(0.0, 2);
  EXPECT_EQ(stats.total_discarded_weight, 0.0);
  EXPECT_EQ(stats.discarded_compensation, 0.0);
  EXPECT_EQ(stats.fidelity_lower_bound(), 1.0);  // bitwise, not NEAR
  EXPECT_FALSE(std::signbit(stats.fidelity_lower_bound()));
}

TEST(TruncationStats, AllZeroWeightTailsKeepExactUnitFidelity) {
  // Dropping exact null directions (zero singular values) discards zero
  // weight; mixing those records with fresh stats must also stay at 1.0.
  TruncationStats stats;
  stats.record(0.0, 1);
  stats.record(-0.0, 3);  // a -0.0 tail sum must not flip any sign bit
  EXPECT_EQ(stats.fidelity_lower_bound(), 1.0);
  EXPECT_EQ(stats.total_discarded_weight, 0.0);
}

TEST(TruncationStats, CompensatedSumCapturesTinyWeightsAfterLargeOnes) {
  // Naive += loses every 1e-20 after a 1e-3 has landed in the sum
  // (1e-3 + 1e-20 == 1e-3 in double). Neumaier compensation keeps them.
  TruncationStats stats;
  stats.record(1e-3, 8);
  const int tiny_count = 100000;
  for (int i = 0; i < tiny_count; ++i) stats.record(1e-20, 8);
  const double exact = 1e-3 + tiny_count * 1e-20;
  // The public running sum stays bitwise what plain += produces...
  EXPECT_EQ(stats.total_discarded_weight, 1e-3);
  // ...while the bound folds the compensation back in.
  const double bound_loss = 1.0 - stats.fidelity_lower_bound();
  EXPECT_NEAR(bound_loss, exact, 1e-12 * exact);
  EXPECT_GT(bound_loss, 1e-3);  // the tail is actually visible
}

TEST(TruncationStats, RunningSumStaysBitwiseCompatibleWithPlainSum) {
  // Readers of total_discarded_weight (benches, JSON artifacts) must see
  // exactly the historical plain-accumulation value.
  Rng rng(7);
  TruncationStats stats;
  double plain = 0.0;
  for (int i = 0; i < 500; ++i) {
    const double w = rng.uniform(0.0, 1e-6);
    stats.record(w, 4);
    plain += w;
  }
  EXPECT_EQ(stats.total_discarded_weight, plain);
}

TEST(TruncationRank, WalksTailUntilWeightBudgetExceeded) {
  // Discarding 0.001^2 + 0.01^2 = 1.01e-4 fits a 2e-4 budget; adding
  // 0.1^2 would not. Keep the first two values.
  const std::vector<double> s = {1.0, 0.1, 0.01, 0.001};
  EXPECT_EQ(linalg::truncation_rank(s, 2e-4, 0), 2);
}

TEST(TruncationRank, NeverDropsEverySingularValue) {
  const std::vector<double> s = {0.3, 0.2, 0.1};
  EXPECT_EQ(linalg::truncation_rank(s, 1e9, 0), 1);
}

TEST(TruncationRank, ZeroBudgetStillPrunesExactNullDirections) {
  // The "exact" simulator config uses a zero budget; it must still drop
  // singular values that are exactly zero (null directions cost nothing).
  const std::vector<double> s = {1.0, 0.5, 0.0, 0.0};
  EXPECT_EQ(linalg::truncation_rank(s, 0.0, 0), 2);
}

TEST(TruncationRank, BondCapOverridesWeightBudget) {
  const std::vector<double> s = {1.0, 0.9, 0.8, 0.7};
  EXPECT_EQ(linalg::truncation_rank(s, 1e-16, 2), 2);
  // Cap looser than what the budget keeps: budget rules.
  EXPECT_EQ(linalg::truncation_rank(s, 1e-16, 100), 4);
}

circuit::Circuit entangling_circuit(std::uint64_t seed) {
  Rng rng(seed);
  const circuit::AnsatzParams p{
      .num_features = 8, .layers = 3, .distance = 3, .gamma = 1.2};
  return circuit::feature_map_circuit(p, random_features(8, rng));
}

TEST(TruncationPipeline, BondCapIsEnforcedDuringSimulation) {
  SimulatorConfig cfg;
  cfg.truncation.max_bond = 4;
  const MpsSimulator sim(cfg);
  const SimulationResult r = sim.simulate(entangling_circuit(1));

  EXPECT_LE(r.state.max_bond(), 4);
  EXPECT_LE(r.truncation.max_bond_seen, 4);
  EXPECT_GT(r.truncation.truncation_count, 0);
  EXPECT_GT(r.truncation.total_discarded_weight, 0.0);
}

TEST(TruncationPipeline, StatsWeightMatchesLostNorm) {
  // Each truncation renormalizes nothing: the squared norm of the state
  // drops by exactly the discarded weight (to first order, products of
  // per-step losses). The accumulated stats must bound the lost norm.
  SimulatorConfig cfg;
  cfg.truncation.max_bond = 4;
  const MpsSimulator sim(cfg);
  const SimulationResult r = sim.simulate(entangling_circuit(2));

  const double norm2 = r.state.norm() * r.state.norm();
  EXPECT_GE(norm2, r.truncation.fidelity_lower_bound() - 1e-12);
  EXPECT_LE(norm2, 1.0 + 1e-12);
}

TEST(TruncationPipeline, TwoNormErrorBoundHoldsUnderHardBondCap) {
  // The rigorous accumulated guarantee: each truncation adds 2-norm error
  // sqrt(w_k) and gates are norm-preserving, so
  //   ||ideal - trunc|| <= sum_k sqrt(w_k) <= sqrt(count * sum_k w_k)
  // (Cauchy-Schwarz). Unlike the first-order fidelity estimate, this holds
  // even when a hard chi cap discards substantial weight.
  const circuit::Circuit c = entangling_circuit(3);
  SimulatorConfig cfg;
  cfg.truncation.max_bond = 6;
  const MpsSimulator sim(cfg);
  const SimulationResult r = sim.simulate(c);
  EXPECT_GT(r.truncation.total_discarded_weight, 1e-10);  // cap actually bit

  const std::vector<cplx> approx = r.state.to_statevector();
  const auto ideal = circuit::simulate_statevector(c).amplitudes();
  double err_sq = 0.0;
  for (std::size_t i = 0; i < ideal.size(); ++i)
    err_sq += std::norm(ideal[i] - approx[i]);
  const double bound =
      std::sqrt(static_cast<double>(r.truncation.truncation_count) *
                r.truncation.total_discarded_weight);
  EXPECT_LE(std::sqrt(err_sq), bound + 1e-12);
}

TEST(TruncationPipeline, LooserWeightBudgetDiscardsMore) {
  const circuit::Circuit c = entangling_circuit(4);
  double prev_weight = -1.0;
  idx prev_bond = 1 << 10;
  // Looser budgets discard more weight and keep smaller bonds.
  for (const double budget : {1e-16, 1e-8, 1e-4, 1e-2}) {
    SimulatorConfig cfg;
    cfg.truncation.max_discarded_weight = budget;
    const MpsSimulator sim(cfg);
    const SimulationResult r = sim.simulate(c);
    EXPECT_GE(r.truncation.total_discarded_weight, prev_weight);
    EXPECT_LE(r.state.max_bond(), prev_bond);
    prev_weight = r.truncation.total_discarded_weight;
    prev_bond = r.state.max_bond();
  }
}

}  // namespace
}  // namespace qkmps::mps
