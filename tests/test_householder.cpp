#include <gtest/gtest.h>

#include <cmath>

#include "linalg/householder.hpp"
#include "test_helpers.hpp"

namespace qkmps::linalg {
namespace {

/// Applies H = I - tau v v^H to a vector directly.
std::vector<cplx> apply_h(const Reflector& h, const std::vector<cplx>& x) {
  cplx w = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) w += std::conj(h.v[i]) * x[i];
  std::vector<cplx> out = x;
  for (std::size_t i = 0; i < x.size(); ++i) out[i] -= h.tau * w * h.v[i];
  return out;
}

TEST(Householder, AnnihilatesTail) {
  Rng rng(1);
  std::vector<cplx> x(6);
  for (auto& v : x) v = rng.normal_cplx();
  const Reflector h = make_reflector(x.data(), 6);
  const auto hx = apply_h(h, x);
  EXPECT_NEAR(hx[0].imag(), 0.0, 1e-14);
  EXPECT_NEAR(hx[0].real(), h.beta, 1e-13);
  for (std::size_t i = 1; i < 6; ++i) EXPECT_NEAR(std::abs(hx[i]), 0.0, 1e-13);
}

TEST(Householder, BetaIsReal) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<cplx> x(4);
    for (auto& v : x) v = rng.normal_cplx();
    const Reflector h = make_reflector(x.data(), 4);
    // The defining property of the real-beta convention.
    const auto hx = apply_h(h, x);
    EXPECT_NEAR(hx[0].imag(), 0.0, 1e-13);
  }
}

TEST(Householder, PreservesNorm) {
  Rng rng(3);
  std::vector<cplx> x(5);
  for (auto& v : x) v = rng.normal_cplx();
  double norm_in = 0.0;
  for (const auto& v : x) norm_in += std::norm(v);
  const Reflector h = make_reflector(x.data(), 5);
  EXPECT_NEAR(std::abs(h.beta), std::sqrt(norm_in), 1e-12);
}

TEST(Householder, LengthOneComplexPhase) {
  // A single complex entry must still be rotated to a real beta.
  cplx x = cplx(1.0, 1.0);
  const Reflector h = make_reflector(&x, 1);
  const auto hx = apply_h(h, {x});
  EXPECT_NEAR(hx[0].imag(), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(hx[0].real()), std::sqrt(2.0), 1e-14);
}

TEST(Householder, AlreadyRealIsIdentity) {
  cplx x[3] = {2.0, 0.0, 0.0};
  const Reflector h = make_reflector(x, 3);
  EXPECT_EQ(h.tau, cplx(0.0));
  EXPECT_DOUBLE_EQ(h.beta, 2.0);
}

TEST(Householder, DenormalColumnStaysFinite) {
  // Regression: columns whose entries square to zero (std::norm underflow)
  // used to produce beta = +-0 and tau = NaN, poisoning every QR/LQ/SVD
  // downstream. The rescaling path must keep the reflector finite and
  // still annihilate the tail at the original scale.
  std::vector<cplx> x = {cplx(0.0, 1e-193), cplx(3e-193, -2e-193),
                         cplx(-1e-200, 0.0)};
  const Reflector h = make_reflector(x.data(), 3);
  EXPECT_TRUE(std::isfinite(h.beta));
  EXPECT_TRUE(std::isfinite(h.tau.real()) && std::isfinite(h.tau.imag()));
  for (const auto& v : h.v)
    EXPECT_TRUE(std::isfinite(v.real()) && std::isfinite(v.imag()));
  // |beta| = ||x|| at the original (denormal-squaring) scale.
  const double expect_norm = std::hypot(std::hypot(1e-193, 3e-193),
                                        std::hypot(2e-193, 1e-200));
  EXPECT_NEAR(std::abs(h.beta) / expect_norm, 1.0, 1e-12);
  const auto hx = apply_h(h, x);
  for (std::size_t i = 1; i < 3; ++i)
    EXPECT_NEAR(std::abs(hx[i]) / expect_norm, 0.0, 1e-12);
}

TEST(Householder, HugeColumnStaysFinite) {
  // The mirror overflow case: entries whose squares overflow to inf.
  std::vector<cplx> x = {cplx(2e160, -1e160), cplx(0.0, 3e160)};
  const Reflector h = make_reflector(x.data(), 2);
  EXPECT_TRUE(std::isfinite(h.beta));
  EXPECT_TRUE(std::isfinite(h.tau.real()) && std::isfinite(h.tau.imag()));
  const double expect_norm =
      std::hypot(std::hypot(2e160, 1e160), 3e160);
  EXPECT_NEAR(std::abs(h.beta) / expect_norm, 1.0, 1e-12);
}

TEST(Householder, ExactZeroColumnIsIdentity) {
  std::vector<cplx> x(4, cplx(0.0));
  const Reflector h = make_reflector(x.data(), 4);
  EXPECT_EQ(h.tau, cplx(0.0));
  EXPECT_EQ(h.beta, 0.0);
}

TEST(Householder, NanColumnPropagatesNan) {
  // NaN must stay visible: an all-NaN column looks like amax == 0 to the
  // max scan, but must not be laundered into an identity reflector.
  std::vector<cplx> x = {cplx(std::nan(""), 0.0), cplx(0.0, 0.0)};
  const Reflector h = make_reflector(x.data(), 2);
  EXPECT_TRUE(std::isnan(h.beta) || std::isnan(h.tau.real()) ||
              std::isnan(h.tau.imag()));
}

TEST(Householder, ReflectorIsUnitary) {
  Rng rng(4);
  std::vector<cplx> x(4);
  for (auto& v : x) v = rng.normal_cplx();
  const Reflector h = make_reflector(x.data(), 4);

  // Build H densely and check H^H H = I.
  Matrix hm = Matrix::identity(4);
  for (idx i = 0; i < 4; ++i)
    for (idx j = 0; j < 4; ++j)
      hm(i, j) -= h.tau * h.v[static_cast<std::size_t>(i)] *
                  std::conj(h.v[static_cast<std::size_t>(j)]);
  double defect = 0.0;
  for (idx i = 0; i < 4; ++i)
    for (idx j = 0; j < 4; ++j) {
      cplx dot = 0.0;
      for (idx k = 0; k < 4; ++k) dot += std::conj(hm(k, i)) * hm(k, j);
      defect = std::max(defect, std::abs(dot - (i == j ? cplx(1.0) : cplx(0.0))));
    }
  EXPECT_LT(defect, 1e-13);
}

TEST(Householder, ApplyLeftMatchesDenseProduct) {
  Rng rng(5);
  Matrix a = testing::random_matrix(5, 3, rng);
  std::vector<cplx> col(5);
  for (idx i = 0; i < 5; ++i) col[static_cast<std::size_t>(i)] = a(i, 0);
  const Reflector h = make_reflector(col.data(), 5);

  Matrix hm = Matrix::identity(5);
  for (idx i = 0; i < 5; ++i)
    for (idx j = 0; j < 5; ++j)
      hm(i, j) -= h.tau * h.v[static_cast<std::size_t>(i)] *
                  std::conj(h.v[static_cast<std::size_t>(j)]);
  const Matrix expect = gemm_reference(hm, a);

  Matrix b = a;
  apply_reflector_left(b, h, 0, 0, 3);
  EXPECT_LT(max_abs_diff(b, expect), 1e-13);
}

}  // namespace
}  // namespace qkmps::linalg
