/// Ablation — kernel construction methods. Compares, on identical data:
///   1. the paper's fidelity kernel |<psi(x)|psi(x')>|^2 via exact MPS
///      contraction (the headline method),
///   2. the projected quantum kernel (ref [12], offered as the alternative
///      in Sec. I): local Pauli expectations + classical RBF,
///   3. finite-shot estimates of the fidelity kernel — the hardware route,
///      swept over shot counts to expose the exponential-concentration
///      cost (ref [15]).
/// Reports cost profile, kernel diagnostics and test AUC for each.
///
/// Knobs: QKMPS_FULL=1, QKMPS_FEATURES, QKMPS_PER_CLASS.

#include <cstdio>

#include "bench_common.hpp"
#include "kernel/diagnostics.hpp"
#include "kernel/gram.hpp"
#include "kernel/projected.hpp"
#include "kernel/shot_kernel.hpp"
#include "svm/model_selection.hpp"
#include "util/timer.hpp"

using namespace qkmps;

namespace {

struct MethodResult {
  std::string name;
  double seconds = 0.0;
  double auc = 0.0;
  double alignment = 0.0;
  double mean_offdiag = 0.0;
  double min_eig = 0.0;
};

MethodResult evaluate(const std::string& name, const kernel::RealMatrix& k_train,
                      const kernel::RealMatrix& k_test,
                      const bench::LabelledSample& s, double seconds) {
  MethodResult r;
  r.name = name;
  r.seconds = seconds;
  const auto sweep = svm::sweep_regularization(k_train, s.y_train, k_test,
                                               s.y_test, svm::default_c_grid());
  r.auc = svm::best_by_test_auc(sweep).test.auc;
  r.alignment = kernel::target_alignment(k_train, s.y_train);
  r.mean_offdiag = kernel::concentration(k_train).mean_off_diagonal;
  r.min_eig = kernel::min_eigenvalue(k_train);
  return r;
}

}  // namespace

int main() {
  bench::print_header("Ablation: fidelity vs projected vs shot-estimated kernels");
  const bool full = full_scale_requested();
  const idx features = static_cast<idx>(env_int("QKMPS_FEATURES", full ? 30 : 10));
  const idx per_class = static_cast<idx>(env_int("QKMPS_PER_CLASS", full ? 150 : 50));

  const bench::LabelledSample s = bench::labelled_sample(per_class, features, 55);
  std::printf("features=%lld, %lld train / %lld test points, d=1, r=2, "
              "gamma=0.25\n\n",
              static_cast<long long>(features),
              static_cast<long long>(s.y_train.size()),
              static_cast<long long>(s.y_test.size()));

  std::vector<MethodResult> results;

  // 1. Exact fidelity kernel.
  kernel::QuantumKernelConfig fid;
  fid.ansatz = {.num_features = features, .layers = 2, .distance = 1,
                .gamma = 0.25};
  {
    Timer t;
    const auto train_states = kernel::simulate_states(fid, s.x_train);
    const auto test_states = kernel::simulate_states(fid, s.x_test);
    const auto k_train = kernel::gram_from_states(train_states, fid.sim.policy);
    const auto k_test =
        kernel::cross_from_states(test_states, train_states, fid.sim.policy);
    results.push_back(evaluate("fidelity(exact)", k_train, k_test, s, t.seconds()));
  }

  // 2. Projected kernel.
  {
    kernel::ProjectedKernelConfig proj;
    proj.ansatz = fid.ansatz;
    proj.gamma_p = 1.0;
    Timer t;
    const auto k_train = kernel::projected_gram(proj, s.x_train);
    const auto k_test = kernel::projected_cross(proj, s.x_test, s.x_train);
    results.push_back(evaluate("projected", k_train, k_test, s, t.seconds()));
  }

  // 3. Shot-estimated fidelity kernel across shot budgets.
  for (idx shots : {128, 1024, 8192}) {
    kernel::ShotKernelConfig shot;
    shot.base = fid;
    shot.shots = shots;
    Timer t;
    const auto k_train = kernel::shot_gram(shot, s.x_train);
    const auto k_test = kernel::shot_cross(shot, s.x_test, s.x_train);
    results.push_back(evaluate("shots=" + std::to_string(shots), k_train,
                               k_test, s, t.seconds()));
  }

  std::printf("%18s %10s %8s %12s %14s %12s\n", "method", "time (s)", "AUC",
              "alignment", "mean K(i,j)", "min eig");
  for (const auto& r : results) {
    std::printf("%18s %10.2f %8.3f %12.4f %14.5f %12.2e\n", r.name.c_str(),
                r.seconds, r.auc, r.alignment, r.mean_offdiag, r.min_eig);
  }

  std::printf("\nreading: the exact fidelity kernel is PSD (min eig >= 0) "
              "and sets the AUC reference; shot estimation converges to it "
              "as shots grow but small-shot kernels lose PSD-ness and AUC — "
              "the concentration cost of the hardware route. The projected "
              "kernel trades pairwise tensor contractions for per-point "
              "observable extraction.\n");
  return 0;
}
