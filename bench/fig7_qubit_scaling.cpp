/// Artifact A1 — Fig. 7 of the paper.
///
/// Simulation time as the number of qubits (= features) grows, for three
/// values of the kernel bandwidth gamma. The paper's observations to
/// reproduce: scaling in m is manageable (nowhere near the 2^m statevector
/// wall), and the intermediate gamma = 0.5 is the most expensive because
/// its angles generate the strongest entanglement.
///
/// Knobs: QKMPS_FULL=1 (m up to 165, d=6), QKMPS_DIST, QKMPS_SAMPLES.

#include <cstdio>

#include "bench_common.hpp"
#include "circuit/ansatz.hpp"
#include "mps/simulator.hpp"
#include "util/timer.hpp"

using namespace qkmps;

int main() {
  bench::print_header("Fig. 7: simulation time vs number of qubits");
  const bool full = full_scale_requested();
  const idx d = static_cast<idx>(env_int("QKMPS_DIST", full ? 6 : 3));
  const idx samples = static_cast<idx>(env_int("QKMPS_SAMPLES", full ? 8 : 3));

  std::vector<idx> qubit_axis;
  if (full) {
    qubit_axis = {25, 45, 65, 85, 105, 125, 145, 165};
  } else {
    qubit_axis = {10, 16, 22, 28, 34, 40};
  }
  const std::vector<double> gammas{0.1, 0.5, 1.0};

  std::printf("interaction distance d=%lld, layers r=2, samples=%lld\n\n",
              static_cast<long long>(d), static_cast<long long>(samples));
  std::printf("%8s", "qubits");
  for (double g : gammas) std::printf("  g=%.1f t(s)   chi", g);
  std::printf("\n");

  std::vector<std::vector<double>> times(gammas.size());
  const mps::MpsSimulator sim;
  for (idx m : qubit_axis) {
    std::printf("%8lld", static_cast<long long>(m));
    for (std::size_t gi = 0; gi < gammas.size(); ++gi) {
      const circuit::AnsatzParams ansatz{.num_features = m, .layers = 2,
                                         .distance = d, .gamma = gammas[gi]};
      const kernel::RealMatrix x =
          bench::scaled_features(samples, m, 31 + static_cast<std::uint64_t>(m));
      double total = 0.0;
      idx chi = 1;
      for (idx i = 0; i < samples; ++i) {
        std::vector<double> row(x.row(i), x.row(i) + m);
        Timer t;
        const auto r = sim.simulate(circuit::feature_map_circuit(ansatz, row));
        total += t.seconds();
        chi = std::max(chi, r.state.max_bond());
      }
      const double avg = total / static_cast<double>(samples);
      times[gi].push_back(avg);
      std::printf("  %10.3f %5lld", avg, static_cast<long long>(chi));
    }
    std::printf("\n");
  }

  // The Fig. 7 qualitative check: gamma=0.5 is the most expensive line.
  double sum01 = 0.0, sum05 = 0.0, sum10 = 0.0;
  for (std::size_t i = 0; i < times[0].size(); ++i) {
    sum01 += times[0][i];
    sum05 += times[1][i];
    sum10 += times[2][i];
  }
  std::printf("\ntotal time by gamma: 0.1 -> %.3fs, 0.5 -> %.3fs, 1.0 -> %.3fs"
              " (paper: gamma=0.5 largest)\n", sum01, sum05, sum10);

  bench::write_artifact("fig7_qubit_scaling.json", [&](JsonWriter& w) {
    w.field("distance", static_cast<long long>(d));
    std::vector<double> axis;
    for (idx m : qubit_axis) axis.push_back(static_cast<double>(m));
    w.field("qubits", axis);
    w.field("time_gamma_0_1", times[0]);
    w.field("time_gamma_0_5", times[1]);
    w.field("time_gamma_1_0", times[2]);
  });
  return 0;
}
