/// Artifact A4 — Fig. 8 of the paper.
///
/// Wall-clock breakdown of the distributed training-Gram computation as the
/// data set size and the rank count double together (round-robin strategy,
/// d=1 ansatz). The shape to reproduce: per-processor simulation time stays
/// ~constant, while per-processor inner-product time ~doubles per step
/// (quadratic work vs linear processor growth).
///
/// Thread-backed ranks share this machine's cores, so we report the
/// *modelled* k-processor wall clock: per-phase totals divided by the rank
/// count (each rank's work is balanced by construction; see DESIGN.md).
///
/// Knobs: QKMPS_FULL=1 (165 features, N up to 6400, ranks up to 32),
///        QKMPS_FEATURES, QKMPS_STEPS.

#include <cstdio>

#include "bench_common.hpp"
#include "kernel/distributed_gram.hpp"

using namespace qkmps;

int main() {
  bench::print_header("Fig. 8: Gram-matrix runtime breakdown, round-robin scaling");
  const bool full = full_scale_requested();
  const idx m = static_cast<idx>(env_int("QKMPS_FEATURES", 165));
  const idx steps = static_cast<idx>(env_int("QKMPS_STEPS", full ? 5 : 4));
  const idx base_n = full ? 400 : 32;
  const int base_ranks = full ? 2 : 1;

  kernel::QuantumKernelConfig cfg;
  cfg.ansatz = {.num_features = m, .layers = 2, .distance = 1, .gamma = 0.1};

  std::printf("features m=%lld, d=1, r=2, gamma=0.1 (the Fig. 8/9/10 ansatz)\n\n",
              static_cast<long long>(m));
  std::printf("%8s %7s %16s %16s %16s %12s\n", "N", "ranks", "sim/proc (s)",
              "ip/proc (s)", "comm/proc (s)", "entries");

  std::vector<double> sim_per_proc, ip_per_proc;
  for (idx s = 0; s < steps; ++s) {
    const idx n = base_n << s;
    const int ranks = base_ranks << s;
    const kernel::RealMatrix x =
        bench::scaled_features(n, m, 41 + static_cast<std::uint64_t>(s));

    kernel::GramStats stats;
    (void)kernel::distributed_gram_matrix(
        cfg, x, ranks, kernel::DistributionStrategy::RoundRobin, &stats);

    const double sim = stats.phases.total("simulation") / ranks;
    const double ip = stats.phases.total("inner_product") / ranks;
    const double comm = stats.phases.total("communication") / ranks;
    sim_per_proc.push_back(sim);
    ip_per_proc.push_back(ip);
    std::printf("%8lld %7d %16.3f %16.3f %16.4f %12lld\n",
                static_cast<long long>(n), ranks, sim, ip, comm,
                static_cast<long long>(stats.inner_products));
  }

  std::printf("\nshape check (paper): sim/proc ~constant; ip/proc ~doubles "
              "per step.\n");
  for (std::size_t s = 1; s < sim_per_proc.size(); ++s) {
    std::printf("  step %zu: sim ratio %.2f (expect ~1), ip ratio %.2f "
                "(expect ~2)\n",
                s, sim_per_proc[s] / sim_per_proc[s - 1],
                ip_per_proc[s] / ip_per_proc[s - 1]);
  }
  std::printf("\nextrapolation as in the paper: a 64,000-point data set at "
              "this per-pair cost would need ~%.1f processor-hours of inner "
              "products.\n",
              ip_per_proc.back() * (64000.0 * 63999.0 / 2.0) /
                  (static_cast<double>(base_n << (steps - 1)) *
                   static_cast<double>((base_n << (steps - 1)) - 1) / 2.0) *
                  (base_ranks << (steps - 1)) / 3600.0);

  bench::write_artifact("fig8_parallel_scaling.json", [&](JsonWriter& w) {
    w.field("features", static_cast<long long>(m));
    w.field("sim_per_proc", sim_per_proc);
    w.field("ip_per_proc", ip_per_proc);
  });
  return 0;
}
