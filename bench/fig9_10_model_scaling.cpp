/// Artifact A5 — Figs. 9 and 10 of the paper.
///
/// Train-set AUC (Fig. 9) and test-set AUC (Fig. 10) of the quantum-kernel
/// SVM as the number of features and the data-set size grow. The claims to
/// reproduce (C2.1): test AUC improves with features and with training
/// size; the smallest sample overfits (highest train AUC, plateauing test
/// AUC).
///
/// Knobs: QKMPS_FULL=1 (sizes {300,1500,6400} x features {15,50,100,165}),
///        QKMPS_SIZES / QKMPS_FEATURES unavailable here: edit the axis
///        vectors or use QKMPS_FULL.

#include <cstdio>

#include "bench_common.hpp"
#include "kernel/gram.hpp"
#include "svm/model_selection.hpp"

using namespace qkmps;

namespace {

struct CellResult {
  double train_auc = 0.0;
  double test_auc = 0.0;
};

CellResult run_cell(idx total_size, idx features, std::uint64_t seed) {
  const bench::LabelledSample s =
      bench::labelled_sample(total_size / 2, features, seed);

  kernel::QuantumKernelConfig cfg;
  cfg.ansatz = {.num_features = features, .layers = 2, .distance = 1,
                .gamma = 0.1};

  kernel::GramStats stats;
  const auto train_states = kernel::simulate_states(cfg, s.x_train, &stats);
  const auto test_states = kernel::simulate_states(cfg, s.x_test, &stats);
  const auto k_train =
      kernel::gram_from_states(train_states, cfg.sim.policy, &stats);
  const auto k_test = kernel::cross_from_states(test_states, train_states,
                                                cfg.sim.policy, &stats);

  const auto sweep = svm::sweep_regularization(k_train, s.y_train, k_test,
                                               s.y_test, svm::default_c_grid());
  const auto& best = svm::best_by_test_auc(sweep);
  return {best.train.auc, best.test.auc};
}

}  // namespace

int main() {
  bench::print_header("Figs. 9-10: AUC vs feature count and data size");
  const bool full = full_scale_requested();

  const std::vector<idx> sizes = full ? std::vector<idx>{300, 1500, 6400}
                                      : std::vector<idx>{80, 200, 480};
  const std::vector<idx> features = full ? std::vector<idx>{15, 50, 100, 165}
                                         : std::vector<idx>{6, 12, 24, 40};

  std::printf("ansatz: d=1, r=2, gamma=0.1; SVM C in [0.01, 4]\n");

  std::vector<std::vector<CellResult>> grid(sizes.size());
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    for (std::size_t fi = 0; fi < features.size(); ++fi) {
      grid[si].push_back(run_cell(sizes[si], features[fi],
                                  1000 + 7 * si + fi));
    }
  }

  const auto print_grid = [&](const char* title, bool test_side) {
    std::printf("\n[%s]\n%10s", title, "size\\feat");
    for (idx f : features) std::printf("%10lld", static_cast<long long>(f));
    std::printf("\n");
    for (std::size_t si = 0; si < sizes.size(); ++si) {
      std::printf("%10lld", static_cast<long long>(sizes[si]));
      for (std::size_t fi = 0; fi < features.size(); ++fi)
        std::printf("%10.3f", test_side ? grid[si][fi].test_auc
                                        : grid[si][fi].train_auc);
      std::printf("\n");
    }
  };
  print_grid("Fig. 9: TRAIN AUC", false);
  print_grid("Fig. 10: TEST AUC", true);

  // Shape checks corresponding to the paper's discussion.
  const std::size_t last = sizes.size() - 1;
  std::printf("\nshape checks:\n");
  std::printf("  largest size: test AUC at max features (%.3f) vs min features"
              " (%.3f) -> %s\n",
              grid[last].back().test_auc, grid[last].front().test_auc,
              grid[last].back().test_auc > grid[last].front().test_auc
                  ? "improves (matches paper)"
                  : "no improvement");
  std::printf("  smallest size train AUC (%.3f) vs largest size train AUC"
              " (%.3f) -> %s\n",
              grid[0].back().train_auc, grid[last].back().train_auc,
              grid[0].back().train_auc >= grid[last].back().train_auc
                  ? "small sample overfits (matches paper)"
                  : "unexpected");

  bench::write_artifact("fig9_10_model_scaling.json", [&](JsonWriter& w) {
    w.begin_array("cells");
    for (std::size_t si = 0; si < sizes.size(); ++si)
      for (std::size_t fi = 0; fi < features.size(); ++fi) {
        w.begin_array_object();
        w.field("size", static_cast<long long>(sizes[si]));
        w.field("features", static_cast<long long>(features[fi]));
        w.field("train_auc", grid[si][fi].train_auc);
        w.field("test_auc", grid[si][fi].test_auc);
        w.end_object();
      }
    w.end_array();
  });
  return 0;
}
