/// Ablation — truncation aggressiveness (the paper's conclusion: "if future
/// work shows that using more complex circuit ansatze is beneficial, more
/// aggressive truncation may be deemed necessary ... analysis of the noise
/// induced by truncation would be necessary"). This bench performs exactly
/// that analysis: sweep a hard bond-dimension cap chi_max, and report
///   - simulation speedup vs the exact (1e-16 weight budget) baseline,
///   - kernel error ||K_capped - K_exact||_max,
///   - accumulated discarded weight (the Eq. 8 fidelity bound),
///   - test AUC of the resulting model.
///
/// Knobs: QKMPS_FULL=1, QKMPS_FEATURES, QKMPS_PER_CLASS, QKMPS_DIST.

#include <cstdio>

#include "bench_common.hpp"
#include "kernel/gram.hpp"
#include "svm/model_selection.hpp"
#include "util/timer.hpp"

using namespace qkmps;

int main() {
  bench::print_header("Ablation: SVD truncation aggressiveness (chi cap)");
  const bool full = full_scale_requested();
  const idx features = static_cast<idx>(env_int("QKMPS_FEATURES", full ? 24 : 12));
  const idx per_class = static_cast<idx>(env_int("QKMPS_PER_CLASS", full ? 100 : 30));
  const idx d = static_cast<idx>(env_int("QKMPS_DIST", 3));

  const bench::LabelledSample s = bench::labelled_sample(per_class, features, 77);

  auto run_with_cap = [&](idx cap) {
    kernel::QuantumKernelConfig cfg;
    cfg.ansatz = {.num_features = features, .layers = 2, .distance = d,
                  .gamma = 0.35};
    cfg.sim.truncation.max_bond = cap;
    kernel::GramStats stats;
    Timer t;
    const auto train_states = kernel::simulate_states(cfg, s.x_train, &stats);
    const auto test_states = kernel::simulate_states(cfg, s.x_test, &stats);
    const auto k_train =
        kernel::gram_from_states(train_states, cfg.sim.policy, &stats);
    const auto k_test = kernel::cross_from_states(test_states, train_states,
                                                  cfg.sim.policy, &stats);
    const double secs = t.seconds();
    const auto sweep = svm::sweep_regularization(k_train, s.y_train, k_test,
                                                 s.y_test, svm::default_c_grid());
    return std::tuple{k_train, secs, stats.total_discarded_weight,
                      svm::best_by_test_auc(sweep).test.auc, stats.avg_max_bond};
  };

  const auto [k_exact, t_exact, w_exact, auc_exact, chi_exact] = run_with_cap(0);
  std::printf("baseline (weight budget 1e-16 only): %.2fs, avg chi %.1f, "
              "AUC %.3f\n\n",
              t_exact, chi_exact, auc_exact);
  std::printf("%8s %10s %12s %14s %16s %8s\n", "chi cap", "time (s)",
              "speedup", "max|K err|", "disc. weight", "AUC");

  for (idx cap : {64, 32, 16, 8, 4, 2}) {
    const auto [k_capped, secs, weight, auc, chi] = run_with_cap(cap);
    std::printf("%8lld %10.2f %11.2fx %14.2e %16.2e %8.3f\n",
                static_cast<long long>(cap), secs, t_exact / secs,
                kernel::max_abs_diff(k_capped, k_exact), weight, auc);
  }

  std::printf("\nreading: a moderate cap buys a large speedup at negligible "
              "kernel error (the discarded weight bounds the fidelity loss, "
              "Eq. 8); only very aggressive caps (chi <= 4) distort the "
              "kernel enough to move the AUC.\n");
  return 0;
}
