/// Rank-distributed serving benchmark: serve::RankShardedEngine — the
/// sharded frontend whose shard boundary is a parallel::Transport (see
/// DESIGN.md) — driven by the same deterministic serve::workload scenarios
/// as bench/serving_sharded, so the two frontends' numbers are directly
/// comparable.
///
/// Transports (--transport=inproc|socket, default inproc):
///  - inproc: shards are parallel::RankRuntime ranks, messages over typed
///    in-process channels.
///  - socket: shards are serving_rankd worker processes connected over
///    Unix-domain sockets with the QKFR frame codec — the real wire. The
///    bench spawns the workers itself (worker binary baked in at build
///    time, overridable with --worker=PATH); throughput/p99 against the
///    inproc numbers shows the framing + loopback cost.
///
/// Three sections:
///  1. Rank scaling (both transports): the cache-pressure uniform stream
///     swept over worker counts {1, 2, 4}, consistent-hash routing.
///     Per-shard resources fixed, so the aggregate cache scales with the
///     worker count exactly as in the in-process frontend.
///  2. Elastic resize (both transports — over sockets this grows a live
///     worker fleet: a new serving_rankd process is spawned and
///     handshaken while the survivors keep serving): a Zipf hot-key
///     stream served at N workers, then add_shard() to N+1 and the
///     identical stream replayed — once under the consistent-hash router
///     and once under feature-hash modulo. The table reports how many
///     keys remigrated and how many circuits the replay had to
///     re-simulate: the ring keeps ~(1 - 1/(N+1)) of the StateCaches
///     warm, modulo cold-starts nearly everything. Gate: the ring
///     replay's cache hit-rate must beat modulo's.
///  3. Self-heal (socket only): a worker is SIGKILL'd mid-stream. Every
///     in-flight future must still resolve (served or shed — zero lost),
///     the monitor must respawn the worker, and the respawned process
///     must serve again. Gate: respawn observed + zero lost futures.
///
/// Every served prediction is compared bitwise against the sequential
/// simulate_states + decision_values pipeline; any mismatch — or a
/// failed resize/self-heal gate — makes the process exit 1 (CI runs
/// `serving_ranked --quick` in both transports as parity + elasticity
/// smokes). Emits serving_ranked.json (inproc) /
/// serving_ranked_socket.json (socket).
///
/// Knobs: QKMPS_RANKED_REQUESTS, QKMPS_RANKED_UNIQUE,
/// QKMPS_RANKED_FEATURES, QKMPS_RANKED_LAYERS, QKMPS_RANKED_TRAIN,
/// QKMPS_RANKED_CACHE (per-shard StateCache entries); QKMPS_FULL=1 scales
/// everything up; --quick shrinks to a CI smoke.

#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "kernel/gram.hpp"
#include "obs/metrics.hpp"
#include "serve/rank_sharded_engine.hpp"
#include "serve/workload.hpp"
#include "svm/svm.hpp"
#include "util/timer.hpp"

using namespace qkmps;
namespace workload = qkmps::serve::workload;

namespace {

struct Setup {
  std::shared_ptr<const serve::ModelBundle> bundle;
  kernel::RealMatrix pool;
};

Setup build_setup(idx per_class, idx m, idx layers) {
  data::EllipticSyntheticParams gen;
  gen.num_points = std::max<idx>(24 * per_class, 2000);
  gen.num_features = m;
  const data::Dataset pool = data::generate_elliptic_synthetic(gen);
  Rng rng(42);
  const data::Dataset sample = data::balanced_subsample(pool, per_class, rng);
  const data::TrainTestSplit split = data::train_test_split(sample, 0.2, rng);
  const data::FeatureScaler scaler = data::FeatureScaler::fit(split.train.x);
  const auto x_train = scaler.transform(split.train.x);

  kernel::QuantumKernelConfig cfg;
  cfg.ansatz = {.num_features = m, .layers = layers, .distance = 1,
                .gamma = 0.25};
  const auto train_states = kernel::simulate_states(cfg, x_train);
  const auto k_train = kernel::gram_from_states(train_states, cfg.sim.policy);
  const auto model = svm::train_svc(k_train, split.train.y, {.c = 1.0});

  Setup s;
  s.bundle = std::make_shared<const serve::ModelBundle>(
      serve::make_bundle(cfg, scaler, model, train_states));
  s.pool = pool.x;
  return s;
}

std::vector<double> reference_values(const serve::ModelBundle& bundle,
                                     const kernel::RealMatrix& points) {
  const auto scaled = bundle.scaler.transform(points);
  const auto states = kernel::simulate_states(bundle.config, scaled);
  const auto k = kernel::cross_from_states(states, bundle.sv_states,
                                           bundle.config.sim.policy);
  return bundle.model.decision_values(k);
}

struct RunResult {
  double seconds = 0.0;
  double throughput = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t served = 0;
  std::uint64_t rejected = 0;
  std::uint64_t circuits = 0;
  double cache_hit_rate = 0.0;
  std::uint64_t parity_mismatches = 0;
  std::uint64_t untraced = 0;         ///< served with trace_id == 0
  std::uint64_t no_worker_spans = 0;  ///< served without a kWorker span
};

/// Every served latency across every scenario run, in the same units the
/// engine observes into serve.latency.total_seconds — the exact-percentile
/// side of the histogram-consistency gate.
std::vector<double> g_served_latencies;

/// Fire-and-join replay of a scenario through a ranked engine, parity-
/// checked per served prediction. `prior` subtracts an earlier snapshot so
/// resize rounds report per-round circuit/cache numbers.
RunResult run_scenario(serve::RankShardedEngine& engine,
                       const workload::Scenario& scenario,
                       const std::vector<double>& reference,
                       const serve::RankShardedStats* prior = nullptr) {
  std::vector<std::future<serve::RoutedPrediction>> futures;
  futures.reserve(static_cast<std::size_t>(scenario.size()));
  Timer total;
  for (idx r = 0; r < scenario.size(); ++r)
    futures.push_back(engine.submit(scenario.request(r)));

  RunResult res;
  std::vector<double> latencies;
  latencies.reserve(futures.size());
  for (idx r = 0; r < scenario.size(); ++r) {
    const serve::RoutedPrediction p =
        futures[static_cast<std::size_t>(r)].get();
    if (p.status == serve::ServeStatus::kServed) {
      ++res.served;
      latencies.push_back(p.total_seconds);
      g_served_latencies.push_back(p.total_seconds);
      if (p.trace.trace_id == 0) ++res.untraced;
      bool worker_span = false;
      for (const obs::Span& span : p.trace.spans)
        if (span.origin == obs::SpanOrigin::kWorker) worker_span = true;
      if (!worker_span) ++res.no_worker_spans;
      const idx u = scenario.order[static_cast<std::size_t>(r)];
      if (p.prediction.decision_value !=
          reference[static_cast<std::size_t>(u)])
        ++res.parity_mismatches;
    } else {
      ++res.rejected;
    }
  }
  res.seconds = total.seconds();
  res.throughput = static_cast<double>(res.served) / res.seconds;
  if (!latencies.empty()) {
    res.p50_ms = 1e3 * quantile(latencies, 0.50);
    res.p99_ms = 1e3 * quantile(latencies, 0.99);
  }

  const serve::RankShardedStats st = engine.stats();
  std::uint64_t hits = 0, lookups = 0, circuits = 0;
  for (std::size_t i = 0; i < st.shards.size(); ++i) {
    hits += st.shards[i].engine.cache.hits;
    lookups += st.shards[i].engine.cache.hits +
               st.shards[i].engine.cache.misses;
    circuits += st.shards[i].engine.circuits_simulated;
  }
  if (prior != nullptr) {
    std::uint64_t prior_hits = 0, prior_lookups = 0, prior_circuits = 0;
    for (std::size_t i = 0; i < prior->shards.size(); ++i) {
      prior_hits += prior->shards[i].engine.cache.hits;
      prior_lookups += prior->shards[i].engine.cache.hits +
                       prior->shards[i].engine.cache.misses;
      prior_circuits += prior->shards[i].engine.circuits_simulated;
    }
    hits -= prior_hits;
    lookups -= prior_lookups;
    circuits -= prior_circuits;
  }
  res.circuits = circuits;
  if (lookups > 0)
    res.cache_hit_rate =
        static_cast<double>(hits) / static_cast<double>(lookups);
  return res;
}

void print_row(const char* label, const RunResult& r) {
  std::printf("%-26s %9.0f req/s %8.2f ms %8.2f ms %6.0f%% %6llu %5llu/%llu\n",
              label, r.throughput, r.p50_ms, r.p99_ms,
              100.0 * r.cache_hit_rate,
              static_cast<unsigned long long>(r.circuits),
              static_cast<unsigned long long>(r.served),
              static_cast<unsigned long long>(r.rejected));
}

std::string hex_digest(std::uint64_t digest) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(digest));
  return buf;
}

/// Fraction of the scenario's unique keys that change shard when the given
/// router grows by one — measured on the actual routers, not estimated.
double remap_fraction(const serve::RouterConfig& cfg, std::size_t shards,
                      const workload::Scenario& scenario) {
  const auto before = serve::make_router(cfg, shards);
  const auto after = serve::make_router(cfg, shards);
  after->add_shard();
  std::size_t moved = 0;
  const idx n = scenario.unique_points.rows();
  for (idx i = 0; i < n; ++i) {
    const std::vector<double> key(
        scenario.unique_points.row(i),
        scenario.unique_points.row(i) + scenario.unique_points.cols());
    if (before->shard_for(key) != after->shard_for(key)) ++moved;
  }
  return n == 0 ? 0.0 : static_cast<double>(moved) / static_cast<double>(n);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool socket_mode = false;
  std::string metrics_out;
  std::string worker_path =
#ifdef QKMPS_RANKD_PATH
      QKMPS_RANKD_PATH;
#else
      "";
#endif
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      metrics_out = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--transport=", 12) == 0) {
      const std::string kind = argv[i] + 12;
      if (kind == "socket") {
        socket_mode = true;
      } else if (kind != "inproc") {
        std::fprintf(stderr, "unknown --transport=%s (inproc|socket)\n",
                     kind.c_str());
        return 2;
      }
    } else if (std::strncmp(argv[i], "--worker=", 9) == 0) {
      worker_path = argv[i] + 9;
    }
  }
  if (socket_mode && worker_path.empty()) {
    std::fprintf(stderr,
                 "--transport=socket needs --worker=PATH (no serving_rankd "
                 "baked into this build)\n");
    return 2;
  }
  // Socket mode hands the model to the workers through the bundle format;
  // stage it in a per-process temp directory.
  const std::string bundle_dir =
      (std::filesystem::temp_directory_path() /
       ("qkmps_serving_ranked_" + std::to_string(::getpid())))
          .string();
  const auto configure_transport = [&](serve::RankShardedEngineConfig& rcfg) {
    if (!socket_mode) return;
    rcfg.transport = serve::TransportKind::kSocket;
    rcfg.socket.worker_path = worker_path;
    rcfg.socket.bundle_dir = bundle_dir;
  };

  bench::print_header(socket_mode
                          ? "serving_ranked: rank-distributed sharded "
                            "frontend over socket workers (serving_rankd)"
                          : "serving_ranked: rank-distributed sharded "
                            "frontend over RankRuntime");
  const bool full = full_scale_requested();
  const idx per_class = env_int("QKMPS_RANKED_TRAIN", full ? 100 : 24);
  const idx m = env_int("QKMPS_RANKED_FEATURES", full ? 20 : 10);
  const idx layers = env_int("QKMPS_RANKED_LAYERS", 4);
  const idx n_requests =
      env_int("QKMPS_RANKED_REQUESTS", full ? 4000 : (quick ? 240 : 600));
  const idx n_unique =
      env_int("QKMPS_RANKED_UNIQUE", full ? 512 : (quick ? 48 : 96));
  const idx cache_entries =
      env_int("QKMPS_RANKED_CACHE", std::max<idx>(4, n_unique / 4));
  const std::vector<std::size_t> rank_counts =
      quick ? std::vector<std::size_t>{1, 2}
            : std::vector<std::size_t>{1, 2, 4};

  std::printf("workload: %lld requests over %lld unique points, %lld-qubit "
              "r=%lld ansatz, %lld per-shard cache entries\n",
              static_cast<long long>(n_requests),
              static_cast<long long>(n_unique), static_cast<long long>(m),
              static_cast<long long>(layers),
              static_cast<long long>(cache_entries));
  const Setup setup = build_setup(per_class, m, layers);
  std::printf("bundle: %lld support vectors resident (shared across ranks)\n",
              static_cast<long long>(setup.bundle->num_support_vectors()));

  std::uint64_t total_mismatches = 0;
  std::uint64_t total_untraced = 0;
  std::uint64_t total_no_worker_spans = 0;
  const auto count_trace_gate = [&](const RunResult& r) {
    total_untraced += r.untraced;
    total_no_worker_spans += r.no_worker_spans;
  };

  // --- Section 1: rank scaling on the cache-pressure uniform stream. ----
  workload::ScenarioConfig pressure;
  pressure.name = "cache-pressure-uniform";
  pressure.seed = 2024;
  pressure.num_requests = n_requests;
  pressure.num_unique = n_unique;
  const workload::Scenario scaling_stream =
      workload::make_scenario(pressure, setup.pool);
  const std::vector<double> scaling_ref =
      reference_values(*setup.bundle, scaling_stream.unique_points);
  std::printf("\nscenario %s (digest %s), consistent-hash routing, "
              "%s transport\n",
              pressure.name.c_str(),
              hex_digest(workload::scenario_digest(scaling_stream)).c_str(),
              socket_mode ? "socket" : "inproc");
  std::printf("%-26s %15s %11s %11s %7s %7s %10s\n", "configuration",
              "throughput", "p50", "p99", "cache", "circ", "srv/rej");

  std::vector<RunResult> scaling;
  for (std::size_t ranks : rank_counts) {
    serve::RankShardedEngineConfig rcfg;
    rcfg.num_shards = ranks;
    rcfg.ingress_capacity = static_cast<std::size_t>(n_requests);  // admit all
    rcfg.engine.max_batch = 16;
    rcfg.engine.cache_capacity = static_cast<std::size_t>(cache_entries);
    rcfg.engine.memo_capacity = static_cast<std::size_t>(cache_entries);
    configure_transport(rcfg);
    serve::RankShardedEngine engine(setup.bundle, rcfg);
    scaling.push_back(run_scenario(engine, scaling_stream, scaling_ref));
    char label[64];
    std::snprintf(label, sizeof label, "%zu worker %s%s", ranks,
                  socket_mode ? "proc" : "rank", ranks == 1 ? "" : "s");
    print_row(label, scaling.back());
    total_mismatches += scaling.back().parity_mismatches;
    count_trace_gate(scaling.back());
  }
  const double speedup =
      scaling.back().throughput / scaling.front().throughput;
  std::printf("\n%zu workers vs 1: %.2fx throughput (per-shard resources "
              "fixed; transport: %s)\n",
              rank_counts.back(), speedup,
              socket_mode ? "QKFR-framed unix sockets"
                          : "the typed Comm channel pair");

  // --- Section 2: elastic resize, ring vs modulo on a Zipf stream. ------
  // Both transports: over sockets the add_shard() spawns and handshakes a
  // live serving_rankd process while the survivors keep serving.
  const std::size_t resize_from = quick ? 2 : 3;
  workload::ScenarioConfig zipf;
  zipf.name = "zipf-hot-keys";
  zipf.seed = 77;
  zipf.num_requests = quick ? n_requests / 2 : n_requests;
  zipf.num_unique = n_unique;
  zipf.keys = workload::KeyPattern::kZipf;
  const workload::Scenario zipf_stream =
      workload::make_scenario(zipf, setup.pool);

  struct ResizeOutcome {
    const char* router = "";
    double remap = 0.0;
    RunResult before, after;
  };
  std::vector<ResizeOutcome> outcomes;
  {
    const std::vector<double> zipf_ref =
        reference_values(*setup.bundle, zipf_stream.unique_points);

    std::printf("\nresize %zu -> %zu %s on %s (digest %s): run, add_shard, "
                "replay\n",
                resize_from, resize_from + 1,
                socket_mode ? "worker processes" : "ranks", zipf.name.c_str(),
                hex_digest(workload::scenario_digest(zipf_stream)).c_str());
    std::printf("%-26s %15s %11s %11s %7s %7s %10s\n", "configuration",
                "throughput", "p50", "p99", "cache", "circ", "srv/rej");

    for (const serve::RouterKind kind :
         {serve::RouterKind::kConsistentHash,
          serve::RouterKind::kFeatureHashModulo}) {
      ResizeOutcome oc;
      oc.router = serve::to_string(kind);
      const serve::RouterConfig router_cfg{kind, 128};
      oc.remap = remap_fraction(router_cfg, resize_from, zipf_stream);

      serve::RankShardedEngineConfig rcfg;
      rcfg.num_shards = resize_from;
      rcfg.router = router_cfg;
      rcfg.ingress_capacity = static_cast<std::size_t>(zipf.num_requests);
      rcfg.engine.max_batch = 16;
      // Cache sized for the whole working set so the replay measures key
      // remigration, not capacity eviction; memo off so the StateCache is
      // what gets measured.
      rcfg.engine.cache_capacity = static_cast<std::size_t>(n_unique) * 2;
      rcfg.engine.memo_capacity = 0;
      configure_transport(rcfg);
      serve::RankShardedEngine engine(setup.bundle, rcfg);

      oc.before = run_scenario(engine, zipf_stream, zipf_ref);
      const serve::RankShardedStats snapshot = engine.stats();
      engine.add_shard();
      oc.after = run_scenario(engine, zipf_stream, zipf_ref, &snapshot);
      total_mismatches += oc.before.parity_mismatches;
      total_mismatches += oc.after.parity_mismatches;
      count_trace_gate(oc.before);
      count_trace_gate(oc.after);

      char label[64];
      std::snprintf(label, sizeof label, "%s cold", oc.router);
      print_row(label, oc.before);
      std::snprintf(label, sizeof label, "%s replay", oc.router);
      print_row(label, oc.after);
      std::printf("%-26s remapped %.0f%% of unique keys; replay re-simulated "
                  "%llu circuits\n",
                  "", 100.0 * oc.remap,
                  static_cast<unsigned long long>(oc.after.circuits));
      outcomes.push_back(oc);
    }
  }
  // Gate: the whole point of the ring is that a resize keeps the
  // survivors' StateCaches warm — its replay hit-rate must beat modulo's.
  const bool resize_gate_ok =
      outcomes.size() == 2 &&
      outcomes[0].after.cache_hit_rate > outcomes[1].after.cache_hit_rate;
  if (!resize_gate_ok)
    std::printf("\nRESIZE GATE FAILURE: consistent-hash replay hit-rate "
                "(%.0f%%) did not beat modulo (%.0f%%)\n",
                outcomes.size() == 2 ? 100.0 * outcomes[0].after.cache_hit_rate
                                     : 0.0,
                outcomes.size() == 2 ? 100.0 * outcomes[1].after.cache_hit_rate
                                     : 0.0);

  // Observability gate 1: every served request must come back traced, and
  // over sockets the worker-side spans must have survived the wire.
  const bool trace_gate_ok =
      total_untraced == 0 && (!socket_mode || total_no_worker_spans == 0);
  if (!trace_gate_ok)
    std::printf("\nTRACE GATE FAILURE: %llu served requests untraced, %llu "
                "without worker spans\n",
                static_cast<unsigned long long>(total_untraced),
                static_cast<unsigned long long>(total_no_worker_spans));

  // Observability gate 2: the registry's log-bucket latency histogram must
  // agree with the exact percentile over the identical samples (the engine
  // observes the very value RoutedPrediction.total_seconds reports), so
  // the only admissible error is bucket resolution — one growth factor per
  // interpolated rank. Snapshot now, before the self-heal section's extra
  // probe traffic lands in the histogram.
  const obs::Histogram::Snapshot latency_snapshot =
      obs::Registry::global().histogram("serve.latency.total_seconds")
          .snapshot();
  const double hist_p50 = latency_snapshot.quantile(0.50);
  const double exact_p50 = quantile(g_served_latencies, 0.50);
  const double p50_factor = hist_p50 > exact_p50 ? hist_p50 / exact_p50
                                                 : exact_p50 / hist_p50;
  const double p50_tolerance =
      obs::Histogram::growth() * obs::Histogram::growth();
  const bool latency_gate_ok =
      latency_snapshot.count == g_served_latencies.size() &&
      hist_p50 > 0.0 && p50_factor < p50_tolerance;
  std::printf("\nlatency histogram: %llu observed, p50 %.3f ms vs exact "
              "%.3f ms (x%.3f, bucket resolution x%.3f)%s\n",
              static_cast<unsigned long long>(latency_snapshot.count),
              1e3 * hist_p50, 1e3 * exact_p50, p50_factor, p50_tolerance,
              latency_gate_ok ? "" : "  <-- LATENCY GATE FAILURE");

  // --- Section 3: self-heal (socket only): SIGKILL a worker mid-stream. -
  // Gate: every future resolves (zero lost), the monitor respawns the
  // victim, and the respawned process serves again.
  struct SelfHealOutcome {
    bool ran = false;
    bool ok = false;
    long victim_pid = 0;
    long respawned_pid = 0;
    std::uint64_t respawns = 0;
    std::uint64_t served = 0;
    std::uint64_t shed = 0;
    double seconds_to_serve_again = 0.0;
    bool flight_ok = false;
    std::uint64_t flight_events = 0;
    std::uint64_t flight_traces = 0;
  };
  SelfHealOutcome heal;
  const std::string flight_dump = "serving_ranked_flight.json";
  if (socket_mode) {
    heal.ran = true;
    serve::RankShardedEngineConfig rcfg;
    rcfg.num_shards = 2;
    rcfg.ingress_capacity = static_cast<std::size_t>(zipf.num_requests);
    rcfg.engine.max_batch = 16;
    rcfg.engine.cache_capacity = static_cast<std::size_t>(cache_entries);
    rcfg.engine.memo_capacity = static_cast<std::size_t>(cache_entries);
    configure_transport(rcfg);
    rcfg.socket.respawn = true;
    rcfg.socket.respawn_backoff = std::chrono::milliseconds(100);
    // The flight recorder's postmortem artifact: written at engine
    // destruction (end of this block), uploaded by CI next to the bench
    // JSON.
    rcfg.flight_dump_path = flight_dump;
    serve::RankShardedEngine engine(setup.bundle, rcfg);

    const std::size_t victim = 0;
    heal.victim_pid = engine.worker_pid(victim);

    // Fire the whole stream, murder the victim with requests in flight,
    // then collect: .get() on every future proves none is lost.
    std::vector<std::future<serve::RoutedPrediction>> futures;
    futures.reserve(static_cast<std::size_t>(zipf_stream.size()));
    for (idx r = 0; r < zipf_stream.size(); ++r)
      futures.push_back(engine.submit(zipf_stream.request(r)));
    ::kill(static_cast<pid_t>(heal.victim_pid), SIGKILL);
    for (auto& f : futures) {
      const serve::RoutedPrediction p = f.get();
      if (p.status == serve::ServeStatus::kServed)
        ++heal.served;
      else
        ++heal.shed;
    }

    // Hammer the victim's shard until the respawned worker serves again.
    Timer recover;
    bool serves_again = false;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (!serves_again && std::chrono::steady_clock::now() < deadline) {
      bool sent_one = false;
      for (idx u = 0; u < zipf_stream.unique_points.rows(); ++u) {
        const std::vector<double> key(
            zipf_stream.unique_points.row(u),
            zipf_stream.unique_points.row(u) +
                zipf_stream.unique_points.cols());
        if (engine.shard_for(key) != static_cast<int>(victim)) continue;
        sent_one = true;
        if (engine.submit(key).get().status == serve::ServeStatus::kServed) {
          serves_again = true;
          break;
        }
      }
      if (!sent_one) break;  // nothing routes to the victim: cannot probe
      if (!serves_again)
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    heal.seconds_to_serve_again = recover.seconds();

    const serve::RankShardedStats st = engine.stats();
    heal.respawns = st.shards[victim].respawns;
    heal.respawned_pid = engine.worker_pid(victim);
    heal.ok = serves_again && heal.respawns >= 1 &&
              heal.respawned_pid > 0 && heal.respawned_pid != heal.victim_pid;

    // The flight recorder must tell the incident's story in order: the
    // victim's spawn, its death, then the respawn that healed the slot
    // (seq is monotonic, so ring order is incident order).
    const obs::FlightRecorder& flight = engine.flight_recorder();
    heal.flight_events = flight.events_recorded();
    heal.flight_traces = flight.traces_recorded();
    std::uint64_t spawn_seq = 0, death_seq = 0, respawn_seq = 0;
    bool saw_spawn = false, saw_death = false, saw_respawn = false;
    for (const obs::LifecycleEvent& e : flight.events()) {
      if (e.shard != static_cast<int>(victim)) continue;
      if (e.kind == obs::EventKind::kSpawn && !saw_spawn) {
        saw_spawn = true;
        spawn_seq = e.seq;
      } else if (e.kind == obs::EventKind::kWorkerDeath && !saw_death) {
        saw_death = true;
        death_seq = e.seq;
      } else if (e.kind == obs::EventKind::kRespawn && !saw_respawn) {
        saw_respawn = true;
        respawn_seq = e.seq;
      }
    }
    const bool sequence_ok = saw_spawn && saw_death && saw_respawn &&
                             spawn_seq < death_seq && death_seq < respawn_seq;
    heal.flight_ok = sequence_ok && heal.flight_traces > 0;
    heal.ok = heal.ok && heal.flight_ok;

    std::printf("\nself-heal: SIGKILL'd worker %ld mid-stream; %llu served / "
                "%llu shed / 0 lost; respawned as pid %ld after %llu "
                "attempt(s); serving again in %.2fs%s\n",
                heal.victim_pid,
                static_cast<unsigned long long>(heal.served),
                static_cast<unsigned long long>(heal.shed),
                heal.respawned_pid,
                static_cast<unsigned long long>(heal.respawns),
                heal.seconds_to_serve_again,
                heal.ok ? "" : "  <-- SELF-HEAL GATE FAILURE");
    std::printf("flight recorder: %llu events / %llu traces ringed; "
                "spawn->death->respawn sequence %s; postmortem dump -> %s\n",
                static_cast<unsigned long long>(heal.flight_events),
                static_cast<unsigned long long>(heal.flight_traces),
                sequence_ok ? "verified" : "MISSING",
                flight_dump.c_str());
  }
  const bool self_heal_ok = !heal.ran || heal.ok;

  if (total_mismatches > 0)
    std::printf("\nPARITY FAILURE: %llu served predictions diverged from the "
                "sequential pipeline\n",
                static_cast<unsigned long long>(total_mismatches));
  else
    std::printf("\nparity: every served prediction bitwise-matches the "
                "sequential pipeline\n");

  bench::write_artifact(
      socket_mode ? "serving_ranked_socket.json" : "serving_ranked.json",
      [&](JsonWriter& jw) {
    jw.field("bench", "serving_ranked");
    jw.field("transport", socket_mode ? "socket" : "inproc");
    jw.field("quick", quick);
    jw.field("requests", static_cast<long long>(n_requests));
    jw.field("unique_points", static_cast<long long>(n_unique));
    jw.field("features", static_cast<long long>(m));
    jw.field("per_shard_cache_entries", static_cast<long long>(cache_entries));
    jw.field("support_vectors",
             static_cast<long long>(setup.bundle->num_support_vectors()));
    jw.field("parity_ok", total_mismatches == 0);
    jw.field("trace_gate_ok", trace_gate_ok);
    jw.field("untraced", static_cast<long long>(total_untraced));
    jw.field("served_without_worker_spans",
             static_cast<long long>(total_no_worker_spans));
    jw.begin_object("latency_histogram");
    jw.field("ok", latency_gate_ok);
    jw.field("observed", static_cast<long long>(latency_snapshot.count));
    jw.field("p50_seconds", hist_p50);
    jw.field("exact_p50_seconds", exact_p50);
    jw.field("p50_factor", p50_factor);
    jw.field("bucket_resolution_factor", p50_tolerance);
    jw.end_object();
    jw.begin_array("rank_scaling");
    for (std::size_t i = 0; i < rank_counts.size(); ++i) {
      const RunResult& r = scaling[i];
      jw.begin_array_object();
      jw.field("worker_ranks", static_cast<long long>(rank_counts[i]));
      jw.field("throughput_rps", r.throughput);
      jw.field("p50_ms", r.p50_ms);
      jw.field("p99_ms", r.p99_ms);
      jw.field("cache_hit_rate", r.cache_hit_rate);
      jw.field("circuits", static_cast<long long>(r.circuits));
      jw.field("served", static_cast<long long>(r.served));
      jw.end_object();
    }
    jw.end_array();
    jw.field("scaling_scenario_digest",
             hex_digest(workload::scenario_digest(scaling_stream)));
    jw.field("speedup_max_ranks_vs_1", speedup);
    jw.field("resize_from_ranks", static_cast<long long>(resize_from));
    jw.field("resize_scenario_digest",
             hex_digest(workload::scenario_digest(zipf_stream)));
    jw.field("resize_gate_ok", resize_gate_ok);
    jw.begin_array("resize");
    for (const ResizeOutcome& oc : outcomes) {
      jw.begin_array_object();
      jw.field("router", oc.router);
      jw.field("remap_fraction", oc.remap);
      jw.field("cold_circuits", static_cast<long long>(oc.before.circuits));
      jw.field("cold_cache_hit_rate", oc.before.cache_hit_rate);
      jw.field("replay_circuits", static_cast<long long>(oc.after.circuits));
      jw.field("replay_cache_hit_rate", oc.after.cache_hit_rate);
      jw.field("replay_throughput_rps", oc.after.throughput);
      jw.end_object();
    }
    jw.end_array();
    if (heal.ran) {
      jw.begin_object("self_heal");
      jw.field("ok", heal.ok);
      jw.field("victim_pid", static_cast<long long>(heal.victim_pid));
      jw.field("respawned_pid", static_cast<long long>(heal.respawned_pid));
      jw.field("respawns", static_cast<long long>(heal.respawns));
      jw.field("served", static_cast<long long>(heal.served));
      jw.field("shed", static_cast<long long>(heal.shed));
      jw.field("lost_futures", 0LL);  // every .get() returned, by control flow
      jw.field("seconds_to_serve_again", heal.seconds_to_serve_again);
      jw.field("flight_ok", heal.flight_ok);
      jw.field("flight_events", static_cast<long long>(heal.flight_events));
      jw.field("flight_traces", static_cast<long long>(heal.flight_traces));
      jw.field("flight_dump", flight_dump);
      jw.end_object();
    }
  });
  // Full registry snapshot — counters, gauges, every latency histogram
  // including the self-heal section's traffic — as its own artifact.
  if (!metrics_out.empty()) {
    std::ofstream mos(metrics_out, std::ios::binary | std::ios::trunc);
    if (mos)
      mos << obs::Registry::global().render_json() << "\n";
    else
      std::fprintf(stderr, "could not write --metrics-out=%s\n",
                   metrics_out.c_str());
  }
  std::error_code ec;
  std::filesystem::remove_all(bundle_dir, ec);
  std::filesystem::remove_all(bundle_dir + ".tmp", ec);
  return (total_mismatches == 0 && resize_gate_ok && self_heal_ok &&
          trace_gate_ok && latency_gate_ok)
             ? 0
             : 1;
}
