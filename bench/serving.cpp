/// Serving-subsystem benchmark: end-to-end throughput (requests/sec) and
/// p50/p99 request latency of the micro-batched InferenceEngine, swept
/// over batch size and cache configuration, against the naive baseline a
/// one-shot script would use (re-simulate the query circuit per request,
/// sequentially, no batching, no cache).
///
/// Workload: a repeated-query stream — each request is drawn from a small
/// pool of distinct transactions, so a fraction of traffic re-queries
/// recently seen points (the regime the StateCache targets; Sec. III-A's
/// "one circuit simulation per new point" is the cost being amortized).
///
/// Knobs: QKMPS_SERVE_REQUESTS, QKMPS_SERVE_UNIQUE, QKMPS_SERVE_FEATURES,
/// QKMPS_SERVE_TRAIN (per class); QKMPS_FULL=1 scales everything up.
/// Emits serving.json for the bench trajectory.

#include <cstdio>
#include <future>
#include <vector>

#include "bench_common.hpp"
#include "kernel/gram.hpp"
#include "mps/inner_product.hpp"
#include "serve/inference_engine.hpp"
#include "svm/svm.hpp"
#include "util/timer.hpp"

using namespace qkmps;

namespace {

struct Workload {
  serve::ModelBundle bundle;
  kernel::RealMatrix requests;  ///< raw (unscaled) feature rows, with repeats
  idx n_train = 0;
};

Workload build_workload(idx per_class, idx m, idx layers, idx n_requests,
                        idx n_unique) {
  data::EllipticSyntheticParams gen;
  gen.num_points = std::max<idx>(24 * per_class, 2000);
  gen.num_features = m;
  const data::Dataset pool = data::generate_elliptic_synthetic(gen);
  Rng rng(42);
  const data::Dataset sample = data::balanced_subsample(pool, per_class, rng);
  const data::TrainTestSplit split = data::train_test_split(sample, 0.2, rng);
  const data::FeatureScaler scaler = data::FeatureScaler::fit(split.train.x);
  const auto x_train = scaler.transform(split.train.x);

  kernel::QuantumKernelConfig cfg;
  cfg.ansatz = {.num_features = m, .layers = layers, .distance = 1,
                .gamma = 0.25};
  const auto train_states = kernel::simulate_states(cfg, x_train);
  const auto k_train = kernel::gram_from_states(train_states, cfg.sim.policy);
  const auto model = svm::train_svc(k_train, split.train.y, {.c = 1.0});

  Workload w;
  w.bundle = serve::make_bundle(cfg, scaler, model, train_states);
  w.n_train = split.train.size();

  // Repeated-query stream over a small pool of distinct transactions.
  Rng traffic(7);
  w.requests = kernel::RealMatrix(n_requests, m);
  for (idx r = 0; r < n_requests; ++r) {
    const idx pick = static_cast<idx>(traffic.uniform_int(
        static_cast<std::uint64_t>(std::min(n_unique, pool.size()))));
    for (idx j = 0; j < m; ++j) w.requests(r, j) = pool.x(pick, j);
  }
  return w;
}

struct RunResult {
  double seconds = 0.0;
  double throughput = 0.0;  ///< requests / second
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double hit_rate = 0.0;
  std::uint64_t circuits = 0;
};

/// Baseline: what inference costs without the serving layer — per request,
/// scale + simulate the circuit + #SV inner products + score, one after
/// another. Latency == per-request wall time (no queueing).
RunResult run_sequential_baseline(const Workload& w) {
  const serve::ModelBundle& b = w.bundle;
  const idx n_sv = b.num_support_vectors();
  std::vector<double> latencies;
  latencies.reserve(static_cast<std::size_t>(w.requests.rows()));
  Timer total;
  for (idx r = 0; r < w.requests.rows(); ++r) {
    Timer per_request;
    kernel::RealMatrix one(1, w.requests.cols());
    for (idx j = 0; j < w.requests.cols(); ++j) one(0, j) = w.requests(r, j);
    const auto scaled = b.scaler.transform(one);
    const auto state = kernel::simulate_states(b.config, scaled);
    std::vector<double> k_row(static_cast<std::size_t>(n_sv));
    for (idx j = 0; j < n_sv; ++j)
      k_row[static_cast<std::size_t>(j)] = mps::overlap_squared(
          state[0], b.sv_states[static_cast<std::size_t>(j)], b.config.sim.policy);
    (void)b.model.decision_value(k_row);
    latencies.push_back(per_request.seconds());
  }
  RunResult res;
  res.seconds = total.seconds();
  res.throughput = static_cast<double>(w.requests.rows()) / res.seconds;
  res.p50_ms = 1e3 * quantile(latencies, 0.50);
  res.p99_ms = 1e3 * quantile(latencies, 0.99);
  res.circuits = static_cast<std::uint64_t>(w.requests.rows());
  return res;
}

RunResult run_engine(const Workload& w, std::size_t max_batch,
                     std::size_t cache_capacity) {
  serve::EngineConfig cfg;
  cfg.max_batch = max_batch;
  cfg.cache_capacity = cache_capacity;
  cfg.batch_deadline = std::chrono::microseconds(500);
  serve::InferenceEngine engine(w.bundle, cfg);

  std::vector<std::future<serve::Prediction>> futures;
  futures.reserve(static_cast<std::size_t>(w.requests.rows()));
  Timer total;
  for (idx r = 0; r < w.requests.rows(); ++r)
    futures.push_back(engine.submit(std::vector<double>(
        w.requests.row(r), w.requests.row(r) + w.requests.cols())));
  std::vector<double> latencies;
  latencies.reserve(futures.size());
  for (auto& f : futures) latencies.push_back(f.get().latency_seconds);

  RunResult res;
  res.seconds = total.seconds();
  res.throughput = static_cast<double>(w.requests.rows()) / res.seconds;
  res.p50_ms = 1e3 * quantile(latencies, 0.50);
  res.p99_ms = 1e3 * quantile(latencies, 0.99);
  const serve::EngineStats stats = engine.stats();
  res.hit_rate = stats.cache.hit_rate();
  res.circuits = stats.circuits_simulated;
  return res;
}

void print_row(const char* label, const RunResult& r) {
  std::printf("%-28s %9.0f req/s %9.2f ms %9.2f ms %7.0f%% %9llu\n", label,
              r.throughput, r.p50_ms, r.p99_ms, 100.0 * r.hit_rate,
              static_cast<unsigned long long>(r.circuits));
}

}  // namespace

int main() {
  bench::print_header("serving: micro-batched engine vs per-request re-simulation");
  const bool full = full_scale_requested();
  const idx per_class = env_int("QKMPS_SERVE_TRAIN", full ? 100 : 30);
  const idx m = env_int("QKMPS_SERVE_FEATURES", full ? 20 : 10);
  const idx layers = env_int("QKMPS_SERVE_LAYERS", 4);
  const idx n_requests = env_int("QKMPS_SERVE_REQUESTS", full ? 2000 : 400);
  const idx n_unique = env_int("QKMPS_SERVE_UNIQUE", full ? 200 : 25);

  std::printf("workload: %lld requests over %lld unique points, %lld-qubit "
              "r=%lld ansatz, %lld training points per class\n",
              static_cast<long long>(n_requests),
              static_cast<long long>(n_unique), static_cast<long long>(m),
              static_cast<long long>(layers),
              static_cast<long long>(per_class));
  const Workload w = build_workload(per_class, m, layers, n_requests, n_unique);
  std::printf("bundle: %lld support vectors of %lld training points\n\n",
              static_cast<long long>(w.bundle.num_support_vectors()),
              static_cast<long long>(w.n_train));

  std::printf("%-28s %15s %12s %12s %8s %10s\n", "configuration", "throughput",
              "p50", "p99", "hits", "circuits");

  const RunResult baseline = run_sequential_baseline(w);
  print_row("sequential re-simulation", baseline);

  struct Config {
    const char* label;
    std::size_t max_batch;
    std::size_t cache;
  };
  const std::vector<Config> configs{
      {"engine b=1  cache=off", 1, 0},
      {"engine b=8  cache=off", 8, 0},
      {"engine b=32 cache=off", 32, 0},
      {"engine b=8  cache=on", 8, 4096},
      {"engine b=32 cache=on", 32, 4096},
  };
  std::vector<RunResult> results;
  for (const Config& c : configs) {
    results.push_back(run_engine(w, c.max_batch, c.cache));
    print_row(c.label, results.back());
  }

  const double speedup = results.back().throughput / baseline.throughput;
  std::printf("\nbatched+cached vs sequential: %.1fx throughput, %llu vs %llu "
              "circuits simulated\n",
              speedup,
              static_cast<unsigned long long>(results.back().circuits),
              static_cast<unsigned long long>(baseline.circuits));

  bench::write_artifact("serving.json", [&](JsonWriter& jw) {
    jw.field("bench", "serving");
    jw.field("requests", static_cast<long long>(n_requests));
    jw.field("unique_points", static_cast<long long>(n_unique));
    jw.field("features", static_cast<long long>(m));
    jw.field("support_vectors",
             static_cast<long long>(w.bundle.num_support_vectors()));
    jw.begin_object("baseline");
    jw.field("throughput_rps", baseline.throughput);
    jw.field("p50_ms", baseline.p50_ms);
    jw.field("p99_ms", baseline.p99_ms);
    jw.field("circuits", static_cast<long long>(baseline.circuits));
    jw.end_object();
    jw.begin_array("engine");
    for (std::size_t i = 0; i < configs.size(); ++i) {
      jw.begin_array_object();
      jw.field("max_batch", static_cast<long long>(configs[i].max_batch));
      jw.field("cache_capacity", static_cast<long long>(configs[i].cache));
      jw.field("throughput_rps", results[i].throughput);
      jw.field("p50_ms", results[i].p50_ms);
      jw.field("p99_ms", results[i].p99_ms);
      jw.field("cache_hit_rate", results[i].hit_rate);
      jw.field("circuits", static_cast<long long>(results[i].circuits));
      jw.end_object();
    }
    jw.end_array();
    jw.field("batched_cached_speedup", speedup);
  });
  return 0;
}
