/// Artifact A7 — Table III of the paper.
///
/// Effect of the ansatz repetition count r (circuit depth) on SVM
/// performance at d=1, gamma=1. The claim to reproduce (C2.3 / kernel
/// concentration): deeper circuits rotate data points apart, overlaps
/// concentrate toward zero, recall approaches 1 while precision and AUC
/// collapse.
///
/// Knobs: QKMPS_FULL=1 (50 features, 400 points, depths up to 20),
///        QKMPS_FEATURES, QKMPS_PER_CLASS, QKMPS_RUNS.

#include <cstdio>

#include "bench_common.hpp"
#include "kernel/gram.hpp"
#include "svm/model_selection.hpp"

using namespace qkmps;

namespace {

struct DepthRow {
  idx depth = 0;
  svm::Metrics metrics;
  double mean_off_diagonal = 0.0;  // concentration diagnostic
};

}  // namespace

int main() {
  bench::print_header("Table III: ansatz repetition (depth) effect");
  const bool full = full_scale_requested();
  const idx features = static_cast<idx>(env_int("QKMPS_FEATURES", full ? 50 : 8));
  const idx per_class = static_cast<idx>(env_int("QKMPS_PER_CLASS", full ? 200 : 50));
  const idx runs = static_cast<idx>(env_int("QKMPS_RUNS", full ? 6 : 2));
  const std::vector<idx> depths = full ? std::vector<idx>{2, 4, 8, 12, 16, 20}
                                       : std::vector<idx>{2, 4, 8, 12};
  // At CI scale (8 qubits on the noisier synthetic data) gamma=1 is already
  // deep in the concentrated regime at depth 2; gamma=0.5 starts the sweep
  // in the informative regime so the depth-driven decay is visible. The
  // QKMPS_FULL run keeps the paper's gamma=1 at 50 features.
  const double gamma = env_double("QKMPS_GAMMA", full ? 1.0 : 0.5);

  std::printf("features=%lld, %lld per class, d=1, gamma=%.1f, %lld resamples\n\n",
              static_cast<long long>(features), static_cast<long long>(per_class),
              gamma, static_cast<long long>(runs));

  std::vector<bench::LabelledSample> samples;
  for (idx r = 0; r < runs; ++r)
    samples.push_back(bench::labelled_sample(per_class, features,
                                             1300 + static_cast<std::uint64_t>(r)));

  std::vector<DepthRow> rows;
  for (idx depth : depths) {
    kernel::QuantumKernelConfig cfg;
    cfg.ansatz = {.num_features = features, .layers = depth, .distance = 1,
                  .gamma = gamma};
    svm::Metrics mean;
    double off_diag = 0.0;
    std::vector<std::vector<svm::SweepPoint>> sweeps;
    for (const auto& s : samples) {
      kernel::GramStats stats;
      const auto train_states = kernel::simulate_states(cfg, s.x_train, &stats);
      const auto test_states = kernel::simulate_states(cfg, s.x_test, &stats);
      const auto k_train =
          kernel::gram_from_states(train_states, cfg.sim.policy, &stats);
      const auto k_test = kernel::cross_from_states(
          test_states, train_states, cfg.sim.policy, &stats);
      sweeps.push_back(svm::sweep_regularization(k_train, s.y_train, k_test,
                                                 s.y_test, svm::default_c_grid()));
      double sum = 0.0;
      idx count = 0;
      for (idx i = 0; i < k_train.rows(); ++i)
        for (idx j = i + 1; j < k_train.cols(); ++j) {
          sum += k_train(i, j);
          ++count;
        }
      off_diag += sum / static_cast<double>(count);
    }
    // Average metrics per C across runs, then take the best-AUC C (the
    // artifact's protocol, same as Table II).
    const std::size_t n_c = sweeps.front().size();
    for (std::size_t ci = 0; ci < n_c; ++ci) {
      svm::Metrics m;
      for (const auto& run : sweeps) {
        m.auc += run[ci].test.auc;
        m.accuracy += run[ci].test.accuracy;
        m.precision += run[ci].test.precision;
        m.recall += run[ci].test.recall;
      }
      const double k = static_cast<double>(sweeps.size());
      m.auc /= k;
      m.accuracy /= k;
      m.precision /= k;
      m.recall /= k;
      if (m.auc > mean.auc) mean = m;
    }
    rows.push_back({depth, mean, off_diag / static_cast<double>(runs)});
  }

  std::printf("%6s %8s %8s %10s %10s %14s\n", "depth", "AUC", "Recall",
              "Precision", "Accuracy", "mean K(i,j)");
  for (const auto& r : rows) {
    std::printf("%6lld %8.3f %8.3f %10.3f %10.3f %14.5f\n",
                static_cast<long long>(r.depth), r.metrics.auc, r.metrics.recall,
                r.metrics.precision, r.metrics.accuracy, r.mean_off_diagonal);
  }

  std::printf("\nclaim checks (paper Table III):\n");
  std::printf("  AUC at min depth %.3f vs max depth %.3f -> %s\n",
              rows.front().metrics.auc, rows.back().metrics.auc,
              rows.front().metrics.auc > rows.back().metrics.auc
                  ? "deep circuits degrade (matches paper)"
                  : "unexpected");
  std::printf("  kernel concentration: mean off-diagonal %.5f -> %.5f "
              "(must shrink with depth)\n",
              rows.front().mean_off_diagonal, rows.back().mean_off_diagonal);

  bench::write_artifact("table3_depth.json", [&](JsonWriter& w) {
    w.begin_array("rows");
    for (const auto& r : rows) {
      w.begin_array_object();
      w.field("depth", static_cast<long long>(r.depth));
      w.field("auc", r.metrics.auc);
      w.field("recall", r.metrics.recall);
      w.field("precision", r.metrics.precision);
      w.field("accuracy", r.metrics.accuracy);
      w.field("mean_off_diagonal", r.mean_off_diagonal);
      w.end_object();
    }
    w.end_array();
  });
  return 0;
}
