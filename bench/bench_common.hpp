#pragma once

/// Shared plumbing for the experiment harness. Every bench binary
/// regenerates one table or figure of the paper (see DESIGN.md section 4).
///
/// Scaling: benches default to CI-scale parameters so the full suite runs
/// on a laptop-class 2-core box; set QKMPS_FULL=1 to run the paper-scale
/// sweeps (Perlmutter-sized, hours of wall clock). Individual knobs can be
/// overridden with QKMPS_* environment variables documented per bench.

#include <cstdio>
#include <ctime>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "data/dataset.hpp"
#include "data/elliptic_synthetic.hpp"
#include "data/preprocess.hpp"
#include "data/splits.hpp"
#include "kernel/kernel_matrix.hpp"
#include "util/cli.hpp"
#include "util/json_writer.hpp"
#include "util/stats.hpp"

namespace qkmps::bench {

/// Draws `n` rows of the synthetic Elliptic pool restricted to `m`
/// features, scaled to the ansatz domain (0, 2). Deterministic per seed.
inline kernel::RealMatrix scaled_features(idx n, idx m, std::uint64_t seed) {
  data::EllipticSyntheticParams gen;
  gen.num_points = std::max<idx>(4 * n, 400);
  gen.num_features = m;
  gen.seed = 20240411;  // pool fixed; row choice varies with `seed`
  const data::Dataset pool = data::generate_elliptic_synthetic(gen);
  Rng rng(seed);
  std::vector<idx> rows;
  rows.reserve(static_cast<std::size_t>(n));
  for (idx i = 0; i < n; ++i)
    rows.push_back(static_cast<idx>(rng.uniform_int(
        static_cast<std::uint64_t>(pool.size()))));
  const data::Dataset sample = pool.select(rows);
  const data::FeatureScaler scaler = data::FeatureScaler::fit(sample.x);
  return scaler.transform(sample.x);
}

/// Balanced labelled sample (train/test split applied downstream).
struct LabelledSample {
  kernel::RealMatrix x_train, x_test;
  std::vector<int> y_train, y_test;
};

inline LabelledSample labelled_sample(idx per_class, idx features,
                                      std::uint64_t seed) {
  data::EllipticSyntheticParams gen;
  // ~10% of the pool is positive, so 24x per_class keeps a 2.3x
  // headroom of positives for balanced subsampling.
  gen.num_points = std::max<idx>(24 * per_class, 2000);
  gen.num_features = features;
  const data::Dataset pool = data::generate_elliptic_synthetic(gen);
  Rng rng(seed);
  const data::Dataset sample = data::balanced_subsample(pool, per_class, rng);
  const data::TrainTestSplit split = data::train_test_split(sample, 0.2, rng);
  const data::FeatureScaler scaler = data::FeatureScaler::fit(split.train.x);
  LabelledSample out;
  out.x_train = scaler.transform(split.train.x);
  out.x_test = scaler.transform(split.test.x);
  out.y_train = split.train.y;
  out.y_test = split.test.y;
  return out;
}

/// The commit the bench binary was built from; baked in by
/// bench/CMakeLists.txt ("unknown" outside a git checkout).
#ifndef QKMPS_GIT_COMMIT
#define QKMPS_GIT_COMMIT "unknown"
#endif

/// Provenance block every artifact carries: which build produced it,
/// when, and under what run configuration — so a historical artifact in
/// bench/history/ is attributable long after the run. Informational
/// only: compare_bench.py skips the subtree, and trend_bench.py uses it
/// to label trend rows.
inline void write_provenance(JsonWriter& w) {
  w.begin_object("provenance");
  w.field("commit", QKMPS_GIT_COMMIT);
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
  gmtime_r(&now, &utc);
  char stamp[32];
  std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &utc);
  w.field("generated_utc", stamp);
  w.begin_object("config");
  w.field("full_scale", full_scale_requested());
  w.field("hardware_threads",
          static_cast<long long>(std::thread::hardware_concurrency()));
#ifdef NDEBUG
  w.field("assertions", false);
#else
  w.field("assertions", true);
#endif
  w.end_object();
  w.end_object();
}

/// Writes a JSON artifact next to the binary (mirrors the paper's raw/
/// folder convention). Every artifact opens with the provenance block.
/// Failures are non-fatal: the printed table is the primary output.
inline void write_artifact(const std::string& name,
                           const std::function<void(JsonWriter&)>& fill) {
  std::ofstream os(name);
  if (!os.good()) return;
  JsonWriter w(os);
  w.begin_object();
  write_provenance(w);
  fill(w);
  w.end_object();
  os << "\n";
}

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%s\n", full_scale_requested()
                          ? "[scale: FULL (paper parameters)]"
                          : "[scale: CI default; set QKMPS_FULL=1 for paper scale]");
}

}  // namespace qkmps::bench
