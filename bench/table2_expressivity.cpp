/// Artifact A6 — Table II of the paper.
///
/// SVM classification metrics for the quantum kernel across interaction
/// distances d and kernel bandwidths gamma, against the Gaussian-kernel
/// baseline (Eq. 9, alpha = 1/(m var X)). Metrics are averaged over
/// independent resamples at a common regularization coefficient, and the
/// C with the highest mean AUC is reported — the artifact's exact protocol.
///
/// Claims to reproduce: C2.2 (quantum beats Gaussian at moderate gamma)
/// and C2.3 (gamma=0.1 rows are flat in d and below the baseline; the
/// largest d underperforms at strong gamma).
///
/// Knobs: QKMPS_FULL=1 (50 features, 400 points, 6 resamples),
///        QKMPS_FEATURES, QKMPS_PER_CLASS, QKMPS_RUNS.

#include <cstdio>

#include "bench_common.hpp"
#include "kernel/gaussian.hpp"
#include "kernel/gram.hpp"
#include "svm/model_selection.hpp"

using namespace qkmps;

namespace {

struct Row {
  std::string kernel;
  idx d = 0;
  double gamma = 0.0;
  svm::Metrics metrics;
};

/// Averages sweeps across runs per C, then picks the best mean-AUC C.
svm::Metrics average_best_c(const std::vector<std::vector<svm::SweepPoint>>& runs) {
  const std::size_t n_c = runs.front().size();
  svm::Metrics best;
  for (std::size_t ci = 0; ci < n_c; ++ci) {
    svm::Metrics mean;
    for (const auto& run : runs) {
      mean.auc += run[ci].test.auc;
      mean.accuracy += run[ci].test.accuracy;
      mean.precision += run[ci].test.precision;
      mean.recall += run[ci].test.recall;
    }
    const double k = static_cast<double>(runs.size());
    mean.auc /= k;
    mean.accuracy /= k;
    mean.precision /= k;
    mean.recall /= k;
    if (mean.auc > best.auc) best = mean;
  }
  return best;
}

}  // namespace

int main() {
  bench::print_header("Table II: expressivity study (d x gamma) vs Gaussian kernel");
  const bool full = full_scale_requested();
  const idx features = static_cast<idx>(env_int("QKMPS_FEATURES", full ? 50 : 12));
  const idx per_class = static_cast<idx>(env_int("QKMPS_PER_CLASS", full ? 200 : 60));
  const idx runs = static_cast<idx>(env_int("QKMPS_RUNS", full ? 6 : 2));

  std::printf("features=%lld, %lld per class, r=2, %lld resamples\n\n",
              static_cast<long long>(features), static_cast<long long>(per_class),
              static_cast<long long>(runs));

  // Pre-draw the resamples so every kernel sees identical data.
  std::vector<bench::LabelledSample> samples;
  for (idx r = 0; r < runs; ++r)
    samples.push_back(bench::labelled_sample(per_class, features,
                                             900 + static_cast<std::uint64_t>(r)));

  std::vector<Row> rows;

  {  // Gaussian baseline.
    std::vector<std::vector<svm::SweepPoint>> sweeps;
    for (const auto& s : samples) {
      const double alpha = kernel::gaussian_alpha(s.x_train);
      sweeps.push_back(svm::sweep_regularization(
          kernel::gaussian_gram(s.x_train, alpha), s.y_train,
          kernel::gaussian_cross(s.x_test, s.x_train, alpha), s.y_test,
          svm::default_c_grid()));
    }
    rows.push_back({"Gaussian", 0, 0.0, average_best_c(sweeps)});
  }

  const std::vector<idx> distances = full ? std::vector<idx>{1, 2, 4, 6}
                                          : std::vector<idx>{1, 2, 3};
  for (double gamma : {0.1, 0.5, 1.0}) {
    for (idx d : distances) {
      kernel::QuantumKernelConfig cfg;
      cfg.ansatz = {.num_features = features, .layers = 2, .distance = d,
                    .gamma = gamma};
      std::vector<std::vector<svm::SweepPoint>> sweeps;
      for (const auto& s : samples) {
        kernel::GramStats stats;
        const auto train_states = kernel::simulate_states(cfg, s.x_train, &stats);
        const auto test_states = kernel::simulate_states(cfg, s.x_test, &stats);
        sweeps.push_back(svm::sweep_regularization(
            kernel::gram_from_states(train_states, cfg.sim.policy, &stats),
            s.y_train,
            kernel::cross_from_states(test_states, train_states, cfg.sim.policy,
                                      &stats),
            s.y_test, svm::default_c_grid()));
      }
      rows.push_back({"quantum", d, gamma, average_best_c(sweeps)});
    }
  }

  std::printf("%10s %4s %6s %8s %8s %10s %10s\n", "kernel", "d", "gamma",
              "AUC", "Recall", "Precision", "Accuracy");
  double best_auc = 0.0;
  for (const auto& r : rows) best_auc = std::max(best_auc, r.metrics.auc);
  for (const auto& r : rows) {
    std::printf("%10s %4s %6s %7.3f%s %8.3f %10.3f %10.3f\n", r.kernel.c_str(),
                r.d > 0 ? std::to_string(r.d).c_str() : "-",
                r.gamma > 0.0 ? (std::to_string(r.gamma).substr(0, 3)).c_str() : "-",
                r.metrics.auc, r.metrics.auc == best_auc ? "*" : " ",
                r.metrics.recall, r.metrics.precision, r.metrics.accuracy);
  }
  std::printf("(* = highest AUC; paper marks its best row in bold)\n");

  // Claim checks.
  const double gaussian_auc = rows.front().metrics.auc;
  double best_quantum = 0.0, gamma01_spread_min = 1.0, gamma01_spread_max = 0.0;
  for (const auto& r : rows) {
    if (r.kernel == "quantum") best_quantum = std::max(best_quantum, r.metrics.auc);
    if (r.kernel == "quantum" && r.gamma == 0.1) {
      gamma01_spread_min = std::min(gamma01_spread_min, r.metrics.auc);
      gamma01_spread_max = std::max(gamma01_spread_max, r.metrics.auc);
    }
  }
  std::printf("\nclaim C2.2: best quantum AUC %.3f vs Gaussian %.3f -> %s\n",
              best_quantum, gaussian_auc,
              best_quantum > gaussian_auc ? "quantum wins (matches paper)"
                                          : "baseline wins here");
  std::printf("claim C2.3: gamma=0.1 AUC spread across d: %.4f "
              "(paper: rows identical to 3 decimals)\n",
              gamma01_spread_max - gamma01_spread_min);

  bench::write_artifact("table2_expressivity.json", [&](JsonWriter& w) {
    w.begin_array("rows");
    for (const auto& r : rows) {
      w.begin_array_object();
      w.field("kernel", r.kernel);
      w.field("d", static_cast<long long>(r.d));
      w.field("gamma", r.gamma);
      w.field("auc", r.metrics.auc);
      w.field("recall", r.metrics.recall);
      w.field("precision", r.metrics.precision);
      w.field("accuracy", r.metrics.accuracy);
      w.end_object();
    }
    w.end_array();
  });
  return 0;
}
