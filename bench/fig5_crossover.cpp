/// Artifact A3 — Fig. 5 and Table I of the paper.
///
/// Sweeps the qubit interaction distance d and times (a) single-circuit MPS
/// simulation and (b) single inner-product calculation on both execution
/// policies (reference = CPU-backend stand-in, accelerated = GPU-backend
/// stand-in; see DESIGN.md). Prints the Fig. 5 median/quartile series and
/// the Table I bond-dimension / memory summary.
///
/// Knobs: QKMPS_FULL=1 (paper scale: m=100, d in {2..12}),
///        QKMPS_QUBITS, QKMPS_DMAX, QKMPS_SAMPLES.

#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "circuit/ansatz.hpp"
#include "kernel/gram.hpp"
#include "mps/inner_product.hpp"
#include "mps/simulator.hpp"
#include "util/timer.hpp"

using namespace qkmps;

namespace {

struct DistanceResult {
  idx d = 0;
  Summary sim_time;
  Summary ip_time;
  double avg_chi = 0.0;
  double mps_mib = 0.0;
};

DistanceResult run_distance(idx m, idx d, idx samples, linalg::ExecPolicy policy) {
  const kernel::RealMatrix x = bench::scaled_features(samples, m, 17 + static_cast<std::uint64_t>(d));
  const circuit::AnsatzParams ansatz{.num_features = m, .layers = 2,
                                     .distance = d, .gamma = 1.0};
  mps::SimulatorConfig cfg;
  cfg.policy = policy;
  const mps::MpsSimulator sim(cfg);

  DistanceResult out;
  out.d = d;
  std::vector<double> sim_times, ip_times;
  std::vector<mps::Mps> states;
  double chi_sum = 0.0;
  std::size_t bytes_sum = 0;

  for (idx i = 0; i < samples; ++i) {
    std::vector<double> row(x.row(i), x.row(i) + m);
    const circuit::Circuit c = circuit::feature_map_circuit(ansatz, row);
    Timer t;
    mps::SimulationResult r = sim.simulate(c);
    sim_times.push_back(t.seconds());
    chi_sum += static_cast<double>(r.state.max_bond());
    bytes_sum += r.state.memory_bytes();
    states.push_back(std::move(r.state));
  }
  for (idx i = 0; i < samples; ++i) {
    for (idx j = i + 1; j < samples; ++j) {
      // Best of three repetitions: inner products are milliseconds-scale,
      // so a single descheduling event would otherwise dominate the sample.
      double best = 1e300;
      for (int rep = 0; rep < 3; ++rep) {
        Timer t;
        (void)mps::overlap_squared(states[static_cast<std::size_t>(i)],
                                   states[static_cast<std::size_t>(j)], policy);
        best = std::min(best, t.seconds());
      }
      ip_times.push_back(best);
    }
  }
  out.sim_time = summarize(sim_times);
  out.ip_time = summarize(ip_times);
  out.avg_chi = chi_sum / static_cast<double>(samples);
  out.mps_mib = static_cast<double>(bytes_sum) /
                static_cast<double>(samples) / (1024.0 * 1024.0);
  return out;
}

}  // namespace

int main() {
  bench::print_header("Fig. 5 + Table I: CPU/GPU crossover vs interaction distance");

  const bool full = full_scale_requested();
  const idx m = static_cast<idx>(env_int("QKMPS_QUBITS", full ? 100 : 20));
  const idx dmax = static_cast<idx>(env_int("QKMPS_DMAX", full ? 12 : 5));
  const idx samples = static_cast<idx>(env_int("QKMPS_SAMPLES", full ? 8 : 4));

  std::printf("qubits m=%lld, layers r=2, gamma=1.0, samples=%lld\n",
              static_cast<long long>(m), static_cast<long long>(samples));

  std::vector<DistanceResult> ref, acc;
  for (idx d = 1; d <= dmax; ++d) {
    ref.push_back(run_distance(m, d, samples, linalg::ExecPolicy::Reference));
    acc.push_back(run_distance(m, d, samples, linalg::ExecPolicy::Accelerated));
  }

  std::printf("\n[Fig 5a] MPS simulation time per circuit (seconds)\n");
  std::printf("%4s %12s %12s %12s %12s %10s\n", "d", "ref(med)", "ref(q1-q3)",
              "acc(med)", "acc(q1-q3)", "winner");
  for (std::size_t i = 0; i < ref.size(); ++i) {
    std::printf("%4lld %12.4f %5.4f-%5.4f %12.4f %5.4f-%5.4f %10s\n",
                static_cast<long long>(ref[i].d), ref[i].sim_time.median,
                ref[i].sim_time.q1, ref[i].sim_time.q3, acc[i].sim_time.median,
                acc[i].sim_time.q1, acc[i].sim_time.q3,
                ref[i].sim_time.median <= acc[i].sim_time.median ? "reference"
                                                                 : "accel");
  }

  std::printf("\n[Fig 5b] Inner-product time per pair (seconds)\n");
  std::printf("%4s %12s %12s %10s\n", "d", "ref(med)", "acc(med)", "winner");
  for (std::size_t i = 0; i < ref.size(); ++i) {
    std::printf("%4lld %12.6f %12.6f %10s\n", static_cast<long long>(ref[i].d),
                ref[i].ip_time.median, acc[i].ip_time.median,
                ref[i].ip_time.median <= acc[i].ip_time.median ? "reference"
                                                               : "accel");
  }

  std::printf("\n[Table I] Average largest bond dimension and MPS memory\n");
  std::printf("%10s %16s %16s %16s\n", "distance", "avg chi (acc)",
              "avg chi (ref)", "memory/MPS MiB");
  for (std::size_t i = 0; i < ref.size(); ++i) {
    std::printf("%10lld %16.3f %16.3f %16.4f\n",
                static_cast<long long>(ref[i].d), acc[i].avg_chi, ref[i].avg_chi,
                acc[i].mps_mib);
  }

  // Crossover summary (the paper's headline observation for this figure).
  idx crossover = -1;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    if (acc[i].ip_time.median < ref[i].ip_time.median) {
      crossover = ref[i].d;
      break;
    }
  }
  if (crossover > 0) {
    std::printf("\ncrossover: accelerated policy wins inner products from d=%lld"
                " (paper: d between 8 and 10 on A100 vs EPYC)\n",
                static_cast<long long>(crossover));
  } else {
    std::printf("\ncrossover: not reached within this sweep (extend QKMPS_DMAX)\n");
  }

  bench::write_artifact("fig5_crossover.json", [&](JsonWriter& w) {
    w.field("qubits", static_cast<long long>(m));
    w.begin_array("distances");
    for (std::size_t i = 0; i < ref.size(); ++i) {
      w.begin_array_object();
      w.field("d", static_cast<long long>(ref[i].d));
      w.field("sim_median_ref", ref[i].sim_time.median);
      w.field("sim_median_acc", acc[i].sim_time.median);
      w.field("ip_median_ref", ref[i].ip_time.median);
      w.field("ip_median_acc", acc[i].ip_time.median);
      w.field("avg_chi_ref", ref[i].avg_chi);
      w.field("avg_chi_acc", acc[i].avg_chi);
      w.field("mps_mib", acc[i].mps_mib);
      w.end_object();
    }
    w.end_array();
  });
  return 0;
}
