/// Sharded serving frontend benchmark: throughput / latency / admission
/// behavior of serve::ShardedEngine swept over shard counts, driven by the
/// deterministic serve::workload scenario generator (the same scenarios
/// the parity tests replay — every load shape published here is
/// reproducible byte for byte, see the scenario digests in the artifact).
///
/// Two sections:
///  1. Shard scaling: a cache-pressure uniform stream (working set larger
///     than one shard's StateCache + memo, smaller than the aggregate at
///     the top shard count) swept over shards {1, 2, 4}. Per-shard
///     resources are fixed, so sharding scales the aggregate cache as well
///     as the drain parallelism — the scale-out model where each shard is
///     a future process/node. Reports speedup vs 1 shard.
///  2. Scenario sweep: every standard workload scenario through a fixed
///     frontend with tight admission queues, arrival-paced, reporting
///     served/shed/rejected and queue depths.
///
/// Every served prediction in both sections is compared bitwise against
/// the sequential simulate_states + decision_values pipeline; any
/// mismatch makes the process exit 1 (CI runs `serving_sharded --quick`
/// as a parity smoke). Emits serving_sharded.json.
///
/// Knobs: QKMPS_SHARDED_REQUESTS, QKMPS_SHARDED_UNIQUE,
/// QKMPS_SHARDED_FEATURES, QKMPS_SHARDED_LAYERS, QKMPS_SHARDED_TRAIN,
/// QKMPS_SHARDED_CACHE (per-shard StateCache+memo entries);
/// QKMPS_FULL=1 scales everything up; --quick shrinks to a CI smoke that
/// sweeps shards {1, 2}.

#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "kernel/gram.hpp"
#include "serve/sharded_engine.hpp"
#include "serve/workload.hpp"
#include "svm/svm.hpp"
#include "util/timer.hpp"

using namespace qkmps;
namespace workload = qkmps::serve::workload;

namespace {

struct Setup {
  std::shared_ptr<const serve::ModelBundle> bundle;
  kernel::RealMatrix pool;  ///< raw rows the scenarios draw from
};

Setup build_setup(idx per_class, idx m, idx layers) {
  data::EllipticSyntheticParams gen;
  gen.num_points = std::max<idx>(24 * per_class, 2000);
  gen.num_features = m;
  const data::Dataset pool = data::generate_elliptic_synthetic(gen);
  Rng rng(42);
  const data::Dataset sample = data::balanced_subsample(pool, per_class, rng);
  const data::TrainTestSplit split = data::train_test_split(sample, 0.2, rng);
  const data::FeatureScaler scaler = data::FeatureScaler::fit(split.train.x);
  const auto x_train = scaler.transform(split.train.x);

  kernel::QuantumKernelConfig cfg;
  cfg.ansatz = {.num_features = m, .layers = layers, .distance = 1,
                .gamma = 0.25};
  const auto train_states = kernel::simulate_states(cfg, x_train);
  const auto k_train = kernel::gram_from_states(train_states, cfg.sim.policy);
  const auto model = svm::train_svc(k_train, split.train.y, {.c = 1.0});

  Setup s;
  s.bundle = std::make_shared<const serve::ModelBundle>(
      serve::make_bundle(cfg, scaler, model, train_states));
  s.pool = pool.x;
  return s;
}

/// Sequential reference pipeline over the scenario's unique points:
/// scale -> simulate_states -> rectangular kernel vs the resident SVs ->
/// decision_values. Entrywise the same calls the engine makes; served
/// predictions must reproduce these bits exactly.
std::vector<double> reference_values(const serve::ModelBundle& bundle,
                                     const kernel::RealMatrix& points) {
  const auto scaled = bundle.scaler.transform(points);
  const auto states = kernel::simulate_states(bundle.config, scaled);
  const auto k = kernel::cross_from_states(states, bundle.sv_states,
                                           bundle.config.sim.policy);
  return bundle.model.decision_values(k);
}

struct RunResult {
  double seconds = 0.0;
  double throughput = 0.0;  ///< served requests / second
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t served = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t circuits = 0;
  std::uint64_t max_queue_depth = 0;
  double cache_hit_rate = 0.0;
  double memo_hit_rate = 0.0;
  std::uint64_t parity_mismatches = 0;
};

RunResult run_scenario(const Setup& setup,
                       const workload::Scenario& scenario,
                       const std::vector<double>& reference,
                       const serve::ShardedEngineConfig& scfg,
                       bool pace_arrivals) {
  serve::ShardedEngine engine(setup.bundle, scfg);

  std::vector<std::future<serve::RoutedPrediction>> futures;
  futures.reserve(static_cast<std::size_t>(scenario.size()));
  Timer total;
  for (idx r = 0; r < scenario.size(); ++r) {
    if (pace_arrivals) {
      const double target_us = scenario.arrival_us[static_cast<std::size_t>(r)];
      while (total.seconds() * 1e6 < target_us) std::this_thread::yield();
    }
    futures.push_back(engine.submit(scenario.request(r)));
  }

  RunResult res;
  std::vector<double> latencies;
  latencies.reserve(futures.size());
  for (idx r = 0; r < scenario.size(); ++r) {
    const serve::RoutedPrediction p =
        futures[static_cast<std::size_t>(r)].get();
    switch (p.status) {
      case serve::ServeStatus::kServed: {
        ++res.served;
        latencies.push_back(p.total_seconds);
        const idx u = scenario.order[static_cast<std::size_t>(r)];
        if (p.prediction.decision_value !=
            reference[static_cast<std::size_t>(u)])
          ++res.parity_mismatches;
        break;
      }
      case serve::ServeStatus::kRejected:
        ++res.rejected;
        break;
      case serve::ServeStatus::kShed:
        ++res.shed;
        break;
    }
  }
  res.seconds = total.seconds();
  res.throughput = static_cast<double>(res.served) / res.seconds;
  if (!latencies.empty()) {
    res.p50_ms = 1e3 * quantile(latencies, 0.50);
    res.p99_ms = 1e3 * quantile(latencies, 0.99);
  }
  const serve::ShardedStats st = engine.stats();
  std::uint64_t cache_hits = 0, cache_lookups = 0;
  std::uint64_t memo_hits = 0, memo_lookups = 0;
  for (const serve::ShardStats& shard : st.shards) {
    res.circuits += shard.engine.circuits_simulated;
    cache_hits += shard.engine.cache.hits;
    cache_lookups += shard.engine.cache.hits + shard.engine.cache.misses;
    memo_hits += shard.engine.memo.hits;
    memo_lookups += shard.engine.memo.hits + shard.engine.memo.misses;
    res.max_queue_depth = std::max(res.max_queue_depth, shard.max_queue_depth);
  }
  if (cache_lookups > 0)
    res.cache_hit_rate = static_cast<double>(cache_hits) /
                         static_cast<double>(cache_lookups);
  if (memo_lookups > 0)
    res.memo_hit_rate = static_cast<double>(memo_hits) /
                        static_cast<double>(memo_lookups);
  return res;
}

void print_row(const char* label, const RunResult& r) {
  std::printf(
      "%-24s %9.0f req/s %8.2f ms %8.2f ms %6.0f%% %6.0f%% %6llu "
      "%5llu/%llu/%llu\n",
      label, r.throughput, r.p50_ms, r.p99_ms, 100.0 * r.cache_hit_rate,
      100.0 * r.memo_hit_rate, static_cast<unsigned long long>(r.circuits),
      static_cast<unsigned long long>(r.served),
      static_cast<unsigned long long>(r.shed),
      static_cast<unsigned long long>(r.rejected));
}

std::string hex_digest(std::uint64_t digest) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(digest));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;

  bench::print_header("serving_sharded: sharded frontend + admission control");
  const bool full = full_scale_requested();
  const idx per_class = env_int("QKMPS_SHARDED_TRAIN", full ? 100 : 24);
  const idx m = env_int("QKMPS_SHARDED_FEATURES", full ? 20 : 10);
  const idx layers = env_int("QKMPS_SHARDED_LAYERS", 4);
  const idx n_requests =
      env_int("QKMPS_SHARDED_REQUESTS", full ? 4000 : (quick ? 240 : 600));
  const idx n_unique =
      env_int("QKMPS_SHARDED_UNIQUE", full ? 512 : (quick ? 48 : 96));
  // Per-shard cache/memo sized so the scaling sweep's working set thrashes
  // one shard but fits the aggregate at the top shard count.
  const idx cache_entries =
      env_int("QKMPS_SHARDED_CACHE", std::max<idx>(4, n_unique / 4));
  const std::vector<std::size_t> shard_counts =
      quick ? std::vector<std::size_t>{1, 2}
            : std::vector<std::size_t>{1, 2, 4};

  std::printf("workload: %lld requests over %lld unique points, %lld-qubit "
              "r=%lld ansatz, %lld per-shard cache/memo entries\n",
              static_cast<long long>(n_requests),
              static_cast<long long>(n_unique), static_cast<long long>(m),
              static_cast<long long>(layers),
              static_cast<long long>(cache_entries));
  const Setup setup = build_setup(per_class, m, layers);
  std::printf("bundle: %lld support vectors resident (shared across shards)\n",
              static_cast<long long>(setup.bundle->num_support_vectors()));

  std::uint64_t total_mismatches = 0;

  // --- Section 1: shard scaling on the cache-pressure uniform stream. ---
  workload::ScenarioConfig pressure;
  pressure.name = "cache-pressure-uniform";
  pressure.seed = 2024;
  pressure.num_requests = n_requests;
  pressure.num_unique = n_unique;
  const workload::Scenario scaling_stream =
      workload::make_scenario(pressure, setup.pool);
  const std::vector<double> scaling_ref =
      reference_values(*setup.bundle, scaling_stream.unique_points);
  std::printf("\nscenario %s (digest %s)\n", pressure.name.c_str(),
              hex_digest(workload::scenario_digest(scaling_stream)).c_str());
  std::printf("%-24s %15s %11s %11s %7s %7s %7s %13s\n", "configuration",
              "throughput", "p50", "p99", "cache", "memo", "circ",
              "srv/shed/rej");

  std::vector<RunResult> scaling;
  for (std::size_t shards : shard_counts) {
    serve::ShardedEngineConfig scfg;
    scfg.num_shards = shards;
    scfg.admission_capacity = static_cast<std::size_t>(n_requests);  // admit all
    scfg.engine.max_batch = 16;
    scfg.engine.cache_capacity = static_cast<std::size_t>(cache_entries);
    scfg.engine.memo_capacity = static_cast<std::size_t>(cache_entries);
    scaling.push_back(run_scenario(setup, scaling_stream, scaling_ref, scfg,
                                   /*pace_arrivals=*/false));
    char label[64];
    std::snprintf(label, sizeof label, "%zu shard%s", shards,
                  shards == 1 ? "" : "s");
    print_row(label, scaling.back());
    total_mismatches += scaling.back().parity_mismatches;
  }
  const double speedup =
      scaling.back().throughput / scaling.front().throughput;
  std::printf("\n%zu shards vs 1: %.2fx throughput (per-shard resources "
              "fixed; aggregate cache scales with the shard count)\n",
              shard_counts.back(), speedup);

  // --- Section 2: every standard scenario through tight admission. ------
  std::printf("\nstandard scenarios, 2 shards, admission capacity 32, "
              "shed-oldest, arrival-paced:\n");
  std::printf("%-24s %15s %11s %11s %7s %7s %7s %13s\n", "scenario",
              "throughput", "p50", "p99", "cache", "memo", "circ",
              "srv/shed/rej");
  struct ScenarioRow {
    workload::ScenarioConfig cfg;
    std::uint64_t digest = 0;
    RunResult result;
  };
  std::vector<ScenarioRow> rows;
  for (const workload::ScenarioConfig& cfg : workload::standard_scenarios(
           quick ? n_requests / 2 : n_requests, n_unique, 7)) {
    ScenarioRow row;
    row.cfg = cfg;
    const workload::Scenario scenario =
        workload::make_scenario(cfg, setup.pool);
    row.digest = workload::scenario_digest(scenario);
    const std::vector<double> ref =
        reference_values(*setup.bundle, scenario.unique_points);
    serve::ShardedEngineConfig scfg;
    scfg.num_shards = 2;
    scfg.admission_capacity = 32;
    scfg.policy = serve::AdmissionPolicy::kShedOldest;
    scfg.engine.max_batch = 16;
    scfg.engine.cache_capacity = static_cast<std::size_t>(cache_entries);
    scfg.engine.memo_capacity = static_cast<std::size_t>(cache_entries);
    row.result = run_scenario(setup, scenario, ref, scfg,
                              /*pace_arrivals=*/true);
    print_row(cfg.name.c_str(), row.result);
    total_mismatches += row.result.parity_mismatches;
    rows.push_back(std::move(row));
  }

  // --- Section 3: simulate-stage kernel backend A/B. --------------------
  // Caches and memo disabled so every request really simulates: the two
  // EngineConfig::kernel_backend flavours over the same unique points,
  // reporting uncached circuit throughput. Predictions must stay bitwise
  // equal to the sequential reference either way — the batched kernel
  // layer is a scheduling choice, and this is the serving-level gate.
  struct BackendRun {
    double circuits_per_s = 0.0;
    std::uint64_t mismatches = 0;
  };
  // Both engines live for the whole A/B and the reps INTERLEAVE between
  // them: on a busy/throttling box back-to-back blocks are order-biased
  // (the later block sees the hotter, slower machine), and alternating
  // reps spreads that drift evenly over both flavours.
  const auto make_engine = [&](linalg::KernelBackend backend) {
    serve::EngineConfig ecfg;
    ecfg.num_threads = 2;
    ecfg.cache_capacity = 0;
    ecfg.memo_capacity = 0;
    ecfg.kernel_backend = backend;
    return std::make_unique<serve::InferenceEngine>(setup.bundle, ecfg);
  };
  std::printf("\nuncached simulate stage, kernel backend A/B (%lld unique "
              "points, cache+memo off):\n",
              static_cast<long long>(n_unique));
  BackendRun backend_serial, backend_batched;
  {
    const auto serial_engine = make_engine(linalg::KernelBackend::kSerial);
    const auto batched_engine =
        make_engine(linalg::KernelBackend::kOpenMPBatched);
    const int ab_reps = quick ? 3 : 6;
    double serial_s = 0.0, batched_s = 0.0;
    const auto timed_rep = [&](serve::InferenceEngine& engine,
                               BackendRun& run, double& seconds) {
      Timer t;
      const auto preds = engine.predict_batch(scaling_stream.unique_points);
      seconds += t.seconds();
      for (std::size_t i = 0; i < preds.size(); ++i)
        if (preds[i].decision_value != scaling_ref[i]) ++run.mismatches;
    };
    for (int rep = 0; rep < ab_reps; ++rep) {
      timed_rep(*serial_engine, backend_serial, serial_s);
      timed_rep(*batched_engine, backend_batched, batched_s);
    }
    backend_serial.circuits_per_s =
        static_cast<double>(serial_engine->stats().circuits_simulated) /
        serial_s;
    backend_batched.circuits_per_s =
        static_cast<double>(batched_engine->stats().circuits_simulated) /
        batched_s;
  }
  const double backend_speedup =
      backend_batched.circuits_per_s / backend_serial.circuits_per_s;
  std::printf("  %-16s %10.1f circuits/s\n", "serial lanes",
              backend_serial.circuits_per_s);
  std::printf("  %-16s %10.1f circuits/s (%.2fx)\n", "batched kernels",
              backend_batched.circuits_per_s, backend_speedup);
  total_mismatches += backend_serial.mismatches + backend_batched.mismatches;

  if (total_mismatches > 0)
    std::printf("\nPARITY FAILURE: %llu served predictions diverged from the "
                "sequential pipeline\n",
                static_cast<unsigned long long>(total_mismatches));
  else
    std::printf("\nparity: every served prediction bitwise-matches the "
                "sequential pipeline\n");

  bench::write_artifact("serving_sharded.json", [&](JsonWriter& jw) {
    jw.field("bench", "serving_sharded");
    jw.field("quick", quick);
    jw.field("requests", static_cast<long long>(n_requests));
    jw.field("unique_points", static_cast<long long>(n_unique));
    jw.field("features", static_cast<long long>(m));
    jw.field("per_shard_cache_entries", static_cast<long long>(cache_entries));
    jw.field("support_vectors",
             static_cast<long long>(setup.bundle->num_support_vectors()));
    jw.field("parity_ok", total_mismatches == 0);
    jw.begin_array("shard_scaling");
    for (std::size_t i = 0; i < shard_counts.size(); ++i) {
      const RunResult& r = scaling[i];
      jw.begin_array_object();
      jw.field("shards", static_cast<long long>(shard_counts[i]));
      jw.field("throughput_rps", r.throughput);
      jw.field("p50_ms", r.p50_ms);
      jw.field("p99_ms", r.p99_ms);
      jw.field("cache_hit_rate", r.cache_hit_rate);
      jw.field("memo_hit_rate", r.memo_hit_rate);
      jw.field("circuits", static_cast<long long>(r.circuits));
      jw.field("served", static_cast<long long>(r.served));
      jw.end_object();
    }
    jw.end_array();
    jw.field("scaling_scenario_digest",
             hex_digest(workload::scenario_digest(scaling_stream)));
    jw.field("speedup_max_shards_vs_1", speedup);
    jw.field("uncached_serial_circuit_throughput_per_s",
             backend_serial.circuits_per_s);
    jw.field("uncached_batched_circuit_throughput_per_s",
             backend_batched.circuits_per_s);
    jw.field("kernel_backend_speedup_batched_vs_serial", backend_speedup);
    jw.begin_array("scenarios");
    for (const ScenarioRow& row : rows) {
      const RunResult& r = row.result;
      jw.begin_array_object();
      jw.field("name", row.cfg.name);
      jw.field("digest", hex_digest(row.digest));
      jw.field("throughput_rps", r.throughput);
      jw.field("p50_ms", r.p50_ms);
      jw.field("p99_ms", r.p99_ms);
      jw.field("served", static_cast<long long>(r.served));
      jw.field("shed", static_cast<long long>(r.shed));
      jw.field("rejected", static_cast<long long>(r.rejected));
      jw.field("max_queue_depth", static_cast<long long>(r.max_queue_depth));
      jw.field("cache_hit_rate", r.cache_hit_rate);
      jw.field("memo_hit_rate", r.memo_hit_rate);
      jw.field("circuits", static_cast<long long>(r.circuits));
      jw.field("parity_mismatches",
               static_cast<long long>(r.parity_mismatches));
      jw.end_object();
    }
    jw.end_array();
  });
  return total_mismatches == 0 ? 0 : 1;
}
