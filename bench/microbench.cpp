/// Kernel-level microbenchmarks (google-benchmark): the primitive ablations
/// underlying the Fig. 5 crossover. Times the dense kernels (GEMM policies,
/// SVD drivers) and the two MPS primitives (gate application, zipper inner
/// product) as functions of the bond dimension chi, on both execution
/// policies. Run with --benchmark_filter=... to select a subset.

#include <benchmark/benchmark.h>

#include "circuit/gate.hpp"
#include "linalg/gemm.hpp"
#include "linalg/jacobi_svd.hpp"
#include "linalg/svd.hpp"
#include "mps/canonical.hpp"
#include "mps/gate_application.hpp"
#include "mps/inner_product.hpp"
#include "util/rng.hpp"

namespace {

using namespace qkmps;

linalg::Matrix random_matrix(idx rows, idx cols, std::uint64_t seed) {
  Rng rng(seed);
  linalg::Matrix m(rows, cols);
  for (idx i = 0; i < rows; ++i)
    for (idx j = 0; j < cols; ++j) m(i, j) = rng.normal_cplx();
  return m;
}

/// Random MPS with every bond at chi, brought into canonical form; the
/// standard fixture for chi-parameterized primitive timing.
mps::Mps random_mps(idx sites, idx chi, std::uint64_t seed) {
  Rng rng(seed);
  mps::Mps psi(sites);
  for (idx i = 0; i < sites; ++i) {
    const idx dl = (i == 0) ? 1 : chi;
    const idx dr = (i == sites - 1) ? 1 : chi;
    mps::SiteTensor t(dl, dr);
    for (auto& v : t.a) v = rng.normal_cplx();
    psi.site(i) = t;
  }
  psi.set_center(0);
  // Sweep once to canonicalize and normalize.
  mps::move_center(psi, sites - 1, linalg::ExecPolicy::Reference);
  mps::move_center(psi, 0, linalg::ExecPolicy::Reference);
  psi.normalize();
  return psi;
}

void BM_GemmReference(benchmark::State& state) {
  const idx n = state.range(0);
  const auto a = random_matrix(n, n, 1);
  const auto b = random_matrix(n, n, 2);
  for (auto _ : state)
    benchmark::DoNotOptimize(linalg::gemm(a, b, linalg::ExecPolicy::Reference));
  state.SetComplexityN(n);
}
BENCHMARK(BM_GemmReference)->RangeMultiplier(2)->Range(16, 256)->Complexity();

void BM_GemmAccelerated(benchmark::State& state) {
  const idx n = state.range(0);
  const auto a = random_matrix(n, n, 1);
  const auto b = random_matrix(n, n, 2);
  for (auto _ : state)
    benchmark::DoNotOptimize(linalg::gemm(a, b, linalg::ExecPolicy::Accelerated));
  state.SetComplexityN(n);
}
BENCHMARK(BM_GemmAccelerated)->RangeMultiplier(2)->Range(16, 256)->Complexity();

void BM_SvdGolubKahan(benchmark::State& state) {
  const idx n = state.range(0);
  const auto a = random_matrix(n, n, 3);
  for (auto _ : state) benchmark::DoNotOptimize(linalg::svd(a));
}
BENCHMARK(BM_SvdGolubKahan)->RangeMultiplier(2)->Range(8, 128);

void BM_SvdJacobi(benchmark::State& state) {
  const idx n = state.range(0);
  const auto a = random_matrix(n, n, 3);
  for (auto _ : state) benchmark::DoNotOptimize(linalg::jacobi_svd(a));
}
BENCHMARK(BM_SvdJacobi)->RangeMultiplier(2)->Range(8, 64);

template <linalg::ExecPolicy kPolicy>
void BM_InnerProduct(benchmark::State& state) {
  const idx chi = state.range(0);
  const auto a = random_mps(20, chi, 4);
  const auto b = random_mps(20, chi, 5);
  for (auto _ : state)
    benchmark::DoNotOptimize(mps::inner_product(a, b, kPolicy));
  state.counters["chi"] = static_cast<double>(chi);
}
BENCHMARK(BM_InnerProduct<linalg::ExecPolicy::Reference>)
    ->RangeMultiplier(2)
    ->Range(4, 64);
BENCHMARK(BM_InnerProduct<linalg::ExecPolicy::Accelerated>)
    ->RangeMultiplier(2)
    ->Range(4, 64);

template <linalg::ExecPolicy kPolicy>
void BM_TwoQubitGate(benchmark::State& state) {
  const idx chi = state.range(0);
  const auto base = random_mps(8, chi, 6);
  const auto u = circuit::make_rxx(3, 4, 0.8).matrix();
  const mps::TruncationConfig trunc;
  for (auto _ : state) {
    state.PauseTiming();
    mps::Mps psi = base;
    state.ResumeTiming();
    mps::apply_adjacent_two_qubit_gate(psi, u, 3, trunc, kPolicy);
  }
  state.counters["chi"] = static_cast<double>(chi);
}
BENCHMARK(BM_TwoQubitGate<linalg::ExecPolicy::Reference>)
    ->RangeMultiplier(2)
    ->Range(4, 64);
BENCHMARK(BM_TwoQubitGate<linalg::ExecPolicy::Accelerated>)
    ->RangeMultiplier(2)
    ->Range(4, 64);

}  // namespace

BENCHMARK_MAIN();
