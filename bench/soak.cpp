/// Streaming soak bench: drives the sharded serving frontends through the
/// src/soak harness — pull-based workload, composed arrival shapes,
/// priority classes through admission control, an SLO ledger reconciled
/// exactly against engine counters, and coverage-guided metamorphic
/// fuzzing over the relation x engine-state matrix (DESIGN.md §10).
///
/// Sections:
///  1. Steady soak: sustained + diurnal + flash-crowd composite through a
///     ShardedEngine, in-stream bitwise parity + routing checks.
///     Gates: zero lost futures, zero violations, exact SLO ledger
///     reconciliation.
///  2. Overload soak: the same composite into a deliberately undersized
///     admission queue under kShedOldest — per-class shed/reject/deadline
///     accounting. Gate: exact reconciliation under load shedding.
///  3. Coverage-guided fuzz: FuzzLab steps planned by the guided mutator
///     vs an unguided baseline on the same seed and step budget.
///     Gates: guided completes the relation x state map, guided coverage
///     >= unguided, zero failed relation checks.
///  4. Long soak (skipped under --quick unless QKMPS_FULL=1): >= 1M
///     requests, duplicate-heavy so the memo absorbs the stream, O(1)
///     resident workload memory by construction (bounded in-flight
///     window). Gates: zero lost, reconciled, sustained throughput
///     reported for the trend history.
///
/// Any gate failure exits 1 (CI runs `soak --quick`). Emits soak.json.
///
/// Knobs: QKMPS_SOAK_REQUESTS, QKMPS_SOAK_UNIQUE, QKMPS_SOAK_LONG_REQUESTS,
/// QKMPS_SOAK_SHARDS; QKMPS_FULL=1 scales everything up.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "kernel/gram.hpp"
#include "serve/model_bundle.hpp"
#include "serve/sharded_engine.hpp"
#include "soak/arrival.hpp"
#include "soak/coverage.hpp"
#include "soak/fuzz.hpp"
#include "soak/harness.hpp"
#include "soak/slo.hpp"
#include "svm/svm.hpp"
#include "util/timer.hpp"

using namespace qkmps;

namespace {

struct Setup {
  serve::ModelBundle bundle;
  kernel::RealMatrix pool;  ///< raw request rows
  std::vector<double> reference;  ///< sequential oracle per pool row
};

Setup build_setup(idx per_class, idx m, idx layers, idx pool_rows) {
  data::EllipticSyntheticParams gen;
  gen.num_points = std::max<idx>(24 * per_class, 2000);
  gen.num_features = m;
  const data::Dataset pool = data::generate_elliptic_synthetic(gen);
  Rng rng(42);
  const data::Dataset sample = data::balanced_subsample(pool, per_class, rng);
  const data::TrainTestSplit split = data::train_test_split(sample, 0.2, rng);
  const data::FeatureScaler scaler = data::FeatureScaler::fit(split.train.x);
  const auto x_train = scaler.transform(split.train.x);

  kernel::QuantumKernelConfig cfg;
  cfg.ansatz = {.num_features = m, .layers = layers, .distance = 1,
                .gamma = 0.25};
  const auto train_states = kernel::simulate_states(cfg, x_train);
  const auto k_train = kernel::gram_from_states(train_states, cfg.sim.policy);
  const auto model = svm::train_svc(k_train, split.train.y, {.c = 1.0});

  Setup s;
  s.bundle = serve::make_bundle(cfg, scaler, model, train_states);

  data::EllipticSyntheticParams req = gen;
  req.num_points = pool_rows;
  req.seed = 777;
  s.pool = data::generate_elliptic_synthetic(req).x;

  const auto scaled = s.bundle.scaler.transform(s.pool);
  const auto states = kernel::simulate_states(s.bundle.config, scaled);
  const auto k = kernel::cross_from_states(states, s.bundle.sv_states,
                                           s.bundle.config.sim.policy);
  s.reference = s.bundle.model.decision_values(k);
  return s;
}

void print_report(const char* what, const soak::SoakReport& r) {
  std::printf(
      "%s: %llu offered in %.2fs (%.0f served rps windowed); gated %llu, "
      "lost %llu, parity breaks %llu, routing breaks %llu, peak in-flight "
      "%llu; ledger %s\n",
      what, static_cast<unsigned long long>(r.attempted), r.elapsed_seconds,
      r.slo.windowed_rps, static_cast<unsigned long long>(r.gated),
      static_cast<unsigned long long>(r.lost),
      static_cast<unsigned long long>(r.parity_violations),
      static_cast<unsigned long long>(r.routing_violations),
      static_cast<unsigned long long>(r.peak_in_flight),
      r.reconciled ? "reconciled exactly" : r.reconcile_detail.c_str());
  for (std::size_t i = 0; i < soak::kNumPriorities; ++i) {
    const soak::ClassLedger& c = r.slo.classes[i];
    std::printf(
        "  %-11s submitted %8llu  served %8llu  rejected %6llu  shed %6llu  "
        "gated %6llu  deadline-miss %6llu  p50 %.3fms  p99 %.3fms  "
        "p99.9 %.3fms\n",
        soak::to_string(static_cast<soak::Priority>(i)),
        static_cast<unsigned long long>(c.submitted),
        static_cast<unsigned long long>(c.served),
        static_cast<unsigned long long>(c.rejected),
        static_cast<unsigned long long>(c.shed),
        static_cast<unsigned long long>(c.gated),
        static_cast<unsigned long long>(c.deadline_missed), c.p50_s * 1e3,
        c.p99_s * 1e3, c.p999_s * 1e3);
  }
}

void write_report(JsonWriter& w, const std::string& key,
                  const soak::SoakReport& r) {
  w.begin_object(key);
  w.field("attempted", static_cast<long long>(r.attempted));
  w.field("gated", static_cast<long long>(r.gated));
  w.field("lost", static_cast<long long>(r.lost));
  w.field("parity_violations", static_cast<long long>(r.parity_violations));
  w.field("routing_violations", static_cast<long long>(r.routing_violations));
  w.field("peak_in_flight", static_cast<long long>(r.peak_in_flight));
  w.field("elapsed_seconds", r.elapsed_seconds);
  w.field("windowed_throughput_rps", r.slo.windowed_rps);
  w.field("reconciled", r.reconciled);
  w.field("zero_lost", r.lost == 0);
  w.begin_array("classes");
  for (std::size_t i = 0; i < soak::kNumPriorities; ++i) {
    const soak::ClassLedger& c = r.slo.classes[i];
    w.begin_array_object();
    w.field("class", soak::to_string(static_cast<soak::Priority>(i)));
    w.field("submitted", static_cast<long long>(c.submitted));
    w.field("gated", static_cast<long long>(c.gated));
    w.field("served", static_cast<long long>(c.served));
    w.field("rejected", static_cast<long long>(c.rejected));
    w.field("shed", static_cast<long long>(c.shed));
    w.field("deadline_missed", static_cast<long long>(c.deadline_missed));
    w.field("p50_seconds", c.p50_s);
    w.field("p99_seconds", c.p99_s);
    w.field("p999_seconds", c.p999_s);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool long_soak = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--long") == 0) long_soak = true;
  }
  const bool full = full_scale_requested();
  if (full) long_soak = true;

  bench::print_header("streaming soak / coverage-guided fuzz");

  const idx per_class = quick ? 10 : 14;
  const idx features = static_cast<idx>(env_int("QKMPS_SOAK_FEATURES", 6));
  const idx layers = quick ? 1 : 2;
  const idx pool_rows =
      static_cast<idx>(env_int("QKMPS_SOAK_UNIQUE", quick ? 96 : 200));
  const std::uint64_t requests = static_cast<std::uint64_t>(
      env_int("QKMPS_SOAK_REQUESTS", quick ? 3000 : 20000));
  const std::size_t shards =
      static_cast<std::size_t>(env_int("QKMPS_SOAK_SHARDS", 2));

  std::printf("model: %lld/class, %lld features, %lld layers; pool %lld "
              "rows; %llu requests x %zu shards\n",
              static_cast<long long>(per_class),
              static_cast<long long>(features),
              static_cast<long long>(layers),
              static_cast<long long>(pool_rows),
              static_cast<unsigned long long>(requests), shards);

  Timer setup_timer;
  Setup setup = build_setup(per_class, features, layers, pool_rows);
  const auto bundle =
      std::make_shared<const serve::ModelBundle>(setup.bundle);
  std::printf("setup (train + oracle): %.2fs\n", setup_timer.seconds());

  bool all_ok = true;
  const auto gate = [&](bool ok, const char* what) {
    if (!ok) {
      std::printf("GATE FAILED: %s\n", what);
      all_ok = false;
    }
  };

  // --- Section 1: steady soak, composite offered load. ------------------
  soak::SoakReport steady;
  {
    serve::ShardedEngineConfig scfg;
    scfg.num_shards = shards;
    scfg.engine.num_threads = 0;
    scfg.router = {serve::RouterKind::kConsistentHash, 64};
    serve::ShardedEngine engine(bundle, scfg);

    soak::SoakConfig cfg;
    cfg.seed = 2026;
    cfg.total_requests = requests;
    cfg.max_in_flight = 128;
    cfg.num_unique = pool_rows / 2;  // duplicate-heavy: memo absorbs
    cfg.shapes = {soak::sustained(2000.0),
                  soak::diurnal(4000.0, 4.0),
                  soak::flash_crowd(1000.0, 3.0, 0.5, 6.0)};
    soak::SoakHarness harness(setup.pool, setup.reference, cfg);
    steady = harness.run(engine);
    print_report("steady soak", steady);
    gate(steady.lost == 0, "steady: zero lost futures");
    gate(steady.parity_violations == 0, "steady: bitwise parity in-stream");
    gate(steady.routing_violations == 0, "steady: routing stability");
    gate(steady.reconciled, "steady: exact SLO ledger reconciliation");
  }

  // --- Section 2: overload soak, shedding admission queue. ---------------
  soak::SoakReport overload;
  {
    serve::ShardedEngineConfig scfg;
    scfg.num_shards = shards;
    scfg.engine.num_threads = 0;
    scfg.router = {serve::RouterKind::kConsistentHash, 64};
    scfg.admission_capacity = 8;  // deliberately undersized
    scfg.policy = serve::AdmissionPolicy::kShedOldest;
    serve::ShardedEngine engine(bundle, scfg);

    soak::SoakConfig cfg;
    cfg.seed = 2027;
    cfg.total_requests = requests / 2;
    cfg.max_in_flight = 512;          // the window outruns the queues...
    cfg.batch_gate_fraction = 0.50;   // ...and the gate sheds batch early
    cfg.standard_gate_fraction = 0.75;
    cfg.num_unique = pool_rows;       // duplicate-light: real queue pressure
    cfg.shapes = {soak::flash_crowd(2000.0, 2.0, 1.0, 10.0)};
    soak::SoakHarness harness(setup.pool, setup.reference, cfg);
    overload = harness.run(engine);
    print_report("overload soak", overload);
    gate(overload.lost == 0, "overload: zero lost futures");
    gate(overload.parity_violations == 0, "overload: bitwise parity");
    gate(overload.reconciled,
         "overload: exact SLO ledger reconciliation under shedding");
  }

  // --- Section 3: coverage-guided fuzz vs unguided baseline. -------------
  std::size_t guided_covered = 0, unguided_covered = 0, target_cells = 0;
  std::uint64_t fuzz_failures = 0;
  std::uint64_t guided_steps = 0;
  std::string first_fuzz_failure;
  {
    soak::FuzzLabConfig lab_cfg;
    lab_cfg.seed = 9001;
    lab_cfg.num_shards = shards;
    soak::FuzzLab lab(setup.bundle, setup.pool, setup.reference, lab_cfg);

    soak::RelationCoverageMap guided_map(lab.supports_worker_death());
    target_cells = guided_map.target_count();
    soak::GuidedMutator guided(guided_map, 31337, /*guided=*/true);
    // A full map terminates the loop; the step bound is a backstop only.
    const std::uint64_t max_steps = 4 * target_cells;
    while (!guided_map.complete() && guided_steps < max_steps) {
      const soak::CheckResult res = lab.run(guided.next(), guided_map);
      ++guided_steps;
      if (!res.passed) {
        ++fuzz_failures;
        if (first_fuzz_failure.empty()) first_fuzz_failure = res.detail;
      }
    }
    guided_covered = guided_map.covered_count();

    // Unguided baseline: same lab, same seed, same number of steps.
    soak::RelationCoverageMap unguided_map(lab.supports_worker_death());
    soak::GuidedMutator unguided(unguided_map, 31337, /*guided=*/false);
    for (std::uint64_t s = 0; s < guided_steps; ++s) {
      const soak::CheckResult res = lab.run(unguided.next(), unguided_map);
      if (!res.passed) {
        ++fuzz_failures;
        if (first_fuzz_failure.empty()) first_fuzz_failure = res.detail;
      }
    }
    unguided_covered = unguided_map.covered_count();

    std::printf("\nfuzz: guided covered %zu/%zu cells in %llu steps; "
                "unguided covered %zu/%zu in the same budget; "
                "%llu failed checks\n",
                guided_covered, target_cells,
                static_cast<unsigned long long>(guided_steps),
                unguided_covered, target_cells,
                static_cast<unsigned long long>(fuzz_failures));
    std::printf("%s", guided_map.render_text().c_str());
    if (!first_fuzz_failure.empty())
      std::printf("first fuzz failure: %s\n", first_fuzz_failure.c_str());
    gate(guided_covered == target_cells, "fuzz: guided completes the map");
    gate(guided_covered >= unguided_covered,
         "fuzz: guided coverage >= unguided on the same seed");
    gate(fuzz_failures == 0, "fuzz: all relation checks pass");
  }

  // --- Section 4: long soak (>= 1M requests, O(1) workload memory). ------
  soak::SoakReport long_report;
  bool ran_long = false;
  if (long_soak) {
    ran_long = true;
    const std::uint64_t long_requests = static_cast<std::uint64_t>(
        env_int("QKMPS_SOAK_LONG_REQUESTS", 1'000'000));
    serve::ShardedEngineConfig scfg;
    scfg.num_shards = shards;
    scfg.engine.num_threads = 0;
    scfg.router = {serve::RouterKind::kConsistentHash, 64};
    serve::ShardedEngine engine(bundle, scfg);

    soak::SoakConfig cfg;
    cfg.seed = 2028;
    cfg.total_requests = long_requests;
    cfg.max_in_flight = 256;
    // Heavily duplicated keys: the memo absorbs the stream, which is what
    // makes a million requests tractable — and is the realistic serving
    // profile (hot keys dominate).
    cfg.num_unique = std::min<idx>(pool_rows, 64);
    cfg.shapes = {soak::sustained(20'000.0),
                  soak::diurnal(40'000.0, 60.0),
                  soak::flash_crowd(10'000.0, 30.0, 2.0)};
    cfg.progress_every = long_requests / 10;
    soak::SoakHarness harness(setup.pool, setup.reference, cfg);
    long_report = harness.run(
        engine, nullptr, [](const soak::SoakReport& live) {
          std::printf("  ... %llu harvested, %.0f rps windowed, %llu lost\n",
                      static_cast<unsigned long long>(live.attempted),
                      live.slo.windowed_rps,
                      static_cast<unsigned long long>(live.lost));
        });
    print_report("long soak", long_report);
    gate(long_report.lost == 0, "long: zero lost futures");
    gate(long_report.parity_violations == 0, "long: bitwise parity");
    gate(long_report.reconciled, "long: exact SLO ledger reconciliation");
    gate(long_report.peak_in_flight <= cfg.max_in_flight,
         "long: in-flight window bounded (O(1) workload memory)");
  }

  bench::write_artifact("soak.json", [&](JsonWriter& w) {
    w.field("bench", "soak");
    w.field("quick", quick);
    w.field("requests", static_cast<long long>(requests));
    w.field("unique_points", static_cast<long long>(pool_rows));
    w.field("features", static_cast<long long>(features));
    w.field("shards", static_cast<long long>(shards));
    write_report(w, "steady", steady);
    write_report(w, "overload", overload);
    w.begin_object("fuzz");
    w.field("target_cells", static_cast<long long>(target_cells));
    w.field("guided_covered", static_cast<long long>(guided_covered));
    w.field("unguided_covered", static_cast<long long>(unguided_covered));
    w.field("guided_steps", static_cast<long long>(guided_steps));
    w.field("failed_checks", static_cast<long long>(fuzz_failures));
    w.field("guided_complete", guided_covered == target_cells);
    w.field("guided_beats_unguided", guided_covered >= unguided_covered);
    w.end_object();
    if (ran_long) write_report(w, "long", long_report);
    w.field("all_gates_ok", all_ok);
  });

  std::printf("\nsoak: %s; artifact -> soak.json\n",
              all_ok ? "all gates passed" : "GATES FAILED");
  return all_ok ? 0 : 1;
}
