/// Artifact A2 — Fig. 6 of the paper.
///
/// Tracks the MPS memory footprint over the course of a simulation for two
/// circuit families with different interaction distance; prints the mean /
/// min / max footprint at fixed progress points (percentage of gates
/// applied), which is exactly the data Fig. 6 plots. The sharp drops in the
/// profile are SVD truncations.
///
/// Knobs: QKMPS_FULL=1 (m=100, d in {6,12}), QKMPS_QUBITS, QKMPS_SAMPLES.

#include <cstdio>

#include "bench_common.hpp"
#include "circuit/ansatz.hpp"
#include "mps/simulator.hpp"

using namespace qkmps;

namespace {

void run_family(idx m, idx d, idx samples) {
  const kernel::RealMatrix x = bench::scaled_features(samples, m, 23);
  const circuit::AnsatzParams ansatz{.num_features = m, .layers = 2,
                                     .distance = d, .gamma = 1.0};
  mps::SimulatorConfig cfg;
  cfg.track_memory = true;
  const mps::MpsSimulator sim(cfg);

  std::vector<mps::MemoryTracker> profiles;
  for (idx i = 0; i < samples; ++i) {
    std::vector<double> row(x.row(i), x.row(i) + m);
    profiles.push_back(
        sim.simulate(circuit::feature_map_circuit(ansatz, row)).memory);
  }

  std::printf("\n[d=%lld] footprint in KiB at %% of gates applied "
              "(mean over %lld samples; min-max band)\n",
              static_cast<long long>(d), static_cast<long long>(samples));
  std::printf("%8s %12s %12s %12s\n", "progress", "mean", "min", "max");
  std::vector<double> progress_axis, mean_series;
  for (int pct = 0; pct <= 100; pct += 5) {
    const double frac = static_cast<double>(pct) / 100.0;
    double sum = 0.0, lo = 1e300, hi = 0.0;
    for (const auto& p : profiles) {
      const double kib = p.bytes_at_progress(frac) / 1024.0;
      sum += kib;
      lo = std::min(lo, kib);
      hi = std::max(hi, kib);
    }
    const double mean = sum / static_cast<double>(profiles.size());
    std::printf("%7d%% %12.2f %12.2f %12.2f\n", pct, mean, lo, hi);
    progress_axis.push_back(frac);
    mean_series.push_back(mean);
  }

  std::size_t peak = 0;
  idx peak_chi = 1;
  for (const auto& p : profiles) {
    peak = std::max(peak, p.peak_bytes());
    peak_chi = std::max(peak_chi, p.peak_bond());
  }
  std::printf("peak footprint %.2f KiB, peak chi %lld "
              "(statevector equivalent would need 16 * 2^%lld bytes)\n",
              static_cast<double>(peak) / 1024.0,
              static_cast<long long>(peak_chi), static_cast<long long>(m));

  bench::write_artifact("fig6_memory_d" + std::to_string(d) + ".json",
                        [&](JsonWriter& w) {
                          w.field("d", static_cast<long long>(d));
                          w.field("qubits", static_cast<long long>(m));
                          w.field("progress", progress_axis);
                          w.field("mean_kib", mean_series);
                        });
}

}  // namespace

int main() {
  bench::print_header("Fig. 6: MPS memory footprint during simulation");
  const bool full = full_scale_requested();
  const idx m = static_cast<idx>(env_int("QKMPS_QUBITS", full ? 100 : 24));
  const idx samples = static_cast<idx>(env_int("QKMPS_SAMPLES", full ? 8 : 4));
  const idx d_small = full ? 6 : 3;
  const idx d_large = full ? 12 : 5;

  std::printf("qubits m=%lld, layers r=2, gamma=1.0\n", static_cast<long long>(m));
  run_family(m, d_small, samples);
  run_family(m, d_large, samples);
  return 0;
}
