/// Batched kernel-layer microbenchmark: the gate sweep's SVD/gemm
/// micro-batches through the three execution flavours —
///
///   one-at-a-time : plain svd()/gemm() per matrix, fresh allocations
///                   every call (the pre-batching hot path)
///   batched serial: linalg::batched_svd/batched_gemm, kSerial backend —
///                   shape-bucketed dispatch + workspace arenas, one thread
///   batched omp   : same pass under the kOpenMPBatched backend
///
/// plus an end-to-end section: a batch of feature-map circuits through
/// MpsSimulator::simulate() one by one vs simulate_batch() in lockstep,
/// reporting circuits/s — the number the serving stack's simulate stage
/// actually buys.
///
/// Every flavour must produce BITWISE identical results (factors, states,
/// truncation stats); any mismatch exits 1, so CI runs `kernels --quick`
/// as the batched-layer parity + throughput gate. Emits kernels.json
/// (compared against bench/baselines/kernels.json by
/// scripts/compare_bench.py — a throughput or speedup regression fails
/// the build).
///
/// Knobs: QKMPS_KERNELS_BATCH (matrices per pass), QKMPS_KERNELS_REPS,
/// QKMPS_KERNELS_CIRCUITS, QKMPS_KERNELS_FEATURES; QKMPS_FULL=1 scales up.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "circuit/ansatz.hpp"
#include "linalg/batched.hpp"
#include "linalg/gemm.hpp"
#include "linalg/svd.hpp"
#include "mps/simulator.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace qkmps;
using linalg::ExecPolicy;
using linalg::KernelBackend;
using linalg::KernelBatchConfig;
using linalg::Matrix;
using linalg::SvdResult;

namespace {

bool bitwise_equal(const Matrix& x, const Matrix& y) {
  if (x.rows() != y.rows() || x.cols() != y.cols()) return false;
  const std::size_t n = static_cast<std::size_t>(x.rows() * x.cols());
  return std::memcmp(x.data(), y.data(), n * sizeof(cplx)) == 0;
}

bool bitwise_equal(const SvdResult& x, const SvdResult& y) {
  return x.s.size() == y.s.size() &&
         std::memcmp(x.s.data(), y.s.data(), x.s.size() * sizeof(double)) ==
             0 &&
         bitwise_equal(x.u, y.u) && bitwise_equal(x.vh, y.vh);
}

bool bitwise_equal(const mps::Mps& x, const mps::Mps& y) {
  if (x.num_sites() != y.num_sites() || x.center() != y.center())
    return false;
  for (idx i = 0; i < x.num_sites(); ++i) {
    const auto& sx = x.site(i);
    const auto& sy = y.site(i);
    if (sx.left != sy.left || sx.right != sy.right ||
        sx.a.size() != sy.a.size())
      return false;
    if (std::memcmp(sx.a.data(), sy.a.data(), sx.a.size() * sizeof(cplx)) !=
        0)
      return false;
  }
  return true;
}

Matrix random_matrix(idx rows, idx cols, Rng& rng) {
  Matrix m(rows, cols);
  for (idx i = 0; i < rows; ++i)
    for (idx j = 0; j < cols; ++j) m(i, j) = rng.normal_cplx();
  return m;
}

/// Theta-shaped micro-batch: (dl*2) x (2*dr) matrices over the bond-dim
/// mix a mid-sweep gate round produces. Batches are shape-heterogeneous on
/// purpose — bucketing is the layer's job.
std::vector<Matrix> theta_batch(idx count, Rng& rng) {
  static const idx kBonds[] = {2, 4, 8, 16};
  std::vector<Matrix> batch;
  batch.reserve(static_cast<std::size_t>(count));
  for (idx i = 0; i < count; ++i) {
    const idx dl = kBonds[rng.uniform_int(4)];
    const idx dr = kBonds[rng.uniform_int(4)];
    batch.push_back(random_matrix(dl * 2, 2 * dr, rng));
  }
  return batch;
}

struct Flavour {
  const char* name;
  double throughput = 0.0;  ///< matrices (or circuits) per second
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;

  bench::print_header("kernels: batched SVD/gemm layer");
  const bool full = full_scale_requested();
  const idx batch_n =
      env_int("QKMPS_KERNELS_BATCH", full ? 256 : (quick ? 48 : 96));
  const idx reps = env_int("QKMPS_KERNELS_REPS", full ? 40 : (quick ? 8 : 20));
  const idx n_circuits =
      env_int("QKMPS_KERNELS_CIRCUITS", full ? 32 : (quick ? 6 : 12));
  const idx m = env_int("QKMPS_KERNELS_FEATURES", full ? 16 : 10);
  const ExecPolicy policy = ExecPolicy::Reference;

  std::printf("micro-batch: %lld matrices x %lld reps; sweep: %lld "
              "%lld-qubit feature-map circuits\n",
              static_cast<long long>(batch_n), static_cast<long long>(reps),
              static_cast<long long>(n_circuits), static_cast<long long>(m));

  Rng rng(7);
  const std::vector<Matrix> thetas = theta_batch(batch_n, rng);
  std::uint64_t mismatches = 0;

  // --- Section 1: batched SVD. ------------------------------------------
  std::vector<SvdResult> expected(thetas.size());
  for (std::size_t i = 0; i < thetas.size(); ++i)
    expected[i] = svd(thetas[i], policy);

  // The flavours run INTERLEAVED, one pass of each per rep, accumulating
  // per-flavour wall time. On a busy/throttling box sequential A-then-B
  // timing is order-biased (whichever flavour runs later sees the hotter,
  // slower machine); alternating passes spreads that drift evenly.
  Flavour svd_one{"one-at-a-time"}, svd_serial{"batched serial"},
      svd_omp{"batched omp"};
  {
    KernelBatchConfig serial_cfg, omp_cfg;
    serial_cfg.backend = KernelBackend::kSerial;
    omp_cfg.backend = KernelBackend::kOpenMPBatched;
    serial_cfg.policy = omp_cfg.policy = policy;
    serial_cfg.thread_budget = omp_cfg.thread_budget = 2;
    linalg::KernelArena serial_arena, omp_arena;
    std::vector<SvdResult> serial_out(thetas.size()), omp_out(thetas.size());
    std::vector<linalg::SvdTask> serial_tasks, omp_tasks;
    for (std::size_t i = 0; i < thetas.size(); ++i) {
      serial_tasks.push_back({&thetas[i], &serial_out[i]});
      omp_tasks.push_back({&thetas[i], &omp_out[i]});
    }
    double one_s = 0.0, serial_s = 0.0, omp_s = 0.0;
    for (idx r = 0; r < reps; ++r) {
      {
        Timer t;
        std::vector<SvdResult> out(thetas.size());
        for (std::size_t i = 0; i < thetas.size(); ++i)
          out[i] = svd(thetas[i], policy);
        one_s += t.seconds();
      }
      {
        Timer t;
        linalg::batched_svd(serial_tasks, serial_cfg, &serial_arena);
        serial_s += t.seconds();
      }
      {
        Timer t;
        linalg::batched_svd(omp_tasks, omp_cfg, &omp_arena);
        omp_s += t.seconds();
      }
    }
    const double work = static_cast<double>(batch_n * reps);
    svd_one.throughput = work / one_s;
    svd_serial.throughput = work / serial_s;
    svd_omp.throughput = work / omp_s;
    for (std::size_t i = 0; i < thetas.size(); ++i) {
      if (!bitwise_equal(serial_out[i], expected[i])) ++mismatches;
      if (!bitwise_equal(omp_out[i], expected[i])) ++mismatches;
    }
  }

  std::printf("\nbatched SVD (%lld theta matrices/pass):\n",
              static_cast<long long>(batch_n));
  for (const Flavour& f : {svd_one, svd_serial, svd_omp})
    std::printf("  %-16s %12.0f svd/s  (%.2fx)\n", f.name, f.throughput,
                f.throughput / svd_one.throughput);

  // --- Section 2: batched gemm (a_left x b_right contractions). ---------
  std::vector<std::pair<Matrix, Matrix>> pairs;
  for (idx i = 0; i < batch_n; ++i) {
    const Matrix& th = thetas[static_cast<std::size_t>(i)];
    pairs.emplace_back(random_matrix(th.rows(), th.cols(), rng),
                       random_matrix(th.cols(), th.rows(), rng));
  }
  std::vector<Matrix> gemm_expected;
  for (const auto& [a, b] : pairs)
    gemm_expected.push_back(linalg::gemm(a, b, policy));

  // Interleaved like the SVD section, for the same order-bias reason.
  Flavour gemm_one{"one-at-a-time"}, gemm_serial{"batched serial"},
      gemm_omp{"batched omp"};
  {
    KernelBatchConfig serial_cfg, omp_cfg;
    serial_cfg.backend = KernelBackend::kSerial;
    omp_cfg.backend = KernelBackend::kOpenMPBatched;
    serial_cfg.policy = omp_cfg.policy = policy;
    serial_cfg.thread_budget = omp_cfg.thread_budget = 2;
    std::vector<Matrix> serial_out(pairs.size()), omp_out(pairs.size());
    std::vector<linalg::GemmTask> serial_tasks, omp_tasks;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      serial_tasks.push_back({&pairs[i].first, &pairs[i].second, &serial_out[i]});
      omp_tasks.push_back({&pairs[i].first, &pairs[i].second, &omp_out[i]});
    }
    double one_s = 0.0, serial_s = 0.0, omp_s = 0.0;
    for (idx r = 0; r < reps; ++r) {
      {
        Timer t;
        std::vector<Matrix> out;
        out.reserve(pairs.size());
        for (const auto& [a, b] : pairs)
          out.push_back(linalg::gemm(a, b, policy));
        one_s += t.seconds();
      }
      {
        Timer t;
        linalg::batched_gemm(serial_tasks, serial_cfg);
        serial_s += t.seconds();
      }
      {
        Timer t;
        linalg::batched_gemm(omp_tasks, omp_cfg);
        omp_s += t.seconds();
      }
    }
    const double work = static_cast<double>(batch_n * reps);
    gemm_one.throughput = work / one_s;
    gemm_serial.throughput = work / serial_s;
    gemm_omp.throughput = work / omp_s;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      if (!bitwise_equal(serial_out[i], gemm_expected[i])) ++mismatches;
      if (!bitwise_equal(omp_out[i], gemm_expected[i])) ++mismatches;
    }
  }

  std::printf("\nbatched gemm (%lld contractions/pass):\n",
              static_cast<long long>(batch_n));
  for (const Flavour& f : {gemm_one, gemm_serial, gemm_omp})
    std::printf("  %-16s %12.0f gemm/s (%.2fx)\n", f.name, f.throughput,
                f.throughput / gemm_one.throughput);

  // --- Section 3: end-to-end gate sweep (simulate vs simulate_batch). ---
  const kernel::RealMatrix points =
      bench::scaled_features(n_circuits, m, /*seed=*/11);
  std::vector<circuit::Circuit> circuits;
  const circuit::AnsatzParams ansatz{
      .num_features = m, .layers = 4, .distance = 1, .gamma = 0.25};
  for (idx i = 0; i < n_circuits; ++i)
    circuits.push_back(circuit::feature_map_circuit(
        ansatz, std::vector<double>(points.row(i), points.row(i) + m)));

  mps::SimulatorConfig scfg;
  scfg.policy = policy;
  const mps::MpsSimulator sim(scfg);

  // Interleaved A/B over several reps (same rationale as the micro
  // sections): each rep runs one solo sweep and one lockstep sweep.
  Flavour sweep_one{"one-at-a-time"}, sweep_batched{"lockstep batched"};
  {
    KernelBatchConfig kc;
    kc.backend = KernelBackend::kOpenMPBatched;
    kc.thread_budget = 2;
    const idx sweep_reps = quick ? 3 : 5;
    double one_s = 0.0, batched_s = 0.0;
    std::vector<mps::SimulationResult> solo;
    std::vector<mps::SimulationResult> batch;
    for (idx r = 0; r < sweep_reps; ++r) {
      solo.clear();
      {
        Timer t;
        for (const auto& c : circuits) solo.push_back(sim.simulate(c));
        one_s += t.seconds();
      }
      {
        Timer t;
        batch = sim.simulate_batch(circuits, kc);
        batched_s += t.seconds();
      }
    }
    const double work = static_cast<double>(n_circuits * sweep_reps);
    sweep_one.throughput = work / one_s;
    sweep_batched.throughput = work / batched_s;
    for (std::size_t i = 0; i < batch.size(); ++i)
      if (!bitwise_equal(batch[i].state, solo[i].state)) ++mismatches;
  }

  const double sweep_speedup =
      sweep_batched.throughput / sweep_one.throughput;
  std::printf("\ngate sweep (%lld circuits, %lld qubits, r=1 l=4):\n",
              static_cast<long long>(n_circuits), static_cast<long long>(m));
  for (const Flavour& f : {sweep_one, sweep_batched})
    std::printf("  %-16s %12.2f circuits/s (%.2fx)\n", f.name, f.throughput,
                f.throughput / sweep_one.throughput);

  if (mismatches > 0)
    std::printf("\nPARITY FAILURE: %llu results diverged bitwise from the "
                "one-at-a-time kernels\n",
                static_cast<unsigned long long>(mismatches));
  else
    std::printf("\nparity: every batched result bitwise-matches the "
                "one-at-a-time kernels\n");

  bench::write_artifact("kernels.json", [&](JsonWriter& jw) {
    jw.field("bench", "kernels");
    jw.field("quick", quick);
    jw.field("batch", static_cast<long long>(batch_n));
    jw.field("parity_ok", mismatches == 0);
    jw.field("svd_one_at_a_time_throughput_per_s", svd_one.throughput);
    jw.field("svd_batched_serial_throughput_per_s", svd_serial.throughput);
    jw.field("svd_batched_omp_throughput_per_s", svd_omp.throughput);
    jw.field("svd_batched_speedup_vs_one_at_a_time",
             svd_serial.throughput / svd_one.throughput);
    jw.field("gemm_one_at_a_time_throughput_per_s", gemm_one.throughput);
    jw.field("gemm_batched_serial_throughput_per_s", gemm_serial.throughput);
    jw.field("gemm_batched_omp_throughput_per_s", gemm_omp.throughput);
    jw.field("gemm_batched_speedup_vs_one_at_a_time",
             gemm_serial.throughput / gemm_one.throughput);
    jw.field("sweep_one_at_a_time_circuit_throughput_per_s",
             sweep_one.throughput);
    jw.field("sweep_batched_circuit_throughput_per_s",
             sweep_batched.throughput);
    jw.field("sweep_batched_speedup_vs_one_at_a_time", sweep_speedup);
  });
  return mismatches == 0 ? 0 : 1;
}
