#pragma once

/// Umbrella header for the qkmps library: quantum kernel models at scale
/// via Matrix Product State simulation (reproduction of Metcalf et al.,
/// SC 2024). Include this to get the full public API; individual headers
/// can be included for faster builds.

#include "circuit/ansatz.hpp"        // IWYU pragma: export
#include "circuit/circuit.hpp"       // IWYU pragma: export
#include "circuit/gate.hpp"          // IWYU pragma: export
#include "circuit/interaction_graph.hpp"  // IWYU pragma: export
#include "circuit/routing.hpp"       // IWYU pragma: export
#include "circuit/scheduling.hpp"    // IWYU pragma: export
#include "circuit/statevector.hpp"   // IWYU pragma: export
#include "data/csv.hpp"              // IWYU pragma: export
#include "data/dataset.hpp"          // IWYU pragma: export
#include "data/elliptic_synthetic.hpp"  // IWYU pragma: export
#include "data/preprocess.hpp"       // IWYU pragma: export
#include "data/splits.hpp"           // IWYU pragma: export
#include "kernel/distributed_gram.hpp"  // IWYU pragma: export
#include "kernel/diagnostics.hpp"    // IWYU pragma: export
#include "kernel/gaussian.hpp"       // IWYU pragma: export
#include "kernel/gram.hpp"           // IWYU pragma: export
#include "kernel/kernel_matrix.hpp"  // IWYU pragma: export
#include "kernel/projected.hpp"      // IWYU pragma: export
#include "kernel/shot_kernel.hpp"    // IWYU pragma: export
#include "linalg/bidiag.hpp"         // IWYU pragma: export
#include "linalg/gemm.hpp"           // IWYU pragma: export
#include "linalg/householder.hpp"    // IWYU pragma: export
#include "linalg/jacobi_svd.hpp"     // IWYU pragma: export
#include "linalg/matrix.hpp"         // IWYU pragma: export
#include "linalg/norms.hpp"          // IWYU pragma: export
#include "linalg/policy.hpp"         // IWYU pragma: export
#include "linalg/qr.hpp"             // IWYU pragma: export
#include "linalg/svd.hpp"            // IWYU pragma: export
#include "linalg/symeig.hpp"         // IWYU pragma: export
#include "mps/canonical.hpp"         // IWYU pragma: export
#include "mps/entanglement.hpp"      // IWYU pragma: export
#include "mps/gate_application.hpp"  // IWYU pragma: export
#include "mps/inner_product.hpp"     // IWYU pragma: export
#include "mps/memory_tracker.hpp"    // IWYU pragma: export
#include "mps/mps.hpp"               // IWYU pragma: export
#include "mps/observables.hpp"       // IWYU pragma: export
#include "mps/sampling.hpp"          // IWYU pragma: export
#include "mps/serialization.hpp"     // IWYU pragma: export
#include "mps/simulator.hpp"         // IWYU pragma: export
#include "mps/truncation.hpp"        // IWYU pragma: export
#include "parallel/partition.hpp"    // IWYU pragma: export
#include "parallel/rank_runtime.hpp" // IWYU pragma: export
#include "parallel/thread_pool.hpp"  // IWYU pragma: export
#include "serve/feature_key.hpp"     // IWYU pragma: export
#include "serve/inference_engine.hpp"  // IWYU pragma: export
#include "serve/lru_map.hpp"         // IWYU pragma: export
#include "serve/model_bundle.hpp"    // IWYU pragma: export
#include "serve/prediction_memo.hpp" // IWYU pragma: export
#include "serve/rank_sharded_engine.hpp"  // IWYU pragma: export
#include "serve/router.hpp"          // IWYU pragma: export
#include "serve/sharded_engine.hpp"  // IWYU pragma: export
#include "serve/state_cache.hpp"     // IWYU pragma: export
#include "serve/workload.hpp"        // IWYU pragma: export
#include "svm/metrics.hpp"           // IWYU pragma: export
#include "svm/model_selection.hpp"   // IWYU pragma: export
#include "svm/svm.hpp"               // IWYU pragma: export
#include "tensor/contract.hpp"       // IWYU pragma: export
#include "tensor/decompositions.hpp" // IWYU pragma: export
#include "tensor/permute.hpp"        // IWYU pragma: export
#include "tensor/tensor.hpp"         // IWYU pragma: export
#include "util/cli.hpp"              // IWYU pragma: export
#include "util/error.hpp"            // IWYU pragma: export
#include "util/json_writer.hpp"      // IWYU pragma: export
#include "util/rng.hpp"              // IWYU pragma: export
#include "util/stats.hpp"            // IWYU pragma: export
#include "util/timer.hpp"            // IWYU pragma: export
#include "util/types.hpp"            // IWYU pragma: export
