#pragma once

#include <vector>

#include "util/types.hpp"

namespace qkmps::svm {

/// The paper's metric set (Sec. III-B): accuracy, recall, precision on the
/// positive ("illicit") class, and ROC AUC on decision scores.
struct Metrics {
  double accuracy = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double auc = 0.0;
};

/// Accuracy over {-1, +1} label vectors.
double accuracy(const std::vector<int>& truth, const std::vector<int>& pred);

/// Precision of the +1 class: TP / (TP + FP); 0 when nothing is predicted
/// positive.
double precision(const std::vector<int>& truth, const std::vector<int>& pred);

/// Recall of the +1 class: TP / (TP + FN); 0 when no positives exist.
double recall(const std::vector<int>& truth, const std::vector<int>& pred);

/// Area under the ROC curve from continuous scores, computed as the
/// normalized Mann-Whitney U statistic with midrank tie handling.
double roc_auc(const std::vector<int>& truth, const std::vector<double>& scores);

/// ROC curve points (fpr, tpr), sorted by threshold; useful for plotting.
std::vector<std::pair<double, double>> roc_curve(
    const std::vector<int>& truth, const std::vector<double>& scores);

/// All four metrics from scores (predictions thresholded at 0).
Metrics evaluate(const std::vector<int>& truth,
                 const std::vector<double>& scores);

}  // namespace qkmps::svm
