#pragma once

#include <vector>

#include "svm/metrics.hpp"
#include "svm/svm.hpp"

namespace qkmps::svm {

/// One (C, metrics) pair from a regularization sweep — the shape of the
/// paper artifacts' (reg, accuracy, precision, recall, auc) tuples.
struct SweepPoint {
  double c = 0.0;
  Metrics train;
  Metrics test;
};

/// The paper's C grid: values spanning [0.01, 4].
std::vector<double> default_c_grid();

/// Trains one SVC per C on (k_train, y_train), evaluates on the train
/// kernel and on the rectangular test kernel, and returns all points.
std::vector<SweepPoint> sweep_regularization(
    const kernel::RealMatrix& k_train, const std::vector<int>& y_train,
    const kernel::RealMatrix& k_test, const std::vector<int>& y_test,
    const std::vector<double>& c_grid, double tol = 1e-3);

/// Picks the sweep point with the highest test AUC (the artifact scripts'
/// selection rule: "picks the regularization coefficient with highest AUC").
const SweepPoint& best_by_test_auc(const std::vector<SweepPoint>& points);

}  // namespace qkmps::svm
