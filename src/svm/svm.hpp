#pragma once

#include <vector>

#include "kernel/kernel_matrix.hpp"
#include "util/types.hpp"

namespace qkmps::svm {

/// C-SVC on a *precomputed* kernel — the consumer of the quantum Gram
/// matrix (the paper feeds its kernels "to a standard SVM pipeline").
/// Solves the usual dual
///   min 1/2 a^T Q a - e^T a,  0 <= a_i <= C,  y^T a = 0,
/// with Q_ij = y_i y_j K_ij, via SMO with maximal-violating-pair working
/// set selection (the LIBSVM scheme).
struct SvcParams {
  double c = 1.0;       ///< box constraint; paper sweeps C in [0.01, 4]
  double tol = 1e-3;    ///< KKT violation stopping threshold (paper: 1e-3)
  long long max_iter = 10'000'000;  ///< safety valve on SMO iterations
};

struct SvcModel {
  std::vector<double> alpha;  ///< dual coefficients (size n_train)
  std::vector<int> y;         ///< training labels in {-1, +1}
  double bias = 0.0;
  long long iterations = 0;
  bool converged = false;

  /// Decision values f_i = sum_j alpha_j y_j K(test_i, train_j) + b for a
  /// rectangular test-vs-train kernel.
  std::vector<double> decision_values(const kernel::RealMatrix& k_test) const;

  /// Signed predictions in {-1, +1}.
  std::vector<int> predict(const kernel::RealMatrix& k_test) const;

  idx support_vector_count() const;
};

/// Trains on a symmetric n x n kernel and labels in {-1, +1}.
SvcModel train_svc(const kernel::RealMatrix& k, const std::vector<int>& y,
                   const SvcParams& params);

}  // namespace qkmps::svm
