#pragma once

#include <vector>

#include "kernel/kernel_matrix.hpp"
#include "util/error.hpp"
#include "util/types.hpp"

namespace qkmps::svm {

/// C-SVC on a *precomputed* kernel — the consumer of the quantum Gram
/// matrix (the paper feeds its kernels "to a standard SVM pipeline").
/// Solves the usual dual
///   min 1/2 a^T Q a - e^T a,  0 <= a_i <= C,  y^T a = 0,
/// with Q_ij = y_i y_j K_ij, via SMO with maximal-violating-pair working
/// set selection (the LIBSVM scheme).
struct SvcParams {
  double c = 1.0;       ///< box constraint; paper sweeps C in [0.01, 4]
  double tol = 1e-3;    ///< KKT violation stopping threshold (paper: 1e-3)
  long long max_iter = 10'000'000;  ///< safety valve on SMO iterations
};

struct SvcModel {
  std::vector<double> alpha;  ///< dual coefficients (size n_train)
  std::vector<int> y;         ///< training labels in {-1, +1}
  double bias = 0.0;
  long long iterations = 0;
  bool converged = false;

  /// Decision values f_i = sum_j alpha_j y_j K(test_i, train_j) + b for a
  /// rectangular test-vs-train kernel. Internally walks only the support
  /// vectors (alpha_j > 0), so a compacted model pays O(#SV) per row.
  std::vector<double> decision_values(const kernel::RealMatrix& k_test) const;

  /// Single-sample decision value from one kernel row k_row[j] =
  /// K(sample, train_j) — the one-request scoring primitive (used by the
  /// per-request serving baseline in bench/serving.cpp; the engine scores
  /// whole batches through decision_values).
  double decision_value(const std::vector<double>& k_row) const;

  /// Signed predictions in {-1, +1}.
  std::vector<int> predict(const kernel::RealMatrix& k_test) const;

  idx support_vector_count() const;
};

/// Trains on a symmetric n x n kernel and labels in {-1, +1}.
SvcModel train_svc(const kernel::RealMatrix& k, const std::vector<int>& y,
                   const SvcParams& params);

/// A trained model reduced to its support vectors. Inference only ever
/// multiplies against alpha_j > 0 terms (Sec. III-A's stored-states
/// argument), so dropping zero-alpha entries shrinks both the kernel
/// columns to compute and the number of training MPS that must stay
/// resident — the compaction serve::ModelBundle persists.
struct CompactSvc {
  SvcModel model;               ///< alpha/y hold only support-vector entries
  std::vector<idx> sv_indices;  ///< SV position -> original training index
};

/// Drops zero-alpha entries and remaps indices; bias/convergence metadata
/// are preserved. Decision values of the compact model against the
/// SV-only kernel columns are bitwise-identical to the full model's
/// (same nonzero terms, same accumulation order).
CompactSvc compact_support_vectors(const SvcModel& model);

/// Convenience overload that also gathers the per-SV subset of a
/// training-aligned sequence (e.g. the simulated training MPS states).
template <typename State>
CompactSvc compact_support_vectors(const SvcModel& model,
                                   const std::vector<State>& states,
                                   std::vector<State>* sv_states) {
  QKMPS_CHECK(states.size() == model.alpha.size());
  QKMPS_CHECK(sv_states != nullptr);
  CompactSvc compact = compact_support_vectors(model);
  sv_states->clear();
  sv_states->reserve(compact.sv_indices.size());
  for (idx i : compact.sv_indices)
    sv_states->push_back(states[static_cast<std::size_t>(i)]);
  return compact;
}

}  // namespace qkmps::svm
