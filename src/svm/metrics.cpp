#include "svm/metrics.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace qkmps::svm {

namespace {
void check_labels(const std::vector<int>& truth) {
  for (int t : truth) QKMPS_CHECK_MSG(t == 1 || t == -1, "labels must be +/-1");
}
}  // namespace

double accuracy(const std::vector<int>& truth, const std::vector<int>& pred) {
  QKMPS_CHECK(truth.size() == pred.size() && !truth.empty());
  std::size_t hit = 0;
  for (std::size_t i = 0; i < truth.size(); ++i)
    if (truth[i] == pred[i]) ++hit;
  return static_cast<double>(hit) / static_cast<double>(truth.size());
}

double precision(const std::vector<int>& truth, const std::vector<int>& pred) {
  QKMPS_CHECK(truth.size() == pred.size());
  std::size_t tp = 0, fp = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (pred[i] == 1) {
      if (truth[i] == 1) ++tp;
      else ++fp;
    }
  }
  return (tp + fp) == 0 ? 0.0
                        : static_cast<double>(tp) / static_cast<double>(tp + fp);
}

double recall(const std::vector<int>& truth, const std::vector<int>& pred) {
  QKMPS_CHECK(truth.size() == pred.size());
  std::size_t tp = 0, fn = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == 1) {
      if (pred[i] == 1) ++tp;
      else ++fn;
    }
  }
  return (tp + fn) == 0 ? 0.0
                        : static_cast<double>(tp) / static_cast<double>(tp + fn);
}

double roc_auc(const std::vector<int>& truth, const std::vector<double>& scores) {
  QKMPS_CHECK(truth.size() == scores.size() && !truth.empty());
  check_labels(truth);

  // Midranks of the scores.
  const std::size_t n = scores.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return scores[a] < scores[b]; });

  std::vector<double> rank(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double mid = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t t = i; t <= j; ++t) rank[order[t]] = mid;
    i = j + 1;
  }

  double pos_rank_sum = 0.0;
  std::size_t n_pos = 0;
  for (std::size_t t = 0; t < n; ++t) {
    if (truth[t] == 1) {
      pos_rank_sum += rank[t];
      ++n_pos;
    }
  }
  const std::size_t n_neg = n - n_pos;
  QKMPS_CHECK_MSG(n_pos > 0 && n_neg > 0, "AUC needs both classes present");
  const double u = pos_rank_sum -
                   static_cast<double>(n_pos) * (static_cast<double>(n_pos) + 1.0) / 2.0;
  return u / (static_cast<double>(n_pos) * static_cast<double>(n_neg));
}

std::vector<std::pair<double, double>> roc_curve(
    const std::vector<int>& truth, const std::vector<double>& scores) {
  QKMPS_CHECK(truth.size() == scores.size() && !truth.empty());
  check_labels(truth);
  const std::size_t n = scores.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return scores[a] > scores[b]; });

  double n_pos = 0, n_neg = 0;
  for (int t : truth) (t == 1 ? n_pos : n_neg) += 1.0;
  QKMPS_CHECK(n_pos > 0 && n_neg > 0);

  std::vector<std::pair<double, double>> pts;
  pts.emplace_back(0.0, 0.0);
  double tp = 0, fp = 0;
  std::size_t k = 0;
  while (k < n) {
    // Advance through ties as a block so the curve is threshold-consistent.
    std::size_t j = k;
    while (j < n && scores[order[j]] == scores[order[k]]) {
      if (truth[order[j]] == 1) tp += 1.0;
      else fp += 1.0;
      ++j;
    }
    pts.emplace_back(fp / n_neg, tp / n_pos);
    k = j;
  }
  return pts;
}

Metrics evaluate(const std::vector<int>& truth,
                 const std::vector<double>& scores) {
  std::vector<int> pred(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i)
    pred[i] = scores[i] >= 0.0 ? 1 : -1;
  Metrics m;
  m.accuracy = accuracy(truth, pred);
  m.precision = precision(truth, pred);
  m.recall = recall(truth, pred);
  m.auc = roc_auc(truth, scores);
  return m;
}

}  // namespace qkmps::svm
