#include "svm/model_selection.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace qkmps::svm {

std::vector<double> default_c_grid() {
  return {0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 4.0};
}

std::vector<SweepPoint> sweep_regularization(
    const kernel::RealMatrix& k_train, const std::vector<int>& y_train,
    const kernel::RealMatrix& k_test, const std::vector<int>& y_test,
    const std::vector<double>& c_grid, double tol) {
  QKMPS_CHECK(!c_grid.empty());
  std::vector<SweepPoint> out;
  out.reserve(c_grid.size());
  for (double c : c_grid) {
    SvcParams params;
    params.c = c;
    params.tol = tol;
    const SvcModel model = train_svc(k_train, y_train, params);

    SweepPoint p;
    p.c = c;
    p.train = evaluate(y_train, model.decision_values(k_train));
    p.test = evaluate(y_test, model.decision_values(k_test));
    out.push_back(p);
  }
  return out;
}

const SweepPoint& best_by_test_auc(const std::vector<SweepPoint>& points) {
  QKMPS_CHECK(!points.empty());
  return *std::max_element(points.begin(), points.end(),
                           [](const SweepPoint& a, const SweepPoint& b) {
                             return a.test.auc < b.test.auc;
                           });
}

}  // namespace qkmps::svm
