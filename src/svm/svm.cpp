#include "svm/svm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace qkmps::svm {

namespace {
constexpr double kTau = 1e-12;  // curvature floor for degenerate pairs
}

SvcModel train_svc(const kernel::RealMatrix& k, const std::vector<int>& y,
                   const SvcParams& params) {
  const idx n = k.rows();
  QKMPS_CHECK(k.cols() == n);
  QKMPS_CHECK(static_cast<idx>(y.size()) == n);
  QKMPS_CHECK(params.c > 0.0);
  for (int label : y) QKMPS_CHECK_MSG(label == 1 || label == -1, "labels must be +/-1");

  SvcModel model;
  model.y = y;
  model.alpha.assign(static_cast<std::size_t>(n), 0.0);
  // grad_i = (Q alpha)_i - 1; starts at -1 with alpha = 0.
  std::vector<double> grad(static_cast<std::size_t>(n), -1.0);

  const auto q = [&](idx i, idx j) {
    return static_cast<double>(y[static_cast<std::size_t>(i)]) *
           static_cast<double>(y[static_cast<std::size_t>(j)]) * k(i, j);
  };

  const double c = params.c;
  long long iter = 0;
  double m_up = 0.0, m_low = 0.0;

  for (; iter < params.max_iter; ++iter) {
    // Working-set selection: maximal violating pair.
    idx i_up = -1, i_low = -1;
    m_up = -std::numeric_limits<double>::infinity();
    m_low = std::numeric_limits<double>::infinity();
    for (idx t = 0; t < n; ++t) {
      const auto ts = static_cast<std::size_t>(t);
      const double yg = -static_cast<double>(y[ts]) * grad[ts];
      const bool in_up = (y[ts] == 1 && model.alpha[ts] < c) ||
                         (y[ts] == -1 && model.alpha[ts] > 0.0);
      const bool in_low = (y[ts] == 1 && model.alpha[ts] > 0.0) ||
                          (y[ts] == -1 && model.alpha[ts] < c);
      if (in_up && yg > m_up) {
        m_up = yg;
        i_up = t;
      }
      if (in_low && yg < m_low) {
        m_low = yg;
        i_low = t;
      }
    }
    if (i_up < 0 || i_low < 0 || m_up - m_low < params.tol) {
      model.converged = true;
      break;
    }

    const idx i = i_up, j = i_low;
    const auto is = static_cast<std::size_t>(i), js = static_cast<std::size_t>(j);
    const double yi = y[is], yj = y[js];

    // Two-variable subproblem along the feasible direction.
    double a = q(i, i) + q(j, j) - 2.0 * yi * yj * q(i, j);
    if (a <= 0.0) a = kTau;
    const double b = m_up - m_low;  // > 0 by selection
    double delta = b / a;

    // Clip to the box; the equality constraint is preserved by moving
    // alpha_i along +y_i and alpha_j along -y_j.
    const double ai_old = model.alpha[is];
    const double aj_old = model.alpha[js];
    double ai = ai_old + yi * delta;
    double aj = aj_old - yj * delta;

    // Project onto [0, C]^2 respecting the line constraint.
    const double sum_i = yi * ai_old + yj * aj_old;
    if (ai < 0.0) ai = 0.0;
    if (ai > c) ai = c;
    aj = yj * (sum_i - yi * ai);
    if (aj < 0.0) {
      aj = 0.0;
      ai = yi * (sum_i - yj * aj);
    }
    if (aj > c) {
      aj = c;
      ai = yi * (sum_i - yj * aj);
    }
    if (ai < 0.0) ai = 0.0;
    if (ai > c) ai = c;

    const double dai = ai - ai_old;
    const double daj = aj - aj_old;
    if (std::abs(dai) < 1e-16 && std::abs(daj) < 1e-16) {
      model.converged = true;  // numerically stuck at the optimum
      break;
    }

    for (idx t = 0; t < n; ++t) {
      const auto ts = static_cast<std::size_t>(t);
      grad[ts] += q(t, i) * dai + q(t, j) * daj;
    }
    model.alpha[is] = ai;
    model.alpha[js] = aj;
  }

  model.iterations = iter;
  // Bias from the midpoint of the violating-pair bounds (exact at
  // convergence when free SVs exist; the standard LIBSVM rho up to sign).
  model.bias = (m_up + m_low) / 2.0;
  return model;
}

namespace {

/// Gathered support list: the alpha_j y_j coefficients and their column
/// indices, in training order. Walking this instead of all of alpha is the
/// SV fast path — O(#SV) per test row — while keeping the accumulation
/// order identical to a skip-zeros scan (bitwise-stable decision values).
struct SupportList {
  std::vector<idx> cols;
  std::vector<double> coeff;  ///< alpha_j * y_j
};

SupportList gather_support(const std::vector<double>& alpha,
                           const std::vector<int>& y) {
  SupportList sv;
  for (std::size_t j = 0; j < alpha.size(); ++j) {
    if (alpha[j] == 0.0) continue;
    sv.cols.push_back(static_cast<idx>(j));
    sv.coeff.push_back(alpha[j] * static_cast<double>(y[j]));
  }
  return sv;
}

}  // namespace

std::vector<double> SvcModel::decision_values(
    const kernel::RealMatrix& k_test) const {
  QKMPS_CHECK(k_test.cols() == static_cast<idx>(alpha.size()));
  const SupportList sv = gather_support(alpha, y);
  std::vector<double> f(static_cast<std::size_t>(k_test.rows()), 0.0);
  for (idx i = 0; i < k_test.rows(); ++i) {
    double acc = 0.0;
    for (std::size_t s = 0; s < sv.cols.size(); ++s)
      acc += sv.coeff[s] * k_test(i, sv.cols[s]);
    f[static_cast<std::size_t>(i)] = acc + bias;
  }
  return f;
}

double SvcModel::decision_value(const std::vector<double>& k_row) const {
  QKMPS_CHECK(k_row.size() == alpha.size());
  double acc = 0.0;
  for (std::size_t j = 0; j < alpha.size(); ++j) {
    if (alpha[j] == 0.0) continue;
    acc += alpha[j] * static_cast<double>(y[j]) * k_row[j];
  }
  return acc + bias;
}

std::vector<int> SvcModel::predict(const kernel::RealMatrix& k_test) const {
  const std::vector<double> f = decision_values(k_test);
  std::vector<int> out(f.size());
  for (std::size_t i = 0; i < f.size(); ++i) out[i] = f[i] >= 0.0 ? 1 : -1;
  return out;
}

idx SvcModel::support_vector_count() const {
  return static_cast<idx>(
      std::count_if(alpha.begin(), alpha.end(), [](double a) { return a > 0.0; }));
}

CompactSvc compact_support_vectors(const SvcModel& model) {
  QKMPS_CHECK(model.alpha.size() == model.y.size());
  CompactSvc compact;
  compact.model.bias = model.bias;
  compact.model.iterations = model.iterations;
  compact.model.converged = model.converged;
  for (std::size_t j = 0; j < model.alpha.size(); ++j) {
    if (model.alpha[j] == 0.0) continue;
    compact.model.alpha.push_back(model.alpha[j]);
    compact.model.y.push_back(model.y[j]);
    compact.sv_indices.push_back(static_cast<idx>(j));
  }
  return compact;
}

}  // namespace qkmps::svm
