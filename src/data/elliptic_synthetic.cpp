#include "data/elliptic_synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace qkmps::data {

namespace {

/// Nonlinear latent score: pairwise interactions plus smooth warps so a
/// linear separator on the raw features is insufficient, but a good kernel
/// can recover the boundary.
double latent_score(const std::vector<double>& z) {
  const std::size_t k = z.size();
  double s = 0.0;
  for (std::size_t i = 0; i + 1 < k; i += 2) s += z[i] * z[i + 1] * 0.8;
  for (std::size_t i = 0; i < k; ++i) s += 0.4 * std::sin(1.7 * z[i]);
  if (k >= 3) s += 0.5 * (z[2] * z[2] - 1.0);
  return s;
}

}  // namespace

Dataset generate_elliptic_synthetic(const EllipticSyntheticParams& params) {
  QKMPS_CHECK(params.num_points >= 2);
  QKMPS_CHECK(params.num_features >= 1);
  QKMPS_CHECK(params.latent_dim >= 2);
  QKMPS_CHECK(params.positive_fraction > 0.0 && params.positive_fraction < 1.0);

  Rng rng(params.seed);
  const idx n = params.num_points;
  const idx m = params.num_features;
  const idx kd = params.latent_dim;

  // Fixed random mixing map latent -> features; feature j mixes a couple of
  // latent factors with a signal weight that decays with j, drowned in an
  // increasing share of noise. Deterministic given the seed.
  std::vector<std::vector<double>> mix(static_cast<std::size_t>(m));
  Rng map_rng = rng.split();
  for (idx j = 0; j < m; ++j) {
    auto& w = mix[static_cast<std::size_t>(j)];
    w.assign(static_cast<std::size_t>(kd), 0.0);
    // Two to three latent contributors per feature.
    const idx contributors = 2 + static_cast<idx>(map_rng.uniform_int(2));
    for (idx t = 0; t < contributors; ++t) {
      const auto which = static_cast<std::size_t>(map_rng.uniform_int(
          static_cast<std::uint64_t>(kd)));
      w[which] += map_rng.normal(0.0, 1.0);
    }
  }

  // First pass: draw latent scores to find the label threshold giving the
  // requested positive fraction.
  std::vector<std::vector<double>> latents(static_cast<std::size_t>(n));
  std::vector<double> scores(static_cast<std::size_t>(n));
  for (idx i = 0; i < n; ++i) {
    auto& z = latents[static_cast<std::size_t>(i)];
    z.resize(static_cast<std::size_t>(kd));
    for (auto& v : z) v = rng.normal();
    scores[static_cast<std::size_t>(i)] = latent_score(z);
  }
  std::vector<double> sorted = scores;
  std::sort(sorted.begin(), sorted.end());
  const auto cut = static_cast<std::size_t>(
      std::floor((1.0 - params.positive_fraction) * static_cast<double>(n)));
  const double threshold = sorted[std::min(cut, sorted.size() - 1)];

  Dataset out;
  out.x = kernel::RealMatrix(n, m);
  out.y.resize(static_cast<std::size_t>(n));

  for (idx i = 0; i < n; ++i) {
    const auto& z = latents[static_cast<std::size_t>(i)];
    out.y[static_cast<std::size_t>(i)] =
        scores[static_cast<std::size_t>(i)] > threshold ? 1 : -1;
    for (idx j = 0; j < m; ++j) {
      const auto& w = mix[static_cast<std::size_t>(j)];
      double signal = 0.0;
      for (idx t = 0; t < kd; ++t)
        signal += w[static_cast<std::size_t>(t)] * z[static_cast<std::size_t>(t)];
      // Informativeness decays with feature index; noise grows mildly.
      const double snr = 1.0 / (1.0 + static_cast<double>(j) / params.signal_decay);
      const double noise =
          params.noise_level * (1.0 + 0.5 * static_cast<double>(j) /
                                          static_cast<double>(m));
      double v = snr * signal + noise * rng.normal();
      // Mild monotone warp for realism (heavy-ish tails like transaction
      // aggregates); preserves information content.
      v = std::tanh(0.6 * v) + 0.15 * v;
      out.x(i, j) = v;
    }
  }
  return out;
}

}  // namespace qkmps::data
