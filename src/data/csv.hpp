#pragma once

#include <string>

#include "data/dataset.hpp"

namespace qkmps::data {

/// Writes a dataset as CSV: header "label,f0,f1,...", one row per point.
void save_csv(const Dataset& d, const std::string& path);

/// Loads a dataset saved by save_csv (or any CSV in the same layout).
/// Lets users run the pipeline on the *real* Elliptic data if they export
/// it to this layout.
Dataset load_csv(const std::string& path);

}  // namespace qkmps::data
