#pragma once

#include <utility>

#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace qkmps::data {

/// Balanced down-selection (Sec. III-B / artifact description: "the data
/// set is comprised of ntr entries labelled illicit and ntr entries
/// labelled licit"): draws `per_class` points of each label uniformly
/// without replacement, shuffled.
Dataset balanced_subsample(const Dataset& pool, idx per_class, Rng& rng);

/// Seeded 80/20 train-test split preserving class balance within each side.
struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

TrainTestSplit train_test_split(const Dataset& d, double test_fraction,
                                Rng& rng);

}  // namespace qkmps::data
