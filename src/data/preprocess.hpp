#pragma once

#include <vector>

#include "data/dataset.hpp"

namespace qkmps::data {

/// Feature scaler fit on training data only (standard leakage-free
/// pipeline): standardize to zero mean / unit variance, then map into the
/// open interval (lo, hi) — the paper rescales features to (0, 2) before
/// they become rotation angles (Sec. II-A).
class FeatureScaler {
 public:
  /// Fits per-feature statistics on `x`.
  static FeatureScaler fit(const kernel::RealMatrix& x, double lo = 0.0,
                           double hi = 2.0);

  /// Applies the fitted transform; out-of-range values (possible on test
  /// data) are clamped to the open interval.
  kernel::RealMatrix transform(const kernel::RealMatrix& x) const;

  idx num_features() const { return static_cast<idx>(mean_.size()); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }

  /// Fitted per-feature statistics, exposed so a scaler can be persisted
  /// inside a model artifact (serve::ModelBundle) and rebuilt bit-exactly.
  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& stddev() const { return stddev_; }
  const std::vector<double>& min_z() const { return min_z_; }
  const std::vector<double>& max_z() const { return max_z_; }

  /// Rebuilds a scaler from previously fitted statistics (the inverse of
  /// the accessors above). Validates shape consistency.
  static FeatureScaler restore(std::vector<double> mean,
                               std::vector<double> stddev,
                               std::vector<double> min_z,
                               std::vector<double> max_z, double lo, double hi);

 private:
  std::vector<double> mean_;
  std::vector<double> stddev_;
  std::vector<double> min_z_;  ///< post-standardization train min per feature
  std::vector<double> max_z_;
  double lo_ = 0.0;
  double hi_ = 2.0;
};

}  // namespace qkmps::data
