#pragma once

#include <vector>

#include "kernel/kernel_matrix.hpp"
#include "util/types.hpp"

namespace qkmps::data {

/// A labelled tabular dataset: rows are data points, columns are features,
/// labels are {-1, +1} with +1 the positive ("illicit") class.
struct Dataset {
  kernel::RealMatrix x;
  std::vector<int> y;

  idx size() const { return x.rows(); }
  idx num_features() const { return x.cols(); }

  /// Count of +1 labels.
  idx positives() const;
  /// Count of -1 labels.
  idx negatives() const;

  /// Subset by row indices (labels follow).
  Dataset select(const std::vector<idx>& rows) const;

  /// Keep only the first `k` feature columns. Feature order in the
  /// synthetic generator is by decreasing informativeness, so this is the
  /// paper's "increasing feature number" sweep axis (Figs. 9-10).
  Dataset with_features(idx k) const;
};

}  // namespace qkmps::data
