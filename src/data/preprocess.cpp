#include "data/preprocess.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace qkmps::data {

FeatureScaler FeatureScaler::fit(const kernel::RealMatrix& x, double lo,
                                 double hi) {
  QKMPS_CHECK(x.rows() >= 2 && x.cols() >= 1);
  QKMPS_CHECK(hi > lo);
  const idx n = x.rows(), m = x.cols();

  FeatureScaler s;
  s.lo_ = lo;
  s.hi_ = hi;
  s.mean_.assign(static_cast<std::size_t>(m), 0.0);
  s.stddev_.assign(static_cast<std::size_t>(m), 0.0);
  s.min_z_.assign(static_cast<std::size_t>(m), 0.0);
  s.max_z_.assign(static_cast<std::size_t>(m), 0.0);

  for (idx j = 0; j < m; ++j) {
    double mean = 0.0;
    for (idx i = 0; i < n; ++i) mean += x(i, j);
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (idx i = 0; i < n; ++i) {
      const double d = x(i, j) - mean;
      var += d * d;
    }
    var /= static_cast<double>(n);
    const double sd = std::sqrt(var);
    s.mean_[static_cast<std::size_t>(j)] = mean;
    // Constant features map to the interval midpoint via stddev 1.
    s.stddev_[static_cast<std::size_t>(j)] = sd > 0.0 ? sd : 1.0;

    double zmin = 0.0, zmax = 0.0;
    bool first = true;
    for (idx i = 0; i < n; ++i) {
      const double z = (x(i, j) - mean) / s.stddev_[static_cast<std::size_t>(j)];
      if (first) {
        zmin = zmax = z;
        first = false;
      } else {
        zmin = std::min(zmin, z);
        zmax = std::max(zmax, z);
      }
    }
    if (zmax == zmin) zmax = zmin + 1.0;
    s.min_z_[static_cast<std::size_t>(j)] = zmin;
    s.max_z_[static_cast<std::size_t>(j)] = zmax;
  }
  return s;
}

FeatureScaler FeatureScaler::restore(std::vector<double> mean,
                                     std::vector<double> stddev,
                                     std::vector<double> min_z,
                                     std::vector<double> max_z, double lo,
                                     double hi) {
  QKMPS_CHECK(!mean.empty());
  QKMPS_CHECK(stddev.size() == mean.size() && min_z.size() == mean.size() &&
              max_z.size() == mean.size());
  QKMPS_CHECK(hi > lo);
  for (std::size_t j = 0; j < mean.size(); ++j) {
    QKMPS_CHECK_MSG(std::isfinite(mean[j]) && std::isfinite(stddev[j]) &&
                        std::isfinite(min_z[j]) && std::isfinite(max_z[j]),
                    "non-finite scaler state");
    QKMPS_CHECK_MSG(stddev[j] > 0.0, "non-positive stddev in scaler state");
    QKMPS_CHECK_MSG(max_z[j] > min_z[j], "degenerate z-range in scaler state");
  }
  FeatureScaler s;
  s.mean_ = std::move(mean);
  s.stddev_ = std::move(stddev);
  s.min_z_ = std::move(min_z);
  s.max_z_ = std::move(max_z);
  s.lo_ = lo;
  s.hi_ = hi;
  return s;
}

kernel::RealMatrix FeatureScaler::transform(const kernel::RealMatrix& x) const {
  QKMPS_CHECK(x.cols() == num_features());
  kernel::RealMatrix out(x.rows(), x.cols());
  // Open-interval margin: the ansatz coefficients (1 - x_i) vanish at
  // x_i == 1, and angles at the boundary degenerate to Pauli gates, so we
  // keep a small inset exactly like the paper's (0, 2) open interval.
  const double inset = 1e-3;
  const double lo = lo_ + inset, hi = hi_ - inset;
  for (idx j = 0; j < x.cols(); ++j) {
    const auto js = static_cast<std::size_t>(j);
    const double span = max_z_[js] - min_z_[js];
    for (idx i = 0; i < x.rows(); ++i) {
      const double z = (x(i, j) - mean_[js]) / stddev_[js];
      double t = (z - min_z_[js]) / span;  // [0,1] on train, maybe outside on test
      t = std::clamp(t, 0.0, 1.0);
      out(i, j) = lo + t * (hi - lo);
    }
  }
  return out;
}

}  // namespace qkmps::data
