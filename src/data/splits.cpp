#include "data/splits.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace qkmps::data {

namespace {
void shuffle_indices(std::vector<idx>& v, Rng& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(rng.uniform_int(i));
    std::swap(v[i - 1], v[j]);
  }
}
}  // namespace

Dataset balanced_subsample(const Dataset& pool, idx per_class, Rng& rng) {
  std::vector<idx> pos, neg;
  for (idx i = 0; i < pool.size(); ++i) {
    (pool.y[static_cast<std::size_t>(i)] == 1 ? pos : neg).push_back(i);
  }
  QKMPS_CHECK_MSG(static_cast<idx>(pos.size()) >= per_class &&
                      static_cast<idx>(neg.size()) >= per_class,
                  "pool too small for " << per_class << " per class");
  shuffle_indices(pos, rng);
  shuffle_indices(neg, rng);

  std::vector<idx> rows;
  rows.reserve(static_cast<std::size_t>(2 * per_class));
  rows.insert(rows.end(), pos.begin(), pos.begin() + per_class);
  rows.insert(rows.end(), neg.begin(), neg.begin() + per_class);
  shuffle_indices(rows, rng);
  return pool.select(rows);
}

TrainTestSplit train_test_split(const Dataset& d, double test_fraction,
                                Rng& rng) {
  QKMPS_CHECK(test_fraction > 0.0 && test_fraction < 1.0);
  std::vector<idx> pos, neg;
  for (idx i = 0; i < d.size(); ++i)
    (d.y[static_cast<std::size_t>(i)] == 1 ? pos : neg).push_back(i);
  shuffle_indices(pos, rng);
  shuffle_indices(neg, rng);

  const auto cut = [&](const std::vector<idx>& v) {
    return static_cast<std::size_t>(
        std::llround(test_fraction * static_cast<double>(v.size())));
  };
  const std::size_t pos_cut = cut(pos), neg_cut = cut(neg);

  std::vector<idx> test_rows(pos.begin(), pos.begin() + static_cast<std::ptrdiff_t>(pos_cut));
  test_rows.insert(test_rows.end(), neg.begin(),
                   neg.begin() + static_cast<std::ptrdiff_t>(neg_cut));
  std::vector<idx> train_rows(pos.begin() + static_cast<std::ptrdiff_t>(pos_cut), pos.end());
  train_rows.insert(train_rows.end(),
                    neg.begin() + static_cast<std::ptrdiff_t>(neg_cut), neg.end());
  shuffle_indices(test_rows, rng);
  shuffle_indices(train_rows, rng);

  QKMPS_CHECK(!test_rows.empty() && !train_rows.empty());
  return {d.select(train_rows), d.select(test_rows)};
}

}  // namespace qkmps::data
