#include "data/dataset.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace qkmps::data {

idx Dataset::positives() const {
  return static_cast<idx>(std::count(y.begin(), y.end(), 1));
}

idx Dataset::negatives() const {
  return static_cast<idx>(std::count(y.begin(), y.end(), -1));
}

Dataset Dataset::select(const std::vector<idx>& rows) const {
  Dataset out;
  out.x = kernel::RealMatrix(static_cast<idx>(rows.size()), x.cols());
  out.y.resize(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const idx src = rows[i];
    QKMPS_CHECK(src >= 0 && src < x.rows());
    for (idx j = 0; j < x.cols(); ++j)
      out.x(static_cast<idx>(i), j) = x(src, j);
    out.y[i] = y[static_cast<std::size_t>(src)];
  }
  return out;
}

Dataset Dataset::with_features(idx k) const {
  QKMPS_CHECK(k >= 1 && k <= x.cols());
  Dataset out;
  out.x = kernel::RealMatrix(x.rows(), k);
  out.y = y;
  for (idx i = 0; i < x.rows(); ++i)
    for (idx j = 0; j < k; ++j) out.x(i, j) = x(i, j);
  return out;
}

}  // namespace qkmps::data
