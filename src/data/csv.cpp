#include "data/csv.hpp"

#include <fstream>
#include <sstream>
#include <vector>

#include "util/error.hpp"

namespace qkmps::data {

void save_csv(const Dataset& d, const std::string& path) {
  std::ofstream os(path);
  QKMPS_CHECK_MSG(os.good(), "cannot open " << path << " for writing");
  os << "label";
  for (idx j = 0; j < d.num_features(); ++j) os << ",f" << j;
  os << "\n";
  os.precision(17);
  for (idx i = 0; i < d.size(); ++i) {
    os << d.y[static_cast<std::size_t>(i)];
    for (idx j = 0; j < d.num_features(); ++j) os << "," << d.x(i, j);
    os << "\n";
  }
  QKMPS_CHECK_MSG(os.good(), "write failure on " << path);
}

Dataset load_csv(const std::string& path) {
  std::ifstream is(path);
  QKMPS_CHECK_MSG(is.good(), "cannot open " << path);

  std::string line;
  QKMPS_CHECK_MSG(static_cast<bool>(std::getline(is, line)), "empty CSV");
  idx num_features = -1;  // count commas in header minus label column
  {
    idx commas = 0;
    for (char c : line)
      if (c == ',') ++commas;
    num_features = commas;
  }
  QKMPS_CHECK_MSG(num_features >= 1, "CSV header has no feature columns");

  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::stringstream ss(line);
    std::string cell;
    QKMPS_CHECK(static_cast<bool>(std::getline(ss, cell, ',')));
    labels.push_back(std::stoi(cell));
    std::vector<double> row;
    row.reserve(static_cast<std::size_t>(num_features));
    while (std::getline(ss, cell, ',')) row.push_back(std::stod(cell));
    QKMPS_CHECK_MSG(static_cast<idx>(row.size()) == num_features,
                    "ragged CSV row with " << row.size() << " features");
    rows.push_back(std::move(row));
  }
  QKMPS_CHECK_MSG(!rows.empty(), "CSV has no data rows");

  Dataset d;
  d.x = kernel::RealMatrix(static_cast<idx>(rows.size()), num_features);
  d.y = std::move(labels);
  for (std::size_t i = 0; i < rows.size(); ++i)
    for (idx j = 0; j < num_features; ++j)
      d.x(static_cast<idx>(i), j) = rows[i][static_cast<std::size_t>(j)];
  return d;
}

}  // namespace qkmps::data
