#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <vector>

#include "parallel/rank_runtime.hpp"

namespace qkmps::parallel {

/// One end of a duplex, message-oriented link to a single peer — the
/// transport boundary the rank-sharded serving frontend is written
/// against (see DESIGN.md, "From ranks to processes"). The router holds
/// one Transport per shard; a shard worker holds one Transport back to
/// the router. Payloads are opaque byte messages with boundaries
/// preserved: one send() arrives as exactly one recv, in FIFO order —
/// the property the serving drain barrier relies on.
///
/// Two implementations: CommTransport (below) carries messages over a
/// parallel::Comm channel pair, keeping everything in-process — the test
/// double that makes the wire protocol exercisable without sockets; and
/// SocketTransport (socket_transport.hpp) frames the same bytes over a
/// TCP or Unix-domain stream socket, turning shard ranks into shard
/// processes.
///
/// Contracts shared by every implementation:
///  - send() never blocks indefinitely on a slow peer reading; it throws
///    qkmps::Error if the link is broken (closed pipe, reset).
///  - try_recv() pops a complete queued message or returns nullopt
///    without waiting.
///  - recv_for(timeout) blocks until a message or the timeout; a zero or
///    negative timeout degrades to try_recv semantics (never "wait
///    forever", never a throw) — the same contract Comm::recv_for pins
///    in tests/test_rank_runtime.cpp.
///  - A dead peer surfaces as qkmps::Error from the next call that needs
///    it, never as a hang or silently dropped bytes.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual void send(const std::vector<std::uint8_t>& payload) = 0;
  virtual std::optional<std::vector<std::uint8_t>> try_recv() = 0;
  virtual std::optional<std::vector<std::uint8_t>> recv_for(
      std::chrono::microseconds timeout) = 0;
};

/// parallel::Comm as a Transport: byte messages travel the typed channel
/// pair between this rank and `peer`. This is the in-process transport of
/// serve::RankShardedEngine — bit-for-bit the same payloads the socket
/// framing carries, minus the frame header, so the serialization layer is
/// exercised even when no process boundary exists.
class CommTransport final : public Transport {
 public:
  CommTransport(Comm& comm, int peer) : comm_(comm), peer_(peer) {}

  void send(const std::vector<std::uint8_t>& payload) override {
    comm_.send(peer_, payload);
  }

  std::optional<std::vector<std::uint8_t>> try_recv() override {
    return comm_.try_recv<std::vector<std::uint8_t>>(peer_);
  }

  std::optional<std::vector<std::uint8_t>> recv_for(
      std::chrono::microseconds timeout) override {
    return comm_.recv_for<std::vector<std::uint8_t>>(peer_, timeout);
  }

 private:
  Comm& comm_;
  int peer_;
};

}  // namespace qkmps::parallel
