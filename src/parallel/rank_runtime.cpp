#include "parallel/rank_runtime.hpp"

#include <exception>
#include <thread>

namespace qkmps::parallel {

int Comm::size() const { return rt_->size(); }

void Comm::barrier() { rt_->barrier_wait(); }

RankRuntime::RankRuntime(int num_ranks) : num_ranks_(num_ranks) {
  QKMPS_CHECK(num_ranks >= 1);
  channels_.resize(static_cast<std::size_t>(num_ranks) *
                   static_cast<std::size_t>(num_ranks));
  for (auto& c : channels_) c = std::make_unique<Channel>();
}

void RankRuntime::push(int src, int dst, std::any payload) {
  Channel& ch = channel(src, dst);
  {
    util::MutexLock lock(ch.mu);
    ch.queue.push_back(std::move(payload));
  }
  ch.cv.notify_one();
}

std::any RankRuntime::pop(int src, int dst) {
  Channel& ch = channel(src, dst);
  util::UniqueLock lock(ch.mu);
  while (ch.queue.empty()) ch.cv.wait(lock);
  std::any payload = std::move(ch.queue.front());
  ch.queue.pop_front();
  return payload;
}

std::optional<std::any> RankRuntime::try_pop(int src, int dst) {
  Channel& ch = channel(src, dst);
  util::MutexLock lock(ch.mu);
  if (ch.queue.empty()) return std::nullopt;
  std::any payload = std::move(ch.queue.front());
  ch.queue.pop_front();
  return payload;
}

std::optional<std::any> RankRuntime::pop_for(
    int src, int dst, std::chrono::microseconds timeout) {
  // Zero / negative timeouts degrade to try_pop semantics: an
  // already-queued message is returned, an empty channel yields nullopt
  // immediately. Routing this around wait_for avoids leaning on how a
  // given libstdc++ treats non-positive waits (and a negative duration
  // must never read as "wait forever"). The socket transport's router
  // loop reuses this contract (parallel/socket_transport.cpp).
  if (timeout <= std::chrono::microseconds::zero()) return try_pop(src, dst);
  Channel& ch = channel(src, dst);
  util::UniqueLock lock(ch.mu);
  // Explicit deadline loop (not the predicate overload) so the guarded
  // queue reads stay lexically inside the locked scope for the analysis.
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (ch.queue.empty()) {
    if (ch.cv.wait_until(lock, deadline) == std::cv_status::timeout &&
        ch.queue.empty())
      return std::nullopt;
  }
  std::any payload = std::move(ch.queue.front());
  ch.queue.pop_front();
  return payload;
}

void RankRuntime::barrier_wait() {
  util::UniqueLock lock(barrier_mu_);
  const long long gen = barrier_generation_;
  if (++barrier_count_ == num_ranks_) {
    barrier_count_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
    return;
  }
  while (barrier_generation_ == gen) barrier_cv_.wait(lock);
}

void RankRuntime::run(const std::function<void(Comm&)>& body) {
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(num_ranks_));
  threads.reserve(static_cast<std::size_t>(num_ranks_));

  for (int r = 0; r < num_ranks_; ++r) {
    threads.emplace_back([this, r, &body, &errors] {
      Comm comm(this, r);
      try {
        body(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& e : errors)
    if (e) std::rethrow_exception(e);
}

}  // namespace qkmps::parallel
