#pragma once

#include <utility>
#include <vector>

#include "util/types.hpp"

namespace qkmps::parallel {

/// Half-open index range [begin, end).
struct Range {
  idx begin = 0;
  idx end = 0;
  idx size() const { return end - begin; }
};

/// Splits [0, n) into `parts` contiguous near-equal ranges (the first
/// n % parts ranges get the extra element). Ranges may be empty when
/// parts > n.
std::vector<Range> split_evenly(idx n, idx parts);

/// Just the sizes of split_evenly(n, parts): the near-equal integer
/// partition of n. Used where a resource count (hardware threads across
/// engine shards, rows across ranks) must be divided without dropping
/// the remainder the way a plain n / parts would.
std::vector<idx> split_sizes(idx n, idx parts);

/// Tile of a matrix: a row range x column range. The Gram matrix is tiled
/// into near-square tiles (Sec. II-D: "square tiles are favoured").
struct Tile {
  Range rows;
  Range cols;
  idx index_row = 0;  ///< tile coordinates in the tile grid
  idx index_col = 0;
};

/// Tiles an n_rows x n_cols matrix into a grid_rows x grid_cols grid.
std::vector<Tile> make_tiles(idx n_rows, idx n_cols, idx grid_rows,
                             idx grid_cols);

/// Picks a near-square tile grid with (at least) `parts` tiles for an
/// n x n symmetric matrix; returns {grid_rows, grid_cols}.
std::pair<idx, idx> square_tile_grid(idx parts);

}  // namespace qkmps::parallel
