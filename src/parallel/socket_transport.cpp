#include "parallel/socket_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>
#include <thread>

#include "obs/metrics.hpp"
#include "util/binary_io.hpp"
#include "util/error.hpp"

namespace qkmps::parallel {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  QKMPS_CHECK_MSG(flags >= 0, "fcntl(F_GETFL) failed");
  QKMPS_CHECK_MSG(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                  "fcntl(F_SETFL, O_NONBLOCK) failed");
}

/// Every fd this layer creates must be close-on-exec: the serving engine
/// posix_spawn's worker processes, and a worker that inherits the
/// router's listener or a sibling's connection fd delays peer-EOF death
/// detection (the sibling's dup keeps the socket open) and leaks fds per
/// respawn generation. SOCK_CLOEXEC/accept4 set the flag atomically where
/// available; this fcntl fallback covers the rest.
void set_cloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD, 0);
  QKMPS_CHECK_MSG(flags >= 0, "fcntl(F_GETFD) failed");
  QKMPS_CHECK_MSG(::fcntl(fd, F_SETFD, flags | FD_CLOEXEC) == 0,
                  "fcntl(F_SETFD, FD_CLOEXEC) failed");
}

int cloexec_socket(int domain) {
#ifdef SOCK_CLOEXEC
  return ::socket(domain, SOCK_STREAM | SOCK_CLOEXEC, 0);
#else
  const int fd = ::socket(domain, SOCK_STREAM, 0);
  if (fd >= 0) set_cloexec(fd);
  return fd;
#endif
}

int cloexec_accept(int listener_fd) {
#if defined(SOCK_CLOEXEC) && defined(__linux__)
  return ::accept4(listener_fd, nullptr, nullptr, SOCK_CLOEXEC);
#else
  const int fd = ::accept(listener_fd, nullptr, nullptr);
  if (fd >= 0) set_cloexec(fd);
  return fd;
#endif
}

constexpr const char* kUnixPrefix = "unix:";
constexpr const char* kTcpPrefix = "tcp:";

bool has_prefix(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

sockaddr_un make_unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  QKMPS_CHECK_MSG(path.size() < sizeof(addr.sun_path),
                  "unix socket path too long (" << path.size() << " bytes): "
                                                << path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in make_tcp_addr(const std::string& spec) {
  // spec is "<ip>:<port>".
  const std::size_t colon = spec.rfind(':');
  QKMPS_CHECK_MSG(colon != std::string::npos,
                  "tcp address needs ip:port, got: " << spec);
  const std::string ip = spec.substr(0, colon);
  const std::string port_str = spec.substr(colon + 1);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  QKMPS_CHECK_MSG(::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) == 1,
                  "bad IPv4 address: " << ip);
  char* end = nullptr;
  const long port = std::strtol(port_str.c_str(), &end, 10);
  QKMPS_CHECK_MSG(end != nullptr && *end == '\0' && port >= 0 &&
                      port <= 65535,
                  "bad tcp port: " << port_str);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  return addr;
}

}  // namespace

// ---------------------------------------------------------------------
// Frame codec.

std::uint32_t frame_checksum(const std::uint8_t* data, std::size_t n) {
  // FNV-1a 64, folded to 32 by xoring the halves.
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return static_cast<std::uint32_t>(h ^ (h >> 32));
}

FrameHeader decode_frame_header(const std::uint8_t* bytes) {
  FrameHeader h;
  std::memcpy(&h.magic, bytes + 0, sizeof h.magic);
  std::memcpy(&h.version, bytes + 4, sizeof h.version);
  std::memcpy(&h.reserved, bytes + 6, sizeof h.reserved);
  std::memcpy(&h.length, bytes + 8, sizeof h.length);
  std::memcpy(&h.checksum, bytes + 16, sizeof h.checksum);
  return h;
}

void encode_frame_header(const FrameHeader& header,
                         std::uint8_t out[kFrameHeaderBytes]) {
  std::memcpy(out + 0, &header.magic, sizeof header.magic);
  std::memcpy(out + 4, &header.version, sizeof header.version);
  std::memcpy(out + 6, &header.reserved, sizeof header.reserved);
  std::memcpy(out + 8, &header.length, sizeof header.length);
  std::memcpy(out + 16, &header.checksum, sizeof header.checksum);
}

void validate_frame_header(const FrameHeader& header,
                           std::uint64_t max_payload) {
  QKMPS_CHECK_MSG(header.magic == kFrameMagic,
                  "bad frame magic 0x" << std::hex << header.magic
                                       << " (not a QKFR frame)");
  QKMPS_CHECK_MSG(header.version == kFrameVersion,
                  "unsupported frame version " << header.version
                                               << " (this build speaks "
                                               << kFrameVersion << ")");
  QKMPS_CHECK_MSG(header.reserved == 0,
                  "nonzero reserved frame field " << header.reserved);
  QKMPS_CHECK_MSG(header.length <= max_payload,
                  "frame payload length " << header.length
                                          << " exceeds the bound of "
                                          << max_payload << " bytes");
}

void verify_frame_checksum(const FrameHeader& header,
                           const std::uint8_t* payload) {
  const std::uint32_t sum =
      frame_checksum(payload, static_cast<std::size_t>(header.length));
  QKMPS_CHECK_MSG(sum == header.checksum,
                  "frame checksum mismatch (header 0x"
                      << std::hex << header.checksum << ", payload 0x" << sum
                      << ")");
}

void write_frame(std::ostream& os, const std::uint8_t* payload,
                 std::size_t n) {
  FrameHeader header;
  header.length = n;
  header.checksum = frame_checksum(payload, n);
  std::uint8_t raw[kFrameHeaderBytes];
  encode_frame_header(header, raw);
  os.write(reinterpret_cast<const char*>(raw), kFrameHeaderBytes);
  QKMPS_CHECK_MSG(os.good(), "short write (frame header)");
  if (n > 0) {
    os.write(reinterpret_cast<const char*>(payload),
             static_cast<std::streamsize>(n));
    QKMPS_CHECK_MSG(os.good(),
                    "short write (frame payload of " << n << " bytes)");
  }
}

void write_frame(std::ostream& os, const std::vector<std::uint8_t>& payload) {
  write_frame(os, payload.data(), payload.size());
}

std::optional<std::vector<std::uint8_t>> read_frame(
    std::istream& is, std::uint64_t max_payload) {
  std::uint8_t raw[kFrameHeaderBytes];
  is.read(reinterpret_cast<char*>(raw), kFrameHeaderBytes);
  const std::streamsize got = is.gcount();
  if (got == 0) return std::nullopt;  // clean end at a frame boundary
  QKMPS_CHECK_MSG(got == static_cast<std::streamsize>(kFrameHeaderBytes),
                  "truncated frame header (" << got << " of "
                                             << kFrameHeaderBytes
                                             << " bytes)");
  const FrameHeader header = decode_frame_header(raw);
  validate_frame_header(header, max_payload);

  std::vector<std::uint8_t> payload(static_cast<std::size_t>(header.length));
  if (header.length > 0) {
    is.read(reinterpret_cast<char*>(payload.data()),
            static_cast<std::streamsize>(header.length));
    QKMPS_CHECK_MSG(
        is.gcount() == static_cast<std::streamsize>(header.length),
        "truncated frame payload (" << is.gcount() << " of "
                                    << header.length << " bytes)");
  }
  verify_frame_checksum(header, payload.data());
  return payload;
}

// ---------------------------------------------------------------------
// SocketListener.

SocketListener::SocketListener(int fd, std::string address,
                               std::string unlink_path)
    : fd_(fd),
      address_(std::move(address)),
      unlink_path_(std::move(unlink_path)) {}

SocketListener::SocketListener(SocketListener&& other) noexcept
    : fd_(other.fd_),
      address_(std::move(other.address_)),
      unlink_path_(std::move(other.unlink_path_)) {
  other.fd_ = -1;
  other.unlink_path_.clear();
}

SocketListener::~SocketListener() {
  if (fd_ >= 0) ::close(fd_);
  if (!unlink_path_.empty()) ::unlink(unlink_path_.c_str());
}

SocketListener SocketListener::listen(const std::string& address) {
  if (has_prefix(address, kUnixPrefix)) {
    const std::string path = address.substr(std::strlen(kUnixPrefix));
    const sockaddr_un addr = make_unix_addr(path);
    const int fd = cloexec_socket(AF_UNIX);
    if (fd < 0) throw_errno("socket(AF_UNIX)");
    ::unlink(path.c_str());  // a stale socket file from a dead process
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
        0) {
      ::close(fd);
      throw_errno("bind(" + address + ")");
    }
    if (::listen(fd, 16) != 0) {
      ::close(fd);
      throw_errno("listen(" + address + ")");
    }
    set_nonblocking(fd);
    return SocketListener(fd, address, path);
  }
  QKMPS_CHECK_MSG(has_prefix(address, kTcpPrefix),
                  "address must start with unix: or tcp:, got: " << address);
  sockaddr_in addr = make_tcp_addr(address.substr(std::strlen(kTcpPrefix)));
  const int fd = cloexec_socket(AF_INET);
  if (fd < 0) throw_errno("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    throw_errno("bind(" + address + ")");
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    throw_errno("listen(" + address + ")");
  }
  // Report the real port for ephemeral binds.
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ::close(fd);
    throw_errno("getsockname");
  }
  char ip[INET_ADDRSTRLEN] = {0};
  ::inet_ntop(AF_INET, &bound.sin_addr, ip, sizeof ip);
  const std::string resolved = std::string(kTcpPrefix) + ip + ":" +
                               std::to_string(ntohs(bound.sin_port));
  set_nonblocking(fd);
  return SocketListener(fd, resolved, "");
}

std::unique_ptr<SocketTransport> SocketListener::accept_for(
    std::chrono::milliseconds timeout) {
  QKMPS_CHECK_MSG(fd_ >= 0, "accept on a closed listener");
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    const int cfd = cloexec_accept(fd_);
    if (cfd >= 0) {
      set_nonblocking(cfd);
      return std::make_unique<SocketTransport>(cfd);
    }
    if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)
      throw_errno("accept(" + address_ + ")");
    const auto remaining = deadline - std::chrono::steady_clock::now();
    if (remaining <= std::chrono::steady_clock::duration::zero())
      return nullptr;
    pollfd pfd{fd_, POLLIN, 0};
    const int ms = static_cast<int>(std::min<long long>(
        std::chrono::duration_cast<std::chrono::milliseconds>(remaining)
                .count() +
            1,
        1000));
    ::poll(&pfd, 1, ms);
  }
}

// ---------------------------------------------------------------------
// SocketTransport.

SocketTransport::SocketTransport(int fd, std::uint64_t max_payload)
    : fd_(fd), max_payload_(max_payload) {
  QKMPS_CHECK_MSG(fd_ >= 0, "SocketTransport needs a connected fd");
}

SocketTransport::~SocketTransport() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<SocketTransport> SocketTransport::connect(
    const std::string& address, std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::string last_error;
  do {
    int fd = -1;
    int rc = -1;
    if (has_prefix(address, kUnixPrefix)) {
      const sockaddr_un addr =
          make_unix_addr(address.substr(std::strlen(kUnixPrefix)));
      fd = cloexec_socket(AF_UNIX);
      if (fd < 0) throw_errno("socket(AF_UNIX)");
      rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof addr);
    } else {
      QKMPS_CHECK_MSG(has_prefix(address, kTcpPrefix),
                      "address must start with unix: or tcp:, got: "
                          << address);
      const sockaddr_in addr =
          make_tcp_addr(address.substr(std::strlen(kTcpPrefix)));
      fd = cloexec_socket(AF_INET);
      if (fd < 0) throw_errno("socket(AF_INET)");
      rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof addr);
    }
    if (rc == 0) {
      set_nonblocking(fd);
      return std::make_unique<SocketTransport>(fd);
    }
    last_error = std::strerror(errno);
    ::close(fd);
    // The listener may still be booting (spawned-process race); retry.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  } while (std::chrono::steady_clock::now() < deadline);
  throw Error("connect(" + address + ") timed out: " + last_error);
}

void SocketTransport::send_all(const std::uint8_t* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t rc = ::send(fd_, data + sent, n - sent, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Kernel buffer full: wait for drain, bounded so a wedged peer
      // surfaces as an error instead of a frozen router loop. An
      // interrupted poll is retried — a stray signal must not demote a
      // healthy peer to dead.
      pollfd pfd{fd_, POLLOUT, 0};
      const int ready = ::poll(&pfd, 1, 30'000);
      if (ready < 0 && errno == EINTR) continue;
      QKMPS_CHECK_MSG(ready > 0, "send stalled: peer not draining");
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    throw_errno("send: peer gone");
  }
}

void SocketTransport::send(const std::vector<std::uint8_t>& payload) {
  QKMPS_CHECK_MSG(fd_ >= 0, "send on a closed transport");
  // Header on the stack, payload straight from the caller's buffer — the
  // per-message hot path makes no intermediate copies of either.
  FrameHeader header;
  header.length = payload.size();
  header.checksum = frame_checksum(payload.data(), payload.size());
  std::uint8_t raw[kFrameHeaderBytes];
  encode_frame_header(header, raw);
  send_all(raw, kFrameHeaderBytes);
  if (!payload.empty()) send_all(payload.data(), payload.size());
  counters_.frames_sent += 1;
  counters_.bytes_sent += kFrameHeaderBytes + payload.size();
  static obs::Counter& frames =
      obs::Registry::global().counter("parallel.socket.frames_sent");
  static obs::Counter& bytes =
      obs::Registry::global().counter("parallel.socket.bytes_sent");
  frames.add();
  bytes.add(kFrameHeaderBytes + payload.size());
}

void SocketTransport::fill_from_socket(bool wait,
                                       std::chrono::microseconds timeout) {
  // Compact the consumed prefix before appending: one amortized memmove
  // per refill instead of one per popped frame, and the buffer cannot
  // grow without bound across refills.
  if (rx_offset_ > 0) {
    rx_.erase(rx_.begin(), rx_.begin() + static_cast<long>(rx_offset_));
    rx_offset_ = 0;
  }
  if (wait) {
    pollfd pfd{fd_, POLLIN, 0};
    const auto ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(timeout)
            .count();
    ::poll(&pfd, 1, static_cast<int>(std::clamp<long long>(ms, 0, 60'000)));
  }
  std::uint8_t buf[65536];
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n > 0) {
      rx_.insert(rx_.end(), buf, buf + n);
      continue;
    }
    if (n == 0) {
      // Remember the close but let already-buffered complete frames be
      // delivered first; the throw happens when the buffer runs dry.
      peer_closed_ = true;
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    throw_errno("recv");
  }
}

std::optional<std::vector<std::uint8_t>> SocketTransport::pop_frame() {
  const std::size_t available = rx_.size() - rx_offset_;
  if (available < kFrameHeaderBytes) return std::nullopt;
  const std::uint8_t* head = rx_.data() + rx_offset_;
  const FrameHeader header = decode_frame_header(head);
  validate_frame_header(header, max_payload_);  // throws on hostile bytes
  const std::size_t total =
      kFrameHeaderBytes + static_cast<std::size_t>(header.length);
  if (available < total) return std::nullopt;
  std::vector<std::uint8_t> payload(head + kFrameHeaderBytes, head + total);
  verify_frame_checksum(header, payload.data());
  rx_offset_ += total;
  if (rx_offset_ == rx_.size()) {
    rx_.clear();
    rx_offset_ = 0;
  }
  counters_.frames_received += 1;
  counters_.bytes_received += total;
  static obs::Counter& frames =
      obs::Registry::global().counter("parallel.socket.frames_received");
  static obs::Counter& bytes =
      obs::Registry::global().counter("parallel.socket.bytes_received");
  frames.add();
  bytes.add(total);
  return payload;
}

std::optional<std::vector<std::uint8_t>> SocketTransport::try_recv() {
  QKMPS_CHECK_MSG(fd_ >= 0, "recv on a closed transport");
  if (auto frame = pop_frame()) return frame;
  if (!peer_closed_) fill_from_socket(/*wait=*/false, std::chrono::microseconds(0));
  if (auto frame = pop_frame()) return frame;
  if (peer_closed_)
    throw Error(rx_.size() == rx_offset_ ? "peer closed the connection"
                                         : "peer closed mid-frame");
  return std::nullopt;
}

std::optional<std::vector<std::uint8_t>> SocketTransport::recv_for(
    std::chrono::microseconds timeout) {
  // Zero/negative degrade to try_recv semantics — the Comm::recv_for
  // contract pinned in tests/test_rank_runtime.cpp.
  if (timeout <= std::chrono::microseconds::zero()) return try_recv();
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    if (auto frame = try_recv()) return frame;
    const auto remaining = std::chrono::duration_cast<std::chrono::microseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining <= std::chrono::microseconds::zero()) return std::nullopt;
    fill_from_socket(/*wait=*/true, remaining);
  }
}

}  // namespace qkmps::parallel
