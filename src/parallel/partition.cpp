#include "parallel/partition.hpp"

#include <cmath>

#include "util/error.hpp"

namespace qkmps::parallel {

std::vector<Range> split_evenly(idx n, idx parts) {
  QKMPS_CHECK(n >= 0 && parts >= 1);
  std::vector<Range> out;
  out.reserve(static_cast<std::size_t>(parts));
  const idx base = n / parts;
  const idx extra = n % parts;
  idx cursor = 0;
  for (idx p = 0; p < parts; ++p) {
    const idx len = base + (p < extra ? 1 : 0);
    out.push_back({cursor, cursor + len});
    cursor += len;
  }
  return out;
}

std::vector<idx> split_sizes(idx n, idx parts) {
  const std::vector<Range> ranges = split_evenly(n, parts);
  std::vector<idx> sizes;
  sizes.reserve(ranges.size());
  for (const Range& r : ranges) sizes.push_back(r.size());
  return sizes;
}

std::vector<Tile> make_tiles(idx n_rows, idx n_cols, idx grid_rows,
                             idx grid_cols) {
  const auto row_ranges = split_evenly(n_rows, grid_rows);
  const auto col_ranges = split_evenly(n_cols, grid_cols);
  std::vector<Tile> tiles;
  tiles.reserve(static_cast<std::size_t>(grid_rows * grid_cols));
  for (idx r = 0; r < grid_rows; ++r)
    for (idx c = 0; c < grid_cols; ++c)
      tiles.push_back({row_ranges[static_cast<std::size_t>(r)],
                       col_ranges[static_cast<std::size_t>(c)], r, c});
  return tiles;
}

std::pair<idx, idx> square_tile_grid(idx parts) {
  QKMPS_CHECK(parts >= 1);
  idx rows = static_cast<idx>(std::floor(std::sqrt(static_cast<double>(parts))));
  while (rows > 1 && parts % rows != 0) --rows;
  return {rows, parts / rows};
}

}  // namespace qkmps::parallel
