#include "parallel/thread_pool.hpp"

#include <atomic>

#include "util/error.hpp"

namespace qkmps::parallel {

ThreadPool::ThreadPool(std::size_t num_threads) {
  QKMPS_CHECK(num_threads >= 1);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    util::MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      util::UniqueLock lock(mu_);
      while (!stop_ && tasks_.empty()) cv_.wait(lock);
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> wrapped(std::move(task));
  std::future<void> fut = wrapped.get_future();
  {
    util::MutexLock lock(mu_);
    QKMPS_CHECK_MSG(!stop_, "submit on a stopped pool");
    tasks_.push(std::move(wrapped));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::atomic<std::size_t> next{0};
  std::vector<std::future<void>> futs;
  const std::size_t lanes = std::min(n, workers_.size());
  futs.reserve(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    futs.push_back(submit([&next, n, &fn] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= n) return;
        try {
          fn(i);
        } catch (...) {
          next.store(n);  // stop handing out further indices
          throw;
        }
      }
    }));
  }
  // Join every lane before unwinding — the lane lambdas capture `next`
  // and `fn` by reference, so leaving this frame while any lane still
  // runs would dangle them. The first exception is rethrown after all
  // lanes have finished.
  std::exception_ptr first_error;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace qkmps::parallel
