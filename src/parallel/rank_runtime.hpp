#pragma once

#include <any>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "util/error.hpp"

namespace qkmps::parallel {

/// Thread-backed message-passing runtime standing in for MPI (see the
/// substitution table in DESIGN.md). Each "rank" runs a user callback on
/// its own thread; ranks exchange typed messages over blocking per-pair
/// channels with Send/Recv/Barrier semantics. The distributed Gram
/// strategies of Fig. 4 are written against this interface exactly as the
/// paper writes them against mpi4py.
class RankRuntime;

/// Per-rank communicator handle passed to the rank body.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Blocking typed send/recv. The payload is moved through a shared
  /// queue; cross-thread transport cost is what the communication phase of
  /// Fig. 8 measures (cheap here, like the paper's intra-node MPI).
  template <typename T>
  void send(int dest, T payload);

  template <typename T>
  T recv(int src);

  /// Synchronizes all ranks.
  void barrier();

 private:
  friend class RankRuntime;
  Comm(RankRuntime* rt, int rank) : rt_(rt), rank_(rank) {}
  RankRuntime* rt_;
  int rank_;
};

class RankRuntime {
 public:
  explicit RankRuntime(int num_ranks);

  int size() const { return num_ranks_; }

  /// Runs `body(comm)` on every rank concurrently and joins. Exceptions
  /// thrown by any rank are rethrown (first one wins).
  void run(const std::function<void(Comm&)>& body);

 private:
  friend class Comm;

  struct Channel {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::any> queue;
  };

  Channel& channel(int src, int dst) {
    return *channels_[static_cast<std::size_t>(src * num_ranks_ + dst)];
  }

  void push(int src, int dst, std::any payload);
  std::any pop(int src, int dst);
  void barrier_wait();

  int num_ranks_;
  std::vector<std::unique_ptr<Channel>> channels_;

  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  long long barrier_generation_ = 0;
};

template <typename T>
void Comm::send(int dest, T payload) {
  QKMPS_CHECK(dest >= 0 && dest < size() && dest != rank_);
  rt_->push(rank_, dest, std::any(std::move(payload)));
}

template <typename T>
T Comm::recv(int src) {
  QKMPS_CHECK(src >= 0 && src < size() && src != rank_);
  std::any payload = rt_->pop(src, rank_);
  QKMPS_CHECK_MSG(payload.type() == typeid(T), "message type mismatch on recv");
  return std::any_cast<T>(std::move(payload));
}

}  // namespace qkmps::parallel
