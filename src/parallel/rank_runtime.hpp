#pragma once

#include <any>
#include <chrono>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "util/error.hpp"
#include "util/sync.hpp"

namespace qkmps::parallel {

/// Thread-backed message-passing runtime standing in for MPI (see the
/// substitution table in DESIGN.md). Each "rank" runs a user callback on
/// its own thread; ranks exchange typed messages over per-pair channels
/// with Send/Recv/Barrier semantics plus non-blocking (try_recv) and
/// timed (recv_for) probes for event-loop-style ranks. The distributed
/// Gram strategies of Fig. 4 are written against this interface exactly
/// as the paper writes them against mpi4py; the rank-sharded serving
/// frontend (serve::RankShardedEngine) uses the same interface as its
/// shard transport.
class RankRuntime;

/// Per-rank communicator handle passed to the rank body.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Blocking typed send/recv. The payload is moved through a shared
  /// queue; cross-thread transport cost is what the communication phase of
  /// Fig. 8 measures (cheap here, like the paper's intra-node MPI).
  template <typename T>
  void send(int dest, T payload);

  template <typename T>
  T recv(int src);

  /// Non-blocking receive: pops the head of the src->this channel if a
  /// message is already queued, else returns nullopt without waiting —
  /// the MPI_Iprobe+MPI_Recv idiom (see DESIGN.md). The serving router
  /// loop uses this to multiplex over every shard's reply channel without
  /// dedicating a thread per peer.
  template <typename T>
  std::optional<T> try_recv(int src);

  /// Timed receive: blocks until a message arrives on src->this or
  /// `timeout` elapses, whichever is first; nullopt on timeout. Unlike a
  /// plain recv, a rank blocked here is always reclaimable — a peer that
  /// died or a shutdown that races the send leaves the caller with a
  /// nullopt after `timeout`, not a permanent hang (pinned by the
  /// shutdown-while-blocked coverage in tests/test_rank_runtime.cpp).
  /// A zero or negative timeout degrades to try_recv semantics: pop an
  /// already-queued message or return nullopt without waiting — never
  /// wait forever, never throw (also pinned there; every Transport
  /// implementation honours the same contract, see parallel/transport.hpp).
  template <typename T>
  std::optional<T> recv_for(int src, std::chrono::microseconds timeout);

  /// Synchronizes all ranks.
  void barrier();

 private:
  friend class RankRuntime;
  Comm(RankRuntime* rt, int rank) : rt_(rt), rank_(rank) {}
  RankRuntime* rt_;
  int rank_;
};

class RankRuntime {
 public:
  explicit RankRuntime(int num_ranks);

  int size() const { return num_ranks_; }

  /// Runs `body(comm)` on every rank concurrently and joins. Exceptions
  /// thrown by any rank are rethrown (first one wins).
  void run(const std::function<void(Comm&)>& body);

 private:
  friend class Comm;

  struct Channel {
    util::Mutex mu;
    util::CondVar cv;
    std::deque<std::any> queue QKMPS_GUARDED_BY(mu);
  };

  Channel& channel(int src, int dst) {
    return *channels_[static_cast<std::size_t>(src * num_ranks_ + dst)];
  }

  void push(int src, int dst, std::any payload);
  std::any pop(int src, int dst);
  std::optional<std::any> try_pop(int src, int dst);
  std::optional<std::any> pop_for(int src, int dst,
                                  std::chrono::microseconds timeout);
  void barrier_wait();

  int num_ranks_;
  std::vector<std::unique_ptr<Channel>> channels_;

  util::Mutex barrier_mu_;
  util::CondVar barrier_cv_;
  int barrier_count_ QKMPS_GUARDED_BY(barrier_mu_) = 0;
  long long barrier_generation_ QKMPS_GUARDED_BY(barrier_mu_) = 0;
};

template <typename T>
void Comm::send(int dest, T payload) {
  QKMPS_CHECK(dest >= 0 && dest < size() && dest != rank_);
  rt_->push(rank_, dest, std::any(std::move(payload)));
}

template <typename T>
T Comm::recv(int src) {
  QKMPS_CHECK(src >= 0 && src < size() && src != rank_);
  std::any payload = rt_->pop(src, rank_);
  QKMPS_CHECK_MSG(payload.type() == typeid(T), "message type mismatch on recv");
  return std::any_cast<T>(std::move(payload));
}

template <typename T>
std::optional<T> Comm::try_recv(int src) {
  QKMPS_CHECK(src >= 0 && src < size() && src != rank_);
  std::optional<std::any> payload = rt_->try_pop(src, rank_);
  if (!payload) return std::nullopt;
  QKMPS_CHECK_MSG(payload->type() == typeid(T),
                  "message type mismatch on try_recv");
  return std::any_cast<T>(std::move(*payload));
}

template <typename T>
std::optional<T> Comm::recv_for(int src, std::chrono::microseconds timeout) {
  QKMPS_CHECK(src >= 0 && src < size() && src != rank_);
  std::optional<std::any> payload = rt_->pop_for(src, rank_, timeout);
  if (!payload) return std::nullopt;
  QKMPS_CHECK_MSG(payload->type() == typeid(T),
                  "message type mismatch on recv_for");
  return std::any_cast<T>(std::move(*payload));
}

}  // namespace qkmps::parallel
