#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "parallel/transport.hpp"

namespace qkmps::parallel {

/// Socket transport: the Transport interface over a connected stream
/// socket (TCP loopback or Unix-domain), with each message carried as one
/// length-prefixed, version-tagged, checksummed frame. This is the layer
/// that turns serve::RankShardedEngine's shard ranks into shard processes
/// (DESIGN.md §1, "From ranks to processes"); correctness of the framing
/// is load-bearing, so every malformed input — truncated header,
/// truncated payload, wrong magic, future version, oversized or hostile
/// length, corrupted bytes — must surface as qkmps::Error, never as a
/// crash, a hang, or a silently wrong message
/// (tests/test_socket_transport.cpp tortures exactly that).
///
/// Frame layout (20-byte header, fields written with io::write_pod — so
/// native little-endian, inheriting binary_io.hpp's endianness caveat):
///
///   offset  size  field
///        0     4  magic     0x52464B51 ("QKFR" as LE bytes)
///        4     2  version   kFrameVersion; a reader rejects newer
///        6     2  reserved  must be 0 in v1; readers reject nonzero, so
///                           assigning these bits requires a version bump
///        8     8  length    payload bytes that follow the header
///       16     4  checksum  FNV-1a-32 of the payload bytes
///
/// The length field is validated against a hard payload bound *before*
/// any allocation, so a hostile prefix cannot over-allocate; the
/// checksum turns corrupted-in-flight payloads into loud errors instead
/// of plausible-but-wrong ShardReply bits.

inline constexpr std::uint32_t kFrameMagic = 0x52464B51u;  // "QKFR"
inline constexpr std::uint16_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 20;
/// Default hard bound on one frame's payload. Generous against real
/// envelopes (a request is ~tens of doubles) while keeping the worst
/// hostile allocation far below memory-exhaustion territory.
inline constexpr std::uint64_t kMaxFramePayload = 1ull << 26;  // 64 MiB

/// FNV-1a over `n` bytes, folded to 32 bits — cheap, dependency-free,
/// and plenty to catch truncation/corruption (this is an integrity
/// check, not an authenticity one).
std::uint32_t frame_checksum(const std::uint8_t* data, std::size_t n);

struct FrameHeader {
  std::uint32_t magic = kFrameMagic;
  std::uint16_t version = kFrameVersion;
  std::uint16_t reserved = 0;
  std::uint64_t length = 0;
  std::uint32_t checksum = 0;
};

/// Decodes 20 header bytes (no validation — see validate_frame_header).
FrameHeader decode_frame_header(const std::uint8_t* bytes);

/// Encodes a header into its 20 wire bytes (exact inverse of
/// decode_frame_header — the one definition of the layout both the
/// stream codec and the socket send path share).
void encode_frame_header(const FrameHeader& header,
                         std::uint8_t out[kFrameHeaderBytes]);

/// Throws qkmps::Error on wrong magic, a version newer than this build
/// speaks, a nonzero reserved field, or a length over `max_payload`.
void validate_frame_header(const FrameHeader& header,
                           std::uint64_t max_payload);

/// Throws qkmps::Error when the payload's checksum disagrees with the
/// header's — shared by the stream reader and the socket receive path so
/// the torture suite's guarantees hold for both.
void verify_frame_checksum(const FrameHeader& header,
                           const std::uint8_t* payload);

/// Writes one frame (header + payload) to `os`; a short write throws at
/// the write site via the hardened io::write_pod path.
void write_frame(std::ostream& os, const std::uint8_t* payload,
                 std::size_t n);
void write_frame(std::ostream& os, const std::vector<std::uint8_t>& payload);

/// Reads one frame from `os`'s counterpart stream. Returns the payload,
/// or nullopt on a clean end-of-stream at a frame boundary (zero bytes
/// available). Anything else malformed — a partial header, a bad header,
/// a payload cut short, a checksum mismatch — throws qkmps::Error.
std::optional<std::vector<std::uint8_t>> read_frame(
    std::istream& is, std::uint64_t max_payload = kMaxFramePayload);

/// A bound-and-listening server socket. Addresses:
///   "unix:<path>"       Unix-domain socket at <path> (unlinked on close)
///   "tcp:<ip>:<port>"   TCP on a loopback/interface ip; port 0 binds an
///                       ephemeral port (address() reports the real one)
class SocketListener {
 public:
  static SocketListener listen(const std::string& address);
  ~SocketListener();
  SocketListener(SocketListener&& other) noexcept;
  SocketListener& operator=(SocketListener&&) = delete;
  SocketListener(const SocketListener&) = delete;
  SocketListener& operator=(const SocketListener&) = delete;

  /// The resolved address peers should connect() to (ephemeral TCP ports
  /// substituted in) — hand this to spawned worker processes.
  const std::string& address() const { return address_; }

  /// Accepts one connection, waiting at most `timeout`; nullptr on
  /// timeout, qkmps::Error on listener failure.
  std::unique_ptr<class SocketTransport> accept_for(
      std::chrono::milliseconds timeout);

 private:
  SocketListener(int fd, std::string address, std::string unlink_path);
  int fd_ = -1;
  std::string address_;
  std::string unlink_path_;  ///< unix socket file to remove on close
};

/// Per-link frame/byte accounting, monotonic since the link was opened.
/// Byte totals include the 20-byte header of every frame — they measure
/// what actually crossed the socket, not just payload. Every link also
/// folds into the process-wide obs::Registry counters
/// (parallel.socket.frames/bytes_sent/received).
struct FrameCounters {
  std::uint64_t frames_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_received = 0;
};

/// Transport over one connected stream socket. Thread safety: none —
/// one side of a link belongs to one loop (the router thread or the
/// worker main), matching how Comm channels are used.
class SocketTransport final : public Transport {
 public:
  /// Connects to a SocketListener address, retrying until `timeout`
  /// (covers the race of connecting before the listener's backlog is
  /// ready, and of a spawned router/worker that is still booting).
  static std::unique_ptr<SocketTransport> connect(
      const std::string& address, std::chrono::milliseconds timeout);

  /// Adopts an already-connected fd (accept side).
  explicit SocketTransport(int fd,
                           std::uint64_t max_payload = kMaxFramePayload);
  ~SocketTransport() override;
  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  /// Frames and writes the whole message; throws qkmps::Error if the
  /// peer is gone (EPIPE/reset) or the fd dies mid-write.
  void send(const std::vector<std::uint8_t>& payload) override;

  /// Non-blocking: drains whatever bytes the kernel has, returns one
  /// complete decoded frame payload if available. Throws qkmps::Error on
  /// a malformed frame or a peer that closed (cleanly or mid-frame) —
  /// on this duplex link an EOF is always a dead peer, and the caller
  /// (router loop / worker loop) owns the failure semantics.
  std::optional<std::vector<std::uint8_t>> try_recv() override;

  /// Timed receive; zero/negative timeout degrades to try_recv (the
  /// Comm::recv_for contract).
  std::optional<std::vector<std::uint8_t>> recv_for(
      std::chrono::microseconds timeout) override;

  /// Frames/bytes this link has moved (single-threaded like the rest of
  /// the transport: read it from the loop that owns the link).
  const FrameCounters& counters() const { return counters_; }

 private:
  void send_all(const std::uint8_t* data, std::size_t n);
  void fill_from_socket(bool wait, std::chrono::microseconds timeout);
  std::optional<std::vector<std::uint8_t>> pop_frame();

  int fd_ = -1;
  std::uint64_t max_payload_;
  /// Receive buffer; bytes before rx_offset_ are already-consumed frames
  /// (compacted once the buffer drains, so popping N buffered frames is
  /// linear instead of a front-erase memmove per frame).
  std::vector<std::uint8_t> rx_;
  std::size_t rx_offset_ = 0;
  /// Peer sent EOF. Complete frames still in rx_ are delivered first;
  /// once the buffer runs dry, recv calls throw qkmps::Error.
  bool peer_closed_ = false;
  FrameCounters counters_;
};

}  // namespace qkmps::parallel
