#pragma once

#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "util/sync.hpp"

namespace qkmps::parallel {

/// Fixed-size thread pool. Used by the sequential Gram-matrix builder to
/// parallelize embarrassingly-parallel loops (circuit simulations, inner
/// products) without the full rank-runtime machinery.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; returns a future for its completion.
  std::future<void> submit(std::function<void()> task);

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  util::Mutex mu_;
  util::CondVar cv_;
  std::queue<std::packaged_task<void()>> tasks_ QKMPS_GUARDED_BY(mu_);
  bool stop_ QKMPS_GUARDED_BY(mu_) = false;
};

}  // namespace qkmps::parallel
