#include "linalg/norms.hpp"

#include <algorithm>
#include <cmath>

namespace qkmps::linalg {

double frobenius_norm_sq(const Matrix& a) {
  double s = 0.0;
  const cplx* p = a.data();
  for (idx k = 0; k < a.size(); ++k) s += std::norm(p[k]);
  return s;
}

double frobenius_norm(const Matrix& a) { return std::sqrt(frobenius_norm_sq(a)); }

double max_abs(const Matrix& a) {
  double m = 0.0;
  const cplx* p = a.data();
  for (idx k = 0; k < a.size(); ++k) m = std::max(m, std::abs(p[k]));
  return m;
}

double orthonormality_defect(const Matrix& a) {
  // Computes max |(A^H A)_ij - delta_ij| directly; the n^2 m cost is fine
  // for the test/diagnostic contexts this is used in.
  const idx n = a.cols();
  double defect = 0.0;
  for (idx i = 0; i < n; ++i) {
    for (idx j = 0; j < n; ++j) {
      cplx dot = 0.0;
      for (idx r = 0; r < a.rows(); ++r) dot += std::conj(a(r, i)) * a(r, j);
      const cplx target = (i == j) ? cplx(1.0) : cplx(0.0);
      defect = std::max(defect, std::abs(dot - target));
    }
  }
  return defect;
}

}  // namespace qkmps::linalg
