#pragma once

#include <utility>

#include "linalg/matrix.hpp"

namespace qkmps::linalg {

/// Result of a thin orthogonal factorization.
struct QrResult {
  Matrix q;  ///< m x k with orthonormal columns (k = min(m, n))
  Matrix r;  ///< k x n upper triangular
};

struct LqResult {
  Matrix l;  ///< m x k lower triangular (k = min(m, n))
  Matrix q;  ///< k x n with orthonormal rows
};

/// Thin Householder QR: A = Q R. Used by the MPS canonicalization sweeps
/// (left-orthogonalization of site tensors).
QrResult qr_thin(const Matrix& a);

/// Thin LQ: A = L Q, computed as the adjoint of qr_thin(A^H). Used by the
/// right-orthogonalization sweeps.
LqResult lq_thin(const Matrix& a);

}  // namespace qkmps::linalg
