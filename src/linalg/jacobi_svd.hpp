#pragma once

#include "linalg/svd.hpp"

namespace qkmps::linalg {

/// One-sided Jacobi SVD for complex matrices. Unconditionally convergent
/// and accurate to high relative precision, but asymptotically slower than
/// the Golub-Kahan driver in svd.cpp; used as the fallback path and as the
/// independent oracle in the test suite.
SvdResult jacobi_svd(const Matrix& a);

}  // namespace qkmps::linalg
