#pragma once

#include <vector>

#include "linalg/bidiag.hpp"
#include "linalg/matrix.hpp"
#include "linalg/policy.hpp"

namespace qkmps::linalg {

/// Thin singular value decomposition A = U diag(s) V^H with k = min(m, n):
/// U is m x k with orthonormal columns, V^H is k x n with orthonormal rows,
/// s is sorted descending and non-negative.
struct SvdResult {
  Matrix u;
  std::vector<double> s;
  Matrix vh;
};

/// Thin SVD. The driver bidiagonalizes (real-bidiagonal Householder form)
/// and runs an implicit-shift Golub-Kahan QR iteration; if the iteration
/// fails to converge within its budget (pathological inputs), it falls back
/// to the unconditionally-convergent one-sided Jacobi SVD. This is the
/// decomposition applied after every two-qubit gate (Fig. 1b of the paper)
/// and is the single hottest kernel in the simulator.
SvdResult svd(const Matrix& a, ExecPolicy policy = ExecPolicy::Reference);

/// Reusable scratch for the SVD driver. A long-lived workspace (one per
/// batched-kernel worker lane, see linalg/batched.hpp) collapses the
/// ~2n+10 heap allocations of a cold svd() call to the handful that
/// escape into the returned factors.
struct SvdWorkspace {
  Bidiagonalization bd;
  BidiagWorkspace bidiag;
  Matrix wide;     ///< adjoint scratch for wide (m < n) inputs
  SvdResult tall;  ///< tall-factorization scratch for the wide branch
  std::vector<idx> perm;
};

/// Workspace-reusing variant; bitwise-identical results to svd() — the
/// batched layer's per-backend parity tests pin this down.
SvdResult svd(const Matrix& a, ExecPolicy policy, SvdWorkspace& ws);

/// Fully in-place variant: factors are written into `out`, reusing the heap
/// blocks it already owns. A caller that keeps `out` alive across calls
/// (the batched kernel driver hands each SvdTask a persistent SvdResult,
/// see linalg/batched.hpp) runs the entire decomposition allocation-free
/// once warm. Bitwise-identical results to svd().
void svd_into(const Matrix& a, ExecPolicy policy, SvdResult& out,
              SvdWorkspace& ws);

/// Truncation decision: given singular values sorted descending, returns the
/// number to KEEP so that the discarded squared weight satisfies
/// sum_{i >= keep} s_i^2 <= max_discarded_weight (Eq. 8 of the paper),
/// additionally capping at max_rank if max_rank > 0. Always keeps >= 1.
idx truncation_rank(const std::vector<double>& s, double max_discarded_weight,
                    idx max_rank = 0);

/// Cuts an SvdResult down to its first `rank` triplets.
void truncate_svd(SvdResult& f, idx rank);

}  // namespace qkmps::linalg
