#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/policy.hpp"

namespace qkmps::linalg {

/// Thin singular value decomposition A = U diag(s) V^H with k = min(m, n):
/// U is m x k with orthonormal columns, V^H is k x n with orthonormal rows,
/// s is sorted descending and non-negative.
struct SvdResult {
  Matrix u;
  std::vector<double> s;
  Matrix vh;
};

/// Thin SVD. The driver bidiagonalizes (real-bidiagonal Householder form)
/// and runs an implicit-shift Golub-Kahan QR iteration; if the iteration
/// fails to converge within its budget (pathological inputs), it falls back
/// to the unconditionally-convergent one-sided Jacobi SVD. This is the
/// decomposition applied after every two-qubit gate (Fig. 1b of the paper)
/// and is the single hottest kernel in the simulator.
SvdResult svd(const Matrix& a, ExecPolicy policy = ExecPolicy::Reference);

/// Truncation decision: given singular values sorted descending, returns the
/// number to KEEP so that the discarded squared weight satisfies
/// sum_{i >= keep} s_i^2 <= max_discarded_weight (Eq. 8 of the paper),
/// additionally capping at max_rank if max_rank > 0. Always keeps >= 1.
idx truncation_rank(const std::vector<double>& s, double max_discarded_weight,
                    idx max_rank = 0);

/// Cuts an SvdResult down to its first `rank` triplets.
void truncate_svd(SvdResult& f, idx rank);

}  // namespace qkmps::linalg
