#include "linalg/policy.hpp"

#include <atomic>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace qkmps::linalg {

namespace {

/// Per-thread kernel budget; 0 = unbudgeted. thread_local because the
/// budget is consulted by the thread *deciding* a team width (the caller of
/// kernel_team_width), never by the spawned team members.
thread_local int g_kernel_budget = 0;

std::atomic<int> g_probe_active{0};
std::atomic<int> g_probe_peak{0};

}  // namespace

std::string to_string(ExecPolicy policy) {
  switch (policy) {
    case ExecPolicy::Reference: return "reference";
    case ExecPolicy::Accelerated: return "accelerated";
  }
  return "unknown";
}

KernelThreadScope::KernelThreadScope(int max_threads) : prev_(g_kernel_budget) {
  g_kernel_budget = max_threads > 0 ? max_threads : 0;
}

KernelThreadScope::~KernelThreadScope() { g_kernel_budget = prev_; }

int KernelThreadScope::current() { return g_kernel_budget; }

int kernel_team_width() {
  int width = 1;
#ifdef _OPENMP
  width = omp_get_max_threads();
#endif
  const int budget = KernelThreadScope::current();
  if (budget > 0 && budget < width) width = budget;
  return width >= 1 ? width : 1;
}

void kernel_probe_reset() {
  g_probe_active.store(0, std::memory_order_relaxed);
  g_probe_peak.store(0, std::memory_order_relaxed);
}

int kernel_probe_peak() { return g_probe_peak.load(std::memory_order_relaxed); }

namespace detail {

KernelProbeGuard::KernelProbeGuard() {
  const int now = g_probe_active.fetch_add(1, std::memory_order_relaxed) + 1;
  int peak = g_probe_peak.load(std::memory_order_relaxed);
  while (now > peak &&
         !g_probe_peak.compare_exchange_weak(peak, now,
                                             std::memory_order_relaxed)) {
  }
}

KernelProbeGuard::~KernelProbeGuard() {
  g_probe_active.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace detail

}  // namespace qkmps::linalg
