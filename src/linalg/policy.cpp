#include "linalg/policy.hpp"

namespace qkmps::linalg {

std::string to_string(ExecPolicy policy) {
  switch (policy) {
    case ExecPolicy::Reference: return "reference";
    case ExecPolicy::Accelerated: return "accelerated";
  }
  return "unknown";
}

}  // namespace qkmps::linalg
