#pragma once

#include "linalg/matrix.hpp"

namespace qkmps::linalg {

/// Frobenius norm sqrt(sum |a_ij|^2).
double frobenius_norm(const Matrix& a);

/// Squared Frobenius norm.
double frobenius_norm_sq(const Matrix& a);

/// Max |a_ij| over the whole matrix.
double max_abs(const Matrix& a);

/// ||A^H A - I||_max; 0 for matrices with orthonormal columns.
double orthonormality_defect(const Matrix& a);

}  // namespace qkmps::linalg
