#pragma once

#include <vector>

#include "util/error.hpp"
#include "util/types.hpp"

namespace qkmps::linalg {

/// Dense row-major complex matrix. This is the workhorse value type of the
/// simulator: MPS site tensors are matricized into `Matrix` views for every
/// contraction and decomposition (see tensor/ and mps/).
class Matrix {
 public:
  Matrix() = default;
  Matrix(idx rows, idx cols) : rows_(rows), cols_(cols), a_(check_size(rows, cols)) {}
  Matrix(idx rows, idx cols, cplx fill)
      : rows_(rows), cols_(cols), a_(check_size(rows, cols), fill) {}

  static Matrix identity(idx n);
  /// Zero matrix helper for readability at call sites.
  static Matrix zeros(idx rows, idx cols) { return Matrix(rows, cols); }

  idx rows() const { return rows_; }
  idx cols() const { return cols_; }
  idx size() const { return rows_ * cols_; }
  bool empty() const { return a_.empty(); }

  cplx& operator()(idx i, idx j) { return a_[static_cast<std::size_t>(i * cols_ + j)]; }
  const cplx& operator()(idx i, idx j) const {
    return a_[static_cast<std::size_t>(i * cols_ + j)];
  }

  cplx* data() { return a_.data(); }
  const cplx* data() const { return a_.data(); }
  cplx* row(idx i) { return a_.data() + i * cols_; }
  const cplx* row(idx i) const { return a_.data() + i * cols_; }

  /// Conjugate transpose.
  Matrix adjoint() const;
  /// Plain transpose (no conjugation).
  Matrix transpose() const;
  /// Elementwise conjugate.
  Matrix conj() const;

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(cplx scale);

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, cplx s) { return a *= s; }
  friend Matrix operator*(cplx s, Matrix a) { return a *= s; }

 private:
  static std::size_t check_size(idx rows, idx cols) {
    QKMPS_CHECK(rows >= 0 && cols >= 0);
    return static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
  }

  idx rows_ = 0;
  idx cols_ = 0;
  std::vector<cplx> a_;
};

/// Max |A_ij - B_ij|; used pervasively in tests.
double max_abs_diff(const Matrix& a, const Matrix& b);

}  // namespace qkmps::linalg
