#pragma once

#include <vector>

#include "util/error.hpp"
#include "util/types.hpp"

namespace qkmps::linalg {

/// Dense row-major complex matrix. This is the workhorse value type of the
/// simulator: MPS site tensors are matricized into `Matrix` views for every
/// contraction and decomposition (see tensor/ and mps/).
class Matrix {
 public:
  Matrix() = default;
  Matrix(idx rows, idx cols) : rows_(rows), cols_(cols), a_(check_size(rows, cols)) {}
  Matrix(idx rows, idx cols, cplx fill)
      : rows_(rows), cols_(cols), a_(check_size(rows, cols), fill) {}

  static Matrix identity(idx n);
  /// Zero matrix helper for readability at call sites.
  static Matrix zeros(idx rows, idx cols) { return Matrix(rows, cols); }

  /// Reshape to rows x cols with every entry zeroed. Reuses the existing
  /// heap block whenever capacity allows — the primitive the batched kernel
  /// workspaces (linalg/batched.hpp) rely on to avoid per-matrix churn.
  void resize(idx rows, idx cols) {
    const std::size_t n = check_size(rows, cols);
    rows_ = rows;
    cols_ = cols;
    a_.assign(n, cplx(0.0));
  }

  /// Reshape to rows x cols WITHOUT zeroing: existing storage is kept and
  /// any grown tail is value-initialized by the vector, but entries carry
  /// whatever the previous use left behind. Only for buffers the caller
  /// fully overwrites before reading (staging/permute scratch, SVD factor
  /// outputs) — it removes the O(rows*cols) clear from the hot path.
  void resize_for_overwrite(idx rows, idx cols) {
    const std::size_t n = check_size(rows, cols);
    rows_ = rows;
    cols_ = cols;
    a_.resize(n);
  }

  /// Shrink the logical shape in place. The caller must have already
  /// compacted the first rows*cols storage slots into row-major order for
  /// the new shape; no elements are moved here and capacity is retained.
  void shrink_to(idx rows, idx cols) {
    const std::size_t n = check_size(rows, cols);
    QKMPS_CHECK(n <= a_.size());
    rows_ = rows;
    cols_ = cols;
    a_.resize(n);
  }

  idx rows() const { return rows_; }
  idx cols() const { return cols_; }
  idx size() const { return rows_ * cols_; }
  bool empty() const { return a_.empty(); }

  cplx& operator()(idx i, idx j) { return a_[static_cast<std::size_t>(i * cols_ + j)]; }
  const cplx& operator()(idx i, idx j) const {
    return a_[static_cast<std::size_t>(i * cols_ + j)];
  }

  cplx* data() { return a_.data(); }
  const cplx* data() const { return a_.data(); }
  cplx* row(idx i) { return a_.data() + i * cols_; }
  const cplx* row(idx i) const { return a_.data() + i * cols_; }

  /// Conjugate transpose.
  Matrix adjoint() const;
  /// Plain transpose (no conjugation).
  Matrix transpose() const;
  /// Elementwise conjugate.
  Matrix conj() const;

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(cplx scale);

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, cplx s) { return a *= s; }
  friend Matrix operator*(cplx s, Matrix a) { return a *= s; }

 private:
  static std::size_t check_size(idx rows, idx cols) {
    QKMPS_CHECK(rows >= 0 && cols >= 0);
    return static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
  }

  idx rows_ = 0;
  idx cols_ = 0;
  std::vector<cplx> a_;
};

/// Max |A_ij - B_ij|; used pervasively in tests.
double max_abs_diff(const Matrix& a, const Matrix& b);

}  // namespace qkmps::linalg
