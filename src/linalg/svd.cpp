#include "linalg/svd.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "linalg/bidiag.hpp"
#include "linalg/jacobi_svd.hpp"

namespace qkmps::linalg {

namespace {

constexpr double kEps = std::numeric_limits<double>::epsilon();

/// Real Givens pair (c, s) with c*a + s*b = r, -s*a + c*b = 0.
struct Givens {
  double c;
  double s;
  double r;
};

Givens make_givens(double a, double b) {
  if (b == 0.0) return {1.0, 0.0, a};
  if (a == 0.0) return {0.0, 1.0, b};
  const double r = std::hypot(a, b);
  return {a / r, b / r, r};
}

/// Columns p and q of M rotate as col_p' = c col_p + s col_q,
/// col_q' = -s col_p + c col_q. The same update accumulates both the left
/// rotations (into U) and the right rotations (into V); see the step below.
void rotate_cols(Matrix& m, idx p, idx q, double c, double s) {
  for (idx i = 0; i < m.rows(); ++i) {
    const cplx mp = m(i, p), mq = m(i, q);
    m(i, p) = c * mp + s * mq;
    m(i, q) = -s * mp + c * mq;
  }
}

/// Wilkinson shift from the trailing 2x2 of B^T B restricted to block [l,h].
double wilkinson_shift(const std::vector<double>& d, const std::vector<double>& e,
                       idx l, idx h) {
  const double dm1 = d[static_cast<std::size_t>(h - 1)];
  const double dm = d[static_cast<std::size_t>(h)];
  const double em1 = e[static_cast<std::size_t>(h - 1)];
  const double em2 = (h - 1 > l) ? e[static_cast<std::size_t>(h - 2)] : 0.0;
  const double t11 = dm1 * dm1 + em2 * em2;
  const double t12 = dm1 * em1;
  const double t22 = dm * dm + em1 * em1;
  if (t12 == 0.0) return t22;
  const double delta = 0.5 * (t11 - t22);
  const double denom = delta + std::copysign(std::hypot(delta, t12), delta);
  if (denom == 0.0) return t22;
  return t22 - (t12 * t12) / denom;
}

/// One implicit-shift Golub-Kahan SVD step on the bidiagonal block [l, h]
/// (inclusive), chasing the bulge down the band while accumulating the
/// right rotations into V and the left rotations into U.
void golub_kahan_step(std::vector<double>& d, std::vector<double>& e, idx l,
                      idx h, Matrix& u, Matrix& v) {
  const double mu = wilkinson_shift(d, e, l, h);
  double y = d[static_cast<std::size_t>(l)] * d[static_cast<std::size_t>(l)] - mu;
  double z = d[static_cast<std::size_t>(l)] * e[static_cast<std::size_t>(l)];
  double bulge = 0.0;

  for (idx k = l; k < h; ++k) {
    const auto ks = static_cast<std::size_t>(k);
    // Right rotation on columns (k, k+1): kills the bulge at (k-1, k+1)
    // (or implements the shift on the first step).
    const Givens g1 = make_givens(y, z);
    if (k > l) e[ks - 1] = g1.c * e[ks - 1] + g1.s * bulge;
    const double dk = g1.c * d[ks] + g1.s * e[ks];
    const double ek = -g1.s * d[ks] + g1.c * e[ks];
    const double sub = g1.s * d[ks + 1];  // bulge at (k+1, k)
    const double dk1 = g1.c * d[ks + 1];
    rotate_cols(v, k, k + 1, g1.c, g1.s);

    // Left rotation on rows (k, k+1): kills the subdiagonal bulge.
    const Givens g2 = make_givens(dk, sub);
    d[ks] = g2.r;
    e[ks] = g2.c * ek + g2.s * dk1;
    d[ks + 1] = -g2.s * ek + g2.c * dk1;
    rotate_cols(u, k, k + 1, g2.c, g2.s);

    if (k < h - 1) {
      bulge = g2.s * e[ks + 1];  // new bulge at (k, k+2)
      e[ks + 1] = g2.c * e[ks + 1];
      y = e[ks];
      z = bulge;
    }
  }
}

/// Runs the QR iteration to completion. Returns false if the iteration
/// budget is exhausted (caller falls back to Jacobi).
bool bidiagonal_qr(std::vector<double>& d, std::vector<double>& e, Matrix& u,
                   Matrix& v) {
  const idx n = static_cast<idx>(d.size());
  if (n <= 1) return true;
  const long long max_steps = 100LL * static_cast<long long>(n);
  long long steps = 0;

  idx h = n - 1;
  while (h > 0) {
    // Deflate negligible superdiagonal entries.
    bool deflated = false;
    for (idx i = h - 1; i >= 0; --i) {
      const auto is = static_cast<std::size_t>(i);
      if (std::abs(e[is]) <=
          kEps * (std::abs(d[is]) + std::abs(d[is + 1]))) {
        e[is] = 0.0;
        if (i == h - 1) {
          --h;
          deflated = true;
          break;
        }
      }
    }
    if (deflated) continue;
    if (h == 0) break;

    // Active block [l, h]: largest run of non-zero superdiagonals ending at h.
    idx l = h - 1;
    while (l > 0 && e[static_cast<std::size_t>(l - 1)] != 0.0) --l;

    golub_kahan_step(d, e, l, h, u, v);
    if (++steps > max_steps) return false;
  }
  return true;
}

/// Writes the sorted factors straight into `out`, reusing whatever heap
/// blocks `out` already owns (resize_for_overwrite). The value written to
/// every slot is the same one the old copy-then-adjoint code produced, so
/// results stay bitwise identical while a warm caller (the batched kernel
/// layer hands each SvdTask a persistent SvdResult) allocates nothing.
void finalize(SvdResult& out, std::vector<double>& d, Matrix& u, Matrix& v,
              std::vector<idx>& perm) {
  const idx n = static_cast<idx>(d.size());
  // Make singular values non-negative by flipping the matching U column.
  for (idx i = 0; i < n; ++i) {
    if (d[static_cast<std::size_t>(i)] < 0.0) {
      d[static_cast<std::size_t>(i)] = -d[static_cast<std::size_t>(i)];
      for (idx r = 0; r < u.rows(); ++r) u(r, i) = -u(r, i);
    }
  }
  // Sort descending, permuting U and V columns consistently.
  perm.resize(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), idx{0});
  std::sort(perm.begin(), perm.end(), [&](idx a, idx b) {
    return d[static_cast<std::size_t>(a)] > d[static_cast<std::size_t>(b)];
  });

  out.s.resize(static_cast<std::size_t>(n));
  out.u.resize_for_overwrite(u.rows(), n);
  out.vh.resize_for_overwrite(n, v.rows());
  for (idx j = 0; j < n; ++j) {
    const idx src = perm[static_cast<std::size_t>(j)];
    out.s[static_cast<std::size_t>(j)] = d[static_cast<std::size_t>(src)];
    for (idx r = 0; r < u.rows(); ++r) out.u(r, j) = u(r, src);
    // V^H row j is the conjugate of V column src — written transposed
    // directly instead of materializing V-sorted and adjointing it.
    for (idx r = 0; r < v.rows(); ++r) out.vh(j, r) = std::conj(v(r, src));
  }
}

void svd_tall_into(const Matrix& a, ExecPolicy policy, SvdResult& out,
                   SvdWorkspace& ws) {
  bidiagonalize_into(a, policy, ws.bd, ws.bidiag);

  // The QR iteration squares band entries (Wilkinson shift, bulge chase);
  // a band whose scale sits in the denormal range underflows those
  // products to zero and the iteration silently collapses every singular
  // value, while an overflow-range band squares to inf. The band is
  // scale-equivariant, so normalize it to O(1) first and scale the
  // converged singular values back. Inside the safe window rescale stays
  // exactly 1.0 and no arithmetic changes.
  double band_max = 0.0;
  for (double x : ws.bd.d) band_max = std::max(band_max, std::abs(x));
  for (double x : ws.bd.e) band_max = std::max(band_max, std::abs(x));
  double rescale = 1.0;
  if (band_max != 0.0 && (band_max < 1e-150 || band_max > 1e150)) {
    rescale = band_max;
    for (double& x : ws.bd.d) x /= rescale;
    for (double& x : ws.bd.e) x /= rescale;
  }

  if (!bidiagonal_qr(ws.bd.d, ws.bd.e, ws.bd.u, ws.bd.v)) {
    out = jacobi_svd(a);
    return;
  }
  if (rescale != 1.0)
    for (double& x : ws.bd.d) x *= rescale;
  finalize(out, ws.bd.d, ws.bd.u, ws.bd.v, ws.perm);
}

}  // namespace

SvdResult svd(const Matrix& a, ExecPolicy policy) {
  SvdWorkspace ws;
  return svd(a, policy, ws);
}

SvdResult svd(const Matrix& a, ExecPolicy policy, SvdWorkspace& ws) {
  SvdResult out;
  svd_into(a, policy, out, ws);
  return out;
}

void svd_into(const Matrix& a, ExecPolicy policy, SvdResult& out,
              SvdWorkspace& ws) {
  QKMPS_CHECK(a.rows() > 0 && a.cols() > 0);
  if (a.rows() >= a.cols()) {
    svd_tall_into(a, policy, out, ws);
    return;
  }
  // Wide matrix: decompose the adjoint and swap factors. The adjoint and
  // the tall decomposition land in workspace scratch so repeated wide
  // calls reuse the same blocks.
  ws.wide.resize_for_overwrite(a.cols(), a.rows());
  for (idx i = 0; i < a.rows(); ++i)
    for (idx j = 0; j < a.cols(); ++j) ws.wide(j, i) = std::conj(a(i, j));
  SvdResult& t = ws.tall;
  svd_tall_into(ws.wide, policy, t, ws);
  out.s.assign(t.s.begin(), t.s.end());
  const idx k = static_cast<idx>(t.s.size());
  out.u.resize_for_overwrite(k, k);
  for (idx i = 0; i < k; ++i)
    for (idx j = 0; j < k; ++j) out.u(i, j) = std::conj(t.vh(j, i));
  out.vh.resize_for_overwrite(k, t.u.rows());
  for (idx i = 0; i < k; ++i)
    for (idx j = 0; j < t.u.rows(); ++j) out.vh(i, j) = std::conj(t.u(j, i));
}

idx truncation_rank(const std::vector<double>& s, double max_discarded_weight,
                    idx max_rank) {
  const idx n = static_cast<idx>(s.size());
  if (n == 0) return 0;
  // Walk from the tail accumulating discarded weight sum(s_i^2) until the
  // budget would be exceeded (Eq. 8): keep everything before that point.
  double discarded = 0.0;
  idx keep = n;
  while (keep > 1) {
    const double w = s[static_cast<std::size_t>(keep - 1)];
    if (discarded + w * w > max_discarded_weight) break;
    discarded += w * w;
    --keep;
  }
  if (max_rank > 0 && keep > max_rank) keep = max_rank;
  return keep;
}

void truncate_svd(SvdResult& f, idx rank) {
  QKMPS_CHECK(rank >= 1 && rank <= static_cast<idx>(f.s.size()));
  const idx m = f.u.rows();
  const idx n0 = f.u.cols();
  const idx n = f.vh.cols();
  // U keeps its first `rank` columns: compact the kept entries forward in
  // the existing storage (reads stay ahead of writes row by row), then
  // shrink the logical shape — no reallocation, values untouched.
  cplx* u = f.u.data();
  for (idx i = 0; i < m; ++i)
    for (idx j = 0; j < rank; ++j)
      u[static_cast<std::size_t>(i * rank + j)] =
          u[static_cast<std::size_t>(i * n0 + j)];
  f.u.shrink_to(m, rank);
  // V^H keeps its first `rank` rows, which are already a contiguous prefix
  // of row-major storage: shrinking the shape is the whole truncation.
  f.vh.shrink_to(rank, n);
  f.s.resize(static_cast<std::size_t>(rank));
}

}  // namespace qkmps::linalg
