#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/policy.hpp"

namespace qkmps::linalg {

/// Householder bidiagonalization of an m x n complex matrix with m >= n:
/// A = U B V^H, where B is *real* upper bidiagonal (diagonal d, superdiagonal
/// e), U is m x n with orthonormal columns and V is n x n unitary. The real
/// bidiagonal form is achieved by the zlarfg-style real-beta reflectors in
/// householder.hpp; it is what allows the subsequent QR iteration (svd.cpp)
/// to run entirely in real arithmetic.
struct Bidiagonalization {
  std::vector<double> d;  ///< n diagonal entries
  std::vector<double> e;  ///< n-1 superdiagonal entries
  Matrix u;               ///< m x n
  Matrix v;               ///< n x n
};

/// The accelerated policy parallelizes the per-column/per-row reflector
/// applications (the O(mn^2) bulk of the factorization) across an OpenMP
/// team once the block is larger than kParallelSvdThreshold.
Bidiagonalization bidiagonalize(const Matrix& a,
                                ExecPolicy policy = ExecPolicy::Reference);

}  // namespace qkmps::linalg
