#pragma once

#include <vector>

#include "linalg/householder.hpp"
#include "linalg/matrix.hpp"
#include "linalg/policy.hpp"

namespace qkmps::linalg {

/// Householder bidiagonalization of an m x n complex matrix with m >= n:
/// A = U B V^H, where B is *real* upper bidiagonal (diagonal d, superdiagonal
/// e), U is m x n with orthonormal columns and V is n x n unitary. The real
/// bidiagonal form is achieved by the zlarfg-style real-beta reflectors in
/// householder.hpp; it is what allows the subsequent QR iteration (svd.cpp)
/// to run entirely in real arithmetic.
struct Bidiagonalization {
  std::vector<double> d;  ///< n diagonal entries
  std::vector<double> e;  ///< n-1 superdiagonal entries
  Matrix u;               ///< m x n
  Matrix v;               ///< n x n
};

/// Reusable scratch for bidiagonalize_into: the working copy of A, the
/// column/row gather buffer, and the reflector stacks all keep their heap
/// blocks across calls, so a sweep over same-shaped matrices (the batched
/// kernel layer's shape buckets) allocates only on the first one.
struct BidiagWorkspace {
  Matrix work;
  std::vector<cplx> buf;
  std::vector<Reflector> lefts;
  std::vector<Reflector> rights;
};

/// The accelerated policy parallelizes the per-column/per-row reflector
/// applications (the O(mn^2) bulk of the factorization) across an OpenMP
/// team once the block is larger than kParallelSvdThreshold.
Bidiagonalization bidiagonalize(const Matrix& a,
                                ExecPolicy policy = ExecPolicy::Reference);

/// Workspace-reusing variant; arithmetic is identical to bidiagonalize()
/// (same kernels on the same values), only the allocations differ.
void bidiagonalize_into(const Matrix& a, ExecPolicy policy,
                        Bidiagonalization& out, BidiagWorkspace& ws);

}  // namespace qkmps::linalg
