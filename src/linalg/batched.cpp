#include "linalg/batched.hpp"

#include <algorithm>
#include <array>
#include <numeric>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "util/error.hpp"

namespace qkmps::linalg {

namespace {

/// Worker count for one pass: the configured budget clamped by what the
/// OpenMP runtime (and any enclosing KernelThreadScope) would allow.
int pass_width(const KernelBatchConfig& config) {
  int width = config.thread_budget > 0 ? config.thread_budget : 1;
  const int team = kernel_team_width();
  if (team < width) width = team;
  return width >= 1 ? width : 1;
}

int lane_index() {
#ifdef _OPENMP
  return omp_get_thread_num();
#else
  return 0;
#endif
}

/// Stable-sorts task indices into shape buckets so same-shaped matrices
/// run back-to-back in a lane (workspace vectors then keep their sizes).
template <typename Task, typename Shape>
std::vector<std::size_t> bucket_order(const std::vector<Task>& tasks,
                                      const Shape& shape_of) {
  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t x, std::size_t y) {
                     return shape_of(tasks[x]) < shape_of(tasks[y]);
                   });
  return order;
}

}  // namespace

std::string to_string(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kSerial: return "serial";
    case KernelBackend::kOpenMPBatched: return "omp-batched";
  }
  return "unknown";
}

void KernelArena::ensure_lanes(int lanes) {
  if (lanes > static_cast<int>(lanes_.size()))
    lanes_.resize(static_cast<std::size_t>(lanes));
}

SvdWorkspace& KernelArena::lane(int i) {
  QKMPS_CHECK(i >= 0 && i < static_cast<int>(lanes_.size()));
  return lanes_[static_cast<std::size_t>(i)];
}

void batched_gemm(const std::vector<GemmTask>& tasks,
                  const KernelBatchConfig& config) {
  if (tasks.empty()) return;
  const auto order = bucket_order(tasks, [](const GemmTask& t) {
    return std::array<idx, 3>{t.a->rows(), t.a->cols(), t.b->cols()};
  });

  if (config.backend == KernelBackend::kSerial) {
    for (std::size_t i : order)
      gemm_into(*tasks[i].c, *tasks[i].a, *tasks[i].b, config.policy);
    return;
  }

  const int width = pass_width(config);
  if (width == 1) {
    // A singleton OpenMP team still pays region entry + dynamic-schedule
    // bookkeeping every pass; run the lane loop directly. Scope and probe
    // semantics (budget of 1, one active worker) are kept identical.
    KernelThreadScope scope(1);
    detail::KernelProbeGuard probe;
    for (std::size_t i : order)
      gemm_into(*tasks[i].c, *tasks[i].a, *tasks[i].b, config.policy);
    return;
  }
#pragma omp parallel num_threads(width)
  {
    // Pass workers own the parallelism; their per-matrix kernels must not
    // fork nested teams on top of it.
    KernelThreadScope scope(1);
    detail::KernelProbeGuard probe;
    const std::size_t n = order.size();
#pragma omp for schedule(dynamic)
    for (std::size_t t = 0; t < n; ++t) {
      const GemmTask& task = tasks[order[t]];
      gemm_into(*task.c, *task.a, *task.b, config.policy);
    }
  }
}

void batched_svd(const std::vector<SvdTask>& tasks,
                 const KernelBatchConfig& config, KernelArena* arena) {
  if (tasks.empty()) return;
  KernelArena local;
  KernelArena& lanes = arena != nullptr ? *arena : local;
  const auto order = bucket_order(tasks, [](const SvdTask& t) {
    return std::array<idx, 2>{t.a->rows(), t.a->cols()};
  });

  if (config.backend == KernelBackend::kSerial) {
    lanes.ensure_lanes(1);
    SvdWorkspace& ws = lanes.lane(0);
    for (std::size_t i : order)
      svd_into(*tasks[i].a, config.policy, *tasks[i].out, ws);
    return;
  }

  const int width = pass_width(config);
  lanes.ensure_lanes(width);
  if (width == 1) {
    // See batched_gemm: skip the singleton OpenMP region, same semantics.
    KernelThreadScope scope(1);
    detail::KernelProbeGuard probe;
    SvdWorkspace& ws = lanes.lane(0);
    for (std::size_t i : order)
      svd_into(*tasks[i].a, config.policy, *tasks[i].out, ws);
    return;
  }
#pragma omp parallel num_threads(width)
  {
    KernelThreadScope scope(1);
    detail::KernelProbeGuard probe;
    SvdWorkspace& ws = lanes.lane(lane_index());
    const std::size_t n = order.size();
#pragma omp for schedule(dynamic)
    for (std::size_t t = 0; t < n; ++t) {
      const SvdTask& task = tasks[order[t]];
      svd_into(*task.a, config.policy, *task.out, ws);
    }
  }
}

void batched_for(std::size_t n, const KernelBatchConfig& config,
                 const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (config.backend == KernelBackend::kSerial) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const int width = pass_width(config);
  if (width == 1) {
    // See batched_gemm: skip the singleton OpenMP region, same semantics.
    KernelThreadScope scope(1);
    detail::KernelProbeGuard probe;
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
#pragma omp parallel num_threads(width)
  {
    KernelThreadScope scope(1);
    detail::KernelProbeGuard probe;
#pragma omp for schedule(dynamic)
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
}

}  // namespace qkmps::linalg
