#include "linalg/bidiag.hpp"

#include <vector>

#include "linalg/householder.hpp"

namespace qkmps::linalg {

Bidiagonalization bidiagonalize(const Matrix& a, ExecPolicy policy) {
  Bidiagonalization out;
  BidiagWorkspace ws;
  bidiagonalize_into(a, policy, out, ws);
  return out;
}

void bidiagonalize_into(const Matrix& a, ExecPolicy policy,
                        Bidiagonalization& out, BidiagWorkspace& ws) {
  const idx m = a.rows(), n = a.cols();
  QKMPS_CHECK_MSG(m >= n && n >= 1, "bidiagonalize requires m >= n >= 1");
  const bool parallel =
      policy == ExecPolicy::Accelerated && n >= kParallelSvdThreshold;

  Matrix& work = ws.work;
  work = a;  // vector copy-assign reuses the existing block when it fits
  out.d.assign(static_cast<std::size_t>(n), 0.0);
  out.e.assign(static_cast<std::size_t>(n > 0 ? n - 1 : 0), 0.0);

  ws.lefts.resize(static_cast<std::size_t>(n));
  ws.rights.resize(static_cast<std::size_t>(n > 0 ? n - 1 : 0));

  std::vector<cplx>& buf = ws.buf;
  for (idx k = 0; k < n; ++k) {
    // Left reflector: map column k (rows k..m-1) to d[k] e_1 with d[k] real.
    buf.resize(static_cast<std::size_t>(m - k));
    for (idx r = k; r < m; ++r) buf[static_cast<std::size_t>(r - k)] = work(r, k);
    Reflector& hl = ws.lefts[static_cast<std::size_t>(k)];
    make_reflector_into(buf.data(), m - k, hl);
    apply_reflector_left(work, hl, k, k + 1, n, parallel);
    out.d[static_cast<std::size_t>(k)] = hl.beta;
    work(k, k) = hl.beta;
    for (idx r = k + 1; r < m; ++r) work(r, k) = 0.0;

    if (k < n - 1) {
      // Right reflector: map row k (cols k+1..n-1) to e[k] e_1^T with e[k]
      // real; also annihilates everything beyond the superdiagonal.
      buf.resize(static_cast<std::size_t>(n - k - 1));
      for (idx c = k + 1; c < n; ++c) buf[static_cast<std::size_t>(c - k - 1)] = work(k, c);
      Reflector& hr = ws.rights[static_cast<std::size_t>(k)];
      make_reflector_into(buf.data(), n - k - 1, hr);
      apply_reflector_right(work, hr, k + 1, m, k + 1, parallel);
      out.e[static_cast<std::size_t>(k)] = hr.beta;
      work(k, k + 1) = hr.beta;
      for (idx c = k + 2; c < n; ++c) work(k, c) = 0.0;
    }
  }

  // U = H_0^H H_1^H ... H_{n-1}^H [I_n; 0], accumulated in reverse so the
  // thin factor is built directly (cf. LAPACK zungbr backward accumulation).
  out.u.resize(m, n);
  for (idx i = 0; i < n; ++i) out.u(i, i) = 1.0;
  for (idx k = n - 1; k >= 0; --k)
    apply_reflector_adjoint_left(out.u, ws.lefts[static_cast<std::size_t>(k)], k);

  // V = W_0 W_1 ... W_{n-2}, where W_k acts on rows k+1..n-1.
  out.v.resize(n, n);
  for (idx i = 0; i < n; ++i) out.v(i, i) = 1.0;
  for (idx k = static_cast<idx>(ws.rights.size()) - 1; k >= 0; --k)
    apply_reflector_w_left(out.v, ws.rights[static_cast<std::size_t>(k)], k + 1);
}

}  // namespace qkmps::linalg
