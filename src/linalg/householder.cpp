#include "linalg/householder.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "linalg/policy.hpp"

namespace qkmps::linalg {

Reflector make_reflector(const cplx* x, idx n) {
  Reflector h;
  make_reflector_into(x, n, h);
  return h;
}

void make_reflector_into(const cplx* x, idx n, Reflector& h) {
  QKMPS_CHECK(n >= 1);
  h.v.assign(static_cast<std::size_t>(n), cplx(0.0));
  h.v[0] = 1.0;

  // Columns whose entries sit in the denormal range make std::norm underflow
  // to zero, which would turn beta into +-0 and tau into NaN below; columns
  // near the overflow range would square to inf. Rescale to O(1) first
  // (LAPACK zlarfg's safe-min loop); v and tau are scale-invariant and only
  // beta has to be scaled back.
  double amax = 0.0;
  bool finite = true;
  for (idx i = 0; i < n; ++i) {
    const double re = std::abs(x[i].real()), im = std::abs(x[i].imag());
    if (std::isnan(re) || std::isnan(im)) finite = false;
    amax = std::max({amax, re, im});
  }
  if (amax == 0.0 && finite) {
    // Exactly-zero column: nothing to annihilate, H = I. NaN-poisoned
    // columns (which also leave amax untouched) must NOT take this path —
    // they fall through so the NaN stays visible in beta/tau.
    h.tau = 0.0;
    h.beta = 0.0;
    return;
  }
  double rescale = 1.0;
  std::vector<cplx> scaled;
  if (amax < 1e-150 || amax > 1e150) {
    rescale = amax;
    scaled.assign(x, x + n);
    for (auto& v : scaled) v /= rescale;
    x = scaled.data();
  }

  const cplx alpha = x[0];
  double xnorm_sq = 0.0;
  for (idx i = 1; i < n; ++i) xnorm_sq += std::norm(x[i]);

  if (xnorm_sq == 0.0 && alpha.imag() == 0.0) {
    // Already of the required form; H = I.
    h.tau = 0.0;
    h.beta = alpha.real() * rescale;
    return;
  }

  const double anorm = std::sqrt(std::norm(alpha) + xnorm_sq);
  // beta gets the opposite sign of Re(alpha) to avoid cancellation.
  const double beta = (alpha.real() >= 0.0) ? -anorm : anorm;
  h.beta = beta * rescale;
  // Note: LAPACK's zlarfg returns tau such that (I - tau v v^H)^H x = beta e1;
  // we store the conjugate so that H = I - tau v v^H annihilates x directly.
  h.tau = cplx((beta - alpha.real()) / beta, alpha.imag() / beta);
  const cplx scale = 1.0 / (alpha - beta);
  for (idx i = 1; i < n; ++i) h.v[static_cast<std::size_t>(i)] = scale * x[i];
  return;
}

void apply_reflector_left(Matrix& a, const Reflector& h, idx row0, idx col0,
                          idx col1, bool parallel) {
  if (h.tau == cplx(0.0)) return;
  const idx len = static_cast<idx>(h.v.size());
  // Forking a team only pays off for sizeable blocks; small trailing blocks
  // of the factorization run serially regardless of the policy. The width
  // honors the calling thread's KernelThreadScope budget.
  const int width = parallel ? kernel_team_width() : 1;
  const bool fork = parallel && width > 1 && len * (col1 - col0) >= 32768;
#pragma omp parallel for schedule(static) num_threads(width) if (fork)
  for (idx j = col0; j < col1; ++j) {
    cplx w = 0.0;  // v^H a[:, j]
    for (idx r = 0; r < len; ++r) w += std::conj(h.v[static_cast<std::size_t>(r)]) * a(row0 + r, j);
    const cplx tw = h.tau * w;
    for (idx r = 0; r < len; ++r) a(row0 + r, j) -= tw * h.v[static_cast<std::size_t>(r)];
  }
}

void apply_reflector_right(Matrix& a, const Reflector& h, idx row0, idx row1,
                           idx col0, bool parallel) {
  if (h.tau == cplx(0.0)) return;
  const idx len = static_cast<idx>(h.v.size());
  const int width = parallel ? kernel_team_width() : 1;
  const bool fork = parallel && width > 1 && len * (row1 - row0) >= 32768;
  // A <- A - tau (A conj(v)) v^T restricted to the block.
#pragma omp parallel for schedule(static) num_threads(width) if (fork)
  for (idx r = row0; r < row1; ++r) {
    cplx w = 0.0;  // sum_j a(r, col0+j) conj(v[j])
    for (idx j = 0; j < len; ++j) w += a(r, col0 + j) * std::conj(h.v[static_cast<std::size_t>(j)]);
    const cplx tw = h.tau * w;
    for (idx j = 0; j < len; ++j) a(r, col0 + j) -= tw * h.v[static_cast<std::size_t>(j)];
  }
}

void apply_reflector_adjoint_left(Matrix& x, const Reflector& h, idx row0) {
  if (h.tau == cplx(0.0)) return;
  const idx len = static_cast<idx>(h.v.size());
  const cplx tau_conj = std::conj(h.tau);
  for (idx j = 0; j < x.cols(); ++j) {
    cplx w = 0.0;
    for (idx r = 0; r < len; ++r) w += std::conj(h.v[static_cast<std::size_t>(r)]) * x(row0 + r, j);
    const cplx tw = tau_conj * w;
    for (idx r = 0; r < len; ++r) x(row0 + r, j) -= tw * h.v[static_cast<std::size_t>(r)];
  }
}

void apply_reflector_w_left(Matrix& x, const Reflector& h, idx row0) {
  if (h.tau == cplx(0.0)) return;
  const idx len = static_cast<idx>(h.v.size());
  // W = I - tau conj(v) v^T, so W x = x - tau conj(v) (v^T x).
  for (idx j = 0; j < x.cols(); ++j) {
    cplx w = 0.0;
    for (idx r = 0; r < len; ++r) w += h.v[static_cast<std::size_t>(r)] * x(row0 + r, j);
    const cplx tw = h.tau * w;
    for (idx r = 0; r < len; ++r) x(row0 + r, j) -= tw * std::conj(h.v[static_cast<std::size_t>(r)]);
  }
}

}  // namespace qkmps::linalg
