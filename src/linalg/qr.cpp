#include "linalg/qr.hpp"

#include <vector>

#include "linalg/householder.hpp"

namespace qkmps::linalg {

QrResult qr_thin(const Matrix& a) {
  const idx m = a.rows(), n = a.cols();
  QKMPS_CHECK(m > 0 && n > 0);
  const idx k = std::min(m, n);

  Matrix work = a;
  std::vector<Reflector> hs;
  hs.reserve(static_cast<std::size_t>(k));

  for (idx j = 0; j < k; ++j) {
    // Column j, rows j..m-1 -> beta e1.
    std::vector<cplx> col(static_cast<std::size_t>(m - j));
    for (idx r = j; r < m; ++r) col[static_cast<std::size_t>(r - j)] = work(r, j);
    Reflector h = make_reflector(col.data(), m - j);
    apply_reflector_left(work, h, j, j + 1, n);
    work(j, j) = h.beta;
    for (idx r = j + 1; r < m; ++r) work(r, j) = 0.0;
    hs.push_back(std::move(h));
  }

  QrResult out;
  out.r = Matrix(k, n);
  for (idx i = 0; i < k; ++i)
    for (idx j = i; j < n; ++j) out.r(i, j) = work(i, j);

  // Q = H_0^H H_1^H ... H_{k-1}^H [I_k; 0], built by reverse application so
  // the thin factor never needs the full m x m product.
  out.q = Matrix(m, k);
  for (idx i = 0; i < k; ++i) out.q(i, i) = 1.0;
  for (idx j = k - 1; j >= 0; --j)
    apply_reflector_adjoint_left(out.q, hs[static_cast<std::size_t>(j)], j);
  return out;
}

LqResult lq_thin(const Matrix& a) {
  const QrResult qr = qr_thin(a.adjoint());
  LqResult out;
  out.l = qr.r.adjoint();
  out.q = qr.q.adjoint();
  return out;
}

}  // namespace qkmps::linalg
