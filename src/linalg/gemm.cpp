#include "linalg/gemm.hpp"

#include <algorithm>

namespace qkmps::linalg {

namespace {

constexpr idx kBlock = 48;

/// Core kernels accumulate into a zeroed, pre-sized C so both the
/// allocating entry points and gemm_into share one arithmetic path.
void gemm_reference_core(Matrix& c, const Matrix& a, const Matrix& b) {
  const idx m = a.rows(), k = a.cols(), n = b.cols();
  for (idx i = 0; i < m; ++i) {
    cplx* ci = c.row(i);
    const cplx* ai = a.row(i);
    for (idx p = 0; p < k; ++p) {
      const cplx aip = ai[p];
      const cplx* bp = b.row(p);
      for (idx j = 0; j < n; ++j) ci[j] += aip * bp[j];
    }
  }
}

void gemm_blocked_core(Matrix& c, const Matrix& a, const Matrix& b,
                       bool parallel) {
  const idx m = a.rows(), k = a.cols(), n = b.cols();
  const idx mblocks = (m + kBlock - 1) / kBlock;
  // Team width honors the caller's KernelThreadScope budget: a kernel
  // running inside a serving worker lane (budget 1) stays serial instead
  // of multiplying lane parallelism by an OpenMP team.
  const int width = parallel ? kernel_team_width() : 1;
  const bool fork = parallel && width > 1;

#pragma omp parallel num_threads(width) if (fork)
  {
    detail::KernelProbeGuard probe;
#pragma omp for schedule(static)
    for (idx bi = 0; bi < mblocks; ++bi) {
      const idx i0 = bi * kBlock;
      const idx i1 = std::min(i0 + kBlock, m);
      for (idx p0 = 0; p0 < k; p0 += kBlock) {
        const idx p1 = std::min(p0 + kBlock, k);
        for (idx j0 = 0; j0 < n; j0 += kBlock) {
          const idx j1 = std::min(j0 + kBlock, n);
          for (idx i = i0; i < i1; ++i) {
            cplx* ci = c.row(i);
            const cplx* ai = a.row(i);
            for (idx p = p0; p < p1; ++p) {
              const cplx aip = ai[p];
              const cplx* bp = b.row(p);
              for (idx j = j0; j < j1; ++j) ci[j] += aip * bp[j];
            }
          }
        }
      }
    }
  }
}

}  // namespace

Matrix gemm_reference(const Matrix& a, const Matrix& b) {
  QKMPS_CHECK(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  gemm_reference_core(c, a, b);
  return c;
}

Matrix gemm_blocked(const Matrix& a, const Matrix& b, bool parallel) {
  QKMPS_CHECK(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  gemm_blocked_core(c, a, b, parallel);
  return c;
}

void gemm_into(Matrix& c, const Matrix& a, const Matrix& b,
               ExecPolicy policy) {
  QKMPS_CHECK(a.cols() == b.rows());
  QKMPS_CHECK_MSG(c.data() != a.data() && c.data() != b.data(),
                  "gemm_into output must not alias an operand");
  c.resize(a.rows(), b.cols());
  if (policy == ExecPolicy::Reference) {
    gemm_reference_core(c, a, b);
    return;
  }
  const bool parallel = a.rows() * b.cols() >= kParallelGemmThreshold;
  gemm_blocked_core(c, a, b, parallel);
}

Matrix gemm(const Matrix& a, const Matrix& b, ExecPolicy policy, Op op_a,
            Op op_b) {
  // Op::None operands feed the kernels in place; only ConjT pays an
  // explicit transpose copy (strided kernels for every op combination are
  // not worth it at bond-dimension sizes).
  Matrix at, bt;
  const Matrix& am = op_a == Op::None ? a : (at = a.adjoint());
  const Matrix& bm = op_b == Op::None ? b : (bt = b.adjoint());
  if (policy == ExecPolicy::Reference) return gemm_reference(am, bm);
  const bool parallel = am.rows() * bm.cols() >= kParallelGemmThreshold;
  return gemm_blocked(am, bm, parallel);
}

Matrix gemv(const Matrix& a, const Matrix& x) {
  QKMPS_CHECK(x.cols() == 1 && a.cols() == x.rows());
  Matrix y(a.rows(), 1);
  for (idx i = 0; i < a.rows(); ++i) {
    cplx acc = 0.0;
    const cplx* ai = a.row(i);
    for (idx j = 0; j < a.cols(); ++j) acc += ai[j] * x(j, 0);
    y(i, 0) = acc;
  }
  return y;
}

}  // namespace qkmps::linalg
