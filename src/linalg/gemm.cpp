#include "linalg/gemm.hpp"

#include <algorithm>

namespace qkmps::linalg {

namespace {

/// Materialize op(A). The decompositions in this library keep matrices
/// small-to-medium (bond-dimension sized), so an explicit transpose copy is
/// cheaper and far simpler than strided kernels for every op combination.
Matrix materialize(const Matrix& a, Op op) {
  return op == Op::None ? a : a.adjoint();
}

constexpr idx kBlock = 48;

}  // namespace

Matrix gemm_reference(const Matrix& a, const Matrix& b) {
  QKMPS_CHECK(a.cols() == b.rows());
  const idx m = a.rows(), k = a.cols(), n = b.cols();
  Matrix c(m, n);
  for (idx i = 0; i < m; ++i) {
    cplx* ci = c.row(i);
    const cplx* ai = a.row(i);
    for (idx p = 0; p < k; ++p) {
      const cplx aip = ai[p];
      const cplx* bp = b.row(p);
      for (idx j = 0; j < n; ++j) ci[j] += aip * bp[j];
    }
  }
  return c;
}

Matrix gemm_blocked(const Matrix& a, const Matrix& b, bool parallel) {
  QKMPS_CHECK(a.cols() == b.rows());
  const idx m = a.rows(), k = a.cols(), n = b.cols();
  Matrix c(m, n);
  const idx mblocks = (m + kBlock - 1) / kBlock;

#pragma omp parallel for schedule(static) if (parallel)
  for (idx bi = 0; bi < mblocks; ++bi) {
    const idx i0 = bi * kBlock;
    const idx i1 = std::min(i0 + kBlock, m);
    for (idx p0 = 0; p0 < k; p0 += kBlock) {
      const idx p1 = std::min(p0 + kBlock, k);
      for (idx j0 = 0; j0 < n; j0 += kBlock) {
        const idx j1 = std::min(j0 + kBlock, n);
        for (idx i = i0; i < i1; ++i) {
          cplx* ci = c.row(i);
          const cplx* ai = a.row(i);
          for (idx p = p0; p < p1; ++p) {
            const cplx aip = ai[p];
            const cplx* bp = b.row(p);
            for (idx j = j0; j < j1; ++j) ci[j] += aip * bp[j];
          }
        }
      }
    }
  }
  return c;
}

Matrix gemm(const Matrix& a, const Matrix& b, ExecPolicy policy, Op op_a,
            Op op_b) {
  const Matrix am = materialize(a, op_a);
  const Matrix bm = materialize(b, op_b);
  if (policy == ExecPolicy::Reference) return gemm_reference(am, bm);
  const bool parallel = am.rows() * bm.cols() >= kParallelGemmThreshold;
  return gemm_blocked(am, bm, parallel);
}

Matrix gemv(const Matrix& a, const Matrix& x) {
  QKMPS_CHECK(x.cols() == 1 && a.cols() == x.rows());
  Matrix y(a.rows(), 1);
  for (idx i = 0; i < a.rows(); ++i) {
    cplx acc = 0.0;
    const cplx* ai = a.row(i);
    for (idx j = 0; j < a.cols(); ++j) acc += ai[j] * x(j, 0);
    y(i, 0) = acc;
  }
  return y;
}

}  // namespace qkmps::linalg
