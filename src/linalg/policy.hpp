#pragma once

#include <string>

namespace qkmps::linalg {

/// Execution policy for the dense kernels. This is our stand-in for the
/// paper's two backends (see DESIGN.md, substitutions table):
///
///  - `Reference`  — serial, low-overhead kernels; plays the role of the
///    ITensors CPU backend: fastest at small bond dimension because it pays
///    no dispatch cost.
///  - `Accelerated` — blocked, OpenMP-threaded kernels with a genuine
///    per-call dispatch overhead (thread-team fork/join); plays the role of
///    the cuTensorNet GPU backend: slower at small sizes, faster once the
///    bond dimension crosses a threshold. The crossover study of Fig. 5
///    sweeps exactly this trade-off.
enum class ExecPolicy {
  Reference,
  Accelerated,
};

/// Human-readable policy name for bench output ("cpu"/"gpu" in the paper's
/// artifact naming, reference/accelerated here).
std::string to_string(ExecPolicy policy);

/// Minimum matrix element count at which the accelerated GEMM spawns a
/// thread team; below this it still uses the blocked kernel but serially.
/// Exposed so benches can study the dispatch-overhead knob (ablation).
inline constexpr long long kParallelGemmThreshold = 4 * 1024;

/// Minimum column count at which the accelerated SVD/bidiagonalization
/// parallelizes its reflector applications.
inline constexpr long long kParallelSvdThreshold = 48;

/// RAII thread budget for the dense kernels on the current thread. The
/// serving engine runs kernels inside its own worker lanes; without a
/// budget, an accelerated gemm inside a lane forks a full OpenMP team and
/// the effective thread count multiplies (shard lanes x OMP threads). A
/// scope of 1 pins every kernel called from this thread to serial
/// execution; scopes nest and restore the previous budget on destruction.
class KernelThreadScope {
 public:
  /// max_threads <= 0 means "unlimited" (defer to the OpenMP runtime).
  explicit KernelThreadScope(int max_threads);
  ~KernelThreadScope();

  KernelThreadScope(const KernelThreadScope&) = delete;
  KernelThreadScope& operator=(const KernelThreadScope&) = delete;

  /// The budget active on the calling thread; 0 when unbudgeted.
  static int current();

 private:
  int prev_;
};

/// Team width a kernel on this thread may fork: the OpenMP max-threads
/// setting clamped by the active KernelThreadScope. Always >= 1.
int kernel_team_width();

/// Effective-concurrency probe: every thread executing inside a dense
/// kernel region (blocked gemm team member, batched-pass worker) counts
/// itself in, and the high-water mark is kept. Tests reset the peak, drive
/// a workload, and assert the observed concurrency never exceeded the
/// configured budget — the oversubscription regression gate.
void kernel_probe_reset();
int kernel_probe_peak();

namespace detail {
/// RAII enter/exit of the probe; cheap (two relaxed atomics each way).
struct KernelProbeGuard {
  KernelProbeGuard();
  ~KernelProbeGuard();
};
}  // namespace detail

}  // namespace qkmps::linalg
