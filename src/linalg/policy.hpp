#pragma once

#include <string>

namespace qkmps::linalg {

/// Execution policy for the dense kernels. This is our stand-in for the
/// paper's two backends (see DESIGN.md, substitutions table):
///
///  - `Reference`  — serial, low-overhead kernels; plays the role of the
///    ITensors CPU backend: fastest at small bond dimension because it pays
///    no dispatch cost.
///  - `Accelerated` — blocked, OpenMP-threaded kernels with a genuine
///    per-call dispatch overhead (thread-team fork/join); plays the role of
///    the cuTensorNet GPU backend: slower at small sizes, faster once the
///    bond dimension crosses a threshold. The crossover study of Fig. 5
///    sweeps exactly this trade-off.
enum class ExecPolicy {
  Reference,
  Accelerated,
};

/// Human-readable policy name for bench output ("cpu"/"gpu" in the paper's
/// artifact naming, reference/accelerated here).
std::string to_string(ExecPolicy policy);

/// Minimum matrix element count at which the accelerated GEMM spawns a
/// thread team; below this it still uses the blocked kernel but serially.
/// Exposed so benches can study the dispatch-overhead knob (ablation).
inline constexpr long long kParallelGemmThreshold = 4 * 1024;

/// Minimum column count at which the accelerated SVD/bidiagonalization
/// parallelizes its reflector applications.
inline constexpr long long kParallelSvdThreshold = 48;

}  // namespace qkmps::linalg
