#include "linalg/jacobi_svd.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace qkmps::linalg {

namespace {

constexpr double kTol = 1e-14;
constexpr int kMaxSweeps = 60;

SvdResult jacobi_svd_tall(const Matrix& a) {
  const idx m = a.rows(), n = a.cols();
  Matrix w = a;                     // becomes U * diag(s)
  Matrix v = Matrix::identity(n);  // accumulates right factor

  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    bool rotated = false;
    for (idx i = 0; i < n - 1; ++i) {
      for (idx j = i + 1; j < n; ++j) {
        // Gram entries of the (i, j) column pair.
        double aii = 0.0, ajj = 0.0;
        cplx aij = 0.0;
        for (idx r = 0; r < m; ++r) {
          aii += std::norm(w(r, i));
          ajj += std::norm(w(r, j));
          aij += std::conj(w(r, i)) * w(r, j);
        }
        const double g = std::abs(aij);
        if (g <= kTol * std::sqrt(aii * ajj) || g == 0.0) continue;
        rotated = true;

        // Unitary 2x2 J = [[c, s*u], [-s*conj(u), c]] with u = aij/|aij|
        // diagonalizing the Hermitian pair-Gram matrix.
        const cplx u = aij / g;
        const double zeta = (ajj - aii) / (2.0 * g);
        const double t = std::copysign(1.0, zeta) /
                         (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        const cplx su = s * u;
        const cplx su_conj = s * std::conj(u);

        for (idx r = 0; r < m; ++r) {
          const cplx wi = w(r, i), wj = w(r, j);
          w(r, i) = c * wi - su_conj * wj;
          w(r, j) = su * wi + c * wj;
        }
        for (idx r = 0; r < n; ++r) {
          const cplx vi = v(r, i), vj = v(r, j);
          v(r, i) = c * vi - su_conj * vj;
          v(r, j) = su * vi + c * vj;
        }
      }
    }
    if (!rotated) break;
  }

  // Extract s and normalize U columns; sort descending.
  std::vector<double> s(static_cast<std::size_t>(n));
  for (idx j = 0; j < n; ++j) {
    double norm_sq = 0.0;
    for (idx r = 0; r < m; ++r) norm_sq += std::norm(w(r, j));
    s[static_cast<std::size_t>(j)] = std::sqrt(norm_sq);
  }

  std::vector<idx> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), idx{0});
  std::sort(perm.begin(), perm.end(), [&](idx x, idx y) {
    return s[static_cast<std::size_t>(x)] > s[static_cast<std::size_t>(y)];
  });

  SvdResult out;
  out.s.resize(static_cast<std::size_t>(n));
  out.u = Matrix(m, n);
  Matrix vs(n, n);
  for (idx j = 0; j < n; ++j) {
    const idx src = perm[static_cast<std::size_t>(j)];
    const double sj = s[static_cast<std::size_t>(src)];
    out.s[static_cast<std::size_t>(j)] = sj;
    const double inv = sj > 0.0 ? 1.0 / sj : 0.0;
    for (idx r = 0; r < m; ++r) out.u(r, j) = w(r, src) * inv;
    for (idx r = 0; r < n; ++r) vs(r, j) = v(r, src);
  }
  out.vh = vs.adjoint();
  return out;
}

}  // namespace

SvdResult jacobi_svd(const Matrix& a) {
  QKMPS_CHECK(a.rows() > 0 && a.cols() > 0);
  if (a.rows() >= a.cols()) return jacobi_svd_tall(a);
  SvdResult t = jacobi_svd_tall(a.adjoint());
  SvdResult out;
  out.s = std::move(t.s);
  out.u = t.vh.adjoint();
  out.vh = t.u.adjoint();
  return out;
}

}  // namespace qkmps::linalg
