#include "linalg/jacobi_svd.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace qkmps::linalg {

namespace {

constexpr double kTol = 1e-14;
constexpr int kMaxSweeps = 60;

/// Completes U with orthonormal columns where the singular value is zero
/// (zero matrices, exactly rank-deficient inputs): the rotated working
/// matrix carries no direction for those columns, and leaving them zero
/// loses U^H U = I. Deterministic: each missing column takes the basis
/// vector with the largest residual against the columns already placed
/// (residual^2 = 1 - sum |u(k, c)|^2 while the placed set is orthonormal),
/// orthogonalized with one reorthogonalization pass.
void complete_orthonormal_columns(Matrix& u, const std::vector<double>& s) {
  const idx m = u.rows(), n = u.cols();
  for (idx j = 0; j < n; ++j) {
    if (s[static_cast<std::size_t>(j)] > 0.0) continue;
    idx best_k = 0;
    double best_res = -1.0;
    for (idx k = 0; k < m; ++k) {
      double proj = 0.0;
      for (idx c = 0; c < j; ++c) proj += std::norm(u(k, c));
      const double res = 1.0 - proj;
      if (res > best_res) {
        best_res = res;
        best_k = k;
      }
    }
    // Two Gram-Schmidt passes against columns 0..j-1, then normalize.
    std::vector<cplx> r(static_cast<std::size_t>(m), cplx(0.0));
    r[static_cast<std::size_t>(best_k)] = 1.0;
    for (int pass = 0; pass < 2; ++pass) {
      for (idx c = 0; c < j; ++c) {
        cplx coef = 0.0;
        for (idx i = 0; i < m; ++i)
          coef += std::conj(u(i, c)) * r[static_cast<std::size_t>(i)];
        for (idx i = 0; i < m; ++i)
          r[static_cast<std::size_t>(i)] -= coef * u(i, c);
      }
    }
    double norm_sq = 0.0;
    for (idx i = 0; i < m; ++i) norm_sq += std::norm(r[static_cast<std::size_t>(i)]);
    const double inv = norm_sq > 0.0 ? 1.0 / std::sqrt(norm_sq) : 0.0;
    for (idx i = 0; i < m; ++i) u(i, j) = r[static_cast<std::size_t>(i)] * inv;
  }
}

SvdResult jacobi_svd_tall(const Matrix& a) {
  const idx m = a.rows(), n = a.cols();
  Matrix w = a;                     // becomes U * diag(s)
  Matrix v = Matrix::identity(n);  // accumulates right factor

  // Entries in the denormal range make the Gram products and column norms
  // below underflow to zero (every rotation test and the extracted s then
  // read 0), and near-overflow entries square to inf. The SVD is
  // scale-equivariant, so normalize the working matrix to O(1) and scale
  // the singular values back at the end; inputs inside the safe window
  // keep rescale == 1.0 and identical arithmetic.
  double amax = 0.0;
  for (idx i = 0; i < m; ++i)
    for (idx j = 0; j < n; ++j) {
      amax = std::max({amax, std::abs(w(i, j).real()), std::abs(w(i, j).imag())});
    }
  double rescale = 1.0;
  if (amax != 0.0 && std::isfinite(amax) && (amax < 1e-150 || amax > 1e150)) {
    rescale = amax;
    const double inv = 1.0 / rescale;
    for (idx i = 0; i < m; ++i)
      for (idx j = 0; j < n; ++j) w(i, j) *= inv;
  }

  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    bool rotated = false;
    for (idx i = 0; i < n - 1; ++i) {
      for (idx j = i + 1; j < n; ++j) {
        // Gram entries of the (i, j) column pair.
        double aii = 0.0, ajj = 0.0;
        cplx aij = 0.0;
        for (idx r = 0; r < m; ++r) {
          aii += std::norm(w(r, i));
          ajj += std::norm(w(r, j));
          aij += std::conj(w(r, i)) * w(r, j);
        }
        const double g = std::abs(aij);
        // sqrt(aii)*sqrt(ajj), not sqrt(aii*ajj): the product form
        // underflows/overflows for representable column norms and turns
        // the convergence test degenerate (QUDA's quadSum discipline).
        if (g <= kTol * (std::sqrt(aii) * std::sqrt(ajj)) || g == 0.0) continue;
        rotated = true;

        // Unitary 2x2 J = [[c, s*u], [-s*conj(u), c]] with u = aij/|aij|
        // diagonalizing the Hermitian pair-Gram matrix.
        const cplx u = aij / g;
        const double zeta = (ajj - aii) / (2.0 * g);
        const double t = std::copysign(1.0, zeta) /
                         (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        const cplx su = s * u;
        const cplx su_conj = s * std::conj(u);

        for (idx r = 0; r < m; ++r) {
          const cplx wi = w(r, i), wj = w(r, j);
          w(r, i) = c * wi - su_conj * wj;
          w(r, j) = su * wi + c * wj;
        }
        for (idx r = 0; r < n; ++r) {
          const cplx vi = v(r, i), vj = v(r, j);
          v(r, i) = c * vi - su_conj * vj;
          v(r, j) = su * vi + c * vj;
        }
      }
    }
    if (!rotated) break;
  }

  // Extract s and normalize U columns; sort descending.
  std::vector<double> s(static_cast<std::size_t>(n));
  for (idx j = 0; j < n; ++j) {
    double norm_sq = 0.0;
    for (idx r = 0; r < m; ++r) norm_sq += std::norm(w(r, j));
    s[static_cast<std::size_t>(j)] = std::sqrt(norm_sq);
  }

  std::vector<idx> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), idx{0});
  std::sort(perm.begin(), perm.end(), [&](idx x, idx y) {
    return s[static_cast<std::size_t>(x)] > s[static_cast<std::size_t>(y)];
  });

  SvdResult out;
  out.s.resize(static_cast<std::size_t>(n));
  out.u = Matrix(m, n);
  Matrix vs(n, n);
  for (idx j = 0; j < n; ++j) {
    const idx src = perm[static_cast<std::size_t>(j)];
    const double sj = s[static_cast<std::size_t>(src)];
    out.s[static_cast<std::size_t>(j)] = sj * rescale;
    const double inv = sj > 0.0 ? 1.0 / sj : 0.0;
    for (idx r = 0; r < m; ++r) out.u(r, j) = w(r, src) * inv;
    for (idx r = 0; r < n; ++r) vs(r, j) = v(r, src);
  }
  complete_orthonormal_columns(out.u, out.s);
  out.vh = vs.adjoint();
  return out;
}

}  // namespace

SvdResult jacobi_svd(const Matrix& a) {
  QKMPS_CHECK(a.rows() > 0 && a.cols() > 0);
  if (a.rows() >= a.cols()) return jacobi_svd_tall(a);
  SvdResult t = jacobi_svd_tall(a.adjoint());
  SvdResult out;
  out.s = std::move(t.s);
  out.u = t.vh.adjoint();
  out.vh = t.u.adjoint();
  return out;
}

}  // namespace qkmps::linalg
