#pragma once

#include "linalg/matrix.hpp"
#include "linalg/policy.hpp"

namespace qkmps::linalg {

/// How an operand enters the product.
enum class Op {
  None,     ///< A as stored
  ConjT,    ///< conjugate transpose A^H
};

/// C = op(A) * op(B). Dispatches on `policy`:
///  - Reference: straightforward i-k-j loop (cache-friendly for row-major,
///    serial) — the low-overhead path.
///  - Accelerated: tiled kernel, OpenMP-parallel over row blocks once the
///    output is large enough (kParallelGemmThreshold).
Matrix gemm(const Matrix& a, const Matrix& b, ExecPolicy policy,
            Op op_a = Op::None, Op op_b = Op::None);

/// C = A * B into a caller-owned output (resized in place, so repeated
/// calls on a persistent C reuse its heap block — the batched kernel
/// layer's no-churn path). C must not alias A or B. Arithmetic is
/// identical to gemm(): the two entry points are bitwise-interchangeable.
void gemm_into(Matrix& c, const Matrix& a, const Matrix& b, ExecPolicy policy);

/// y = A * x for a dense vector stored as an n x 1 Matrix column; serial.
Matrix gemv(const Matrix& a, const Matrix& x);

/// Kernels exposed for tests/ablation benches.
Matrix gemm_reference(const Matrix& a, const Matrix& b);
Matrix gemm_blocked(const Matrix& a, const Matrix& b, bool parallel);

}  // namespace qkmps::linalg
