#include "linalg/symeig.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace qkmps::linalg {

SymEigResult symmetric_eigen(const kernel::RealMatrix& a) {
  const idx n = a.rows();
  QKMPS_CHECK(a.cols() == n && n >= 1);
  // Symmetrize defensively (floating-point asymmetry from accumulation).
  kernel::RealMatrix w(n, n);
  for (idx i = 0; i < n; ++i)
    for (idx j = 0; j < n; ++j) w(i, j) = 0.5 * (a(i, j) + a(j, i));

  kernel::RealMatrix v(n, n);
  for (idx i = 0; i < n; ++i) v(i, i) = 1.0;

  constexpr int kMaxSweeps = 60;
  constexpr double kTol = 1e-14;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    double off = 0.0;
    for (idx i = 0; i < n; ++i)
      for (idx j = i + 1; j < n; ++j) off += w(i, j) * w(i, j);
    double diag = 0.0;
    for (idx i = 0; i < n; ++i) diag += w(i, i) * w(i, i);
    if (off <= kTol * kTol * (diag + 1.0)) break;

    for (idx p = 0; p < n - 1; ++p) {
      for (idx q = p + 1; q < n; ++q) {
        const double apq = w(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double theta = (w(q, q) - w(p, p)) / (2.0 * apq);
        const double t = std::copysign(1.0, theta) /
                         (std::abs(theta) + std::sqrt(1.0 + theta * theta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;

        for (idx k = 0; k < n; ++k) {
          const double wkp = w(k, p), wkq = w(k, q);
          w(k, p) = c * wkp - s * wkq;
          w(k, q) = s * wkp + c * wkq;
        }
        for (idx k = 0; k < n; ++k) {
          const double wpk = w(p, k), wqk = w(q, k);
          w(p, k) = c * wpk - s * wqk;
          w(q, k) = s * wpk + c * wqk;
        }
        for (idx k = 0; k < n; ++k) {
          const double vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  std::vector<idx> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), idx{0});
  std::sort(perm.begin(), perm.end(),
            [&](idx x, idx y) { return w(x, x) > w(y, y); });

  SymEigResult out;
  out.eigenvalues.resize(static_cast<std::size_t>(n));
  out.eigenvectors = kernel::RealMatrix(n, n);
  for (idx j = 0; j < n; ++j) {
    const idx src = perm[static_cast<std::size_t>(j)];
    out.eigenvalues[static_cast<std::size_t>(j)] = w(src, src);
    for (idx i = 0; i < n; ++i) out.eigenvectors(i, j) = v(i, src);
  }
  return out;
}

std::vector<double> symmetric_eigenvalues(const kernel::RealMatrix& a) {
  return symmetric_eigen(a).eigenvalues;
}

}  // namespace qkmps::linalg
