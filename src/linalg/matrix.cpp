#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace qkmps::linalg {

Matrix Matrix::identity(idx n) {
  Matrix m(n, n);
  for (idx i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::adjoint() const {
  Matrix out(cols_, rows_);
  for (idx i = 0; i < rows_; ++i)
    for (idx j = 0; j < cols_; ++j) out(j, i) = std::conj((*this)(i, j));
  return out;
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (idx i = 0; i < rows_; ++i)
    for (idx j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  return out;
}

Matrix Matrix::conj() const {
  Matrix out(rows_, cols_);
  for (idx i = 0; i < rows_; ++i)
    for (idx j = 0; j < cols_; ++j) out(i, j) = std::conj((*this)(i, j));
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  QKMPS_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t k = 0; k < a_.size(); ++k) a_[k] += other.a_[k];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  QKMPS_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t k = 0; k < a_.size(); ++k) a_[k] -= other.a_[k];
  return *this;
}

Matrix& Matrix::operator*=(cplx scale) {
  for (auto& v : a_) v *= scale;
  return *this;
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  QKMPS_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  double m = 0.0;
  for (idx i = 0; i < a.rows(); ++i)
    for (idx j = 0; j < a.cols(); ++j)
      m = std::max(m, std::abs(a(i, j) - b(i, j)));
  return m;
}

}  // namespace qkmps::linalg
