#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace qkmps::linalg {

/// A complex elementary (Householder) reflector H = I - tau * v v^H with
/// v[0] == 1, chosen LAPACK-zlarfg style so that H x = beta e_1 with *real*
/// beta. The real-beta convention is what lets the bidiagonalization below
/// produce a real bidiagonal matrix from a complex input.
struct Reflector {
  std::vector<cplx> v;  ///< reflector vector, v[0] == 1
  cplx tau = 0.0;       ///< scale; tau == 0 encodes the identity
  double beta = 0.0;    ///< resulting first entry, real by construction
};

/// Builds the reflector annihilating x[1..] into x[0]; x must be non-empty.
Reflector make_reflector(const cplx* x, idx n);

/// Same, writing into a caller-owned reflector whose `v` keeps its heap
/// block across calls (the bidiagonalization workspace path).
void make_reflector_into(const cplx* x, idx n, Reflector& h);

/// A <- H A on the sub-block rows [row0, row0+len) x cols [col0, col1):
/// A -= tau * v (v^H A). `v` has `len` entries aligned with row0.
/// `parallel` splits the independent per-column updates across an OpenMP
/// team — the accelerated policy's decomposition path.
void apply_reflector_left(Matrix& a, const Reflector& h, idx row0, idx col0,
                          idx col1, bool parallel = false);

/// A <- A W on the sub-block rows [row0, row1) x cols [col0, col0+len) where
/// W = I - tau conj(v) v^T; this is the "right" reflector used by the
/// bidiagonalization (it maps the k-th *row* to beta e_1^T).
void apply_reflector_right(Matrix& a, const Reflector& h, idx row0, idx row1,
                           idx col0, bool parallel = false);

/// X <- H^H X on rows [row0, row0+len), all columns. Used when accumulating
/// the thin U factor by reverse application.
void apply_reflector_adjoint_left(Matrix& x, const Reflector& h, idx row0);

/// X <- W X (W as in apply_reflector_right) on rows [row0, row0+len), all
/// columns. Used when accumulating the V factor by reverse application.
void apply_reflector_w_left(Matrix& x, const Reflector& h, idx row0);

}  // namespace qkmps::linalg
