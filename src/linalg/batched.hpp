#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "linalg/gemm.hpp"
#include "linalg/svd.hpp"

namespace qkmps::linalg {

/// Backend seam for the batched small-matrix kernels, Eigen-style: one
/// header, pluggable execution engines behind it (JacobiSVD vs LAPACKE in
/// Eigen; serial reference vs OpenMP-batched here, with room for a GPU
/// backend later). The backends are scheduling choices only — every
/// per-matrix kernel call is the same code on the same values, so results
/// are bitwise-identical across backends (tests/test_batched_kernels.cpp).
enum class KernelBackend {
  kSerial,         ///< one matrix at a time on the calling thread
  kOpenMPBatched,  ///< one OpenMP pass over the shape-bucketed batch
};

std::string to_string(KernelBackend backend);

/// Configuration of one batched pass.
struct KernelBatchConfig {
  KernelBackend backend = KernelBackend::kOpenMPBatched;
  /// Maximum worker threads the whole pass may occupy. The serving engine
  /// passes its pool width here so shard-lane parallelism and kernel-level
  /// OpenMP cannot multiply into oversubscription (DESIGN.md thread-budget
  /// contract); each pass worker additionally pins its own per-matrix
  /// kernels to serial via KernelThreadScope. <= 0 means 1.
  int thread_budget = 1;
  /// Per-matrix kernel flavour (Reference / Accelerated), forwarded to the
  /// underlying gemm/svd calls.
  ExecPolicy policy = ExecPolicy::Reference;
};

/// One C = A * B product of a batch. Pointers must stay valid through the
/// pass; outputs must be distinct from each other and from every operand.
struct GemmTask {
  const Matrix* a = nullptr;
  const Matrix* b = nullptr;
  Matrix* c = nullptr;
};

/// One thin-SVD of a batch.
struct SvdTask {
  const Matrix* a = nullptr;
  SvdResult* out = nullptr;
};

/// Preallocated per-worker-lane SVD workspaces. A long-lived arena (the
/// batched gate-sweep driver keeps one across all rounds of a batch)
/// reduces the per-SVD heap traffic to the factors that escape into
/// results; shape-bucketed dispatch keeps consecutive matrices in a lane
/// same-shaped so even vector::assign rarely reallocates.
class KernelArena {
 public:
  /// Grows to at least `lanes` workspaces. Call before a parallel pass —
  /// growth is not thread-safe.
  void ensure_lanes(int lanes);
  SvdWorkspace& lane(int i);
  int lanes() const { return static_cast<int>(lanes_.size()); }

 private:
  std::vector<SvdWorkspace> lanes_;
};

/// Runs every task's C = A * B. Tasks are dispatched in shape-bucketed
/// order (stable-sorted by output/inner dimensions) so a worker lane sees
/// runs of identical shapes.
void batched_gemm(const std::vector<GemmTask>& tasks,
                  const KernelBatchConfig& config);

/// Runs every task's thin SVD through per-lane workspaces (from `arena`
/// when given, else a pass-local one), shape-bucketed like batched_gemm.
void batched_svd(const std::vector<SvdTask>& tasks,
                 const KernelBatchConfig& config, KernelArena* arena = nullptr);

/// Generic batched companion for the independent per-item phases between
/// kernel passes (staging, permutes, commits): runs fn(i) for i in [0, n)
/// under the backend's scheduling and thread budget. Each worker pins its
/// per-matrix kernels serial (KernelThreadScope of 1), mirroring the
/// kernel passes.
void batched_for(std::size_t n, const KernelBatchConfig& config,
                 const std::function<void(std::size_t)>& fn);

}  // namespace qkmps::linalg
