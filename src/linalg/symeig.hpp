#pragma once

#include <vector>

#include "kernel/kernel_matrix.hpp"

namespace qkmps::linalg {

/// Eigendecomposition of a real symmetric matrix A = V diag(w) V^T via the
/// cyclic Jacobi rotation method. Eigenvalues are returned in descending
/// order with matching eigenvector columns. Used by the kernel diagnostics
/// (spectrum, PSD check, effective dimension) — Gram matrices are small
/// relative to the simulation cost, so Jacobi's O(n^3) per sweep is fine.
struct SymEigResult {
  std::vector<double> eigenvalues;   ///< descending
  kernel::RealMatrix eigenvectors;   ///< column i pairs with eigenvalue i
};

SymEigResult symmetric_eigen(const kernel::RealMatrix& a);

/// Convenience: eigenvalues only, descending.
std::vector<double> symmetric_eigenvalues(const kernel::RealMatrix& a);

}  // namespace qkmps::linalg
