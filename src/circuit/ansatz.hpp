#pragma once

#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/interaction_graph.hpp"

namespace qkmps::circuit {

/// Hyperparameters of the feature-map ansatz (Sec. II-A / II-C):
/// U(x) = [ exp(-i H_XX(x)) exp(-i H_Z(x)) ]^r applied to |+>^m, with
///   H_Z(x)  = gamma   * sum_i x_i Z_i                       (Eq. 4)
///   H_XX(x) = gamma^2 * (pi/2) * sum_{(i,j) in G} (1-x_i)(1-x_j) X_i X_j  (Eq. 5)
/// The number of qubits equals the number of features.
struct AnsatzParams {
  idx num_features = 0;   ///< m: qubits == features
  idx layers = 2;         ///< r: ansatz repetitions
  idx distance = 1;       ///< d: linear-chain interaction distance
  double gamma = 0.1;     ///< kernel bandwidth coefficient

  InteractionGraph graph() const {
    return InteractionGraph::linear_chain(num_features, distance);
  }
};

/// Builds the state-preparation circuit U(x)|+>^m for one data point.
/// Feature values are expected rescaled to the (0, 2) interval (the data
/// pipeline's job). RXX gates are emitted in commuting-layer order so the
/// H_XX block has depth <= 2d; for distance > 1 the result still contains
/// non-adjacent RXX gates — run route_to_chain() before MPS simulation.
Circuit feature_map_circuit(const AnsatzParams& params,
                            const std::vector<double>& x);

/// Same, over an arbitrary interaction graph (the paper's "other data sets
/// might benefit from more complicated interaction graphs").
Circuit feature_map_circuit(const InteractionGraph& graph, idx layers,
                            double gamma, const std::vector<double>& x);

}  // namespace qkmps::circuit
