#pragma once

#include <vector>

#include "circuit/circuit.hpp"
#include "util/types.hpp"

namespace qkmps::circuit {

/// Dense statevector simulator: the exact, exponential-memory reference
/// implementation (Sec. II-B's baseline). Usable to ~20 qubits; the test
/// suite cross-validates every MPS code path against it. Qubit 0 is the
/// most significant bit of the basis-state index, matching the MPS site
/// ordering (site 0 = leftmost tensor).
class Statevector {
 public:
  explicit Statevector(idx num_qubits);  ///< initialised to |0...0>

  idx num_qubits() const { return num_qubits_; }
  const std::vector<cplx>& amplitudes() const { return amps_; }

  void apply(const Gate& g);
  void apply(const Circuit& c);

  /// <this|other>.
  cplx inner_product(const Statevector& other) const;

  double norm() const;

 private:
  void apply_1q(const linalg::Matrix& u, idx q);
  void apply_2q(const linalg::Matrix& u, idx q0, idx q1);

  idx num_qubits_;
  std::vector<cplx> amps_;
};

/// Runs a circuit from |0...0> and returns the final state.
Statevector simulate_statevector(const Circuit& c);

}  // namespace qkmps::circuit
