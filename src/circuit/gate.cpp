#include "circuit/gate.hpp"

#include <cmath>

#include "util/error.hpp"

namespace qkmps::circuit {

namespace {
const cplx kI(0.0, 1.0);
}

linalg::Matrix Gate::matrix() const {
  using linalg::Matrix;
  switch (kind) {
    case GateKind::H: {
      Matrix m(2, 2);
      const double s = 1.0 / std::sqrt(2.0);
      m(0, 0) = s;
      m(0, 1) = s;
      m(1, 0) = s;
      m(1, 1) = -s;
      return m;
    }
    case GateKind::X: {
      Matrix m(2, 2);
      m(0, 1) = 1.0;
      m(1, 0) = 1.0;
      return m;
    }
    case GateKind::Z: {
      Matrix m(2, 2);
      m(0, 0) = 1.0;
      m(1, 1) = -1.0;
      return m;
    }
    case GateKind::RZ: {
      Matrix m(2, 2);
      m(0, 0) = std::exp(-kI * (angle / 2.0));
      m(1, 1) = std::exp(kI * (angle / 2.0));
      return m;
    }
    case GateKind::RX: {
      Matrix m(2, 2);
      const double c = std::cos(angle / 2.0), s = std::sin(angle / 2.0);
      m(0, 0) = c;
      m(0, 1) = -kI * s;
      m(1, 0) = -kI * s;
      m(1, 1) = c;
      return m;
    }
    case GateKind::RXX: {
      Matrix m(4, 4);
      const double c = std::cos(angle / 2.0), s = std::sin(angle / 2.0);
      // exp(-i t XX / 2): cos on the diagonal, -i sin on the anti-diagonal.
      for (idx i = 0; i < 4; ++i) m(i, i) = c;
      m(0, 3) = -kI * s;
      m(1, 2) = -kI * s;
      m(2, 1) = -kI * s;
      m(3, 0) = -kI * s;
      return m;
    }
    case GateKind::SWAP: {
      Matrix m(4, 4);
      m(0, 0) = 1.0;
      m(1, 2) = 1.0;
      m(2, 1) = 1.0;
      m(3, 3) = 1.0;
      return m;
    }
  }
  throw Error("unknown gate kind");
}

std::string Gate::name() const {
  switch (kind) {
    case GateKind::H: return "H";
    case GateKind::X: return "X";
    case GateKind::Z: return "Z";
    case GateKind::RZ: return "RZ";
    case GateKind::RX: return "RX";
    case GateKind::RXX: return "RXX";
    case GateKind::SWAP: return "SWAP";
  }
  return "?";
}

Gate make_h(idx q) { return {GateKind::H, q, -1, 0.0}; }
Gate make_x(idx q) { return {GateKind::X, q, -1, 0.0}; }
Gate make_z(idx q) { return {GateKind::Z, q, -1, 0.0}; }
Gate make_rz(idx q, double angle) { return {GateKind::RZ, q, -1, angle}; }
Gate make_rx(idx q, double angle) { return {GateKind::RX, q, -1, angle}; }

Gate make_rxx(idx q0, idx q1, double angle) {
  QKMPS_CHECK(q0 != q1);
  return {GateKind::RXX, q0, q1, angle};
}

Gate make_swap(idx q0, idx q1) {
  QKMPS_CHECK(q0 != q1);
  return {GateKind::SWAP, q0, q1, 0.0};
}

}  // namespace qkmps::circuit
