#pragma once

#include <utility>
#include <vector>

#include "circuit/interaction_graph.hpp"

namespace qkmps::circuit {

/// Packs the (mutually commuting) RXX edge set into layers of
/// endpoint-disjoint gates. Because RXX gates commute with each other
/// (footnote 3 of the paper), any reordering is exact; greedily packing
/// them yields <= 2d layers for a distance-d linear chain so the
/// exp(-i H_XX) subcircuit has depth 2d instead of O(m d).
std::vector<std::vector<std::pair<idx, idx>>> schedule_commuting_layers(
    const std::vector<std::pair<idx, idx>>& edges, idx num_qubits);

}  // namespace qkmps::circuit
