#pragma once

#include <string>

#include "linalg/matrix.hpp"
#include "util/types.hpp"

namespace qkmps::circuit {

/// Gate vocabulary of the feature-map ansatz (Fig. 3 of the paper) plus the
/// SWAPs inserted by routing. Angle conventions are the standard
/// half-angle ones: RZ(t) = exp(-i t Z / 2), RXX(t) = exp(-i t XX / 2);
/// the ansatz builder converts Hamiltonian coefficients accordingly.
enum class GateKind {
  H,
  X,
  Z,
  RZ,
  RX,
  RXX,
  SWAP,
};

struct Gate {
  GateKind kind;
  idx q0 = 0;
  idx q1 = -1;        ///< second qubit for two-qubit gates, -1 otherwise
  double angle = 0.0;  ///< rotation angle for RZ/RX/RXX

  bool is_two_qubit() const { return q1 >= 0; }

  /// Single-qubit gates: 2x2 unitary. Two-qubit gates: 4x4 unitary in the
  /// basis |q0 q1> with q0 the more significant bit.
  linalg::Matrix matrix() const;

  /// Gates of the same kind acting on disjoint qubits always commute; RXX
  /// gates commute with each other even on overlapping qubits (they share
  /// the XX eigenbasis) — the property exploited by the depth scheduler.
  static bool rxx_commute() { return true; }

  std::string name() const;
};

/// Convenience constructors.
Gate make_h(idx q);
Gate make_x(idx q);
Gate make_z(idx q);
Gate make_rz(idx q, double angle);
Gate make_rx(idx q, double angle);
Gate make_rxx(idx q0, idx q1, double angle);
Gate make_swap(idx q0, idx q1);

}  // namespace qkmps::circuit
