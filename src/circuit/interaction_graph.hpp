#pragma once

#include <utility>
#include <vector>

#include "util/types.hpp"

namespace qkmps::circuit {

/// Qubit interaction topology: the edge set G of the H_XX Hamiltonian
/// (Eq. 5). The paper's experiments use a linear chain with a tunable
/// interaction distance d; arbitrary edge sets are supported for other
/// topologies (e.g. the "quantum data" graphs the conclusion speculates
/// about).
class InteractionGraph {
 public:
  InteractionGraph(idx num_qubits, std::vector<std::pair<idx, idx>> edges);

  /// Linear chain on m qubits where qubit i interacts with every qubit at
  /// chain distance <= d (Sec. II-C). Edges are emitted ordered by distance
  /// then position, matching Fig. 3b's E_i block structure.
  static InteractionGraph linear_chain(idx num_qubits, idx distance);

  idx num_qubits() const { return num_qubits_; }
  const std::vector<std::pair<idx, idx>>& edges() const { return edges_; }

  /// Max |i - j| over the edge set; 1 means natively MPS-simulable.
  idx max_distance() const;

 private:
  idx num_qubits_;
  std::vector<std::pair<idx, idx>> edges_;
};

}  // namespace qkmps::circuit
