#include "circuit/scheduling.hpp"

#include <vector>

#include "util/error.hpp"

namespace qkmps::circuit {

std::vector<std::vector<std::pair<idx, idx>>> schedule_commuting_layers(
    const std::vector<std::pair<idx, idx>>& edges, idx num_qubits) {
  std::vector<std::vector<std::pair<idx, idx>>> layers;
  std::vector<bool> placed(edges.size(), false);
  std::size_t remaining = edges.size();

  while (remaining > 0) {
    std::vector<bool> busy(static_cast<std::size_t>(num_qubits), false);
    std::vector<std::pair<idx, idx>> layer;
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (placed[i]) continue;
      const auto& [a, b] = edges[i];
      QKMPS_CHECK(a >= 0 && b >= 0 && a < num_qubits && b < num_qubits);
      if (busy[static_cast<std::size_t>(a)] || busy[static_cast<std::size_t>(b)])
        continue;
      busy[static_cast<std::size_t>(a)] = true;
      busy[static_cast<std::size_t>(b)] = true;
      layer.push_back(edges[i]);
      placed[i] = true;
      --remaining;
    }
    QKMPS_CHECK_MSG(!layer.empty(), "scheduler made no progress");
    layers.push_back(std::move(layer));
  }
  return layers;
}

}  // namespace qkmps::circuit
