#include "circuit/interaction_graph.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/error.hpp"

namespace qkmps::circuit {

InteractionGraph::InteractionGraph(idx num_qubits,
                                   std::vector<std::pair<idx, idx>> edges)
    : num_qubits_(num_qubits), edges_(std::move(edges)) {
  QKMPS_CHECK(num_qubits >= 1);
  for (auto& [a, b] : edges_) {
    QKMPS_CHECK(a >= 0 && a < num_qubits_ && b >= 0 && b < num_qubits_ && a != b);
    if (a > b) std::swap(a, b);
  }
}

InteractionGraph InteractionGraph::linear_chain(idx num_qubits, idx distance) {
  QKMPS_CHECK(num_qubits >= 1 && distance >= 0);
  std::vector<std::pair<idx, idx>> edges;
  for (idx k = 1; k <= distance; ++k)
    for (idx i = 0; i + k < num_qubits; ++i) edges.emplace_back(i, i + k);
  return InteractionGraph(num_qubits, std::move(edges));
}

idx InteractionGraph::max_distance() const {
  idx d = 0;
  for (const auto& [a, b] : edges_) d = std::max(d, std::abs(b - a));
  return d;
}

}  // namespace qkmps::circuit
