#include "circuit/circuit.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/error.hpp"

namespace qkmps::circuit {

Circuit::Circuit(idx num_qubits) : num_qubits_(num_qubits) {
  QKMPS_CHECK(num_qubits >= 1);
}

void Circuit::append(Gate g) {
  QKMPS_CHECK(g.q0 >= 0 && g.q0 < num_qubits_);
  if (g.is_two_qubit()) {
    QKMPS_CHECK(g.q1 >= 0 && g.q1 < num_qubits_ && g.q1 != g.q0);
  }
  gates_.push_back(g);
}

void Circuit::append(const Circuit& other) {
  QKMPS_CHECK(other.num_qubits_ == num_qubits_);
  gates_.insert(gates_.end(), other.gates_.begin(), other.gates_.end());
}

idx Circuit::two_qubit_gate_count() const {
  return static_cast<idx>(
      std::count_if(gates_.begin(), gates_.end(),
                    [](const Gate& g) { return g.is_two_qubit(); }));
}

idx Circuit::depth() const {
  std::vector<idx> free_at(static_cast<std::size_t>(num_qubits_), 0);
  idx depth = 0;
  for (const Gate& g : gates_) {
    idx start = free_at[static_cast<std::size_t>(g.q0)];
    if (g.is_two_qubit())
      start = std::max(start, free_at[static_cast<std::size_t>(g.q1)]);
    const idx end = start + 1;
    free_at[static_cast<std::size_t>(g.q0)] = end;
    if (g.is_two_qubit()) free_at[static_cast<std::size_t>(g.q1)] = end;
    depth = std::max(depth, end);
  }
  return depth;
}

bool Circuit::is_nearest_neighbour() const {
  return std::all_of(gates_.begin(), gates_.end(), [](const Gate& g) {
    return !g.is_two_qubit() || std::abs(g.q0 - g.q1) == 1;
  });
}

}  // namespace qkmps::circuit
