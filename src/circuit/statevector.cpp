#include "circuit/statevector.hpp"

#include <cmath>

#include "util/error.hpp"

namespace qkmps::circuit {

Statevector::Statevector(idx num_qubits) : num_qubits_(num_qubits) {
  QKMPS_CHECK_MSG(num_qubits >= 1 && num_qubits <= 26,
                  "statevector simulator limited to 26 qubits");
  amps_.assign(static_cast<std::size_t>(idx{1} << num_qubits), cplx(0.0));
  amps_[0] = 1.0;
}

void Statevector::apply_1q(const linalg::Matrix& u, idx q) {
  const idx stride = idx{1} << (num_qubits_ - 1 - q);
  const idx total = static_cast<idx>(amps_.size());
  for (idx base = 0; base < total; base += 2 * stride) {
    for (idx off = 0; off < stride; ++off) {
      const idx i0 = base + off;
      const idx i1 = i0 + stride;
      const cplx a0 = amps_[static_cast<std::size_t>(i0)];
      const cplx a1 = amps_[static_cast<std::size_t>(i1)];
      amps_[static_cast<std::size_t>(i0)] = u(0, 0) * a0 + u(0, 1) * a1;
      amps_[static_cast<std::size_t>(i1)] = u(1, 0) * a0 + u(1, 1) * a1;
    }
  }
}

void Statevector::apply_2q(const linalg::Matrix& u, idx q0, idx q1) {
  const idx s0 = idx{1} << (num_qubits_ - 1 - q0);
  const idx s1 = idx{1} << (num_qubits_ - 1 - q1);
  const idx total = static_cast<idx>(amps_.size());
  for (idx i = 0; i < total; ++i) {
    // Visit each 4-tuple once, from its (q0=0, q1=0) representative.
    if ((i & s0) != 0 || (i & s1) != 0) continue;
    const idx i00 = i;
    const idx i01 = i | s1;
    const idx i10 = i | s0;
    const idx i11 = i | s0 | s1;
    const cplx a00 = amps_[static_cast<std::size_t>(i00)];
    const cplx a01 = amps_[static_cast<std::size_t>(i01)];
    const cplx a10 = amps_[static_cast<std::size_t>(i10)];
    const cplx a11 = amps_[static_cast<std::size_t>(i11)];
    amps_[static_cast<std::size_t>(i00)] =
        u(0, 0) * a00 + u(0, 1) * a01 + u(0, 2) * a10 + u(0, 3) * a11;
    amps_[static_cast<std::size_t>(i01)] =
        u(1, 0) * a00 + u(1, 1) * a01 + u(1, 2) * a10 + u(1, 3) * a11;
    amps_[static_cast<std::size_t>(i10)] =
        u(2, 0) * a00 + u(2, 1) * a01 + u(2, 2) * a10 + u(2, 3) * a11;
    amps_[static_cast<std::size_t>(i11)] =
        u(3, 0) * a00 + u(3, 1) * a01 + u(3, 2) * a10 + u(3, 3) * a11;
  }
}

void Statevector::apply(const Gate& g) {
  const linalg::Matrix u = g.matrix();
  if (g.is_two_qubit()) {
    apply_2q(u, g.q0, g.q1);
  } else {
    apply_1q(u, g.q0);
  }
}

void Statevector::apply(const Circuit& c) {
  QKMPS_CHECK(c.num_qubits() == num_qubits_);
  for (const Gate& g : c.gates()) apply(g);
}

cplx Statevector::inner_product(const Statevector& other) const {
  QKMPS_CHECK(num_qubits_ == other.num_qubits_);
  cplx acc = 0.0;
  for (std::size_t i = 0; i < amps_.size(); ++i)
    acc += std::conj(amps_[i]) * other.amps_[i];
  return acc;
}

double Statevector::norm() const {
  double s = 0.0;
  for (const auto& a : amps_) s += std::norm(a);
  return std::sqrt(s);
}

Statevector simulate_statevector(const Circuit& c) {
  Statevector sv(c.num_qubits());
  sv.apply(c);
  return sv;
}

}  // namespace qkmps::circuit
