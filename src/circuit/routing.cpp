#include "circuit/routing.hpp"

#include <algorithm>
#include <cstdlib>

namespace qkmps::circuit {

Circuit route_to_chain(const Circuit& c) {
  Circuit out(c.num_qubits());
  for (const Gate& g : c.gates()) {
    if (!g.is_two_qubit() || std::abs(g.q0 - g.q1) == 1) {
      out.append(g);
      continue;
    }
    const idx lo = std::min(g.q0, g.q1);
    const idx hi = std::max(g.q0, g.q1);
    // Walk the low qubit up to position hi-1 ...
    for (idx p = lo; p < hi - 1; ++p) out.swap(p, p + 1);
    // ... apply the gate on the now-adjacent pair, preserving operand
    // order (RXX and SWAP are symmetric, but stay exact regardless):
    Gate moved = g;
    moved.q0 = (g.q0 == lo) ? hi - 1 : hi;
    moved.q1 = (g.q1 == lo) ? hi - 1 : hi;
    out.append(moved);
    // ... and walk it back so later gates see the original layout.
    for (idx p = hi - 1; p > lo; --p) out.swap(p - 1, p);
  }
  return out;
}

idx routing_swap_count(const Circuit& c) {
  idx swaps = 0;
  for (const Gate& g : c.gates()) {
    if (!g.is_two_qubit()) continue;
    const idx k = std::abs(g.q0 - g.q1);
    if (k > 1) swaps += 2 * (k - 1);
  }
  return swaps;
}

}  // namespace qkmps::circuit
