#pragma once

#include <vector>

#include "circuit/gate.hpp"

namespace qkmps::circuit {

/// A straight-line quantum circuit: an ordered gate list on `num_qubits`
/// qubits. This is the IR handed to both simulators; routing and scheduling
/// are circuit-to-circuit passes.
class Circuit {
 public:
  explicit Circuit(idx num_qubits);

  idx num_qubits() const { return num_qubits_; }
  const std::vector<Gate>& gates() const { return gates_; }
  idx size() const { return static_cast<idx>(gates_.size()); }

  void append(Gate g);
  void append(const Circuit& other);

  void h(idx q) { append(make_h(q)); }
  void x(idx q) { append(make_x(q)); }
  void z(idx q) { append(make_z(q)); }
  void rz(idx q, double angle) { append(make_rz(q, angle)); }
  void rx(idx q, double angle) { append(make_rx(q, angle)); }
  void rxx(idx q0, idx q1, double angle) { append(make_rxx(q0, q1, angle)); }
  void swap(idx q0, idx q1) { append(make_swap(q0, q1)); }

  /// Number of two-qubit gates — the complexity driver for MPS simulation
  /// (Sec. II-B: the bottleneck is two-qubit gate count, not qubit count).
  idx two_qubit_gate_count() const;

  /// Circuit depth: longest chain of gates under qubit-availability
  /// scheduling (each gate starts once its qubits are free).
  idx depth() const;

  /// True when every two-qubit gate acts on adjacent chain positions — the
  /// precondition for native MPS application (Sec. II-C).
  bool is_nearest_neighbour() const;

 private:
  idx num_qubits_;
  std::vector<Gate> gates_;
};

}  // namespace qkmps::circuit
