#include "circuit/ansatz.hpp"

#include "circuit/scheduling.hpp"
#include "util/error.hpp"

namespace qkmps::circuit {

Circuit feature_map_circuit(const InteractionGraph& graph, idx layers,
                            double gamma, const std::vector<double>& x) {
  const idx m = graph.num_qubits();
  QKMPS_CHECK_MSG(static_cast<idx>(x.size()) == m,
                  "feature count " << x.size() << " != qubit count " << m);
  QKMPS_CHECK(layers >= 1);

  Circuit c(m);
  // |+>^m initialisation (Eq. 2).
  for (idx q = 0; q < m; ++q) c.h(q);

  const auto rxx_layers = schedule_commuting_layers(graph.edges(), m);

  for (idx rep = 0; rep < layers; ++rep) {
    // exp(-i H_Z(x)): e^{-i gamma x_q Z} = RZ(2 gamma x_q) up to global phase.
    for (idx q = 0; q < m; ++q)
      c.rz(q, 2.0 * gamma * x[static_cast<std::size_t>(q)]);

    // exp(-i H_XX(x)): e^{-i c XX} = RXX(2c) with
    // c = gamma^2 (pi/2) (1 - x_i)(1 - x_j).
    for (const auto& layer : rxx_layers) {
      for (const auto& [i, j] : layer) {
        const double coeff = gamma * gamma * (kPi / 2.0) *
                             (1.0 - x[static_cast<std::size_t>(i)]) *
                             (1.0 - x[static_cast<std::size_t>(j)]);
        c.rxx(i, j, 2.0 * coeff);
      }
    }
  }
  return c;
}

Circuit feature_map_circuit(const AnsatzParams& params,
                            const std::vector<double>& x) {
  return feature_map_circuit(params.graph(), params.layers, params.gamma, x);
}

}  // namespace qkmps::circuit
