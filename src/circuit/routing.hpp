#pragma once

#include "circuit/circuit.hpp"

namespace qkmps::circuit {

/// Rewrites a circuit so every two-qubit gate acts on adjacent qubits of
/// the linear chain, which is the MPS simulator's native constraint
/// (Sec. II-C). A gate on qubits (i, i+k) is wrapped in a ladder of k-1
/// SWAPs on each side — 2(k-1) extra SWAP gates, exactly the overhead the
/// paper quotes. Single-qubit gates and already-adjacent gates pass
/// through unchanged; qubit positions are restored after every gate, so
/// the routed circuit computes the identical unitary.
Circuit route_to_chain(const Circuit& c);

/// Number of SWAPs route_to_chain would insert; used by resource planning
/// and the scaling benches.
idx routing_swap_count(const Circuit& c);

}  // namespace qkmps::circuit
