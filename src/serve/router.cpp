#include "serve/router.hpp"

#include <algorithm>

#include "serve/feature_key.hpp"
#include "util/error.hpp"

namespace qkmps::serve {

namespace {

/// splitmix64 finalizer: decorrelates ring-point ids (and incoming FNV key
/// hashes) into uniform 64-bit ring positions. Stability matters more than
/// speed here — these constants are part of the routing contract, since a
/// future multi-process router must place keys identically.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* to_string(RouterKind kind) {
  switch (kind) {
    case RouterKind::kFeatureHashModulo:
      return "feature-hash-modulo";
    case RouterKind::kConsistentHash:
      return "consistent-hash";
  }
  return "unknown";
}

int Router::shard_for(const std::vector<double>& features) const {
  return shard_for_hash(feature_hash(features));
}

ModuloRouter::ModuloRouter(std::size_t num_shards) : num_shards_(num_shards) {
  QKMPS_CHECK_MSG(num_shards >= 1, "router needs at least one shard");
}

int ModuloRouter::shard_for_hash(std::uint64_t key_hash) const {
  return static_cast<int>(key_hash % static_cast<std::uint64_t>(num_shards_));
}

ConsistentHashRouter::ConsistentHashRouter(std::size_t num_shards,
                                           std::size_t virtual_nodes)
    : num_shards_(num_shards), virtual_nodes_(virtual_nodes) {
  QKMPS_CHECK_MSG(num_shards >= 1, "router needs at least one shard");
  QKMPS_CHECK_MSG(virtual_nodes >= 1, "ring needs at least one point per shard");
  ring_.reserve(num_shards * virtual_nodes);
  for (std::size_t s = 0; s < num_shards; ++s)
    insert_shard_points(static_cast<int>(s));
}

void ConsistentHashRouter::insert_shard_points(int shard) {
  for (std::size_t r = 0; r < virtual_nodes_; ++r) {
    // Ring position of replica r of `shard`: a pure function of the pair,
    // so adding shard N never moves the points of shards 0..N-1 — the
    // stability add_shard()'s ~1/(N+1) remap bound rests on.
    const std::uint64_t point =
        mix64((static_cast<std::uint64_t>(shard) << 32) ^
              static_cast<std::uint64_t>(r));
    ring_.push_back(RingPoint{point, shard});
  }
  std::sort(ring_.begin(), ring_.end(), [](const RingPoint& a,
                                           const RingPoint& b) {
    // Shard id breaks position ties so the ring order (hence every
    // assignment) is deterministic even on a 64-bit collision.
    return a.point != b.point ? a.point < b.point : a.shard < b.shard;
  });
}

void ConsistentHashRouter::add_shard() {
  insert_shard_points(static_cast<int>(num_shards_));
  ++num_shards_;
}

int ConsistentHashRouter::shard_for_hash(std::uint64_t key_hash) const {
  // Re-mix the FNV key hash so key positions and ring positions come from
  // the same uniform family; first point at or clockwise of the key wins,
  // wrapping past the top of the ring to ring_.front().
  const std::uint64_t pos = mix64(key_hash);
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), pos,
      [](const RingPoint& p, std::uint64_t key) { return p.point < key; });
  return (it == ring_.end() ? ring_.front() : *it).shard;
}

std::unique_ptr<Router> make_router(const RouterConfig& config,
                                    std::size_t num_shards) {
  switch (config.kind) {
    case RouterKind::kFeatureHashModulo:
      return std::make_unique<ModuloRouter>(num_shards);
    case RouterKind::kConsistentHash:
      return std::make_unique<ConsistentHashRouter>(num_shards,
                                                    config.virtual_nodes);
  }
  QKMPS_CHECK_MSG(false, "unknown RouterKind");
  return nullptr;
}

}  // namespace qkmps::serve
