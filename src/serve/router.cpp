#include "serve/router.hpp"

#include <algorithm>
#include <cmath>

#include "serve/feature_key.hpp"
#include "util/error.hpp"

namespace qkmps::serve {

namespace {

/// splitmix64 finalizer: decorrelates ring-point ids (and incoming FNV key
/// hashes) into uniform 64-bit ring positions. Stability matters more than
/// speed here — these constants are part of the routing contract, since a
/// future multi-process router must place keys identically.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* to_string(RouterKind kind) {
  switch (kind) {
    case RouterKind::kFeatureHashModulo:
      return "feature-hash-modulo";
    case RouterKind::kConsistentHash:
      return "consistent-hash";
  }
  return "unknown";
}

int Router::shard_for(const std::vector<double>& features) const {
  return shard_for_hash(feature_hash(features));
}

ModuloRouter::ModuloRouter(std::size_t num_shards) : num_shards_(num_shards) {
  QKMPS_CHECK_MSG(num_shards >= 1, "router needs at least one shard");
}

int ModuloRouter::shard_for_hash(std::uint64_t key_hash) const {
  return static_cast<int>(key_hash % static_cast<std::uint64_t>(num_shards_));
}

void ModuloRouter::add_shard(double weight) {
  QKMPS_CHECK_MSG(weight == 1.0,
                  "the modulo router cannot weight shards (hash % N is "
                  "uniform by construction); use kConsistentHash");
  ++num_shards_;
}

void ModuloRouter::remove_shard(int shard) {
  QKMPS_CHECK_MSG(shard == static_cast<int>(num_shards_) - 1,
                  "the modulo router can only remove the highest shard id ("
                      << num_shards_ - 1 << "), not " << shard
                      << " — hash % N cannot skip an id; use kConsistentHash");
  QKMPS_CHECK_MSG(num_shards_ > 1, "cannot remove the only shard");
  --num_shards_;
}

ConsistentHashRouter::ConsistentHashRouter(std::size_t num_shards,
                                           std::size_t virtual_nodes)
    : ConsistentHashRouter(std::vector<double>(num_shards, 1.0),
                           virtual_nodes) {}

ConsistentHashRouter::ConsistentHashRouter(const std::vector<double>& weights,
                                           std::size_t virtual_nodes)
    : num_shards_(weights.size()), virtual_nodes_(virtual_nodes) {
  QKMPS_CHECK_MSG(num_shards_ >= 1, "router needs at least one shard");
  QKMPS_CHECK_MSG(virtual_nodes >= 1, "ring needs at least one point per shard");
  ring_.reserve(num_shards_ * virtual_nodes);
  for (std::size_t s = 0; s < num_shards_; ++s)
    insert_shard_points(static_cast<int>(s), weights[s]);
}

void ConsistentHashRouter::insert_shard_points(int shard, double weight) {
  QKMPS_CHECK_MSG(weight > 0.0, "shard weight must be positive, got " << weight);
  // A weight-w shard owns ~w * virtual_nodes points, so its expected key
  // share is proportional to w; at least one point so it is reachable.
  const auto points = static_cast<std::size_t>(std::max<long long>(
      1, std::llround(weight * static_cast<double>(virtual_nodes_))));
  for (std::size_t r = 0; r < points; ++r) {
    // Ring position of replica r of `shard`: a pure function of the pair,
    // so adding shard N never moves the points of shards 0..N-1 — the
    // stability add_shard()'s ~1/(N+1) remap bound rests on.
    const std::uint64_t point =
        mix64((static_cast<std::uint64_t>(shard) << 32) ^
              static_cast<std::uint64_t>(r));
    ring_.push_back(RingPoint{point, shard});
  }
  std::sort(ring_.begin(), ring_.end(), [](const RingPoint& a,
                                           const RingPoint& b) {
    // Shard id breaks position ties so the ring order (hence every
    // assignment) is deterministic even on a 64-bit collision.
    return a.point != b.point ? a.point < b.point : a.shard < b.shard;
  });
}

void ConsistentHashRouter::add_shard(double weight) {
  insert_shard_points(static_cast<int>(num_shards_), weight);
  ++num_shards_;
}

void ConsistentHashRouter::remove_shard(int shard) {
  QKMPS_CHECK_MSG(shard >= 0 && shard < static_cast<int>(num_shards_),
                  "remove_shard(" << shard << ") out of range");
  const std::size_t mine = points_of(shard);
  QKMPS_CHECK_MSG(mine > 0, "shard " << shard << " was already removed");
  QKMPS_CHECK_MSG(ring_.size() > mine,
                  "cannot remove the only shard left on the ring");
  // Erasing only this shard's points is the whole handoff: every key it
  // owned falls through to the next clockwise survivor, and no key owned
  // by a survivor moves at all.
  ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                             [shard](const RingPoint& p) {
                               return p.shard == shard;
                             }),
              ring_.end());
}

std::size_t ConsistentHashRouter::points_of(int shard) const {
  return static_cast<std::size_t>(
      std::count_if(ring_.begin(), ring_.end(), [shard](const RingPoint& p) {
        return p.shard == shard;
      }));
}

int ConsistentHashRouter::shard_for_hash(std::uint64_t key_hash) const {
  // Re-mix the FNV key hash so key positions and ring positions come from
  // the same uniform family; first point at or clockwise of the key wins,
  // wrapping past the top of the ring to ring_.front().
  const std::uint64_t pos = mix64(key_hash);
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), pos,
      [](const RingPoint& p, std::uint64_t key) { return p.point < key; });
  return (it == ring_.end() ? ring_.front() : *it).shard;
}

std::unique_ptr<Router> make_router(const RouterConfig& config,
                                    std::size_t num_shards) {
  return make_router(config, std::vector<double>(num_shards, 1.0));
}

std::unique_ptr<Router> make_router(const RouterConfig& config,
                                    const std::vector<double>& weights) {
  switch (config.kind) {
    case RouterKind::kFeatureHashModulo:
      for (const double w : weights)
        QKMPS_CHECK_MSG(w == 1.0,
                        "kFeatureHashModulo cannot weight shards; use "
                        "kConsistentHash for heterogeneous fleets");
      return std::make_unique<ModuloRouter>(weights.size());
    case RouterKind::kConsistentHash:
      return std::make_unique<ConsistentHashRouter>(weights,
                                                    config.virtual_nodes);
  }
  QKMPS_CHECK_MSG(false, "unknown RouterKind");
  return nullptr;
}

}  // namespace qkmps::serve
