#include "serve/shard_worker.hpp"

#include <algorithm>
#include <optional>
#include <sstream>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace qkmps::serve {

bool run_shard_worker(parallel::Transport& link, InferenceEngine& engine,
                      const ShardWorkerOptions& options) {
  const std::size_t limit = std::max<std::size_t>(1, options.batch_limit);
  std::size_t scored_total = 0;

  const auto reply_control = [&link, &engine](ShardEnvelope::Kind kind) {
    ShardReply reply;
    switch (kind) {
      case ShardEnvelope::Kind::kDrain:
        reply.kind = ShardReply::Kind::kDrained;
        break;
      case ShardEnvelope::Kind::kShutdown:
        reply.kind = ShardReply::Kind::kStopped;
        break;
      case ShardEnvelope::Kind::kStats:
        reply.kind = ShardReply::Kind::kStats;
        reply.stats = engine.stats();
        break;
      case ShardEnvelope::Kind::kRequest:
        QKMPS_CHECK_MSG(false, "kRequest is not a control envelope");
    }
    link.send(encode_reply(reply));
  };

  for (;;) {
    // Blocking first recv, in reclaimable ticks: a dead router surfaces
    // as a transport error from recv_for, never as a permanent block.
    ShardEnvelope first;
    for (;;) {
      if (std::optional<std::vector<std::uint8_t>> bytes =
              link.recv_for(options.idle_poll)) {
        first = decode_envelope(*bytes);
        break;
      }
    }
    if (first.kind != ShardEnvelope::Kind::kRequest) {
      reply_control(first.kind);
      if (first.kind == ShardEnvelope::Kind::kShutdown) return true;
      continue;
    }

    // Gather: micro-batching emerges under load exactly as in the
    // in-process frontend — whatever envelopes are already queued join
    // the batch, up to the drain bound; an idle link means a batch of
    // one. A control envelope ends the gather and is honoured after the
    // batch is scored (FIFO: its ack must follow our replies).
    std::vector<std::uint64_t> ids{first.id};
    std::vector<std::vector<double>> rows;
    rows.push_back(std::move(first.features));
    std::optional<ShardEnvelope::Kind> control;
    while (rows.size() < limit) {
      std::optional<std::vector<std::uint8_t>> bytes = link.try_recv();
      if (!bytes) break;
      ShardEnvelope next = decode_envelope(*bytes);
      if (next.kind != ShardEnvelope::Kind::kRequest) {
        control = next.kind;
        break;
      }
      ids.push_back(next.id);
      rows.push_back(std::move(next.features));
    }

    try {
      // Trusted entry: rows were validated once at submit().
      const std::vector<Prediction> predictions =
          engine.predict_batch_trusted(std::move(rows));
      for (std::size_t i = 0; i < ids.size(); ++i) {
        ShardReply reply;
        reply.kind = ShardReply::Kind::kPrediction;
        reply.id = ids[i];
        reply.prediction = predictions[i];
        link.send(encode_reply(reply));
      }
    } catch (const std::exception& e) {
      for (std::size_t i = 0; i < ids.size(); ++i) {
        ShardReply reply;
        reply.kind = ShardReply::Kind::kFailed;
        reply.id = ids[i];
        reply.error = e.what();
        link.send(encode_reply(reply));
      }
    }
    scored_total += ids.size();

    if (control) {
      reply_control(*control);
      if (*control == ShardEnvelope::Kind::kShutdown) return true;
    }

    if (options.die_after_requests > 0 &&
        scored_total >= options.die_after_requests)
      return false;  // simulated crash: no kStopped, the link just closes
  }
}

void shard_handshake_client(parallel::Transport& link,
                            const ShardHello& hello,
                            std::chrono::microseconds timeout) {
  link.send(encode_hello(hello));
  const std::optional<std::vector<std::uint8_t>> bytes =
      link.recv_for(timeout);
  QKMPS_CHECK_MSG(bytes.has_value(), "handshake timed out awaiting welcome");
  const ShardWelcome welcome = decode_welcome(*bytes);
  QKMPS_CHECK_MSG(welcome.accepted,
                  "router refused shard " << hello.shard_index << ": "
                                          << welcome.error);
  QKMPS_CHECK_MSG(welcome.wire_version == kShardWireVersion,
                  "router speaks wire version "
                      << welcome.wire_version << ", this worker speaks "
                      << kShardWireVersion);
}

ShardHello shard_handshake_server(parallel::Transport& link,
                                  const ShardAcceptPolicy& policy,
                                  std::chrono::microseconds timeout) {
  const std::optional<std::vector<std::uint8_t>> bytes =
      link.recv_for(timeout);
  QKMPS_CHECK_MSG(bytes.has_value(), "handshake timed out awaiting hello");
  const ShardHello hello = decode_hello(*bytes);

  std::ostringstream reason;
  if (hello.wire_version != kShardWireVersion)
    reason << "wire version skew: worker speaks " << hello.wire_version
           << ", router speaks " << kShardWireVersion;
  else if (hello.shard_index >= policy.num_shards)
    reason << "shard index " << hello.shard_index << " out of range (have "
           << policy.num_shards << " shards)";
  else if (hello.num_features != policy.num_features)
    reason << "model shape mismatch: worker bundle has "
           << hello.num_features << " features, router bundle has "
           << policy.num_features;
  else if (policy.require_shard && hello.shard_index != *policy.require_shard)
    reason << "expected a worker for shard " << *policy.require_shard
           << ", got shard " << hello.shard_index;
  else if (policy.require_generation &&
           hello.generation != *policy.require_generation)
    reason << "stale worker generation " << hello.generation
           << " for shard " << hello.shard_index << " (current is "
           << *policy.require_generation << ")";
  else if (policy.require_weight && hello.weight != *policy.require_weight)
    reason << "ring weight mismatch: worker spawned with " << hello.weight
           << ", router assigned " << *policy.require_weight;

  ShardWelcome welcome;
  welcome.accepted = reason.str().empty();
  welcome.error = reason.str();
  link.send(encode_welcome(welcome));
  QKMPS_CHECK_MSG(welcome.accepted, "refused worker: " << welcome.error);
  return hello;
}

ShardHello shard_handshake_server(parallel::Transport& link,
                                  std::size_t num_shards,
                                  std::int64_t num_features,
                                  std::chrono::microseconds timeout) {
  ShardAcceptPolicy policy;
  policy.num_shards = num_shards;
  policy.num_features = num_features;
  return shard_handshake_server(link, policy, timeout);
}

}  // namespace qkmps::serve
