#include "serve/shard_worker.hpp"

#include <algorithm>
#include <optional>
#include <sstream>
#include <utility>
#include <vector>

#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace qkmps::serve {

namespace {

/// Worker-side spans for one scored batch: the gather wait plus the
/// engine's stage breakdown, laid end-to-end from the batch's first
/// envelope (start_ns = 0 on the worker clock; the router re-bases the
/// whole set under its wire span when stitching — obs/trace.hpp). Every
/// request in the batch shares the set, mirroring how latency_seconds is
/// batch-scoped.
std::vector<obs::Span> batch_spans(double gather_seconds,
                                   const StageTimings& t) {
  const auto ns = [](double s) {
    return s <= 0.0 ? 0ull : static_cast<std::uint64_t>(s * 1e9);
  };
  std::vector<obs::Span> spans;
  std::uint64_t at = 0;
  const auto push = [&](const char* name, double seconds) {
    obs::Span span;
    span.name = name;
    span.start_ns = at;
    span.duration_ns = ns(seconds);
    span.origin = obs::SpanOrigin::kWorker;
    at += span.duration_ns;
    spans.push_back(std::move(span));
  };
  push("gather_wait", gather_seconds);
  push("scale", t.scale_seconds);
  push("memo", t.memo_seconds);
  push("cache", t.cache_seconds);
  push("simulate", t.simulate_seconds);
  push("kernel", t.kernel_seconds);
  push("score", t.score_seconds);
  return spans;
}

}  // namespace

bool run_shard_worker(parallel::Transport& link, InferenceEngine& engine,
                      const ShardWorkerOptions& options) {
  const std::size_t limit = std::max<std::size_t>(1, options.batch_limit);
  std::size_t scored_total = 0;

  const auto reply_control = [&link, &engine](ShardEnvelope::Kind kind) {
    ShardReply reply;
    switch (kind) {
      case ShardEnvelope::Kind::kDrain:
        reply.kind = ShardReply::Kind::kDrained;
        break;
      case ShardEnvelope::Kind::kShutdown:
        reply.kind = ShardReply::Kind::kStopped;
        break;
      case ShardEnvelope::Kind::kStats:
        reply.kind = ShardReply::Kind::kStats;
        reply.stats = engine.stats();
        break;
      case ShardEnvelope::Kind::kRequest:
        QKMPS_CHECK_MSG(false, "kRequest is not a control envelope");
    }
    link.send(encode_reply(reply));
  };

  for (;;) {
    // Blocking first recv, in reclaimable ticks: a dead router surfaces
    // as a transport error from recv_for, never as a permanent block.
    ShardEnvelope first;
    for (;;) {
      if (std::optional<std::vector<std::uint8_t>> bytes =
              link.recv_for(options.idle_poll)) {
        first = decode_envelope(*bytes);
        break;
      }
    }
    if (first.kind != ShardEnvelope::Kind::kRequest) {
      reply_control(first.kind);
      if (first.kind == ShardEnvelope::Kind::kShutdown) return true;
      continue;
    }

    // Gather: micro-batching emerges under load exactly as in the
    // in-process frontend — whatever envelopes are already queued join
    // the batch, up to the drain bound; an idle link means a batch of
    // one. A control envelope ends the gather and is honoured after the
    // batch is scored (FIFO: its ack must follow our replies).
    Timer gather_timer;
    std::vector<std::uint64_t> ids{first.id};
    std::vector<std::uint64_t> trace_ids{first.trace_id};
    std::vector<std::vector<double>> rows;
    rows.push_back(std::move(first.features));
    std::optional<ShardEnvelope::Kind> control;
    while (rows.size() < limit) {
      std::optional<std::vector<std::uint8_t>> bytes = link.try_recv();
      if (!bytes) break;
      ShardEnvelope next = decode_envelope(*bytes);
      if (next.kind != ShardEnvelope::Kind::kRequest) {
        control = next.kind;
        break;
      }
      ids.push_back(next.id);
      trace_ids.push_back(next.trace_id);
      rows.push_back(std::move(next.features));
    }
    const double gather_seconds = gather_timer.seconds();

    try {
      // Trusted entry: rows were validated once at submit().
      StageTimings timings;
      const std::vector<Prediction> predictions =
          engine.predict_batch_trusted(std::move(rows), &timings);
      const std::vector<obs::Span> spans =
          batch_spans(gather_seconds, timings);
      for (std::size_t i = 0; i < ids.size(); ++i) {
        ShardReply reply;
        reply.kind = ShardReply::Kind::kPrediction;
        reply.id = ids[i];
        reply.prediction = predictions[i];
        // Trace echo: only traced requests pay the span bytes. An
        // untraced envelope (trace_id 0 — e.g. from a v2 peer) gets an
        // empty span set back.
        reply.trace_id = trace_ids[i];
        if (reply.trace_id != 0) reply.spans = spans;
        link.send(encode_reply(reply));
      }
    } catch (const std::exception& e) {
      for (std::size_t i = 0; i < ids.size(); ++i) {
        ShardReply reply;
        reply.kind = ShardReply::Kind::kFailed;
        reply.id = ids[i];
        reply.error = e.what();
        reply.trace_id = trace_ids[i];
        link.send(encode_reply(reply));
      }
    }
    scored_total += ids.size();

    if (control) {
      reply_control(*control);
      if (*control == ShardEnvelope::Kind::kShutdown) return true;
    }

    if (options.die_after_requests > 0 &&
        scored_total >= options.die_after_requests)
      return false;  // simulated crash: no kStopped, the link just closes
  }
}

void shard_handshake_client(parallel::Transport& link,
                            const ShardHello& hello,
                            std::chrono::microseconds timeout) {
  link.send(encode_hello(hello));
  const std::optional<std::vector<std::uint8_t>> bytes =
      link.recv_for(timeout);
  QKMPS_CHECK_MSG(bytes.has_value(), "handshake timed out awaiting welcome");
  const ShardWelcome welcome = decode_welcome(*bytes);
  QKMPS_CHECK_MSG(welcome.accepted,
                  "router refused shard " << hello.shard_index << ": "
                                          << welcome.error);
  QKMPS_CHECK_MSG(welcome.wire_version == kShardWireVersion,
                  "router speaks wire version "
                      << welcome.wire_version << ", this worker speaks "
                      << kShardWireVersion);
}

ShardHello shard_handshake_server(parallel::Transport& link,
                                  const ShardAcceptPolicy& policy,
                                  std::chrono::microseconds timeout) {
  const std::optional<std::vector<std::uint8_t>> bytes =
      link.recv_for(timeout);
  QKMPS_CHECK_MSG(bytes.has_value(), "handshake timed out awaiting hello");
  const ShardHello hello = decode_hello(*bytes);

  std::ostringstream reason;
  if (hello.wire_version != kShardWireVersion)
    reason << "wire version skew: worker speaks " << hello.wire_version
           << ", router speaks " << kShardWireVersion;
  else if (hello.shard_index >= policy.num_shards)
    reason << "shard index " << hello.shard_index << " out of range (have "
           << policy.num_shards << " shards)";
  else if (hello.num_features != policy.num_features)
    reason << "model shape mismatch: worker bundle has "
           << hello.num_features << " features, router bundle has "
           << policy.num_features;
  else if (policy.require_shard && hello.shard_index != *policy.require_shard)
    reason << "expected a worker for shard " << *policy.require_shard
           << ", got shard " << hello.shard_index;
  else if (policy.require_generation &&
           hello.generation != *policy.require_generation)
    reason << "stale worker generation " << hello.generation
           << " for shard " << hello.shard_index << " (current is "
           << *policy.require_generation << ")";
  else if (policy.require_weight && hello.weight != *policy.require_weight)
    reason << "ring weight mismatch: worker spawned with " << hello.weight
           << ", router assigned " << *policy.require_weight;

  ShardWelcome welcome;
  welcome.accepted = reason.str().empty();
  welcome.error = reason.str();
  link.send(encode_welcome(welcome));
  QKMPS_CHECK_MSG(welcome.accepted, "refused worker: " << welcome.error);
  return hello;
}

ShardHello shard_handshake_server(parallel::Transport& link,
                                  std::size_t num_shards,
                                  std::int64_t num_features,
                                  std::chrono::microseconds timeout) {
  ShardAcceptPolicy policy;
  policy.num_shards = num_shards;
  policy.num_features = num_features;
  return shard_handshake_server(link, policy, timeout);
}

}  // namespace qkmps::serve
