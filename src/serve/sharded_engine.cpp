#include "serve/sharded_engine.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "obs/metrics.hpp"
#include "parallel/partition.hpp"
#include "util/atomics.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace qkmps::serve {

const char* to_string(ServeStatus status) {
  switch (status) {
    case ServeStatus::kServed:
      return "served";
    case ServeStatus::kRejected:
      return "rejected";
    case ServeStatus::kShed:
      return "shed";
  }
  return "unknown";
}

std::vector<std::size_t> shard_thread_lanes(std::size_t requested,
                                            std::size_t num_shards) {
  if (requested > 0)
    return std::vector<std::size_t>(num_shards, requested);
  const unsigned hw = std::thread::hardware_concurrency();
  const idx total = static_cast<idx>(hw == 0 ? 2 : hw);
  const std::vector<idx> sizes =
      parallel::split_sizes(total, static_cast<idx>(num_shards));
  std::vector<std::size_t> lanes(num_shards, 1);
  for (std::size_t i = 0; i < num_shards; ++i)
    lanes[i] = std::max<std::size_t>(1, static_cast<std::size_t>(sizes[i]));
  return lanes;
}

ShardedEngine::ShardedEngine(ModelBundle bundle, ShardedEngineConfig config)
    : ShardedEngine(std::make_shared<const ModelBundle>(std::move(bundle)),
                    config) {}

ShardedEngine::ShardedEngine(std::shared_ptr<const ModelBundle> bundle,
                             ShardedEngineConfig config)
    : bundle_(std::move(bundle)),
      config_(config),
      router_(make_router(config.router, config.num_shards)) {
  QKMPS_CHECK(bundle_ != nullptr);
  QKMPS_CHECK_MSG(config_.num_shards >= 1, "need at least one shard");
  QKMPS_CHECK_MSG(config_.admission_capacity >= 1,
                  "admission queue needs capacity >= 1");
  const std::vector<std::size_t> lanes =
      shard_thread_lanes(config_.engine.num_threads, config_.num_shards);
  shards_.reserve(config_.num_shards);
  for (std::size_t i = 0; i < config_.num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    EngineConfig engine_cfg = config_.engine;
    engine_cfg.num_threads = lanes[i];
    // Every shard scores through the same resident bundle; only caches,
    // queues, and pools are per shard.
    shard->engine = std::make_unique<InferenceEngine>(bundle_, engine_cfg);
    shards_.push_back(std::move(shard));
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard* shard = shards_[i].get();
    shard->drainer = std::thread(
        [this, shard, i] { drain_loop(*shard, static_cast<int>(i)); });
  }
}

ShardedEngine::~ShardedEngine() {
  for (auto& shard : shards_) {
    {
      util::MutexLock lock(shard->mu);
      shard->stop = true;
    }
    shard->cv_work.notify_all();
    shard->cv_space.notify_all();
  }
  // A submitter may still be inside submit() — most notably blocked in
  // the kBlockWithDeadline wait, which stop just woke into a rejection.
  // Wait for every in-flight submit to leave its shard before the shard
  // is freed (the stop flag guarantees no new ones enter).
  for (auto& shard : shards_) {
    util::UniqueLock lock(shard->mu);
    while (shard->active_submits != 0) shard->cv_space.wait(lock);
  }
  // Drainers finish every admitted request before exiting (stop overrides
  // pause), so joining here cannot deadlock and drops no future.
  for (auto& shard : shards_) shard->drainer.join();
}

int ShardedEngine::shard_for(const std::vector<double>& features) const {
  return router_->shard_for(features);
}

std::size_t ShardedEngine::drain_batch_limit() const {
  return config_.drain_max_batch > 0 ? config_.drain_max_batch
                                     : config_.engine.max_batch;
}

std::future<RoutedPrediction> ShardedEngine::submit(
    std::vector<double> features) {
  check_request_features(features, bundle_->num_features());
  const int shard_index = shard_for(features);
  Shard& shard = *shards_[static_cast<std::size_t>(shard_index)];

  Pending request;
  request.features = std::move(features);
  request.trace = obs::TraceContext::begin();
  request.submitted = request.trace.epoch;  // one clock read, two uses
  std::future<RoutedPrediction> fut = request.promise.get_future();

  std::optional<Pending> victim;  // kShedOldest eviction, resolved unlocked
  bool rejected = false;
  {
    util::UniqueLock lock(shard.mu);
    QKMPS_CHECK_MSG(!shard.stop, "submit on a stopped ShardedEngine");
    // Registered only once the stop check passed: the destructor waits
    // for active_submits to drain, and a submit that throws on a stopping
    // engine must not break submitted == admitted + rejected.
    ++shard.active_submits;
    shard.submitted.fetch_add(1, std::memory_order_relaxed);
    if (shard.pending.size() >= config_.admission_capacity) {
      switch (config_.policy) {
        case AdmissionPolicy::kRejectNew:
          rejected = true;
          break;
        case AdmissionPolicy::kBlockWithDeadline: {
          const auto deadline = request.submitted + config_.block_deadline;
          while (!shard.stop &&
                 shard.pending.size() >= config_.admission_capacity) {
            if (shard.cv_space.wait_until(lock, deadline) ==
                std::cv_status::timeout)
              break;
          }
          // A stop during the wait also rejects: the request was never
          // admitted, and rejecting beats throwing from under a blocked
          // caller mid-shutdown.
          rejected = shard.stop ||
                     shard.pending.size() >= config_.admission_capacity;
          break;
        }
        case AdmissionPolicy::kShedOldest:
          victim.emplace(std::move(shard.pending.front()));
          shard.pending.pop_front();
          shard.shed.fetch_add(1, std::memory_order_relaxed);
          break;
      }
    }
    if (!rejected) {
      shard.pending.push_back(std::move(request));
      shard.admitted.fetch_add(1, std::memory_order_relaxed);
      fetch_max(shard.max_queue_depth, shard.pending.size());
    }
  }

  const auto now = std::chrono::steady_clock::now();
  if (victim) {
    RoutedPrediction out;
    out.status = ServeStatus::kShed;
    out.shard = shard_index;
    out.total_seconds = seconds_between(victim->submitted, now);
    // A shed request was admitted (and traced); its whole life was the
    // admission wait it lost.
    victim->trace.add_span("admission_wait", victim->submitted, now);
    out.trace = std::move(victim->trace).finish(now);
    victim->promise.set_value(out);
  }
  if (rejected) {
    shard.rejected.fetch_add(1, std::memory_order_relaxed);
    RoutedPrediction out;
    out.status = ServeStatus::kRejected;
    out.shard = shard_index;
    out.total_seconds = seconds_between(request.submitted, now);
    request.promise.set_value(out);
  } else {
    shard.cv_work.notify_one();
  }
  bool stopping;
  {
    util::MutexLock lock(shard.mu);
    --shard.active_submits;
    stopping = shard.stop;
  }
  if (stopping) shard.cv_space.notify_all();  // wake a draining destructor
  return fut;
}

void ShardedEngine::drain_loop(Shard& shard, int shard_index) {
  const std::size_t limit = drain_batch_limit();
  for (;;) {
    std::vector<Pending> batch;
    {
      util::UniqueLock lock(shard.mu);
      while (!shard.stop && (shard.paused || shard.pending.empty()))
        shard.cv_work.wait(lock);
      if (shard.pending.empty()) {
        if (shard.stop) return;
        continue;  // spurious wake or pause toggled with an empty queue
      }
      const std::size_t take = std::min(shard.pending.size(), limit);
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(shard.pending.front()));
        shard.pending.pop_front();
      }
      shard.cv_space.notify_all();  // blocked submitters get the freed slots
    }

    const auto drain_start = std::chrono::steady_clock::now();
    shard.batches.fetch_add(1, std::memory_order_relaxed);
    try {
      std::vector<std::vector<double>> features;
      features.reserve(batch.size());
      for (Pending& p : batch) features.push_back(std::move(p.features));
      // Trusted entry: every row was validated at admission, so the drain
      // path skips the per-double re-validation scan.
      StageTimings timings;
      const std::vector<Prediction> preds =
          shard.engine->predict_batch_trusted(std::move(features), &timings);
      const auto done = std::chrono::steady_clock::now();

      // Registry latency series (process-wide, folded across shards);
      // handles resolve once, per-request cost is a relaxed histogram add.
      static obs::Histogram& queue_hist =
          obs::Registry::global().histogram("serve.latency.queue_seconds");
      static obs::Histogram& total_hist =
          obs::Registry::global().histogram("serve.latency.total_seconds");

      // Stage spans are batch-scoped (the stages ran once for the whole
      // batch), laid end-to-end from drain_start — same convention as the
      // socket worker's batch_spans, so in-process and rank-sharded traces
      // read the same way.
      using fsec = std::chrono::duration<double>;
      const std::pair<const char*, double> stages[] = {
          {"scale", timings.scale_seconds},     {"memo", timings.memo_seconds},
          {"cache", timings.cache_seconds},     {"simulate",
                                                 timings.simulate_seconds},
          {"kernel", timings.kernel_seconds},   {"score",
                                                 timings.score_seconds}};

      std::vector<RoutedPrediction> out(batch.size());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        out[i].status = ServeStatus::kServed;
        out[i].shard = shard_index;
        out[i].prediction = preds[i];
        out[i].queue_seconds = seconds_between(batch[i].submitted, drain_start);
        out[i].total_seconds = seconds_between(batch[i].submitted, done);
        queue_hist.observe(out[i].queue_seconds);
        total_hist.observe(out[i].total_seconds);

        obs::TraceContext& trace = batch[i].trace;
        trace.add_span("admission_wait", batch[i].submitted, drain_start);
        auto at = drain_start;
        for (const auto& [name, seconds] : stages) {
          const auto end =
              at + std::chrono::duration_cast<
                       std::chrono::steady_clock::duration>(fsec(seconds));
          trace.add_span(name, at, end);
          at = end;
        }
        out[i].trace = std::move(trace).finish(done);
      }
      if (config_.latency_window > 0) {
        util::MutexLock lock(shard.mu);
        for (const RoutedPrediction& r : out) {
          if (shard.latencies.size() < config_.latency_window)
            shard.latencies.push_back(r.total_seconds);
          else
            shard.latencies[shard.latency_next] = r.total_seconds;
          shard.latency_next =
              (shard.latency_next + 1) % config_.latency_window;
        }
      }
      // Counters land before the promises so a caller that joined on its
      // futures always observes them accounted for.
      shard.completed.fetch_add(batch.size(), std::memory_order_relaxed);
      for (std::size_t i = 0; i < batch.size(); ++i)
        batch[i].promise.set_value(out[i]);
    } catch (...) {
      shard.completed.fetch_add(batch.size(), std::memory_order_relaxed);
      const std::exception_ptr err = std::current_exception();
      for (Pending& p : batch) p.promise.set_exception(err);
    }
  }
}

void ShardedEngine::pause_draining() {
  for (auto& shard : shards_) {
    util::MutexLock lock(shard->mu);
    shard->paused = true;
  }
}

void ShardedEngine::resume_draining() {
  for (auto& shard : shards_) {
    {
      util::MutexLock lock(shard->mu);
      shard->paused = false;
    }
    shard->cv_work.notify_all();
  }
}

ShardedStats ShardedEngine::stats() const {
  ShardedStats agg;
  agg.shards.reserve(shards_.size());
  std::vector<double> pooled;
  for (const auto& shard : shards_) {
    ShardStats s;
    s.submitted = shard->submitted.load(std::memory_order_relaxed);
    s.admitted = shard->admitted.load(std::memory_order_relaxed);
    s.rejected = shard->rejected.load(std::memory_order_relaxed);
    s.shed = shard->shed.load(std::memory_order_relaxed);
    s.completed = shard->completed.load(std::memory_order_relaxed);
    s.batches = shard->batches.load(std::memory_order_relaxed);
    s.max_queue_depth = shard->max_queue_depth.load(std::memory_order_relaxed);
    std::vector<double> samples;
    {
      util::MutexLock lock(shard->mu);
      s.queue_depth = shard->pending.size();
      samples = shard->latencies;
    }
    if (!samples.empty()) {
      s.p50_drain_ms = 1e3 * quantile(samples, 0.50);
      s.p99_drain_ms = 1e3 * quantile(samples, 0.99);
    }
    s.engine = shard->engine->stats();

    agg.submitted += s.submitted;
    agg.admitted += s.admitted;
    agg.rejected += s.rejected;
    agg.shed += s.shed;
    agg.completed += s.completed;
    agg.queue_depth += s.queue_depth;
    pooled.insert(pooled.end(), samples.begin(), samples.end());
    agg.shards.push_back(std::move(s));
  }
  if (!pooled.empty()) {
    agg.p50_drain_ms = 1e3 * quantile(pooled, 0.50);
    agg.p99_drain_ms = 1e3 * quantile(pooled, 0.99);
  }
  return agg;
}

}  // namespace qkmps::serve
