#pragma once

#include <string>
#include <vector>

#include "data/preprocess.hpp"
#include "kernel/gram.hpp"
#include "mps/mps.hpp"
#include "svm/svm.hpp"

namespace qkmps::serve {

/// A self-contained, versioned model artifact: everything inference needs,
/// in one directory, and nothing more. The paper's serving assumption
/// (Sec. III-A) is that training-stage MPS stay resident so classifying a
/// new point costs one circuit simulation plus inner products; a bundle
/// persists exactly the states that assumption requires — the support
/// vectors — rather than the whole training set (the zero-alpha states
/// never enter a decision value).
///
/// On-disk layout under `dir/`:
///   bundle.qkb    manifest: magic "QKBL", version, ansatz + simulator
///                 config, fitted FeatureScaler statistics, the compacted
///                 SvcModel, and the SV provenance indices
///   sv_<i>.mps    one MPS per support vector, in mps::serialization's
///                 existing "QKMS" format, indexed by SV position
struct ModelBundle {
  kernel::QuantumKernelConfig config;
  data::FeatureScaler scaler;
  svm::SvcModel model;              ///< compacted: one entry per SV
  std::vector<idx> sv_indices;      ///< SV position -> original train index
  std::vector<mps::Mps> sv_states;  ///< resident MPS, aligned with `model`

  idx num_features() const { return config.ansatz.num_features; }
  idx num_support_vectors() const { return static_cast<idx>(sv_states.size()); }
};

/// Assembles a bundle from a full training run: compacts the model to its
/// support vectors and keeps only their states. `train_states` must be
/// aligned with the training set the model was fitted on.
ModelBundle make_bundle(const kernel::QuantumKernelConfig& config,
                        const data::FeatureScaler& scaler,
                        const svm::SvcModel& model,
                        const std::vector<mps::Mps>& train_states);

/// Writes `bundle` under `dir` (created if absent), atomically replacing
/// any previous bundle there: the new contents are staged into a sibling
/// `<dir>.tmp` directory and swapped in, so a crashed save never leaves a
/// manifest paired with mismatched state files. Refuses to replace a
/// directory that is neither empty nor an existing bundle.
void save_bundle(const ModelBundle& bundle, const std::string& dir);

/// Loads and validates a bundle; throws qkmps::Error on a missing
/// directory, wrong magic, unsupported version, or internally inconsistent
/// contents (state count/qubit count mismatches).
ModelBundle load_bundle(const std::string& dir);

}  // namespace qkmps::serve
