#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "serve/feature_key.hpp"
#include "util/error.hpp"
#include "util/sync.hpp"

namespace qkmps::serve {

/// Hit/miss/insertion/eviction counters shared by the serving-layer LRU
/// maps (StateCache, PredictionMemo). The owning map maintains them with
/// atomics, so a stats() snapshot never contends with the lookup hot
/// path; individual counters are each exact, the combination is a
/// point-in-time view.
struct LruStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t insertions = 0;

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

/// Thread-safe bounded LRU map keyed by the bit pattern of a (scaled)
/// feature vector — the one keying scheme of the serving layer (see
/// feature_key.hpp: FNV-1a over the raw bytes, memcmp equality, so two
/// keys collide only when they would produce the identical feature-map
/// circuit). StateCache instantiates it with shared_ptr<const Mps>
/// states; PredictionMemo with final decision values.
///
/// Thread safety: every member is safe to call concurrently from any
/// number of threads. find/insert/size/clear serialize on one internal
/// mutex; stats() reads only atomics and never contends with the lookup
/// hot path. Values are returned by copy (for the serving layer,
/// shared_ptr or a small PODs), so a caller never holds a reference into
/// the map and eviction can never invalidate a handed-out value.
///
/// Invariants: lru_ and index_ always hold exactly the same entries
/// (checked on eviction); size() <= capacity() after every insert; an
/// insert of an already-present key refreshes recency but never
/// duplicates — the first resident value wins, so two threads racing the
/// same miss agree on the value both end up using.
///
/// capacity == 0 disables the map: find() always misses (counted, but
/// without taking the lock) and insert() stores nothing.
template <typename Value>
class LruMap {
 public:
  explicit LruMap(std::size_t capacity) : capacity_(capacity) {}

  LruMap(const LruMap&) = delete;
  LruMap& operator=(const LruMap&) = delete;

  /// Returns the resident value for `key` (marking it most-recently-used)
  /// or nullopt on a miss. `hash` must be feature_hash(key) — hot callers
  /// hash once and reuse it across maps.
  std::optional<Value> find(const std::vector<double>& key,
                            std::uint64_t hash) {
    if (capacity_ == 0) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    util::MutexLock lock(mu_);
    const auto entry = locate(hash, key);
    if (entry == lru_.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    lru_.splice(lru_.begin(), lru_, entry);  // iterators stay valid
    hits_.fetch_add(1, std::memory_order_relaxed);
    return entry->value;
  }

  /// Inserts `value` under `key`, evicting least-recently-used entries
  /// beyond capacity, and returns the resident value: if the key is
  /// already present (e.g. two concurrent misses on the same point) the
  /// existing entry wins, is refreshed to most-recently-used, and is
  /// returned instead of `value`.
  Value insert(const std::vector<double>& key, std::uint64_t hash,
               Value value) {
    if (capacity_ == 0) return value;
    util::MutexLock lock(mu_);
    const auto existing = locate(hash, key);
    if (existing != lru_.end()) {
      lru_.splice(lru_.begin(), lru_, existing);
      return existing->value;
    }
    lru_.push_front(Entry{key, hash, value});
    index_.emplace(hash, lru_.begin());
    insertions_.fetch_add(1, std::memory_order_relaxed);
    while (lru_.size() > capacity_) {
      const auto victim = std::prev(lru_.end());
      auto [lo, hi] = index_.equal_range(victim->hash);
      bool unindexed = false;
      for (auto it = lo; it != hi; ++it) {
        if (it->second == victim) {
          index_.erase(it);
          unindexed = true;
          break;
        }
      }
      QKMPS_CHECK_MSG(unindexed, "LRU entry missing from hash index");
      lru_.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    return value;
  }

  std::size_t size() const {
    util::MutexLock lock(mu_);
    return lru_.size();
  }

  std::size_t capacity() const { return capacity_; }

  /// Lock-free snapshot of the counters (safe during concurrent
  /// find/insert traffic).
  LruStats stats() const {
    LruStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    s.insertions = insertions_.load(std::memory_order_relaxed);
    return s;
  }

  void clear() {
    util::MutexLock lock(mu_);
    lru_.clear();
    index_.clear();
  }

 private:
  struct Entry {
    std::vector<double> key;
    std::uint64_t hash = 0;  ///< feature_hash(key), kept so eviction
                             ///< never re-hashes inside the lock
    Value value;
  };
  using LruList = typename std::list<Entry>;

  /// Looks up `key` in index_; lru_.end() if absent. Caller holds mu_.
  typename LruList::iterator locate(std::uint64_t hash,
                                    const std::vector<double>& key)
      QKMPS_REQUIRES(mu_) {
    auto [lo, hi] = index_.equal_range(hash);
    for (auto it = lo; it != hi; ++it)
      if (feature_bits_equal(it->second->key, key)) return it->second;
    return lru_.end();
  }

  const std::size_t capacity_;
  mutable util::Mutex mu_;  ///< guards lru_ / index_ only; stats are atomic
  LruList lru_ QKMPS_GUARDED_BY(mu_);  ///< front = most recently used
  std::unordered_multimap<std::uint64_t, typename LruList::iterator> index_
      QKMPS_GUARDED_BY(mu_);

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> insertions_{0};
};

}  // namespace qkmps::serve
