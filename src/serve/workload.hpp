#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kernel/kernel_matrix.hpp"
#include "util/types.hpp"

/// Deterministic workload generation for the serving layer.
///
/// Thread safety: everything here is value semantics — free functions are
/// pure (all randomness flows from ScenarioConfig::seed through a local
/// Rng; no globals, no hidden state), and a materialized Scenario is
/// immutable-by-convention data that any number of threads may read
/// concurrently. Invariants: `order[r]` always indexes a valid row of
/// `unique_points`, and `arrival_us` is nondecreasing.
namespace qkmps::serve::workload {

/// Which unique point each request re-queries.
enum class KeyPattern {
  kUniform,         ///< every unique point equally likely
  kZipf,            ///< rank-Zipf hot keys: P(rank k) ~ k^-s
  kDuplicateHeavy,  ///< with probability repeat_fraction, repeat the
                    ///< previous request's point (duplicate runs)
};

/// When requests arrive, as deterministic microsecond offsets.
enum class ArrivalPattern {
  kSteady,  ///< constant inter-arrival gap
  kBurst,   ///< groups of burst_size arriving together, gaps between groups
  kRamp,    ///< inter-arrival gap shrinks linearly by ramp_factor
};

const char* to_string(KeyPattern pattern);
const char* to_string(ArrivalPattern pattern);

/// Fully describes a scenario; same config + same pool => byte-identical
/// Scenario (order, points, and arrival offsets), which is what lets the
/// tests, the bench, and CI all claim they exercised the *same* load
/// shape. All randomness flows from `seed` through the repo's xoshiro Rng.
struct ScenarioConfig {
  std::string name = "uniform";
  std::uint64_t seed = 1;
  idx num_requests = 256;
  idx num_unique = 32;  ///< distinct feature rows drawn from the pool
  KeyPattern keys = KeyPattern::kUniform;
  double zipf_exponent = 1.1;     ///< kZipf skew (larger = hotter head)
  double repeat_fraction = 0.5;   ///< kDuplicateHeavy repeat probability
  ArrivalPattern arrival = ArrivalPattern::kSteady;
  double mean_gap_us = 0.0;   ///< steady/ramp inter-arrival; 0 = back-to-back
  idx burst_size = 16;        ///< kBurst requests per burst
  double burst_gap_us = 500;  ///< kBurst gap between bursts
  double ramp_factor = 4.0;   ///< kRamp: initial gap / final gap
};

/// A materialized request stream. `order[r]` indexes `unique_points`;
/// `arrival_us[r]` is the nondecreasing arrival offset of request r.
struct Scenario {
  ScenarioConfig config;
  kernel::RealMatrix unique_points;  ///< num_unique x m raw feature rows
  std::vector<idx> order;
  std::vector<double> arrival_us;

  idx size() const { return static_cast<idx>(order.size()); }
  /// Feature vector of request r (a copy of its unique row).
  std::vector<double> request(idx r) const;
};

/// Draws cfg.num_unique rows from `pool` (deterministically per seed) and
/// materializes the request order and arrival schedule. Requires
/// pool.rows() >= cfg.num_unique.
Scenario make_scenario(const ScenarioConfig& cfg,
                       const kernel::RealMatrix& pool);

/// FNV-1a over the scenario's unique-point bits, order, and arrival bits —
/// a cheap fingerprint two processes can compare to prove they replayed
/// the identical stream byte for byte.
std::uint64_t scenario_digest(const Scenario& scenario);

/// The shared suite: one scenario per (key pattern x arrival shape) the
/// serving frontend claims to handle — uniform/steady, Zipf hot-key,
/// duplicate-heavy, uniform/burst, Zipf/ramp. Tests iterate it for the
/// metamorphic parity sweep; bench/serving_sharded.cpp replays it for
/// load numbers, so every published load shape is reproducible.
std::vector<ScenarioConfig> standard_scenarios(idx num_requests,
                                               idx num_unique,
                                               std::uint64_t seed);

}  // namespace qkmps::serve::workload
