#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kernel/kernel_matrix.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

/// Deterministic workload generation for the serving layer.
///
/// Thread safety: everything here is value semantics — free functions are
/// pure (all randomness flows from ScenarioConfig::seed through a local
/// Rng; no globals, no hidden state), and a materialized Scenario is
/// immutable-by-convention data that any number of threads may read
/// concurrently. Invariants: `order[r]` always indexes a valid row of
/// `unique_points`, and `arrival_us` is nondecreasing.
namespace qkmps::serve::workload {

/// Which unique point each request re-queries.
enum class KeyPattern {
  kUniform,         ///< every unique point equally likely
  kZipf,            ///< rank-Zipf hot keys: P(rank k) ~ k^-s
  kDuplicateHeavy,  ///< with probability repeat_fraction, repeat the
                    ///< previous request's point (duplicate runs)
};

/// When requests arrive, as deterministic microsecond offsets.
enum class ArrivalPattern {
  kSteady,  ///< constant inter-arrival gap
  kBurst,   ///< groups of burst_size arriving together, gaps between groups
  kRamp,    ///< inter-arrival gap shrinks linearly by ramp_factor
};

const char* to_string(KeyPattern pattern);
const char* to_string(ArrivalPattern pattern);

/// Fully describes a scenario; same config + same pool => byte-identical
/// Scenario (order, points, and arrival offsets), which is what lets the
/// tests, the bench, and CI all claim they exercised the *same* load
/// shape. All randomness flows from `seed` through the repo's xoshiro Rng.
struct ScenarioConfig {
  std::string name = "uniform";
  std::uint64_t seed = 1;
  idx num_requests = 256;
  idx num_unique = 32;  ///< distinct feature rows drawn from the pool
  KeyPattern keys = KeyPattern::kUniform;
  double zipf_exponent = 1.1;     ///< kZipf skew (larger = hotter head)
  double repeat_fraction = 0.5;   ///< kDuplicateHeavy repeat probability
  ArrivalPattern arrival = ArrivalPattern::kSteady;
  double mean_gap_us = 0.0;   ///< steady/ramp inter-arrival; 0 = back-to-back
  idx burst_size = 16;        ///< kBurst requests per burst
  double burst_gap_us = 500;  ///< kBurst gap between bursts
  double ramp_factor = 4.0;   ///< kRamp: initial gap / final gap
};

/// A materialized request stream. `order[r]` indexes `unique_points`;
/// `arrival_us[r]` is the nondecreasing arrival offset of request r.
struct Scenario {
  ScenarioConfig config;
  kernel::RealMatrix unique_points;  ///< num_unique x m raw feature rows
  std::vector<idx> order;
  std::vector<double> arrival_us;

  idx size() const { return static_cast<idx>(order.size()); }
  /// Feature vector of request r (a copy of its unique row).
  std::vector<double> request(idx r) const;
};

/// Pull-based request generator: the streaming form of a Scenario. Same
/// config + same pool => the byte-identical request sequence the eager
/// make_scenario materializes (order, arrival offsets, unique points, and
/// digest — pinned by tests/test_workload.cpp), but resident memory is
/// O(num_unique), independent of num_requests, so the soak harness can
/// drive millions of requests through an engine without an O(N) order or
/// arrival vector ever existing.
///
/// Thread safety: a Stream is single-consumer mutable state (next()
/// advances the generator); unique_points() is immutable after
/// construction and may be read concurrently with next().
class Stream {
 public:
  /// One generated request: `unique` indexes unique_points(), and
  /// `arrival_us` is the nondecreasing arrival offset of request
  /// `request` (the 0-based position in the stream).
  struct Item {
    idx request = 0;
    idx unique = 0;
    double arrival_us = 0.0;
  };

  /// Draws cfg.num_unique rows from `pool` exactly as make_scenario does
  /// (same Rng consumption, so the rest of the stream replays the eager
  /// generator bit for bit). Requires pool.rows() >= cfg.num_unique.
  Stream(const ScenarioConfig& cfg, const kernel::RealMatrix& pool);

  /// Emits the next request; false once num_requests have been emitted.
  bool next(Item& out);

  idx emitted() const { return emitted_; }
  idx size() const { return config_.num_requests; }
  bool exhausted() const { return emitted_ == config_.num_requests; }

  const ScenarioConfig& config() const { return config_; }
  const kernel::RealMatrix& unique_points() const { return unique_points_; }
  /// Feature vector of unique point `unique` (a copy of its row).
  std::vector<double> request(idx unique) const;

  /// The stream's fingerprint — bitwise-equal to scenario_digest() of the
  /// equivalent eager Scenario. Only defined once the stream is
  /// exhausted (throws before that): order bytes fold incrementally as
  /// requests are emitted, and the arrival bytes (a pure function of the
  /// config, no randomness) are folded on demand in O(1) memory.
  std::uint64_t digest() const;

 private:
  idx next_unique();

  ScenarioConfig config_;
  kernel::RealMatrix unique_points_;
  Rng rng_;
  std::vector<double> zipf_cdf_;  ///< kZipf only
  idx emitted_ = 0;
  idx prev_unique_ = 0;     ///< kDuplicateHeavy run state
  double ramp_t_ = 0.0;     ///< kRamp running arrival offset
  std::uint64_t order_hash_ = 0;  ///< unique-point hash folded with order
  mutable std::uint64_t digest_ = 0;
  mutable bool digest_cached_ = false;
};

/// Draws cfg.num_unique rows from `pool` (deterministically per seed) and
/// materializes the request order and arrival schedule. A thin wrapper
/// that drains a workload::Stream — kept for the CI-scale tests and
/// benches where random access into the order is convenient. Requires
/// pool.rows() >= cfg.num_unique.
Scenario make_scenario(const ScenarioConfig& cfg,
                       const kernel::RealMatrix& pool);

/// FNV-1a over the scenario's unique-point bits, order, and arrival bits —
/// a cheap fingerprint two processes can compare to prove they replayed
/// the identical stream byte for byte.
std::uint64_t scenario_digest(const Scenario& scenario);

/// The shared suite: one scenario per (key pattern x arrival shape) the
/// serving frontend claims to handle — uniform/steady, Zipf hot-key,
/// duplicate-heavy, uniform/burst, Zipf/ramp. Tests iterate it for the
/// metamorphic parity sweep; bench/serving_sharded.cpp replays it for
/// load numbers, so every published load shape is reproducible.
std::vector<ScenarioConfig> standard_scenarios(idx num_requests,
                                               idx num_unique,
                                               std::uint64_t seed);

}  // namespace qkmps::serve::workload
