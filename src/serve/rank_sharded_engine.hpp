#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "parallel/rank_runtime.hpp"
#include "serve/inference_engine.hpp"
#include "serve/model_bundle.hpp"
#include "serve/router.hpp"
#include "serve/sharded_engine.hpp"

namespace qkmps::serve {

/// Wire protocol of the rank-distributed serving frontend. Everything the
/// router rank and the shard ranks exchange travels as one of these two
/// typed Comm messages — no shared queues, no shared locks — so the shard
/// boundary is already a transport boundary: a socket layer replacing
/// parallel::Comm only has to serialize these structs (see DESIGN.md,
/// "From ranks to processes").

/// Router -> shard. A request envelope carries the raw (pre-scaling)
/// feature vector, validated once at submit(); control kinds carry no
/// payload.
struct ShardEnvelope {
  enum class Kind : std::uint8_t {
    kRequest,   ///< score `features`, reply kPrediction with the same id
    kDrain,     ///< flush any gathered batch now (maintenance barrier)
    kShutdown,  ///< finish in-hand work, reply kStopped, exit the rank
  };
  Kind kind = Kind::kRequest;
  std::uint64_t id = 0;  ///< router-assigned, unique per engine incarnation
  std::vector<double> features;
};

/// Shard -> router.
struct ShardReply {
  enum class Kind : std::uint8_t {
    kPrediction,  ///< `prediction` is valid for request `id`
    kFailed,      ///< the batch containing `id` threw; `error` explains
    kDrained,     ///< ack of kDrain
    kStopped,     ///< ack of kShutdown; the shard rank has exited its loop
  };
  Kind kind = Kind::kPrediction;
  std::uint64_t id = 0;
  Prediction prediction;
  std::string error;
};

struct RankShardedEngineConfig {
  /// Worker shards (ranks 1..num_shards). Rank 0 is the router, so the
  /// underlying RankRuntime always runs num_shards + 1 ranks.
  std::size_t num_shards = 2;
  /// Per-shard engine knobs; num_threads == 0 divides hardware threads
  /// across shards exactly as in ShardedEngine.
  EngineConfig engine;
  /// Key->shard assignment. Defaults to the consistent-hash ring because
  /// this engine supports add_shard(): growth only remigrates ~1/(N+1) of
  /// keys, so the per-shard StateCaches stay warm across a resize.
  RouterConfig router{RouterKind::kConsistentHash, 64};
  /// Bound on requests queued at the router (admission control). When
  /// full, submit() resolves the new future kRejected immediately —
  /// reject-new semantics; the blocking/shedding policies of
  /// ShardedEngine belong to the in-process frontend where the submitter
  /// and the queue share an address space.
  std::size_t ingress_capacity = 1024;
  /// Per shard-drain batch bound; 0 = engine.max_batch.
  std::size_t drain_max_batch = 0;
  /// How long the idle router sleeps between ingress/reply polls. Lower =
  /// less added latency, more wakeups; the default adds at most ~0.1 ms.
  std::chrono::microseconds router_poll{100};
};

/// Per-shard snapshot: router-side routing counters plus the shard
/// engine's own counters (cache, memo, circuits).
struct RankShardStats {
  std::uint64_t routed = 0;  ///< envelopes the router sent this shard
  std::uint64_t served = 0;  ///< predictions this shard replied
  EngineStats engine;
};

/// Aggregate snapshot. Invariant (once traffic settles): submitted ==
/// admitted + rejected and admitted == completed.
struct RankShardedStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t resizes = 0;  ///< add_shard() calls served so far
  std::vector<RankShardStats> shards;
};

/// Rank-distributed sharded serving frontend: the shard boundary of
/// ShardedEngine lifted onto parallel::RankRuntime, per the ROADMAP's
/// multi-process sharding step.
///
///   caller threads ── submit() ─► [ingress queue]
///                                      │ rank 0 (router):
///                                      │   route = Router(feature_hash)
///                                      ▼   forward / poll replies
///        rank 1 ◄── ShardEnvelope ── Comm ── ShardEnvelope ──► rank N
///     InferenceEngine                 ▲               InferenceEngine
///        └───────── ShardReply ───────┴──── ShardReply ─────────┘
///
/// Rank 0 is the router: it pulls submitted requests off the ingress
/// queue, assigns ids, routes by feature-bit hash through the configured
/// Router, forwards request envelopes, and multiplexes the shards' reply
/// channels with Comm::try_recv. Ranks 1..N each own an InferenceEngine
/// (with its StateCache and memo) and run a gather->predict->reply loop:
/// block on the first envelope, opportunistically try_recv more up to the
/// drain batch bound, score through the engine, reply per request. The
/// only cross-thread state is the typed Comm channels plus the ingress
/// queue — which is exactly the boundary a socket transport replaces.
///
/// Elasticity: add_shard() drains in-flight work, stops the rank loops,
/// adds one InferenceEngine and one router ring point set, and restarts
/// with num_shards + 1 worker ranks. The existing shard engines — and
/// their StateCaches/memos — survive the resize; with the default
/// consistent-hash router only ~1/(N+1) of keys remigrate, so hot caches
/// stay hot (tests/test_rank_sharded_engine.cpp pins the retention).
/// Requests submitted during a resize simply wait in the ingress queue
/// for the new topology.
///
/// Determinism contract: identical to ShardedEngine's — routing,
/// batching, and transport are scheduling decisions only; every served
/// prediction is bitwise-identical to the sequential simulate_states +
/// decision_values pipeline regardless of rank count, batch composition,
/// arrival order, or resize history.
///
/// Thread safety: submit(), shard_for(), and stats() are safe from any
/// number of threads. add_shard() serializes against itself and the
/// destructor, and may run concurrently with submitters (their requests
/// queue across the restart); it must not race the destructor.
///
/// Shutdown contract: the destructor stops admission (later submits
/// throw), serves every request already admitted to the ingress queue or
/// in flight, shuts the shard ranks down with control envelopes, and
/// joins — no future is ever dropped.
class RankShardedEngine {
 public:
  explicit RankShardedEngine(ModelBundle bundle,
                             RankShardedEngineConfig config = {});
  RankShardedEngine(std::shared_ptr<const ModelBundle> bundle,
                    RankShardedEngineConfig config);
  ~RankShardedEngine();

  RankShardedEngine(const RankShardedEngine&) = delete;
  RankShardedEngine& operator=(const RankShardedEngine&) = delete;

  /// Validates, applies ingress admission, and returns a future that
  /// always resolves (kServed or kRejected; this frontend never sheds).
  /// Throws immediately on a malformed feature vector, or on submit
  /// after the destructor began.
  std::future<RoutedPrediction> submit(std::vector<double> features);

  /// The shard `features` routes to under the current topology (pure
  /// function of the feature bits and the shard count).
  int shard_for(const std::vector<double>& features) const;

  /// Grows the shard set by one rank: drains, extends engines + router,
  /// restarts. Existing shards keep their caches. Blocks until the new
  /// topology is serving.
  void add_shard();

  RankShardedStats stats() const;
  std::size_t num_shards() const;
  const RankShardedEngineConfig& config() const { return config_; }
  const ModelBundle& bundle() const { return *bundle_; }

 private:
  struct Ingress {
    std::vector<double> features;
    std::promise<RoutedPrediction> promise;
    std::chrono::steady_clock::time_point submitted;
  };

  /// Router-side per-shard counters; engine stats live in the engines.
  struct ShardState {
    std::atomic<std::uint64_t> routed{0};
    std::atomic<std::uint64_t> served{0};
  };

  void start_runtime();
  /// Sets drain mode (and optionally the terminal stop flag), wakes the
  /// router, joins the runtime thread. After return no rank is running.
  void stop_runtime(bool final_stop);
  void router_body(parallel::Comm& comm);
  void shard_body(parallel::Comm& comm, std::size_t shard_index);
  std::size_t drain_batch_limit() const;

  const std::shared_ptr<const ModelBundle> bundle_;
  const RankShardedEngineConfig config_;

  /// Topology (router_, engines_, shard_state_) mutates only between
  /// stop_runtime()/start_runtime() pairs under lifecycle_mu_.
  mutable std::mutex lifecycle_mu_;
  std::unique_ptr<Router> router_;
  std::vector<std::unique_ptr<InferenceEngine>> engines_;
  std::vector<std::unique_ptr<ShardState>> shard_state_;

  mutable std::mutex mu_;  ///< guards ingress_, draining_, stopped_
  std::condition_variable cv_ingress_;
  std::deque<Ingress> ingress_;
  bool draining_ = false;  ///< router: finish outstanding work and return
  bool stopped_ = false;   ///< terminal: submit() throws from now on

  std::unique_ptr<parallel::RankRuntime> runtime_;
  std::thread runtime_thread_;
  std::exception_ptr runtime_error_;  ///< first rank-body escapee, if any

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> resizes_{0};
  std::uint64_t next_id_ = 0;  ///< router-thread-only
};

}  // namespace qkmps::serve
