#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "util/sync.hpp"

#include "obs/flight_recorder.hpp"
#include "parallel/rank_runtime.hpp"
#include "parallel/socket_transport.hpp"
#include "parallel/transport.hpp"
#include "serve/inference_engine.hpp"
#include "serve/model_bundle.hpp"
#include "serve/router.hpp"
#include "serve/shard_wire.hpp"
#include "serve/sharded_engine.hpp"

namespace qkmps::serve {

/// Which transport carries the ShardEnvelope/ShardReply protocol between
/// the router and its shards (see shard_wire.hpp for the messages and
/// DESIGN.md §1 for the substitution story).
enum class TransportKind : std::uint8_t {
  /// Shard ranks on parallel::RankRuntime threads, messages over
  /// CommTransport — everything in-process. Supports add_shard().
  kInProcess,
  /// Shard worker processes (the serving_rankd binary in tools/),
  /// spawned by the engine and connected over SocketTransport. The
  /// protocol bytes are identical to kInProcess; only the carrier and
  /// the failure model change (a worker can die — see the shed-on-death
  /// semantics below).
  kSocket,
};

const char* to_string(TransportKind kind);

/// Socket-mode deployment knobs.
struct SocketTransportConfig {
  /// The shard worker executable (tools/serving_rankd.cpp). Required.
  std::string worker_path;
  /// Directory the engine saves its bundle to and workers load it from
  /// (save_bundle is atomic, so a half-written handoff cannot be
  /// observed). Required.
  std::string bundle_dir;
  /// "unix:<path>" or "tcp:<ip>:<port>"; empty picks a fresh Unix-domain
  /// socket under /tmp.
  std::string listen_address;
  /// Bound on spawn -> connect -> handshake per worker; a worker that
  /// cannot connect and handshake in time fails construction loudly.
  std::chrono::milliseconds connect_timeout{15000};
  /// Extra argv entries appended to every worker spawn — the test hook
  /// that lets the suites simulate crashing workers (--die-after=N).
  std::vector<std::string> worker_extra_args;
  /// Self-healing: when a worker's link dies mid-serve, the router
  /// respawns a replacement (next generation of the same shard slot,
  /// same ring weight, so routing is undisturbed and the handshake can
  /// refuse stragglers from the dead generation). In-flight and
  /// interim requests still shed — the respawn restores capacity, it
  /// never silently retries work.
  bool respawn = true;
  /// Consecutive failed respawn attempts before the slot is permanently
  /// demoted (it keeps shedding, stats report it `demoted`).
  std::size_t max_respawn_attempts = 3;
  /// First retry delay after a death; doubles per failed attempt.
  std::chrono::milliseconds respawn_backoff{200};
  /// Ceiling on the doubling.
  std::chrono::milliseconds respawn_backoff_max{5000};
};

struct RankShardedEngineConfig {
  /// Worker shards. In-process: ranks 1..num_shards with rank 0 the
  /// router, so the underlying RankRuntime runs num_shards + 1 ranks.
  /// Socket: num_shards spawned worker processes.
  std::size_t num_shards = 2;
  /// Per-shard engine knobs; num_threads == 0 divides hardware threads
  /// across the shards exactly as in ShardedEngine — including socket
  /// workers, which are handed their lane count on the command line (the
  /// processes share this host, so full-width pools would oversubscribe
  /// it N-fold).
  EngineConfig engine;
  /// Key->shard assignment. Defaults to the consistent-hash ring because
  /// this engine supports add_shard(): growth only remigrates ~1/(N+1) of
  /// keys, so the per-shard StateCaches stay warm across a resize.
  RouterConfig router{RouterKind::kConsistentHash, 64};
  /// Bound on requests queued at the router (admission control). When
  /// full, submit() resolves the new future kRejected immediately —
  /// reject-new semantics; the blocking/shedding policies of
  /// ShardedEngine belong to the in-process frontend where the submitter
  /// and the queue share an address space.
  std::size_t ingress_capacity = 1024;
  /// Per shard-drain batch bound; 0 = engine.max_batch.
  std::size_t drain_max_batch = 0;
  /// How long the idle router sleeps between ingress/reply polls. Lower =
  /// less added latency, more wakeups; the default adds at most ~0.1 ms.
  std::chrono::microseconds router_poll{100};
  /// Transport selection + socket-mode knobs.
  TransportKind transport = TransportKind::kInProcess;
  SocketTransportConfig socket;
  /// Ring weights of the initial fleet (heterogeneous shards: a worker
  /// with twice the --threads budget can carry twice the ring share).
  /// Empty = uniform 1.0. Otherwise must have num_shards entries, all
  /// positive; non-uniform weights require the consistent-hash router.
  std::vector<double> shard_weights;
  /// Flight-recorder ring sizes (obs/flight_recorder.hpp): recent trace
  /// summaries and fleet lifecycle events kept for postmortems.
  std::size_t flight_trace_capacity = 256;
  std::size_t flight_event_capacity = 512;
  /// When non-empty, the recorder dumps its JSON here on every worker
  /// demotion and again at destruction (the rings are cumulative, so the
  /// later dump supersedes the earlier one — but the demotion-time dump
  /// survives even if the process never reaches a clean shutdown).
  std::string flight_dump_path;
};

/// Per-shard snapshot: router-side routing counters plus the shard
/// engine's own counters (cache, memo, circuits). In socket mode the
/// engine counters are fetched over the wire (kStats flow) and are zeros
/// for a dead worker.
struct RankShardStats {
  std::uint64_t routed = 0;  ///< envelopes the router sent this shard
  std::uint64_t served = 0;  ///< predictions this shard replied
  bool alive = true;         ///< false once the worker's link died
  bool removed = false;      ///< drained out of the topology by remove_shard
  bool demoted = false;      ///< respawn budget exhausted; permanently dead
  std::uint64_t respawns = 0;    ///< successful self-heals of this slot
  std::uint64_t generation = 0;  ///< current spawn generation (0 = initial)
  double weight = 1.0;           ///< consistent-hash ring weight
  EngineStats engine;
};

/// Aggregate snapshot. Invariant (once traffic settles): submitted ==
/// admitted + rejected and admitted == completed + shed — shed counts
/// requests lost to a dead worker (socket mode only; the in-process
/// transport cannot lose a shard).
struct RankShardedStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t resizes = 0;  ///< add_shard() + remove_shard() calls served
  std::vector<RankShardStats> shards;
};

/// Rank-distributed sharded serving frontend: the shard boundary of
/// ShardedEngine lifted onto a parallel::Transport, per the ROADMAP's
/// socket-transport step.
///
///   caller threads ── submit() ─► [ingress queue]
///                                      │ router thread:
///                                      │   route = Router(feature_hash)
///                                      ▼   forward / poll replies
///      shard 0 ◄── ShardEnvelope ── Transport ── ShardEnvelope ──► shard N-1
///   InferenceEngine                    ▲                  InferenceEngine
///      └────────── ShardReply ─────────┴───── ShardReply ──────────┘
///
/// The router pulls submitted requests off the ingress queue, assigns
/// ids, routes by feature-bit hash through the configured Router,
/// forwards request envelopes, and multiplexes the shards' reply links
/// with try_recv. Each shard owns an InferenceEngine (with its
/// StateCache and memo) and runs the shared gather->predict->reply loop
/// (serve::run_shard_worker): block on the first envelope,
/// opportunistically try_recv more up to the drain batch bound, score
/// through the engine, reply per request. The only state crossing the
/// shard boundary is protocol bytes — which is what lets the transport
/// be swapped:
///
///  - kInProcess: shards are RankRuntime ranks, links are CommTransport
///    over typed channels. Behaviourally identical to the pre-transport
///    engine, bit-for-bit on every served prediction.
///  - kSocket: shards are serving_rankd processes the engine spawns;
///    links are SocketTransport framed over TCP or Unix-domain sockets.
///    Construction is listen -> spawn N workers -> accept N connections
///    -> handshake each (wire-version + shard-index + model-shape
///    check, see shard_wire.hpp).
///
/// Worker-death semantics (socket mode): a dead link — worker crash,
/// kill, handshake loss mid-run — marks that shard dead and sheds with
/// status instead of hanging or poisoning the engine: every in-flight
/// request on that shard, and every later request routed to it while it
/// is down, resolves ServeStatus::kShed with RoutedPrediction::error
/// naming the cause. Other shards keep serving. Requests are
/// deliberately not re-routed: the assignment must stay a pure function
/// of (hash, topology) so client-side routing stays possible.
///
/// Self-healing (socket mode, socket.respawn): after shedding, the
/// router respawns the dead slot — reap the corpse, bump the slot's
/// generation, spawn a fresh serving_rankd with the same shard index /
/// ring weight, and handshake it in (the pinned generation refuses any
/// straggler from the dead spawn). Ring points never move, so the
/// respawned worker inherits exactly the keyspace its predecessor owned.
/// Failed attempts back off exponentially (socket.respawn_backoff,
/// doubling to respawn_backoff_max); socket.max_respawn_attempts
/// consecutive failures demote the slot permanently — it sheds forever
/// and stats() reports it `demoted`. Every future owed at any point in
/// this state machine resolves; none ride the respawn.
///
/// Elasticity — both transports:
///  - add_shard(weight): in-process, drains in-flight work, stops the
///    rank loops, adds one InferenceEngine and one router ring point
///    set, and restarts with one more rank. Over socket, no restart at
///    all: the router spawns + handshakes one more serving_rankd and
///    extends the ring while the survivors keep serving — their caches
///    live in their own processes and are never touched.
///  - remove_shard(i): hands i's ring keys to the clockwise survivors
///    (no survivor key moves), drains i's in-flight envelopes, then
///    shutdown-handshakes and (socket) reaps it. Shard ids are never
///    reused: the slot stays, marked `removed`, so assignments remain a
///    pure function of (hash, topology-history).
/// The existing shard engines — and their StateCaches/memos — survive
/// every resize; with the consistent-hash router growth remigrates only
/// ~1/(N+1) of keys, so hot caches stay hot
/// (tests/test_rank_sharded_engine.cpp pins the retention). Requests
/// submitted during a resize simply wait in the ingress queue for the
/// new topology.
///
/// Determinism contract: identical to ShardedEngine's — routing,
/// batching, and transport are scheduling decisions only; every served
/// prediction is bitwise-identical to the sequential simulate_states +
/// decision_values pipeline regardless of shard count, transport, batch
/// composition, arrival order, or resize history.
///
/// Thread safety: submit(), shard_for(), num_shards(), worker_pid(),
/// and stats() are safe from any number of threads. add_shard() and
/// remove_shard() serialize against each other and the destructor
/// (lifecycle_mu_), and may run concurrently with submitters. In socket
/// mode the router thread is the single writer of the live topology
/// (links, ring, shard slots); external readers synchronize through
/// topology_mu_, never through the router — so a resize can make
/// progress while stats()/shard_for() callers come and go.
///
/// Shutdown contract: the destructor stops admission (later submits
/// throw), serves every request already admitted to the ingress queue or
/// in flight (shedding those owed to dead workers), shuts the shards
/// down with control envelopes, joins the router, and reaps worker
/// processes — no future is ever dropped.
class RankShardedEngine {
 public:
  explicit RankShardedEngine(ModelBundle bundle,
                             RankShardedEngineConfig config = {});
  RankShardedEngine(std::shared_ptr<const ModelBundle> bundle,
                    RankShardedEngineConfig config);
  ~RankShardedEngine();

  RankShardedEngine(const RankShardedEngine&) = delete;
  RankShardedEngine& operator=(const RankShardedEngine&) = delete;

  /// Validates, applies ingress admission, and returns a future that
  /// always resolves: kServed or kRejected, plus kShed when the routed
  /// shard's worker died (socket mode). Throws immediately on a
  /// malformed feature vector, or on submit after the destructor began.
  std::future<RoutedPrediction> submit(std::vector<double> features);

  /// The shard `features` routes to under the current topology (pure
  /// function of the feature bits and the shard count).
  int shard_for(const std::vector<double>& features) const;

  /// Grows the shard set by one shard of ring weight `weight`.
  /// In-process: drains, extends engines + router, restarts the ranks.
  /// Socket: spawns + handshakes one more serving_rankd while the
  /// surviving workers keep serving — no restart, no cache disturbance.
  /// Blocks until the new topology is serving. Non-1.0 weights require
  /// the consistent-hash router.
  void add_shard(double weight = 1.0);

  /// Shrinks the fleet: hands shard `shard`'s ring keys to the
  /// clockwise survivors, drains its in-flight envelopes, shutdown-
  /// handshakes it, and (socket) reaps the worker process. The id is
  /// never reused — the slot stays, reported `removed` by stats(), and
  /// num_shards() keeps counting it. Throws when `shard` is out of
  /// range, already removed, or the last shard standing. Blocks until
  /// the handoff is complete.
  void remove_shard(std::size_t shard);

  /// Socket mode: the pid of the worker currently serving shard
  /// `shard`, or -1 when there is none (in-process transport, removed
  /// slot, dead worker awaiting respawn, demoted slot, or engine
  /// stopped). Test/ops hook — it is inherently racy against respawn.
  long worker_pid(std::size_t shard) const;

  RankShardedStats stats() const;
  std::size_t num_shards() const;
  const RankShardedEngineConfig& config() const { return config_; }
  const ModelBundle& bundle() const { return *bundle_; }

  /// The engine's flight recorder: recent stitched traces plus the fleet
  /// lifecycle event log (spawn/death/shed/respawn/demotion/...). All
  /// reader methods are safe during traffic; dump_to_file writes the
  /// postmortem JSON on demand.
  const obs::FlightRecorder& flight_recorder() const { return flight_; }

 private:
  struct Ingress {
    std::vector<double> features;
    std::promise<RoutedPrediction> promise;
    std::chrono::steady_clock::time_point submitted;
    /// Begun at submit() (epoch == submitted); the router appends its
    /// spans, stitches the worker's in, and finishes it into
    /// RoutedPrediction::trace.
    obs::TraceContext trace;
  };

  /// Router-side per-shard slot: routing counters, liveness, and the
  /// respawn state machine. Atomics are the cross-thread surface
  /// (stats() snapshots them); the trailing plain fields belong to
  /// whoever is allowed to mutate topology at that moment (the router
  /// thread in socket mode, the resize caller between runtimes
  /// otherwise).
  struct ShardState {
    std::atomic<std::uint64_t> routed{0};
    std::atomic<std::uint64_t> served{0};
    std::atomic<bool> alive{true};
    std::atomic<bool> removed{false};
    std::atomic<bool> demoted{false};
    std::atomic<std::uint64_t> respawns{0};
    std::atomic<std::uint64_t> generation{0};
    /// weight and threads are immutable after the slot is published into
    /// shard_state_ (set before the locked push_back), so readers need no
    /// lock beyond the one that found the slot.
    double weight = 1.0;
    std::size_t threads = 0;  ///< lane budget handed to socket workers
    /// Respawn bookkeeping (router-thread-only, socket mode).
    std::size_t respawn_attempts = 0;
    std::chrono::milliseconds respawn_delay{0};
    std::chrono::steady_clock::time_point next_respawn{};
  };

  /// add_shard()/remove_shard() -> router handoff (socket mode): the
  /// router is the single topology writer, so resizes execute on its
  /// thread between routing iterations.
  struct TopologyCommand {
    enum class Op : std::uint8_t { kAdd, kRemove };
    Op op = Op::kAdd;
    std::size_t shard = 0;  ///< kRemove target
    double weight = 1.0;    ///< kAdd ring weight
    std::promise<void> done;
  };

  void start_runtime();
  void start_socket_runtime();
  /// Sets drain mode (and optionally the terminal stop flag), wakes the
  /// router, joins the runtime thread, and (socket mode) closes links
  /// and reaps workers. After return no shard loop is running.
  void stop_runtime(bool final_stop);
  /// The transport-generic router loop: one Transport per shard, taken
  /// by value because socket-mode resizes grow it in place. Runs on
  /// rank 0 (in-process) or the engine's router thread (socket).
  void router_loop(std::vector<parallel::Transport*> links);
  /// Command line for one serving_rankd spawn (socket mode).
  std::vector<std::string> worker_args(std::size_t shard, std::size_t threads,
                                       double weight,
                                       std::uint64_t generation) const;
  /// Socket mode: snapshot every live worker's EngineStats over the
  /// kStats flow. Called by stats() via the stats_requests_ queue the
  /// router services between iterations.
  std::vector<EngineStats> fetch_remote_stats() const;
  std::size_t drain_batch_limit() const;

  const std::shared_ptr<const ModelBundle> bundle_;
  const RankShardedEngineConfig config_;
  /// Declared after config_ (ring capacities come from it); internally
  /// synchronized, so recording needs no engine lock.
  obs::FlightRecorder flight_;

  /// Serializes public lifecycle ops (add_shard, remove_shard, dtor)
  /// against each other. Never taken by the router thread — a resize
  /// caller holds it while *waiting on* the router, so the router
  /// taking it would deadlock.
  mutable util::Mutex lifecycle_mu_;
  /// Guards the topology containers (router_, engines_, the
  /// shard_state_/links_/worker_pids_ vectors). The router thread is
  /// still the only *writer* in socket mode (the resize caller between
  /// runtimes otherwise), but every access — including the router's own
  /// pointer-grab reads — now takes the lock, so the discipline is
  /// machine-checked instead of commented. Held for pointer-swap
  /// moments only, never across a drain or a spawn; ShardState objects
  /// themselves are stable once published (unique_ptr slots are never
  /// erased), so holders of a ShardState* drop the lock before touching
  /// its atomics.
  mutable util::Mutex topology_mu_;
  std::unique_ptr<Router> router_ QKMPS_GUARDED_BY(topology_mu_);
  /// In-process transport only; socket-mode engines live in the worker
  /// processes. A removed in-process shard's slot holds nullptr.
  std::vector<std::unique_ptr<InferenceEngine>> engines_
      QKMPS_GUARDED_BY(topology_mu_);
  std::vector<std::unique_ptr<ShardState>> shard_state_
      QKMPS_GUARDED_BY(topology_mu_);

  mutable util::Mutex mu_;  ///< guards ingress_, request queues, flags
  mutable util::CondVar cv_ingress_;
  std::deque<Ingress> ingress_ QKMPS_GUARDED_BY(mu_);
  /// stats() -> router handoff (socket mode): the router answers each
  /// with a kStats sweep of the live workers.
  mutable std::deque<std::promise<std::vector<EngineStats>>> stats_requests_
      QKMPS_GUARDED_BY(mu_);
  /// add/remove_shard -> router handoff (socket mode).
  std::deque<TopologyCommand> topology_requests_ QKMPS_GUARDED_BY(mu_);
  /// Router: finish outstanding work and return.
  bool draining_ QKMPS_GUARDED_BY(mu_) = false;
  /// Terminal: submit() throws from now on.
  bool stopped_ QKMPS_GUARDED_BY(mu_) = false;

  std::unique_ptr<parallel::RankRuntime> runtime_;  ///< in-process mode
  /// Socket mode: the listener stays open for the engine's life and is
  /// touched only by the router thread (accepts) and by stop_runtime
  /// after that thread is joined — single-owner by construction.
  std::unique_ptr<parallel::SocketListener> listener_;
  /// One link and one spawned pid per shard slot (socket mode).
  std::vector<std::unique_ptr<parallel::SocketTransport>> links_
      QKMPS_GUARDED_BY(topology_mu_);
  std::vector<long> worker_pids_ QKMPS_GUARDED_BY(topology_mu_);
  std::thread runtime_thread_;
  /// First rank-body escapee, if any.
  std::exception_ptr runtime_error_ QKMPS_GUARDED_BY(mu_);

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> resizes_{0};
  std::uint64_t next_id_ = 0;  ///< router-thread-only
};

}  // namespace qkmps::serve
