#include "serve/shard_wire.hpp"

#include <sstream>

#include "util/binary_io.hpp"
#include "util/error.hpp"

namespace qkmps::serve {

namespace {

/// Hello/welcome payloads open with their own magic so a stray frame
/// (or a non-handshake message) can't be mistaken for a handshake.
constexpr std::uint32_t kHelloMagic = 0x53484B51u;    // "QKHS"
constexpr std::uint32_t kWelcomeMagic = 0x57484B51u;  // "QKHW"

std::vector<std::uint8_t> take_bytes(const std::ostringstream& os) {
  const std::string s = os.str();
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

/// Wraps untrusted payload bytes in a stream plus the byte budget the
/// vector reads must respect. An istringstream is seekable, but the
/// budget is what actually bounds a hostile length prefix: it caps the
/// allocation at the payload size *before* any vector is constructed.
struct PayloadReader {
  explicit PayloadReader(const std::vector<std::uint8_t>& payload)
      : is(std::string(payload.begin(), payload.end())),
        budget(payload.size()) {}

  template <typename T>
  T pod() {
    return io::read_pod<T>(is);
  }

  template <typename T>
  std::vector<T> vec() {
    return io::read_vector<T>(is, budget);
  }

  std::string str() {
    const std::vector<char> chars = vec<char>();
    return std::string(chars.begin(), chars.end());
  }

  /// Every decoder ends with this: payload bytes beyond the message are
  /// a framing bug or an attack, not slack to ignore.
  void expect_exhausted(const char* what) {
    QKMPS_CHECK_MSG(exhausted(), "trailing bytes after " << what);
  }

  /// True when the payload has no bytes left — how the v3 decoders
  /// detect a v2-length payload (the v3 tail is strictly appended, so
  /// "exhausted exactly at the v2 boundary" identifies the old schema).
  bool exhausted() {
    return is.peek() == std::istringstream::traits_type::eof();
  }

  std::istringstream is;
  std::uint64_t budget;
};

void write_string(std::ostream& os, const std::string& s) {
  io::write_vector(os, std::vector<char>(s.begin(), s.end()));
}

void write_lru_stats(std::ostream& os, const LruStats& s) {
  io::write_pod(os, s.hits);
  io::write_pod(os, s.misses);
  io::write_pod(os, s.evictions);
  io::write_pod(os, s.insertions);
}

LruStats read_lru_stats(PayloadReader& r) {
  LruStats s;
  s.hits = r.pod<std::uint64_t>();
  s.misses = r.pod<std::uint64_t>();
  s.evictions = r.pod<std::uint64_t>();
  s.insertions = r.pod<std::uint64_t>();
  return s;
}

}  // namespace

// ---------------------------------------------------------------------
// Envelope: u8 kind | u64 id | vec<double> features | u64 trace_id (v3).

std::vector<std::uint8_t> encode_envelope(const ShardEnvelope& envelope) {
  std::ostringstream os;
  io::write_pod(os, static_cast<std::uint8_t>(envelope.kind));
  io::write_pod(os, envelope.id);
  io::write_vector(os, envelope.features);
  io::write_pod(os, envelope.trace_id);
  return take_bytes(os);
}

ShardEnvelope decode_envelope(const std::vector<std::uint8_t>& payload) {
  PayloadReader r(payload);
  ShardEnvelope envelope;
  const auto kind = r.pod<std::uint8_t>();
  QKMPS_CHECK_MSG(
      kind <= static_cast<std::uint8_t>(ShardEnvelope::Kind::kStats),
      "unknown envelope kind byte " << static_cast<int>(kind));
  envelope.kind = static_cast<ShardEnvelope::Kind>(kind);
  envelope.id = r.pod<std::uint64_t>();
  envelope.features = r.vec<double>();
  // A payload that ends exactly here is a v2 envelope: the trace tail
  // defaults to "untraced". Anything between the v2 boundary and a full
  // v3 tail is truncation and throws on the pod read below.
  if (!r.exhausted()) envelope.trace_id = r.pod<std::uint64_t>();
  r.expect_exhausted("envelope");
  return envelope;
}

// ---------------------------------------------------------------------
// Reply: u8 kind | u64 id | prediction | error string | engine stats
//        | u64 trace_id | u64 span_count | spans (v3).
// Each span: vec<char> name | u8 origin | u64 start_ns | u64 duration_ns.
// Fixed field set for every kind — a reply is ~150 bytes, and one layout
// means one decoder to torture instead of five.

std::vector<std::uint8_t> encode_reply(const ShardReply& reply) {
  std::ostringstream os;
  io::write_pod(os, static_cast<std::uint8_t>(reply.kind));
  io::write_pod(os, reply.id);
  io::write_pod(os, static_cast<std::int32_t>(reply.prediction.label));
  io::write_pod(os, reply.prediction.decision_value);
  io::write_pod(os, static_cast<std::uint8_t>(reply.prediction.cache_hit));
  io::write_pod(os, static_cast<std::uint8_t>(reply.prediction.memo_hit));
  io::write_pod(os, reply.prediction.latency_seconds);
  write_string(os, reply.error);
  io::write_pod(os, reply.stats.requests);
  io::write_pod(os, reply.stats.batches);
  io::write_pod(os, reply.stats.circuits_simulated);
  io::write_pod(os, reply.stats.max_batch_seen);
  write_lru_stats(os, reply.stats.cache);
  write_lru_stats(os, reply.stats.memo);
  io::write_pod(os, reply.trace_id);
  io::write_pod(os, static_cast<std::uint64_t>(reply.spans.size()));
  for (const obs::Span& span : reply.spans) {
    write_string(os, span.name);
    io::write_pod(os, static_cast<std::uint8_t>(span.origin));
    io::write_pod(os, span.start_ns);
    io::write_pod(os, span.duration_ns);
  }
  return take_bytes(os);
}

ShardReply decode_reply(const std::vector<std::uint8_t>& payload) {
  PayloadReader r(payload);
  ShardReply reply;
  const auto kind = r.pod<std::uint8_t>();
  QKMPS_CHECK_MSG(kind <= static_cast<std::uint8_t>(ShardReply::Kind::kStats),
                  "unknown reply kind byte " << static_cast<int>(kind));
  reply.kind = static_cast<ShardReply::Kind>(kind);
  reply.id = r.pod<std::uint64_t>();
  reply.prediction.label = r.pod<std::int32_t>();
  reply.prediction.decision_value = r.pod<double>();
  reply.prediction.cache_hit = r.pod<std::uint8_t>() != 0;
  reply.prediction.memo_hit = r.pod<std::uint8_t>() != 0;
  reply.prediction.latency_seconds = r.pod<double>();
  reply.error = r.str();
  reply.stats.requests = r.pod<std::uint64_t>();
  reply.stats.batches = r.pod<std::uint64_t>();
  reply.stats.circuits_simulated = r.pod<std::uint64_t>();
  reply.stats.max_batch_seen = r.pod<std::uint64_t>();
  reply.stats.cache = read_lru_stats(r);
  reply.stats.memo = read_lru_stats(r);
  // Exhausted exactly here: a v2 reply — untraced, no spans. A partial
  // v3 tail throws below as truncation.
  if (!r.exhausted()) {
    reply.trace_id = r.pod<std::uint64_t>();
    const std::uint64_t count = r.pod<std::uint64_t>();
    // Each span costs at least 25 payload bytes (8-byte length prefix of
    // an empty name + origin + two u64s), so the byte budget bounds a
    // hostile count before the read loop spins.
    QKMPS_CHECK_MSG(count <= r.budget / 25,
                    "hostile span count " << count << " in reply");
    reply.spans.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
      obs::Span span;
      span.name = r.str();
      const auto origin = r.pod<std::uint8_t>();
      QKMPS_CHECK_MSG(
          origin <= static_cast<std::uint8_t>(obs::SpanOrigin::kWorker),
          "unknown span origin byte " << static_cast<int>(origin));
      span.origin = static_cast<obs::SpanOrigin>(origin);
      span.start_ns = r.pod<std::uint64_t>();
      span.duration_ns = r.pod<std::uint64_t>();
      reply.spans.push_back(std::move(span));
    }
  }
  r.expect_exhausted("reply");
  return reply;
}

// ---------------------------------------------------------------------
// Handshake.

std::vector<std::uint8_t> encode_hello(const ShardHello& hello) {
  std::ostringstream os;
  io::write_pod(os, kHelloMagic);
  io::write_pod(os, hello.wire_version);
  io::write_pod(os, hello.shard_index);
  io::write_pod(os, hello.num_features);
  io::write_pod(os, hello.weight);
  io::write_pod(os, hello.generation);
  return take_bytes(os);
}

ShardHello decode_hello(const std::vector<std::uint8_t>& payload) {
  PayloadReader r(payload);
  QKMPS_CHECK_MSG(r.pod<std::uint32_t>() == kHelloMagic,
                  "not a shard hello message");
  ShardHello hello;
  hello.wire_version = r.pod<std::uint16_t>();
  hello.shard_index = r.pod<std::uint64_t>();
  hello.num_features = r.pod<std::int64_t>();
  hello.weight = r.pod<double>();
  hello.generation = r.pod<std::uint64_t>();
  r.expect_exhausted("hello");
  return hello;
}

std::vector<std::uint8_t> encode_welcome(const ShardWelcome& welcome) {
  std::ostringstream os;
  io::write_pod(os, kWelcomeMagic);
  io::write_pod(os, welcome.wire_version);
  io::write_pod(os, static_cast<std::uint8_t>(welcome.accepted));
  write_string(os, welcome.error);
  return take_bytes(os);
}

ShardWelcome decode_welcome(const std::vector<std::uint8_t>& payload) {
  PayloadReader r(payload);
  QKMPS_CHECK_MSG(r.pod<std::uint32_t>() == kWelcomeMagic,
                  "not a shard welcome message");
  ShardWelcome welcome;
  welcome.wire_version = r.pod<std::uint16_t>();
  welcome.accepted = r.pod<std::uint8_t>() != 0;
  welcome.error = r.str();
  r.expect_exhausted("welcome");
  return welcome;
}

}  // namespace qkmps::serve
