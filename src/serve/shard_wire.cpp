#include "serve/shard_wire.hpp"

#include <sstream>

#include "util/binary_io.hpp"
#include "util/error.hpp"

namespace qkmps::serve {

namespace {

/// Hello/welcome payloads open with their own magic so a stray frame
/// (or a non-handshake message) can't be mistaken for a handshake.
constexpr std::uint32_t kHelloMagic = 0x53484B51u;    // "QKHS"
constexpr std::uint32_t kWelcomeMagic = 0x57484B51u;  // "QKHW"

std::vector<std::uint8_t> take_bytes(const std::ostringstream& os) {
  const std::string s = os.str();
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

/// Wraps untrusted payload bytes in a stream plus the byte budget the
/// vector reads must respect. An istringstream is seekable, but the
/// budget is what actually bounds a hostile length prefix: it caps the
/// allocation at the payload size *before* any vector is constructed.
struct PayloadReader {
  explicit PayloadReader(const std::vector<std::uint8_t>& payload)
      : is(std::string(payload.begin(), payload.end())),
        budget(payload.size()) {}

  template <typename T>
  T pod() {
    return io::read_pod<T>(is);
  }

  template <typename T>
  std::vector<T> vec() {
    return io::read_vector<T>(is, budget);
  }

  std::string str() {
    const std::vector<char> chars = vec<char>();
    return std::string(chars.begin(), chars.end());
  }

  /// Every decoder ends with this: payload bytes beyond the message are
  /// a framing bug or an attack, not slack to ignore.
  void expect_exhausted(const char* what) {
    QKMPS_CHECK_MSG(is.peek() == std::istringstream::traits_type::eof(),
                    "trailing bytes after " << what);
  }

  std::istringstream is;
  std::uint64_t budget;
};

void write_string(std::ostream& os, const std::string& s) {
  io::write_vector(os, std::vector<char>(s.begin(), s.end()));
}

void write_lru_stats(std::ostream& os, const LruStats& s) {
  io::write_pod(os, s.hits);
  io::write_pod(os, s.misses);
  io::write_pod(os, s.evictions);
  io::write_pod(os, s.insertions);
}

LruStats read_lru_stats(PayloadReader& r) {
  LruStats s;
  s.hits = r.pod<std::uint64_t>();
  s.misses = r.pod<std::uint64_t>();
  s.evictions = r.pod<std::uint64_t>();
  s.insertions = r.pod<std::uint64_t>();
  return s;
}

}  // namespace

// ---------------------------------------------------------------------
// Envelope: u8 kind | u64 id | vec<double> features.

std::vector<std::uint8_t> encode_envelope(const ShardEnvelope& envelope) {
  std::ostringstream os;
  io::write_pod(os, static_cast<std::uint8_t>(envelope.kind));
  io::write_pod(os, envelope.id);
  io::write_vector(os, envelope.features);
  return take_bytes(os);
}

ShardEnvelope decode_envelope(const std::vector<std::uint8_t>& payload) {
  PayloadReader r(payload);
  ShardEnvelope envelope;
  const auto kind = r.pod<std::uint8_t>();
  QKMPS_CHECK_MSG(
      kind <= static_cast<std::uint8_t>(ShardEnvelope::Kind::kStats),
      "unknown envelope kind byte " << static_cast<int>(kind));
  envelope.kind = static_cast<ShardEnvelope::Kind>(kind);
  envelope.id = r.pod<std::uint64_t>();
  envelope.features = r.vec<double>();
  r.expect_exhausted("envelope");
  return envelope;
}

// ---------------------------------------------------------------------
// Reply: u8 kind | u64 id | prediction | error string | engine stats.
// Fixed field set for every kind — a reply is ~150 bytes, and one layout
// means one decoder to torture instead of five.

std::vector<std::uint8_t> encode_reply(const ShardReply& reply) {
  std::ostringstream os;
  io::write_pod(os, static_cast<std::uint8_t>(reply.kind));
  io::write_pod(os, reply.id);
  io::write_pod(os, static_cast<std::int32_t>(reply.prediction.label));
  io::write_pod(os, reply.prediction.decision_value);
  io::write_pod(os, static_cast<std::uint8_t>(reply.prediction.cache_hit));
  io::write_pod(os, static_cast<std::uint8_t>(reply.prediction.memo_hit));
  io::write_pod(os, reply.prediction.latency_seconds);
  write_string(os, reply.error);
  io::write_pod(os, reply.stats.requests);
  io::write_pod(os, reply.stats.batches);
  io::write_pod(os, reply.stats.circuits_simulated);
  io::write_pod(os, reply.stats.max_batch_seen);
  write_lru_stats(os, reply.stats.cache);
  write_lru_stats(os, reply.stats.memo);
  return take_bytes(os);
}

ShardReply decode_reply(const std::vector<std::uint8_t>& payload) {
  PayloadReader r(payload);
  ShardReply reply;
  const auto kind = r.pod<std::uint8_t>();
  QKMPS_CHECK_MSG(kind <= static_cast<std::uint8_t>(ShardReply::Kind::kStats),
                  "unknown reply kind byte " << static_cast<int>(kind));
  reply.kind = static_cast<ShardReply::Kind>(kind);
  reply.id = r.pod<std::uint64_t>();
  reply.prediction.label = r.pod<std::int32_t>();
  reply.prediction.decision_value = r.pod<double>();
  reply.prediction.cache_hit = r.pod<std::uint8_t>() != 0;
  reply.prediction.memo_hit = r.pod<std::uint8_t>() != 0;
  reply.prediction.latency_seconds = r.pod<double>();
  reply.error = r.str();
  reply.stats.requests = r.pod<std::uint64_t>();
  reply.stats.batches = r.pod<std::uint64_t>();
  reply.stats.circuits_simulated = r.pod<std::uint64_t>();
  reply.stats.max_batch_seen = r.pod<std::uint64_t>();
  reply.stats.cache = read_lru_stats(r);
  reply.stats.memo = read_lru_stats(r);
  r.expect_exhausted("reply");
  return reply;
}

// ---------------------------------------------------------------------
// Handshake.

std::vector<std::uint8_t> encode_hello(const ShardHello& hello) {
  std::ostringstream os;
  io::write_pod(os, kHelloMagic);
  io::write_pod(os, hello.wire_version);
  io::write_pod(os, hello.shard_index);
  io::write_pod(os, hello.num_features);
  io::write_pod(os, hello.weight);
  io::write_pod(os, hello.generation);
  return take_bytes(os);
}

ShardHello decode_hello(const std::vector<std::uint8_t>& payload) {
  PayloadReader r(payload);
  QKMPS_CHECK_MSG(r.pod<std::uint32_t>() == kHelloMagic,
                  "not a shard hello message");
  ShardHello hello;
  hello.wire_version = r.pod<std::uint16_t>();
  hello.shard_index = r.pod<std::uint64_t>();
  hello.num_features = r.pod<std::int64_t>();
  hello.weight = r.pod<double>();
  hello.generation = r.pod<std::uint64_t>();
  r.expect_exhausted("hello");
  return hello;
}

std::vector<std::uint8_t> encode_welcome(const ShardWelcome& welcome) {
  std::ostringstream os;
  io::write_pod(os, kWelcomeMagic);
  io::write_pod(os, welcome.wire_version);
  io::write_pod(os, static_cast<std::uint8_t>(welcome.accepted));
  write_string(os, welcome.error);
  return take_bytes(os);
}

ShardWelcome decode_welcome(const std::vector<std::uint8_t>& payload) {
  PayloadReader r(payload);
  QKMPS_CHECK_MSG(r.pod<std::uint32_t>() == kWelcomeMagic,
                  "not a shard welcome message");
  ShardWelcome welcome;
  welcome.wire_version = r.pod<std::uint16_t>();
  welcome.accepted = r.pod<std::uint8_t>() != 0;
  welcome.error = r.str();
  r.expect_exhausted("welcome");
  return welcome;
}

}  // namespace qkmps::serve
