#pragma once

#include "serve/lru_map.hpp"

namespace qkmps::serve {

/// Memoization counters; snapshot semantics as LruStats (atomic,
/// lock-free to read while lookups and insertions are in flight).
using MemoStats = LruStats;

/// The memoized payload: exactly the parts of a Prediction that are a
/// pure function of the scaled feature bits (label + decision value).
/// Latency and hit provenance are per-request and never memoized.
struct MemoizedPrediction {
  int label = 0;
  double decision_value = 0.0;
};

/// Tiny thread-safe LRU of *final* decision values, keyed by the bit
/// pattern of the scaled feature vector — the ROADMAP's decision-value
/// memoization, an LruMap instance (see lru_map.hpp). Sits in front of
/// the whole simulation path: an exact repeat of a previously scored
/// request skips scaling-downstream work entirely (no circuit
/// simulation, no StateCache traffic, no SV kernel row, no SVC
/// accumulation), returning the identical bits it returned the first
/// time. Where the StateCache amortizes the simulation of a repeated
/// *point*, the memo amortizes the entire request.
///
/// capacity == 0 disables memoization: find() always misses and insert()
/// stores nothing.
using PredictionMemo = LruMap<MemoizedPrediction>;

}  // namespace qkmps::serve
