#include "serve/inference_engine.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "circuit/ansatz.hpp"
#include "mps/inner_product.hpp"
#include "mps/simulator.hpp"
#include "obs/metrics.hpp"
#include "serve/feature_key.hpp"
#include "util/atomics.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace qkmps::serve {

namespace {

std::size_t default_threads(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 2 : hw;
}

/// Per-batch stage breakdown into the process-wide registry. Handles
/// resolve once (function-local statics); per batch this is six relaxed
/// histogram observes — noise next to one MPS simulation.
void observe_stage_timings(const StageTimings& t) {
  obs::Registry& reg = obs::Registry::global();
  static obs::Histogram& scale = reg.histogram("serve.stage.scale_seconds");
  static obs::Histogram& memo = reg.histogram("serve.stage.memo_seconds");
  static obs::Histogram& cache = reg.histogram("serve.stage.cache_seconds");
  static obs::Histogram& simulate =
      reg.histogram("serve.stage.simulate_seconds");
  static obs::Histogram& kernel = reg.histogram("serve.stage.kernel_seconds");
  static obs::Histogram& score = reg.histogram("serve.stage.score_seconds");
  static obs::Counter& batches = reg.counter("serve.engine.batches");
  static obs::Counter& requests = reg.counter("serve.engine.requests");
  static obs::Counter& simulated = reg.counter("serve.engine.simulated");
  scale.observe(t.scale_seconds);
  memo.observe(t.memo_seconds);
  cache.observe(t.cache_seconds);
  simulate.observe(t.simulate_seconds);
  kernel.observe(t.kernel_seconds);
  score.observe(t.score_seconds);
  batches.add();
  requests.add(t.batch_size);
  simulated.add(t.simulated);
}

}  // namespace

void check_request_features(const std::vector<double>& features,
                            idx expected) {
  QKMPS_CHECK_MSG(static_cast<idx>(features.size()) == expected,
                  "request has " << features.size()
                                 << " features, bundle expects " << expected);
  for (double v : features)
    QKMPS_CHECK_MSG(std::isfinite(v), "non-finite feature in request");
}

InferenceEngine::InferenceEngine(ModelBundle bundle, EngineConfig config)
    : InferenceEngine(
          std::make_shared<const ModelBundle>(std::move(bundle)), config) {}

InferenceEngine::InferenceEngine(std::shared_ptr<const ModelBundle> bundle,
                                 EngineConfig config)
    : bundle_(std::move(bundle)),
      config_(config),
      cache_(config.cache_capacity),
      memo_(config.memo_capacity),
      pool_(default_threads(config.num_threads)) {
  QKMPS_CHECK(bundle_ != nullptr);
  QKMPS_CHECK_MSG(!bundle_->sv_states.empty(), "bundle has no support vectors");
  QKMPS_CHECK(bundle_->model.alpha.size() == bundle_->sv_states.size());
  QKMPS_CHECK(config_.max_batch >= 1);
  // The batcher thread starts lazily on the first submit(): callers that
  // only ever use the synchronous predict_batch() path — notably the N
  // inner engines of a ShardedEngine, whose drainers batch for them —
  // never pay for a permanently idle thread.
}

InferenceEngine::~InferenceEngine() {
  {
    util::MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (batcher_.joinable())
    batcher_.join();  // drains whatever was queued before stop
}

std::future<Prediction> InferenceEngine::submit(std::vector<double> features) {
  check_request_features(features, bundle_->num_features());
  Request r;
  r.features = std::move(features);
  r.submitted = std::chrono::steady_clock::now();
  std::future<Prediction> fut = r.promise.get_future();
  {
    util::MutexLock lock(mu_);
    QKMPS_CHECK_MSG(!stop_, "submit on a stopped engine");
    if (!batcher_.joinable())
      batcher_ = std::thread([this] { batcher_loop(); });
    queue_.push_back(std::move(r));
  }
  cv_.notify_all();
  return fut;
}

void InferenceEngine::batcher_loop() {
  util::UniqueLock lock(mu_);
  for (;;) {
    while (!stop_ && queue_.empty()) cv_.wait(lock);
    if (queue_.empty()) {
      if (stop_) return;
      continue;  // spurious wake
    }
    // Batch window: admit arrivals until the batch is full or the oldest
    // pending request has waited batch_deadline since it was submitted —
    // a request that queued while the previous batch executed is not held
    // a second window. A full queue skips the wait entirely, so a
    // saturated engine batches back-to-back.
    const auto deadline = queue_.front().submitted + config_.batch_deadline;
    while (!stop_ && queue_.size() < config_.max_batch) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
    }
    std::vector<Request> batch;
    const std::size_t take = std::min(queue_.size(), config_.max_batch);
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    lock.unlock();
    execute(batch);
    lock.lock();
  }
}

void InferenceEngine::execute(std::vector<Request>& batch) {
  try {
    // Features are moved out (Request only needs promise/submitted from
    // here on); anything that throws — including this loop under memory
    // pressure — must land in the catch so the batch fails its futures
    // instead of escaping the batcher thread.
    std::vector<std::vector<double>> features;
    features.reserve(batch.size());
    for (Request& r : batch) features.push_back(std::move(r.features));
    std::vector<Prediction> out = run_batch(features);
    // Counters are bumped before the promises resolve so a caller that
    // has joined on its futures always observes them accounted for.
    record_batch(batch.size());
    const auto done = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      out[i].latency_seconds =
          std::chrono::duration<double>(done - batch[i].submitted).count();
      batch[i].promise.set_value(out[i]);
    }
  } catch (...) {
    record_batch(batch.size());
    const std::exception_ptr err = std::current_exception();
    for (Request& r : batch) r.promise.set_exception(err);
  }
}

void InferenceEngine::record_batch(std::size_t n_requests) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  requests_.fetch_add(n_requests, std::memory_order_relaxed);
  fetch_max(max_batch_seen_, static_cast<std::uint64_t>(n_requests));
}

std::vector<Prediction> InferenceEngine::run_batch(
    const std::vector<std::vector<double>>& features, StageTimings* timings) {
  const idx m = bundle_->num_features();
  const idx b = static_cast<idx>(features.size());
  const idx n_sv = bundle_->num_support_vectors();

  StageTimings local;
  StageTimings& t = timings != nullptr ? *timings : local;
  t = StageTimings{};
  t.batch_size = static_cast<std::size_t>(b);
  Timer stage;

  // Scale the whole batch through the bundle's fitted scaler; transform is
  // row-independent, so values match a sequential per-request transform.
  kernel::RealMatrix raw(b, m);
  for (idx i = 0; i < b; ++i) {
    const auto& f = features[static_cast<std::size_t>(i)];
    QKMPS_CHECK(static_cast<idx>(f.size()) == m);
    std::copy(f.begin(), f.end(), raw.row(i));
  }
  const kernel::RealMatrix scaled = bundle_->scaler.transform(raw);
  t.scale_seconds = stage.seconds();
  stage.reset();

  std::vector<Prediction> out(static_cast<std::size_t>(b));

  // Memo pass: an exact repeat of a previously scored request replays its
  // decision value without touching the StateCache or the pool. Rows that
  // miss stay "active" through the rest of the pipeline.
  std::vector<std::vector<double>> keys(static_cast<std::size_t>(b));
  std::vector<std::uint64_t> hashes(static_cast<std::size_t>(b), 0);
  std::vector<std::size_t> active;
  active.reserve(static_cast<std::size_t>(b));
  for (std::size_t i = 0; i < static_cast<std::size_t>(b); ++i) {
    keys[i].assign(scaled.row(static_cast<idx>(i)),
                   scaled.row(static_cast<idx>(i)) + m);
    hashes[i] = feature_hash(keys[i]);  // hashed once, reused throughout
    if (const auto memoized = memo_.find(keys[i], hashes[i])) {
      out[i].label = memoized->label;
      out[i].decision_value = memoized->decision_value;
      out[i].memo_hit = true;
      continue;
    }
    active.push_back(i);
  }
  {
    static obs::Counter& memo_hits =
        obs::Registry::global().counter("serve.memo.hits");
    static obs::Counter& memo_misses =
        obs::Registry::global().counter("serve.memo.misses");
    memo_hits.add(static_cast<std::uint64_t>(b) - active.size());
    memo_misses.add(active.size());
  }
  t.memo_seconds = stage.seconds();
  stage.reset();

  // Cache pass over the active rows: resident states are reused, misses
  // are deduplicated within the batch (two identical uncached requests
  // cost one simulation).
  std::vector<std::shared_ptr<const mps::Mps>> states(
      static_cast<std::size_t>(b));
  std::vector<std::size_t> unique_miss;  // first occurrence of each key
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> miss_by_hash;
  std::vector<std::size_t> alias_of(static_cast<std::size_t>(b), 0);
  for (std::size_t i : active) {
    states[i] = cache_.find(keys[i], hashes[i]);
    if (states[i] != nullptr) {
      out[i].cache_hit = true;
      continue;
    }
    auto& bucket = miss_by_hash[hashes[i]];
    std::size_t rep = i;
    for (std::size_t earlier : bucket) {
      if (feature_bits_equal(keys[earlier], keys[i])) {
        rep = earlier;
        break;
      }
    }
    alias_of[i] = rep;
    if (rep == i) {
      bucket.push_back(i);
      unique_miss.push_back(i);
    }
  }
  t.cache_seconds = stage.seconds();
  stage.reset();

  // Simulate uncached circuits. The serial backend runs one circuit per
  // pool lane (each lane's kernels pinned to a single thread — lane
  // parallelism and kernel OpenMP must not multiply, the oversubscription
  // contract in DESIGN.md); the batched backend advances all circuits in
  // lockstep and submits each round's gemm/SVD micro-batch to the batched
  // kernel layer under the same pool-width budget. Per-circuit arithmetic
  // is identical in both, so results are deterministic and independent of
  // batch composition and backend.
  std::vector<std::shared_ptr<const mps::Mps>> fresh(unique_miss.size());
  const mps::MpsSimulator sim(bundle_->config.sim);
  if (config_.kernel_backend == linalg::KernelBackend::kSerial) {
    pool_.parallel_for(unique_miss.size(), [&](std::size_t u) {
      linalg::KernelThreadScope kernel_scope(1);
      const std::size_t i = unique_miss[u];
      const circuit::Circuit c =
          circuit::feature_map_circuit(bundle_->config.ansatz, keys[i]);
      fresh[u] = std::make_shared<const mps::Mps>(sim.simulate(c).state);
    });
  } else if (!unique_miss.empty()) {
    std::vector<circuit::Circuit> circuits;
    circuits.reserve(unique_miss.size());
    for (std::size_t i : unique_miss)
      circuits.push_back(
          circuit::feature_map_circuit(bundle_->config.ansatz, keys[i]));
    linalg::KernelBatchConfig kc;
    kc.backend = config_.kernel_backend;
    kc.thread_budget = static_cast<int>(pool_.size());
    std::vector<mps::SimulationResult> results =
        sim.simulate_batch(circuits, kc);
    for (std::size_t u = 0; u < unique_miss.size(); ++u)
      fresh[u] =
          std::make_shared<const mps::Mps>(std::move(results[u].state));
  }
  for (std::size_t u = 0; u < unique_miss.size(); ++u) {
    const std::size_t i = unique_miss[u];
    states[i] = cache_.insert(keys[i], hashes[i], fresh[u]);
  }
  for (std::size_t i : active)
    if (states[i] == nullptr) states[i] = states[alias_of[i]];
  t.simulate_seconds = stage.seconds();
  stage.reset();

  // Rectangular kernel of the active rows against the support vectors
  // only, then the SVC — entrywise the same overlap_squared /
  // decision_values calls as kernel::cross_from_states +
  // SvcModel::decision_values (decision values are row-independent, so
  // scoring the active subset matches scoring the full batch). Flattened
  // over (request, SV) pairs so even a single-request batch spreads its
  // #SV contractions across the pool.
  const idx n_active = static_cast<idx>(active.size());
  kernel::RealMatrix k_active(n_active, n_sv);
  pool_.parallel_for(static_cast<std::size_t>(n_active * n_sv),
                     [&](std::size_t t) {
    linalg::KernelThreadScope kernel_scope(1);
    const idx a = static_cast<idx>(t) / n_sv;
    const idx j = static_cast<idx>(t) % n_sv;
    k_active(a, j) = mps::overlap_squared(
        *states[active[static_cast<std::size_t>(a)]],
        bundle_->sv_states[static_cast<std::size_t>(j)],
        bundle_->config.sim.policy);
  });
  const std::vector<double> f = bundle_->model.decision_values(k_active);
  t.kernel_seconds = stage.seconds();
  stage.reset();

  for (idx a = 0; a < n_active; ++a) {
    const std::size_t i = active[static_cast<std::size_t>(a)];
    out[i].decision_value = f[static_cast<std::size_t>(a)];
    out[i].label = f[static_cast<std::size_t>(a)] >= 0.0 ? 1 : -1;
    memo_.insert(keys[i], hashes[i],
                 {out[i].label, out[i].decision_value});
  }
  circuits_simulated_.fetch_add(unique_miss.size(),
                                std::memory_order_relaxed);
  t.score_seconds = stage.seconds();
  t.simulated = unique_miss.size();
  observe_stage_timings(t);
  return out;
}

std::vector<Prediction> InferenceEngine::predict_batch(
    const kernel::RealMatrix& x) {
  std::vector<std::vector<double>> features;
  features.reserve(static_cast<std::size_t>(x.rows()));
  for (idx i = 0; i < x.rows(); ++i)
    features.emplace_back(x.row(i), x.row(i) + x.cols());
  return predict_batch(std::move(features));
}

std::vector<Prediction> InferenceEngine::predict_batch(
    std::vector<std::vector<double>> features) {
  for (const std::vector<double>& f : features)
    check_request_features(f, bundle_->num_features());
  return predict_batch_trusted(std::move(features));
}

std::vector<Prediction> InferenceEngine::predict_batch_trusted(
    std::vector<std::vector<double>> features, StageTimings* timings) {
  Timer timer;
  std::vector<Prediction> out = run_batch(features, timings);
  const double seconds = timer.seconds();
  for (Prediction& p : out) p.latency_seconds = seconds;
  record_batch(out.size());
  return out;
}

EngineStats InferenceEngine::stats() const {
  EngineStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.circuits_simulated = circuits_simulated_.load(std::memory_order_relaxed);
  s.max_batch_seen = max_batch_seen_.load(std::memory_order_relaxed);
  s.cache = cache_.stats();
  s.memo = memo_.stats();
  return s;
}

}  // namespace qkmps::serve
