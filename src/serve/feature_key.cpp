#include "serve/feature_key.hpp"

#include <cstring>

namespace qkmps::serve {

std::uint64_t feature_hash(const double* v, std::size_t n) {
  constexpr std::uint64_t kOffset = 0xcbf29ce484222325ull;
  constexpr std::uint64_t kPrime = 0x100000001b3ull;
  std::uint64_t h = kOffset;
  const auto* bytes = reinterpret_cast<const unsigned char*>(v);
  for (std::size_t i = 0; i < n * sizeof(double); ++i) {
    h ^= static_cast<std::uint64_t>(bytes[i]);
    h *= kPrime;
  }
  return h;
}

std::uint64_t feature_hash(const std::vector<double>& v) {
  return feature_hash(v.data(), v.size());
}

bool feature_bits_equal(const std::vector<double>& a,
                        const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  if (a.empty()) return true;
  return std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

}  // namespace qkmps::serve
