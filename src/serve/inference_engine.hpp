#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "serve/model_bundle.hpp"
#include "serve/state_cache.hpp"

namespace qkmps::serve {

/// Knobs of the micro-batching engine. The defaults target the latency /
/// throughput trade-off of an online scoring service: small deadline so a
/// lone request is not held hostage, batch cap sized to keep the pool busy.
struct EngineConfig {
  std::size_t max_batch = 32;  ///< drain at most this many requests per batch
  std::chrono::microseconds batch_deadline{2000};  ///< max wait for a batch
  std::size_t num_threads = 0;     ///< simulation/kernel pool; 0 = hardware
  std::size_t cache_capacity = 4096;  ///< StateCache entries; 0 disables
};

/// One scored request.
struct Prediction {
  int label = 0;                 ///< sign(f) in {-1, +1}
  double decision_value = 0.0;   ///< f = sum_j alpha_j y_j K(x, sv_j) + b
  /// State came from the StateCache. In-batch duplicates of an uncached
  /// point also skip simulation (they alias the first occurrence) but
  /// report false; EngineStats::circuits_simulated is the exact count.
  bool cache_hit = false;
  /// submit() -> promise fulfilment for async requests; the batch's wall
  /// time for every row of a synchronous predict_batch() call.
  double latency_seconds = 0.0;
};

/// Aggregate serving counters (monotonic since construction).
struct EngineStats {
  std::uint64_t requests = 0;
  std::uint64_t batches = 0;
  std::uint64_t circuits_simulated = 0;
  std::uint64_t max_batch_seen = 0;
  CacheStats cache;
};

/// Asynchronous micro-batched inference over a ModelBundle. Callers
/// submit() feature vectors and receive futures; a dedicated batcher
/// thread drains up to max_batch requests (or whatever arrived within
/// batch_deadline of the first), simulates uncached feature-map circuits
/// in parallel on a parallel::ThreadPool, computes the rectangular kernel
/// against the bundle's support-vector states only, and scores with the
/// compacted SVC.
///
/// Determinism contract: batching is a scheduling choice, not a numeric
/// one. Every stage (scaling, circuit simulation, zipper inner products,
/// decision values) runs the same code the sequential pipeline
/// (kernel::simulate_states + kernel::cross_from_states +
/// SvcModel::decision_values) runs, on the same per-request inputs, so
/// predictions are bitwise-identical regardless of batch composition,
/// arrival order, or cache hits — the metamorphic relation
/// tests/test_inference_engine.cpp pins down.
class InferenceEngine {
 public:
  explicit InferenceEngine(ModelBundle bundle, EngineConfig config = {});
  ~InferenceEngine();  ///< drains pending requests, then stops

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Enqueues one request. Throws immediately on a feature-count mismatch;
  /// otherwise the future carries the prediction (or the error that killed
  /// its batch).
  std::future<Prediction> submit(std::vector<double> features);

  /// Synchronous convenience: scores every row of `x` through the same
  /// compute path as the async batches (bypassing the queue and deadline).
  std::vector<Prediction> predict_batch(const kernel::RealMatrix& x);

  EngineStats stats() const;
  const ModelBundle& bundle() const { return bundle_; }
  const EngineConfig& config() const { return config_; }

 private:
  struct Request {
    std::vector<double> features;
    std::promise<Prediction> promise;
    std::chrono::steady_clock::time_point submitted;
  };

  void batcher_loop();
  void execute(std::vector<Request>& batch);
  void record_batch(std::size_t n_requests);
  /// Scales, simulates (cache-aware), computes SV kernels, scores.
  std::vector<Prediction> run_batch(
      const std::vector<std::vector<double>>& features);

  const ModelBundle bundle_;
  const EngineConfig config_;
  StateCache cache_;
  parallel::ThreadPool pool_;

  mutable std::mutex mu_;  ///< guards queue_, stop_, stats_
  std::condition_variable cv_;
  std::deque<Request> queue_;
  bool stop_ = false;
  EngineStats stats_;

  std::thread batcher_;  ///< last member: joins before the pool dies
};

}  // namespace qkmps::serve
