#pragma once

#include <atomic>
#include <chrono>
#include <deque>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "util/sync.hpp"

#include "linalg/batched.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/model_bundle.hpp"
#include "serve/prediction_memo.hpp"
#include "serve/state_cache.hpp"

namespace qkmps::parallel {
class Transport;  // the shard-worker loop's link (parallel/transport.hpp)
}

namespace qkmps::serve {

/// Knobs of the micro-batching engine. The defaults target the latency /
/// throughput trade-off of an online scoring service: small deadline so a
/// lone request is not held hostage, batch cap sized to keep the pool busy.
struct EngineConfig {
  std::size_t max_batch = 32;  ///< drain at most this many requests per batch
  std::chrono::microseconds batch_deadline{2000};  ///< max wait for a batch
  std::size_t num_threads = 0;     ///< simulation/kernel pool; 0 = hardware
  std::size_t cache_capacity = 4096;  ///< StateCache entries; 0 disables
  /// Decision-value memo entries; 0 disables. An exact-repeat request
  /// (identical scaled feature bits) short-circuits before the StateCache:
  /// no simulation, no kernel row, no SVC pass — it replays the identical
  /// prediction bits. ROADMAP's decision-value memoization.
  std::size_t memo_capacity = 1024;
  /// Kernel execution for the simulate stage: kOpenMPBatched (default)
  /// collects the batch's uncached circuits and drives their gate-sweep
  /// gemm/SVD micro-batches through one batched pass per round
  /// (linalg/batched.hpp), under a thread budget equal to the engine's
  /// pool width; kSerial keeps the one-circuit-per-pool-lane reference
  /// path. Predictions are bitwise-identical either way — the serving
  /// benches gate on it.
  linalg::KernelBackend kernel_backend = linalg::KernelBackend::kOpenMPBatched;
};

/// One scored request.
struct Prediction {
  int label = 0;                 ///< sign(f) in {-1, +1}
  double decision_value = 0.0;   ///< f = sum_j alpha_j y_j K(x, sv_j) + b
  /// State came from the StateCache. In-batch duplicates of an uncached
  /// point also skip simulation (they alias the first occurrence) but
  /// report false; EngineStats::circuits_simulated is the exact count.
  bool cache_hit = false;
  /// Whole prediction came from the decision-value memo: the request
  /// skipped simulation, the StateCache, and the kernel entirely (so
  /// cache_hit is false for a memo hit — the StateCache was never asked).
  bool memo_hit = false;
  /// submit() -> promise fulfilment for async requests; the batch's wall
  /// time for every row of a synchronous predict_batch() call.
  double latency_seconds = 0.0;
};

/// Per-batch wall-clock breakdown of the engine's scoring stages, filled
/// by predict_batch_trusted for callers that pass a sink (the shard
/// worker turns it into worker-side trace spans; see obs/trace.hpp). The
/// stages partition the batch's compute wall time in order: any
/// queue/gather wait happened before the engine saw the batch. Every
/// batch also feeds the process-wide obs::Registry histograms
/// (serve.stage.*_seconds) whether or not a sink was passed.
struct StageTimings {
  double scale_seconds = 0.0;     ///< scaler transform of the whole batch
  double memo_seconds = 0.0;      ///< decision-value memo pass
  double cache_seconds = 0.0;     ///< StateCache pass + in-batch dedup
  double simulate_seconds = 0.0;  ///< parallel MPS simulation of misses
  double kernel_seconds = 0.0;    ///< SV kernel rows + decision values
  double score_seconds = 0.0;     ///< label assignment + memo insert
  std::size_t batch_size = 0;
  std::size_t simulated = 0;  ///< circuits actually simulated (post-dedup)
};

/// Aggregate serving counters (monotonic since construction). A snapshot:
/// the engine keeps every counter atomic, so stats() never touches the
/// request-queue lock and can be polled from any thread during traffic.
struct EngineStats {
  std::uint64_t requests = 0;
  std::uint64_t batches = 0;
  std::uint64_t circuits_simulated = 0;
  std::uint64_t max_batch_seen = 0;
  CacheStats cache;
  MemoStats memo;
};

/// Asynchronous micro-batched inference over a ModelBundle. Callers
/// submit() feature vectors and receive futures; a dedicated batcher
/// thread drains up to max_batch requests (or whatever arrived within
/// batch_deadline of the first), simulates uncached feature-map circuits
/// in parallel on a parallel::ThreadPool, computes the rectangular kernel
/// against the bundle's support-vector states only, and scores with the
/// compacted SVC.
///
/// Determinism contract: batching is a scheduling choice, not a numeric
/// one. Every stage (scaling, circuit simulation, zipper inner products,
/// decision values) runs the same code the sequential pipeline
/// (kernel::simulate_states + kernel::cross_from_states +
/// SvcModel::decision_values) runs, on the same per-request inputs, so
/// predictions are bitwise-identical regardless of batch composition,
/// arrival order, cache hits, or memo hits — the metamorphic relation
/// tests/test_inference_engine.cpp pins down.
///
/// The bundle is held through shared_ptr<const ModelBundle>, so N engines
/// (e.g. the shards of a ShardedEngine) keep one copy of the resident
/// support-vector states between them.
class ShardedEngine;
class RankShardedEngine;

class InferenceEngine {
 public:
  explicit InferenceEngine(ModelBundle bundle, EngineConfig config = {});
  InferenceEngine(std::shared_ptr<const ModelBundle> bundle,
                  EngineConfig config);
  ~InferenceEngine();  ///< drains pending requests, then stops

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Enqueues one request. Throws immediately on a feature-count mismatch;
  /// otherwise the future carries the prediction (or the error that killed
  /// its batch).
  std::future<Prediction> submit(std::vector<double> features);

  /// Synchronous convenience: scores every row of `x` through the same
  /// compute path as the async batches (bypassing the queue and deadline).
  std::vector<Prediction> predict_batch(const kernel::RealMatrix& x);

  /// Same, taking the rows directly — the sharded frontend's drainer
  /// moves the admitted requests' feature vectors straight in, with no
  /// intermediate matrix packing/unpacking copies.
  std::vector<Prediction> predict_batch(
      std::vector<std::vector<double>> features);

  /// Lock-free counter snapshot; safe to poll during traffic.
  EngineStats stats() const;
  const ModelBundle& bundle() const { return *bundle_; }
  const EngineConfig& config() const { return config_; }

 private:
  /// The sharded frontends validate each request once at admission; their
  /// drainers (ShardedEngine) and shard workers (the shared
  /// serve::run_shard_worker loop behind RankShardedEngine and
  /// serving_rankd) then score through predict_batch_trusted and skip the
  /// re-validation scan on the latency-critical drain path. Socket-mode
  /// requests were validated by the router's submit() before they ever
  /// crossed the wire.
  friend class ShardedEngine;
  friend class RankShardedEngine;
  friend bool run_shard_worker(parallel::Transport& link,
                               InferenceEngine& engine,
                               const struct ShardWorkerOptions& options);
  std::vector<Prediction> predict_batch_trusted(
      std::vector<std::vector<double>> features,
      StageTimings* timings = nullptr);

  struct Request {
    std::vector<double> features;
    std::promise<Prediction> promise;
    std::chrono::steady_clock::time_point submitted;
  };

  void batcher_loop();
  void execute(std::vector<Request>& batch);
  void record_batch(std::size_t n_requests);
  /// Scales, memo-checks, simulates (cache-aware), computes SV kernels,
  /// scores, memoizes. Stage wall times land in `timings` when non-null
  /// and in the global registry histograms always.
  std::vector<Prediction> run_batch(
      const std::vector<std::vector<double>>& features,
      StageTimings* timings = nullptr);

  const std::shared_ptr<const ModelBundle> bundle_;
  const EngineConfig config_;
  StateCache cache_;
  PredictionMemo memo_;
  parallel::ThreadPool pool_;

  mutable util::Mutex mu_;  ///< guards queue_ and stop_ only
  util::CondVar cv_;
  std::deque<Request> queue_ QKMPS_GUARDED_BY(mu_);
  bool stop_ QKMPS_GUARDED_BY(mu_) = false;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> circuits_simulated_{0};
  std::atomic<std::uint64_t> max_batch_seen_{0};

  /// Started lazily by the first submit() (predict_batch-only callers,
  /// like ShardedEngine's inner engines, never start it). Last member:
  /// joins before the pool dies.
  std::thread batcher_;
};

/// Request validation shared by every serving entry point (engine submit,
/// sharded-frontend admission): a malformed feature vector must fail the
/// caller immediately, not score as a confident label (NaN decision values
/// compare false against 0 and would all map to -1). Throws qkmps::Error.
void check_request_features(const std::vector<double>& features,
                            idx expected);

}  // namespace qkmps::serve
