#include "serve/state_cache.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "serve/feature_key.hpp"
#include "util/error.hpp"

namespace qkmps::serve {

std::shared_ptr<const mps::Mps> StateCache::find(
    const std::vector<double>& key) {
  return find(key, feature_hash(key));
}

std::shared_ptr<const mps::Mps> StateCache::find(const std::vector<double>& key,
                                                 std::uint64_t hash) {
  // Process-wide counters on top of the per-instance LruStats: every
  // StateCache in the process (one per shard) folds into one exposition
  // series. Handles resolve once; the per-call cost is a relaxed add.
  static obs::Counter& hits =
      obs::Registry::global().counter("serve.state_cache.hits");
  static obs::Counter& misses =
      obs::Registry::global().counter("serve.state_cache.misses");
  auto resident = map_.find(key, hash);
  (resident ? hits : misses).add();
  return resident ? std::move(*resident) : nullptr;
}

std::shared_ptr<const mps::Mps> StateCache::insert(const std::vector<double>& key,
                                                   mps::Mps state) {
  return insert(key, feature_hash(key),
                std::make_shared<const mps::Mps>(std::move(state)));
}

std::shared_ptr<const mps::Mps> StateCache::insert(
    const std::vector<double>& key, std::shared_ptr<const mps::Mps> shared) {
  return insert(key, feature_hash(key), std::move(shared));
}

std::shared_ptr<const mps::Mps> StateCache::insert(
    const std::vector<double>& key, std::uint64_t hash,
    std::shared_ptr<const mps::Mps> shared) {
  QKMPS_CHECK(shared != nullptr);
  static obs::Counter& insertions =
      obs::Registry::global().counter("serve.state_cache.insertions");
  insertions.add();
  return map_.insert(key, hash, std::move(shared));
}

}  // namespace qkmps::serve
