#include "serve/state_cache.hpp"

#include "serve/feature_key.hpp"
#include "util/error.hpp"

namespace qkmps::serve {

StateCache::LruList::iterator StateCache::locate(
    std::uint64_t hash, const std::vector<double>& key) {
  auto [lo, hi] = index_.equal_range(hash);
  for (auto it = lo; it != hi; ++it)
    if (feature_bits_equal(it->second->key, key)) return it->second;
  return lru_.end();
}

std::shared_ptr<const mps::Mps> StateCache::find(
    const std::vector<double>& key) {
  return find(key, feature_hash(key));
}

std::shared_ptr<const mps::Mps> StateCache::find(const std::vector<double>& key,
                                                 std::uint64_t hash) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto entry = locate(hash, key);
  if (entry == lru_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, entry);  // iterators stay valid
  ++stats_.hits;
  return entry->state;
}

std::shared_ptr<const mps::Mps> StateCache::insert(const std::vector<double>& key,
                                                   mps::Mps state) {
  return insert(key, feature_hash(key),
                std::make_shared<const mps::Mps>(std::move(state)));
}

std::shared_ptr<const mps::Mps> StateCache::insert(
    const std::vector<double>& key, std::shared_ptr<const mps::Mps> shared) {
  return insert(key, feature_hash(key), std::move(shared));
}

std::shared_ptr<const mps::Mps> StateCache::insert(
    const std::vector<double>& key, std::uint64_t hash,
    std::shared_ptr<const mps::Mps> shared) {
  QKMPS_CHECK(shared != nullptr);
  if (capacity_ == 0) return shared;

  std::lock_guard<std::mutex> lock(mu_);
  const auto existing = locate(hash, key);
  if (existing != lru_.end()) {
    lru_.splice(lru_.begin(), lru_, existing);
    return existing->state;
  }
  lru_.push_front(Entry{key, hash, shared});
  index_.emplace(hash, lru_.begin());
  ++stats_.insertions;
  evict_overflow();
  return shared;
}

void StateCache::evict_overflow() {
  while (lru_.size() > capacity_) {
    const auto victim = std::prev(lru_.end());
    auto [lo, hi] = index_.equal_range(victim->hash);
    bool unindexed = false;
    for (auto it = lo; it != hi; ++it) {
      if (it->second == victim) {
        index_.erase(it);
        unindexed = true;
        break;
      }
    }
    QKMPS_CHECK_MSG(unindexed, "LRU entry missing from hash index");
    lru_.pop_back();
    ++stats_.evictions;
  }
}

std::size_t StateCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

CacheStats StateCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void StateCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

}  // namespace qkmps::serve
