#include "serve/state_cache.hpp"

#include <utility>

#include "serve/feature_key.hpp"
#include "util/error.hpp"

namespace qkmps::serve {

std::shared_ptr<const mps::Mps> StateCache::find(
    const std::vector<double>& key) {
  return find(key, feature_hash(key));
}

std::shared_ptr<const mps::Mps> StateCache::find(const std::vector<double>& key,
                                                 std::uint64_t hash) {
  auto resident = map_.find(key, hash);
  return resident ? std::move(*resident) : nullptr;
}

std::shared_ptr<const mps::Mps> StateCache::insert(const std::vector<double>& key,
                                                   mps::Mps state) {
  return insert(key, feature_hash(key),
                std::make_shared<const mps::Mps>(std::move(state)));
}

std::shared_ptr<const mps::Mps> StateCache::insert(
    const std::vector<double>& key, std::shared_ptr<const mps::Mps> shared) {
  return insert(key, feature_hash(key), std::move(shared));
}

std::shared_ptr<const mps::Mps> StateCache::insert(
    const std::vector<double>& key, std::uint64_t hash,
    std::shared_ptr<const mps::Mps> shared) {
  QKMPS_CHECK(shared != nullptr);
  return map_.insert(key, hash, std::move(shared));
}

}  // namespace qkmps::serve
