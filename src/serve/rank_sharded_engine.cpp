#include "serve/rank_sharded_engine.hpp"

#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <optional>
#include <thread>
#include <unordered_map>
#include <utility>

#include "serve/feature_key.hpp"
#include "serve/shard_worker.hpp"
#include "util/error.hpp"

extern char** environ;

namespace qkmps::serve {

namespace {

/// Fresh Unix-domain address per engine incarnation: pid + a process-wide
/// counter keeps concurrently constructed engines (and engine-heavy test
/// suites) from colliding on the filesystem.
std::string default_socket_address() {
  static std::atomic<unsigned> seq{0};
  return "unix:/tmp/qkmps_rankd_" + std::to_string(::getpid()) + "_" +
         std::to_string(seq.fetch_add(1)) + ".sock";
}

long spawn_worker_process(const std::string& exe,
                          const std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 2);
  argv.push_back(const_cast<char*>(exe.c_str()));
  for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  pid_t pid = 0;
  const int rc =
      ::posix_spawn(&pid, exe.c_str(), nullptr, nullptr, argv.data(), environ);
  QKMPS_CHECK_MSG(rc == 0, "posix_spawn(" << exe
                                          << ") failed: " << std::strerror(rc));
  return static_cast<long>(pid);
}

/// Waits `grace` for the worker to exit on its own (it just saw its link
/// close or a kShutdown), then escalates to SIGKILL — the destructor must
/// never hang on a wedged child.
void reap_worker(long pid, std::chrono::milliseconds grace) {
  const auto deadline = std::chrono::steady_clock::now() + grace;
  for (;;) {
    int status = 0;
    const pid_t r = ::waitpid(static_cast<pid_t>(pid), &status, WNOHANG);
    if (r != 0) return;  // reaped (or already gone / not ours)
    if (std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ::kill(static_cast<pid_t>(pid), SIGKILL);
  int status = 0;
  ::waitpid(static_cast<pid_t>(pid), &status, 0);
}

}  // namespace

const char* to_string(TransportKind kind) {
  switch (kind) {
    case TransportKind::kInProcess:
      return "inproc";
    case TransportKind::kSocket:
      return "socket";
  }
  return "unknown";
}

RankShardedEngine::RankShardedEngine(ModelBundle bundle,
                                     RankShardedEngineConfig config)
    : RankShardedEngine(
          std::make_shared<const ModelBundle>(std::move(bundle)), config) {}

RankShardedEngine::RankShardedEngine(std::shared_ptr<const ModelBundle> bundle,
                                     RankShardedEngineConfig config)
    : bundle_(std::move(bundle)), config_(std::move(config)) {
  QKMPS_CHECK(bundle_ != nullptr);
  QKMPS_CHECK_MSG(config_.num_shards >= 1, "need at least one shard");
  QKMPS_CHECK_MSG(config_.ingress_capacity >= 1,
                  "ingress queue needs capacity >= 1");
  router_ = make_router(config_.router, config_.num_shards);
  for (std::size_t i = 0; i < config_.num_shards; ++i)
    shard_state_.push_back(std::make_unique<ShardState>());
  if (config_.transport == TransportKind::kInProcess) {
    const std::vector<std::size_t> lanes =
        shard_thread_lanes(config_.engine.num_threads, config_.num_shards);
    engines_.reserve(config_.num_shards);
    for (std::size_t i = 0; i < config_.num_shards; ++i) {
      EngineConfig engine_cfg = config_.engine;
      engine_cfg.num_threads = lanes[i];
      engines_.push_back(
          std::make_unique<InferenceEngine>(bundle_, engine_cfg));
    }
  }
  start_runtime();
}

RankShardedEngine::~RankShardedEngine() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  stop_runtime(/*final_stop=*/true);
}

std::size_t RankShardedEngine::num_shards() const {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  return shard_state_.size();
}

int RankShardedEngine::shard_for(const std::vector<double>& features) const {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  return router_->shard_for(features);
}

std::size_t RankShardedEngine::drain_batch_limit() const {
  return config_.drain_max_batch > 0 ? config_.drain_max_batch
                                     : config_.engine.max_batch;
}

std::future<RoutedPrediction> RankShardedEngine::submit(
    std::vector<double> features) {
  check_request_features(features, bundle_->num_features());
  Ingress request;
  request.features = std::move(features);
  request.submitted = std::chrono::steady_clock::now();
  std::future<RoutedPrediction> fut = request.promise.get_future();

  bool rejected = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (runtime_error_) std::rethrow_exception(runtime_error_);
    QKMPS_CHECK_MSG(!stopped_, "submit on a stopped RankShardedEngine");
    submitted_.fetch_add(1, std::memory_order_relaxed);
    if (ingress_.size() >= config_.ingress_capacity) {
      rejected = true;
    } else {
      ingress_.push_back(std::move(request));
      admitted_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (rejected) {
    // The request never reached the router, so no shard is charged for
    // it: shard stays -1 (routing happens router-side, after admission).
    rejected_.fetch_add(1, std::memory_order_relaxed);
    RoutedPrediction out;
    out.status = ServeStatus::kRejected;
    out.shard = -1;
    out.total_seconds =
        seconds_between(request.submitted, std::chrono::steady_clock::now());
    request.promise.set_value(out);
  } else {
    cv_ingress_.notify_all();
  }
  return fut;
}

void RankShardedEngine::start_runtime() {
  if (config_.transport == TransportKind::kSocket) {
    start_socket_runtime();
    return;
  }
  runtime_ = std::make_unique<parallel::RankRuntime>(
      static_cast<int>(engines_.size()) + 1);
  runtime_thread_ = std::thread([this] {
    try {
      runtime_->run([this](parallel::Comm& comm) {
        if (comm.rank() == 0) {
          std::vector<std::unique_ptr<parallel::CommTransport>> links;
          std::vector<parallel::Transport*> ptrs;
          for (int s = 1; s < comm.size(); ++s) {
            links.push_back(std::make_unique<parallel::CommTransport>(comm, s));
            ptrs.push_back(links.back().get());
          }
          try {
            router_loop(ptrs);
          } catch (...) {
            // A dying router must not strand shards in their recv loop —
            // run() joins every rank before rethrowing, so an unreleased
            // shard would deadlock the destructor. CommTransport::send
            // never blocks; a shard that already exited just leaves the
            // extra envelope unconsumed.
            for (parallel::Transport* link : ptrs)
              link->send(encode_envelope(
                  ShardEnvelope{ShardEnvelope::Kind::kShutdown, 0, {}}));
            throw;
          }
        } else {
          parallel::CommTransport link(comm, 0);
          ShardWorkerOptions options;
          options.batch_limit = std::max<std::size_t>(1, drain_batch_limit());
          run_shard_worker(
              link, *engines_[static_cast<std::size_t>(comm.rank() - 1)],
              options);
        }
      });
    } catch (...) {
      // A rank body escaped its own handling (internal invariant failure,
      // e.g. a wire-codec mismatch). Remember it so the next API call
      // fails loudly instead of hanging on a dead router.
      std::lock_guard<std::mutex> lock(mu_);
      runtime_error_ = std::current_exception();
    }
  });
}

void RankShardedEngine::start_socket_runtime() {
  const SocketTransportConfig& sc = config_.socket;
  QKMPS_CHECK_MSG(!sc.worker_path.empty(),
                  "socket transport needs socket.worker_path (the "
                  "serving_rankd binary)");
  QKMPS_CHECK_MSG(!sc.bundle_dir.empty(),
                  "socket transport needs socket.bundle_dir (the bundle "
                  "handoff directory)");
  // Hand the model to the workers through the bundle format — the same
  // artifact a real deployment ships. save_bundle is atomic, so workers
  // can never observe a half-written manifest.
  save_bundle(*bundle_, sc.bundle_dir);

  const std::string address =
      sc.listen_address.empty() ? default_socket_address() : sc.listen_address;
  listener_ = std::make_unique<parallel::SocketListener>(
      parallel::SocketListener::listen(address));

  const std::size_t n = shard_state_.size();
  // Same lane budgeting as the in-process constructor: num_threads == 0
  // divides the hardware threads across the shards. The workers share
  // this host, so handing each a full-width pool would oversubscribe it
  // N-fold — and would make the bench's inproc-vs-socket comparison
  // measure thread counts instead of transport cost.
  const std::vector<std::size_t> lanes =
      shard_thread_lanes(config_.engine.num_threads, n);
  try {
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<std::string> args = {
          "--connect=" + listener_->address(),
          "--shard=" + std::to_string(i),
          "--bundle=" + sc.bundle_dir,
          "--max-batch=" + std::to_string(config_.engine.max_batch),
          "--gather=" + std::to_string(drain_batch_limit()),
          "--batch-deadline-us=" +
              std::to_string(config_.engine.batch_deadline.count()),
          "--threads=" + std::to_string(lanes[i]),
          "--cache=" + std::to_string(config_.engine.cache_capacity),
          "--memo=" + std::to_string(config_.engine.memo_capacity)};
      args.insert(args.end(), sc.worker_extra_args.begin(),
                  sc.worker_extra_args.end());
      worker_pids_.push_back(spawn_worker_process(sc.worker_path, args));
    }
    links_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      std::unique_ptr<parallel::SocketTransport> conn =
          listener_->accept_for(sc.connect_timeout);
      QKMPS_CHECK_MSG(conn != nullptr,
                      "timed out waiting for shard workers to connect ("
                          << i << " of " << n << " arrived)");
      const ShardHello hello = shard_handshake_server(
          *conn, n, bundle_->num_features(),
          std::chrono::duration_cast<std::chrono::microseconds>(
              sc.connect_timeout));
      QKMPS_CHECK_MSG(links_[hello.shard_index] == nullptr,
                      "two workers claimed shard " << hello.shard_index);
      links_[hello.shard_index] = std::move(conn);
    }
  } catch (...) {
    // Fail construction loudly but cleanly: no orphan processes, no
    // stale socket files.
    links_.clear();
    listener_.reset();
    for (long pid : worker_pids_)
      reap_worker(pid, std::chrono::milliseconds(500));
    worker_pids_.clear();
    throw;
  }

  runtime_thread_ = std::thread([this] {
    std::vector<parallel::Transport*> ptrs;
    ptrs.reserve(links_.size());
    for (const auto& link : links_) ptrs.push_back(link.get());
    try {
      router_loop(ptrs);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      runtime_error_ = std::current_exception();
    }
    // Fulfil any stats request that raced the shutdown so no caller is
    // left waiting on a promise nobody owns.
    std::deque<std::promise<std::vector<EngineStats>>> leftovers;
    {
      std::lock_guard<std::mutex> lock(mu_);
      leftovers.swap(stats_requests_);
    }
    for (auto& p : leftovers)
      p.set_value(std::vector<EngineStats>(links_.size()));
  });
}

void RankShardedEngine::stop_runtime(bool final_stop) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
    if (final_stop) stopped_ = true;
  }
  cv_ingress_.notify_all();
  if (runtime_thread_.joinable()) runtime_thread_.join();
  runtime_.reset();
  // Socket teardown: closing the links EOFs any worker the shutdown
  // handshake missed (it exits on the transport error), then the reaper
  // waits it out — escalating to SIGKILL so a wedged child cannot hang
  // the destructor.
  links_.clear();
  listener_.reset();
  for (long pid : worker_pids_) reap_worker(pid, std::chrono::milliseconds(5000));
  worker_pids_.clear();
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = false;
  }
}

void RankShardedEngine::add_shard() {
  QKMPS_CHECK_MSG(
      config_.transport == TransportKind::kInProcess,
      "add_shard over the socket transport is not implemented yet — elastic "
      "worker sets are the ROADMAP's next serving step");
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    QKMPS_CHECK_MSG(!stopped_, "add_shard on a stopped RankShardedEngine");
  }
  stop_runtime(/*final_stop=*/false);

  // Existing engines keep their pools (and, crucially, their caches);
  // only the new shard's lane count reflects the grown topology. With
  // num_threads == 0 this slightly overcommits hardware threads after a
  // resize — cache retention is worth more than perfect lane budgeting.
  EngineConfig engine_cfg = config_.engine;
  engine_cfg.num_threads =
      shard_thread_lanes(config_.engine.num_threads, engines_.size() + 1)
          .back();
  engines_.push_back(std::make_unique<InferenceEngine>(bundle_, engine_cfg));
  shard_state_.push_back(std::make_unique<ShardState>());
  router_->add_shard();
  resizes_.fetch_add(1, std::memory_order_relaxed);

  start_runtime();
}

void RankShardedEngine::router_loop(
    const std::vector<parallel::Transport*>& links) {
  struct InFlight {
    std::promise<RoutedPrediction> promise;
    std::chrono::steady_clock::time_point submitted;
    std::chrono::steady_clock::time_point forwarded;
    int shard = -1;
  };
  std::unordered_map<std::uint64_t, InFlight> inflight;
  const int n = static_cast<int>(links.size());
  const bool socket = config_.transport == TransportKind::kSocket;
  bool drain_marker_sent = false;
  std::vector<char> drain_acked(static_cast<std::size_t>(n), 0);
  // Socket mode: a connected-but-unresponsive worker (deadlocked,
  // SIGSTOP'd) owing replies or a drain ack would otherwise stall the
  // drain loop — and with it the destructor — forever. Any progress
  // pushes the deadline out; total silence past it demotes the
  // offenders, matching the shutdown handshake's escalation.
  constexpr std::chrono::seconds kDrainStall{30};
  std::chrono::steady_clock::time_point drain_stall_deadline{};

  const auto alive = [this](int s) {
    return shard_state_[static_cast<std::size_t>(s)]->alive.load(
        std::memory_order_relaxed);
  };

  // Shed with status: the worker is gone, so the honest outcome is a
  // resolved future that says so — never a hang, never a dropped
  // promise, never a re-route (assignments stay a pure function of the
  // topology so client-side routing keeps working).
  const auto shed = [this](InFlight fl, const std::string& why) {
    RoutedPrediction out;
    out.status = ServeStatus::kShed;
    out.shard = fl.shard;
    out.error = why;
    out.queue_seconds = seconds_between(fl.submitted, fl.forwarded);
    out.total_seconds =
        seconds_between(fl.submitted, std::chrono::steady_clock::now());
    shed_.fetch_add(1, std::memory_order_relaxed);
    fl.promise.set_value(out);
  };

  const auto mark_dead = [&](int s, const std::string& why) {
    ShardState& state = *shard_state_[static_cast<std::size_t>(s)];
    if (!state.alive.exchange(false, std::memory_order_relaxed)) return;
    for (auto it = inflight.begin(); it != inflight.end();) {
      if (it->second.shard == s) {
        shed(std::move(it->second), "shard worker died: " + why);
        it = inflight.erase(it);
      } else {
        ++it;
      }
    }
  };

  // In-process transport failures are protocol bugs and escape (the
  // rank-0 catch turns them into a loud runtime_error_); a socket link
  // failure is an expected distributed-systems outcome and demotes the
  // shard to dead.
  const auto shard_send = [&](int s, const ShardEnvelope& envelope) -> bool {
    try {
      links[static_cast<std::size_t>(s)]->send(encode_envelope(envelope));
      return true;
    } catch (const Error& e) {
      if (!socket) throw;
      mark_dead(s, e.what());
      return false;
    }
  };

  const auto handle_reply = [&](int s, ShardReply reply) {
    if (reply.kind == ShardReply::Kind::kDrained) {
      drain_acked[static_cast<std::size_t>(s)] = 1;
      return;
    }
    if (reply.kind == ShardReply::Kind::kStats) {
      // A stats sweep that timed out and was abandoned; stale, drop it.
      return;
    }
    QKMPS_CHECK_MSG(reply.kind == ShardReply::Kind::kPrediction ||
                        reply.kind == ShardReply::Kind::kFailed,
                    "unexpected reply kind in router loop");
    const auto it = inflight.find(reply.id);
    QKMPS_CHECK_MSG(it != inflight.end(),
                    "shard replied to an unknown request id");
    InFlight fl = std::move(it->second);
    inflight.erase(it);
    const auto now = std::chrono::steady_clock::now();
    if (reply.kind == ShardReply::Kind::kPrediction) {
      shard_state_[static_cast<std::size_t>(s)]->served.fetch_add(
          1, std::memory_order_relaxed);
      RoutedPrediction out;
      out.status = ServeStatus::kServed;
      out.shard = fl.shard;
      out.prediction = reply.prediction;
      out.queue_seconds = seconds_between(fl.submitted, fl.forwarded);
      out.total_seconds = seconds_between(fl.submitted, now);
      completed_.fetch_add(1, std::memory_order_relaxed);
      fl.promise.set_value(out);
    } else {
      completed_.fetch_add(1, std::memory_order_relaxed);
      fl.promise.set_exception(std::make_exception_ptr(
          Error("shard batch failed: " + reply.error)));
    }
  };

  const auto shard_try_recv = [&](int s) -> std::optional<ShardReply> {
    try {
      std::optional<std::vector<std::uint8_t>> bytes =
          links[static_cast<std::size_t>(s)]->try_recv();
      if (!bytes) return std::nullopt;
      return decode_reply(*bytes);
    } catch (const Error& e) {
      if (!socket) throw;
      mark_dead(s, e.what());
      return std::nullopt;
    }
  };

  for (;;) {
    bool progress = false;
    bool drain = false;
    std::deque<Ingress> pulled;
    std::optional<std::promise<std::vector<EngineStats>>> stats_request;
    {
      std::unique_lock<std::mutex> lock(mu_);
      // Idle with nothing in flight: sleep on the ingress cv (bounded by
      // router_poll so a drain request can't be missed). With work in
      // flight, fall through and poll the reply links instead.
      if (ingress_.empty() && inflight.empty() && !draining_ &&
          stats_requests_.empty()) {
        cv_ingress_.wait_for(lock, config_.router_poll, [this] {
          return draining_ || !ingress_.empty() || !stats_requests_.empty();
        });
      }
      pulled.swap(ingress_);
      drain = draining_;
      if (!stats_requests_.empty()) {
        stats_request = std::move(stats_requests_.front());
        stats_requests_.pop_front();
      }
    }

    for (Ingress& request : pulled) {
      progress = true;
      const std::uint64_t id = next_id_++;
      const int shard = router_->shard_for_hash(feature_hash(request.features));
      InFlight fl;
      fl.promise = std::move(request.promise);
      fl.submitted = request.submitted;
      fl.forwarded = std::chrono::steady_clock::now();
      fl.shard = shard;
      if (!alive(shard)) {
        shed(std::move(fl), "shard worker died before the request");
        continue;
      }
      shard_state_[static_cast<std::size_t>(shard)]->routed.fetch_add(
          1, std::memory_order_relaxed);
      inflight.emplace(id, std::move(fl));
      shard_send(shard, ShardEnvelope{ShardEnvelope::Kind::kRequest, id,
                                      std::move(request.features)});
      // On failure mark_dead already shed this request out of inflight.
    }

    for (int s = 0; s < n; ++s) {
      if (!alive(s)) continue;
      while (std::optional<ShardReply> reply = shard_try_recv(s)) {
        progress = true;
        // A well-framed but protocol-violating reply (duplicate/unknown
        // id, spurious kind) gets the same demotion a dead link gets:
        // one misbehaving worker must not take the router — and every
        // other shard's futures — down with it.
        try {
          handle_reply(s, std::move(*reply));
        } catch (const Error& e) {
          if (!socket) throw;
          mark_dead(s, e.what());
          break;
        }
      }
    }

    if (stats_request) {
      progress = true;
      // Synchronous sweep: briefly prioritises the snapshot over routing
      // (a stats() call is an operator action, not a data-path one).
      // Non-kStats replies arriving meanwhile are processed normally.
      std::vector<EngineStats> snapshot(static_cast<std::size_t>(n));
      for (int s = 0; s < n; ++s) {
        if (!alive(s)) continue;
        if (!shard_send(s, ShardEnvelope{ShardEnvelope::Kind::kStats, 0, {}}))
          continue;
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(5);
        while (alive(s) && std::chrono::steady_clock::now() < deadline) {
          try {
            std::optional<std::vector<std::uint8_t>> bytes =
                links[static_cast<std::size_t>(s)]->recv_for(
                    std::chrono::microseconds(10'000));
            if (!bytes) continue;
            ShardReply reply = decode_reply(*bytes);
            if (reply.kind == ShardReply::Kind::kStats) {
              snapshot[static_cast<std::size_t>(s)] = reply.stats;
              break;
            }
            handle_reply(s, std::move(reply));
          } catch (const Error& e) {
            if (!socket) throw;
            mark_dead(s, e.what());
          }
        }
      }
      stats_request->set_value(std::move(snapshot));
    }

    if (drain) {
      if (!drain_marker_sent) {
        // Flush barrier: links are FIFO, so a shard's kDrained ack
        // proves every envelope sent before the marker has been scored
        // and its replies are already queued back to us.
        for (int s = 0; s < n; ++s)
          if (alive(s))
            shard_send(s, ShardEnvelope{ShardEnvelope::Kind::kDrain, 0, {}});
        drain_marker_sent = true;
        drain_stall_deadline = std::chrono::steady_clock::now() + kDrainStall;
      }
      if (progress)
        drain_stall_deadline = std::chrono::steady_clock::now() + kDrainStall;
      bool ingress_empty;
      {
        std::lock_guard<std::mutex> lock(mu_);
        ingress_empty = ingress_.empty();
      }
      bool acked = true;
      for (int s = 0; s < n; ++s)
        if (alive(s) && !drain_acked[static_cast<std::size_t>(s)]) acked = false;
      if (ingress_empty && inflight.empty() && acked) break;
      if (socket && std::chrono::steady_clock::now() > drain_stall_deadline) {
        std::vector<char> owes(static_cast<std::size_t>(n), 0);
        for (const auto& [id, fl] : inflight)
          owes[static_cast<std::size_t>(fl.shard)] = 1;
        for (int s = 0; s < n; ++s)
          if (alive(s) && (owes[static_cast<std::size_t>(s)] ||
                           !drain_acked[static_cast<std::size_t>(s)]))
            mark_dead(s, "no progress during drain within the deadline");
      }
    }

    if (!progress && (drain || !inflight.empty()))
      std::this_thread::sleep_for(config_.router_poll);
  }

  // Shutdown handshake: every live shard acks kStopped after finishing
  // its in-hand batch, so joining the runtime cannot strand work. The
  // timed recv turns a protocol bug into a loud error instead of a
  // destructor that never returns; a socket worker that will not ack is
  // demoted to dead (the reaper escalates to SIGKILL).
  for (int s = 0; s < n; ++s)
    if (alive(s))
      shard_send(s, ShardEnvelope{ShardEnvelope::Kind::kShutdown, 0, {}});
  for (int s = 0; s < n; ++s) {
    while (alive(s)) {
      std::optional<ShardReply> ack;
      try {
        std::optional<std::vector<std::uint8_t>> bytes =
            links[static_cast<std::size_t>(s)]->recv_for(
                std::chrono::microseconds(30'000'000));
        if (bytes) ack = decode_reply(*bytes);
      } catch (const Error& e) {
        if (!socket) throw;
        mark_dead(s, e.what());
        break;
      }
      if (socket && !ack.has_value()) {
        mark_dead(s, "no shutdown ack within the deadline");
        break;
      }
      QKMPS_CHECK_MSG(ack.has_value(), "shard never acked shutdown");
      if (ack->kind == ShardReply::Kind::kStopped) break;
      // Late replies queued before the shutdown envelope: handle them so
      // their futures resolve, then keep waiting for the ack. A
      // protocol-violating late reply demotes the shard like a dead link.
      try {
        handle_reply(s, std::move(*ack));
      } catch (const Error& e) {
        if (!socket) throw;
        mark_dead(s, e.what());
        break;
      }
    }
  }
}

std::vector<EngineStats> RankShardedEngine::fetch_remote_stats() const {
  const std::size_t n = shard_state_.size();
  std::promise<std::vector<EngineStats>> promise;
  std::future<std::vector<EngineStats>> fut = promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_ || draining_ || runtime_error_)
      return std::vector<EngineStats>(n);
    stats_requests_.push_back(std::move(promise));
  }
  cv_ingress_.notify_all();
  if (fut.wait_for(std::chrono::seconds(10)) != std::future_status::ready)
    return std::vector<EngineStats>(n);
  std::vector<EngineStats> snapshot = fut.get();
  snapshot.resize(n);
  return snapshot;
}

RankShardedStats RankShardedEngine::stats() const {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  RankShardedStats agg;
  agg.submitted = submitted_.load(std::memory_order_relaxed);
  agg.admitted = admitted_.load(std::memory_order_relaxed);
  agg.rejected = rejected_.load(std::memory_order_relaxed);
  agg.completed = completed_.load(std::memory_order_relaxed);
  agg.shed = shed_.load(std::memory_order_relaxed);
  agg.resizes = resizes_.load(std::memory_order_relaxed);
  std::vector<EngineStats> engine_stats;
  if (config_.transport == TransportKind::kSocket) {
    engine_stats = fetch_remote_stats();
  } else {
    engine_stats.reserve(engines_.size());
    for (const auto& engine : engines_) engine_stats.push_back(engine->stats());
  }
  agg.shards.reserve(shard_state_.size());
  for (std::size_t i = 0; i < shard_state_.size(); ++i) {
    RankShardStats s;
    s.routed = shard_state_[i]->routed.load(std::memory_order_relaxed);
    s.served = shard_state_[i]->served.load(std::memory_order_relaxed);
    s.alive = shard_state_[i]->alive.load(std::memory_order_relaxed);
    s.engine = i < engine_stats.size() ? engine_stats[i] : EngineStats{};
    agg.shards.push_back(std::move(s));
  }
  return agg;
}

}  // namespace qkmps::serve
