#include "serve/rank_sharded_engine.hpp"

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <utility>

#include "serve/feature_key.hpp"
#include "util/error.hpp"

namespace qkmps::serve {

RankShardedEngine::RankShardedEngine(ModelBundle bundle,
                                     RankShardedEngineConfig config)
    : RankShardedEngine(
          std::make_shared<const ModelBundle>(std::move(bundle)), config) {}

RankShardedEngine::RankShardedEngine(std::shared_ptr<const ModelBundle> bundle,
                                     RankShardedEngineConfig config)
    : bundle_(std::move(bundle)), config_(config) {
  QKMPS_CHECK(bundle_ != nullptr);
  QKMPS_CHECK_MSG(config_.num_shards >= 1, "need at least one shard rank");
  QKMPS_CHECK_MSG(config_.ingress_capacity >= 1,
                  "ingress queue needs capacity >= 1");
  router_ = make_router(config_.router, config_.num_shards);
  const std::vector<std::size_t> lanes =
      shard_thread_lanes(config_.engine.num_threads, config_.num_shards);
  engines_.reserve(config_.num_shards);
  for (std::size_t i = 0; i < config_.num_shards; ++i) {
    EngineConfig engine_cfg = config_.engine;
    engine_cfg.num_threads = lanes[i];
    engines_.push_back(std::make_unique<InferenceEngine>(bundle_, engine_cfg));
    shard_state_.push_back(std::make_unique<ShardState>());
  }
  start_runtime();
}

RankShardedEngine::~RankShardedEngine() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  stop_runtime(/*final_stop=*/true);
}

std::size_t RankShardedEngine::num_shards() const {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  return engines_.size();
}

int RankShardedEngine::shard_for(const std::vector<double>& features) const {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  return router_->shard_for(features);
}

std::size_t RankShardedEngine::drain_batch_limit() const {
  return config_.drain_max_batch > 0 ? config_.drain_max_batch
                                     : config_.engine.max_batch;
}

std::future<RoutedPrediction> RankShardedEngine::submit(
    std::vector<double> features) {
  check_request_features(features, bundle_->num_features());
  Ingress request;
  request.features = std::move(features);
  request.submitted = std::chrono::steady_clock::now();
  std::future<RoutedPrediction> fut = request.promise.get_future();

  bool rejected = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (runtime_error_) std::rethrow_exception(runtime_error_);
    QKMPS_CHECK_MSG(!stopped_, "submit on a stopped RankShardedEngine");
    submitted_.fetch_add(1, std::memory_order_relaxed);
    if (ingress_.size() >= config_.ingress_capacity) {
      rejected = true;
    } else {
      ingress_.push_back(std::move(request));
      admitted_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (rejected) {
    // The request never reached the router, so no shard is charged for
    // it: shard stays -1 (routing happens rank-side, after admission).
    rejected_.fetch_add(1, std::memory_order_relaxed);
    RoutedPrediction out;
    out.status = ServeStatus::kRejected;
    out.shard = -1;
    out.total_seconds =
        seconds_between(request.submitted, std::chrono::steady_clock::now());
    request.promise.set_value(out);
  } else {
    cv_ingress_.notify_all();
  }
  return fut;
}

void RankShardedEngine::start_runtime() {
  runtime_ = std::make_unique<parallel::RankRuntime>(
      static_cast<int>(engines_.size()) + 1);
  runtime_thread_ = std::thread([this] {
    try {
      runtime_->run([this](parallel::Comm& comm) {
        if (comm.rank() == 0) {
          try {
            router_body(comm);
          } catch (...) {
            // A dying router must not strand shards in their blocking
            // recv — run() joins every rank before rethrowing, so an
            // unreleased shard would deadlock the destructor. send()
            // never blocks; a shard that already exited just leaves the
            // extra envelope unconsumed.
            for (int s = 1; s < comm.size(); ++s)
              comm.send(s,
                        ShardEnvelope{ShardEnvelope::Kind::kShutdown, 0, {}});
            throw;
          }
        } else {
          shard_body(comm, static_cast<std::size_t>(comm.rank() - 1));
        }
      });
    } catch (...) {
      // A rank body escaped its own handling (internal invariant failure,
      // e.g. a wire-type mismatch). Remember it so the next API call
      // fails loudly instead of hanging on a dead router.
      std::lock_guard<std::mutex> lock(mu_);
      runtime_error_ = std::current_exception();
    }
  });
}

void RankShardedEngine::stop_runtime(bool final_stop) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
    if (final_stop) stopped_ = true;
  }
  cv_ingress_.notify_all();
  if (runtime_thread_.joinable()) runtime_thread_.join();
  runtime_.reset();
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = false;
  }
}

void RankShardedEngine::add_shard() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    QKMPS_CHECK_MSG(!stopped_, "add_shard on a stopped RankShardedEngine");
  }
  stop_runtime(/*final_stop=*/false);

  // Existing engines keep their pools (and, crucially, their caches);
  // only the new shard's lane count reflects the grown topology. With
  // num_threads == 0 this slightly overcommits hardware threads after a
  // resize — cache retention is worth more than perfect lane budgeting.
  EngineConfig engine_cfg = config_.engine;
  engine_cfg.num_threads =
      shard_thread_lanes(config_.engine.num_threads, engines_.size() + 1)
          .back();
  engines_.push_back(std::make_unique<InferenceEngine>(bundle_, engine_cfg));
  shard_state_.push_back(std::make_unique<ShardState>());
  router_->add_shard();
  resizes_.fetch_add(1, std::memory_order_relaxed);

  start_runtime();
}

void RankShardedEngine::router_body(parallel::Comm& comm) {
  struct InFlight {
    std::promise<RoutedPrediction> promise;
    std::chrono::steady_clock::time_point submitted;
    std::chrono::steady_clock::time_point forwarded;
    int shard = -1;
  };
  std::unordered_map<std::uint64_t, InFlight> inflight;
  const int n = static_cast<int>(engines_.size());
  bool drain_marker_sent = false;
  int drained_acks = 0;

  for (;;) {
    bool progress = false;
    bool drain = false;
    std::deque<Ingress> pulled;
    {
      std::unique_lock<std::mutex> lock(mu_);
      // Idle with nothing in flight: sleep on the ingress cv (bounded by
      // router_poll so a drain request can't be missed). With work in
      // flight, fall through and poll the reply channels instead.
      if (ingress_.empty() && inflight.empty() && !draining_) {
        cv_ingress_.wait_for(lock, config_.router_poll, [this] {
          return draining_ || !ingress_.empty();
        });
      }
      pulled.swap(ingress_);
      drain = draining_;
    }

    for (Ingress& request : pulled) {
      progress = true;
      const std::uint64_t id = next_id_++;
      const int shard = router_->shard_for_hash(feature_hash(request.features));
      InFlight fl;
      fl.promise = std::move(request.promise);
      fl.submitted = request.submitted;
      fl.forwarded = std::chrono::steady_clock::now();
      fl.shard = shard;
      shard_state_[static_cast<std::size_t>(shard)]->routed.fetch_add(
          1, std::memory_order_relaxed);
      comm.send(shard + 1, ShardEnvelope{ShardEnvelope::Kind::kRequest, id,
                                         std::move(request.features)});
      inflight.emplace(id, std::move(fl));
    }

    for (int s = 0; s < n; ++s) {
      while (std::optional<ShardReply> reply =
                 comm.try_recv<ShardReply>(s + 1)) {
        progress = true;
        if (reply->kind == ShardReply::Kind::kDrained) {
          ++drained_acks;
          continue;
        }
        const auto it = inflight.find(reply->id);
        QKMPS_CHECK_MSG(it != inflight.end(),
                        "shard replied to an unknown request id");
        InFlight fl = std::move(it->second);
        inflight.erase(it);
        const auto now = std::chrono::steady_clock::now();
        if (reply->kind == ShardReply::Kind::kPrediction) {
          RoutedPrediction out;
          out.status = ServeStatus::kServed;
          out.shard = fl.shard;
          out.prediction = reply->prediction;
          out.queue_seconds = seconds_between(fl.submitted, fl.forwarded);
          out.total_seconds = seconds_between(fl.submitted, now);
          completed_.fetch_add(1, std::memory_order_relaxed);
          fl.promise.set_value(out);
        } else {
          QKMPS_CHECK_MSG(reply->kind == ShardReply::Kind::kFailed,
                          "unexpected reply kind in router loop");
          completed_.fetch_add(1, std::memory_order_relaxed);
          fl.promise.set_exception(std::make_exception_ptr(
              Error("shard batch failed: " + reply->error)));
        }
      }
    }

    if (drain) {
      if (!drain_marker_sent) {
        // Flush barrier: channels are FIFO, so a shard's kDrained ack
        // proves every envelope sent before the marker has been scored
        // and its replies are already queued back to us.
        for (int s = 0; s < n; ++s)
          comm.send(s + 1,
                    ShardEnvelope{ShardEnvelope::Kind::kDrain, 0, {}});
        drain_marker_sent = true;
      }
      bool ingress_empty;
      {
        std::lock_guard<std::mutex> lock(mu_);
        ingress_empty = ingress_.empty();
      }
      if (ingress_empty && inflight.empty() && drained_acks == n) break;
    }

    if (!progress && (drain || !inflight.empty()))
      std::this_thread::sleep_for(config_.router_poll);
  }

  // Shutdown handshake: every shard acks kStopped after finishing its
  // in-hand batch, so joining the runtime cannot strand work. The timed
  // recv turns a protocol bug into a loud error instead of a destructor
  // that never returns.
  for (int s = 0; s < n; ++s)
    comm.send(s + 1, ShardEnvelope{ShardEnvelope::Kind::kShutdown, 0, {}});
  for (int s = 0; s < n; ++s) {
    const std::optional<ShardReply> ack =
        comm.recv_for<ShardReply>(s + 1, std::chrono::microseconds(30'000'000));
    QKMPS_CHECK_MSG(ack.has_value(), "shard never acked shutdown");
    QKMPS_CHECK_MSG(ack->kind == ShardReply::Kind::kStopped,
                    "expected kStopped ack during shutdown");
  }
}

void RankShardedEngine::shard_body(parallel::Comm& comm,
                                   std::size_t shard_index) {
  InferenceEngine& engine = *engines_[shard_index];
  ShardState& state = *shard_state_[shard_index];
  const std::size_t limit = std::max<std::size_t>(1, drain_batch_limit());

  for (;;) {
    ShardEnvelope first = comm.recv<ShardEnvelope>(0);
    if (first.kind == ShardEnvelope::Kind::kShutdown) {
      comm.send(0, ShardReply{ShardReply::Kind::kStopped, 0, {}, {}});
      return;
    }
    if (first.kind == ShardEnvelope::Kind::kDrain) {
      comm.send(0, ShardReply{ShardReply::Kind::kDrained, 0, {}, {}});
      continue;
    }

    // Gather: micro-batching emerges under load exactly as in the
    // in-process frontend — whatever envelopes are already queued join
    // the batch, up to the drain bound; an idle channel means a batch of
    // one. A control envelope ends the gather and is honoured after the
    // batch is scored (FIFO: its ack must follow our replies).
    std::vector<std::uint64_t> ids{first.id};
    std::vector<std::vector<double>> rows;
    rows.push_back(std::move(first.features));
    std::optional<ShardEnvelope::Kind> control;
    while (rows.size() < limit) {
      std::optional<ShardEnvelope> next = comm.try_recv<ShardEnvelope>(0);
      if (!next) break;
      if (next->kind != ShardEnvelope::Kind::kRequest) {
        control = next->kind;
        break;
      }
      ids.push_back(next->id);
      rows.push_back(std::move(next->features));
    }

    try {
      // Trusted entry: rows were validated once at submit().
      const std::vector<Prediction> predictions =
          engine.predict_batch_trusted(std::move(rows));
      // Counter lands before the replies so a caller that joined on its
      // futures always observes it accounted for (routed == served).
      state.served.fetch_add(ids.size(), std::memory_order_relaxed);
      for (std::size_t i = 0; i < ids.size(); ++i)
        comm.send(0, ShardReply{ShardReply::Kind::kPrediction, ids[i],
                                predictions[i], {}});
    } catch (const std::exception& e) {
      for (std::size_t i = 0; i < ids.size(); ++i)
        comm.send(0,
                  ShardReply{ShardReply::Kind::kFailed, ids[i], {}, e.what()});
    }

    if (control) {
      if (*control == ShardEnvelope::Kind::kShutdown) {
        comm.send(0, ShardReply{ShardReply::Kind::kStopped, 0, {}, {}});
        return;
      }
      comm.send(0, ShardReply{ShardReply::Kind::kDrained, 0, {}, {}});
    }
  }
}

RankShardedStats RankShardedEngine::stats() const {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  RankShardedStats agg;
  agg.submitted = submitted_.load(std::memory_order_relaxed);
  agg.admitted = admitted_.load(std::memory_order_relaxed);
  agg.rejected = rejected_.load(std::memory_order_relaxed);
  agg.completed = completed_.load(std::memory_order_relaxed);
  agg.resizes = resizes_.load(std::memory_order_relaxed);
  agg.shards.reserve(engines_.size());
  for (std::size_t i = 0; i < engines_.size(); ++i) {
    RankShardStats s;
    s.routed = shard_state_[i]->routed.load(std::memory_order_relaxed);
    s.served = shard_state_[i]->served.load(std::memory_order_relaxed);
    s.engine = engines_[i]->stats();
    agg.shards.push_back(std::move(s));
  }
  return agg;
}

}  // namespace qkmps::serve
