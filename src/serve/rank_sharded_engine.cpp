#include "serve/rank_sharded_engine.hpp"

#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <optional>
#include <thread>
#include <unordered_map>
#include <utility>

#include "obs/metrics.hpp"
#include "serve/feature_key.hpp"
#include "serve/shard_worker.hpp"
#include "util/error.hpp"

extern char** environ;

namespace qkmps::serve {

namespace {

/// Fresh Unix-domain address per engine incarnation: pid + a process-wide
/// counter keeps concurrently constructed engines (and engine-heavy test
/// suites) from colliding on the filesystem.
std::string default_socket_address() {
  static std::atomic<unsigned> seq{0};
  return "unix:/tmp/qkmps_rankd_" + std::to_string(::getpid()) + "_" +
         std::to_string(seq.fetch_add(1)) + ".sock";
}

long spawn_worker_process(const std::string& exe,
                          const std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 2);
  argv.push_back(const_cast<char*>(exe.c_str()));
  for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  pid_t pid = 0;
  const int rc =
      ::posix_spawn(&pid, exe.c_str(), nullptr, nullptr, argv.data(), environ);
  QKMPS_CHECK_MSG(rc == 0, "posix_spawn(" << exe
                                          << ") failed: " << std::strerror(rc));
  return static_cast<long>(pid);
}

/// waitpid that retries EINTR: a signal delivered to this thread (a
/// profiler tick, a debugger attach, SIGCHLD itself) must not abandon
/// the wait — an abandoned wait leaks the child as a zombie for the
/// life of the engine process.
pid_t waitpid_eintr(long pid, int* status, int options) {
  pid_t r;
  do {
    r = ::waitpid(static_cast<pid_t>(pid), status, options);
  } while (r == -1 && errno == EINTR);
  return r;
}

/// Waits `grace` for the worker to exit on its own (it just saw its link
/// close or a kShutdown), then escalates to SIGKILL — the destructor must
/// never hang on a wedged child.
void reap_worker(long pid, std::chrono::milliseconds grace) {
  const auto deadline = std::chrono::steady_clock::now() + grace;
  for (;;) {
    int status = 0;
    const pid_t r = waitpid_eintr(pid, &status, WNOHANG);
    if (r != 0) return;  // reaped (or already gone / not ours)
    if (std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ::kill(static_cast<pid_t>(pid), SIGKILL);
  int status = 0;
  waitpid_eintr(pid, &status, 0);
}

/// Full-precision decimal so the weight a worker parses from its command
/// line is bit-identical to the one the router pinned in the handshake
/// policy (17 significant digits round-trip any double).
std::string format_weight(double weight) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", weight);
  return buf;
}

}  // namespace

const char* to_string(TransportKind kind) {
  switch (kind) {
    case TransportKind::kInProcess:
      return "inproc";
    case TransportKind::kSocket:
      return "socket";
  }
  return "unknown";
}

RankShardedEngine::RankShardedEngine(ModelBundle bundle,
                                     RankShardedEngineConfig config)
    : RankShardedEngine(
          std::make_shared<const ModelBundle>(std::move(bundle)), config) {}

RankShardedEngine::RankShardedEngine(std::shared_ptr<const ModelBundle> bundle,
                                     RankShardedEngineConfig config)
    : bundle_(std::move(bundle)),
      config_(std::move(config)),
      flight_(std::max<std::size_t>(1, config_.flight_trace_capacity),
              std::max<std::size_t>(1, config_.flight_event_capacity)) {
  QKMPS_CHECK(bundle_ != nullptr);
  QKMPS_CHECK_MSG(config_.num_shards >= 1, "need at least one shard");
  QKMPS_CHECK_MSG(config_.ingress_capacity >= 1,
                  "ingress queue needs capacity >= 1");
  std::vector<double> weights = config_.shard_weights;
  if (weights.empty()) weights.assign(config_.num_shards, 1.0);
  QKMPS_CHECK_MSG(weights.size() == config_.num_shards,
                  "shard_weights has " << weights.size() << " entries for "
                                       << config_.num_shards << " shards");
  {
    // No other thread exists yet; the lock is for the analysis, which
    // ties these containers to topology_mu_ everywhere.
    util::MutexLock topo(topology_mu_);
    router_ = make_router(config_.router, weights);
    for (std::size_t i = 0; i < config_.num_shards; ++i) {
      shard_state_.push_back(std::make_unique<ShardState>());
      shard_state_.back()->weight = weights[i];
    }
    if (config_.transport == TransportKind::kInProcess) {
      const std::vector<std::size_t> lanes =
          shard_thread_lanes(config_.engine.num_threads, config_.num_shards);
      engines_.reserve(config_.num_shards);
      for (std::size_t i = 0; i < config_.num_shards; ++i) {
        EngineConfig engine_cfg = config_.engine;
        engine_cfg.num_threads = lanes[i];
        engines_.push_back(
            std::make_unique<InferenceEngine>(bundle_, engine_cfg));
      }
    }
  }
  start_runtime();
}

RankShardedEngine::~RankShardedEngine() {
  util::MutexLock lifecycle(lifecycle_mu_);
  stop_runtime(/*final_stop=*/true);
  if (!config_.flight_dump_path.empty()) {
    try {
      flight_.dump_to_file(config_.flight_dump_path);
    } catch (const std::exception&) {
      // A postmortem that cannot be written must not turn a clean
      // shutdown into a terminate (throwing destructor).
    }
  }
}

std::size_t RankShardedEngine::num_shards() const {
  util::MutexLock topo(topology_mu_);
  return shard_state_.size();
}

int RankShardedEngine::shard_for(const std::vector<double>& features) const {
  util::MutexLock topo(topology_mu_);
  return router_->shard_for(features);
}

long RankShardedEngine::worker_pid(std::size_t shard) const {
  util::MutexLock topo(topology_mu_);
  if (shard >= shard_state_.size() || shard >= worker_pids_.size()) return -1;
  const ShardState& state = *shard_state_[shard];
  if (state.removed.load(std::memory_order_relaxed) ||
      state.demoted.load(std::memory_order_relaxed) ||
      !state.alive.load(std::memory_order_relaxed))
    return -1;
  return worker_pids_[shard];
}

std::size_t RankShardedEngine::drain_batch_limit() const {
  return config_.drain_max_batch > 0 ? config_.drain_max_batch
                                     : config_.engine.max_batch;
}

std::future<RoutedPrediction> RankShardedEngine::submit(
    std::vector<double> features) {
  check_request_features(features, bundle_->num_features());
  Ingress request;
  request.features = std::move(features);
  request.trace = obs::TraceContext::begin();
  request.submitted = request.trace.epoch;  // one clock read, two uses
  std::future<RoutedPrediction> fut = request.promise.get_future();

  bool rejected = false;
  {
    util::MutexLock lock(mu_);
    if (runtime_error_) std::rethrow_exception(runtime_error_);
    QKMPS_CHECK_MSG(!stopped_, "submit on a stopped RankShardedEngine");
    submitted_.fetch_add(1, std::memory_order_relaxed);
    if (ingress_.size() >= config_.ingress_capacity) {
      rejected = true;
    } else {
      ingress_.push_back(std::move(request));
      admitted_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (rejected) {
    // The request never reached the router, so no shard is charged for
    // it: shard stays -1 (routing happens router-side, after admission).
    rejected_.fetch_add(1, std::memory_order_relaxed);
    RoutedPrediction out;
    out.status = ServeStatus::kRejected;
    out.shard = -1;
    out.total_seconds =
        seconds_between(request.submitted, std::chrono::steady_clock::now());
    request.promise.set_value(out);
  } else {
    cv_ingress_.notify_all();
  }
  return fut;
}

void RankShardedEngine::start_runtime() {
  if (config_.transport == TransportKind::kSocket) {
    start_socket_runtime();
    return;
  }
  std::size_t n_engines;
  {
    util::MutexLock topo(topology_mu_);
    n_engines = engines_.size();
  }
  runtime_ = std::make_unique<parallel::RankRuntime>(
      static_cast<int>(n_engines) + 1);
  runtime_thread_ = std::thread([this] {
    try {
      runtime_->run([this](parallel::Comm& comm) {
        if (comm.rank() == 0) {
          std::vector<std::unique_ptr<parallel::CommTransport>> links;
          std::vector<parallel::Transport*> ptrs;
          for (int s = 1; s < comm.size(); ++s) {
            links.push_back(std::make_unique<parallel::CommTransport>(comm, s));
            ptrs.push_back(links.back().get());
          }
          try {
            router_loop(ptrs);
          } catch (...) {
            // A dying router must not strand shards in their recv loop —
            // run() joins every rank before rethrowing, so an unreleased
            // shard would deadlock the destructor. CommTransport::send
            // never blocks; a shard that already exited just leaves the
            // extra envelope unconsumed.
            for (parallel::Transport* link : ptrs)
              link->send(encode_envelope(
                  ShardEnvelope{ShardEnvelope::Kind::kShutdown, 0, {}}));
            throw;
          }
        } else {
          // A removed shard's slot still gets a rank (ids are never
          // reused) but has no engine left — its loop is a no-op; the
          // router never addresses it.
          // Engine slots only mutate between runtimes (the resize caller
          // holds lifecycle_mu_ with this thread joined), so the pointer
          // grabbed here stays valid for the runtime's whole life.
          InferenceEngine* engine = nullptr;
          {
            util::MutexLock topo(topology_mu_);
            engine = engines_[static_cast<std::size_t>(comm.rank() - 1)].get();
          }
          if (engine != nullptr) {
            parallel::CommTransport link(comm, 0);
            ShardWorkerOptions options;
            options.batch_limit = std::max<std::size_t>(1, drain_batch_limit());
            run_shard_worker(link, *engine, options);
          }
        }
      });
    } catch (...) {
      // A rank body escaped its own handling (internal invariant failure,
      // e.g. a wire-codec mismatch). Remember it so the next API call
      // fails loudly instead of hanging on a dead router.
      util::MutexLock lock(mu_);
      runtime_error_ = std::current_exception();
    }
  });
}

std::vector<std::string> RankShardedEngine::worker_args(
    std::size_t shard, std::size_t threads, double weight,
    std::uint64_t generation) const {
  std::vector<std::string> args = {
      "--connect=" + listener_->address(),
      "--shard=" + std::to_string(shard),
      "--bundle=" + config_.socket.bundle_dir,
      "--max-batch=" + std::to_string(config_.engine.max_batch),
      "--gather=" + std::to_string(drain_batch_limit()),
      "--batch-deadline-us=" +
          std::to_string(config_.engine.batch_deadline.count()),
      "--threads=" + std::to_string(threads),
      "--cache=" + std::to_string(config_.engine.cache_capacity),
      "--memo=" + std::to_string(config_.engine.memo_capacity),
      "--weight=" + format_weight(weight),
      "--generation=" + std::to_string(generation)};
  args.insert(args.end(), config_.socket.worker_extra_args.begin(),
              config_.socket.worker_extra_args.end());
  return args;
}

void RankShardedEngine::start_socket_runtime() {
  const SocketTransportConfig& sc = config_.socket;
  QKMPS_CHECK_MSG(!sc.worker_path.empty(),
                  "socket transport needs socket.worker_path (the "
                  "serving_rankd binary)");
  QKMPS_CHECK_MSG(!sc.bundle_dir.empty(),
                  "socket transport needs socket.bundle_dir (the bundle "
                  "handoff directory)");
  // Hand the model to the workers through the bundle format — the same
  // artifact a real deployment ships. save_bundle is atomic, so workers
  // can never observe a half-written manifest.
  save_bundle(*bundle_, sc.bundle_dir);

  const std::string address =
      sc.listen_address.empty() ? default_socket_address() : sc.listen_address;
  // The listener stays open for the engine's whole life — it is what
  // makes the fleet elastic: add_shard() and the respawn path accept
  // fresh workers on it long after the initial fleet handshakes in.
  listener_ = std::make_unique<parallel::SocketListener>(
      parallel::SocketListener::listen(address));

  // ShardState objects are stable once published (slots are never
  // erased), so the startup below works through raw pointers grabbed in
  // one locked sweep instead of holding topology_mu_ across spawns.
  std::vector<ShardState*> states;
  {
    util::MutexLock topo(topology_mu_);
    states.reserve(shard_state_.size());
    for (const auto& st : shard_state_) states.push_back(st.get());
  }
  const std::size_t n = states.size();
  // Same lane budgeting as the in-process constructor: num_threads == 0
  // divides the hardware threads across the shards. The workers share
  // this host, so handing each a full-width pool would oversubscribe it
  // N-fold — and would make the bench's inproc-vs-socket comparison
  // measure thread counts instead of transport cost.
  const std::vector<std::size_t> lanes =
      shard_thread_lanes(config_.engine.num_threads, n);
  // Spawn and handshake into locals; links_/worker_pids_ publish in a
  // single locked swap once the whole fleet has arrived, so concurrent
  // worker_pid()/stats() readers never see a half-built topology.
  std::vector<long> pids;
  std::vector<std::unique_ptr<parallel::SocketTransport>> conns(n);
  try {
    for (std::size_t i = 0; i < n; ++i) {
      states[i]->threads = lanes[i];
      pids.push_back(spawn_worker_process(
          sc.worker_path,
          worker_args(i, lanes[i], states[i]->weight, 0)));
    }
    for (std::size_t i = 0; i < n; ++i) {
      std::unique_ptr<parallel::SocketTransport> conn =
          listener_->accept_for(sc.connect_timeout);
      QKMPS_CHECK_MSG(conn != nullptr,
                      "timed out waiting for shard workers to connect ("
                          << i << " of " << n << " arrived)");
      ShardAcceptPolicy policy;
      policy.num_shards = n;
      policy.num_features = bundle_->num_features();
      const ShardHello hello = shard_handshake_server(
          *conn, policy,
          std::chrono::duration_cast<std::chrono::microseconds>(
              sc.connect_timeout));
      QKMPS_CHECK_MSG(conns[hello.shard_index] == nullptr,
                      "two workers claimed shard " << hello.shard_index);
      QKMPS_CHECK_MSG(hello.weight == states[hello.shard_index]->weight,
                      "worker for shard " << hello.shard_index
                                          << " echoed the wrong ring weight");
      conns[hello.shard_index] = std::move(conn);
      flight_.record_event(
          obs::EventKind::kSpawn, static_cast<int>(hello.shard_index), 0,
          "pid " + std::to_string(pids[hello.shard_index]));
    }
  } catch (...) {
    // Fail construction loudly but cleanly: no orphan processes, no
    // stale socket files.
    conns.clear();
    listener_.reset();
    for (long pid : pids) reap_worker(pid, std::chrono::milliseconds(500));
    throw;
  }
  {
    util::MutexLock topo(topology_mu_);
    links_.reserve(n);
    for (auto& conn : conns) links_.push_back(std::move(conn));
    worker_pids_ = std::move(pids);
  }

  runtime_thread_ = std::thread([this] {
    std::vector<parallel::Transport*> ptrs;
    {
      util::MutexLock topo(topology_mu_);
      ptrs.reserve(links_.size());
      for (const auto& link : links_) ptrs.push_back(link.get());
    }
    try {
      router_loop(std::move(ptrs));
    } catch (...) {
      util::MutexLock lock(mu_);
      runtime_error_ = std::current_exception();
    }
    // Fulfil any stats or resize request that raced the shutdown so no
    // caller is left waiting on a promise nobody owns.
    std::deque<std::promise<std::vector<EngineStats>>> stats_leftovers;
    std::deque<TopologyCommand> topology_leftovers;
    {
      util::MutexLock lock(mu_);
      stats_leftovers.swap(stats_requests_);
      topology_leftovers.swap(topology_requests_);
    }
    std::size_t n_links;
    {
      util::MutexLock topo(topology_mu_);
      n_links = links_.size();
    }
    for (auto& p : stats_leftovers)
      p.set_value(std::vector<EngineStats>(n_links));
    for (auto& c : topology_leftovers)
      c.done.set_exception(std::make_exception_ptr(
          Error("engine stopped before the resize could run")));
  });
}

void RankShardedEngine::stop_runtime(bool final_stop) {
  {
    util::MutexLock lock(mu_);
    draining_ = true;
    if (final_stop) stopped_ = true;
  }
  cv_ingress_.notify_all();
  if (runtime_thread_.joinable()) runtime_thread_.join();
  runtime_.reset();
  // Socket teardown: closing the links EOFs any worker the shutdown
  // handshake missed (it exits on the transport error), then the reaper
  // waits it out — escalating to SIGKILL so a wedged child cannot hang
  // the destructor. The vectors mutate under topology_mu_ because
  // worker_pid()/stats() readers may still be in flight.
  std::vector<long> pids;
  {
    util::MutexLock topo(topology_mu_);
    links_.clear();
    listener_.reset();
    pids.swap(worker_pids_);
  }
  for (long pid : pids)
    if (pid > 0) reap_worker(pid, std::chrono::milliseconds(5000));
  {
    util::MutexLock lock(mu_);
    draining_ = false;
  }
}

void RankShardedEngine::add_shard(double weight) {
  QKMPS_CHECK_MSG(weight > 0.0,
                  "shard weight must be positive, got " << weight);
  util::MutexLock lifecycle(lifecycle_mu_);
  {
    util::MutexLock lock(mu_);
    QKMPS_CHECK_MSG(!stopped_, "add_shard on a stopped RankShardedEngine");
  }

  if (config_.transport == TransportKind::kSocket) {
    // The router thread is the topology's single writer: hand it the
    // resize and wait. Survivors keep serving throughout — their caches
    // live in their own processes and never notice the growth.
    TopologyCommand cmd;
    cmd.op = TopologyCommand::Op::kAdd;
    cmd.weight = weight;
    std::future<void> done = cmd.done.get_future();
    {
      util::MutexLock lock(mu_);
      if (runtime_error_) std::rethrow_exception(runtime_error_);
      topology_requests_.push_back(std::move(cmd));
    }
    cv_ingress_.notify_all();
    done.get();  // rethrows a failed spawn/handshake
    resizes_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  stop_runtime(/*final_stop=*/false);

  // Existing engines keep their pools (and, crucially, their caches);
  // only the new shard's lane count reflects the grown topology. With
  // num_threads == 0 this slightly overcommits hardware threads after a
  // resize — cache retention is worth more than perfect lane budgeting.
  std::size_t n_engines;
  {
    util::MutexLock topo(topology_mu_);
    n_engines = engines_.size();
  }
  EngineConfig engine_cfg = config_.engine;
  engine_cfg.num_threads =
      shard_thread_lanes(config_.engine.num_threads, n_engines + 1).back();
  {
    util::MutexLock topo(topology_mu_);
    engines_.push_back(std::make_unique<InferenceEngine>(bundle_, engine_cfg));
    shard_state_.push_back(std::make_unique<ShardState>());
    shard_state_.back()->weight = weight;
    router_->add_shard(weight);
  }
  resizes_.fetch_add(1, std::memory_order_relaxed);
  flight_.record_event(obs::EventKind::kShardAdded,
                       static_cast<int>(n_engines), 0, "in-process");

  start_runtime();
}

void RankShardedEngine::remove_shard(std::size_t shard) {
  util::MutexLock lifecycle(lifecycle_mu_);
  {
    util::MutexLock lock(mu_);
    QKMPS_CHECK_MSG(!stopped_, "remove_shard on a stopped RankShardedEngine");
  }
  {
    util::MutexLock topo(topology_mu_);
    QKMPS_CHECK_MSG(shard < shard_state_.size(),
                    "remove_shard(" << shard << ") out of range");
    QKMPS_CHECK_MSG(!shard_state_[shard]->removed.load(),
                    "shard " << shard << " was already removed");
    std::size_t remaining = 0;
    for (const auto& state : shard_state_)
      if (!state->removed.load()) ++remaining;
    QKMPS_CHECK_MSG(remaining > 1, "cannot remove the last shard");
  }

  if (config_.transport == TransportKind::kSocket) {
    TopologyCommand cmd;
    cmd.op = TopologyCommand::Op::kRemove;
    cmd.shard = shard;
    std::future<void> done = cmd.done.get_future();
    {
      util::MutexLock lock(mu_);
      if (runtime_error_) std::rethrow_exception(runtime_error_);
      topology_requests_.push_back(std::move(cmd));
    }
    cv_ingress_.notify_all();
    done.get();
    resizes_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  // In-process: the drain inside stop_runtime serves the shard's
  // in-flight work before its engine (and caches) are released.
  stop_runtime(/*final_stop=*/false);
  {
    util::MutexLock topo(topology_mu_);
    router_->remove_shard(static_cast<int>(shard));
    shard_state_[shard]->removed.store(true, std::memory_order_relaxed);
    engines_[shard].reset();
  }
  resizes_.fetch_add(1, std::memory_order_relaxed);
  flight_.record_event(obs::EventKind::kShardRemoved, static_cast<int>(shard),
                       0, "in-process");
  start_runtime();
}

void RankShardedEngine::router_loop(std::vector<parallel::Transport*> links) {
  struct InFlight {
    std::promise<RoutedPrediction> promise;
    std::chrono::steady_clock::time_point submitted;
    std::chrono::steady_clock::time_point forwarded;
    std::chrono::steady_clock::time_point wire_start;  ///< envelope send
    int shard = -1;
    obs::TraceContext trace;
  };
  std::unordered_map<std::uint64_t, InFlight> inflight;
  const bool socket = config_.transport == TransportKind::kSocket;
  bool drain_marker_sent = false;
  // Sized when the drain marker goes out: the topology is frozen from
  // that point on (resize commands are refused while draining).
  std::vector<char> drain_acked;
  // Socket mode: a connected-but-unresponsive worker (deadlocked,
  // SIGSTOP'd) owing replies or a drain ack would otherwise stall the
  // drain loop — and with it the destructor — forever. Any progress
  // pushes the deadline out; total silence past it demotes the
  // offenders, matching the shutdown handshake's escalation.
  constexpr std::chrono::seconds kDrainStall{30};
  std::chrono::steady_clock::time_point drain_stall_deadline{};

  // A shard is addressable when it is neither dead nor drained out of
  // the topology. Removed slots keep their index (ids are never reused)
  // but own no ring points, no link, and no futures.
  const auto routable = [this](int s) {
    util::MutexLock topo(topology_mu_);
    const ShardState& state = *shard_state_[static_cast<std::size_t>(s)];
    return state.alive.load(std::memory_order_relaxed) &&
           !state.removed.load(std::memory_order_relaxed);
  };

  // Shed with status: the worker is gone, so the honest outcome is a
  // resolved future that says so — never a hang, never a dropped
  // promise, never a re-route (assignments stay a pure function of the
  // topology so client-side routing keeps working).
  const auto shed = [this](InFlight fl, const std::string& why) {
    const auto now = std::chrono::steady_clock::now();
    RoutedPrediction out;
    out.status = ServeStatus::kShed;
    out.shard = fl.shard;
    out.error = why;
    out.queue_seconds = seconds_between(fl.submitted, fl.forwarded);
    out.total_seconds = seconds_between(fl.submitted, now);
    // A shed request's trace still tells its story: how long it waited
    // and (via the flight recorder) what incident it died in.
    fl.trace.add_span("admission_wait", fl.submitted, fl.forwarded);
    out.trace = std::move(fl.trace).finish(now);
    flight_.record_trace(out.trace);
    shed_.fetch_add(1, std::memory_order_relaxed);
    fl.promise.set_value(out);
  };

  const auto generation_of = [this](int s) {
    util::MutexLock topo(topology_mu_);
    return shard_state_[static_cast<std::size_t>(s)]->generation.load(
        std::memory_order_relaxed);
  };

  const auto mark_dead = [&](int s, const std::string& why) {
    ShardState* state_ptr;
    {
      util::MutexLock topo(topology_mu_);
      state_ptr = shard_state_[static_cast<std::size_t>(s)].get();
    }
    ShardState& state = *state_ptr;
    if (!state.alive.exchange(false, std::memory_order_relaxed)) return;
    flight_.record_event(obs::EventKind::kWorkerDeath, s, generation_of(s),
                         why);
    std::size_t shed_count = 0;
    for (auto it = inflight.begin(); it != inflight.end();) {
      if (it->second.shard == s) {
        shed(std::move(it->second), "shard worker died: " + why);
        ++shed_count;
        it = inflight.erase(it);
      } else {
        ++it;
      }
    }
    // One aggregate kShed event per incident, not one per request: a
    // death under load sheds hundreds of futures, and per-request events
    // would wash the spawn/respawn/demotion story out of the event ring
    // (the per-request detail is in the trace ring and the counters).
    if (shed_count > 0)
      flight_.record_event(
          obs::EventKind::kShed, s, generation_of(s),
          "shed " + std::to_string(shed_count) + " in-flight requests");
    // Arm the self-heal: a fresh death gets a fresh attempt budget and
    // the base backoff (the monitor below doubles it per failure).
    state.respawn_attempts = 0;
    state.respawn_delay = config_.socket.respawn_backoff;
    state.next_respawn = std::chrono::steady_clock::now() + state.respawn_delay;
  };

  // In-process transport failures are protocol bugs and escape (the
  // rank-0 catch turns them into a loud runtime_error_); a socket link
  // failure is an expected distributed-systems outcome and demotes the
  // shard to dead.
  const auto shard_send = [&](int s, const ShardEnvelope& envelope) -> bool {
    try {
      links[static_cast<std::size_t>(s)]->send(encode_envelope(envelope));
      return true;
    } catch (const Error& e) {
      if (!socket) throw;
      mark_dead(s, e.what());
      return false;
    }
  };

  const auto handle_reply = [&](int s, ShardReply reply) {
    if (reply.kind == ShardReply::Kind::kDrained) {
      drain_acked[static_cast<std::size_t>(s)] = 1;
      return;
    }
    if (reply.kind == ShardReply::Kind::kStats) {
      // A stats sweep that timed out and was abandoned; stale, drop it.
      return;
    }
    QKMPS_CHECK_MSG(reply.kind == ShardReply::Kind::kPrediction ||
                        reply.kind == ShardReply::Kind::kFailed,
                    "unexpected reply kind in router loop");
    const auto it = inflight.find(reply.id);
    QKMPS_CHECK_MSG(it != inflight.end(),
                    "shard replied to an unknown request id");
    InFlight fl = std::move(it->second);
    inflight.erase(it);
    const auto now = std::chrono::steady_clock::now();
    if (reply.kind == ShardReply::Kind::kPrediction) {
      // A trace-id mismatch is a protocol violation like an unknown
      // request id (the caller demotes the shard). An echo of 0 is legal:
      // a v2 peer decodes our envelopes without the trace tail.
      QKMPS_CHECK_MSG(
          reply.trace_id == 0 || reply.trace_id == fl.trace.trace_id,
          "shard echoed trace id " << reply.trace_id << " for request "
                                   << reply.id);
      {
        util::MutexLock topo(topology_mu_);
        shard_state_[static_cast<std::size_t>(s)]->served.fetch_add(
            1, std::memory_order_relaxed);
      }
      RoutedPrediction out;
      out.status = ServeStatus::kServed;
      out.shard = fl.shard;
      out.prediction = reply.prediction;
      out.queue_seconds = seconds_between(fl.submitted, fl.forwarded);

      // Stitch: router-side spans, then the worker's (recorded relative
      // to its batch start on its own clock) re-based to open at our wire
      // span — a coherent cross-process timeline with no clock agreement.
      fl.trace.add_span("admission_wait", fl.submitted, fl.forwarded);
      fl.trace.add_span("route", fl.forwarded, fl.wire_start);
      fl.trace.add_span("wire", fl.wire_start, now);
      const auto wire_offset = fl.wire_start - fl.trace.epoch;
      const std::uint64_t base_ns =
          wire_offset.count() <= 0
              ? 0
              : static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        wire_offset)
                        .count());
      for (const obs::Span& span : reply.spans)
        fl.trace.add_span_ns(span.name, base_ns + span.start_ns,
                             span.duration_ns, span.origin);
      const auto done = std::chrono::steady_clock::now();
      fl.trace.add_span("reply", now, done);
      out.total_seconds = seconds_between(fl.submitted, done);
      out.trace = std::move(fl.trace).finish(done);
      flight_.record_trace(out.trace);

      static obs::Histogram& queue_hist =
          obs::Registry::global().histogram("serve.latency.queue_seconds");
      static obs::Histogram& total_hist =
          obs::Registry::global().histogram("serve.latency.total_seconds");
      static obs::Histogram& wire_hist =
          obs::Registry::global().histogram("serve.latency.wire_seconds");
      queue_hist.observe(out.queue_seconds);
      total_hist.observe(out.total_seconds);
      wire_hist.observe(seconds_between(fl.wire_start, now));

      completed_.fetch_add(1, std::memory_order_relaxed);
      fl.promise.set_value(out);
    } else {
      completed_.fetch_add(1, std::memory_order_relaxed);
      fl.promise.set_exception(std::make_exception_ptr(
          Error("shard batch failed: " + reply.error)));
    }
  };

  const auto shard_try_recv = [&](int s) -> std::optional<ShardReply> {
    try {
      std::optional<std::vector<std::uint8_t>> bytes =
          links[static_cast<std::size_t>(s)]->try_recv();
      if (!bytes) return std::nullopt;
      return decode_reply(*bytes);
    } catch (const Error& e) {
      if (!socket) throw;
      mark_dead(s, e.what());
      return std::nullopt;
    }
  };

  // -------------------------------------------------------------------
  // Elastic machinery (socket mode). All of it runs on this thread —
  // the topology's single writer — so only the pointer-swap moments
  // take topology_mu_ (for the external readers), never the spawns,
  // accepts, or drains.

  // Accepts connections until one passes the pinned handshake or the
  // budget runs out. A refused straggler (a superseded generation that
  // connected late, a backlogged corpse) is not a failure — it is told
  // why and dropped, and we keep waiting for the worker we spawned.
  const auto accept_expected =
      [&](const ShardAcceptPolicy& policy, std::chrono::milliseconds budget)
      -> std::unique_ptr<parallel::SocketTransport> {
    const auto deadline = std::chrono::steady_clock::now() + budget;
    for (;;) {
      const auto left = deadline - std::chrono::steady_clock::now();
      QKMPS_CHECK_MSG(left > std::chrono::milliseconds::zero(),
                      "timed out waiting for the spawned worker to connect");
      std::unique_ptr<parallel::SocketTransport> conn = listener_->accept_for(
          std::chrono::duration_cast<std::chrono::milliseconds>(left));
      QKMPS_CHECK_MSG(conn != nullptr,
                      "timed out waiting for the spawned worker to connect");
      try {
        shard_handshake_server(
            *conn, policy,
            std::chrono::duration_cast<std::chrono::microseconds>(left));
        return conn;
      } catch (const Error& e) {
        flight_.record_event(
            obs::EventKind::kHandshakeRefused,
            policy.require_shard ? static_cast<int>(*policy.require_shard)
                                 : -1,
            policy.require_generation.value_or(0), e.what());
        if (std::chrono::steady_clock::now() >= deadline) throw;
      }
    }
  };

  // One respawn attempt for a dead (not removed, not demoted) slot:
  // reap the corpse, spawn the next generation with the slot's weight,
  // handshake it in pinned to (slot, generation, weight). Ring points
  // are a pure function of (shard, weight), so the replacement inherits
  // exactly the keyspace its predecessor owned — nothing else moves.
  const auto try_respawn = [&](std::size_t s) {
    ShardState* state_ptr;
    std::size_t fleet_size;
    {
      util::MutexLock topo(topology_mu_);
      state_ptr = shard_state_[s].get();
      fleet_size = shard_state_.size();
      const long corpse = worker_pids_[s];
      worker_pids_[s] = -1;
      if (corpse > 0) reap_worker(corpse, std::chrono::milliseconds(0));
    }
    ShardState& state = *state_ptr;
    const std::uint64_t generation =
        state.generation.load(std::memory_order_relaxed) + 1;
    long pid = -1;
    try {
      pid = spawn_worker_process(
          config_.socket.worker_path,
          worker_args(s, state.threads, state.weight, generation));
      ShardAcceptPolicy policy;
      policy.num_shards = fleet_size;
      policy.num_features = bundle_->num_features();
      policy.require_shard = s;
      policy.require_generation = generation;
      policy.require_weight = state.weight;
      std::unique_ptr<parallel::SocketTransport> conn =
          accept_expected(policy, config_.socket.connect_timeout);
      {
        util::MutexLock topo(topology_mu_);
        links_[s] = std::move(conn);
        worker_pids_[s] = pid;
        links[s] = links_[s].get();
      }
      state.generation.store(generation, std::memory_order_relaxed);
      state.respawns.fetch_add(1, std::memory_order_relaxed);
      state.respawn_attempts = 0;
      state.respawn_delay = config_.socket.respawn_backoff;
      // Back in rotation: requests hashing to this slot serve again.
      state.alive.store(true, std::memory_order_relaxed);
      flight_.record_event(obs::EventKind::kRespawn, static_cast<int>(s),
                           generation, "pid " + std::to_string(pid));
    } catch (const std::exception& e) {
      if (pid > 0) reap_worker(pid, std::chrono::milliseconds(500));
      ++state.respawn_attempts;
      flight_.record_event(
          obs::EventKind::kRespawnFailed, static_cast<int>(s), generation,
          "attempt " + std::to_string(state.respawn_attempts) + " of " +
              std::to_string(config_.socket.max_respawn_attempts) + ": " +
              e.what());
      if (state.respawn_attempts >= config_.socket.max_respawn_attempts) {
        // Out of budget: the slot sheds forever, loudly visible in
        // stats() — never a silent crash loop.
        state.demoted.store(true, std::memory_order_relaxed);
        flight_.record_event(obs::EventKind::kDemotion, static_cast<int>(s),
                             generation, "respawn budget exhausted");
        // The demotion postmortem: dump now, not only at destruction —
        // an incident report must survive however the process ends.
        if (!config_.flight_dump_path.empty()) {
          try {
            flight_.dump_to_file(config_.flight_dump_path);
          } catch (const std::exception&) {
            // Routing must outlive a failed postmortem write.
          }
        }
        return;
      }
      state.respawn_delay =
          std::min(state.respawn_delay * 2, config_.socket.respawn_backoff_max);
      state.next_respawn =
          std::chrono::steady_clock::now() + state.respawn_delay;
    }
  };

  // add_shard over live workers: spawn + handshake generation 0 of a
  // brand-new slot, then splice it into the topology in one locked
  // pointer swap. Survivors never stop serving; consistent hashing
  // moves only ~1/(N+1) of the keyspace onto the newcomer.
  const auto execute_add = [&](double weight) {
    std::size_t s;
    {
      util::MutexLock topo(topology_mu_);
      s = shard_state_.size();
    }
    const std::size_t threads =
        shard_thread_lanes(config_.engine.num_threads, s + 1).back();
    const long pid = spawn_worker_process(
        config_.socket.worker_path, worker_args(s, threads, weight, 0));
    std::unique_ptr<parallel::SocketTransport> conn;
    try {
      ShardAcceptPolicy policy;
      policy.num_shards = s + 1;
      policy.num_features = bundle_->num_features();
      policy.require_shard = s;
      policy.require_generation = 0;
      policy.require_weight = weight;
      conn = accept_expected(policy, config_.socket.connect_timeout);
    } catch (...) {
      reap_worker(pid, std::chrono::milliseconds(500));
      throw;
    }
    auto state = std::make_unique<ShardState>();
    state->weight = weight;
    state->threads = threads;
    {
      util::MutexLock topo(topology_mu_);
      shard_state_.push_back(std::move(state));
      links_.push_back(std::move(conn));
      worker_pids_.push_back(pid);
      router_->add_shard(weight);
      links.push_back(links_.back().get());
    }
    flight_.record_event(obs::EventKind::kShardAdded, static_cast<int>(s), 0,
                         "pid " + std::to_string(pid) + ", weight " +
                             format_weight(weight));
  };

  // remove_shard: ring handoff first (new routes skip the leaver
  // immediately), then drain what it still owes, then the shutdown
  // handshake and the reap. The slot stays, marked removed.
  const auto execute_remove = [&](std::size_t s) {
    ShardState* state_ptr;
    {
      // Handoff: erase the leaver's ring points. Links are FIFO, so
      // every envelope it owes predates the kDrain marker below.
      util::MutexLock topo(topology_mu_);
      router_->remove_shard(static_cast<int>(s));
      state_ptr = shard_state_[s].get();
    }
    ShardState& state = *state_ptr;
    if (routable(static_cast<int>(s))) {
      if (shard_send(static_cast<int>(s),
                     ShardEnvelope{ShardEnvelope::Kind::kDrain, 0, {}})) {
        auto stall = std::chrono::steady_clock::now() + kDrainStall;
        while (routable(static_cast<int>(s))) {
          try {
            std::optional<std::vector<std::uint8_t>> bytes =
                links[s]->recv_for(std::chrono::microseconds(10'000));
            if (!bytes) {
              if (std::chrono::steady_clock::now() > stall)
                mark_dead(static_cast<int>(s),
                          "no progress during removal drain");
              continue;
            }
            ShardReply reply = decode_reply(*bytes);
            if (reply.kind == ShardReply::Kind::kDrained) break;
            handle_reply(static_cast<int>(s), std::move(reply));
            stall = std::chrono::steady_clock::now() + kDrainStall;
          } catch (const Error& e) {
            mark_dead(static_cast<int>(s), e.what());
          }
        }
      }
      // Post-ack the leaver owes nothing (FIFO: its kDrained follows
      // every reply to pre-handoff envelopes), so the shutdown
      // handshake is immediate.
      if (routable(static_cast<int>(s)) &&
          shard_send(static_cast<int>(s),
                     ShardEnvelope{ShardEnvelope::Kind::kShutdown, 0, {}})) {
        while (routable(static_cast<int>(s))) {
          try {
            std::optional<std::vector<std::uint8_t>> bytes =
                links[s]->recv_for(std::chrono::microseconds(5'000'000));
            if (!bytes) {
              mark_dead(static_cast<int>(s), "no shutdown ack while leaving");
              break;
            }
            ShardReply reply = decode_reply(*bytes);
            if (reply.kind == ShardReply::Kind::kStopped) break;
            handle_reply(static_cast<int>(s), std::move(reply));
          } catch (const Error& e) {
            mark_dead(static_cast<int>(s), e.what());
          }
        }
      }
    }
    // Whether it left cleanly or died on the way out, its futures are
    // all resolved (served above, or shed by mark_dead). Defensive:
    // shed any stragglers so removal can never leak a promise.
    for (auto it = inflight.begin(); it != inflight.end();) {
      if (it->second.shard == static_cast<int>(s)) {
        shed(std::move(it->second), "shard removed");
        it = inflight.erase(it);
      } else {
        ++it;
      }
    }
    long pid;
    {
      util::MutexLock topo(topology_mu_);
      links_[s].reset();
      pid = worker_pids_[s];
      worker_pids_[s] = -1;
    }
    links[s] = nullptr;
    if (pid > 0) reap_worker(pid, std::chrono::milliseconds(5000));
    state.removed.store(true, std::memory_order_relaxed);
    flight_.record_event(obs::EventKind::kShardRemoved, static_cast<int>(s),
                         state.generation.load(std::memory_order_relaxed),
                         "");
  };

  for (;;) {
    bool progress = false;
    bool drain = false;
    std::deque<Ingress> pulled;
    std::optional<std::promise<std::vector<EngineStats>>> stats_request;
    std::optional<TopologyCommand> topology_command;
    {
      util::UniqueLock lock(mu_);
      // Idle with nothing in flight: sleep on the ingress cv (bounded by
      // router_poll so a drain request can't be missed). With work in
      // flight, fall through and poll the reply links instead.
      if (ingress_.empty() && inflight.empty() && !draining_ &&
          stats_requests_.empty() && topology_requests_.empty()) {
        const auto idle_deadline =
            std::chrono::steady_clock::now() + config_.router_poll;
        while (!draining_ && ingress_.empty() && stats_requests_.empty() &&
               topology_requests_.empty()) {
          if (cv_ingress_.wait_until(lock, idle_deadline) ==
              std::cv_status::timeout)
            break;
        }
      }
      pulled.swap(ingress_);
      drain = draining_;
      if (!stats_requests_.empty()) {
        stats_request = std::move(stats_requests_.front());
        stats_requests_.pop_front();
      }
      if (!topology_requests_.empty()) {
        topology_command = std::move(topology_requests_.front());
        topology_requests_.pop_front();
      }
    }

    for (Ingress& request : pulled) {
      progress = true;
      const std::uint64_t id = next_id_++;
      int shard;
      ShardState* target;
      {
        util::MutexLock topo(topology_mu_);
        shard = router_->shard_for_hash(feature_hash(request.features));
        target = shard_state_[static_cast<std::size_t>(shard)].get();
      }
      InFlight fl;
      fl.promise = std::move(request.promise);
      fl.submitted = request.submitted;
      fl.forwarded = std::chrono::steady_clock::now();
      fl.shard = shard;
      fl.trace = std::move(request.trace);
      if (!routable(shard)) {
        shed(std::move(fl), "shard worker died before the request");
        continue;
      }
      target->routed.fetch_add(1, std::memory_order_relaxed);
      ShardEnvelope envelope{ShardEnvelope::Kind::kRequest, id,
                             std::move(request.features)};
      envelope.trace_id = fl.trace.trace_id;  // the worker echoes it back
      fl.wire_start = std::chrono::steady_clock::now();
      inflight.emplace(id, std::move(fl));
      shard_send(shard, envelope);
      // On failure mark_dead already shed this request out of inflight.
    }

    int n = static_cast<int>(links.size());
    for (int s = 0; s < n; ++s) {
      if (!routable(s)) continue;
      while (std::optional<ShardReply> reply = shard_try_recv(s)) {
        progress = true;
        // A well-framed but protocol-violating reply (duplicate/unknown
        // id, spurious kind) gets the same demotion a dead link gets:
        // one misbehaving worker must not take the router — and every
        // other shard's futures — down with it.
        try {
          handle_reply(s, std::move(*reply));
        } catch (const Error& e) {
          if (!socket) throw;
          mark_dead(s, e.what());
          break;
        }
      }
    }

    if (topology_command) {
      progress = true;
      // Resizes execute here — between routing iterations on the
      // topology's single writer thread — so they cannot race routing,
      // replies, or each other. A resize that arrives during shutdown
      // is refused, not left hanging.
      try {
        QKMPS_CHECK_MSG(!drain, "engine is stopping; resize refused");
        if (topology_command->op == TopologyCommand::Op::kAdd) {
          execute_add(topology_command->weight);
        } else {
          execute_remove(topology_command->shard);
        }
        topology_command->done.set_value();
      } catch (...) {
        topology_command->done.set_exception(std::current_exception());
      }
      n = static_cast<int>(links.size());
    }

    // Self-heal monitor: any slot that died (and was neither removed
    // nor demoted) gets respawned once its backoff expires. Runs after
    // routing so a death observed this iteration sheds first — owed
    // futures never ride the respawn.
    if (socket && !drain && config_.socket.respawn) {
      const auto now = std::chrono::steady_clock::now();
      std::vector<ShardState*> states;
      {
        util::MutexLock topo(topology_mu_);
        states.reserve(shard_state_.size());
        for (const auto& st : shard_state_) states.push_back(st.get());
      }
      for (std::size_t s = 0; s < states.size(); ++s) {
        ShardState& state = *states[s];
        if (state.alive.load(std::memory_order_relaxed) ||
            state.removed.load(std::memory_order_relaxed) ||
            state.demoted.load(std::memory_order_relaxed))
          continue;
        if (now < state.next_respawn) continue;
        try_respawn(s);
        progress = true;
      }
    }

    if (stats_request) {
      progress = true;
      // Synchronous sweep: briefly prioritises the snapshot over routing
      // (a stats() call is an operator action, not a data-path one).
      // Non-kStats replies arriving meanwhile are processed normally.
      std::vector<EngineStats> snapshot(static_cast<std::size_t>(n));
      for (int s = 0; s < n; ++s) {
        if (!routable(s)) continue;
        if (!shard_send(s, ShardEnvelope{ShardEnvelope::Kind::kStats, 0, {}}))
          continue;
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(5);
        while (routable(s) && std::chrono::steady_clock::now() < deadline) {
          try {
            std::optional<std::vector<std::uint8_t>> bytes =
                links[static_cast<std::size_t>(s)]->recv_for(
                    std::chrono::microseconds(10'000));
            if (!bytes) continue;
            ShardReply reply = decode_reply(*bytes);
            if (reply.kind == ShardReply::Kind::kStats) {
              snapshot[static_cast<std::size_t>(s)] = reply.stats;
              break;
            }
            handle_reply(s, std::move(reply));
          } catch (const Error& e) {
            if (!socket) throw;
            mark_dead(s, e.what());
          }
        }
      }
      stats_request->set_value(std::move(snapshot));
    }

    if (drain) {
      if (!drain_marker_sent) {
        // Flush barrier: links are FIFO, so a shard's kDrained ack
        // proves every envelope sent before the marker has been scored
        // and its replies are already queued back to us.
        drain_acked.assign(static_cast<std::size_t>(n), 0);
        for (int s = 0; s < n; ++s)
          if (routable(s))
            shard_send(s, ShardEnvelope{ShardEnvelope::Kind::kDrain, 0, {}});
        drain_marker_sent = true;
        drain_stall_deadline = std::chrono::steady_clock::now() + kDrainStall;
      }
      if (progress)
        drain_stall_deadline = std::chrono::steady_clock::now() + kDrainStall;
      bool ingress_empty;
      {
        util::MutexLock lock(mu_);
        ingress_empty = ingress_.empty();
      }
      bool acked = true;
      for (int s = 0; s < n; ++s)
        if (routable(s) && !drain_acked[static_cast<std::size_t>(s)])
          acked = false;
      if (ingress_empty && inflight.empty() && acked) break;
      if (socket && std::chrono::steady_clock::now() > drain_stall_deadline) {
        std::vector<char> owes(static_cast<std::size_t>(n), 0);
        for (const auto& [id, fl] : inflight)
          owes[static_cast<std::size_t>(fl.shard)] = 1;
        for (int s = 0; s < n; ++s)
          if (routable(s) && (owes[static_cast<std::size_t>(s)] ||
                              !drain_acked[static_cast<std::size_t>(s)]))
            mark_dead(s, "no progress during drain within the deadline");
      }
    }

    if (!progress && (drain || !inflight.empty()))
      std::this_thread::sleep_for(config_.router_poll);
  }

  // Shutdown handshake: every live shard acks kStopped after finishing
  // its in-hand batch, so joining the runtime cannot strand work. The
  // timed recv turns a protocol bug into a loud error instead of a
  // destructor that never returns; a socket worker that will not ack is
  // demoted to dead (the reaper escalates to SIGKILL).
  const int n = static_cast<int>(links.size());
  for (int s = 0; s < n; ++s)
    if (routable(s))
      shard_send(s, ShardEnvelope{ShardEnvelope::Kind::kShutdown, 0, {}});
  for (int s = 0; s < n; ++s) {
    while (routable(s)) {
      std::optional<ShardReply> ack;
      try {
        std::optional<std::vector<std::uint8_t>> bytes =
            links[static_cast<std::size_t>(s)]->recv_for(
                std::chrono::microseconds(30'000'000));
        if (bytes) ack = decode_reply(*bytes);
      } catch (const Error& e) {
        if (!socket) throw;
        mark_dead(s, e.what());
        break;
      }
      if (socket && !ack.has_value()) {
        mark_dead(s, "no shutdown ack within the deadline");
        break;
      }
      QKMPS_CHECK_MSG(ack.has_value(), "shard never acked shutdown");
      if (ack->kind == ShardReply::Kind::kStopped) break;
      // Late replies queued before the shutdown envelope: handle them so
      // their futures resolve, then keep waiting for the ack. A
      // protocol-violating late reply demotes the shard like a dead link.
      try {
        handle_reply(s, std::move(*ack));
      } catch (const Error& e) {
        if (!socket) throw;
        mark_dead(s, e.what());
        break;
      }
    }
  }
}

std::vector<EngineStats> RankShardedEngine::fetch_remote_stats() const {
  std::size_t n;
  {
    util::MutexLock topo(topology_mu_);
    n = shard_state_.size();
  }
  std::promise<std::vector<EngineStats>> promise;
  std::future<std::vector<EngineStats>> fut = promise.get_future();
  {
    util::MutexLock lock(mu_);
    if (stopped_ || draining_ || runtime_error_)
      return std::vector<EngineStats>(n);
    stats_requests_.push_back(std::move(promise));
  }
  cv_ingress_.notify_all();
  if (fut.wait_for(std::chrono::seconds(10)) != std::future_status::ready)
    return std::vector<EngineStats>(n);
  std::vector<EngineStats> snapshot = fut.get();
  snapshot.resize(n);
  return snapshot;
}

RankShardedStats RankShardedEngine::stats() const {
  RankShardedStats agg;
  agg.submitted = submitted_.load(std::memory_order_relaxed);
  agg.admitted = admitted_.load(std::memory_order_relaxed);
  agg.rejected = rejected_.load(std::memory_order_relaxed);
  agg.completed = completed_.load(std::memory_order_relaxed);
  agg.shed = shed_.load(std::memory_order_relaxed);
  agg.resizes = resizes_.load(std::memory_order_relaxed);
  std::vector<EngineStats> engine_stats;
  // The remote sweep happens before topology_mu_ is taken: the router
  // answers it, and the router may itself be inside a resize holding
  // topology_mu_ — waiting on it while it waited on us would deadlock.
  if (config_.transport == TransportKind::kSocket)
    engine_stats = fetch_remote_stats();
  util::MutexLock topo(topology_mu_);
  if (config_.transport != TransportKind::kSocket) {
    engine_stats.reserve(engines_.size());
    for (const auto& engine : engines_)
      engine_stats.push_back(engine ? engine->stats() : EngineStats{});
  }
  agg.shards.reserve(shard_state_.size());
  for (std::size_t i = 0; i < shard_state_.size(); ++i) {
    RankShardStats s;
    s.routed = shard_state_[i]->routed.load(std::memory_order_relaxed);
    s.served = shard_state_[i]->served.load(std::memory_order_relaxed);
    s.alive = shard_state_[i]->alive.load(std::memory_order_relaxed);
    s.removed = shard_state_[i]->removed.load(std::memory_order_relaxed);
    s.demoted = shard_state_[i]->demoted.load(std::memory_order_relaxed);
    s.respawns = shard_state_[i]->respawns.load(std::memory_order_relaxed);
    s.generation = shard_state_[i]->generation.load(std::memory_order_relaxed);
    s.weight = shard_state_[i]->weight;
    s.engine = i < engine_stats.size() ? engine_stats[i] : EngineStats{};
    agg.shards.push_back(std::move(s));
  }
  return agg;
}

}  // namespace qkmps::serve
